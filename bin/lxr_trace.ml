(* lxr_trace — trace capture, replay and cross-collector differential
   testing (see DESIGN.md "Trace capture & replay").

   Subcommands:
     record   run a benchmark and capture its mutator event stream
     replay   drive one collector from a trace file (no generative
              mutator in the loop)
     stat     summarize a trace file
     diff     replay one trace through several collectors in lockstep
              and cross-check live sets / counters / integrity oracle *)

open Cmdliner
module Trace_format = Repro_trace.Trace_format
module Differ = Repro_trace.Differ

let die msg =
  Printf.eprintf "%s\n" msg;
  exit 2

let find_collector name =
  match Repro_harness.Collector_set.find name with
  | Ok f -> f
  | Error msg -> die msg

let load_trace path =
  match Trace_format.of_file path with
  | Ok t -> t
  | Error msg -> die (Printf.sprintf "%s: %s" path msg)

let trace_arg =
  let doc = "Trace file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)

let collector_arg =
  let doc = "Collector name." in
  Arg.(value & opt string "lxr" & info [ "c"; "collector" ] ~docv:"NAME" ~doc)

let verify_arg =
  let doc =
    "Attach the heap-integrity verifier ('pre', 'post', 'end' or 'all')."
  in
  Arg.(value & opt (some string) None & info [ "verify" ] ~docv:"POINTS" ~doc)

let parse_verify = function
  | None -> []
  | Some s -> (
    match Repro_verify.Verifier.points_of_string s with
    | Ok points -> points
    | Error msg -> die (Printf.sprintf "--verify: %s" msg))

let parse_inject seed = function
  | None -> None
  | Some s -> (
    match Repro_engine.Fault.of_spec ~seed s with
    | Ok f -> Some f
    | Error msg -> die (Printf.sprintf "--inject: %s" msg))

(* --gc-threads accepts a work-packet lane count in [1, 64] or 'auto'
   (the runtime's recommendation); results are bit-identical for every
   value, so this is purely a host wall-clock knob. *)
let gc_threads_arg =
  let doc =
    "Work-packet lanes for collector phases (1-64, or 'auto'). Results \
     are bit-identical for every value."
  in
  Arg.(value & opt string "1" & info [ "gc-threads" ] ~docv:"N|auto" ~doc)

let parse_gc_threads s =
  match int_of_string_opt s with
  | Some n when n >= 1 && n <= 64 -> n
  | Some n ->
    die (Printf.sprintf "--gc-threads: %d is out of range; expected 1-64 or 'auto'" n)
  | None ->
    if String.lowercase_ascii s = "auto" then
      min 64 (max 1 (Domain.recommended_domain_count ()))
    else
      die
        (Printf.sprintf
           "unknown --gc-threads value %S%s; expected a count (1-64) or 'auto'"
           s
           (Repro_util.Suggest.hint ~candidates:[ "auto" ] s))

(* --loop selects the replay inner loop. 'specialised' and 'auto' both
   map to [`Auto]: the specialised loop is used whenever it is sound
   (no fault injector); 'generic' forces the reference interpreter.
   Both loops are bit-identical — the knob exists for the CI
   cross-check and for benchmarking the specialisation win. *)
let loop_arg =
  let doc =
    "Replay inner loop: 'auto' (default; the specialised zero-allocation \
     loop whenever sound), 'specialised' (alias of auto) or 'generic' \
     (the reference interpreter). Results are bit-identical either way."
  in
  Arg.(value & opt string "auto" & info [ "loop" ] ~docv:"MODE" ~doc)

let parse_loop s =
  match String.lowercase_ascii s with
  | "auto" | "specialised" | "specialized" -> `Auto
  | "generic" -> `Generic
  | other ->
    die
      (Printf.sprintf "unknown --loop value %S%s; expected auto, specialised or generic"
         other
         (Repro_util.Suggest.hint
            ~candidates:[ "auto"; "specialised"; "generic" ]
            other))

(* --- record ------------------------------------------------------------ *)

let record_cmd =
  let bench_arg =
    let doc = "Benchmark name (see `lxr_sim list')." in
    Arg.(value & opt string "lusearch" & info [ "b"; "bench" ] ~docv:"NAME" ~doc)
  in
  let factor_arg =
    let doc = "Heap size as a multiple of the benchmark's minimum heap." in
    Arg.(value & opt float 2.0 & info [ "f"; "heap-factor" ] ~docv:"X" ~doc)
  in
  let scale_arg =
    let doc = "Workload scale." in
    Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~docv:"X" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Output trace file (default: <bench>.lxrtrace)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let run bench collector factor scale seed out =
    let w =
      match Repro_harness.Collector_set.find_workload bench with
      | Ok w -> w
      | Error msg -> die msg
    in
    let factory = find_collector collector in
    let path = Option.value out ~default:(bench ^ ".lxrtrace") in
    let r =
      Repro_harness.Runner.run ~seed ~scale ~record_to:path ~workload:w ~factory
        ~heap_factor:factor ()
    in
    Repro_harness.Report.print_result r;
    (match Trace_format.of_file path with
    | Ok t ->
      Printf.printf "  trace       %s: %d events, %d bytes\n" path
        (Trace_format.num_events t)
        (let ic = open_in_bin path in
         let n = in_channel_length ic in
         close_in ic;
         n)
    | Error msg -> die (Printf.sprintf "recorded trace failed to parse: %s" msg));
    if not r.ok then exit 1
  in
  let term =
    Term.(
      const run $ bench_arg $ collector_arg $ factor_arg $ scale_arg $ seed_arg
      $ out_arg)
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Run a benchmark and record its mutator event stream.")
    term

(* --- replay ------------------------------------------------------------ *)

let replay_cmd =
  let inject_arg =
    let doc = "Inject deterministic faults during the replay (class:rate,...)." in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC" ~doc)
  in
  let rerecord_arg =
    let doc =
      "Re-record the replay's event stream to $(docv); for a faithful \
       replay the result is byte-identical to the input trace."
    in
    Arg.(value & opt (some string) None & info [ "o"; "record" ] ~docv:"FILE" ~doc)
  in
  let bench_reps_arg =
    let doc =
      "Replay the trace $(docv) times in-process and print one machine-readable \
       BENCH line (events, CPU seconds, host bytes allocated) measured around \
       the replay calls only. Used by scripts/bench.sh."
    in
    Arg.(value & opt int 0 & info [ "bench-reps" ] ~docv:"N" ~doc)
  in
  let run path collector verify inject rerecord bench_reps gc_threads loop =
    let trace = load_trace path in
    let factory = find_collector collector in
    let points = parse_verify verify in
    let fault = parse_inject trace.header.seed inject in
    let gc_threads = parse_gc_threads gc_threads in
    let loop = parse_loop loop in
    if bench_reps > 0 then begin
      (* Timed loop: identical replays on fresh heaps; trace parsing and
         process startup stay outside the measurement. Per-rep CPU times
         let bench.sh take min/median over reps, de-noising shared
         hosts. *)
      let a0 = Gc.allocated_bytes () in
      let t0 = Sys.time () in
      let last = ref None in
      let rep_cpu = ref [] in
      for _ = 1 to bench_reps do
        let r0 = Sys.time () in
        last :=
          Some (Repro_harness.Runner.replay ~gc_threads ~loop ~trace ~factory ());
        rep_cpu := (Sys.time () -. r0) :: !rep_cpu
      done;
      let cpu = Sys.time () -. t0 in
      let bytes = Gc.allocated_bytes () -. a0 in
      (* Steady-state lane: engine construction happens outside the
         measured window, so run_* fields cover the replay hot path
         alone — the thing the zero-alloc work and the alloc gate are
         about. The total fields above keep continuity with older
         BENCH_PR*.json files (they include per-rep engine setup). *)
      let cfg = Trace_format.heap_config trace.header in
      let alloc_count, max_id = Trace_format.alloc_stats trace in
      let ids_hint = max 16 (max_id + 2) in
      (* Presize the slot arrays too: doubling growth up to peak-live is
         a one-time warm-up cost, not loop churn, so it belongs outside
         the steady-state window (a long-running engine pays it once). *)
      let slots_hint = alloc_count + 1 in
      let run_alloc = ref 0.0 in
      let run_cpu = ref [] in
      for _ = 1 to bench_reps do
        let heap = Repro_heap.Heap.create ~slots_hint ~ids_hint cfg in
        let sim = Repro_engine.Sim.create Repro_engine.Cost_model.default in
        Repro_engine.Sim.set_pool sim
          (Repro_par.Par.Pool.get ~threads:gc_threads);
        let api = Repro_engine.Api.create sim heap factory in
        let b0 = Gc.allocated_bytes () in
        let c0 = Sys.time () in
        ignore (Repro_trace.Replay.run ~loop api trace);
        run_cpu := (Sys.time () -. c0) :: !run_cpu;
        run_alloc := !run_alloc +. (Gc.allocated_bytes () -. b0)
      done;
      Printf.printf
        "BENCH trace=%s collector=%s gc_threads=%d reps=%d events=%d cpu_s=%.6f alloc_bytes=%.0f run_alloc_bytes=%.0f rep_cpu_s=%s run_rep_cpu_s=%s\n"
        path collector gc_threads bench_reps (Trace_format.num_events trace) cpu
        bytes !run_alloc
        (String.concat ","
           (List.rev_map (Printf.sprintf "%.6f") !rep_cpu))
        (String.concat ","
           (List.rev_map (Printf.sprintf "%.6f") !run_cpu));
      match !last with
      | Some r when not r.ok -> exit 1
      | Some _ | None -> ()
    end
    else begin
      let r =
        Repro_harness.Runner.replay ~gc_threads ~verify:points ?inject:fault
          ?record_to:rerecord ~loop ~trace ~factory ()
      in
      Printf.printf
        "replaying %s (recorded: %s under %s, seed %d, scale %g, %d events)\n" path
        trace.header.workload trace.header.collector trace.header.seed
        trace.header.scale (Trace_format.num_events trace);
      Repro_harness.Report.print_result r;
      if not r.ok then exit 1
    end
  in
  let term =
    Term.(
      const run $ trace_arg $ collector_arg $ verify_arg $ inject_arg
      $ rerecord_arg $ bench_reps_arg $ gc_threads_arg $ loop_arg)
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Drive one collector from a recorded trace.")
    term

(* --- stat -------------------------------------------------------------- *)

let stat_cmd =
  let bench_decode_arg =
    let doc =
      "Decode the trace $(docv) times and print one machine-readable DECODE \
       line (bytes, events, CPU seconds, host bytes allocated) instead of \
       the summary. Used by scripts/bench.sh for the decode-only lane."
    in
    Arg.(value & opt int 0 & info [ "bench-decode" ] ~docv:"N" ~doc)
  in
  let run path bench_decode =
    if bench_decode > 0 then begin
      (* Decode-only lane: file bytes are read once; the measurement is
         pure [Trace_format.of_string] (ring batch-decode + validation). *)
      let s =
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      let a0 = Gc.allocated_bytes () in
      let t0 = Sys.time () in
      let events = ref 0 in
      for _ = 1 to bench_decode do
        match Trace_format.of_string s with
        | Ok t -> events := Trace_format.num_events t
        | Error msg -> die (Printf.sprintf "%s: %s" path msg)
      done;
      let cpu = Sys.time () -. t0 in
      let bytes = Gc.allocated_bytes () -. a0 in
      Printf.printf
        "DECODE trace=%s reps=%d bytes=%d events=%d cpu_s=%.6f alloc_bytes=%.0f\n"
        path bench_decode (String.length s) !events cpu bytes
    end
    else begin
    let t = load_trace path in
    let h = t.header in
    Printf.printf "%s: trace v%d\n" path h.version;
    Printf.printf "  workload    %s (seed %d, scale %g)\n" h.workload h.seed h.scale;
    Printf.printf "  recorded    under %s at %.1fx heap (%d KB)\n" h.collector
      h.heap_factor (h.heap_bytes / 1024);
    Printf.printf
      "  geometry    %d KB blocks, %d B lines, %d B granules, %d RC bits, LOS > %d B\n"
      (h.block_bytes / 1024) h.line_bytes h.granule_bytes h.rc_bits
      h.los_threshold;
    let counts = Hashtbl.create 16 in
    let sizes = Repro_util.Histogram.create () in
    let alloc_bytes = ref 0 in
    let large = ref 0 in
    let work_ns = ref 0.0 in
    Array.iter
      (fun ev ->
        let name = Trace_format.event_name ev in
        Hashtbl.replace counts name
          (1 + Option.value (Hashtbl.find_opt counts name) ~default:0);
        match ev with
        | Trace_format.Alloc a ->
          Repro_util.Histogram.record sizes a.size;
          alloc_bytes := !alloc_bytes + a.size;
          if a.large then incr large
        | Trace_format.Work w -> work_ns := !work_ns +. w.ns
        | _ -> ())
      (Trace_format.events t);
    Printf.printf "  events      %d total\n" (Trace_format.num_events t);
    List.iter
      (fun name ->
        match Hashtbl.find_opt counts name with
        | Some n -> Printf.printf "    %-18s %d\n" name n
        | None -> ())
      [ "alloc"; "alloc-failed"; "write"; "read"; "root"; "work"; "safepoint";
        "request-start"; "request-end"; "measurement-start"; "survived";
        "finish" ];
    (* _opt accessors: a truncated or setup-only trace may have no allocations. *)
    let pct p =
      match Repro_util.Histogram.percentile_opt sizes p with
      | Some v -> string_of_int v
      | None -> "-"
    in
    let mean =
      match Repro_util.Histogram.mean_opt sizes with
      | Some m -> Printf.sprintf "%.0f" m
      | None -> "-"
    in
    Printf.printf
      "  allocation  %d KB requested; size mean %s B, p50 %s, p99 %s; %d large\n"
      (!alloc_bytes / 1024) mean (pct 50.0) (pct 99.0) !large;
    Printf.printf "  compute     %.3f ms recorded work\n" (!work_ns /. 1e6)
    end
  in
  let term = Term.(const run $ trace_arg $ bench_decode_arg) in
  Cmd.v (Cmd.info "stat" ~doc:"Summarize a trace file.") term

(* --- diff -------------------------------------------------------------- *)

let diff_cmd =
  let collectors_arg =
    let doc = "Comma-separated collectors to replay through (first is the baseline)." in
    Arg.(
      value
      & opt string "lxr,g1,shenandoah"
      & info [ "c"; "collectors" ] ~docv:"NAMES" ~doc)
  in
  let every_arg =
    let doc =
      "Also checkpoint every $(docv) events (0 = only explicit safepoints \
       and finish)."
    in
    Arg.(value & opt int 4096 & info [ "every" ] ~docv:"N" ~doc)
  in
  let no_verify_arg =
    let doc = "Skip the per-collector heap-integrity oracle at checkpoints." in
    Arg.(value & flag & info [ "no-verify" ] ~doc)
  in
  let inject_arg =
    let doc = "Inject faults into one lane (demonstrates divergence localisation)." in
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC" ~doc)
  in
  let inject_into_arg =
    let doc = "Collector lane --inject applies to (default: the first)." in
    Arg.(value & opt (some string) None & info [ "inject-into" ] ~docv:"NAME" ~doc)
  in
  let run path collectors every no_verify inject inject_into gc_threads =
    let trace = load_trace path in
    let names =
      String.split_on_char ',' collectors
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if List.length names < 2 then die "diff needs at least two collectors";
    (* The free-reclamation baseline is a methodological yardstick, not a
       collector under test — keep it out of lockstep comparisons. *)
    List.iter
      (fun n ->
        if not (Repro_collectors.Registry.lockstep_ok n) then
          die
            (Printf.sprintf
               "%S is the distilled-cost baseline, not a collector under \
                test; use `lxr_trace distill' to compare against it"
               n))
      names;
    let lanes = List.map (fun n -> (n, find_collector n)) names in
    let fault = parse_inject trace.header.seed inject in
    let gc_threads = parse_gc_threads gc_threads in
    let inject =
      match fault with
      | None -> None
      | Some f -> Some (Option.value inject_into ~default:(List.hd names), f)
    in
    match
      Differ.run ~verify:(not no_verify) ~every ?inject ~gc_threads ~trace
        ~collectors:lanes ()
    with
    | report ->
      print_endline (Differ.report_to_string report);
      if report.total_divergences > 0 then exit 1
    | exception Repro_collectors.Conc_mark_evac.Unsupported msg ->
      die ("unsupported: " ^ msg)
  in
  let term =
    Term.(
      const run $ trace_arg $ collectors_arg $ every_arg $ no_verify_arg
      $ inject_arg $ inject_into_arg $ gc_threads_arg)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Replay one trace through several collectors and cross-check them.")
    term

(* --- distill ----------------------------------------------------------- *)

let distill_cmd =
  let collectors_arg =
    let doc =
      "Comma-separated collectors to account (each replayed once, plus \
       one shared ideal-baseline replay)."
    in
    Arg.(
      value
      & opt string "lxr,g1,shenandoah,journal_rc"
      & info [ "c"; "collectors" ] ~docv:"NAMES" ~doc)
  in
  let format_arg =
    let doc = "Output format: text, md or json." in
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let run path collectors format gc_threads =
    let trace = load_trace path in
    let gc_threads = parse_gc_threads gc_threads in
    let names =
      String.split_on_char ',' collectors
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if names = [] then die "distill needs at least one collector";
    let lanes = List.map (fun n -> (n, find_collector n)) names in
    let ideal = find_collector "ideal" in
    let base = Repro_harness.Runner.replay ~gc_threads ~trace ~factory:ideal () in
    let rows =
      List.map
        (fun (name, factory) ->
          let r = Repro_harness.Runner.replay ~gc_threads ~trace ~factory () in
          let row =
            Repro_harness.Report.distill_of ~workload:trace.header.workload
              ~heap_factor:trace.header.heap_factor r base
          in
          if row.Repro_harness.Report.d_error = None then row
          else { row with Repro_harness.Report.d_collector = name })
        lanes
    in
    (match format with
    | "text" ->
      print_endline
        (Repro_harness.Report.distill_table
           ~title:
             (Printf.sprintf
                "Distilled cost on %s (%s, %d events): real replay minus the\n\
                 exact free-reclamation baseline on the identical mutator work."
                path trace.header.workload
                (Trace_format.num_events trace))
           rows)
    | "md" -> print_string (Repro_harness.Report.distill_markdown rows)
    | "json" -> print_string (Repro_harness.Report.distill_json rows)
    | other ->
      die
        (Printf.sprintf "unknown --format %S%s; expected text, md or json"
           other
           (Repro_util.Suggest.hint ~candidates:[ "text"; "md"; "json" ] other)));
    if List.exists (fun r -> r.Repro_harness.Report.d = None) rows || not base.ok
    then exit 1
  in
  let term =
    Term.(const run $ trace_arg $ collectors_arg $ format_arg $ gc_threads_arg)
  in
  Cmd.v
    (Cmd.info "distill"
       ~doc:
         "Replay a trace under real collectors and the ideal baseline; \
          report each collector's exact distilled cost.")
    term

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "lxr_trace"
      ~doc:"Mutator trace capture, replay, and cross-collector differential testing"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ record_cmd; replay_cmd; stat_cmd; diff_cmd; distill_cmd ]))
