(* lxr_fleet — the fleet serving tier from the command line.

   Subcommands:
     run      one (benchmark, collector, policy) fleet simulation
     compare  a collectors x policies grid, as text, markdown or JSON *)

open Cmdliner
module Fleet = Repro_service.Fleet
module Policy = Repro_service.Policy

let die msg =
  Printf.eprintf "%s\n" msg;
  exit 2

let find_collector name =
  match Repro_harness.Collector_set.find name with
  | Ok f -> f
  | Error msg -> die (msg ^ "\n(try: lxr_sim list)")

let find_workload name =
  match Repro_harness.Collector_set.find_workload name with
  | Ok w -> w
  | Error msg -> die (msg ^ "\n(try: lxr_sim list)")

let find_policy name =
  match Policy.of_string name with Ok p -> p | Error msg -> die msg

(* --domains accepts a positive worker count or 'auto' (the runtime's
   recommendation for this machine); anything else dies with a
   suggestion, like every other name lookup in the CLIs. *)
let parse_domains s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> n
  | Some _ -> die "--domains: needs at least 1 worker domain"
  | None ->
    if String.lowercase_ascii s = "auto" then
      max 1 (Domain.recommended_domain_count () - 1)
    else
      die
        (Printf.sprintf "unknown --domains value %S%s; expected a count or 'auto'"
           s
           (Repro_util.Suggest.hint ~candidates:[ "auto" ] s))

let parse_verify = function
  | None -> []
  | Some s -> (
    match Repro_verify.Verifier.points_of_string s with
    | Ok points -> points
    | Error msg -> die (Printf.sprintf "--verify: %s" msg))

(* --gc-threads accepts a work-packet lane count in [1, 64] or 'auto';
   it shares the replica domain pool, so it never oversubscribes the
   host on top of --domains. Results are bit-identical for every
   value. *)
let parse_gc_threads s =
  match int_of_string_opt s with
  | Some n when n >= 1 && n <= 64 -> n
  | Some n ->
    die (Printf.sprintf "--gc-threads: %d is out of range; expected 1-64 or 'auto'" n)
  | None ->
    if String.lowercase_ascii s = "auto" then
      min 64 (max 1 (Domain.recommended_domain_count ()))
    else
      die
        (Printf.sprintf
           "unknown --gc-threads value %S%s; expected a count (1-64) or 'auto'"
           s
           (Repro_util.Suggest.hint ~candidates:[ "auto" ] s))

(* Shared arguments. *)

let bench_arg =
  let doc = "Benchmark name (must carry a metered request model)." in
  Arg.(value & opt string "lusearch" & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let factor_arg =
  let doc = "Per-replica heap as a multiple of the benchmark's minimum." in
  Arg.(value & opt float 1.3 & info [ "f"; "heap-factor" ] ~docv:"X" ~doc)

let replicas_arg =
  let doc = "Number of replica heaps behind the front-end." in
  Arg.(value & opt int 4 & info [ "k"; "replicas" ] ~docv:"N" ~doc)

let requests_arg =
  let doc = "Total fleet-level request count (default: the workload's)." in
  Arg.(value & opt (some int) None & info [ "n"; "requests" ] ~docv:"N" ~doc)

let load_arg =
  let doc =
    "Arrival-rate multiplier; 1.0 targets the workload's published \
     per-replica utilization in wall-clock terms. GC overhead at small \
     heaps makes ~0.15 the interesting serving regime."
  in
  Arg.(value & opt float 0.15 & info [ "load" ] ~docv:"X" ~doc)

let queue_limit_arg =
  let doc = "Admission bound: max requests per replica per scheduling round." in
  Arg.(value & opt int 64 & info [ "queue-limit" ] ~docv:"N" ~doc)

let quantum_arg =
  let doc =
    "Scheduling-checkpoint interval in sim nanoseconds (default: 4x the \
     wall-clock service time)."
  in
  Arg.(value & opt (some float) None & info [ "quantum" ] ~docv:"NS" ~doc)

let domains_arg =
  let doc = "Worker domains executing replicas in parallel, or 'auto'." in
  Arg.(value & opt string "1" & info [ "domains" ] ~docv:"N|auto" ~doc)

let gc_threads_arg =
  let doc =
    "Work-packet lanes for each replica's collector phases (1-64, or \
     'auto'); shares the --domains pool. Results are bit-identical for \
     every value."
  in
  Arg.(value & opt string "1" & info [ "gc-threads" ] ~docv:"N|auto" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let verify_arg =
  let doc =
    "Attach the heap-integrity verifier to every replica: a \
     comma-separated subset of 'pre', 'post' and 'end', or 'all'."
  in
  Arg.(value & opt (some string) None & info [ "verify" ] ~docv:"POINTS" ~doc)

(* Resilience flags. Each spec parser range-checks its values and hangs
   a did-you-mean hint off unknown keys, so a typo dies with a
   suggestion instead of silently running a different experiment. *)

let chaos_arg =
  let doc =
    "Seeded chaos schedule, e.g. \
     'crash\\@0.3,stall\\@0.5+0.1x4,flash-crowd\\@0.6+0.1x3'. Event \
     times are fractions of the run; settings: restart:DUR, warmup:N, \
     auto-restart:on|off. Enables replica auto-restart and the \
     slow-start warm-up ramp."
  in
  Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC" ~doc)

let retry_arg =
  let doc =
    "Front-end client policy, e.g. 'timeout:5ms,max:3,backoff:200us' \
     or 'timeout:5ms,hedge:1ms'."
  in
  Arg.(value & opt (some string) None & info [ "retry" ] ~docv:"SPEC" ~doc)

let slo_arg =
  let doc =
    "Latency SLO and brown-out shedding, e.g. \
     'p99.9:2ms,window:64,burn-high:4,shed:0.5'."
  in
  Arg.(value & opt (some string) None & info [ "slo" ] ~docv:"SPEC" ~doc)

let autoscale_arg =
  let doc =
    "Burn-driven replica autoscaler (requires --slo), e.g. \
     'max:8,min:2,up:4,down:0.25,patience:8,cooldown:64'."
  in
  Arg.(value & opt (some string) None & info [ "autoscale" ] ~docv:"SPEC" ~doc)

let controller_arg =
  let doc =
    "Tune each LXR replica's knobs online between RC epochs: 'hill' or \
     'pid', optionally with :key=value,... options. With obj=burn the \
     objective follows the fleet's --slo burn rate. Requires -c lxr. \
     Example: --controller=pid:obj=burn,target=1."
  in
  Arg.(value & opt (some string) None & info [ "controller" ] ~docv:"SPEC" ~doc)

(* A controller-wrapped factory reads the fleet's SLO burn through a
   shared cell: Fleet publishes it at window boundaries (replicas
   quiescent), replicas read it during rounds — frozen per round, so
   bit-identical across --domains. Returns the factory and the on_burn
   hook to pass to Fleet.config. *)
let controlled_factory ~collector ~controller =
  match controller with
  | None -> (find_collector collector, None)
  | Some spec ->
    if String.lowercase_ascii collector <> "lxr" then
      die
        (Printf.sprintf
           "--controller drives LXR's knob table and cannot tune %S; use -c \
            lxr"
           collector);
    let module C = Repro_policy.Controller in
    let spec =
      match C.parse spec with
      | Ok s -> s
      | Error msg -> die ("--controller: " ^ msg)
    in
    let algo = match spec.C.algo with C.Hill -> "hill" | C.Pid -> "pid" in
    let cell = Atomic.make 0.0 in
    ( C.lxr_factory ~name:("LXR+" ^ algo)
        ~burn:(fun () -> Atomic.get cell)
        spec,
      Some (fun b -> Atomic.set cell b) )

let parse_spec ~flag parser = function
  | None -> None
  | Some s -> (
    match parser s with
    | Ok v -> Some v
    | Error msg -> die (Printf.sprintf "--%s: %s" flag msg))

let make_config ?policy ?on_burn ~bench ~factory ~replicas ~factor ~requests
    ~load ~queue_limit ~quantum ~domains ~gc_threads ~seed ~verify ~chaos
    ~retry ~slo ~autoscale () =
  let w = find_workload bench in
  let chaos = parse_spec ~flag:"chaos" Repro_service.Chaos.of_spec chaos in
  let retry =
    match parse_spec ~flag:"retry" Policy.Retry.of_spec retry with
    | Some r -> r
    | None -> Policy.Retry.none
  in
  let slo = parse_spec ~flag:"slo" Repro_service.Slo.of_spec slo in
  let autoscale =
    parse_spec ~flag:"autoscale" Repro_service.Slo.Autoscale.of_spec autoscale
  in
  (if autoscale <> None && slo = None then
     die "--autoscale needs --slo (the controller follows the burn rate)");
  Fleet.config ?policy ?on_burn ~replicas ~heap_factor:factor ?requests ~load
    ~queue_limit ?quantum_ns:quantum ~domains:(parse_domains domains)
    ~gc_threads:(parse_gc_threads gc_threads) ~seed
    ~verify:(parse_verify verify) ?chaos ~retry ?slo ?autoscale ~workload:w
    ~factory ()

let run_cmd =
  let policy_arg =
    let doc =
      Printf.sprintf "Load-balancing policy: %s."
        (String.concat ", " Policy.names)
    in
    Arg.(value & opt string "gc-aware" & info [ "p"; "policy" ] ~docv:"NAME" ~doc)
  in
  let collector_arg =
    let doc = "Collector name (lxr, g1, shenandoah, zgc, ...)." in
    Arg.(value & opt string "lxr" & info [ "c"; "collector" ] ~docv:"NAME" ~doc)
  in
  let run bench collector policy replicas factor requests load queue_limit
      quantum domains gc_threads seed verify chaos retry slo autoscale
      controller =
    let factory, on_burn = controlled_factory ~collector ~controller in
    let cfg =
      make_config ~policy:(find_policy policy) ?on_burn ~bench ~factory
        ~replicas ~factor ~requests ~load ~queue_limit ~quantum ~domains
        ~gc_threads ~seed ~verify ~chaos ~retry ~slo ~autoscale ()
    in
    let r = Fleet.run cfg in
    Repro_harness.Report.print_fleet r;
    if not r.ok then exit 1
  in
  let term =
    Term.(
      const run $ bench_arg $ collector_arg $ policy_arg $ replicas_arg
      $ factor_arg $ requests_arg $ load_arg $ queue_limit_arg $ quantum_arg
      $ domains_arg $ gc_threads_arg $ seed_arg $ verify_arg $ chaos_arg
      $ retry_arg $ slo_arg $ autoscale_arg $ controller_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one fleet simulation.") term

let compare_cmd =
  let collectors_arg =
    let doc = "Comma-separated collectors to compare." in
    Arg.(
      value
      & opt string "g1,lxr,shenandoah,zgc"
      & info [ "c"; "collectors" ] ~docv:"NAMES" ~doc)
  in
  let policies_arg =
    let doc = "Comma-separated policies to compare (default: all)." in
    Arg.(
      value
      & opt string (String.concat "," Policy.names)
      & info [ "p"; "policies" ] ~docv:"NAMES" ~doc)
  in
  let format_arg =
    let doc = "Output format: text, md or json." in
    Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let split s =
    List.filter (fun x -> x <> "") (String.split_on_char ',' (String.trim s))
  in
  let run bench collectors policies format replicas factor requests load
      queue_limit quantum domains gc_threads seed verify chaos retry slo
      autoscale =
    let collectors =
      List.map (fun n -> (n, find_collector n)) (split collectors)
    in
    let policies = List.map find_policy (split policies) in
    if collectors = [] then die "compare needs at least one collector";
    if policies = [] then die "compare needs at least one policy";
    let results =
      List.concat_map
        (fun (_, factory) ->
          List.map
            (fun policy ->
              Fleet.run
                (make_config ~policy ~bench ~factory ~replicas ~factor
                   ~requests ~load ~queue_limit ~quantum ~domains ~gc_threads
                   ~seed ~verify ~chaos ~retry ~slo ~autoscale ()))
            policies)
        collectors
    in
    (match format with
    | "text" ->
      print_endline
        (Repro_harness.Report.fleet_table
           ~title:
             (Printf.sprintf
                "Fleet compare: %s, %d replicas at %.1fx heap, load %.2f \
                 (latency in us)"
                bench replicas factor load)
           results)
    | "md" -> print_string (Repro_harness.Report.fleet_markdown results)
    | "json" -> print_string (Repro_harness.Report.fleet_json results)
    | other ->
      die
        (Printf.sprintf "unknown --format %S%s; known: text, md, json" other
           (Repro_util.Suggest.hint ~candidates:[ "text"; "md"; "json" ] other)))
  in
  let term =
    Term.(
      const run $ bench_arg $ collectors_arg $ policies_arg $ format_arg
      $ replicas_arg $ factor_arg $ requests_arg $ load_arg $ queue_limit_arg
      $ quantum_arg $ domains_arg $ gc_threads_arg $ seed_arg $ verify_arg
      $ chaos_arg $ retry_arg $ slo_arg $ autoscale_arg)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare collectors x policies on one fleet.")
    term

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "lxr_fleet"
      ~doc:"Multi-replica request serving with GC-aware load balancing"
  in
  exit (Cmd.eval (Cmd.group ~default info [ run_cmd; compare_cmd ]))
