(* lxr_sim — command-line driver for the LXR reproduction.

   Subcommands:
     run         one (benchmark, collector, heap factor) simulation
     experiment  regenerate a paper table or figure
     list        enumerate benchmarks, collectors and experiments *)

open Cmdliner

let collectors_with_lxr () =
  ("lxr", Repro_lxr.Lxr.factory)
  :: ("lxr-nosatb", Repro_lxr.Lxr.factory_no_satb_concurrency)
  :: ("lxr-nold", Repro_lxr.Lxr.factory_no_lazy_decrements)
  :: ("lxr-stw", Repro_lxr.Lxr.factory_stw)
  :: ("lxr-objbar", Repro_lxr.Lxr.factory_object_barrier)
  :: ("lxr-regions", Repro_lxr.Lxr.factory_regional_evacuation)
  :: Repro_collectors.Registry.all

let find_collector name =
  match List.assoc_opt (String.lowercase_ascii name) (collectors_with_lxr ()) with
  | Some f -> f
  | None ->
    Printf.eprintf "unknown collector %S (try: lxr_sim list)\n" name;
    exit 2

let bench_arg =
  let doc = "Benchmark name (see `lxr_sim list')." in
  Arg.(value & opt string "lusearch" & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let collector_arg =
  let doc = "Collector name (lxr, g1, shenandoah, zgc, serial, ...)." in
  Arg.(value & opt string "lxr" & info [ "c"; "collector" ] ~docv:"NAME" ~doc)

let factor_arg =
  let doc = "Heap size as a multiple of the benchmark's minimum heap." in
  Arg.(value & opt float 2.0 & info [ "f"; "heap-factor" ] ~docv:"X" ~doc)

let scale_arg =
  let doc = "Workload scale (allocation volume / request count)." in
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~docv:"X" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let iterations_arg =
  let doc = "Seeded repetitions feeding confidence intervals." in
  Arg.(value & opt int 2 & info [ "i"; "iterations" ] ~docv:"N" ~doc)

let verify_arg =
  let doc =
    "Run the heap-integrity verifier at the given safepoints: a \
     comma-separated subset of 'pre' (before each pause), 'post' (after \
     each pause) and 'end' (end of run), or 'all'."
  in
  Arg.(value & opt (some string) None & info [ "verify" ] ~docv:"POINTS" ~doc)

let inject_arg =
  let doc =
    "Inject deterministic faults, as 'class:rate' pairs separated by \
     commas. Classes: drop-barrier, skip-dec, rc-flip, remset, \
     alloc-fail. Example: --inject=drop-barrier:1e-4."
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC" ~doc)

let parse_verify = function
  | None -> []
  | Some s -> (
    match Repro_verify.Verifier.points_of_string s with
    | Ok points -> points
    | Error msg ->
      Printf.eprintf "--verify: %s\n" msg;
      exit 2)

let parse_inject seed = function
  | None -> None
  | Some s -> (
    match Repro_engine.Fault.of_spec ~seed s with
    | Ok f -> Some f
    | Error msg ->
      Printf.eprintf "--inject: %s\n" msg;
      exit 2)

let pct h p =
  match Repro_util.Histogram.percentile_opt h p with
  | Some v -> Float.of_int v /. 1e6
  | None -> 0.0

let print_extras (r : Repro_harness.Runner.result) =
  let exercised = List.filter (fun (_, v) -> v > 0.0) r.ladder in
  if exercised <> [] then begin
    Printf.printf "  ladder     ";
    List.iter (fun (k, v) -> Printf.printf " %s=%.0f" k v) exercised;
    print_newline ()
  end;
  if r.verifier_checks > 0 then
    Printf.printf "  verifier    %d checks, %d violations\n" r.verifier_checks
      (List.length r.violations);
  List.iter
    (fun (point, label, viol) ->
      Printf.printf "  VIOLATION [%s:%s] %s\n"
        (Repro_verify.Verifier.safepoint_name point)
        label
        (Repro_verify.Verifier.violation_to_string viol))
    r.violations

let print_result (r : Repro_harness.Runner.result) =
  if not r.ok then begin
    Printf.printf "%s/%s @%.1fx: FAILED (%s)\n" r.workload r.collector r.heap_factor
      (Option.value r.error ~default:"unknown");
    print_extras r
  end
  else begin
    Printf.printf "%s/%s @%.1fx (heap %d KB)\n" r.workload r.collector r.heap_factor
      (r.heap_bytes / 1024);
    Printf.printf "  time        %.2f ms (mutator %.2f ms cpu, GC %.2f ms cpu)\n"
      (r.wall_ns /. 1e6) (r.mutator_cpu_ns /. 1e6) (r.gc_cpu_ns /. 1e6);
    Printf.printf "  pauses      %d totalling %.2f ms" r.pause_count
      (r.stw_wall_ns /. 1e6);
    if Repro_util.Histogram.count r.pauses > 0 then
      Printf.printf " (p50 %.2f / p99 %.2f ms)" (pct r.pauses 50.0) (pct r.pauses 99.0);
    print_newline ();
    Printf.printf "  allocated   %d KB in %d objects\n" (r.alloc_bytes / 1024)
      r.alloc_count;
    (match r.latency with
    | Some h when Repro_util.Histogram.count h > 0 ->
      Printf.printf
        "  latency     p50 %.3f / p99 %.3f / p99.9 %.3f / p99.99 %.3f ms (%.0f QPS)\n"
        (pct h 50.0) (pct h 99.0) (pct h 99.9) (pct h 99.99)
        (Repro_harness.Runner.qps r)
    | Some _ | None -> ());
    List.iter (fun (k, v) -> Printf.printf "  %-24s %.0f\n" k v) r.collector_stats;
    print_extras r
  end

let run_cmd =
  let run bench collector factor scale seed verify inject =
    let w = Repro_mutator.Benchmarks.find bench in
    let factory = find_collector collector in
    let points = parse_verify verify in
    let fault = parse_inject seed inject in
    let r =
      Repro_harness.Runner.run ~seed ~scale ~verify:points ?inject:fault
        ~workload:w ~factory ~heap_factor:factor ()
    in
    print_result r;
    (match fault with
    | Some f ->
      Printf.printf "  faults     ";
      List.iter
        (fun (k, v) -> Printf.printf " %s=%.0f" k v)
        (Repro_engine.Fault.counts_alist f);
      print_newline ()
    | None -> ());
    if not r.ok then exit 1
  in
  let term =
    Term.(
      const run $ bench_arg $ collector_arg $ factor_arg $ scale_arg $ seed_arg
      $ verify_arg $ inject_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one benchmark under one collector.") term

let experiment_cmd =
  let names = String.concat ", " Repro_harness.Experiments.names in
  let exp_arg =
    let doc = Printf.sprintf "Experiment to regenerate: %s, or 'all'." names in
    Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run name scale iterations seed =
    let opts = { Repro_harness.Experiments.scale; iterations; seed } in
    let todo =
      if name = "all" then Repro_harness.Experiments.names else [ name ]
    in
    List.iter
      (fun n ->
        match Repro_harness.Experiments.by_name n with
        | Some f ->
          print_endline (f opts);
          print_newline ()
        | None ->
          Printf.eprintf "unknown experiment %S (known: %s)\n" n names;
          exit 2)
      todo
  in
  let term = Term.(const run $ exp_arg $ scale_arg $ iterations_arg $ seed_arg) in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate a paper table or figure.") term

let list_cmd =
  let run () =
    print_endline "benchmarks:";
    List.iter (Printf.printf "  %s\n") Repro_mutator.Benchmarks.names;
    print_endline "collectors:";
    List.iter (fun (n, _) -> Printf.printf "  %s\n" n) (collectors_with_lxr ());
    print_endline "experiments:";
    List.iter (Printf.printf "  %s\n") Repro_harness.Experiments.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks, collectors, experiments.")
    Term.(const run $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "lxr_sim" ~doc:"LXR garbage collection simulator (PLDI 2022 reproduction)" in
  exit (Cmd.eval (Cmd.group ~default info [ run_cmd; experiment_cmd; list_cmd ]))
