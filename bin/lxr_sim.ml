(* lxr_sim — command-line driver for the LXR reproduction.

   Subcommands:
     run         one (benchmark, collector, heap factor) simulation
     experiment  regenerate a paper table or figure
     list        enumerate benchmarks, collectors and experiments *)

open Cmdliner

let die msg =
  Printf.eprintf "%s\n" msg;
  exit 2

let find_workload name =
  match Repro_harness.Collector_set.find_workload name with
  | Ok w -> w
  | Error msg -> die (msg ^ "\n(try: lxr_sim list)")

let bench_arg =
  let doc = "Benchmark name (see `lxr_sim list')." in
  Arg.(value & opt string "lusearch" & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let collector_arg =
  let doc = "Collector name (lxr, g1, shenandoah, zgc, serial, ...)." in
  Arg.(value & opt string "lxr" & info [ "c"; "collector" ] ~docv:"NAME" ~doc)

let factor_arg =
  let doc = "Heap size as a multiple of the benchmark's minimum heap." in
  Arg.(value & opt float 2.0 & info [ "f"; "heap-factor" ] ~docv:"X" ~doc)

let scale_arg =
  let doc = "Workload scale (allocation volume / request count)." in
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~docv:"X" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let iterations_arg =
  let doc = "Seeded repetitions feeding confidence intervals." in
  Arg.(value & opt int 2 & info [ "i"; "iterations" ] ~docv:"N" ~doc)

let verify_arg =
  let doc =
    "Run the heap-integrity verifier at the given safepoints: a \
     comma-separated subset of 'pre' (before each pause), 'post' (after \
     each pause) and 'end' (end of run), or 'all'."
  in
  Arg.(value & opt (some string) None & info [ "verify" ] ~docv:"POINTS" ~doc)

let inject_arg =
  let doc =
    "Inject deterministic faults, as 'class:rate' pairs separated by \
     commas. Classes: drop-barrier, skip-dec, rc-flip, remset, \
     alloc-fail. Example: --inject=drop-barrier:1e-4."
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SPEC" ~doc)

let record_arg =
  let doc =
    "Record the run's mutator event stream to $(docv) (replayable with \
     `lxr_trace replay')."
  in
  Arg.(value & opt (some string) None & info [ "record" ] ~docv:"FILE" ~doc)

let parse_verify = function
  | None -> []
  | Some s -> (
    match Repro_verify.Verifier.points_of_string s with
    | Ok points -> points
    | Error msg -> die (Printf.sprintf "--verify: %s" msg))

let parse_inject seed = function
  | None -> None
  | Some s -> (
    match Repro_engine.Fault.of_spec ~seed s with
    | Ok f -> Some f
    | Error msg -> die (Printf.sprintf "--inject: %s" msg))

(* --gc-threads accepts a work-packet lane count in [1, 64] or 'auto'
   (the runtime's recommendation); results are bit-identical for every
   value, so this is purely a host wall-clock knob. *)
let gc_threads_arg =
  let doc =
    "Work-packet lanes for collector phases (1-64, or 'auto'). Results \
     are bit-identical for every value."
  in
  Arg.(value & opt string "1" & info [ "gc-threads" ] ~docv:"N|auto" ~doc)

let parse_gc_threads s =
  match int_of_string_opt s with
  | Some n when n >= 1 && n <= 64 -> n
  | Some n ->
    die (Printf.sprintf "--gc-threads: %d is out of range; expected 1-64 or 'auto'" n)
  | None ->
    if String.lowercase_ascii s = "auto" then
      min 64 (max 1 (Domain.recommended_domain_count ()))
    else
      die
        (Printf.sprintf
           "unknown --gc-threads value %S%s; expected a count (1-64) or 'auto'"
           s
           (Repro_util.Suggest.hint ~candidates:[ "auto" ] s))

let knob_arg =
  let doc =
    "Override one LXR configuration knob, as name=value (repeatable; \
     see the knob table in lib/core/lxr_config.mli). Requires -c lxr. \
     Example: --lxr-knob=wastage_threshold=0.1."
  in
  Arg.(value & opt_all string [] & info [ "lxr-knob" ] ~docv:"NAME=VALUE" ~doc)

let controller_arg =
  let doc =
    "Tune LXR's knobs online between RC epochs: 'hill' or 'pid', \
     optionally with :key=value,... options (obj, seed, window, step, \
     kp, ki, kd, target, knobs). Requires -c lxr. Example: \
     --controller=hill:seed=7,window=4."
  in
  Arg.(value & opt (some string) None & info [ "controller" ] ~docv:"SPEC" ~doc)

let resolve_collector ?controller ?knobs name =
  match Repro_harness.Collector_set.resolve ?controller ?knobs name with
  | Ok f -> f
  | Error msg -> die (msg ^ "\n(try: lxr_sim list)")

let run_cmd =
  let run bench collector factor scale seed verify inject record gc_threads
      knobs controller =
    let w = find_workload bench in
    let factory = resolve_collector ?controller ~knobs collector in
    let points = parse_verify verify in
    let fault = parse_inject seed inject in
    let gc_threads = parse_gc_threads gc_threads in
    let r =
      Repro_harness.Runner.run ~seed ~scale ~gc_threads ~verify:points
        ?inject:fault ?record_to:record ~workload:w ~factory
        ~heap_factor:factor ()
    in
    Repro_harness.Report.print_result r;
    (match fault with
    | Some f ->
      Printf.printf "  faults     ";
      List.iter
        (fun (k, v) -> Printf.printf " %s=%.0f" k v)
        (Repro_engine.Fault.counts_alist f);
      print_newline ()
    | None -> ());
    (match record with
    | Some path -> Printf.printf "  trace       recorded to %s\n" path
    | None -> ());
    if not r.ok then exit 1
  in
  let term =
    Term.(
      const run $ bench_arg $ collector_arg $ factor_arg $ scale_arg $ seed_arg
      $ verify_arg $ inject_arg $ record_arg $ gc_threads_arg $ knob_arg
      $ controller_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one benchmark under one collector.") term

let experiment_cmd =
  let names = String.concat ", " Repro_harness.Experiments.names in
  let exp_arg =
    let doc = Printf.sprintf "Experiment to regenerate: %s, or 'all'." names in
    Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let run name scale iterations seed =
    let opts = { Repro_harness.Experiments.scale; iterations; seed } in
    let todo =
      if name = "all" then Repro_harness.Experiments.names else [ name ]
    in
    List.iter
      (fun n ->
        match Repro_harness.Experiments.by_name n with
        | Some f ->
          print_endline (f opts);
          print_newline ()
        | None ->
          die
            (Printf.sprintf "unknown experiment %S%s (known: %s)" n
               (Repro_util.Suggest.hint
                  ~candidates:Repro_harness.Experiments.names n)
               names))
      todo
  in
  let term = Term.(const run $ exp_arg $ scale_arg $ iterations_arg $ seed_arg) in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate a paper table or figure.") term

let list_cmd =
  let run () =
    print_endline "benchmarks:";
    List.iter (Printf.printf "  %s\n") Repro_mutator.Benchmarks.names;
    print_endline "collectors:";
    List.iter (Printf.printf "  %s\n") Repro_harness.Collector_set.names;
    print_endline "experiments:";
    List.iter (Printf.printf "  %s\n") Repro_harness.Experiments.names
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks, collectors, experiments.")
    Term.(const run $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "lxr_sim" ~doc:"LXR garbage collection simulator (PLDI 2022 reproduction)" in
  exit (Cmd.eval (Cmd.group ~default info [ run_cmd; experiment_cmd; list_cmd ]))
