(* The paper's headline result in miniature (Table 1).

   lusearch — a search engine with a ~10 GB/s allocation rate and a tiny
   heap — is run at a tight 1.3x heap under G1, Shenandoah, LXR, and
   Shenandoah again with 10x the memory. Watch two things: Shenandoah's
   short pauses do NOT produce low request latency at 1.3x (allocation
   stalls wreck the tail), and LXR's slightly longer pauses do.

   Run with: dune exec examples/lusearch_latency.exe *)

let () =
  let w = Repro_mutator.Benchmarks.find "lusearch" in
  let configs =
    [ ("G1        @ 1.3x", Repro_collectors.Registry.find "g1", 1.3);
      ("Shenandoah@ 1.3x", Repro_collectors.Registry.find "shenandoah", 1.3);
      ("LXR       @ 1.3x", Repro_lxr.Lxr.factory, 1.3);
      ("Shenandoah@ 10x ", Repro_collectors.Registry.find "shenandoah", 10.0) ]
  in
  Printf.printf
    "lusearch, %d requests, metered arrivals (%s)\n\
     %-18s %8s %9s | %8s %8s %8s | %8s %8s\n%!"
    (match w.request with Some r -> r.count | None -> 0)
    "latency percentiles in virtual ms"
    "collector" "kQPS" "time(ms)" "lat p50" "p99" "p99.99" "pause50" "pause99";
  List.iter
    (fun (name, factory, factor) ->
      let r =
        Repro_harness.Runner.run ~seed:42 ~workload:w ~factory ~heap_factor:factor ()
      in
      if not r.ok then
        Printf.printf "%-18s failed: %s\n%!" name (Option.value r.error ~default:"?")
      else begin
        let lat p =
          match r.latency with
          | Some h -> (
            match Repro_util.Histogram.percentile_opt h p with
            | Some v -> Float.of_int v /. 1e6
            | None -> 0.0)
          | None -> 0.0
        in
        let pause p =
          match Repro_util.Histogram.percentile_opt r.pauses p with
          | Some v -> Float.of_int v /. 1e6
          | None -> 0.0
        in
        Printf.printf "%-18s %8.0f %9.1f | %8.3f %8.3f %8.3f | %8.3f %8.3f\n%!"
          name
          (Repro_harness.Runner.qps r /. 1e3)
          (r.wall_ns /. 1e6) (lat 50.0) (lat 99.0) (lat 99.99) (pause 50.0)
          (pause 99.0)
      end)
    configs;
  Printf.printf
    "\nThe paper's shape (Table 1): Shenandoah's tiny pauses coexist with a\n\
     collapsed tail at 1.3x; given 10x memory it recovers; LXR delivers the\n\
     best tail with moderate pauses and no extra memory.\n"
