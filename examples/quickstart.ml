(* Quickstart: drive the LXR collector by hand.

   Builds a 2 MB Immix heap, allocates objects through the engine API
   (every operation flows through LXR's write barrier and triggers), and
   watches reference counting, young sweeping, and the backup SATB trace
   reclaim memory — a live rendition of the paper's Figure 1.

   Run with: dune exec examples/quickstart.exe *)

open Repro_heap
open Repro_engine
module Verifier = Repro_verify.Verifier

let () =
  (* 1. A heap of 64 Immix blocks (32 KB blocks, 256 B lines, 2-bit RC). *)
  let cfg = Heap_config.make ~heap_bytes:(2 * 1024 * 1024) () in
  let heap = Heap.create cfg in
  let sim = Sim.create Cost_model.default in
  let api = Api.create sim heap Repro_lxr.Lxr.factory in
  (* Cross-check the heap's redundant metadata at every pause boundary
     and at the end of the run. *)
  let verifier =
    Verifier.attach
      ~points:[ Verifier.Pre_pause; Verifier.Post_pause; Verifier.End_of_run ]
      api
  in
  Printf.printf "heap: %d blocks of %d KB, %d B lines, RC sticks at %d\n\n"
    (Heap_config.blocks cfg) (cfg.block_bytes / 1024) cfg.line_bytes
    (Heap_config.stuck_count cfg);

  (* 2. Build a small object graph: a rooted table pointing at children. *)
  let table = Api.alloc api ~size:128 ~nfields:8 in
  Api.set_root api 0 table.id;
  for i = 0 to 7 do
    let child = Api.alloc api ~size:64 ~nfields:2 in
    Api.write api table i child.id
  done;
  Printf.printf "after setup: %d live objects, %d KB live\n"
    (Obj_model.Registry.count heap.registry)
    (Heap.live_bytes heap / 1024);

  (* 3. Make garbage: allocate a heap's worth of unreferenced objects,
     overwrite half the table (dropping children), and build one
     unreachable cycle — the case reference counting alone cannot
     collect. *)
  let a = Api.alloc api ~size:64 ~nfields:2 in
  let b = Api.alloc api ~size:64 ~nfields:2 in
  Api.write api a 0 b.id;
  Api.write api b 0 a.id;
  Api.write api table 0 a.id;  (* reachable for now *)
  for i = 4 to 7 do
    Api.write api table i Obj_model.null
  done;
  Api.write api table 0 Obj_model.null;  (* cycle is now garbage *)
  for _ = 1 to 40_000 do
    ignore (Api.alloc api ~size:64 ~nfields:2)
  done;
  Api.finish api;

  (* 4. What happened, in the collector's own words. *)
  let stats = (Api.collector api).Collector.stats () in
  let stat k = match List.assoc_opt k stats with Some v -> v | None -> 0.0 in
  Printf.printf "after churning ~2.5 MB of garbage through the heap:\n";
  Printf.printf
    "  live objects        %d (survivors + the final epoch's young objects,\n\
     \                       which await their first RC pause)\n"
    (Obj_model.Registry.count heap.registry);
  Printf.printf "  RC pauses           %.0f (%.2f ms median)\n" (stat "rc_pauses")
    (match Repro_util.Histogram.percentile_opt (Sim.pauses sim) 50.0 with
    | Some v -> Float.of_int v /. 1e6
    | None -> 0.0);
  Printf.printf "  young reclaimed     %.0f KB without touching a dead object\n"
    (stat "young_reclaimed" /. 1024.0);
  Printf.printf "  mature RC reclaimed %.0f KB promptly via decrements\n"
    (stat "old_reclaimed" /. 1024.0);
  Printf.printf "  SATB reclaimed      %.0f KB of cycles / stuck counts\n"
    (stat "satb_reclaimed" /. 1024.0);
  Printf.printf "  young evacuated     %.0f KB (defragmentation copies)\n"
    (stat "young_evacuated" /. 1024.0);
  Printf.printf "  cycle collected?    %b\n"
    (not (Obj_model.Registry.mem heap.registry a.id));
  Printf.printf "\ntotal virtual time: %.2f ms (%.2f ms stopped, %.1f%%)\n"
    (Sim.now sim /. 1e6)
    (Sim.stw_wall sim /. 1e6)
    (100.0 *. Sim.stw_wall sim /. Sim.now sim);

  (* 5. The verifier's verdict: every safepoint check cross-validated the
     registry, RC table, block states, free lists and reachability. *)
  Verifier.finish verifier;
  Printf.printf "\nintegrity: %d verifier checks, %d violations\n"
    (Verifier.checks_run verifier)
    (Verifier.total_violations verifier);
  if not (Verifier.ok verifier) then begin
    print_string (Verifier.report verifier);
    exit 1
  end
