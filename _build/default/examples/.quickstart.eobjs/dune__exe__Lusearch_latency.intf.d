examples/lusearch_latency.mli:
