examples/lusearch_latency.ml: Float List Option Printf Repro_collectors Repro_harness Repro_lxr Repro_mutator Repro_util
