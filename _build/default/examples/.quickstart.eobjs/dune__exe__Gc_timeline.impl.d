examples/gc_timeline.ml: Api Bytes Cost_model Float List Printf Repro_engine Repro_heap Repro_lxr Repro_mutator Repro_util Sim String
