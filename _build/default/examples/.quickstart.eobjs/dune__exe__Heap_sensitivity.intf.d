examples/heap_sensitivity.mli:
