examples/linked_list_pathology.ml: Api Cost_model Heap Heap_config List Printf Repro_collectors Repro_engine Repro_heap Repro_lxr Sim
