examples/linked_list_pathology.mli:
