examples/gc_timeline.mli:
