examples/quickstart.ml: Api Collector Cost_model Float Heap Heap_config List Obj_model Printf Repro_engine Repro_heap Repro_lxr Repro_util Sim
