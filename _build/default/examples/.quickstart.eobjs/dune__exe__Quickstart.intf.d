examples/quickstart.mli:
