examples/heap_sensitivity.ml: List Printf Repro_collectors Repro_harness Repro_lxr Repro_mutator
