(* Figure 2, from a live run: LXR's timeline of brief stop-the-world RC
   pauses and concurrent activity (lazy decrements + SATB tracing).

   A slice of a lusearch run is rendered as a text timeline: one row of
   mutator execution, one row of stop-the-world pauses (= RC epochs, with
   # marking the pauses that also evacuate after an SATB completes), and
   one row of concurrent collector activity between them.

   Run with: dune exec examples/gc_timeline.exe *)

open Repro_engine

let width = 110

let () =
  (* Keep the metered request model: its think-time is where the
     concurrent LXR thread catches up, letting SATB cycles complete. *)
  let w = Repro_mutator.Benchmarks.find "lusearch" in
  let heap =
    Repro_heap.Heap.create
      (Repro_heap.Heap_config.make
         ~heap_bytes:(int_of_float (2.0 *. Float.of_int w.min_heap_bytes))
         ())
  in
  let sim = Sim.create Cost_model.default in
  let api = Api.create sim heap Repro_lxr.Lxr.factory in
  let prng = Repro_util.Prng.create 42 in
  ignore (Repro_mutator.Mut_engine.run api prng w ~scale:0.35);
  let events = Sim.events sim in
  (match events with
  | [] -> print_endline "no GC events recorded"
  | (first_start, _, _) :: _ ->
    let t1 = Sim.now sim in
    let span = t1 -. first_start in
    let col t =
      let c =
        int_of_float ((t -. first_start) /. span *. Float.of_int (width - 1))
      in
      max 0 (min (width - 1) c)
    in
    let stw = Bytes.make width ' ' in
    let conc = Bytes.make width ' ' in
    List.iter
      (fun (s, e, label) ->
        let glyph, row =
          match label with
          | "rc" -> ('|', stw)
          | "rc+evac" -> ('#', stw)
          | "concurrent" -> ('~', conc)
          | _ -> ('|', stw)
        in
        for c = col s to col e do
          Bytes.set row c glyph
        done)
      events;
    Printf.printf
      "LXR timeline, lusearch at 2x heap (%.1f ms of virtual time)\n\n" (span /. 1e6);
    Printf.printf "mutators    %s\n" (String.make width '=');
    Printf.printf "STW pauses  %s\n" (Bytes.to_string stw);
    Printf.printf "concurrent  %s\n\n" (Bytes.to_string conc);
    Printf.printf
      "  = mutator running   | RC pause   # RC pause with mature evacuation\n\
      \  ~ concurrent LXR thread (lazy decrements, old sweeping, SATB trace)\n\n";
    let pauses = List.filter (fun (_, _, l) -> l <> "concurrent") events in
    let satb = List.filter (fun (_, _, l) -> l = "rc+evac") pauses in
    Printf.printf
      "%d RC epochs, %d of which reclaimed an SATB cycle's garbage and\n\
       evacuated its fragmented blocks — the paper's Figure 2 in motion.\n"
      (List.length pauses) (List.length satb))
