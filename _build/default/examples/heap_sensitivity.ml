(* Garbage collection is a time-space tradeoff (§5.1 "Heap Size
   Sensitivity", Figure 7's x-axis).

   One benchmark (xalan: high allocation rate, 41% large objects, 17%
   survival) is run across heap sizes from a tight 1.3x to a roomy 6x
   under four collectors, printing total time and time stopped. Shapes to
   look for: every collector gets faster with more memory; the concurrent
   evacuating collector suffers most in tight heaps; LXR stays flat.

   Run with: dune exec examples/heap_sensitivity.exe *)

let () =
  let w = Repro_mutator.Benchmarks.find "xalan" in
  let collectors =
    [ ("G1", Repro_collectors.Registry.find "g1");
      ("LXR", Repro_lxr.Lxr.factory);
      ("Shenandoah", Repro_collectors.Registry.find "shenandoah");
      ("Serial", Repro_collectors.Registry.find "serial") ]
  in
  let factors = [ 1.3; 1.5; 2.0; 3.0; 4.0; 6.0 ] in
  Printf.printf "xalan: total time (ms) / stop-the-world (ms) by heap size\n\n";
  Printf.printf "%12s" "heap";
  List.iter (fun (n, _) -> Printf.printf " %18s" n) collectors;
  print_newline ();
  List.iter
    (fun factor ->
      Printf.printf "%11.1fx" factor;
      List.iter
        (fun (_, factory) ->
          let r =
            Repro_harness.Runner.run ~seed:17 ~workload:w ~factory
              ~heap_factor:factor ()
          in
          if r.ok then
            Printf.printf " %10.1f/%7.2f" (r.wall_ns /. 1e6) (r.stw_wall_ns /. 1e6)
          else Printf.printf " %18s" "-")
        collectors;
      print_newline ())
    factors;
  Printf.printf
    "\nTighter heaps mean more frequent collections; collectors that must\n\
     trace or copy the whole live set each cycle pay most. LXR's survival\n\
     and wastage triggers adapt the epoch length instead (§3.2).\n"
