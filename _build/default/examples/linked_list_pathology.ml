(* The tracing scalability pathology (§2.1, §5.2, avrora).

   A long singly-linked live list has a trace frontier of width one: no
   matter how many GC threads a tracing collector has, it walks the list
   serially on EVERY collection cycle. Reference counting only pays for
   the list when it dies. This example measures GC CPU time while the
   list length grows, under a tracing collector (Parallel, 4 GC threads)
   and under LXR.

   Run with: dune exec examples/linked_list_pathology.exe *)

open Repro_engine
open Repro_heap

let run ~factory ~list_len =
  let heap = Heap.create (Heap_config.make ~heap_bytes:(4 * 1024 * 1024) ()) in
  let sim = Sim.create Cost_model.default in
  let api = Api.create sim heap factory in
  (* Build the live list. *)
  let head = ref (Api.alloc api ~size:32 ~nfields:1) in
  Api.set_root api 0 !head.id;
  for _ = 2 to list_len do
    let node = Api.alloc api ~size:32 ~nfields:1 in
    Api.write api node 0 !head.id;
    Api.set_root api 0 node.id;
    head := node
  done;
  Sim.reset_measurement sim;
  let measure_start = Sim.now sim in
  (* Churn garbage: every collection must re-traverse the list. *)
  for _ = 1 to 120_000 do
    ignore (Api.alloc api ~size:64 ~nfields:2)
  done;
  Api.finish api;
  let wall = Sim.now sim -. measure_start in
  (Sim.gc_cpu sim /. 1e6, Sim.stw_wall sim /. 1e6, wall /. 1e6)

let () =
  Printf.printf
    "GC cost of churning 7.5 MB of garbage while a live list of N nodes exists\n\n";
  Printf.printf "%10s | %25s | %25s\n" "list nodes" "Parallel (tracing)"
    "LXR (reference counting)";
  Printf.printf "%10s | %10s %14s | %10s %14s\n" "" "gc cpu ms" "stw ms"
    "gc cpu ms" "stw ms";
  List.iter
    (fun n ->
      let t_cpu, t_stw, _ =
        run ~factory:(Repro_collectors.Registry.find "parallel") ~list_len:n
      in
      let l_cpu, l_stw, _ = run ~factory:Repro_lxr.Lxr.factory ~list_len:n in
      Printf.printf "%10d | %10.2f %14.2f | %10.2f %14.2f\n%!" n t_cpu t_stw l_cpu
        l_stw)
    [ 100; 2_000; 8_000; 20_000; 40_000 ];
  Printf.printf
    "\nThe tracing collector's cost grows with the list (it re-walks it,\n\
     serially, every cycle); LXR's occasional SATB backup trace pays the\n\
     cost only rarely — the paper's avrora result (§5.2) in isolation.\n"
