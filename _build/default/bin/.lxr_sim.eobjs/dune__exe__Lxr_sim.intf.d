bin/lxr_sim.mli:
