bin/lxr_sim.ml: Arg Cmd Cmdliner Float List Option Printf Repro_collectors Repro_harness Repro_lxr Repro_mutator Repro_util String Term
