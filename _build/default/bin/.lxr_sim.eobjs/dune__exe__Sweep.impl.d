bin/sweep.ml: Array List Printf Repro_collectors Repro_harness Repro_lxr Repro_mutator Sys
