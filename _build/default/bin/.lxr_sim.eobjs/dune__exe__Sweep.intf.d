bin/sweep.mli:
