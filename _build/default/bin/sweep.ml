(* Robustness sweep: every benchmark x collector x heap factor must run
   to completion (or fail with a documented Unsupported error). Used in
   development and as a slow integration check:
     dune exec bin/sweep.exe [scale] *)
let () =
  let scale = try float_of_string Sys.argv.(1) with _ -> 1.0 in
  let factors = [ 1.3; 2.0; 6.0 ] in
  let collectors =
    ("lxr", Repro_lxr.Lxr.factory)
    :: ("lxr-stw", Repro_lxr.Lxr.factory_stw)
    :: Repro_collectors.Registry.all
  in
  List.iter
    (fun factor ->
      List.iter
        (fun (w : Repro_mutator.Workload.t) ->
          List.iter
            (fun (cname, factory) ->
              let t0 = Sys.time () in
              let r =
                Repro_harness.Runner.run ~scale ~workload:w ~factory
                  ~heap_factor:factor ()
              in
              let host = Sys.time () -. t0 in
              Printf.printf "%4.1fx %-10s %-10s %s wall=%9.2fms stw=%7.2fms gc=%4d host=%5.2fs%s\n%!"
                factor w.name cname
                (if r.ok then "ok  " else "FAIL")
                (r.wall_ns /. 1e6) (r.stw_wall_ns /. 1e6) r.pause_count host
                (match r.error with Some e -> " [" ^ e ^ "]" | None -> ""))
            collectors)
        Repro_mutator.Benchmarks.all)
    factors
