(** Conservatively biased exponential-decay predictors (§3.2.1, §3.2.2).

    LXR predicts young survival rates (RC trigger) and post-SATB live
    block counts (wastage trigger) with an asymmetric exponential decay:
    when an observation exceeds the prediction the new value weighs 3/4,
    otherwise only 1/4 — biasing predictions high, i.e. conservatively
    toward more GC work being expected. *)

type t

(** [create ~initial] with the standard 3/4 : 1/4 weights. *)
val create : ?up_weight:float -> initial:float -> unit -> t

(** [observe t x] folds in an observation. *)
val observe : t -> float -> unit

(** Current prediction. *)
val value : t -> float
