type t = {
  mutable wb_fast : int;
  mutable wb_slow : int;
  mutable increments : int;
  mutable decrements : int;
  mutable rc_pauses : int;
  mutable satb_pauses : int;
  mutable unfinished_lazy_pauses : int;
  mutable young_reclaimed : int;
  mutable old_reclaimed : int;
  mutable satb_reclaimed : int;
  mutable young_evacuated : int;
  mutable mature_evacuated : int;
  mutable clean_young_blocks : int;
  mutable stuck_objects : int;
  mutable mature_objects_seen : int;
  mutable remset_entries : int;
  mutable remset_stale : int;
  mutable satb_traces_completed : int;
  mutable phase_inc_ns : float;
  mutable phase_dec_ns : float;
  mutable phase_sweep_ns : float;
  mutable phase_evac_ns : float;
  mutable phase_satb_ns : float;
}

let create () =
  { wb_fast = 0; wb_slow = 0; increments = 0; decrements = 0;
    rc_pauses = 0; satb_pauses = 0; unfinished_lazy_pauses = 0;
    young_reclaimed = 0; old_reclaimed = 0; satb_reclaimed = 0;
    young_evacuated = 0; mature_evacuated = 0; clean_young_blocks = 0;
    stuck_objects = 0; mature_objects_seen = 0;
    remset_entries = 0; remset_stale = 0; satb_traces_completed = 0;
    phase_inc_ns = 0.0; phase_dec_ns = 0.0; phase_sweep_ns = 0.0;
    phase_evac_ns = 0.0; phase_satb_ns = 0.0 }

let reclaimed_total t = t.young_reclaimed + t.old_reclaimed + t.satb_reclaimed

let pct part total = if total = 0 then 0.0 else 100.0 *. Float.of_int part /. Float.of_int total

let young_pct t = pct t.young_reclaimed (reclaimed_total t)
let old_pct t = pct t.old_reclaimed (reclaimed_total t)
let satb_pct t = pct t.satb_reclaimed (reclaimed_total t)
let stuck_pct t = pct t.stuck_objects (max 1 t.mature_objects_seen)

let yc_pct t ~block_bytes =
  let clean_bytes = t.clean_young_blocks * block_bytes in
  if clean_bytes = 0 then 0.0
  else 100.0 *. Float.of_int t.young_evacuated /. Float.of_int clean_bytes

let to_alist t =
  [ ("wb_fast", Float.of_int t.wb_fast);
    ("wb_slow", Float.of_int t.wb_slow);
    ("increments", Float.of_int t.increments);
    ("decrements", Float.of_int t.decrements);
    ("rc_pauses", Float.of_int t.rc_pauses);
    ("satb_pauses", Float.of_int t.satb_pauses);
    ("unfinished_lazy_pauses", Float.of_int t.unfinished_lazy_pauses);
    ("young_reclaimed", Float.of_int t.young_reclaimed);
    ("old_reclaimed", Float.of_int t.old_reclaimed);
    ("satb_reclaimed", Float.of_int t.satb_reclaimed);
    ("young_evacuated", Float.of_int t.young_evacuated);
    ("mature_evacuated", Float.of_int t.mature_evacuated);
    ("clean_young_blocks", Float.of_int t.clean_young_blocks);
    ("stuck_objects", Float.of_int t.stuck_objects);
    ("mature_objects_seen", Float.of_int t.mature_objects_seen);
    ("remset_entries", Float.of_int t.remset_entries);
    ("remset_stale", Float.of_int t.remset_stale);
    ("satb_traces_completed", Float.of_int t.satb_traces_completed);
    ("phase_inc_ns", t.phase_inc_ns);
    ("phase_dec_ns", t.phase_dec_ns);
    ("phase_sweep_ns", t.phase_sweep_ns);
    ("phase_evac_ns", t.phase_evac_ns);
    ("phase_satb_ns", t.phase_satb_ns) ]
