(** Counters behind Table 7's per-benchmark breakdown. *)

type t = {
  (* Barrier activity. *)
  mutable wb_fast : int;  (** barrier fast paths taken *)
  mutable wb_slow : int;  (** fields logged (slow paths) *)
  mutable increments : int;  (** RC increments applied *)
  mutable decrements : int;  (** RC decrements applied *)
  (* Pauses. *)
  mutable rc_pauses : int;
  mutable satb_pauses : int;  (** pauses that initiated an SATB trace *)
  mutable unfinished_lazy_pauses : int;
      (** pauses entered before lazy decrements completed *)
  (* Reclamation, in bytes. *)
  mutable young_reclaimed : int;  (** implicitly dead (never incremented) *)
  mutable old_reclaimed : int;  (** mature RC (decrement to zero) *)
  mutable satb_reclaimed : int;  (** cycles / stuck counts via the trace *)
  mutable young_evacuated : int;  (** bytes copied by young evacuation *)
  mutable mature_evacuated : int;  (** bytes copied by mature evacuation *)
  mutable clean_young_blocks : int;  (** completely free blocks from young sweeps *)
  (* Stuck counts, observed at each SATB reclamation. *)
  mutable stuck_objects : int;
  mutable mature_objects_seen : int;
  (* Remembered sets. *)
  mutable remset_entries : int;
  mutable remset_stale : int;  (** entries discarded by the reuse-counter check *)
  mutable satb_traces_completed : int;
  (* Pause-phase CPU breakdown (ns): where stop-the-world time goes. *)
  mutable phase_inc_ns : float;  (** root scan + increment processing *)
  mutable phase_dec_ns : float;  (** in-pause decrements (unfinished lazy / -LD) *)
  mutable phase_sweep_ns : float;  (** young-block sweeping *)
  mutable phase_evac_ns : float;  (** mature evacuation + SATB reclamation *)
  mutable phase_satb_ns : float;  (** in-pause tracing (-SATB / emergencies) *)
}

val create : unit -> t

(** Percentage splits for the Table 7 "Reclamation" columns; zero-safe. *)

val reclaimed_total : t -> int

val young_pct : t -> float
val old_pct : t -> float
val satb_pct : t -> float

(** Stuck mature objects as a percentage of mature objects inspected. *)
val stuck_pct : t -> float

(** Young bytes copied over young clean-block bytes freed ("YC"). *)
val yc_pct : t -> block_bytes:int -> float

(** Export everything for the generic collector stats hook. *)
val to_alist : t -> (string * float) list
