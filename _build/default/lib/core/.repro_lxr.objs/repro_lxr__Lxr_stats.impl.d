lib/core/lxr_stats.ml: Float
