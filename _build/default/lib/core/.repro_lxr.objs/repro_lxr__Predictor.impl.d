lib/core/predictor.ml:
