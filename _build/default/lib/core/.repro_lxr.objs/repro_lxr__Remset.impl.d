lib/core/remset.ml: Repro_util Vec
