lib/core/predictor.mli:
