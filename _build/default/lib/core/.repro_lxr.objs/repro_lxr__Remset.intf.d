lib/core/remset.mli:
