lib/core/lxr_stats.mli:
