lib/core/lxr_config.ml:
