lib/core/lxr.mli: Lxr_config Repro_engine
