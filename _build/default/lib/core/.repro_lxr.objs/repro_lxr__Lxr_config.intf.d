lib/core/lxr_config.mli:
