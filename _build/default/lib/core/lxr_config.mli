(** LXR tunables (§4 "LXR Configuration" and the Table 7 ablations).

    The paper's default configuration: a two-bit reference count (owned by
    {!Repro_heap.Heap_config}), a 128 MB survival threshold, no increment
    threshold, a 5% mature wastage threshold, and a single evacuation
    set. Thresholds expressed in bytes here scale with the (much smaller)
    simulated heaps via {!scaled_default}. *)

type t = {
  (* RC triggers (§3.2.1). *)
  survival_threshold_bytes : int;
      (** pause when predicted young survival since the last pause reaches
          this many bytes *)
  increment_threshold : int option;
      (** pause when the modified-field buffer reaches this size *)
  epoch_alloc_cap_bytes : int;
      (** hard cap on allocation between pauses (backstop trigger) *)
  free_low_watermark_blocks : int;
      (** pause when fewer free+recyclable blocks remain *)
  (* SATB triggers (§3.2.2). *)
  clean_blocks_trigger : int;
      (** request an SATB when an RC epoch yields fewer clean blocks *)
  wastage_threshold : float;  (** request an SATB at this predicted heap wastage *)
  satb_backstop_pauses : int;
      (** completeness backstop: request an SATB after this many RC pauses
          without one, so cyclic garbage cannot float forever *)
  (* Evacuation (§3.3.2). *)
  evacuate_young : bool;  (** implicitly-dead young evacuation *)
  max_evac_targets : int;  (** blocks per evacuation set *)
  evac_occupancy_max : float;  (** only blocks under this occupancy are targets *)
  evac_region_blocks : int;
      (** contiguous region granularity for evacuation sets (the paper's
          4 MB regions, scaled: 16 blocks = 512 KB) *)
  evac_regions_per_pause : int option;
      (** incremental evacuation: regions evacuated per RC pause ([None] =
          the whole evacuation set at once — the default single-set
          configuration of §4) *)
  (* Concurrency ablations (Table 7: -SATB, -LD, STW). *)
  concurrent_satb : bool;  (** trace concurrently; [false] = trace in the pause *)
  lazy_decrements : bool;  (** process decrements concurrently *)
  (* Barrier granularity (§3.4): the coalescing barrier may remember
     overwritten fields (precise, the evaluated default) or whole objects
     (cheaper mutator fast path, more collector work). *)
  field_logging_barrier : bool;
}

(** [scaled_default ~heap_bytes ~block_bytes] is the paper's default
    configuration with byte thresholds scaled to the simulated heap. *)
val scaled_default : heap_bytes:int -> block_bytes:int -> t

(** Ablated variants for Table 7. *)

val no_concurrent_satb : t -> t

val no_lazy_decrements : t -> t

(** Fully stop-the-world: both ablations — approximates RC-Immix. *)
val stw : t -> t

(** Object-remembering barrier variant (§3.4). *)
val object_barrier : t -> t

(** Region-based evacuation: many remembered sets, evacuated
    incrementally over RC pauses (§3.3.2). *)
val regional_evacuation : t -> t
