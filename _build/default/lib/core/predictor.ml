type t = { mutable value : float; up_weight : float }

let create ?(up_weight = 0.75) ~initial () =
  if up_weight < 0.0 || up_weight > 1.0 then invalid_arg "Predictor.create";
  { value = initial; up_weight }

let observe t x =
  let w = if x > t.value then t.up_weight else 1.0 -. t.up_weight in
  t.value <- (w *. x) +. ((1.0 -. w) *. t.value)

let value t = t.value
