type t = {
  survival_threshold_bytes : int;
  increment_threshold : int option;
  epoch_alloc_cap_bytes : int;
  free_low_watermark_blocks : int;
  clean_blocks_trigger : int;
  wastage_threshold : float;
  satb_backstop_pauses : int;
  evacuate_young : bool;
  max_evac_targets : int;
  evac_occupancy_max : float;
  evac_region_blocks : int;
  evac_regions_per_pause : int option;
  concurrent_satb : bool;
  lazy_decrements : bool;
  field_logging_barrier : bool;
}

let scaled_default ~heap_bytes ~block_bytes =
  let blocks = heap_bytes / block_bytes in
  { (* The paper's 128 MB threshold sits at ~1/16 of its typical 2 GB
       heap budgets; keep the same proportion. *)
    survival_threshold_bytes = max (2 * block_bytes) (heap_bytes / 16);
    increment_threshold = None;
    epoch_alloc_cap_bytes = max (4 * block_bytes) (heap_bytes / 4);
    free_low_watermark_blocks = max 2 (blocks / 24);
    clean_blocks_trigger = max 1 (blocks / 24);
    wastage_threshold = 0.05;
    satb_backstop_pauses = 12;
    evacuate_young = true;
    (* The default configuration uses a single whole-heap evacuation set
       (§4): every sufficiently fragmented block is a candidate. *)
    max_evac_targets = max 2 (blocks / 2);
    evac_occupancy_max = 0.5;
    evac_region_blocks = 16;
    evac_regions_per_pause = None;
    concurrent_satb = true;
    lazy_decrements = true;
    field_logging_barrier = true }

let no_concurrent_satb t = { t with concurrent_satb = false }
let no_lazy_decrements t = { t with lazy_decrements = false }
let stw t = { t with concurrent_satb = false; lazy_decrements = false }
let object_barrier t = { t with field_logging_barrier = false }
let regional_evacuation t = { t with evac_regions_per_pause = Some 1 }
