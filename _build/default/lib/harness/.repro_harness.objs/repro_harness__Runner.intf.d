lib/harness/runner.mli: Repro_engine Repro_heap Repro_mutator Repro_util
