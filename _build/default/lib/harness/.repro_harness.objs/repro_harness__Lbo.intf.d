lib/harness/lbo.mli: Runner
