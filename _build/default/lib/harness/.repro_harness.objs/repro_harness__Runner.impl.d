lib/harness/runner.ml: Api Collector Cost_model Float Heap Heap_config Histogram List Prng Repro_collectors Repro_engine Repro_heap Repro_mutator Repro_util Sim
