lib/harness/experiments.mli:
