lib/harness/lbo.ml: Float List Runner
