type metric = Wall | Cycles

let value metric (r : Runner.result) =
  match metric with
  | Wall -> r.wall_ns
  | Cycles -> r.mutator_cpu_ns +. r.gc_cpu_ns

let stripped metric (r : Runner.result) =
  match metric with
  | Wall -> r.wall_ns -. r.stw_wall_ns
  | Cycles -> r.mutator_cpu_ns +. r.gc_cpu_ns -. r.stw_cpu_ns

let baseline metric rs =
  List.fold_left
    (fun acc (r : Runner.result) ->
      if not r.ok then acc
      else begin
        let v = stripped metric r in
        match acc with
        | None -> Some v
        | Some best -> Some (Float.min best v)
      end)
    None rs

let overhead metric ~baseline (r : Runner.result) =
  if (not r.ok) || baseline <= 0.0 then None else Some (value metric r /. baseline)
