(** Lower-bound overhead analysis (Cai et al. 2022; §5.5).

    For each (benchmark, metric) the baseline approximating an ideal
    zero-cost collector is the cheapest execution across a suite of
    collectors after subtracting its easy-to-measure stop-the-world cost.
    A collector's LBO is its full metric divided by that baseline — a
    lower bound on its true overhead. Two metrics are evaluated:
    wall-clock time (Figure 7a) and total CPU cycles across all cores,
    which exposes concurrent collection work (Figure 7b). *)

type metric = Wall | Cycles

(** [value metric r] is the full cost of run [r] under [metric]. *)
val value : metric -> Runner.result -> float

(** [baseline metric rs] is the minimum STW-subtracted cost among the
    successful runs [rs] (the same benchmark across collectors). Returns
    [None] if no run succeeded. *)
val baseline : metric -> Runner.result list -> float option

(** [overhead metric ~baseline r] is [value / baseline]; [None] for
    failed runs. *)
val overhead : metric -> baseline:float -> Runner.result -> float option
