(** Multi-series ASCII line charts for the benchmark harness's figures.

    Renders each series with its own glyph on a shared grid with labelled
    axes and a legend — enough to eyeball the latency response curves
    (Figure 5) and the LBO overhead curves (Figure 7) in a terminal. *)

(** [render ~title ~x_label ~y_label ~series ()] plots each series' (x, y)
    points. Options: [log_y] plots log10 of the y values (latency tails),
    [width]/[height] size the plotting grid in characters. Series beyond
    the glyph alphabet reuse glyphs. Raises [Invalid_argument] if no
    series has a point or a [log_y] value is non-positive. *)
val render :
  ?log_y:bool ->
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series:(string * (float * float) list) list ->
  unit ->
  string
