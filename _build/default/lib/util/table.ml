type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?aligns ~title ~header ~rows () =
  let ncols = List.length header in
  List.iter
    (fun row ->
      if List.length row <> ncols then invalid_arg "Table.render: ragged rows")
    rows;
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ -> invalid_arg "Table.render: aligns arity"
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (List.iteri (fun i cell ->
         if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    rows;
  let buf = Buffer.create 1024 in
  let line ch =
    let total = Array.fold_left (fun acc w -> acc + w + 3) 1 widths in
    Buffer.add_string buf (String.make total ch);
    Buffer.add_char buf '\n'
  in
  let emit_row cells =
    Buffer.add_string buf "|";
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  line '-';
  emit_row header;
  line '-';
  List.iter emit_row rows;
  line '-';
  Buffer.contents buf

let fms ns = Printf.sprintf "%.1f" (Float.of_int ns /. 1e6)
let fsec ns = Printf.sprintf "%.1f" (Float.of_int ns /. 1e9)
let fratio r = Printf.sprintf "%.3f" r
let fpct p = Printf.sprintf "%.1f" p
let f1 x = Printf.sprintf "%.1f" x

let fint n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
