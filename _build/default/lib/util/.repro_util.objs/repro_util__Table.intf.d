lib/util/table.mli:
