lib/util/stats.mli:
