lib/util/histogram.mli:
