lib/util/prng.mli:
