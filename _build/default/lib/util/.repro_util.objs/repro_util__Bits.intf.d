lib/util/bits.mli:
