lib/util/bits.ml:
