lib/util/vec.mli:
