(** Summary statistics used throughout the evaluation harness.

    These mirror the paper's methodology (§4): geometric means over
    benchmarks, percentile tail latencies, and 95% confidence intervals
    expressed as a fraction of the reported value. *)

(** [mean xs] is the arithmetic mean. Raises [Invalid_argument] on an
    empty list. *)
val mean : float list -> float

(** [geomean xs] is the geometric mean of strictly positive values. Values
    [<= 0.] raise [Invalid_argument]. *)
val geomean : float list -> float

(** [stddev xs] is the sample standard deviation (n-1 denominator); [0.]
    for fewer than two samples. *)
val stddev : float list -> float

(** [percentile xs p] is the [p]-th percentile ([0. <= p <= 100.]) using
    linear interpolation between closest ranks. Raises [Invalid_argument]
    on an empty list or out-of-range [p]. *)
val percentile : float list -> float -> float

(** [percentile_sorted arr p] is [percentile] over an already-sorted
    array, avoiding the sort. *)
val percentile_sorted : float array -> float -> float

(** [confidence95 xs] is the half-width of the 95% confidence interval of
    the mean (1.96 standard errors); [0.] for fewer than two samples. *)
val confidence95 : float list -> float

(** [confidence95_fraction xs] is [confidence95 xs /. mean xs], matching
    the paper's "±0.500 means the interval extends 50% over the reported
    result" convention. [0.] when the mean is zero. *)
val confidence95_fraction : float list -> float

(** [min_max xs] returns the minimum and maximum. Raises
    [Invalid_argument] on an empty list. *)
val min_max : float list -> float * float

(** [normalize ~base xs] divides each element of [xs] by [base], the
    "relative to G1" convention of Tables 5 and 6. *)
val normalize : base:float -> float list -> float list
