let log2 v =
  if v < 1 then invalid_arg "Bits.log2";
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let clz63 v =
  if v < 1 then invalid_arg "Bits.clz63";
  62 - log2 v

let is_power_of_two v = v >= 1 && v land (v - 1) = 0

let round_up v align =
  if not (is_power_of_two align) then invalid_arg "Bits.round_up: align";
  (v + align - 1) land lnot (align - 1)
