(** Small bit-twiddling helpers shared by side-metadata tables. *)

(** [clz63 v] counts leading zeros of [v] viewed as a 63-bit value.
    [clz63 1 = 62]; requires [v >= 1]. *)
val clz63 : int -> int

(** [is_power_of_two v] for [v >= 1]. *)
val is_power_of_two : int -> bool

(** [log2 v] is the floor of log2 for [v >= 1]. *)
val log2 : int -> int

(** [round_up v align] rounds [v] up to a multiple of power-of-two
    [align]. *)
val round_up : int -> int -> int
