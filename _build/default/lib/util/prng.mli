(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through an explicit [Prng.t] so
    that every experiment is reproducible from its seed. The generator is
    SplitMix64 (Steele et al., OOPSLA 2014): fast, high quality for
    simulation purposes, and trivially splittable. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new generator from [t], advancing [t]. Streams of
    the parent and child are statistically independent. *)
val split : t -> t

(** [next t] is the next raw 64-bit output (as an OCaml [int], so 63 bits
    of it; the sign bit is cleared). *)
val next : t -> int

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)
val bool : t -> float -> bool

(** [exponential t ~mean] samples an exponential distribution. Used for
    Poisson request inter-arrival times. *)
val exponential : t -> mean:float -> float

(** [geometric_size t ~mean ~min ~max] samples an object size with the
    given mean, clamped to [\[min, max\]]. The distribution is a shifted
    geometric, matching the heavy small-object skew of real Java heaps. *)
val geometric_size : t -> mean:int -> min:int -> max:int -> int

(** [pick t arr] is a uniformly random element of [arr]. Raises
    [Invalid_argument] on an empty array. *)
val pick : t -> 'a array -> 'a
