type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let next t = Int64.to_int (next_int64 t) land max_int

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62
     so modulo bias is negligible for simulation purposes. *)
  next t mod bound

let float t bound = Float.of_int (next t) /. Float.of_int max_int *. bound

let bool t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 1e-12 then 1e-12 else u in
  -.mean *. log u

let geometric_size t ~mean ~min ~max =
  if mean <= min then min
  else begin
    let span = Float.of_int (mean - min) in
    let v = min + int_of_float (exponential t ~mean:span) in
    if v < min then min else if v > max then max else v
  end

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))
