let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(log_y = false) ?(width = 64) ?(height = 16) ~title ~x_label
    ~y_label ~series () =
  let points =
    List.concat_map
      (fun (_, pts) ->
        List.map
          (fun (x, y) ->
            if log_y && y <= 0.0 then
              invalid_arg "Ascii_chart.render: non-positive value under log_y";
            (x, if log_y then log10 y else y))
          pts)
      series
  in
  if points = [] then invalid_arg "Ascii_chart.render: no data";
  let xs = List.map fst points and ys = List.map snd points in
  let fmin l = List.fold_left Float.min (List.hd l) l in
  let fmax l = List.fold_left Float.max (List.hd l) l in
  let x0 = fmin xs and x1 = fmax xs in
  let y0 = fmin ys and y1 = fmax ys in
  let xspan = if x1 > x0 then x1 -. x0 else 1.0 in
  let yspan = if y1 > y0 then y1 -. y0 else 1.0 in
  let grid = Array.make_matrix height width ' ' in
  let plot gi (x, y) =
    let y = if log_y then log10 y else y in
    let col =
      int_of_float ((x -. x0) /. xspan *. Float.of_int (width - 1) +. 0.5)
    in
    let row =
      height - 1
      - int_of_float ((y -. y0) /. yspan *. Float.of_int (height - 1) +. 0.5)
    in
    let col = max 0 (min (width - 1) col) and row = max 0 (min (height - 1) row) in
    grid.(row).(col) <- glyphs.(gi mod Array.length glyphs)
  in
  List.iteri (fun gi (_, pts) -> List.iter (plot gi) pts) series;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let unscale v = if log_y then Float.pow 10.0 v else v in
  let y_tick row =
    let frac = Float.of_int (height - 1 - row) /. Float.of_int (height - 1) in
    unscale (y0 +. (frac *. yspan))
  in
  for row = 0 to height - 1 do
    let label =
      if row = 0 || row = height - 1 || row = height / 2 then
        Printf.sprintf "%10.3g |" (y_tick row)
      else Printf.sprintf "%10s |" ""
    in
    Buffer.add_string buf label;
    Buffer.add_string buf (String.init width (fun c -> grid.(row).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "%10s  %-8.3g%s%8.3g\n" "" x0
       (String.make (max 1 (width - 16)) ' ')
       x1);
  Buffer.add_string buf (Printf.sprintf "%12s%s" "" x_label);
  Buffer.add_string buf
    (Printf.sprintf "   (y: %s%s)\n" y_label (if log_y then ", log scale" else ""));
  Buffer.add_string buf "  legend: ";
  List.iteri
    (fun gi (name, _) ->
      Buffer.add_string buf
        (Printf.sprintf "%c=%s  " glyphs.(gi mod Array.length glyphs) name))
    series;
  Buffer.add_char buf '\n';
  Buffer.contents buf
