(** Plain-text table rendering for the benchmark harness.

    The bench executable prints each reproduced paper table in a fixed
    monospace layout so that paper-vs-measured comparisons are readable in
    a terminal log. *)

type align = Left | Right

(** [render ~title ~header ~rows ()] lays the table out with columns sized
    to content. All rows must have the same arity as [header]; raises
    [Invalid_argument] otherwise. The first column is left-aligned and the
    rest right-aligned unless [aligns] overrides this. *)
val render :
  ?aligns:align list -> title:string -> header:string list -> rows:string list list -> unit -> string

(** Formatting helpers used when building rows. *)

(** [fms ns] renders nanoseconds as milliseconds with one decimal,
    e.g. [fms 4_600_000 = "4.6"]. *)
val fms : int -> string

(** [fsec ns] renders nanoseconds as seconds with one decimal. *)
val fsec : int -> string

(** [fratio r] renders a ratio with three decimals, e.g. ["0.958"]. *)
val fratio : float -> string

(** [fpct p] renders a percentage with one decimal. *)
val fpct : float -> string

(** [f1 x] renders a float with one decimal. *)
val f1 : float -> string

(** [fint n] renders an integer with thousands separators. *)
val fint : int -> string
