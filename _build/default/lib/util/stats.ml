let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. Float.of_int (List.length xs)

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty"
  | xs ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
          acc +. log x)
        0.0 xs
    in
    exp (sum_logs /. Float.of_int (List.length xs))

let stddev xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. Float.of_int (n - 1))
  end

let percentile_sorted arr p =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: out of range";
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100.0 *. Float.of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then arr.(lo)
    else begin
      let frac = rank -. Float.of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
    end
  end

let percentile xs p =
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  percentile_sorted arr p

let confidence95 xs =
  let n = List.length xs in
  if n < 2 then 0.0 else 1.96 *. stddev xs /. sqrt (Float.of_int n)

let confidence95_fraction xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else confidence95 xs /. m

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

let normalize ~base xs =
  if base = 0.0 then invalid_arg "Stats.normalize: zero base";
  List.map (fun x -> x /. base) xs
