let null = 0

type t = {
  id : int;
  size : int;
  fields : int array;
  mutable addr : int;
  mutable birth_epoch : int;
  logged : Bytes.t;
}

let is_freed obj = obj.addr < 0

let field_logged obj i =
  Char.code (Bytes.get obj.logged (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_field_logged obj i v =
  let byte = i lsr 3 and bit = 1 lsl (i land 7) in
  let old = Char.code (Bytes.get obj.logged byte) in
  let nw = if v then old lor bit else old land lnot bit in
  Bytes.set obj.logged byte (Char.chr nw)

let set_all_logged obj v =
  Bytes.fill obj.logged 0 (Bytes.length obj.logged) (if v then '\255' else '\000')

module Registry = struct
  type obj = t

  type t = {
    tbl : (int, obj) Hashtbl.t;
    mutable next_id : int;
    mutable bytes : int;
  }

  let create () = { tbl = Hashtbl.create 4096; next_id = 1; bytes = 0 }

  let register reg ~size ~nfields ~addr ~birth_epoch =
    let id = reg.next_id in
    reg.next_id <- id + 1;
    let obj =
      { id;
        size;
        fields = Array.make nfields null;
        addr;
        birth_epoch;
        (* New objects are born all-logged: the barrier ignores mutations
           to them, implementing the implicitly-dead optimization. *)
        logged = Bytes.make ((nfields + 7) / 8) '\255' }
    in
    Hashtbl.replace reg.tbl id obj;
    reg.bytes <- reg.bytes + size;
    obj

  let get reg id = Hashtbl.find reg.tbl id
  let find reg id = Hashtbl.find_opt reg.tbl id
  let mem reg id = Hashtbl.mem reg.tbl id

  let free reg obj =
    if not (is_freed obj) then begin
      Hashtbl.remove reg.tbl obj.id;
      reg.bytes <- reg.bytes - obj.size;
      obj.addr <- -1
    end

  let count reg = Hashtbl.length reg.tbl
  let live_bytes reg = reg.bytes
  let iter f reg = Hashtbl.iter (fun _ obj -> f obj) reg.tbl

  let reachable_from reg roots =
    let seen = Hashtbl.create 1024 in
    let stack = Stack.create () in
    let visit id =
      if id <> null && (not (Hashtbl.mem seen id)) && mem reg id then begin
        Hashtbl.replace seen id ();
        Stack.push id stack
      end
    in
    List.iter visit roots;
    while not (Stack.is_empty stack) do
      let id = Stack.pop stack in
      match find reg id with
      | None -> ()
      | Some obj -> Array.iter visit obj.fields
    done;
    seen
end
