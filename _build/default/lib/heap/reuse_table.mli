(** Per-line reuse counters for remembered-set staleness (§3.3.2).

    A remembered-set entry is a pointer to a field; if the source object
    dies and its line is reused before the evacuation pause, the entry is
    stale. Each line carries a reuse counter that is reset at each SATB
    start and incremented whenever the line is allocated into again; each
    remset entry is tagged with the counter value of its source line at
    creation, and entries whose line is newer are discarded at evacuation
    time. *)

type t

val create : Heap_config.t -> t

(** Current counter of global line [l]. *)
val get : t -> int -> int

(** [bump t l] notes that line [l] has been (re)allocated into. *)
val bump : t -> int -> unit

(** [bump_range t ~first ~last] bumps an inclusive range of global
    lines. *)
val bump_range : t -> first:int -> last:int -> unit

(** [reset_all t] zeroes every counter (done at each SATB start). *)
val reset_all : t -> unit
