(** Simulated objects and the object registry.

    References between objects are integer ids ([0] is null) rather than
    OCaml pointers, so an independent reachability oracle can audit the
    collectors (see {!Registry.reachable_from}). Each object records its
    current simulated address; evacuation reassigns the address while the
    id — and therefore every "pointer" — stays valid, which plays the role
    of the forwarding pointer in the real system.

    Per-field logged bits implement the coalescing write barrier's
    unlogged-bit side metadata (§3.4): a set bit means the field has
    already been logged this epoch (or the object is new) and the barrier
    fast path applies. *)

(** The null reference. *)
val null : int

type t = {
  id : int;
  size : int;  (** bytes, granule aligned, including header *)
  fields : int array;  (** referent object ids; {!null} for empty slots *)
  mutable addr : int;  (** current simulated address; [-1] once freed *)
  mutable birth_epoch : int;  (** RC epoch in which the object was allocated *)
  logged : Bytes.t;  (** one bit per field; set = barrier fast path *)
}

(** [is_freed obj]. *)
val is_freed : t -> bool

(** [field_logged obj i] / [set_field_logged obj i v]: the unlogged-bit
    protocol. New objects are created all-logged. *)
val field_logged : t -> int -> bool

val set_field_logged : t -> int -> bool -> unit

(** [set_all_logged obj v] bulk-sets every field's bit — used when a young
    object survives its first collection and must start logging. *)
val set_all_logged : t -> bool -> unit

module Registry : sig
  (** The id -> object map. Freeing an object removes it, letting the
      (real) OCaml GC reclaim the record. *)

  type obj := t
  type t

  val create : unit -> t

  (** [register reg ~size ~nfields ~addr ~birth_epoch] creates a fresh
      object with all-null fields and all-logged bits, installs it, and
      returns it. *)
  val register : t -> size:int -> nfields:int -> addr:int -> birth_epoch:int -> obj

  (** [get reg id] raises [Not_found] if [id] is null or freed. *)
  val get : t -> int -> obj

  val find : t -> int -> obj option
  val mem : t -> int -> bool

  (** [free reg obj] removes the object and marks it freed. *)
  val free : t -> obj -> unit

  (** Number of live (registered) objects. *)
  val count : t -> int

  (** Total bytes of live objects. *)
  val live_bytes : t -> int

  val iter : (obj -> unit) -> t -> unit

  (** [reachable_from reg roots] is the id set reachable from [roots] by
      following fields — the oracle used by correctness tests. *)
  val reachable_from : t -> int list -> (int, unit) Hashtbl.t
end
