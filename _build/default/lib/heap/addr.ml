let block_of (cfg : Heap_config.t) addr = addr / cfg.block_bytes
let block_start (cfg : Heap_config.t) b = b * cfg.block_bytes
let line_of (cfg : Heap_config.t) addr = addr / cfg.line_bytes

let line_in_block (cfg : Heap_config.t) addr =
  addr mod cfg.block_bytes / cfg.line_bytes

let line_start (cfg : Heap_config.t) l = l * cfg.line_bytes
let granule_of (cfg : Heap_config.t) addr = addr / cfg.granule_bytes
let granule_start (cfg : Heap_config.t) g = g * cfg.granule_bytes
let is_granule_aligned (cfg : Heap_config.t) addr = addr mod cfg.granule_bytes = 0

let lines_covered cfg ~addr ~size =
  (line_of cfg addr, line_of cfg (addr + size - 1))

let valid (cfg : Heap_config.t) addr = addr >= 0 && addr < cfg.heap_bytes
