(** Per-block metadata.

    Blocks move through states: [Free] (on the global free list),
    [Recyclable] (partially free, on the recyclable list), [Owned] (held
    by a thread-local allocator), [In_use] (retired, holding data), and
    [Los_backing] (carved out to back a large object, invisible to the
    block allocators). The [young] flag marks blocks that were handed out
    completely free during the current RC epoch and therefore contain only
    young objects — the young-sweep and all-young-evacuation candidates
    (§3.3.1/§3.3.2). *)

type state = Free | Recyclable | Owned | In_use | Los_backing

type t

val create : Heap_config.t -> t

val state : t -> int -> state
val set_state : t -> int -> state -> unit

val young : t -> int -> bool
val set_young : t -> int -> bool -> unit

(** Evacuation-target flag (the block belongs to the current evacuation
    set). *)
val target : t -> int -> bool

val set_target : t -> int -> bool -> unit

(** Resident object ids. The list may contain stale ids of freed or moved
    objects; consumers must filter (see {!compact}). *)
val residents : t -> int -> Repro_util.Vec.t

val add_resident : t -> int -> int -> unit

(** [compact t b ~live] rebuilds block [b]'s resident list keeping only
    ids that satisfy [live]. *)
val compact : t -> int -> live:(int -> bool) -> unit

(** [iter_state t st f] applies [f] to every block index in state [st]. *)
val iter_state : t -> state -> (int -> unit) -> unit

val count_state : t -> state -> int
val total : t -> int
