lib/heap/reuse_table.mli: Heap_config
