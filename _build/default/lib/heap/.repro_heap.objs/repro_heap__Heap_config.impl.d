lib/heap/heap_config.ml: Printf Repro_util
