lib/heap/addr.ml: Heap_config
