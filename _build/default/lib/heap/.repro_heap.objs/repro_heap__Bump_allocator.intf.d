lib/heap/bump_allocator.mli: Blocks Free_lists Heap_config Rc_table Reuse_table
