lib/heap/heap_config.mli:
