lib/heap/obj_model.mli: Bytes Hashtbl
