lib/heap/addr.mli: Heap_config
