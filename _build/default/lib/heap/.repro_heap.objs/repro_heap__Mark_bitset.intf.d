lib/heap/mark_bitset.mli:
