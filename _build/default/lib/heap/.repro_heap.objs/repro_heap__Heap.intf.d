lib/heap/heap.mli: Blocks Bump_allocator Free_lists Hashtbl Heap_config Mark_bitset Obj_model Rc_table Reuse_table
