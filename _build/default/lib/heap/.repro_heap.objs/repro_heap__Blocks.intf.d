lib/heap/blocks.mli: Heap_config Repro_util
