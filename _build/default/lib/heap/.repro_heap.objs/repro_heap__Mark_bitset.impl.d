lib/heap/mark_bitset.ml: Bytes Char
