lib/heap/bump_allocator.ml: Addr Blocks Free_lists Heap_config Rc_table Reuse_table
