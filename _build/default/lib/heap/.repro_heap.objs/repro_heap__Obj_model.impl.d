lib/heap/obj_model.ml: Array Bytes Char Hashtbl List Stack
