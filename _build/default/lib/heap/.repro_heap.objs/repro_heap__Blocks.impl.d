lib/heap/blocks.ml: Array Bytes Heap_config List Repro_util
