lib/heap/heap.ml: Addr Bits Blocks Bump_allocator Free_lists Hashtbl Heap_config List Mark_bitset Obj_model Rc_table Repro_util Reuse_table Vec
