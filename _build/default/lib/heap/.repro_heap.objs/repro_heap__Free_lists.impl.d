lib/heap/free_lists.ml: Repro_util Vec
