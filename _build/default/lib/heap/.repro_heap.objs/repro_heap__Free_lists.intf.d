lib/heap/free_lists.mli:
