lib/heap/rc_table.ml: Addr Bytes Char Heap_config
