lib/heap/reuse_table.ml: Array Heap_config
