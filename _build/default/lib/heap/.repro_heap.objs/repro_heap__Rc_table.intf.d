lib/heap/rc_table.mli: Heap_config
