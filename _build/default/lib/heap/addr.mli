(** Address arithmetic over the simulated heap.

    An address is a byte offset into the block-structured heap,
    [0 <= addr < heap_bytes]. Large objects live at addresses that are
    block-aligned starts of their backing blocks, so every object address
    is covered by the same arithmetic. *)

type cfg := Heap_config.t

(** Index of the block containing [addr]. *)
val block_of : cfg -> int -> int

(** First address of block [b]. *)
val block_start : cfg -> int -> int

(** Global line index (across the whole heap) containing [addr]. *)
val line_of : cfg -> int -> int

(** Line index within its block, [0 <= i < lines_per_block]. *)
val line_in_block : cfg -> int -> int

(** First address of global line [l]. *)
val line_start : cfg -> int -> int

(** Global granule index of [addr]; [addr] need not be aligned. *)
val granule_of : cfg -> int -> int

(** First address of global granule [g]. *)
val granule_start : cfg -> int -> int

(** [is_granule_aligned cfg addr]. *)
val is_granule_aligned : cfg -> int -> bool

(** [lines_covered cfg ~addr ~size] is the inclusive global line index
    range occupied by an object of [size] bytes at [addr]. *)
val lines_covered : cfg -> addr:int -> size:int -> int * int

(** [valid cfg addr] is true when [addr] lies within the heap. *)
val valid : cfg -> int -> bool
