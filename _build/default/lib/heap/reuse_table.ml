type t = int array

let create cfg = Array.make (Heap_config.total_lines cfg) 0
let get t l = t.(l)
let bump t l = t.(l) <- t.(l) + 1

let bump_range t ~first ~last =
  for l = first to last do
    bump t l
  done

let reset_all t = Array.fill t 0 (Array.length t) 0
