lib/collectors/mark_sweep.ml: Addr Array Blocks Bump_allocator Collector Float Free_lists Heap Heap_config Mark_bitset Obj_model Repro_engine Repro_heap Sim Stw_common Trace_cost
