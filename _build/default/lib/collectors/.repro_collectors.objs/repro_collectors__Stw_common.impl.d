lib/collectors/stw_common.ml: Array Blocks Compaction Cost_model Float Heap Heap_config List Mark_bitset Obj_model Rc_table Repro_engine Repro_heap Repro_util Sim Trace_cost Vec
