lib/collectors/semispace.mli: Repro_engine
