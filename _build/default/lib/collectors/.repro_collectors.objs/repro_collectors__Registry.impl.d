lib/collectors/registry.ml: Conc_mark_evac G1 List Mark_sweep Semispace String
