lib/collectors/conc_mark_evac.mli: Repro_engine
