lib/collectors/g1.mli: Repro_engine
