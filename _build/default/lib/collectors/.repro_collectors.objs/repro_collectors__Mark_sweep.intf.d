lib/collectors/mark_sweep.mli: Repro_engine
