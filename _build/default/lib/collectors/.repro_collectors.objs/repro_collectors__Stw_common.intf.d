lib/collectors/stw_common.mli: Repro_engine Repro_heap
