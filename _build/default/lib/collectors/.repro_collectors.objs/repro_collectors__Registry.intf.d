lib/collectors/registry.mli: Repro_engine
