(** Name-indexed access to every baseline collector factory. *)

(** [find name] — case-insensitive; raises [Not_found] for unknown
    names. Known names: serial, parallel, immix, semispace, g1,
    shenandoah, zgc. *)
val find : string -> Repro_engine.Collector.factory

(** All (name, factory) pairs. *)
val all : (string * Repro_engine.Collector.factory) list
