(** Concurrent-mark, concurrent-evacuation collectors (§2.4, §2.5).

    Shenandoah and ZGC share this engine: a loaded-value barrier filters
    every reference load; reclamation happens {e only} through
    evacuation — a cycle concurrently marks the whole heap
    (non-generational), selects a collection set of sparse blocks,
    evacuates it concurrently (stealing cores and polluting the memory
    system), updates references, and finally frees the emptied blocks.
    Pauses are brief (init-mark, final-mark, cleanup), but when the
    allocation rate outruns concurrent reclamation the allocator stalls
    until the cycle frees space, degenerating to a full stop-the-world
    collection when even that fails — the lusearch pathology of Tables 1
    and 6. *)

exception Unsupported of string

type params = {
  name : string;
  lvb_ns : float -> float;  (** read barrier cost given [Cost_model.lvb_ns] *)
  satb_write_barrier : bool;  (** Shenandoah logs overwritten values while marking *)
  conc_threads : int;
  trigger_free_fraction : float;  (** start a cycle when free space drops below *)
  cset_occupancy_max : float;  (** live fraction under which a block joins the cset *)
  min_heap_bytes : int option;  (** refuse smaller heaps (ZGC, §4) *)
}

val shenandoah_params : params

val zgc_params : params

(** [factory params] — raises {!Unsupported} at creation when the heap is
    below [min_heap_bytes]. *)
val factory : params -> Repro_engine.Collector.factory

val shenandoah : Repro_engine.Collector.factory
val zgc : Repro_engine.Collector.factory
