(** Garbage-First (Detlefs et al. 2004), OpenJDK's default collector.

    Region-based and strictly copying (§2.5): young blocks are evacuated
    at stop-the-world pauses using remembered sets of old-to-young
    references maintained by the write barrier; a concurrent SATB marking
    cycle starts when old occupancy crosses a threshold; after marking,
    {e mixed} collections evacuate the old blocks with the least live
    data, guided by per-block remembered sets of cross-block references.
    Reclamation happens only when a region empties — dead objects in
    dense regions float until their region is chosen. A stop-the-world
    full mark-sweep is the fallback when the region machinery cannot keep
    up, which is the source of G1's long tail pauses on h2 (§5.1). *)

val factory : Repro_engine.Collector.factory
