let all =
  [ ("serial", Mark_sweep.serial);
    ("parallel", Mark_sweep.parallel);
    ("immix", Mark_sweep.immix);
    ("semispace", Semispace.factory);
    ("g1", G1.factory);
    ("shenandoah", Conc_mark_evac.shenandoah);
    ("zgc", Conc_mark_evac.zgc) ]

let find name = List.assoc (String.lowercase_ascii name) all
