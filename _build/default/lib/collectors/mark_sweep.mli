(** Stop-the-world full-heap tracing collectors.

    Three of the paper's comparison points share this implementation:

    - {!serial}: single GC thread, mark-sweep — OpenJDK's Serial;
    - {!parallel}: [gc_threads]-way mark-sweep — OpenJDK's Parallel;
    - {!immix}: parallel mark-region with opportunistic defragmenting
      evacuation of the most fragmented blocks (Blackburn & McKinley
      2008) — also the {b no-write-barrier baseline} used to measure
      LXR's field-barrier overhead (Table 7 "o/h").

    None of them uses any barrier; a full trace is required before any
    memory is reclaimed, so their scalability is bounded by the heap
    graph's frontier width. *)

val serial : Repro_engine.Collector.factory

val parallel : Repro_engine.Collector.factory
val immix : Repro_engine.Collector.factory
