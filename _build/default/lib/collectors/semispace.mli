(** Stop-the-world semispace copying collector.

    Collects when half the heap is consumed, evacuating every live object
    to fresh blocks and freeing everything else wholesale. High space
    overhead and long pauses, but minimal per-object bookkeeping and
    perfect allocator locality — which is why it frequently provides the
    lower-bound baseline in the paper's LBO methodology (§5.5). *)

val factory : Repro_engine.Collector.factory
