(** The virtual-time cost model.

    Every simulated operation is charged a cost in virtual nanoseconds.
    The constants below are calibrated against the measurements the paper
    reports — e.g. field loads outnumber stores roughly 15:1 (64.3/µs vs
    4.3/µs, §2.2), the field-logging write barrier costs ~1.6% of mutator
    time, read barriers are about five times as expensive as an object
    remembering barrier — so that *relative* results reproduce the paper's
    shape. Absolute values are arbitrary but fixed.

    The core model: the machine has [cores] hardware threads shared by
    [mutator_threads] and GC. Stop-the-world work is divided among
    [gc_threads], limited by the parallelism available in the work itself
    (see {!Trace_cost}); concurrent GC occupies cores, slowing the
    mutator when the machine is saturated. *)

type t = {
  cores : int;
  mutator_threads : int;
  gc_threads : int;  (** parallel STW collector threads *)
  (* Mutator operations. *)
  alloc_fast_ns : float;
  alloc_slow_ns : float;  (** per hole search / slow path *)
  block_acquire_ns : float;
  buffer_contention_ns : float;  (** extra per block acquire, per buffer entry *)
  zero_ns_per_byte : float;
  read_ns : float;  (** plain field load *)
  write_ns : float;  (** plain field store *)
  (* Barriers. *)
  wb_fast_ns : float;  (** field-logging barrier fast path (unlogged check) *)
  wb_slow_ns : float;  (** logging slow path (synchronized) *)
  lvb_ns : float;  (** loaded value barrier, per reference load *)
  satb_wb_ns : float;  (** separate SATB write barrier (Shenandoah) *)
  card_wb_ns : float;  (** G1 card/remset write barrier *)
  (* Collector work. *)
  root_scan_ns : float;  (** per root slot *)
  inc_ns : float;  (** per RC increment applied *)
  dec_ns : float;  (** per RC decrement applied *)
  trace_obj_ns : float;  (** per object scanned during a trace *)
  copy_ns_per_byte : float;
  sweep_line_ns : float;
  sweep_block_ns : float;
  remset_entry_ns : float;
  pause_base_ns : float;  (** fixed safepoint synchronization cost *)
  (* Memory-system interference: concurrent copying consumes cache and
     DRAM bandwidth (§1), charged as a mutator slowdown fraction while
     concurrent evacuation is running. *)
  conc_copy_interference : float;
  (* Concurrent GC threads accomplish less per CPU-nanosecond than
     stop-the-world ones (synchronization with a running mutator, barrier
     traffic, cache contention): each unit of concurrent work costs
     [1 / conc_efficiency] CPU-ns. This is what makes concurrent cycles
     long relative to allocation (§1, Table 1) and shows up as the extra
     cycles in Figure 7b. *)
  conc_efficiency : float;
}

(** The default calibration (a 16-core/32-thread Zen 3-like machine, 8
    mutator threads, 4 STW GC threads). *)
val default : t

(** [scaled ?mutator_threads ?gc_threads t] overrides thread counts. *)
val with_threads : ?cores:int -> ?mutator_threads:int -> ?gc_threads:int -> t -> t
