(** Guaranteed-progress sliding compaction.

    The emergency defragmentation every collector falls back on when the
    free-block supply is exhausted: repeatedly select the sparsest data
    blocks whose live bytes fit in the currently free block capacity,
    evacuate them completely, and return them to the free list — each
    round's emptied blocks fund the next. Costs accumulate into the given
    {!Trace_cost.t}; the caller wraps the call in a pause. Dead objects
    must already have been reclaimed. *)

(** [reclassify heap] re-derives every non-reserve data block's state
    from the RC table and rebuilds the free lists (partially filled
    compaction destinations become recyclable again). *)
val reclassify : Repro_heap.Heap.t -> unit

(** [compact heap tc ~cost ~threads ~gc_alloc] returns the bytes
    copied. *)
val compact :
  Repro_heap.Heap.t ->
  Trace_cost.t ->
  cost:Cost_model.t ->
  threads:int ->
  gc_alloc:Repro_heap.Bump_allocator.t ->
  int
