(** Parallelism-aware cost accounting for graph traces.

    Tracing parallelism is bounded by the width of the live frontier
    (Barabash & Petrank 2010, cited as [5] in the paper): a singly-linked
    list has frontier width 1 and defeats parallel tracing no matter how
    many GC threads are available. Collectors add each trace step with
    the frontier width observed at that step; [critical_ns] is the
    resulting wall-clock lower bound with [threads] workers, and [cpu_ns]
    the total CPU work. *)

type t

val create : unit -> t

(** [add t ~threads ~frontier ~cost_ns] records one step of [cost_ns] CPU
    work executed while [frontier] items were available. *)
val add : t -> threads:int -> frontier:int -> cost_ns:float -> unit

(** [add_parallel t ~threads ~cost_ns] records embarrassingly parallel
    work (frontier effectively unbounded). *)
val add_parallel : t -> threads:int -> cost_ns:float -> unit

(** [add_serial t ~cost_ns] records inherently serial work. *)
val add_serial : t -> cost_ns:float -> unit

val cpu_ns : t -> float
val critical_ns : t -> float
val reset : t -> unit
