lib/engine/trace_cost.mli:
