lib/engine/api.mli: Collector Repro_heap Sim
