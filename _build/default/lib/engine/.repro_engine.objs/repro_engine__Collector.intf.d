lib/engine/collector.mli: Repro_heap Sim
