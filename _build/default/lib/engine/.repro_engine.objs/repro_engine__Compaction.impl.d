lib/engine/compaction.ml: Addr Blocks Cost_model Float Hashtbl Heap Heap_config List Obj_model Rc_table Repro_heap Repro_util Trace_cost
