lib/engine/sim.ml: Cost_model Float List Repro_util
