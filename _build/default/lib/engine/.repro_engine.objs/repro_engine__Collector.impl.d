lib/engine/collector.ml: Repro_heap Sim
