lib/engine/trace_cost.ml: Float
