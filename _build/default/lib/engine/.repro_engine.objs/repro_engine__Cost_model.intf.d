lib/engine/cost_model.mli:
