lib/engine/compaction.mli: Cost_model Repro_heap Trace_cost
