lib/engine/cost_model.ml: Option
