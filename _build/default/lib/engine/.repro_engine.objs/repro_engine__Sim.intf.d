lib/engine/sim.mli: Cost_model Repro_util
