lib/engine/api.ml: Array Bump_allocator Collector Float Heap Obj_model Printf Repro_heap Sim
