(** The interface every garbage collector implements.

    A collector is a record of closures over its own state, created from
    a {!Sim.t} and a heap by a {!factory}. The engine calls [on_write]
    before each reference store (the write barrier observes the
    to-be-overwritten value), charges [read_extra_ns]/[write_extra_ns] on
    each load/store (barrier fast paths), polls at safepoints, and drives
    concurrent work through [conc_active]/[conc_run]. *)

type t = {
  name : string;
  on_alloc : Repro_heap.Obj_model.t -> unit;
      (** post-allocation hook (e.g. SATB allocation colouring) *)
  on_write : Repro_heap.Obj_model.t -> int -> int -> unit;
      (** [on_write src field new_ref] runs before the store; the old
          value is still in [src.fields.(field)] *)
  write_extra_ns : float;  (** barrier fast-path cost per reference store *)
  read_extra_ns : float;  (** read barrier cost per reference load *)
  poll : unit -> unit;  (** safepoint: check triggers, maybe pause *)
  on_heap_full : unit -> bool;
      (** allocation failed; collect. [false] means no progress possible *)
  conc_active : unit -> int;  (** concurrent GC threads currently wanting CPU *)
  conc_run : budget_ns:float -> float;  (** run concurrent work, return consumed *)
  on_finish : unit -> unit;  (** end of run: final bookkeeping *)
  stats : unit -> (string * float) list;  (** collector-specific counters *)
}

type factory = Sim.t -> Repro_heap.Heap.t -> roots:int array -> t

(** A collector with no concurrency — helper for building records. *)
val no_concurrency : unit -> (unit -> int) * (budget_ns:float -> float)
