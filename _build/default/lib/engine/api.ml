open Repro_heap

exception Out_of_memory of string

let root_slots = 256

type t = {
  sim : Sim.t;
  heap : Heap.t;
  collector : Collector.t;
  allocator : Bump_allocator.t;
  roots : int array;
  flush_threshold : float;
}

let create sim heap factory =
  let roots = Array.make root_slots Obj_model.null in
  let collector = factory sim heap ~roots in
  { sim;
    heap;
    collector;
    allocator = Heap.make_allocator heap;
    roots;
    flush_threshold = 5_000.0 }

let sim t = t.sim
let heap t = t.heap
let collector t = t.collector
let roots t = t.roots

let flush t =
  Sim.flush t.sim ~conc_threads:(t.collector.conc_active ())
    ~conc_run:t.collector.conc_run

let maybe_flush t = if Sim.pending t.sim >= t.flush_threshold then flush t

let safepoint t =
  flush t;
  t.collector.poll ()

let charge_alloc_receipt t =
  let r = Bump_allocator.receipt t.allocator in
  let c = Sim.cost t.sim in
  let contention =
    c.buffer_contention_ns *. Float.of_int t.heap.cfg.free_buffer_entries
  in
  let ns =
    (Float.of_int r.slow_allocs *. c.alloc_slow_ns)
    +. (Float.of_int r.blocks_acquired *. (c.block_acquire_ns +. contention))
    +. (Float.of_int r.bytes_zeroed *. c.zero_ns_per_byte)
  in
  if ns > 0.0 then Sim.charge_mutator t.sim ns;
  Bump_allocator.reset_receipt t.allocator

let alloc t ~size ~nfields =
  let c = Sim.cost t.sim in
  Sim.charge_mutator t.sim c.alloc_fast_ns;
  let rec attempt tries =
    match Heap.alloc t.heap t.allocator ~size ~nfields with
    | Some obj ->
      charge_alloc_receipt t;
      Sim.note_alloc t.sim ~bytes:obj.Obj_model.size;
      t.collector.on_alloc obj;
      (* Hold the new object in the scratch root across the safepoint —
         the register/stack reference a real mutator would have. *)
      t.roots.(root_slots - 1) <- obj.Obj_model.id;
      maybe_flush t;
      t.collector.poll ();
      obj
    | None ->
      charge_alloc_receipt t;
      flush t;
      if tries > 0 && t.collector.on_heap_full () then attempt (tries - 1)
      else begin
        (* Last resort: hand the to-space reserve to the mutator. *)
        Heap.release_reserve t.heap;
        match Heap.alloc t.heap t.allocator ~size ~nfields with
        | Some obj ->
          charge_alloc_receipt t;
          Sim.note_alloc t.sim ~bytes:obj.Obj_model.size;
          t.collector.on_alloc obj;
          t.roots.(root_slots - 1) <- obj.Obj_model.id;
          obj
        | None ->
        raise
          (Out_of_memory
             (Printf.sprintf "%s: cannot allocate %d bytes (live %d / heap %d)"
                t.collector.name size (Heap.live_bytes t.heap)
                (Heap.total_bytes t.heap)))
      end
  in
  attempt 4

let write t obj field ref_id =
  let c = Sim.cost t.sim in
  Sim.charge_mutator t.sim (c.write_ns +. t.collector.write_extra_ns);
  t.collector.on_write obj field ref_id;
  obj.Obj_model.fields.(field) <- ref_id;
  maybe_flush t

let read t obj field =
  let c = Sim.cost t.sim in
  Sim.charge_mutator t.sim (c.read_ns +. t.collector.read_extra_ns);
  maybe_flush t;
  obj.Obj_model.fields.(field)

let work t ~ns =
  Sim.charge_mutator t.sim ns;
  maybe_flush t

let set_root t slot ref_id =
  let c = Sim.cost t.sim in
  Sim.charge_mutator t.sim c.write_ns;
  t.roots.(slot) <- ref_id

let get_root t slot =
  let c = Sim.cost t.sim in
  Sim.charge_mutator t.sim c.read_ns;
  t.roots.(slot)

let idle_until t until =
  flush t;
  Sim.advance_idle t.sim ~until ~conc_threads:(t.collector.conc_active ())
    ~conc_run:t.collector.conc_run

let finish t =
  flush t;
  t.collector.on_finish ();
  flush t
