type t = {
  cores : int;
  mutator_threads : int;
  gc_threads : int;
  alloc_fast_ns : float;
  alloc_slow_ns : float;
  block_acquire_ns : float;
  buffer_contention_ns : float;
  zero_ns_per_byte : float;
  read_ns : float;
  write_ns : float;
  wb_fast_ns : float;
  wb_slow_ns : float;
  lvb_ns : float;
  satb_wb_ns : float;
  card_wb_ns : float;
  root_scan_ns : float;
  inc_ns : float;
  dec_ns : float;
  trace_obj_ns : float;
  copy_ns_per_byte : float;
  sweep_line_ns : float;
  sweep_block_ns : float;
  remset_entry_ns : float;
  pause_base_ns : float;
  conc_copy_interference : float;
  conc_efficiency : float;
}

let default =
  { cores = 32;
    mutator_threads = 8;
    gc_threads = 4;
    alloc_fast_ns = 6.0;
    alloc_slow_ns = 60.0;
    block_acquire_ns = 300.0;
    buffer_contention_ns = 2.0;
    zero_ns_per_byte = 0.03;
    read_ns = 1.0;
    write_ns = 1.5;
    (* Field-logging barrier: ~1.6% mutator overhead (§3.4, Table 7). *)
    wb_fast_ns = 0.45;
    wb_slow_ns = 8.0;
    (* LVB filters every reference load; reads are ~15x more frequent
       than stores, making its aggregate cost ~5x that of a store barrier
       (§2.2): ~8% of mutator time against the field barrier's 1.6%. *)
    lvb_ns = 0.5;
    satb_wb_ns = 0.35;
    card_wb_ns = 0.5;
    root_scan_ns = 12.0;
    inc_ns = 7.0;
    dec_ns = 8.0;
    trace_obj_ns = 50.0;
    copy_ns_per_byte = 0.45;
    sweep_line_ns = 6.0;
    sweep_block_ns = 350.0;
    remset_entry_ns = 8.0;
    pause_base_ns = 18_000.0;
    conc_copy_interference = 0.35;
    conc_efficiency = 0.4 }

let with_threads ?cores ?mutator_threads ?gc_threads t =
  { t with
    cores = Option.value cores ~default:t.cores;
    mutator_threads = Option.value mutator_threads ~default:t.mutator_threads;
    gc_threads = Option.value gc_threads ~default:t.gc_threads }
