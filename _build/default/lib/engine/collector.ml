type t = {
  name : string;
  on_alloc : Repro_heap.Obj_model.t -> unit;
  on_write : Repro_heap.Obj_model.t -> int -> int -> unit;
  write_extra_ns : float;
  read_extra_ns : float;
  poll : unit -> unit;
  on_heap_full : unit -> bool;
  conc_active : unit -> int;
  conc_run : budget_ns:float -> float;
  on_finish : unit -> unit;
  stats : unit -> (string * float) list;
}

type factory = Sim.t -> Repro_heap.Heap.t -> roots:int array -> t

let no_concurrency () = ((fun () -> 0), fun ~budget_ns:_ -> 0.0)
