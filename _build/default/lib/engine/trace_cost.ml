type t = { mutable cpu : float; mutable critical : float }

let create () = { cpu = 0.0; critical = 0.0 }

let add t ~threads ~frontier ~cost_ns =
  let par = if frontier < 1 then 1 else if frontier > threads then threads else frontier in
  t.cpu <- t.cpu +. cost_ns;
  t.critical <- t.critical +. (cost_ns /. Float.of_int par)

let add_parallel t ~threads ~cost_ns = add t ~threads ~frontier:max_int ~cost_ns
let add_serial t ~cost_ns = add t ~threads:1 ~frontier:1 ~cost_ns
let cpu_ns t = t.cpu
let critical_ns t = t.critical

let reset t =
  t.cpu <- 0.0;
  t.critical <- 0.0
