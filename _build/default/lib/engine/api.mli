(** The mutator-facing API.

    Workloads interact with the heap exclusively through this module so
    that every allocation, reference load, reference store and unit of
    application compute is charged to the virtual clock, routed through
    the collector's barriers, and interleaved with safepoints and
    concurrent GC progress. *)

exception Out_of_memory of string

type t

(** [create sim heap factory] instantiates the collector and a mutator
    allocator. The root array has {!root_slots} entries. *)
val create : Sim.t -> Repro_heap.Heap.t -> Collector.factory -> t

val root_slots : int

val sim : t -> Sim.t
val heap : t -> Repro_heap.Heap.t
val collector : t -> Collector.t
val roots : t -> int array

(** [alloc t ~size ~nfields] allocates an object, retrying through
    emergency collections when the heap is full. Raises {!Out_of_memory}
    when the collector cannot make progress. The new object is held in
    the reserved scratch root (slot [root_slots - 1]) across the
    allocation safepoint; install it somewhere reachable before the next
    allocation or it may be reclaimed. *)
val alloc : t -> size:int -> nfields:int -> Repro_heap.Obj_model.t

(** [write t obj field ref_id] stores a reference through the write
    barrier. *)
val write : t -> Repro_heap.Obj_model.t -> int -> int -> unit

(** [read t obj field] loads a reference through the read barrier. *)
val read : t -> Repro_heap.Obj_model.t -> int -> int

(** [work t ~ns] charges pure application compute. *)
val work : t -> ns:float -> unit

(** [set_root t slot ref_id] / [get_root t slot]: mutator root table. *)
val set_root : t -> int -> int -> unit

val get_root : t -> int -> int

(** [safepoint t] flushes pending work and polls the collector. Called
    automatically by [alloc]; workloads may also call it on loop
    back-edges. *)
val safepoint : t -> unit

(** [idle_until t ns] advances the clock to [ns] (e.g. waiting for the
    next request arrival), letting concurrent GC use the idle cores. *)
val idle_until : t -> float -> unit

(** [finish t] flushes everything and runs the collector's final hook. *)
val finish : t -> unit
