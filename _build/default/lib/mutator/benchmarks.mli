(** The 17 DaCapo Chopin benchmark models (Table 3).

    Heaps and allocation volumes are scaled down ~16x from the paper
    (clamped to 1.5-12 MB minimum heaps and 8-24 MB of allocation) so a
    run completes in milliseconds of host time; ratios — allocation to
    heap, survival, object demographics — follow the published values.
    cassandra, h2, lusearch and tomcat carry the metered request model. *)

val all : Workload.t list

(** The four latency-sensitive workloads (§5.1). *)
val latency_sensitive : Workload.t list

(** [find name] — raises [Not_found] for unknown names. *)
val find : string -> Workload.t

(** [names] in Table 3 order. *)
val names : string list
