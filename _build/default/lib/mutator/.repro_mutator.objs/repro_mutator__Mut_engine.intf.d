lib/mutator/mut_engine.mli: Repro_engine Repro_util Workload
