lib/mutator/benchmarks.mli: Workload
