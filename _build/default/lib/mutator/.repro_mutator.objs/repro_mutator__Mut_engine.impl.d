lib/mutator/mut_engine.ml: Api Float Histogram Prng Repro_engine Repro_heap Repro_util Sim Workload
