lib/mutator/workload.mli:
