lib/mutator/workload.ml: Float
