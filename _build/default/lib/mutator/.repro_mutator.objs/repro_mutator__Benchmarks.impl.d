lib/mutator/benchmarks.ml: Float List Workload
