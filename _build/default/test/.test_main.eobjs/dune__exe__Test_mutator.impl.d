test/test_mutator.ml: Alcotest Benchmarks Float List Repro_harness Repro_lxr Repro_mutator Repro_util Workload
