test/test_engine.ml: Alcotest Api Array Collector Cost_model Heap Heap_config Repro_engine Repro_heap Repro_util Sim Trace_cost
