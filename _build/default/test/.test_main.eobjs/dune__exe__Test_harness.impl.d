test/test_harness.ml: Alcotest Experiments Lbo List Repro_collectors Repro_harness Repro_heap Repro_lxr Repro_mutator Repro_util Runner String
