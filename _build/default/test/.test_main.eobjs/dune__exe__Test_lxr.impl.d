test/test_lxr.ml: Alcotest Api Array Collector Cost_model Float Hashtbl Heap Heap_config List Obj_model QCheck QCheck_alcotest Repro_engine Repro_heap Repro_lxr Repro_util Reuse_table Sim
