test/test_util.ml: Alcotest Array Ascii_chart Bits Float Gen Histogram List Prng QCheck QCheck_alcotest Repro_util Stats String Table Vec
