test/test_compaction.ml: Addr Alcotest Blocks Compaction Cost_model Free_lists Heap Heap_config List Obj_model QCheck QCheck_alcotest Rc_table Repro_engine Repro_heap Trace_cost
