test/test_collectors.ml: Addr Alcotest Api Array Blocks Collector Cost_model Hashtbl Heap Heap_config List Obj_model Repro_collectors Repro_engine Repro_heap Repro_util Sim
