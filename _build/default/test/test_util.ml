(* Unit and property tests for Repro_util. *)

open Repro_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Prng --------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next a = Prng.next b then incr same
  done;
  check "streams differ" true (!same < 4)

let test_prng_copy_independent () =
  let a = Prng.create 3 in
  ignore (Prng.next a);
  let b = Prng.copy a in
  check_int "copy continues identically" (Prng.next a) (Prng.next b)

let test_prng_split () =
  let a = Prng.create 5 in
  let child = Prng.split a in
  (* The child stream should not be a prefix of the parent stream. *)
  let parent_vals = List.init 16 (fun _ -> Prng.next a) in
  let child_vals = List.init 16 (fun _ -> Prng.next child) in
  check "split independent" true (parent_vals <> child_vals)

let test_prng_int_bounds () =
  let p = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.int p 17 in
    check "bound" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let p = Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p 0))

let test_prng_bool_extremes () =
  let p = Prng.create 13 in
  check "p=0 never" false (Prng.bool p 0.0);
  check "p=1 always" true (Prng.bool p 1.0)

let test_prng_bool_rate () =
  let p = Prng.create 17 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bool p 0.3 then incr hits
  done;
  let rate = Float.of_int !hits /. Float.of_int n in
  check "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_prng_exponential_mean () =
  let p = Prng.create 19 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential p ~mean:100.0
  done;
  let mean = !sum /. Float.of_int n in
  check "exponential mean" true (mean > 95.0 && mean < 105.0)

let test_prng_geometric_size () =
  let p = Prng.create 23 in
  for _ = 1 to 1000 do
    let v = Prng.geometric_size p ~mean:64 ~min:16 ~max:256 in
    check "clamped" true (v >= 16 && v <= 256)
  done;
  check_int "mean<=min gives min" 32 (Prng.geometric_size p ~mean:16 ~min:32 ~max:64)

let test_prng_pick () =
  let p = Prng.create 29 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 50 do
    let v = Prng.pick p arr in
    check "member" true (Array.exists (fun x -> x = v) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick p [||]))

(* --- Vec ---------------------------------------------------------------- *)

let test_vec_push_pop () =
  let v = Vec.create () in
  for i = 1 to 100 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  for i = 100 downto 1 do
    check_int "pop order" i (Vec.pop v)
  done;
  check "empty" true (Vec.is_empty v)

let test_vec_growth () =
  let v = Vec.create ~capacity:1 () in
  for i = 0 to 9999 do
    Vec.push v i
  done;
  check_int "get first" 0 (Vec.get v 0);
  check_int "get last" 9999 (Vec.get v 9999)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 2));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop (Vec.create ())))

let test_vec_clear_keeps_storage () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.clear v;
  check_int "cleared" 0 (Vec.length v);
  Vec.push v 9;
  check_int "reusable" 9 (Vec.get v 0)

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check_int "fold sum" 10 (Vec.fold ( + ) 0 v);
  let seen = ref [] in
  Vec.iter (fun x -> seen := x :: !seen) v;
  Alcotest.(check (list int)) "iter order" [ 4; 3; 2; 1 ] !seen

let test_vec_swap_remove () =
  let v = Vec.of_list [ 10; 20; 30; 40 ] in
  check_int "removed" 20 (Vec.swap_remove v 1);
  check_int "length" 3 (Vec.length v);
  check_int "last moved in" 40 (Vec.get v 1)

let test_vec_append_sort () =
  let a = Vec.of_list [ 3; 1 ] and b = Vec.of_list [ 2 ] in
  Vec.append a b;
  Vec.sort compare a;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Vec.to_list a)

let test_vec_exists () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check "exists" true (Vec.exists (fun x -> x = 2) v);
  check "not exists" false (Vec.exists (fun x -> x = 7) v)

let vec_roundtrip_prop =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

let vec_push_pop_prop =
  QCheck.Test.make ~name:"vec push then pop reverses" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      let out = List.init (Vec.length v) (fun _ -> Vec.pop v) in
      out = List.rev xs)

(* --- Stats --------------------------------------------------------------- *)

let test_stats_mean () = check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])

let test_stats_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25 interpolated" 2.0 (Stats.percentile xs 25.0)

let test_stats_percentile_unsorted () =
  check_float "handles unsorted" 3.0 (Stats.percentile [ 5.0; 1.0; 3.0; 2.0; 4.0 ] 50.0)

let test_stats_stddev () =
  check_float "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  check_float "single" 0.0 (Stats.stddev [ 5.0 ])

let test_stats_confidence () =
  check_float "ci single" 0.0 (Stats.confidence95 [ 5.0 ]);
  let ci = Stats.confidence95 [ 1.0; 2.0; 3.0 ] in
  check "ci positive" true (ci > 0.0);
  check_float "fraction" (ci /. 2.0) (Stats.confidence95_fraction [ 1.0; 2.0; 3.0 ])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.0; 1.0; 2.0 ] in
  check_float "min" 1.0 lo;
  check_float "max" 3.0 hi

let test_stats_normalize () =
  Alcotest.(check (list (float 1e-9)))
    "normalize" [ 0.5; 1.0 ]
    (Stats.normalize ~base:2.0 [ 1.0; 2.0 ])

let stats_percentile_monotone_prop =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
              (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (xs <> []);
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let stats_geomean_le_mean_prop =
  QCheck.Test.make ~name:"geomean <= mean (AM-GM)" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (float_range 0.001 1000.0))
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-6)

(* --- Histogram ----------------------------------------------------------- *)

let test_histogram_basic () =
  let h = Histogram.create () in
  Histogram.record h 100;
  Histogram.record h 200;
  Histogram.record h 300;
  check_int "count" 3 (Histogram.count h);
  check_int "total" 600 (Histogram.total h)

let test_histogram_percentile_exact_small () =
  (* Values below the sub-bucket count are exact. *)
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3; 4; 5 ];
  check_int "p50 small exact" 3 (Histogram.percentile h 50.0);
  check_int "p100" 5 (Histogram.percentile h 100.0)

let test_histogram_percentile_precision () =
  let h = Histogram.create () in
  for v = 1000 to 2000 do
    Histogram.record h v
  done;
  let p50 = Histogram.percentile h 50.0 in
  let err = Float.abs (Float.of_int p50 -. 1500.0) /. 1500.0 in
  check "p50 within 2%" true (err < 0.02)

let test_histogram_clamps_below_one () =
  let h = Histogram.create () in
  Histogram.record h 0;
  Histogram.record h (-5);
  check_int "count" 2 (Histogram.count h);
  check_int "p100 clamped" 1 (Histogram.percentile h 100.0)

let test_histogram_record_n () =
  let h = Histogram.create () in
  Histogram.record_n h 10 5;
  check_int "count" 5 (Histogram.count h);
  check_int "p0..p100 all 10" 10 (Histogram.percentile h 0.0)

let test_histogram_max_mean () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 10; 20; 30 ];
  check_int "max" 30 (Histogram.max_value h);
  check_float "mean" 20.0 (Histogram.mean h)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.record a 10;
  Histogram.record b 20;
  Histogram.merge ~into:a b;
  check_int "merged count" 2 (Histogram.count a);
  check_int "merged max" 20 (Histogram.max_value a)

let test_histogram_clear () =
  let h = Histogram.create () in
  Histogram.record h 42;
  Histogram.clear h;
  check_int "cleared" 0 (Histogram.count h);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (Histogram.percentile h 50.0))

let test_histogram_curve () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1; 2; 3; 4 ];
  let curve = Histogram.percentile_curve h [ 0.0; 100.0 ] in
  check_int "curve points" 2 (List.length curve)

let histogram_percentile_bounds_prop =
  QCheck.Test.make ~name:"histogram percentile within recorded range" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_range 1 1_000_000))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      let lo = List.fold_left min max_int xs and hi = List.fold_left max 0 xs in
      let p v = Histogram.percentile h v in
      (* Bucketing gives ~1.6% relative error. *)
      Float.of_int (p 0.0) >= Float.of_int lo *. 0.97
      && Float.of_int (p 100.0) <= Float.of_int hi *. 1.03)

let histogram_monotone_prop =
  QCheck.Test.make ~name:"histogram percentile monotone" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (int_range 1 1_000_000))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) xs;
      let ps = [ 0.0; 10.0; 50.0; 90.0; 99.0; 100.0 ] in
      let vals = List.map (Histogram.percentile h) ps in
      List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 5) vals) (List.tl vals))

(* --- Bits ---------------------------------------------------------------- *)

let test_bits_log2 () =
  check_int "log2 1" 0 (Bits.log2 1);
  check_int "log2 2" 1 (Bits.log2 2);
  check_int "log2 1023" 9 (Bits.log2 1023);
  check_int "log2 1024" 10 (Bits.log2 1024)

let test_bits_clz63 () =
  check_int "clz 1" 62 (Bits.clz63 1);
  (* max_int is 2^62 - 1: its top bit is bit 61, one leading zero. *)
  check_int "clz max" 1 (Bits.clz63 max_int)

let test_bits_pow2 () =
  check "1 is pow2" true (Bits.is_power_of_two 1);
  check "32768 is pow2" true (Bits.is_power_of_two 32768);
  check "3 not" false (Bits.is_power_of_two 3);
  check "0 not" false (Bits.is_power_of_two 0)

let test_bits_round_up () =
  check_int "exact" 32 (Bits.round_up 32 16);
  check_int "up" 48 (Bits.round_up 33 16);
  check_int "zero" 0 (Bits.round_up 0 16)

(* --- Table ---------------------------------------------------------------- *)

let test_table_render () =
  let s =
    Table.render ~title:"T" ~header:[ "a"; "b" ]
      ~rows:[ [ "x"; "1" ]; [ "yy"; "22" ] ] ()
  in
  check "has title" true (String.length s > 0 && s.[0] = 'T');
  check "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0 && l.[0] = '|'))

let test_table_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged rows")
    (fun () ->
      ignore (Table.render ~title:"T" ~header:[ "a"; "b" ] ~rows:[ [ "x" ] ] ()))

let test_table_formats () =
  Alcotest.(check string) "fms" "4.6" (Table.fms 4_600_000);
  Alcotest.(check string) "fsec" "1.5" (Table.fsec 1_500_000_000);
  Alcotest.(check string) "fratio" "0.958" (Table.fratio 0.958);
  Alcotest.(check string) "fint" "1,234,567" (Table.fint 1234567);
  Alcotest.(check string) "fint negative" "-1,000" (Table.fint (-1000))

(* --- Ascii_chart ------------------------------------------------------------ *)

let test_chart_renders () =
  let s =
    Ascii_chart.render ~title:"T" ~x_label:"x" ~y_label:"y"
      ~series:[ ("a", [ (0.0, 1.0); (1.0, 2.0) ]); ("b", [ (0.5, 1.5) ]) ]
      ()
  in
  check "title" true (String.length s > 0 && s.[0] = 'T');
  check "legend a" true (String.length s > 0);
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "glyph a" true (contains "*=a");
  check "glyph b" true (contains "o=b");
  check "axis" true (contains "+-")

let test_chart_log_scale () =
  let s =
    Ascii_chart.render ~log_y:true ~title:"L" ~x_label:"x" ~y_label:"y"
      ~series:[ ("a", [ (0.0, 1.0); (1.0, 1000.0) ]) ]
      ()
  in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "log annotated" true (contains "log scale")

let test_chart_errors () =
  check "empty raises" true
    (try
       ignore (Ascii_chart.render ~title:"T" ~x_label:"x" ~y_label:"y" ~series:[] ());
       false
     with Invalid_argument _ -> true);
  check "nonpositive log raises" true
    (try
       ignore
         (Ascii_chart.render ~log_y:true ~title:"T" ~x_label:"x" ~y_label:"y"
            ~series:[ ("a", [ (0.0, 0.0) ]) ] ());
       false
     with Invalid_argument _ -> true)

let test_chart_single_point () =
  (* Degenerate spans must not divide by zero. *)
  let s =
    Ascii_chart.render ~title:"P" ~x_label:"x" ~y_label:"y"
      ~series:[ ("a", [ (5.0, 5.0) ]) ]
      ()
  in
  check "renders" true (String.length s > 10)

(* --- Suite ----------------------------------------------------------------- *)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [ ( "util:prng",
      [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
        Alcotest.test_case "copy" `Quick test_prng_copy_independent;
        Alcotest.test_case "split" `Quick test_prng_split;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "int invalid" `Quick test_prng_int_invalid;
        Alcotest.test_case "bool extremes" `Quick test_prng_bool_extremes;
        Alcotest.test_case "bool rate" `Quick test_prng_bool_rate;
        Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
        Alcotest.test_case "geometric size" `Quick test_prng_geometric_size;
        Alcotest.test_case "pick" `Quick test_prng_pick ] );
    ( "util:vec",
      [ Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
        Alcotest.test_case "growth" `Quick test_vec_growth;
        Alcotest.test_case "bounds" `Quick test_vec_bounds;
        Alcotest.test_case "clear" `Quick test_vec_clear_keeps_storage;
        Alcotest.test_case "iter/fold" `Quick test_vec_iter_fold;
        Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
        Alcotest.test_case "append/sort" `Quick test_vec_append_sort;
        Alcotest.test_case "exists" `Quick test_vec_exists ]
      @ qcheck [ vec_roundtrip_prop; vec_push_pop_prop ] );
    ( "util:stats",
      [ Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "geomean" `Quick test_stats_geomean;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "percentile unsorted" `Quick test_stats_percentile_unsorted;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "confidence" `Quick test_stats_confidence;
        Alcotest.test_case "min_max" `Quick test_stats_min_max;
        Alcotest.test_case "normalize" `Quick test_stats_normalize ]
      @ qcheck [ stats_percentile_monotone_prop; stats_geomean_le_mean_prop ] );
    ( "util:histogram",
      [ Alcotest.test_case "basic" `Quick test_histogram_basic;
        Alcotest.test_case "small exact" `Quick test_histogram_percentile_exact_small;
        Alcotest.test_case "precision" `Quick test_histogram_percentile_precision;
        Alcotest.test_case "clamp" `Quick test_histogram_clamps_below_one;
        Alcotest.test_case "record_n" `Quick test_histogram_record_n;
        Alcotest.test_case "max/mean" `Quick test_histogram_max_mean;
        Alcotest.test_case "merge" `Quick test_histogram_merge;
        Alcotest.test_case "clear" `Quick test_histogram_clear;
        Alcotest.test_case "curve" `Quick test_histogram_curve ]
      @ qcheck [ histogram_percentile_bounds_prop; histogram_monotone_prop ] );
    ( "util:bits",
      [ Alcotest.test_case "log2" `Quick test_bits_log2;
        Alcotest.test_case "clz63" `Quick test_bits_clz63;
        Alcotest.test_case "pow2" `Quick test_bits_pow2;
        Alcotest.test_case "round_up" `Quick test_bits_round_up ] );
    ( "util:chart",
      [ Alcotest.test_case "renders" `Quick test_chart_renders;
        Alcotest.test_case "log scale" `Quick test_chart_log_scale;
        Alcotest.test_case "errors" `Quick test_chart_errors;
        Alcotest.test_case "single point" `Quick test_chart_single_point ] );
    ( "util:table",
      [ Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "ragged" `Quick test_table_ragged;
        Alcotest.test_case "formats" `Quick test_table_formats ] ) ]
