(** Full-heap integrity verifier.

    Cross-checks every piece of heap state the simulator maintains
    redundantly — the object registry against the RC table (header
    counts, straddle markers, stuck pins), the mark bitset, block states
    and resident lists, the free/recyclable lists, the to-space reserve,
    remembered sets, and an independent reachability oracle — and reports
    each inconsistency as a typed {!violation} record instead of raising.

    The verifier runs at configurable safepoints: before each
    stop-the-world pause (via {!Repro_heap.Heap.t.on_pre_pause}), after
    each pause (via {!Repro_engine.Sim.set_on_pause_end}), and at end of
    run. Collector-specific invariants (exact RC bounds, pending work,
    remset contents, mark-bit expectations) come from the collector's
    {!Repro_engine.Collector.introspection} record, so the same checks
    run unchanged under LXR, G1, Shenandoah, or the STW collectors. *)

(** One detected inconsistency. [expected]/[found] are human-readable
    renderings of the two sides of the failed cross-check. *)
type violation = {
  module_ : string;  (** subsystem: ["registry"], ["rc"], ["blocks"], ... *)
  invariant : string;  (** invariant name, e.g. ["straddle-marker-missing"] *)
  subject : string;  (** what it is about, e.g. ["object 42 (addr 4096)"] *)
  expected : string;
  found : string;
}

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

(** Where in the run a check fires. *)
type safepoint = Pre_pause | Post_pause | End_of_run

val safepoint_name : safepoint -> string

(** [points_of_string "pre,post,end"] parses a comma-separated safepoint
    list ("pre", "post", "end", or "all"). *)
val points_of_string : string -> (safepoint list, string) result

(** [check_heap ?roots ?introspect heap] runs every integrity check once
    and returns the violations found (empty = heap is consistent).
    [roots] are the engine's root slots (null entries ignored);
    [introspect] defaults to
    {!Repro_engine.Collector.no_introspection}. Read-only. *)
val check_heap :
  ?roots:int array ->
  ?introspect:Repro_engine.Collector.introspection ->
  Repro_heap.Heap.t ->
  violation list

(** A verification session attached to a running engine. *)
type t

(** [attach ?max_violations ~points api] installs checks at the given
    safepoints ([Pre_pause] hooks the heap's pre-pause callback,
    [Post_pause] the simulator's pause-end callback; [End_of_run] fires
    in {!finish}). At most [max_violations] (default 50) violations are
    retained, but all are counted. *)
val attach : ?max_violations:int -> points:safepoint list -> Repro_engine.Api.t -> t

(** [check_now t point ~label] forces a check outside the installed
    hooks (e.g. from a test). *)
val check_now : t -> safepoint -> label:string -> unit

(** [finish t] runs the [End_of_run] check (if requested). Call after
    {!Repro_engine.Api.finish}. *)
val finish : t -> unit

(** Retained violations, in detection order, each tagged with the
    safepoint and the pause label it was detected at. *)
val violations : t -> (safepoint * string * violation) list

(** Total violations detected (>= retained). *)
val total_violations : t -> int

(** Number of safepoint checks executed. *)
val checks_run : t -> int

(** [ok t] is [total_violations t = 0]. *)
val ok : t -> bool

(** One-line-per-violation report, prefixed with a summary line. *)
val report : t -> string
