open Repro_heap
open Repro_engine
module Vec = Repro_util.Vec

type violation = {
  module_ : string;
  invariant : string;
  subject : string;
  expected : string;
  found : string;
}

let pp_violation fmt v =
  Format.fprintf fmt "%s/%s: %s: expected %s, found %s" v.module_ v.invariant
    v.subject v.expected v.found

let violation_to_string v = Format.asprintf "%a" pp_violation v

type safepoint = Pre_pause | Post_pause | End_of_run

let safepoint_name = function
  | Pre_pause -> "pre"
  | Post_pause -> "post"
  | End_of_run -> "end"

let points_of_string s =
  let toks =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "pre" :: rest -> go (Pre_pause :: acc) rest
    | "post" :: rest -> go (Post_pause :: acc) rest
    | "end" :: rest -> go (End_of_run :: acc) rest
    | "all" :: rest -> go (End_of_run :: Post_pause :: Pre_pause :: acc) rest
    | tok :: _ ->
      Error
        (Printf.sprintf "unknown safepoint %S (expected pre, post, end or all)"
           tok)
  in
  if toks = [] then Error "empty safepoint list" else go [] toks

let state_name = function
  | Blocks.Free -> "Free"
  | Blocks.Recyclable -> "Recyclable"
  | Blocks.Owned -> "Owned"
  | Blocks.In_use -> "In_use"
  | Blocks.Los_backing -> "Los_backing"

let describe (o : Obj_model.t) =
  Printf.sprintf "object %d (addr %d, size %d)" o.id (Obj_model.addr o) o.size

let check_heap ?(roots = [||]) ?(introspect = Collector.no_introspection)
    (heap : Heap.t) =
  let cfg = heap.Heap.cfg in
  let stuck = Heap_config.stuck_count cfg in
  let out = ref [] in
  let v ~module_ ~invariant ~subject ~expected ~found =
    out := { module_; invariant; subject; expected; found } :: !out
  in
  let live_objs = ref [] in
  Obj_model.Registry.iter
    (fun o -> if not (Obj_model.is_freed o) then live_objs := o :: !live_objs)
    heap.registry;
  let live_objs = !live_objs in
  let is_los (o : Obj_model.t) = Heap.is_los heap o in
  let geometry_ok (o : Obj_model.t) =
    let a = Obj_model.addr o in
    Addr.valid cfg a && Addr.is_granule_aligned cfg a
  in

  (* --- Registry geometry, block residency, LOS backing. --- *)
  List.iter
    (fun (o : Obj_model.t) ->
      let subject = describe o in
      let oaddr = Obj_model.addr o in
      if not (Addr.valid cfg oaddr) then
        v ~module_:"registry" ~invariant:"addr-in-heap" ~subject
          ~expected:(Printf.sprintf "0 <= addr < %d" cfg.heap_bytes)
          ~found:(string_of_int oaddr)
      else if not (Addr.is_granule_aligned cfg oaddr) then
        v ~module_:"registry" ~invariant:"addr-granule-aligned" ~subject
          ~expected:(Printf.sprintf "multiple of %d" cfg.granule_bytes)
          ~found:(string_of_int oaddr)
      else if is_los o then begin
        match Heap.los_extent heap o with
        | [] ->
          v ~module_:"los" ~invariant:"has-backing" ~subject
            ~expected:"at least one backing block" ~found:"none"
        | first :: _ as backing ->
          if oaddr <> Addr.block_start cfg first then
            v ~module_:"los" ~invariant:"addr-is-first-backing" ~subject
              ~expected:(string_of_int (Addr.block_start cfg first))
              ~found:(string_of_int oaddr);
          List.iter
            (fun b ->
              if Blocks.state heap.blocks b <> Blocks.Los_backing then
                v ~module_:"los" ~invariant:"backing-state"
                  ~subject:(Printf.sprintf "%s backing block %d" subject b)
                  ~expected:"Los_backing"
                  ~found:(state_name (Blocks.state heap.blocks b)))
            backing;
          if
            not (Vec.exists (fun id -> id = o.id) (Blocks.residents heap.blocks first))
          then
            v ~module_:"blocks" ~invariant:"los-resident-listed" ~subject
              ~expected:
                (Printf.sprintf "id %d in block %d resident list" o.id first)
              ~found:"absent"
      end
      else begin
        let b = Addr.block_of cfg oaddr in
        let b_end = Addr.block_of cfg (oaddr + o.size - 1) in
        if b <> b_end then
          v ~module_:"registry" ~invariant:"within-one-block" ~subject
            ~expected:"object contained in a single block"
            ~found:(Printf.sprintf "spans blocks %d..%d" b b_end);
        (match Blocks.state heap.blocks b with
        | Blocks.Owned | Blocks.In_use | Blocks.Recyclable -> ()
        | st ->
          v ~module_:"blocks" ~invariant:"resident-block-state" ~subject
            ~expected:"Owned, In_use or Recyclable" ~found:(state_name st));
        if not (Vec.exists (fun id -> id = o.id) (Blocks.residents heap.blocks b))
        then
          v ~module_:"blocks" ~invariant:"resident-listed" ~subject
            ~expected:(Printf.sprintf "id %d in block %d resident list" o.id b)
            ~found:"absent"
      end)
    live_objs;

  (* Every Los_backing block must belong to a live large object. *)
  let los_blocks = Hashtbl.create 16 in
  List.iter
    (fun (o : Obj_model.t) ->
      if is_los o then
        List.iter
          (fun b -> Hashtbl.replace los_blocks b ())
          (Heap.los_extent heap o))
    live_objs;
  Blocks.iter_state heap.blocks Blocks.Los_backing (fun b ->
      if not (Hashtbl.mem los_blocks b) then
        v ~module_:"los" ~invariant:"backing-owned"
          ~subject:(Printf.sprintf "block %d" b)
          ~expected:"backing a live large object"
          ~found:"Los_backing block with no owner");

  (* --- No two live objects overlap. --- *)
  let intervals = ref [] in
  List.iter
    (fun (o : Obj_model.t) ->
      if geometry_ok o then
        if is_los o then
          List.iter
            (fun b ->
              let s = Addr.block_start cfg b in
              intervals := (s, s + cfg.block_bytes, o.id) :: !intervals)
            (Heap.los_extent heap o)
        else begin
          let a = Obj_model.addr o in
          intervals := (a, a + o.size, o.id) :: !intervals
        end)
    live_objs;
  let arr = Array.of_list !intervals in
  Array.sort (fun (a, _, _) (b, _, _) -> compare a b) arr;
  for i = 0 to Array.length arr - 2 do
    let s1, e1, id1 = arr.(i) in
    let s2, _, id2 = arr.(i + 1) in
    if s2 < e1 then
      v ~module_:"registry" ~invariant:"no-overlap"
        ~subject:(Printf.sprintf "objects %d and %d" id1 id2)
        ~expected:"disjoint extents"
        ~found:(Printf.sprintf "[%d,%d) overlaps [%d,...)" s1 e1 s2)
  done;

  (* --- Block states vs the RC table and the free/recyclable lists.
     The lists themselves are stale-tolerant (entries are revalidated on
     acquisition), so only the forward direction is an invariant: a block
     the state table calls Free/Recyclable must be findable by the
     allocator. --- *)
  let in_free = Hashtbl.create 64 in
  let in_recyclable = Hashtbl.create 64 in
  Free_lists.iter_free heap.free (fun b -> Hashtbl.replace in_free b ());
  Free_lists.iter_recyclable heap.free (fun b ->
      Hashtbl.replace in_recyclable b ());
  for b = 0 to Heap_config.blocks cfg - 1 do
    match Blocks.state heap.blocks b with
    | Blocks.Free ->
      if not (Rc_table.block_is_free heap.rc cfg b) then
        v ~module_:"blocks" ~invariant:"free-block-rc-zero"
          ~subject:(Printf.sprintf "block %d" b)
          ~expected:"all RC entries zero"
          ~found:
            (Printf.sprintf "%d live granules"
               (Rc_table.live_granules_in_block heap.rc cfg b));
      if not (Hashtbl.mem in_free b) then
        v ~module_:"free_lists" ~invariant:"free-block-listed"
          ~subject:(Printf.sprintf "block %d" b)
          ~expected:"present on the free list" ~found:"absent"
    | Blocks.Recyclable ->
      (* Allocators drop recyclable blocks that are evacuation targets
         from the list (they must not be allocated into); the sweep
         re-lists them once the target flag clears. *)
      if
        (not (Hashtbl.mem in_recyclable b)) && not (Blocks.target heap.blocks b)
      then
        v ~module_:"free_lists" ~invariant:"recyclable-block-listed"
          ~subject:(Printf.sprintf "block %d" b)
          ~expected:"present on the recyclable list" ~found:"absent"
    | Blocks.Owned | Blocks.In_use | Blocks.Los_backing -> ()
  done;

  (* --- To-space reserve: a block still held in reserve (state In_use)
     must be completely empty. Entries whose state changed are blocks a
     sweep dissolved back into circulation; ensure_reserve drops them, so
     they are stale rather than corrupt. --- *)
  Vec.iter
    (fun b ->
      if Blocks.state heap.blocks b = Blocks.In_use then begin
        if not (Rc_table.block_is_free heap.rc cfg b) then
          v ~module_:"reserve" ~invariant:"reserve-block-empty"
            ~subject:(Printf.sprintf "reserve block %d" b)
            ~expected:"all RC entries zero"
            ~found:
              (Printf.sprintf "%d live granules"
                 (Rc_table.live_granules_in_block heap.rc cfg b));
        let resident_live id =
          match Obj_model.Registry.find heap.registry id with
          | Some o ->
            (not (Obj_model.is_freed o))
            && (not (is_los o))
            && Addr.block_of cfg (Obj_model.addr o) = b
          | None -> false
        in
        if Vec.exists resident_live (Blocks.residents heap.blocks b) then
          v ~module_:"reserve" ~invariant:"reserve-no-residents"
            ~subject:(Printf.sprintf "reserve block %d" b)
            ~expected:"no live resident objects" ~found:"live resident"
      end)
    heap.reserve;

  (* --- RC table vs the registry: every non-zero entry must be an object
     header or a straddle-line marker; straddle markers hold the stuck
     value. Markers of dead objects awaiting sweep are legal, so the
     expectation is keyed on registration, not on the header count. --- *)
  let expected_rc : (int, [ `Header | `Straddle of Obj_model.t ]) Hashtbl.t =
    Hashtbl.create 1024
  in
  List.iter
    (fun (o : Obj_model.t) ->
      if geometry_ok o then begin
        let oaddr = Obj_model.addr o in
        Hashtbl.replace expected_rc (Addr.granule_of cfg oaddr) `Header;
        if (not (is_los o)) && o.size > cfg.line_bytes then begin
          let first, last = Addr.lines_covered cfg ~addr:oaddr ~size:o.size in
          for l = first + 1 to last - 1 do
            let g = Addr.granule_of cfg (Addr.line_start cfg l) in
            if not (Hashtbl.mem expected_rc g) then
              Hashtbl.replace expected_rc g (`Straddle o)
          done
        end
      end)
    live_objs;
  Rc_table.iter_nonzero heap.rc cfg (fun ~granule ~count ->
      match Hashtbl.find_opt expected_rc granule with
      | Some `Header -> ()
      | Some (`Straddle o) ->
        if count <> stuck then
          v ~module_:"rc" ~invariant:"straddle-marker-value"
            ~subject:
              (Printf.sprintf "granule %d (straddle line of %s)" granule
                 (describe o))
            ~expected:(string_of_int stuck) ~found:(string_of_int count)
      | None ->
        v ~module_:"rc" ~invariant:"orphan-count"
          ~subject:
            (Printf.sprintf "granule %d (addr %d)" granule
               (Addr.granule_start cfg granule))
          ~expected:"0 (no object header or straddle line here)"
          ~found:(string_of_int count));

  (* Straddle markers present wherever a counted object demands them. *)
  List.iter
    (fun (o : Obj_model.t) ->
      if
        geometry_ok o
        && (not (is_los o))
        && o.size > cfg.line_bytes
        && Rc_table.get heap.rc cfg (Obj_model.addr o) > 0
      then begin
        let first, last =
          Addr.lines_covered cfg ~addr:(Obj_model.addr o) ~size:o.size
        in
        for l = first + 1 to last - 1 do
          if Rc_table.get heap.rc cfg (Addr.line_start cfg l) = 0 then
            v ~module_:"rc" ~invariant:"straddle-marker-missing"
              ~subject:(Printf.sprintf "%s, line %d" (describe o) l)
              ~expected:(Printf.sprintf "marker %d at line start" stuck)
              ~found:"0"
        done
      end)
    live_objs;

  (* --- Count discipline. --- *)
  (match introspect.Collector.rc_discipline with
  | Collector.Pinned_rc ->
    (* Tracing collectors pin every object at allocation; any other
       header value means the shared line-liveness metadata is lying to
       the allocator. *)
    List.iter
      (fun (o : Obj_model.t) ->
        if geometry_ok o then begin
          let c = Rc_table.get heap.rc cfg (Obj_model.addr o) in
          if c <> stuck then
            v ~module_:"rc" ~invariant:"pinned-header" ~subject:(describe o)
              ~expected:(string_of_int stuck) ~found:(string_of_int c)
        end)
      live_objs
  | Collector.Exact_rc ->
    if introspect.Collector.counts_exact () then begin
      (* Deferred RC soundness: a header count can never exceed the
         evidence for it — in-heap references, roots, and references
         queued in the collector's buffers (incs not yet applied, decs
         pending). One-sided: undercounts are legal (young objects sit
         at zero until their first pause). *)
      let evidence = Hashtbl.create 1024 in
      let bump id =
        Hashtbl.replace evidence id
          (1 + Option.value ~default:0 (Hashtbl.find_opt evidence id))
      in
      List.iter
        (fun (o : Obj_model.t) ->
          Obj_model.iter_fields (fun r -> if r <> Obj_model.null then bump r) o)
        live_objs;
      Array.iter (fun r -> if r <> Obj_model.null then bump r) roots;
      List.iter bump (introspect.Collector.pending_ref_ids ());
      List.iter
        (fun (o : Obj_model.t) ->
          if geometry_ok o then begin
            let c = Rc_table.get heap.rc cfg (Obj_model.addr o) in
            if c > 0 && c < stuck then begin
              let e =
                Option.value ~default:0 (Hashtbl.find_opt evidence o.id)
              in
              if c > e then
                v ~module_:"rc" ~invariant:"overcount" ~subject:(describe o)
                  ~expected:
                    (Printf.sprintf "count <= %d incoming references" e)
                  ~found:(string_of_int c)
            end
          end)
        live_objs
    end);

  (* --- Mark bitset must be empty between traces. --- *)
  if introspect.Collector.expect_clear_marks () then begin
    let marked = ref 0 in
    let first = ref (-1) in
    Mark_bitset.iter_marked heap.marks (fun id ->
        incr marked;
        if !first < 0 then first := id);
    if !marked > 0 then
      v ~module_:"marks" ~invariant:"clear-between-traces"
        ~subject:"shared mark bitset" ~expected:"no marked ids"
        ~found:(Printf.sprintf "%d marked (first id %d)" !marked !first)
  end;

  (* --- Per-line reuse counters never go negative. --- *)
  let bad_reuse = ref 0 in
  for l = 0 to Heap_config.total_lines cfg - 1 do
    if Reuse_table.get heap.reuse l < 0 then incr bad_reuse
  done;
  if !bad_reuse > 0 then
    v ~module_:"reuse" ~invariant:"counter-non-negative"
      ~subject:"line reuse counters" ~expected:"all >= 0"
      ~found:(Printf.sprintf "%d negative" !bad_reuse);

  (* --- Remembered sets: an entry for a live source must name one of its
     fields. Entries whose source has died are staleness the consumer
     filters, not corruption. --- *)
  List.iter
    (fun (src, field) ->
      match Obj_model.Registry.find heap.registry src with
      | Some o when not (Obj_model.is_freed o) ->
        if field < 0 || field >= Obj_model.nfields o then
          v ~module_:"remset" ~invariant:"field-in-range"
            ~subject:(Printf.sprintf "entry (%d, %d)" src field)
            ~expected:
              (Printf.sprintf "0 <= field < %d (nfields of object %d)"
                 (Obj_model.nfields o) src)
            ~found:(string_of_int field)
      | Some _ | None -> ())
    (introspect.Collector.remset_entries ());

  (* --- Reachability oracle: nothing reachable from the roots may have
     been freed. The BFS runs over the registry alone, independent of any
     collector metadata. --- *)
  let root_ids =
    Array.fold_left
      (fun acc r -> if r <> Obj_model.null then r :: acc else acc)
      [] roots
  in
  List.iter
    (fun id ->
      if not (Obj_model.Registry.mem heap.registry id) then
        v ~module_:"reachability" ~invariant:"root-live"
          ~subject:(Printf.sprintf "root slot -> id %d" id)
          ~expected:"a registered object" ~found:"freed or unknown id")
    root_ids;
  let reach = Obj_model.Registry.reachable_from heap.registry root_ids in
  Mark_bitset.iter_marked reach (fun id ->
      match Obj_model.Registry.find heap.registry id with
      | None -> ()
      | Some o ->
        Obj_model.iteri_fields
          (fun i r ->
            if r <> Obj_model.null && not (Obj_model.Registry.mem heap.registry r)
            then
              v ~module_:"reachability" ~invariant:"no-dangling-ref"
                ~subject:(Printf.sprintf "object %d field %d -> id %d" id i r)
                ~expected:"reachable referent registered"
                ~found:"freed or unknown id")
          o);

  List.rev !out

(* --- Safepoint sessions. --- *)

type t = {
  api : Api.t;
  points : safepoint list;
  max_violations : int;
  mutable retained : (safepoint * string * violation) list;  (* reversed *)
  mutable total : int;
  mutable checks : int;
}

let run_check t point label =
  t.checks <- t.checks + 1;
  let api = t.api in
  let vs =
    check_heap ~roots:(Api.roots api)
      ~introspect:(Api.collector api).Collector.introspect (Api.heap api)
  in
  List.iter
    (fun viol ->
      t.total <- t.total + 1;
      if t.total <= t.max_violations then
        t.retained <- (point, label, viol) :: t.retained)
    vs

let attach ?(max_violations = 50) ~points api =
  let t = { api; points; max_violations; retained = []; total = 0; checks = 0 } in
  if List.mem Pre_pause points then
    (Api.heap api).Heap.on_pre_pause <- (fun () -> run_check t Pre_pause "pause");
  if List.mem Post_pause points then
    Sim.set_on_pause_end (Api.sim api) (fun label ->
        run_check t Post_pause label);
  t

let check_now t point ~label = run_check t point label
let finish t = if List.mem End_of_run t.points then run_check t End_of_run "finish"
let violations t = List.rev t.retained
let total_violations t = t.total
let checks_run t = t.checks
let ok t = t.total = 0

let report t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "verifier: %d checks, %d violations%s\n" t.checks t.total
       (if t.total > t.max_violations then
          Printf.sprintf " (%d shown)" t.max_violations
        else ""));
  List.iter
    (fun (point, label, viol) ->
      Buffer.add_string b
        (Printf.sprintf "  [%s:%s] %s\n" (safepoint_name point) label
           (violation_to_string viol)))
    (violations t);
  Buffer.contents b
