(* The replica lifecycle state machine (DESIGN.md "Fleet resilience").

   Transitions only happen at scheduling barriers, driven by the
   single-threaded front-end, so the machine needs no synchronisation
   and every firing is checkpoint-quantized: the same (seed, config)
   pair walks the same state sequence at every domain count. *)

type state = Warming | Serving | Draining | Down | Restarting

let states = [ Warming; Serving; Draining; Down; Restarting ]

let state_name = function
  | Warming -> "warming"
  | Serving -> "serving"
  | Draining -> "draining"
  | Down -> "down"
  | Restarting -> "restarting"

let state_index = function
  | Warming -> 0
  | Serving -> 1
  | Draining -> 2
  | Down -> 3
  | Restarting -> 4

(* The legal transition graph. [Down] is reachable from everywhere (a
   crash respects no schedule); recovery is Down -> Restarting (process
   relaunch + heap/server rebuild) -> Warming (slow-start admission
   ramp) -> Serving. The autoscaler retires replicas through Draining
   so in-flight work finishes first. *)
let legal ~from ~to_ =
  match (from, to_) with
  | _, Down -> true
  | Warming, Serving
  | Serving, Draining
  | Warming, Draining
  | Down, Restarting
  | Restarting, Warming -> true
  | _ -> false

type t = {
  mutable state : state;
  mutable since : float;  (* fleet time of the last transition *)
  mutable rounds_in_state : int;
  mutable restarts : int;
  time_in : float array;  (* accumulated ns per state, closed stretches *)
}

let create ~now =
  { state = Warming;
    since = now;
    rounds_in_state = 0;
    restarts = 0;
    time_in = Array.make (List.length states) 0.0 }

let state t = t.state

exception Illegal of string

let transition t ~now to_ =
  if not (legal ~from:t.state ~to_) then
    raise
      (Illegal
         (Printf.sprintf "illegal lifecycle transition %s -> %s"
            (state_name t.state) (state_name to_)));
  t.time_in.(state_index t.state) <-
    t.time_in.(state_index t.state) +. Float.max 0.0 (now -. t.since);
  (if to_ = Restarting then t.restarts <- t.restarts + 1);
  t.state <- to_;
  t.since <- now;
  t.rounds_in_state <- 0

let tick_round t = t.rounds_in_state <- t.rounds_in_state + 1

(* Slow-start admission: while Warming, the per-round admission bound
   ramps linearly from ~limit/ramp_rounds up to the full limit, so a
   freshly (re)started replica with a cold heap and empty allocator is
   not handed a full queue on its first round. *)
let admission t ~queue_limit ~ramp_rounds =
  match t.state with
  | Serving -> queue_limit
  | Warming ->
    if ramp_rounds <= 0 then queue_limit
    else
      let r = min ramp_rounds (t.rounds_in_state + 1) in
      max 1 (queue_limit * r / ramp_rounds)
  | Draining | Down | Restarting -> 0

let routable t = match t.state with Warming | Serving -> true | _ -> false

let finish t ~now =
  t.time_in.(state_index t.state) <-
    t.time_in.(state_index t.state) +. Float.max 0.0 (now -. t.since);
  t.since <- now

let time_in_alist t =
  List.map (fun s -> (state_name s, t.time_in.(state_index s))) states
