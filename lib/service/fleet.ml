open Repro_util
open Repro_engine
module Mut = Repro_mutator.Mut_engine
module Workload = Repro_mutator.Workload
module Verifier = Repro_verify.Verifier

type config = {
  workload : Workload.t;
  factory : Collector.factory;
  replicas : int;
  heap_factor : float;
  policy : Policy.t;
  seed : int;
  requests : int;
  load : float;
  queue_limit : int;
  quantum_ns : float option;
  domains : int;
  gc_threads : int;
  verify : Verifier.safepoint list;
}

let config ?(replicas = 4) ?(heap_factor = 1.3) ?(policy = Policy.Gc_aware)
    ?(seed = 42) ?requests ?(load = 1.0) ?(queue_limit = 64) ?quantum_ns
    ?(domains = 1) ?(gc_threads = 1) ?(verify = []) ~workload ~factory () =
  let requests =
    match requests with
    | Some n -> n
    | None -> (
      match workload.Workload.request with Some r -> r.count | None -> 0)
  in
  { workload; factory; replicas; heap_factor; policy; seed; requests; load;
    queue_limit; quantum_ns; domains; gc_threads; verify }

type replica_stats = {
  r_index : int;
  r_served : int;
  r_dropped : int;
  r_latency : Histogram.t;
  r_queueing : Histogram.t;
  r_busy_ns : float;
  r_wall_ns : float;
  r_utilization : float;
  r_pause_count : int;
  r_pauses : Histogram.t;
  r_gc_cpu_ns : float;
  r_mutator_cpu_ns : float;
  r_oom : string option;
}

type result = {
  workload : string;
  collector : string;
  policy : Policy.t;
  replicas : int;
  domains : int;
  heap_factor : float;
  ok : bool;
  error : string option;
  requests : int;
  completed : int;
  rejected : int;
  dropped : int;
  wall_ns : float;
  latency : Histogram.t;
  queueing : Histogram.t;
  diversions : int;
  verifier_checks : int;
  violations : int;
  per_replica : replica_stats list;
}

let qps r =
  if r.completed = 0 || r.wall_ns <= 0.0 then 0.0
  else Float.of_int r.completed /. (r.wall_ns /. 1e9)

let failed (cfg : config) ~collector msg =
  { workload = cfg.workload.Workload.name;
    collector;
    policy = cfg.policy;
    replicas = cfg.replicas;
    domains = cfg.domains;
    heap_factor = cfg.heap_factor;
    ok = false;
    error = Some msg;
    requests = cfg.requests;
    completed = 0;
    rejected = 0;
    dropped = 0;
    wall_ns = 0.0;
    latency = Histogram.create ();
    queueing = Histogram.create ();
    diversions = 0;
    verifier_checks = 0;
    violations = 0;
    per_replica = [] }

(* One replica: an engine, its request server, and the front-end's view
   of it. [batch] is written by the front-end between rounds and read by
   exactly one worker domain during a round; every other mutable field is
   written by that same worker and re-read by the front-end only after
   the round barrier (Domain.join), so there are no data races. *)
type replica = {
  idx : int;
  api : Api.t;
  server : Mut.server;
  verifier : Verifier.t option;
  latency : Histogram.t;
  queueing : Histogram.t;
  mutable batch : float list;  (* arrivals assigned this round, reversed *)
  mutable served : int;
  mutable dropped : int;
  mutable busy_ns : float;
  (* Checkpoint-frozen scheduling state. *)
  mutable avail : float;  (* replica clock at the last barrier *)
  mutable assigned : int;  (* handed out since the last barrier *)
  mutable signal : Api.gc_signal;
  mutable est_service : float;  (* EWMA of observed wall service time *)
  mutable barrier_busy : float;  (* busy_ns snapshot at the last barrier *)
  mutable barrier_served : int;  (* served snapshot at the last barrier *)
  mutable oom : string option;
}

(* Deterministic parallel-for over the shared work-packet pool: one
   replica per packet, each touching disjoint state, with the pool's
   completion wait as the round barrier. The fleet and the collectors'
   GC phases share this single pool, so replica rounds and GC packets
   never oversubscribe the host: a collector phase reaching the pool
   from inside a replica round finds it busy and runs inline
   (Par.Pool's re-entrancy rule). *)
let parallel_over pool n f =
  Repro_par.Par.map_merge pool ~packets:n ~f ~merge:(fun _ () -> ())

let run (cfg : config) =
  let w = cfg.workload in
  match w.Workload.request with
  | None -> failed cfg ~collector:"?" (w.name ^ " carries no metered request model")
  | Some _ when cfg.replicas < 1 -> failed cfg ~collector:"?" "needs >= 1 replica"
  | Some req -> (
    let heap_bytes =
      int_of_float (cfg.heap_factor *. Float.of_int w.min_heap_bytes)
    in
    let nominal = Workload.nominal_service_ns w req in
    (* [nominal] is mutator CPU; the cost model spreads it over the
       replica's mutator threads, so the wall-clock service time a
       GC-idle replica actually exhibits is [nominal / speedup]. The
       front-end must reason in wall terms or it would drive every
       replica at a fraction of the intended utilization. *)
    let cost = Cost_model.default in
    let speedup =
      Float.of_int (max 1 (min cost.Cost_model.mutator_threads cost.Cost_model.cores))
    in
    let service_wall = nominal /. speedup in
    (* Default quantum: a few wall service times. Small enough that the
       occupancy snapshot is fresh when a replica nears its collection
       trigger (a stale window keeps routing arrivals onto a replica
       that is about to pause), large enough that the per-round barrier
       cost stays negligible. *)
    let quantum =
      match cfg.quantum_ns with Some q -> q | None -> 4.0 *. service_wall
    in
    (* One pool serves both replica rounds and the collectors' GC
       packets (sized for whichever wants more lanes). *)
    let pool =
      Repro_par.Par.Pool.get ~threads:(max 1 (max cfg.domains cfg.gc_threads))
    in
    (* Build the engines serially (collector refusal surfaces here). *)
    match
      Array.init cfg.replicas (fun idx ->
          let heap_cfg = Repro_heap.Heap_config.make ~heap_bytes () in
          let heap = Repro_heap.Heap.create heap_cfg in
          let sim = Sim.create Cost_model.default in
          Sim.set_pool sim pool;
          let api = Api.create sim heap cfg.factory in
          (idx, api))
    with
    | exception Repro_collectors.Conc_mark_evac.Unsupported msg ->
      failed cfg ~collector:"?" ("unsupported: " ^ msg)
    | engines ->
      let collector_name =
        (Api.collector (snd engines.(0))).Collector.name
      in
      (* Setup phase, replica-parallel: each replica builds its own
         long-lived structure from its own seed. *)
      let setups = Array.make cfg.replicas (Error "unbuilt") in
      parallel_over pool cfg.replicas (fun i ->
          let idx, api = engines.(i) in
          let prng = Prng.create (cfg.seed + (1_000_003 * (idx + 1))) in
          setups.(i) <- Mut.make_server api prng w);
      let setup_failure =
        Array.to_seq setups
        |> Seq.mapi (fun i s -> (i, s))
        |> Seq.filter_map (function
             | i, Error msg -> Some (i, msg)
             | _, Ok _ -> None)
        |> Seq.uncons
      in
      (match setup_failure with
      | Some ((i, msg), _) ->
        failed cfg ~collector:collector_name
          (Printf.sprintf "setup failed on replica %d: %s" i msg)
      | None ->
        let replicas =
          Array.map
            (fun (idx, api) ->
              let server =
                match setups.(idx) with Ok s -> s | Error _ -> assert false
              in
              let verifier =
                if cfg.verify = [] then None
                else Some (Verifier.attach ~points:cfg.verify api)
              in
              Mut.server_measurement_start server;
              { idx;
                api;
                server;
                verifier;
                latency = Histogram.create ();
                queueing = Histogram.create ();
                batch = [];
                served = 0;
                dropped = 0;
                busy_ns = 0.0;
                avail = Sim.now (Api.sim api);
                assigned = 0;
                signal = Api.gc_signal api;
                est_service = service_wall;
                barrier_busy = 0.0;
                barrier_served = 0;
                oom = None })
            engines
        in
        let k = cfg.replicas in
        (* The fleet epoch: all replica clocks started at 0, so the
           latest post-setup clock is a shared timeline origin every
           replica can idle up to. *)
        let t0 =
          Array.fold_left (fun acc r -> Float.max acc r.avail) 0.0 replicas
        in
        (* Open-loop Poisson arrivals for the whole fleet. *)
        let front_prng = Prng.create cfg.seed in
        let fleet_gap =
          service_wall /. req.target_utilization
          /. (Float.of_int k *. Float.max 0.01 cfg.load)
        in
        let arrivals =
          let t = ref t0 in
          Array.init cfg.requests (fun _ ->
              t := !t +. Prng.exponential front_prng ~mean:fleet_gap;
              !t)
        in
        let rejected = ref 0 in
        let fleet_dropped = ref 0 in
        let diversions = ref 0 in
        let rr = ref 0 in
        (* Scoring shared by least-outstanding and gc-aware: estimated
           completion time of this arrival on that replica, from
           checkpoint-frozen state only. [est_service] rather than the
           static estimate — GC degradation stretches real service times
           several-fold, and a stale constant makes the policy herd onto
           one replica until the admission bound bounces arrivals. *)
        let lo_score rep ~arrival =
          Float.max rep.avail arrival
          +. (Float.of_int rep.assigned *. rep.est_service)
        in
        (* The gc-aware penalty. The predictive signal is occupancy: the
           replica closest to filling its heap triggers the next
           collection, so arrivals routed there are the ones that will
           stand behind its pause. The penalty ramps from zero at the
           [occ_floor] to the replica's last observed pause length at a
           full heap — the actual cost of landing behind that pause —
           and diverting also slows the replica's allocation rate, which
           delays its trigger and staggers collections across the fleet.
           A blanket concurrent-cycle penalty is deliberately mild (CPU
           stealing makes service a little slower): with small heaps the
           cycles run near-continuously, and penalizing them hard just
           concentrates the whole arrival stream on one replica until
           *it* pauses with everyone's requests in its queue. *)
        let occ_floor = 0.75 in
        let gc_penalty rep ~window_start:_ =
          let s = rep.signal in
          let conc =
            if s.Api.concurrent_active then 2.0 *. rep.est_service else 0.0
          in
          let imminent =
            if s.Api.occupancy > occ_floor then begin
              let pause_scale =
                if s.Api.pause_end > s.Api.pause_start then
                  s.Api.pause_end -. s.Api.pause_start
                else 32.0 *. rep.est_service
              in
              (s.Api.occupancy -. occ_floor) /. (1.0 -. occ_floor)
              *. pause_scale
            end
            else 0.0
          in
          conc +. imminent
        in
        let argmin score =
          let best = ref None in
          Array.iter
            (fun rep ->
              if rep.oom = None then
                let s = score rep in
                match !best with
                | Some (s', _) when s' <= s -> ()
                | _ -> best := Some (s, rep))
            replicas;
          Option.map snd !best
        in
        let choose ~arrival ~window_start =
          match cfg.policy with
          | Policy.Round_robin ->
            let rec next tries =
              if tries >= k then None
              else begin
                let rep = replicas.(!rr mod k) in
                incr rr;
                if rep.oom = None then Some rep else next (tries + 1)
              end
            in
            next 0
          | Policy.Least_outstanding -> argmin (lo_score ~arrival)
          | Policy.Gc_aware ->
            let plain = argmin (lo_score ~arrival) in
            let aware =
              argmin (fun rep ->
                  lo_score rep ~arrival +. gc_penalty rep ~window_start)
            in
            (match (plain, aware) with
            | Some p, Some a when p.idx <> a.idx -> incr diversions
            | _ -> ());
            aware
        in
        let dispatch ~window_start arrival =
          match choose ~arrival ~window_start with
          | None -> incr fleet_dropped
          | Some rep ->
            if rep.assigned >= cfg.queue_limit then incr rejected
            else begin
              rep.batch <- arrival :: rep.batch;
              rep.assigned <- rep.assigned + 1
            end
        in
        (* One worker round on one replica: serve the batch in arrival
           order, recording end-to-end latency and pre-service queueing
           against the fleet arrival time. *)
        let run_replica_round rep =
          let batch = List.rev rep.batch in
          rep.batch <- [];
          List.iter
            (fun arrival ->
              match rep.oom with
              | Some _ -> rep.dropped <- rep.dropped + 1
              | None -> (
                let start =
                  Float.max (Sim.now (Api.sim rep.api)) arrival
                in
                match Mut.serve rep.server ~arrival with
                | Ok completion ->
                  Histogram.record rep.latency
                    (int_of_float (Float.max 1.0 (completion -. arrival)));
                  Histogram.record rep.queueing
                    (int_of_float (Float.max 1.0 (start -. arrival)));
                  rep.busy_ns <- rep.busy_ns +. (completion -. start);
                  rep.served <- rep.served + 1
                | Error msg ->
                  rep.oom <- Some msg;
                  rep.dropped <- rep.dropped + 1))
            batch
        in
        let barrier () =
          Array.iter
            (fun rep ->
              rep.avail <- Sim.now (Api.sim rep.api);
              rep.assigned <- 0;
              rep.signal <- Api.gc_signal rep.api;
              let round_served = rep.served - rep.barrier_served in
              if round_served > 0 then begin
                let round_mean =
                  (rep.busy_ns -. rep.barrier_busy)
                  /. Float.of_int round_served
                in
                rep.est_service <-
                  (0.7 *. rep.est_service) +. (0.3 *. round_mean)
              end;
              rep.barrier_busy <- rep.busy_ns;
              rep.barrier_served <- rep.served)
            replicas
        in
        let all_dead () =
          Array.for_all (fun rep -> rep.oom <> None) replicas
        in
        let n = cfg.requests in
        let i = ref 0 in
        let t = ref t0 in
        while !i < n && not (all_dead ()) do
          let window_start = !t in
          let window_end = !t +. quantum in
          while !i < n && arrivals.(!i) < window_end do
            dispatch ~window_start arrivals.(!i);
            incr i
          done;
          parallel_over pool k (fun j ->
              run_replica_round replicas.(j));
          barrier ();
          t := window_end;
          (* Fast-forward over empty quanta so lightly-loaded fleets do
             not spin through windows with nothing to schedule. *)
          if !i < n && arrivals.(!i) >= !t +. quantum then
            t :=
              !t
              +. quantum
                 *. Float.of_int
                      (int_of_float ((arrivals.(!i) -. !t) /. quantum))
        done;
        if !i < n then fleet_dropped := !fleet_dropped + (n - !i);
        (* Wind down: final collector hooks and end-of-run verification,
           still replica-parallel. *)
        parallel_over pool k (fun j ->
            let rep = replicas.(j) in
            if rep.oom = None then Mut.server_finish rep.server;
            match rep.verifier with
            | Some v -> Verifier.finish v
            | None -> ());
        barrier ();
        let wall_ns =
          Array.fold_left (fun acc rep -> Float.max acc (rep.avail -. t0)) 0.0
            replicas
        in
        let latency = Histogram.create () in
        let queueing = Histogram.create () in
        Array.iter
          (fun rep ->
            Histogram.merge ~into:latency rep.latency;
            Histogram.merge ~into:queueing rep.queueing)
          replicas;
        let completed =
          Array.fold_left (fun acc rep -> acc + rep.served) 0 replicas
        in
        let dropped =
          !fleet_dropped
          + Array.fold_left (fun acc rep -> acc + rep.dropped) 0 replicas
        in
        let verifier_checks, violations =
          Array.fold_left
            (fun (c, v) rep ->
              match rep.verifier with
              | Some vr ->
                (c + Verifier.checks_run vr, v + Verifier.total_violations vr)
              | None -> (c, v))
            (0, 0) replicas
        in
        let first_oom =
          Array.to_seq replicas
          |> Seq.filter_map (fun rep ->
                 Option.map
                   (fun msg -> Printf.sprintf "replica %d: %s" rep.idx msg)
                   rep.oom)
          |> Seq.uncons
        in
        let error =
          match first_oom with
          | Some (msg, _) -> Some ("out of memory: " ^ msg)
          | None ->
            if violations > 0 then
              Some (Printf.sprintf "%d integrity violations" violations)
            else None
        in
        let per_replica =
          Array.to_list
            (Array.map
               (fun rep ->
                 let sim = Api.sim rep.api in
                 let r_wall_ns = rep.avail -. t0 in
                 { r_index = rep.idx;
                   r_served = rep.served;
                   r_dropped = rep.dropped;
                   r_latency = rep.latency;
                   r_queueing = rep.queueing;
                   r_busy_ns = rep.busy_ns;
                   r_wall_ns;
                   r_utilization =
                     (if wall_ns > 0.0 then rep.busy_ns /. wall_ns else 0.0);
                   r_pause_count = Sim.pause_count sim;
                   r_pauses = Sim.pauses sim;
                   r_gc_cpu_ns = Sim.gc_cpu sim;
                   r_mutator_cpu_ns = Sim.mutator_cpu sim;
                   r_oom = rep.oom })
               replicas)
        in
        { workload = w.name;
          collector = collector_name;
          policy = cfg.policy;
          replicas = k;
          domains = cfg.domains;
          heap_factor = cfg.heap_factor;
          ok = error = None;
          error;
          requests = n;
          completed;
          rejected = !rejected;
          dropped;
          wall_ns;
          latency;
          queueing;
          diversions = !diversions;
          verifier_checks;
          violations;
          per_replica }))
