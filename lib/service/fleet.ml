open Repro_util
open Repro_engine
module Mut = Repro_mutator.Mut_engine
module Workload = Repro_mutator.Workload
module Verifier = Repro_verify.Verifier

type config = {
  workload : Workload.t;
  factory : Collector.factory;
  replicas : int;
  heap_factor : float;
  policy : Policy.t;
  seed : int;
  requests : int;
  load : float;
  queue_limit : int;
  quantum_ns : float option;
  domains : int;
  gc_threads : int;
  verify : Verifier.safepoint list;
  chaos : Chaos.spec option;
  retry : Policy.Retry.t;
  slo : Slo.spec option;
  autoscale : Slo.Autoscale.spec option;
  on_burn : (float -> unit) option;
}

let config ?(replicas = 4) ?(heap_factor = 1.3) ?(policy = Policy.Gc_aware)
    ?(seed = 42) ?requests ?(load = 1.0) ?(queue_limit = 64) ?quantum_ns
    ?(domains = 1) ?(gc_threads = 1) ?(verify = []) ?chaos
    ?(retry = Policy.Retry.none) ?slo ?autoscale ?on_burn ~workload ~factory
    () =
  let requests =
    match requests with
    | Some n -> n
    | None -> (
      match workload.Workload.request with Some r -> r.count | None -> 0)
  in
  { workload; factory; replicas; heap_factor; policy; seed; requests; load;
    queue_limit; quantum_ns; domains; gc_threads; verify; chaos; retry; slo;
    autoscale; on_burn }

type replica_stats = {
  r_index : int;
  r_served : int;
  r_dropped : int;
  r_latency : Histogram.t;
  r_queueing : Histogram.t;
  r_busy_ns : float;
  r_wall_ns : float;
  r_utilization : float;
  r_pause_count : int;
  r_pauses : Histogram.t;
  r_gc_cpu_ns : float;
  r_mutator_cpu_ns : float;
  r_oom : string option;
  r_state : string;
  r_restarts : int;
  r_time_in : (string * float) list;
  r_ladder : (string * float) list;
  r_wb_fast : float;
  r_wb_slow : float;
}

type result = {
  workload : string;
  collector : string;
  policy : Policy.t;
  replicas : int;
  domains : int;
  heap_factor : float;
  ok : bool;
  error : string option;
  requests : int;
  completed : int;
  rejected : int;
  dropped : int;
  shed : int;
  timeouts : int;
  retries : int;
  hedges : int;
  hedge_wins : int;
  wall_ns : float;
  latency : Histogram.t;
  queueing : Histogram.t;
  diversions : int;
  availability : float;
  chaos_events : int;
  scale_ups : int;
  scale_downs : int;
  slo_peak_burn : float;
  slo_breach_rounds : int;
  slo_shed_rounds : int;
  slo_timeline : Slo.sample list;
  ladder : (string * float) list;
  wb_fast : float;
  wb_slow : float;
  verifier_checks : int;
  violations : int;
  per_replica : replica_stats list;
}

let qps_opt r =
  if (not r.ok) || r.completed = 0 || r.wall_ns <= 0.0 then None
  else Some (Float.of_int r.completed /. (r.wall_ns /. 1e9))

let qps r =
  match qps_opt r with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Fleet.qps: no throughput for %s/%s (%s)" r.workload
         r.collector
         (match r.error with
         | Some m -> m
         | None -> "no completed requests"))

let failed (cfg : config) ~collector msg =
  { workload = cfg.workload.Workload.name;
    collector;
    policy = cfg.policy;
    replicas = cfg.replicas;
    domains = cfg.domains;
    heap_factor = cfg.heap_factor;
    ok = false;
    error = Some msg;
    requests = cfg.requests;
    completed = 0;
    rejected = 0;
    dropped = 0;
    shed = 0;
    timeouts = 0;
    retries = 0;
    hedges = 0;
    hedge_wins = 0;
    wall_ns = 0.0;
    latency = Histogram.create ();
    queueing = Histogram.create ();
    diversions = 0;
    availability = 0.0;
    chaos_events = 0;
    scale_ups = 0;
    scale_downs = 0;
    slo_peak_burn = 0.0;
    slo_breach_rounds = 0;
    slo_shed_rounds = 0;
    slo_timeline = [];
    ladder = [];
    wb_fast = 0.0;
    wb_slow = 0.0;
    verifier_checks = 0;
    violations = 0;
    per_replica = [] }

(* One request's journey through the front-end. A request is dispatched
   as one or (when hedged) two copies; dispatch and service share a
   scheduling window, so every copy of one request resolves at the same
   barrier and the front-end settles each request exactly once. *)
type rq = {
  id : int;
  orig_arrival : float;  (* first fleet arrival: the latency baseline *)
  mutable attempts : int;  (* dispatches so far, hedge copies excluded *)
  mutable settled : bool;  (* reached a terminal bucket *)
}

(* A live engine: what a running replica process owns. Replaced
   wholesale on restart -- the old process's heap is gone. *)
type engine = {
  api : Api.t;
  server : Mut.server;
  verifier : Verifier.t option;
}

(* An order to rebuild a replica process, executed by the replica's
   worker during the next round. *)
type restart_order = {
  ro_heap_bytes : int;
  ro_seed : int;
  ro_begun : float;  (* fleet time the relaunch started *)
}

(* One copy outcome, written by a worker during its round (or by the
   front-end for copies lost to a crash) and folded at the barrier. *)
type attempt = {
  at_rq : rq;
  at_replica : int;
  at_hedge : bool;
  at_arrival : float;  (* this copy's dispatch time *)
  at_start : float;  (* fleet time service began; arrival for failures *)
  at_outcome : (float, string) Stdlib.result;  (* fleet completion time *)
}

(* One replica slot: engine, lifecycle, and the front-end's frozen view.
   [batch], [pending_restart] and [stall] are written by the front-end
   between rounds and read by exactly one worker during a round;
   [eng], [results], [copies], [busy_ns], [dropped], [oom] and
   [restart_error] are written by that worker and re-read by the
   front-end only after the round barrier, so there are no data races. *)
type replica = {
  idx : int;
  lc : Lifecycle.t;
  mutable eng : engine option;
  mutable offset : float;  (* fleet time = offset + replica-local clock *)
  mutable heap_bytes : int;  (* current process heap (shrinks shrink it) *)
  latency : Histogram.t;
  queueing : Histogram.t;
  mutable batch : (rq * float * bool) list;  (* (rq, arrival, hedge), rev *)
  mutable results : attempt list;  (* worker-written, reversed *)
  mutable served : int;  (* winning completions settled on this replica *)
  mutable dropped : int;  (* copies lost here: crash, OOM, dead process *)
  mutable copies : int;  (* copies actually served, hedges included *)
  mutable busy_ns : float;
  mutable pending_restart : restart_order option;
  mutable restart_error : string option;
  mutable restart_at : float;  (* fleet time a Down replica may relaunch;
                                  nan = stays down *)
  mutable dead_forever : bool;  (* a relaunch failed to build: no revival *)
  mutable stall : (float * float * float) option;  (* start, end, factor *)
  (* Checkpoint-frozen scheduling state. *)
  mutable avail : float;  (* fleet-time clock at the last barrier *)
  mutable assigned : int;  (* handed out since the last barrier *)
  mutable signal : Api.gc_signal;
  mutable est_service : float;  (* EWMA of observed wall service time *)
  mutable barrier_busy : float;  (* busy_ns snapshot at the last barrier *)
  mutable barrier_copies : int;  (* copies snapshot at the last barrier *)
  mutable oom : string option;  (* last death reason; None while healthy *)
  mutable activated : bool;  (* ever held an engine (spares start false) *)
  (* Accumulators across engine generations (restarts). *)
  acc_ladder : Api.ladder_counts;
  acc_pauses : Histogram.t;
  mutable acc_pause_count : int;
  mutable acc_gc_cpu : float;
  mutable acc_mut_cpu : float;
  mutable acc_checks : int;
  mutable acc_violations : int;
  mutable acc_wb_fast : float;
  mutable acc_wb_slow : float;
}

(* Deterministic parallel-for over the shared work-packet pool: one
   replica per packet, each touching disjoint state, with the pool's
   completion wait as the round barrier. The fleet and the collectors'
   GC phases share this single pool, so replica rounds and GC packets
   never oversubscribe the host: a collector phase reaching the pool
   from inside a replica round finds it busy and runs inline
   (Par.Pool's re-entrancy rule). *)
let parallel_over pool n f =
  Repro_par.Par.map_merge pool ~packets:n ~f ~merge:(fun _ () -> ())

let add_ladder (into : Api.ladder_counts) (l : Api.ladder_counts) =
  into.young_collections <- into.young_collections + l.young_collections;
  into.full_collections <- into.full_collections + l.full_collections;
  into.emergency_compactions <-
    into.emergency_compactions + l.emergency_compactions;
  into.reserve_releases <- into.reserve_releases + l.reserve_releases;
  into.exhaustions <- into.exhaustions + l.exhaustions

let idle_signal =
  { Api.busy_until = 0.0;
    pause_start = Float.neg_infinity;
    pause_end = Float.neg_infinity;
    concurrent_active = false;
    drain_backlog = 0;
    occupancy = 0.0 }

let run (cfg : config) =
  let w = cfg.workload in
  match w.Workload.request with
  | None -> failed cfg ~collector:"?" (w.name ^ " carries no metered request model")
  | Some _ when cfg.replicas < 1 -> failed cfg ~collector:"?" "needs >= 1 replica"
  | Some _ when cfg.autoscale <> None && cfg.slo = None ->
    failed cfg ~collector:"?" "autoscaling needs an SLO (pass an slo spec)"
  | Some req -> (
    let heap_bytes =
      int_of_float (cfg.heap_factor *. Float.of_int w.min_heap_bytes)
    in
    let nominal = Workload.nominal_service_ns w req in
    (* [nominal] is mutator CPU; the cost model spreads it over the
       replica's mutator threads, so the wall-clock service time a
       GC-idle replica actually exhibits is [nominal / speedup]. The
       front-end must reason in wall terms or it would drive every
       replica at a fraction of the intended utilization. *)
    let cost = Cost_model.default in
    let speedup =
      Float.of_int (max 1 (min cost.Cost_model.mutator_threads cost.Cost_model.cores))
    in
    let service_wall = nominal /. speedup in
    (* Default quantum: a few wall service times. Small enough that the
       occupancy snapshot is fresh when a replica nears its collection
       trigger (a stale window keeps routing arrivals onto a replica
       that is about to pause), large enough that the per-round barrier
       cost stays negligible. *)
    let quantum =
      match cfg.quantum_ns with Some q -> q | None -> 4.0 *. service_wall
    in
    (* Resilience knobs. [resilient] switches replica death from a
       run-level failure into a lifecycle event; it is on whenever a
       chaos schedule or the autoscaler is, because both manage replica
       lifetimes. Without it the fleet behaves exactly as before: no
       warm-up ramp, no restarts, a death marks the run failed. *)
    let resilient = cfg.chaos <> None || cfg.autoscale <> None in
    let chaos_spec = Option.value cfg.chaos ~default:Chaos.empty in
    let auto_restart = cfg.chaos <> None && chaos_spec.Chaos.auto_restart in
    let restart_delay =
      match chaos_spec.Chaos.restart_delay_ns with
      | Some d -> d
      | None -> 64.0 *. service_wall
    in
    let ramp_rounds =
      if resilient then Option.value chaos_spec.Chaos.warmup_rounds ~default:8
      else 0
    in
    let slots =
      match cfg.autoscale with
      | Some a -> max cfg.replicas a.Slo.Autoscale.max_replicas
      | None -> cfg.replicas
    in
    (* One pool serves both replica rounds and the collectors' GC
       packets (sized for whichever wants more lanes). *)
    let pool =
      Repro_par.Par.Pool.get ~threads:(max 1 (max cfg.domains cfg.gc_threads))
    in
    let replica_seed idx generation =
      cfg.seed + (1_000_003 * (idx + 1)) + (7_919 * generation)
    in
    (* Build one replica process: heap, sim, api, server, verifier. Run
       by worker domains (initial setup and restarts alike); everything
       it touches is local to the slot being built. *)
    let build_engine ~heap_bytes ~seed =
      match
        let heap_cfg = Repro_heap.Heap_config.make ~heap_bytes () in
        let heap = Repro_heap.Heap.create heap_cfg in
        let sim = Sim.create Cost_model.default in
        Sim.set_pool sim pool;
        let api = Api.create sim heap cfg.factory in
        let prng = Prng.create seed in
        (api, Mut.make_server api prng w)
      with
      | api, Ok server ->
        let verifier =
          if cfg.verify = [] then None
          else Some (Verifier.attach ~points:cfg.verify api)
        in
        Mut.server_measurement_start server;
        Ok { api; server; verifier }
      | _, Error msg -> Error msg
      | exception Repro_collectors.Conc_mark_evac.Unsupported msg ->
        Error ("unsupported: " ^ msg)
    in
    (* Setup phase, replica-parallel: each initial replica builds its
       own long-lived structure from its own seed. *)
    let setups = Array.make cfg.replicas (Error "unbuilt") in
    parallel_over pool cfg.replicas (fun i ->
        setups.(i) <- build_engine ~heap_bytes ~seed:(replica_seed i 0));
    let collector_name =
      match
        Array.to_seq setups
        |> Seq.filter_map (function Ok e -> Some e | Error _ -> None)
        |> Seq.uncons
      with
      | Some (e, _) -> (Api.collector e.api).Collector.name
      | None -> "?"
    in
    let setup_failure =
      Array.to_seq setups
      |> Seq.mapi (fun i s -> (i, s))
      |> Seq.filter_map (function
           | i, Error msg -> Some (i, msg)
           | _, Ok _ -> None)
      |> Seq.uncons
    in
    match setup_failure with
    | Some ((i, msg), _) ->
      if String.length msg >= 12 && String.sub msg 0 12 = "unsupported:" then
        failed cfg ~collector:collector_name msg
      else
        failed cfg ~collector:collector_name
          (Printf.sprintf "setup failed on replica %d: %s" i msg)
    | None ->
      let replicas =
        Array.init slots (fun idx ->
            let eng =
              if idx < cfg.replicas then
                match setups.(idx) with Ok e -> Some e | Error _ -> None
              else None
            in
            let lc = Lifecycle.create ~now:0.0 in
            if eng = None then Lifecycle.transition lc ~now:0.0 Down;
            { idx;
              lc;
              eng;
              offset = 0.0;
              heap_bytes;
              latency = Histogram.create ();
              queueing = Histogram.create ();
              batch = [];
              results = [];
              served = 0;
              dropped = 0;
              copies = 0;
              busy_ns = 0.0;
              pending_restart = None;
              restart_error = None;
              restart_at = Float.nan;
              dead_forever = false;
              stall = None;
              avail =
                (match eng with
                | Some e -> Sim.now (Api.sim e.api)
                | None -> 0.0);
              assigned = 0;
              signal =
                (match eng with
                | Some e -> Api.gc_signal e.api
                | None -> idle_signal);
              est_service = service_wall;
              barrier_busy = 0.0;
              barrier_copies = 0;
              oom = None;
              activated = idx < cfg.replicas;
              acc_ladder =
                { young_collections = 0; full_collections = 0;
                  emergency_compactions = 0; reserve_releases = 0;
                  exhaustions = 0 };
              acc_pauses = Histogram.create ();
              acc_pause_count = 0;
              acc_gc_cpu = 0.0;
              acc_mut_cpu = 0.0;
              acc_checks = 0;
              acc_violations = 0;
              acc_wb_fast = 0.0;
              acc_wb_slow = 0.0 })
      in
      (* The fleet epoch: all initial replica clocks started at 0, so
         the latest post-setup clock is a shared timeline origin every
         replica can idle up to. *)
      let t0 =
        Array.fold_left (fun acc r -> Float.max acc r.avail) 0.0 replicas
      in
      Array.iter
        (fun r ->
          if r.eng = None then r.avail <- t0;
          r.lc.Lifecycle.since <- t0)
        replicas;
      (* Open-loop Poisson arrivals for the whole fleet, with chaos
         flash-crowd windows scaling the rate. Chaos event times resolve
         against the nominal span (requests x mean gap), which depends
         on no PRNG draw, so the fault timeline is fixed by (spec, seed)
         alone. *)
      let front_prng = Prng.create cfg.seed in
      let shed_prng = Prng.create (cfg.seed lxor 0x73686564) in
      let fleet_gap =
        service_wall /. req.target_utilization
        /. (Float.of_int cfg.replicas *. Float.max 0.01 cfg.load)
      in
      let span = Float.of_int cfg.requests *. fleet_gap in
      let schedule =
        Chaos.schedule chaos_spec ~seed:cfg.seed ~replicas:cfg.replicas ~t0
          ~span
      in
      let flash = Chaos.flash_windows schedule in
      let flash_mult t =
        List.fold_left
          (fun m (s, e, f) -> if t >= s && t < e then m *. f else m)
          1.0 flash
      in
      let arrivals =
        let t = ref t0 in
        Array.init cfg.requests (fun _ ->
            let gap = fleet_gap /. flash_mult !t in
            t := !t +. Prng.exponential front_prng ~mean:gap;
            !t)
      in
      let requests =
        Array.mapi
          (fun id at ->
            { id; orig_arrival = at; attempts = 0; settled = false })
          arrivals
      in
      (* Terminal buckets (each request lands in exactly one) ... *)
      let completed = ref 0 in
      let rejected = ref 0 in
      let dropped = ref 0 in
      let shed = ref 0 in
      (* ... and event counters. *)
      let timeouts = ref 0 in
      let retries = ref 0 in
      let hedges = ref 0 in
      let hedge_wins = ref 0 in
      let diversions = ref 0 in
      let chaos_events = ref 0 in
      let scale_ups = ref 0 in
      let scale_downs = ref 0 in
      let slo_mon = Option.map Slo.create cfg.slo in
      let scaler = Option.map Slo.Autoscale.create cfg.autoscale in
      let rr = ref 0 in
      (* Copies the front-end itself failed this window (crash dumps):
         folded with worker results at the barrier so every copy of a
         request resolves together. *)
      let front_failures = ref [] in
      let retry_q = ref [] in  (* (due, rq), unordered *)
      let slo_observe_failure () =
        match slo_mon with
        | Some m -> Slo.observe m ~latency_ns:Float.infinity
        | None -> ()
      in
      let settle_terminal rq bucket =
        if not rq.settled then begin
          rq.settled <- true;
          (match bucket with
          | `Completed -> incr completed
          | `Rejected -> incr rejected
          | `Dropped -> incr dropped
          | `Shed -> incr shed);
          if bucket <> `Completed then slo_observe_failure ()
        end
      in
      (* A failed copy set: retry with exponential backoff when the
         client policy allows and the deadline has room, else land in
         the terminal [bucket]. *)
      let fail_copy rq ~now bucket =
        if not rq.settled then begin
          let due =
            now +. Policy.Retry.delay cfg.retry ~attempt:rq.attempts
          in
          let deadline_ok =
            match cfg.retry.Policy.Retry.timeout_ns with
            | None -> true
            | Some t -> due -. rq.orig_arrival <= t
          in
          if rq.attempts < cfg.retry.Policy.Retry.max_attempts && deadline_ok
          then begin
            incr retries;
            retry_q := (due, rq) :: !retry_q
          end
          else settle_terminal rq bucket
        end
      in
      (* Scoring shared by least-outstanding and gc-aware: estimated
         completion time of this arrival on that replica, from
         checkpoint-frozen state only. [est_service] rather than the
         static estimate -- GC degradation stretches real service times
         several-fold, and a stale constant makes the policy herd onto
         one replica until the admission bound bounces arrivals. *)
      let lo_score rep ~arrival =
        Float.max rep.avail arrival
        +. (Float.of_int rep.assigned *. rep.est_service)
      in
      (* The gc-aware penalty. The predictive signal is occupancy: the
         replica closest to filling its heap triggers the next
         collection, so arrivals routed there are the ones that will
         stand behind its pause. The penalty ramps from zero at the
         [occ_floor] to the replica's last observed pause length at a
         full heap -- the actual cost of landing behind that pause --
         and diverting also slows the replica's allocation rate, which
         delays its trigger and staggers collections across the fleet.
         A blanket concurrent-cycle penalty is deliberately mild (CPU
         stealing makes service a little slower): with small heaps the
         cycles run near-continuously, and penalizing them hard just
         concentrates the whole arrival stream on one replica until
         *it* pauses with everyone's requests in its queue. *)
      let occ_floor = 0.75 in
      (* Journalling collectors advertise drain backlog (unfolded write
         records + pending decrements). A small backlog is the steady
         state and must not steer routing; past the floor it predicts a
         longer catch-up phase in the next pause, so it ramps like the
         concurrent-cycle term — mild, capped at one service time. *)
      let backlog_floor = 1024.0 in
      let gc_penalty rep =
        let s = rep.signal in
        let conc =
          if s.Api.concurrent_active then 2.0 *. rep.est_service else 0.0
        in
        let drain =
          let b = Float.of_int s.Api.drain_backlog in
          if b > backlog_floor then
            Float.min 1.0 ((b -. backlog_floor) /. (7.0 *. backlog_floor))
            *. rep.est_service
          else 0.0
        in
        let imminent =
          if s.Api.occupancy > occ_floor then begin
            let pause_scale =
              if s.Api.pause_end > s.Api.pause_start then
                s.Api.pause_end -. s.Api.pause_start
              else 32.0 *. rep.est_service
            in
            (s.Api.occupancy -. occ_floor) /. (1.0 -. occ_floor)
            *. pause_scale
          end
          else 0.0
        in
        conc +. drain +. imminent
      in
      let routable rep = Lifecycle.routable rep.lc && rep.eng <> None in
      let argmin ?(exclude = -1) score =
        let best = ref None in
        Array.iter
          (fun rep ->
            if routable rep && rep.idx <> exclude then
              let s = score rep in
              match !best with
              | Some (s', _) when s' <= s -> ()
              | _ -> best := Some (s, rep))
          replicas;
        Option.map snd !best
      in
      let choose ?(exclude = -1) ~arrival () =
        match cfg.policy with
        | Policy.Round_robin ->
          let k = Array.length replicas in
          let rec next tries =
            if tries >= k then None
            else begin
              let rep = replicas.(!rr mod k) in
              incr rr;
              if routable rep && rep.idx <> exclude then Some rep
              else next (tries + 1)
            end
          in
          next 0
        | Policy.Least_outstanding -> argmin ~exclude (lo_score ~arrival)
        | Policy.Gc_aware ->
          let plain = argmin ~exclude (lo_score ~arrival) in
          let aware =
            argmin ~exclude (fun rep -> lo_score rep ~arrival +. gc_penalty rep)
          in
          (match (plain, aware) with
          | Some p, Some a when p.idx <> a.idx -> incr diversions
          | _ -> ());
          aware
      in
      let admit rep rq ~arrival ~hedge =
        rep.batch <- (rq, arrival, hedge) :: rep.batch;
        rep.assigned <- rep.assigned + 1
      in
      let admission_room rep =
        rep.assigned
        < Lifecycle.admission rep.lc ~queue_limit:cfg.queue_limit ~ramp_rounds
      in
      (* Dispatch one request at [arrival]: pick a replica, bounce off
         the admission bound, optionally hedge. Fresh arrivals pass
         through brown-out shedding first; retries don't (shedding
         already-queued work wastes the backoff the client paid). *)
      let dispatch rq ~arrival ~fresh =
        if rq.settled then ()
        else begin
          let deadline_exceeded =
            match cfg.retry.Policy.Retry.timeout_ns with
            | Some t -> arrival -. rq.orig_arrival > t
            | None -> false
          in
          if deadline_exceeded then settle_terminal rq `Dropped
          else begin
            let shed_frac =
              match slo_mon with Some m -> Slo.shedding m | None -> 0.0
            in
            if fresh && shed_frac > 0.0 && Prng.float shed_prng 1.0 < shed_frac
            then settle_terminal rq `Shed
            else
              match choose ~arrival () with
              | None ->
                (* Connection refused: nothing alive to take it. *)
                rq.attempts <- rq.attempts + 1;
                fail_copy rq ~now:arrival `Dropped
              | Some rep ->
                if not (admission_room rep) then begin
                  (* Fast-fail rejection: the client backs off. *)
                  rq.attempts <- rq.attempts + 1;
                  fail_copy rq ~now:arrival `Rejected
                end
                else begin
                  rq.attempts <- rq.attempts + 1;
                  admit rep rq ~arrival ~hedge:false;
                  (* Hedge: when the chosen replica's estimated queueing
                     delay already exceeds the threshold, race a second
                     copy on the next-best replica. *)
                  match cfg.retry.Policy.Retry.hedge_ns with
                  | Some h when lo_score rep ~arrival -. arrival > h -> (
                    match choose ~exclude:rep.idx ~arrival () with
                    | Some alt when admission_room alt ->
                      incr hedges;
                      admit alt rq ~arrival ~hedge:true
                    | Some _ | None -> ())
                  | Some _ | None -> ()
                end
          end
        end
      in
      (* Retire a replica's engine: fold its simulator, verifier and
         ladder counters into the per-replica accumulators and drop the
         process. [hooks] runs the clean-shutdown hooks (final
         collection, end-of-run verification) first; a crash skips
         them -- the process is simply gone. *)
      let retire rep ~hooks =
        match rep.eng with
        | None -> ()
        | Some e ->
          if hooks then Mut.server_finish e.server;
          (match e.verifier with
          | Some v ->
            if hooks then Verifier.finish v;
            rep.acc_checks <- rep.acc_checks + Verifier.checks_run v;
            rep.acc_violations <-
              rep.acc_violations + Verifier.total_violations v
          | None -> ());
          let sim = Api.sim e.api in
          rep.acc_pause_count <- rep.acc_pause_count + Sim.pause_count sim;
          Histogram.merge ~into:rep.acc_pauses (Sim.pauses sim);
          rep.acc_gc_cpu <- rep.acc_gc_cpu +. Sim.gc_cpu sim;
          rep.acc_mut_cpu <- rep.acc_mut_cpu +. Sim.mutator_cpu sim;
          add_ladder rep.acc_ladder (Api.ladder e.api);
          (* Write-barrier counters, for collectors that report them
             (lxr's field logging, journal_rc's journal appends). *)
          let cstats = (Api.collector e.api).Collector.stats () in
          let stat k =
            match List.assoc_opt k cstats with Some v -> v | None -> 0.0
          in
          rep.acc_wb_fast <- rep.acc_wb_fast +. stat "wb_fast";
          rep.acc_wb_slow <- rep.acc_wb_slow +. stat "wb_slow";
          rep.avail <- rep.offset +. Sim.now sim;
          rep.signal <- idle_signal;
          rep.eng <- None
      in
      (* Kill a replica at fleet time [now]: the process dies, its
         freshly assigned batch is lost (the copies fail and flow into
         the retry path), and -- when recovery is on -- a relaunch is
         scheduled after the restart delay. *)
      let kill rep ~now ~reason ~relaunch =
        List.iter
          (fun (rq, arrival, hedge) ->
            rep.dropped <- rep.dropped + 1;
            front_failures :=
              { at_rq = rq; at_replica = rep.idx; at_hedge = hedge;
                at_arrival = arrival; at_start = arrival;
                at_outcome = Error reason }
              :: !front_failures)
          (List.rev rep.batch);
        rep.batch <- [];
        rep.assigned <- 0;
        retire rep ~hooks:false;
        rep.oom <- Some reason;
        if Lifecycle.state rep.lc <> Down then
          Lifecycle.transition rep.lc ~now Down;
        rep.pending_restart <- None;
        rep.restart_at <-
          (if relaunch && not rep.dead_forever then now +. restart_delay
           else Float.nan)
      in
      (* Begin a relaunch for a Down replica right now; the worker
         builds the new process during the next round. *)
      let begin_restart rep ~now =
        Lifecycle.transition rep.lc ~now Restarting;
        rep.restart_error <- None;
        (* The death reason dies with the relaunch, or [handle_deaths]
           would mistake the stale marker for a fresh worker death and
           kill the new process at its first barrier. *)
        rep.oom <- None;
        rep.pending_restart <-
          Some
            { ro_heap_bytes = rep.heap_bytes;
              ro_seed = replica_seed rep.idx rep.lc.Lifecycle.restarts;
              ro_begun = now };
        rep.restart_at <- Float.nan
      in
      (* Apply one chaos firing. We are between dispatch and the round,
         so a crash takes the freshly dispatched batch down with it. *)
      let apply_firing (f : Chaos.firing) =
        incr chaos_events;
        match f.Chaos.f_cls with
        | Fault.Flash_crowd -> ()  (* consumed at arrival generation *)
        | Fault.Replica_stall ->
          let rep = replicas.(f.f_replica) in
          if rep.eng <> None then
            rep.stall <- Some (f.f_start, f.f_end, f.f_factor)
        | Fault.Replica_crash ->
          let rep = replicas.(f.f_replica) in
          if rep.eng <> None then
            kill rep ~now:f.f_start ~reason:"chaos: replica crash"
              ~relaunch:auto_restart
        | Fault.Heap_shrink ->
          let rep = replicas.(f.f_replica) in
          rep.heap_bytes <-
            max (1 lsl 16)
              (int_of_float (f.f_factor *. Float.of_int rep.heap_bytes));
          if rep.eng <> None then
            (* An operational resize is a controlled rolling restart:
               always relaunched, even with auto-restart off. *)
            kill rep ~now:f.f_start ~reason:"chaos: heap shrink"
              ~relaunch:true
          else if Float.is_nan rep.restart_at && auto_restart then
            rep.restart_at <- f.f_start +. restart_delay
      in
      (* One worker round on one replica: execute a pending relaunch, or
         serve the batch in arrival order. Latency is end-to-end against
         the request's first fleet arrival; queueing is the wait before
         service start against this copy's dispatch time. *)
      let run_replica_round rep =
        match rep.pending_restart with
        | Some order -> (
          match
            build_engine ~heap_bytes:order.ro_heap_bytes ~seed:order.ro_seed
          with
          | Ok e ->
            rep.eng <- Some e;
            rep.offset <- order.ro_begun;
            rep.activated <- true
          | Error msg -> rep.restart_error <- Some msg)
        | None -> (
          match rep.eng with
          | None -> ()
          | Some e ->
            let sim = Api.sim e.api in
            let batch = List.rev rep.batch in
            rep.batch <- [];
            let dead = ref None in
            List.iter
              (fun (rq, arrival, hedge) ->
                match !dead with
                | Some msg ->
                  rep.dropped <- rep.dropped + 1;
                  rep.results <-
                    { at_rq = rq; at_replica = rep.idx; at_hedge = hedge;
                      at_arrival = arrival; at_start = arrival;
                      at_outcome = Error msg }
                    :: rep.results
                | None -> (
                  let local_arrival = arrival -. rep.offset in
                  let start =
                    Float.max (Sim.now sim) local_arrival +. rep.offset
                  in
                  match Mut.serve e.server ~arrival:local_arrival with
                  | Ok completion ->
                    (* A stalled replica still serves, slower: the
                       antagonist charges extra compute proportional to
                       the observed service time. *)
                    let completion =
                      match rep.stall with
                      | Some (s, en, f)
                        when rep.offset +. completion >= s
                             && rep.offset +. completion < en ->
                        let svc =
                          Float.max 0.0 (rep.offset +. completion -. start)
                        in
                        Api.work e.api ~ns:((f -. 1.0) *. svc);
                        Api.safepoint e.api;
                        Sim.now sim
                      | _ -> completion
                    in
                    let completion = rep.offset +. completion in
                    rep.copies <- rep.copies + 1;
                    rep.busy_ns <- rep.busy_ns +. (completion -. start);
                    rep.results <-
                      { at_rq = rq; at_replica = rep.idx; at_hedge = hedge;
                        at_arrival = arrival; at_start = start;
                        at_outcome = Ok completion }
                      :: rep.results
                  | Error msg ->
                    dead := Some msg;
                    rep.oom <- Some msg;
                    rep.dropped <- rep.dropped + 1;
                    rep.results <-
                      { at_rq = rq; at_replica = rep.idx; at_hedge = hedge;
                        at_arrival = arrival; at_start = arrival;
                        at_outcome = Error msg }
                      :: rep.results))
              batch)
      in
      (* Settle every copy that resolved this window. Copies of one
         request always resolve at the same barrier (dispatch and
         service share a window), so grouping here is complete: the
         earliest completion wins -- and is attributed to the replica
         that produced it -- hedged losers are wasted work, and a
         request whose copies all failed enters the retry path once. *)
      let settle ~window_end =
        let by_rq : (int, attempt list ref) Hashtbl.t = Hashtbl.create 64 in
        let order = ref [] in
        let feed (a : attempt) =
          match Hashtbl.find_opt by_rq a.at_rq.id with
          | Some cell -> cell := a :: !cell
          | None ->
            Hashtbl.add by_rq a.at_rq.id (ref [ a ]);
            order := a.at_rq :: !order
        in
        Array.iter
          (fun rep ->
            List.iter feed (List.rev rep.results);
            rep.results <- [])
          replicas;
        List.iter feed (List.rev !front_failures);
        front_failures := [];
        List.iter
          (fun rq ->
            let attempts = List.rev !(Hashtbl.find by_rq rq.id) in
            let winner =
              List.fold_left
                (fun acc a ->
                  match a.at_outcome with
                  | Error _ -> acc
                  | Ok c -> (
                    match acc with
                    | Some (c', _) when c' <= c -> acc
                    | _ -> Some (c, a)))
                None attempts
            in
            match winner with
            | Some (completion, a) ->
              if not rq.settled then begin
                settle_terminal rq `Completed;
                if a.at_hedge then incr hedge_wins;
                let lat = Float.max 1.0 (completion -. rq.orig_arrival) in
                (match cfg.retry.Policy.Retry.timeout_ns with
                | Some t when lat > t -> incr timeouts
                | _ -> ());
                (match slo_mon with
                | Some m -> Slo.observe m ~latency_ns:lat
                | None -> ());
                let rep = replicas.(a.at_replica) in
                rep.served <- rep.served + 1;
                Histogram.record rep.latency (int_of_float lat);
                Histogram.record rep.queueing
                  (int_of_float (Float.max 1.0 (a.at_start -. a.at_arrival)))
              end
            | None -> fail_copy rq ~now:window_end `Dropped)
          (List.rev !order)
      in
      (* Re-snapshot the front-end's frozen view of every replica. *)
      let refresh ~window_end =
        Array.iter
          (fun rep ->
            (match rep.eng with
            | Some e ->
              rep.avail <- rep.offset +. Sim.now (Api.sim e.api);
              rep.signal <- Api.gc_signal e.api
            | None -> ());
            rep.assigned <- 0;
            let round_copies = rep.copies - rep.barrier_copies in
            if round_copies > 0 then begin
              let round_mean =
                (rep.busy_ns -. rep.barrier_busy)
                /. Float.of_int round_copies
              in
              rep.est_service <-
                (0.7 *. rep.est_service) +. (0.3 *. round_mean)
            end;
            rep.barrier_busy <- rep.busy_ns;
            rep.barrier_copies <- rep.copies;
            match rep.stall with
            | Some (_, e, _) when e <= window_end -> rep.stall <- None
            | _ -> ())
          replicas
      in
      (* A replica whose worker hit allocation-ladder exhaustion this
         round dies at the barrier: in resilient mode that is a
         lifecycle event (relaunch scheduled); otherwise it stays down
         and the run reports the failure. *)
      let handle_deaths ~window_end =
        Array.iter
          (fun rep ->
            match (rep.eng, rep.oom) with
            | Some _, Some reason ->
              kill rep ~now:window_end ~reason
                ~relaunch:(resilient && auto_restart)
            | _ -> ())
          replicas
      in
      (* Walk the lifecycle graph at the barrier: warm-up ramps finish,
         drained replicas retire cleanly, completed relaunches enter
         their slow start. *)
      let advance_lifecycles ~window_end =
        Array.iter
          (fun rep ->
            Lifecycle.tick_round rep.lc;
            match Lifecycle.state rep.lc with
            | Lifecycle.Warming ->
              if rep.lc.Lifecycle.rounds_in_state >= ramp_rounds then
                Lifecycle.transition rep.lc ~now:window_end Serving
            | Lifecycle.Serving -> ()
            | Lifecycle.Draining ->
              (* Batches drain within their round, so one round in
                 Draining suffices: retire with clean-shutdown hooks. *)
              retire rep ~hooks:true;
              Lifecycle.transition rep.lc ~now:window_end Down;
              rep.restart_at <- Float.nan
            | Lifecycle.Restarting -> (
              if rep.eng <> None then begin
                rep.pending_restart <- None;
                rep.oom <- None;
                rep.est_service <- service_wall;
                Lifecycle.transition rep.lc ~now:window_end Warming
              end
              else
                match rep.restart_error with
                | Some msg ->
                  rep.pending_restart <- None;
                  rep.oom <- Some msg;
                  rep.dead_forever <- true;
                  Lifecycle.transition rep.lc ~now:window_end Down;
                  rep.restart_at <- Float.nan
                | None -> ())
            | Lifecycle.Down -> ())
          replicas
      in
      let autoscale_act ~window_end ~burn =
        match scaler with
        | None -> ()
        | Some sc ->
          let active =
            Array.fold_left
              (fun acc rep ->
                match Lifecycle.state rep.lc with
                | Lifecycle.Warming | Lifecycle.Serving
                | Lifecycle.Restarting -> acc + 1
                | _ -> acc)
              0 replicas
          in
          (match Slo.Autoscale.tick sc ~burn ~active with
          | `Hold -> ()
          | `Up -> (
            let slot = ref None in
            Array.iter
              (fun rep ->
                if
                  !slot = None
                  && Lifecycle.state rep.lc = Lifecycle.Down
                  && not rep.dead_forever
                then slot := Some rep)
              replicas;
            match !slot with
            | Some rep ->
              incr scale_ups;
              begin_restart rep ~now:window_end
            | None -> ())
          | `Down ->
            let victim = ref None in
            Array.iter
              (fun rep -> if routable rep then victim := Some rep)
              replicas;
            (match !victim with
            | Some rep ->
              incr scale_downs;
              Lifecycle.transition rep.lc ~now:window_end Draining
            | None -> ()))
      in
      (* The fleet can still make progress as long as something is
         routable, relaunching, or scheduled to relaunch. *)
      let hopeless () =
        Array.for_all
          (fun rep ->
            (not (routable rep))
            && Lifecycle.state rep.lc <> Lifecycle.Restarting
            && rep.pending_restart = None
            && Float.is_nan rep.restart_at)
          replicas
      in
      let n = cfg.requests in
      let i = ref 0 in
      let t = ref t0 in
      while (!i < n || !retry_q <> []) && not (hopeless ()) do
        let window_start = !t in
        let window_end = !t +. quantum in
        (* Scheduled relaunches begin at the window head. *)
        Array.iter
          (fun rep ->
            if
              Lifecycle.state rep.lc = Lifecycle.Down
              && (not (Float.is_nan rep.restart_at))
              && rep.restart_at <= window_start
            then begin_restart rep ~now:window_start)
          replicas;
        (* Dispatch fresh arrivals and due retries in time order. *)
        let events = ref [] in
        while !i < n && arrivals.(!i) < window_end do
          events := (arrivals.(!i), requests.(!i), true) :: !events;
          incr i
        done;
        let due, rest =
          List.partition (fun (d, _) -> d < window_end) !retry_q
        in
        retry_q := rest;
        List.iter
          (fun (d, rq) ->
            events := (Float.max d window_start, rq, false) :: !events)
          due;
        let events =
          List.sort
            (fun (t1, r1, _) (t2, r2, _) ->
              match compare t1 t2 with
              | 0 -> compare r1.id r2.id
              | c -> c)
            !events
        in
        List.iter (fun (at, rq, fresh) -> dispatch rq ~arrival:at ~fresh)
          events;
        (* Chaos firings quantized to this checkpoint, after dispatch:
           a crash takes the fresh batch with it. *)
        List.iter apply_firing (Chaos.due schedule ~until:window_end);
        (* Parallel replica rounds, then the barrier. *)
        parallel_over pool slots (fun j -> run_replica_round replicas.(j));
        settle ~window_end;
        handle_deaths ~window_end;
        refresh ~window_end;
        advance_lifecycles ~window_end;
        let burn =
          match slo_mon with
          | Some m ->
            Slo.tick m ~now:window_end;
            Slo.burn m
          | None -> 0.0
        in
        (* Publish the window's burn while the replicas are quiescent
           (between parallel rounds), so a controller factory reading it
           from inside replica engines sees a value frozen for the whole
           next round — deterministic across --domains. *)
        (match cfg.on_burn with Some f -> f burn | None -> ());
        autoscale_act ~window_end ~burn;
        t := window_end;
        (* Fast-forward over empty quanta so lightly-loaded fleets do
           not spin through windows with nothing to schedule -- but only
           when no replica is mid-transition (drain, relaunch). *)
        let quiescent =
          Array.for_all
            (fun rep ->
              rep.pending_restart = None
              &&
              match Lifecycle.state rep.lc with
              | Lifecycle.Draining | Lifecycle.Restarting -> false
              | _ -> true)
            replicas
        in
        if quiescent then begin
          let next_event =
            let a = if !i < n then arrivals.(!i) else Float.infinity in
            let r =
              List.fold_left
                (fun m (d, _) -> Float.min m d)
                Float.infinity !retry_q
            in
            let s =
              Array.fold_left
                (fun m rep ->
                  if Float.is_nan rep.restart_at then m
                  else Float.min m rep.restart_at)
                Float.infinity replicas
            in
            Float.min a (Float.min r s)
          in
          if next_event < Float.infinity && next_event >= !t +. quantum then
            t :=
              !t
              +. quantum
                 *. Float.of_int
                      (int_of_float ((next_event -. !t) /. quantum))
        end
      done;
      (* Anything still unrouted when the fleet went dark. *)
      while !i < n do
        settle_terminal requests.(!i) `Dropped;
        incr i
      done;
      List.iter (fun (_, rq) -> settle_terminal rq `Dropped) !retry_q;
      retry_q := [];
      (* Wind down: final collector hooks and end-of-run verification,
         still replica-parallel; then fold the survivors' counters. *)
      parallel_over pool slots (fun j ->
          let rep = replicas.(j) in
          match rep.eng with
          | Some e ->
            if rep.oom = None then Mut.server_finish e.server;
            (match e.verifier with
            | Some v -> Verifier.finish v
            | None -> ())
          | None -> ());
      Array.iter (fun rep -> retire rep ~hooks:false) replicas;
      let wall_end =
        Array.fold_left
          (fun acc rep ->
            if rep.activated then Float.max acc rep.avail else acc)
          t0 replicas
      in
      let wall_ns = wall_end -. t0 in
      Array.iter (fun rep -> Lifecycle.finish rep.lc ~now:wall_end) replicas;
      let latency = Histogram.create () in
      let queueing = Histogram.create () in
      Array.iter
        (fun rep ->
          Histogram.merge ~into:latency rep.latency;
          Histogram.merge ~into:queueing rep.queueing)
        replicas;
      let verifier_checks =
        Array.fold_left (fun acc rep -> acc + rep.acc_checks) 0 replicas
      in
      let violations =
        Array.fold_left (fun acc rep -> acc + rep.acc_violations) 0 replicas
      in
      let fleet_ladder =
        let total : Api.ladder_counts =
          { young_collections = 0; full_collections = 0;
            emergency_compactions = 0; reserve_releases = 0;
            exhaustions = 0 }
        in
        Array.iter (fun rep -> add_ladder total rep.acc_ladder) replicas;
        Api.ladder_alist total
      in
      let first_oom =
        Array.to_seq replicas
        |> Seq.filter_map (fun rep ->
               Option.map
                 (fun msg -> Printf.sprintf "replica %d: %s" rep.idx msg)
                 rep.oom)
        |> Seq.uncons
      in
      let error =
        match first_oom with
        | Some (msg, _) when not resilient -> Some ("out of memory: " ^ msg)
        | _ ->
          if violations > 0 then
            Some (Printf.sprintf "%d integrity violations" violations)
          else None
      in
      let availability =
        if n = 0 then 1.0
        else Float.of_int (!completed - !timeouts) /. Float.of_int n
      in
      let per_replica =
        Array.to_list replicas
        |> List.filter (fun rep -> rep.activated)
        |> List.map (fun rep ->
               { r_index = rep.idx;
                 r_served = rep.served;
                 r_dropped = rep.dropped;
                 r_latency = rep.latency;
                 r_queueing = rep.queueing;
                 r_busy_ns = rep.busy_ns;
                 r_wall_ns = rep.avail -. t0;
                 r_utilization =
                   (if wall_ns > 0.0 then rep.busy_ns /. wall_ns else 0.0);
                 r_pause_count = rep.acc_pause_count;
                 r_pauses = rep.acc_pauses;
                 r_gc_cpu_ns = rep.acc_gc_cpu;
                 r_mutator_cpu_ns = rep.acc_mut_cpu;
                 r_oom = rep.oom;
                 r_state = Lifecycle.state_name (Lifecycle.state rep.lc);
                 r_restarts = rep.lc.Lifecycle.restarts;
                 r_time_in = Lifecycle.time_in_alist rep.lc;
                 r_ladder = Api.ladder_alist rep.acc_ladder;
                 r_wb_fast = rep.acc_wb_fast;
                 r_wb_slow = rep.acc_wb_slow })
      in
      { workload = w.name;
        collector = collector_name;
        policy = cfg.policy;
        replicas = cfg.replicas;
        domains = cfg.domains;
        heap_factor = cfg.heap_factor;
        ok = error = None;
        error;
        requests = n;
        completed = !completed;
        rejected = !rejected;
        dropped = !dropped;
        shed = !shed;
        timeouts = !timeouts;
        retries = !retries;
        hedges = !hedges;
        hedge_wins = !hedge_wins;
        wall_ns;
        latency;
        queueing;
        diversions = !diversions;
        availability;
        chaos_events = !chaos_events;
        scale_ups = !scale_ups;
        scale_downs = !scale_downs;
        slo_peak_burn =
          (match slo_mon with Some m -> Slo.peak_burn m | None -> 0.0);
        slo_breach_rounds =
          (match slo_mon with Some m -> Slo.breach_rounds m | None -> 0);
        slo_shed_rounds =
          (match slo_mon with Some m -> Slo.shed_rounds m | None -> 0);
        slo_timeline =
          (match slo_mon with Some m -> Slo.timeline m | None -> []);
        ladder = fleet_ladder;
        wb_fast =
          Array.fold_left (fun a rep -> a +. rep.acc_wb_fast) 0.0 replicas;
        wb_slow =
          Array.fold_left (fun a rep -> a +. rep.acc_wb_slow) 0.0 replicas;
        verifier_checks;
        violations;
        per_replica })
