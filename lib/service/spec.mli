(** Shared parsing for the resilience CLI specs ([--chaos], [--slo],
    [--retry], [--autoscale]): comma-separated [key:value] items with
    range-validated numbers, duration suffixes, and
    {!Repro_util.Suggest} did-you-mean hints on unknown keys. *)

(** Comma-split, trimmed, empties removed. *)
val items : string -> string list

(** ["key:value"] split on the first colon, key lowercased; [None] when
    there is no colon. *)
val kv : string -> (string * string) option

(** A uniform unknown-key error carrying a did-you-mean hint. *)
val unknown_key :
  what:string -> known:string list -> string -> ('a, string) result

(** [duration ~what "250us"] — a simulated-time span in ns; accepts
    ns/us/ms/s suffixes (default ns). Rejects negatives. *)
val duration : what:string -> string -> (float, string) result

val float_in :
  what:string -> lo:float -> hi:float -> string -> (float, string) result

val float_min : what:string -> lo:float -> string -> (float, string) result

val int_in :
  what:string -> lo:int -> hi:int -> string -> (int, string) result

(** Error-short-circuiting fold over {!items}. *)
val fold_items :
  f:('a -> string -> ('a, string) result) -> 'a -> string -> ('a, string) result
