(** The replica lifecycle state machine.

    Every replica in the fleet carries one of these; all transitions are
    driven by the single-threaded front-end at scheduling barriers, so
    firings are checkpoint-quantized and bit-identical across domain
    counts.

    {v
      Warming -> Serving -> Draining -> Down -> Restarting -> Warming
         \________________________________^ (crash: any state -> Down)
    v} *)

type state =
  | Warming  (** (re)started; admission ramps up (slow start) *)
  | Serving  (** steady state *)
  | Draining  (** no new arrivals; finishing in-flight work *)
  | Down  (** dead: crashed, OOM, drained away, or never started *)
  | Restarting  (** process relaunch: heap + server rebuild in flight *)

val states : state list
val state_name : state -> string

(** Raised by {!transition} on an edge outside the legal graph — a fleet
    scheduling bug, never a workload condition. *)
exception Illegal of string

type t = {
  mutable state : state;
  mutable since : float;
  mutable rounds_in_state : int;
  mutable restarts : int;  (** Down -> Restarting edges taken *)
  time_in : float array;
}

(** A fresh machine in [Warming] as of fleet time [now]. *)
val create : now:float -> t

val state : t -> state

(** [transition t ~now to_] — closes the current stretch's time-in-state
    accounting and moves. [Down] is reachable from every state; all
    other edges follow the graph above. *)
val transition : t -> now:float -> state -> unit

(** Count one scheduling round spent in the current state (drives the
    warming ramp). *)
val tick_round : t -> unit

(** The per-round admission bound: [queue_limit] when [Serving], a
    linear ramp over [ramp_rounds] rounds while [Warming] (at least 1),
    and [0] otherwise. *)
val admission : t -> queue_limit:int -> ramp_rounds:int -> int

(** Can the front-end route new arrivals here? ([Warming] or
    [Serving].) *)
val routable : t -> bool

(** Close the final stretch at end of run. *)
val finish : t -> now:float -> unit

(** Accumulated nanoseconds per state, as [(name, ns)] pairs in
    {!states} order. *)
val time_in_alist : t -> (string * float) list
