(** Seeded chaos schedules: service-tier fault events
    ({!Repro_engine.Fault.service_class}) fired against the fleet
    timeline.

    Spec grammar (comma-separated):
    {v
      crash@0.30            kill a seeded-random replica at 30% of the run
      crash@0.30:r1         ... replica 1 specifically
      stall@0.45+0.10x4     4x slowdown for one replica over [0.45, 0.55)
      heap-shrink@0.60x0.7  restart the target into a 0.7x heap
      flash-crowd@0.50+0.15x3  arrival rate x3 over [0.50, 0.65)
      restart:2ms           relaunch delay after a death
      warmup:6              slow-start admission ramp, in rounds
      auto-restart:off      leave dead replicas down (default: on)
    v}

    Event times are fractions of the nominal arrival span, replica
    targets default to one seeded PRNG draw per event, and the fleet
    fires events only at scheduling barriers — so a fixed (spec, seed)
    pair yields a bit-identical fault timeline at every [--domains] and
    [--gc-threads] count. *)

type event_spec = {
  cls : Repro_engine.Fault.service_class;
  at : float;  (** fraction of the nominal arrival span, in [0, 1] *)
  dur : float;  (** window length as a fraction; 0 when instantaneous *)
  factor : float;
      (** stall slowdown (>= 1), heap scale (0.05..1], or arrival
          multiplier (>= 1) *)
  replica : int option;  (** explicit [:rN] target *)
}

type spec = {
  events : event_spec list;
  restart_delay_ns : float option;
  warmup_rounds : int option;
  auto_restart : bool;
}

(** No events, defaults only. *)
val empty : spec

(** [of_spec s] parses and range-checks a CLI spec; unknown classes and
    keys carry did-you-mean hints. *)
val of_spec : string -> (spec, string) result

(** One scheduled event with absolute fleet times and a resolved
    replica target. *)
type firing = {
  f_cls : Repro_engine.Fault.service_class;
  f_replica : int;  (** [-1] for the arrival-process flash-crowd *)
  f_start : float;
  f_end : float;
  f_factor : float;
}

type t

(** [schedule spec ~seed ~replicas ~t0 ~span] resolves fractions against
    the nominal arrival span [t0, t0+span) and draws unspecified replica
    targets from one PRNG seeded by [seed]. *)
val schedule : spec -> seed:int -> replicas:int -> t0:float -> span:float -> t

(** Pop every firing with [f_start < until], in time order. *)
val due : t -> until:float -> firing list

(** The still-pending flash-crowd windows, as [(start, end, factor)] —
    consumed up-front by arrival generation. *)
val flash_windows : t -> (float * float * float) list

val describe_firing : firing -> string
