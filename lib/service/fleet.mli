(** The fleet serving tier: K replica simulations behind one front-end.

    Each replica is an independent {!Repro_engine.Sim} heap + collector
    running the metered request workload through
    {!Repro_mutator.Mut_engine}'s server interface. The front-end
    generates open-loop Poisson arrivals for the whole fleet, admits them
    through a bounded per-replica queue, and routes each to a replica
    with a pluggable {!Policy}. Per-request end-to-end latency (queueing
    + service, measured from fleet arrival to replica completion),
    per-replica utilization, and fleet-merged histograms come out the
    other side.

    {2 Resilience}

    Every replica carries a {!Lifecycle} state machine (warming, serving,
    draining, down, restarting). A {!Chaos} schedule can kill, stall or
    heap-shrink replicas mid-run and flash-crowd the arrival process; a
    killed replica relaunches after a restart delay into a fresh heap and
    re-enters service through a slow-start admission ramp. The front-end
    client policy ({!Policy.Retry}) adds request deadlines, bounded
    retry-with-backoff and hedged requests; an {!Slo} burn monitor drives
    brown-out load shedding; and an {!Slo.Autoscale} controller
    adds/drains replicas against the SLO burn rate. With none of these
    configured the fleet behaves exactly as before: no warm-up ramp, no
    restarts, and a replica death marks the run failed.

    {2 Determinism and domain parallelism}

    Time is divided into fixed scheduling quanta. At the start of each
    quantum the front-end — always single-threaded — assigns every
    arrival in the window using only checkpoint-frozen replica state
    (clock, per-round assignment count, {!Repro_engine.Api.gc_signal});
    then all replicas execute their assigned batches, each one entirely
    inside a single OCaml [Domain]; then a barrier re-snapshots every
    replica, settles request outcomes, fires lifecycle transitions and
    SLO/autoscale decisions. Chaos firings are quantized to the same
    checkpoints, replica relaunches execute inside worker rounds from
    orders placed at barriers, and restarted replica clocks are
    translated back onto the fleet timeline through a per-replica
    offset. Replicas share no mutable state with each other, and the
    per-replica event stream depends only on the batch sequence, so
    partitioning replicas across 1 or N domains produces bit-identical
    metrics — [--domains] is purely a wall-clock knob, chaos included.

    Replica rounds and the collectors' GC work packets
    ({!Repro_par.Par}) share one domain pool, sized
    [max domains gc_threads], so the two layers never oversubscribe the
    host: a collector phase reaching the pool from inside a replica
    round finds it busy and runs inline. [gc_threads] (default 1) is
    bit-identical too. *)

type config = {
  workload : Repro_mutator.Workload.t;  (** must carry a request model *)
  factory : Repro_engine.Collector.factory;
  replicas : int;
  heap_factor : float;  (** per replica, like {!Repro_harness.Runner.run} *)
  policy : Policy.t;
  seed : int;
  requests : int;  (** total fleet-level request count *)
  load : float;
      (** multiplier on the aggregate arrival rate; [1.0] drives each
          replica at the workload's published target utilization *)
  queue_limit : int;
      (** admission bound: max requests handed to one replica per
          scheduling round; arrivals beyond it are rejected (or retried
          when the client policy allows) *)
  quantum_ns : float option;
      (** scheduling-checkpoint interval; default 4x the wall-clock
          service time (nominal mutator CPU over the cost model's
          mutator threads), keeping the GC signal fresh *)
  domains : int;  (** worker domains for replica execution, >= 1 *)
  gc_threads : int;
      (** work-packet lanes for each replica's collector phases, >= 1;
          shares the replica pool (see above) *)
  verify : Repro_verify.Verifier.safepoint list;
      (** attach the heap-integrity verifier to every replica *)
  chaos : Chaos.spec option;
      (** seeded fault schedule; also enables auto-restart of dead
          replicas and the slow-start warm-up ramp *)
  retry : Policy.Retry.t;
      (** front-end client policy: deadline, retries, hedging; default
          {!Policy.Retry.none} *)
  slo : Slo.spec option;
      (** burn monitor + brown-out shedding over the latency SLO *)
  autoscale : Slo.Autoscale.spec option;
      (** burn-driven replica count controller; requires [slo] *)
  on_burn : (float -> unit) option;
      (** called with the SLO burn rate at every window boundary, while
          the replicas are quiescent — the hook a knob-controller
          factory ({!Repro_policy.Controller.lxr_factory}'s [burn])
          reads: the published value is frozen for the whole next
          parallel round, so controlled runs stay bit-identical across
          [domains] *)
}

(** [config ~workload ~factory ()] with fleet defaults: 4 replicas, 1.3x
    heap, gc-aware policy, seed 42, the workload's published request
    count, load 1.0, queue limit 64, auto quantum, 1 domain, 1 GC
    thread, no verifier, and no resilience features (no chaos, no
    retries, no SLO monitor, no autoscaler). *)
val config :
  ?replicas:int ->
  ?heap_factor:float ->
  ?policy:Policy.t ->
  ?seed:int ->
  ?requests:int ->
  ?load:float ->
  ?queue_limit:int ->
  ?quantum_ns:float ->
  ?domains:int ->
  ?gc_threads:int ->
  ?verify:Repro_verify.Verifier.safepoint list ->
  ?chaos:Chaos.spec ->
  ?retry:Policy.Retry.t ->
  ?slo:Slo.spec ->
  ?autoscale:Slo.Autoscale.spec ->
  ?on_burn:(float -> unit) ->
  workload:Repro_mutator.Workload.t ->
  factory:Repro_engine.Collector.factory ->
  unit ->
  config

type replica_stats = {
  r_index : int;
  r_served : int;  (** requests this replica's completion won *)
  r_dropped : int;
      (** request copies lost on this replica: crash dumps, OOM, copies
          queued on a dead process (they may have completed elsewhere
          after a retry) *)
  r_latency : Repro_util.Histogram.t;  (** end-to-end ns, wins only *)
  r_queueing : Repro_util.Histogram.t;  (** wait before service start, ns *)
  r_busy_ns : float;
  r_wall_ns : float;  (** replica clock at fleet end minus fleet start *)
  r_utilization : float;  (** busy / fleet wall *)
  r_pause_count : int;
  r_pauses : Repro_util.Histogram.t;
  r_gc_cpu_ns : float;
  r_mutator_cpu_ns : float;
  r_oom : string option;
      (** last death reason; [None] when the replica ended healthy *)
  r_state : string;  (** lifecycle state at end of run *)
  r_restarts : int;  (** relaunches begun (Down -> Restarting edges) *)
  r_time_in : (string * float) list;
      (** ns accumulated per lifecycle state, {!Lifecycle.states} order *)
  r_ladder : (string * float) list;
      (** degradation-ladder rung counters
          ({!Repro_engine.Api.ladder_alist}), summed across restarts *)
  r_wb_fast : float;
      (** write-barrier fast paths taken, summed across restarts (0 for
          collectors that report no barrier counters) *)
  r_wb_slow : float;
      (** write-barrier slow paths: lxr field logs, journal_rc chunk
          publications *)
}

type result = {
  workload : string;
  collector : string;
  policy : Policy.t;
  replicas : int;
  domains : int;
  heap_factor : float;
  ok : bool;
      (** false: unsupported heap, setup failure, integrity violations —
          or, with no resilience configured, a mid-run exhaustion *)
  error : string option;
  requests : int;
  completed : int;  (** terminal: first copy completed *)
  rejected : int;  (** terminal: bounced off the admission bound *)
  dropped : int;
      (** terminal: lost to replica death, deadline exhaustion, or a
          dark fleet, with no retry budget left *)
  shed : int;  (** terminal: brown-out load shedding *)
  timeouts : int;  (** completions past the client deadline *)
  retries : int;  (** re-dispatches queued with backoff *)
  hedges : int;  (** hedge copies dispatched *)
  hedge_wins : int;  (** completions where the hedge copy won *)
  wall_ns : float;  (** fleet wall: latest replica clock - fleet start *)
  latency : Repro_util.Histogram.t;  (** merged across replicas *)
  queueing : Repro_util.Histogram.t;
  diversions : int;
      (** requests the gc-aware penalty routed away from the replica
          plain least-outstanding would have picked (0 under other
          policies) *)
  availability : float;
      (** in-SLA fraction: requests completed within the client deadline
          (all completions when no deadline is set) over all requests *)
  chaos_events : int;  (** chaos firings applied *)
  scale_ups : int;
  scale_downs : int;
  slo_peak_burn : float;  (** worst window burn rate (0 without an SLO) *)
  slo_breach_rounds : int;  (** rounds with burn > 1 *)
  slo_shed_rounds : int;  (** rounds spent browned out *)
  slo_timeline : Slo.sample list;  (** oldest first; [] without an SLO *)
  ladder : (string * float) list;
      (** fleet-summed degradation-ladder rung counters *)
  wb_fast : float;  (** fleet-summed write-barrier fast paths *)
  wb_slow : float;  (** fleet-summed write-barrier slow paths *)
  verifier_checks : int;
  violations : int;
  per_replica : replica_stats list;
      (** ascending replica index; only slots that ever held an engine *)
}

(** Completed requests per second of fleet wall time.
    @raise Invalid_argument on a failed run or one with no completions —
    use {!qps_opt} when failure is an expected outcome. *)
val qps : result -> float

(** [qps_opt r] is [Some] throughput, or [None] when the run failed or
    completed nothing. *)
val qps_opt : result -> float option

(** [run config] — the whole fleet simulation. Never raises for workload
    or collector reasons: an unsupported heap, a missing request model or
    an exhausted setup are reported through [ok]/[error]. *)
val run : config -> result
