(** The fleet serving tier: K replica simulations behind one front-end.

    Each replica is an independent {!Repro_engine.Sim} heap + collector
    running the metered request workload through
    {!Repro_mutator.Mut_engine}'s server interface. The front-end
    generates open-loop Poisson arrivals for the whole fleet, admits them
    through a bounded per-replica queue, and routes each to a replica
    with a pluggable {!Policy}. Per-request end-to-end latency (queueing
    + service, measured from fleet arrival to replica completion),
    per-replica utilization, and fleet-merged histograms come out the
    other side.

    {2 Determinism and domain parallelism}

    Time is divided into fixed scheduling quanta. At the start of each
    quantum the front-end — always single-threaded — assigns every
    arrival in the window using only checkpoint-frozen replica state
    (clock, per-round assignment count, {!Repro_engine.Api.gc_signal});
    then all replicas execute their assigned batches, each one entirely
    inside a single OCaml [Domain]; then a barrier re-snapshots every
    replica. Replicas share no mutable state with each other, and the
    per-replica event stream depends only on the batch sequence, so
    partitioning replicas across 1 or N domains produces bit-identical
    metrics — [--domains] is purely a wall-clock knob.

    Replica rounds and the collectors' GC work packets
    ({!Repro_par.Par}) share one domain pool, sized
    [max domains gc_threads], so the two layers never oversubscribe the
    host: a collector phase reaching the pool from inside a replica
    round finds it busy and runs inline. [gc_threads] (default 1) is
    bit-identical too. *)

type config = {
  workload : Repro_mutator.Workload.t;  (** must carry a request model *)
  factory : Repro_engine.Collector.factory;
  replicas : int;
  heap_factor : float;  (** per replica, like {!Repro_harness.Runner.run} *)
  policy : Policy.t;
  seed : int;
  requests : int;  (** total fleet-level request count *)
  load : float;
      (** multiplier on the aggregate arrival rate; [1.0] drives each
          replica at the workload's published target utilization *)
  queue_limit : int;
      (** admission bound: max requests handed to one replica per
          scheduling round; arrivals beyond it are rejected *)
  quantum_ns : float option;
      (** scheduling-checkpoint interval; default 4x the wall-clock
          service time (nominal mutator CPU over the cost model's
          mutator threads), keeping the GC signal fresh *)
  domains : int;  (** worker domains for replica execution, >= 1 *)
  gc_threads : int;
      (** work-packet lanes for each replica's collector phases, >= 1;
          shares the replica pool (see above) *)
  verify : Repro_verify.Verifier.safepoint list;
      (** attach the heap-integrity verifier to every replica *)
}

(** [config ~workload ~factory ()] with fleet defaults: 4 replicas, 1.3x
    heap, gc-aware policy, seed 42, the workload's published request
    count, load 1.0, queue limit 64, auto quantum, 1 domain, 1 GC
    thread, no verifier. *)
val config :
  ?replicas:int ->
  ?heap_factor:float ->
  ?policy:Policy.t ->
  ?seed:int ->
  ?requests:int ->
  ?load:float ->
  ?queue_limit:int ->
  ?quantum_ns:float ->
  ?domains:int ->
  ?gc_threads:int ->
  ?verify:Repro_verify.Verifier.safepoint list ->
  workload:Repro_mutator.Workload.t ->
  factory:Repro_engine.Collector.factory ->
  unit ->
  config

type replica_stats = {
  r_index : int;
  r_served : int;
  r_dropped : int;  (** admitted but lost to this replica's death *)
  r_latency : Repro_util.Histogram.t;  (** end-to-end ns *)
  r_queueing : Repro_util.Histogram.t;  (** wait before service start, ns *)
  r_busy_ns : float;
  r_wall_ns : float;  (** replica clock at fleet end minus fleet start *)
  r_utilization : float;  (** busy / fleet wall *)
  r_pause_count : int;
  r_pauses : Repro_util.Histogram.t;
  r_gc_cpu_ns : float;
  r_mutator_cpu_ns : float;
  r_oom : string option;
}

type result = {
  workload : string;
  collector : string;
  policy : Policy.t;
  replicas : int;
  domains : int;
  heap_factor : float;
  ok : bool;
      (** false: unsupported heap, setup or mid-run exhaustion, or
          integrity violations *)
  error : string option;
  requests : int;
  completed : int;
  rejected : int;  (** bounced off the admission bound *)
  dropped : int;  (** admitted, then lost to replica death *)
  wall_ns : float;  (** fleet wall: latest replica clock - fleet start *)
  latency : Repro_util.Histogram.t;  (** merged across replicas *)
  queueing : Repro_util.Histogram.t;
  diversions : int;
      (** requests the gc-aware penalty routed away from the replica
          plain least-outstanding would have picked (0 under other
          policies) *)
  verifier_checks : int;
  violations : int;
  per_replica : replica_stats list;  (** ascending replica index *)
}

(** Completed requests per second of fleet wall time (0 on failure). *)
val qps : result -> float

(** [run config] — the whole fleet simulation. Never raises for workload
    or collector reasons: an unsupported heap, a missing request model or
    an exhausted setup are reported through [ok]/[error]. *)
val run : config -> result
