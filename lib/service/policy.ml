type t = Round_robin | Least_outstanding | Gc_aware

let all =
  [ ("round-robin", Round_robin);
    ("least-outstanding", Least_outstanding);
    ("gc-aware", Gc_aware) ]

let to_string p = fst (List.find (fun (_, q) -> q = p) all)
let names = List.map fst all

let of_string name =
  match List.assoc_opt (String.lowercase_ascii name) all with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown policy %S%s; known: %s" name
         (Repro_util.Suggest.hint ~candidates:names name)
         (String.concat ", " names))

(* --- Front-end client policy: timeouts, retries, hedging --------------- *)

module Retry = struct
  type t = {
    timeout_ns : float option;
    max_attempts : int;
    backoff_ns : float;
    hedge_ns : float option;
  }

  let none =
    { timeout_ns = None; max_attempts = 1; backoff_ns = 0.0; hedge_ns = None }

  let keys = [ "timeout"; "max"; "backoff"; "hedge" ]

  let of_spec s =
    let ( let* ) = Result.bind in
    let* r =
      Spec.fold_items
        ~f:(fun r item ->
          match Spec.kv item with
          | Some ("timeout", v) ->
            let* d = Spec.duration ~what:"retry: timeout" v in
            if d <= 0.0 then Error "retry: timeout must be > 0"
            else Ok { r with timeout_ns = Some d }
          | Some ("max", v) ->
            let* n = Spec.int_in ~what:"retry: max" ~lo:1 ~hi:16 v in
            Ok { r with max_attempts = n }
          | Some ("backoff", v) ->
            let* d = Spec.duration ~what:"retry: backoff" v in
            Ok { r with backoff_ns = d }
          | Some ("hedge", v) ->
            let* d = Spec.duration ~what:"retry: hedge" v in
            if d <= 0.0 then Error "retry: hedge must be > 0"
            else Ok { r with hedge_ns = Some d }
          | Some (key, _) -> Spec.unknown_key ~what:"retry" ~known:keys key
          | None ->
            Error
              (Printf.sprintf
                 "retry: expected key:value (e.g. timeout:5ms), got %S%s" item
                 (Repro_util.Suggest.hint ~candidates:keys item)))
        none s
    in
    match r.timeout_ns with
    | None when r.max_attempts > 1 ->
      (* Retries without a deadline would resubmit forever-latent
         requests; insist the client bounds its patience. *)
      Error "retry: max > 1 needs a timeout (e.g. timeout:5ms,max:3)"
    | _ -> Ok r

  (* [backoff_ns * 2^(attempt-1)]: attempt 1 is the original dispatch. *)
  let delay t ~attempt =
    t.backoff_ns *. Float.of_int (1 lsl max 0 (min 16 (attempt - 1)))
end
