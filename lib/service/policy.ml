type t = Round_robin | Least_outstanding | Gc_aware

let all =
  [ ("round-robin", Round_robin);
    ("least-outstanding", Least_outstanding);
    ("gc-aware", Gc_aware) ]

let to_string p = fst (List.find (fun (_, q) -> q = p) all)
let names = List.map fst all

let of_string name =
  match List.assoc_opt (String.lowercase_ascii name) all with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown policy %S%s; known: %s" name
         (Repro_util.Suggest.hint ~candidates:names name)
         (String.concat ", " names))
