(* Shared parsing for the resilience CLI specs (--chaos, --slo, --retry,
   --autoscale). Every parser returns [result] so the binaries can die
   with one message, and unknown keys get Util.Suggest did-you-mean
   hints like every other name lookup in the CLIs. *)

let items s =
  List.filter (fun x -> x <> "")
    (List.map String.trim (String.split_on_char ',' (String.trim s)))

(* "key:value" on the first colon; [None] when there is no colon. *)
let kv item =
  match String.index_opt item ':' with
  | None -> None
  | Some i ->
    Some
      ( String.lowercase_ascii (String.sub item 0 i),
        String.sub item (i + 1) (String.length item - i - 1) )

let unknown_key ~what ~known key =
  Error
    (Printf.sprintf "%s: unknown key %S%s; known: %s" what key
       (Repro_util.Suggest.hint ~candidates:known key)
       (String.concat ", " known))

(* A duration in simulated time: a float with an optional ns/us/ms/s
   suffix (default ns), e.g. "250us", "2ms", "1.5e6". *)
let duration ~what s =
  let s = String.trim s in
  let split suffix scale =
    let n = String.length s and m = String.length suffix in
    if n > m && String.sub s (n - m) m = suffix then
      Some (String.sub s 0 (n - m), scale)
    else None
  in
  let body, scale =
    (* "ns" before "s", "us"/"ms" before "s". *)
    match split "ns" 1.0 with
    | Some r -> r
    | None -> (
      match split "us" 1e3 with
      | Some r -> r
      | None -> (
        match split "ms" 1e6 with
        | Some r -> r
        | None -> (
          match split "s" 1e9 with Some r -> r | None -> (s, 1.0))))
  in
  match float_of_string_opt (String.trim body) with
  | Some v when v >= 0.0 -> Ok (v *. scale)
  | Some _ -> Error (Printf.sprintf "%s: duration %S must be >= 0" what s)
  | None ->
    Error
      (Printf.sprintf "%s: bad duration %S (expected e.g. 250us, 2ms, 1.5e6)"
         what s)

let float_in ~what ~lo ~hi s =
  match float_of_string_opt (String.trim s) with
  | Some v when v >= lo && v <= hi -> Ok v
  | Some v ->
    Error (Printf.sprintf "%s: %g is out of range; expected [%g, %g]" what v lo hi)
  | None -> Error (Printf.sprintf "%s: bad number %S" what s)

let float_min ~what ~lo s =
  match float_of_string_opt (String.trim s) with
  | Some v when v >= lo -> Ok v
  | Some v -> Error (Printf.sprintf "%s: %g is out of range; expected >= %g" what v lo)
  | None -> Error (Printf.sprintf "%s: bad number %S" what s)

let int_in ~what ~lo ~hi s =
  match int_of_string_opt (String.trim s) with
  | Some v when v >= lo && v <= hi -> Ok v
  | Some v ->
    Error (Printf.sprintf "%s: %d is out of range; expected [%d, %d]" what v lo hi)
  | None -> Error (Printf.sprintf "%s: bad integer %S" what s)

(* Fold [f] over items, short-circuiting on the first error. *)
let fold_items ~f init s =
  List.fold_left
    (fun acc item -> match acc with Error _ -> acc | Ok st -> f st item)
    (Ok init) (items s)
