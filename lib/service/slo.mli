(** SLO-burn monitoring, brown-out load shedding, and autoscaling.

    The objective is "P% of requests complete within B ns". A sliding
    window of the last W scheduling rounds yields the burn rate — the
    observed violation fraction over the allowed fraction [(100-P)/100];
    burn 1.0 spends the error budget exactly. Hysteresis around
    [burn_high]/[burn_low] drives brown-out admission (a fixed fraction
    of new arrivals is shed while burning), and the autoscaler trades
    replicas against the same signal. All transitions happen at
    scheduling barriers on the single-threaded front-end, so they are
    bit-identical across domain counts.

    Spec: [p99.9:2ms[,window:64][,burn-high:4][,burn-low:1][,shed:0.5]] *)

type spec = {
  percentile : float;
  budget_ns : float;
  window_rounds : int;
  burn_high : float;
  burn_low : float;
  shed_fraction : float;
}

(** Parse and range-check; requires one [pP:BUDGET] objective. Unknown
    keys carry did-you-mean hints. *)
val of_spec : string -> (spec, string) result

(** One timeline point, recorded at every scheduling barrier. *)
type sample = { time : float; burn : float; shedding : bool }

type t

val create : spec -> t

(** Does this end-to-end latency violate the objective? *)
val violates : t -> latency_ns:float -> bool

(** Feed one completed request into the current round. *)
val observe : t -> latency_ns:float -> unit

(** Close the round at a barrier: rotate the window, recompute burn, run
    the shed hysteresis, append to the timeline. *)
val tick : t -> now:float -> unit

val burn : t -> float

(** The fraction of new arrivals to shed right now: the spec's
    [shed_fraction] while browned out, else [0]. *)
val shedding : t -> float

val peak_burn : t -> float
val breach_rounds : t -> int
val shed_rounds : t -> int

(** Chronological. *)
val timeline : t -> sample list

module Autoscale : sig
  (** Spec: [max:8[,min:1][,up:4][,down:0.25][,patience:8][,cooldown:64]] *)
  type spec = {
    min_replicas : int;
    max_replicas : int;
    up_burn : float;
    down_burn : float;
    patience : int;
    cooldown : int;
  }

  val of_spec : string -> (spec, string) result

  type t

  val create : spec -> t

  (** One barrier decision from the frozen burn and active replica
      count. Actions are rate-limited by [cooldown]. *)
  val tick : t -> burn:float -> active:int -> [ `Hold | `Up | `Down ]
end
