(* Seeded chaos schedules for the fleet serving tier.

   A spec is a comma-separated list of service-fault events
   ([Repro_engine.Fault.service_class]) plus recovery settings:

     crash@0.30            kill a seeded-random replica at 30% of the run
     crash@0.30:r1         ... replica 1 specifically
     stall@0.45+0.10x4     4x slowdown for replica over [0.45, 0.55)
     heap-shrink@0.60x0.7  restart target into a 0.7x heap
     flash-crowd@0.50+0.15x3  arrival rate x3 over [0.50, 0.65)
     restart:2ms           relaunch delay after a death (default: fleet's)
     warmup:6              slow-start admission ramp, in rounds
     auto-restart:off      leave dead replicas down (default on)

   Times are fractions of the nominal arrival span (request count times
   the mean fleet gap), so a spec is scale-free across workloads and
   request counts. Scheduling is deterministic: unspecified replica
   targets are drawn from one PRNG seeded from the fleet seed at
   schedule-build time, and the fleet fires events only at scheduling
   barriers (checkpoint quantization), so a fixed (spec, seed) pair
   produces bit-identical fault timelines at every domain count. *)

module Fault = Repro_engine.Fault

type event_spec = {
  cls : Fault.service_class;
  at : float;  (* fraction of the nominal arrival span *)
  dur : float;  (* fraction; 0 for instantaneous classes *)
  factor : float;
  replica : int option;
}

type spec = {
  events : event_spec list;
  restart_delay_ns : float option;
  warmup_rounds : int option;
  auto_restart : bool;
}

let empty =
  { events = []; restart_delay_ns = None; warmup_rounds = None;
    auto_restart = true }

let setting_keys = [ "restart"; "warmup"; "auto-restart" ]
let known_items = Fault.service_class_names @ setting_keys

(* Per-class factor defaults and legal ranges. *)
let factor_default = function
  | Fault.Replica_crash -> 1.0
  | Fault.Replica_stall -> 4.0
  | Fault.Heap_shrink -> 0.7
  | Fault.Flash_crowd -> 3.0

let factor_check cls f =
  match cls with
  | Fault.Replica_crash ->
    Error "chaos: crash takes no xFACTOR"
  | Fault.Replica_stall when f >= 1.0 && f <= 1000.0 -> Ok f
  | Fault.Replica_stall -> Error "chaos: stall factor must be in [1, 1000]"
  | Fault.Heap_shrink when f >= 0.05 && f <= 1.0 -> Ok f
  | Fault.Heap_shrink -> Error "chaos: heap-shrink factor must be in [0.05, 1]"
  | Fault.Flash_crowd when f >= 1.0 && f <= 1000.0 -> Ok f
  | Fault.Flash_crowd -> Error "chaos: flash-crowd factor must be in [1, 1000]"

let dur_default = function
  | Fault.Replica_stall | Fault.Flash_crowd -> 0.1
  | Fault.Replica_crash | Fault.Heap_shrink -> 0.0

(* "CLS@AT[+DUR][xFACTOR][:rN]" — parse the tail right to left so the
   numeric fields can use scientific notation freely. *)
let parse_event cls_name tail =
  match Fault.service_class_of_string cls_name with
  | None ->
    Error
      (Printf.sprintf "chaos: unknown fault class %S%s; known: %s" cls_name
         (Repro_util.Suggest.hint ~candidates:known_items cls_name)
         (String.concat ", " Fault.service_class_names))
  | Some cls -> (
    let replica, tail =
      match String.index_opt tail ':' with
      | Some i
        when i + 1 < String.length tail && tail.[i + 1] = 'r' ->
        ( int_of_string_opt
            (String.sub tail (i + 2) (String.length tail - i - 2)),
          String.sub tail 0 i )
      | Some _ | None -> (None, tail)
    in
    let factor_s, tail =
      match String.rindex_opt tail 'x' with
      | Some i ->
        ( Some (String.sub tail (i + 1) (String.length tail - i - 1)),
          String.sub tail 0 i )
      | None -> (None, tail)
    in
    let dur_s, at_s =
      match String.index_opt tail '+' with
      | Some i ->
        ( Some (String.sub tail (i + 1) (String.length tail - i - 1)),
          String.sub tail 0 i )
      | None -> (None, tail)
    in
    let ( let* ) = Result.bind in
    let* at = Spec.float_in ~what:"chaos: @AT" ~lo:0.0 ~hi:1.0 at_s in
    let* dur =
      match dur_s with
      | None -> Ok (dur_default cls)
      | Some s -> Spec.float_in ~what:"chaos: +DUR" ~lo:0.0 ~hi:1.0 s
    in
    let* factor =
      match factor_s with
      | None -> Ok (factor_default cls)
      | Some s ->
        let* f = Spec.float_min ~what:"chaos: xFACTOR" ~lo:0.0 s in
        factor_check cls f
    in
    match replica with
    | Some i when i < 0 -> Error "chaos: replica target must be >= 0"
    | _ -> Ok { cls; at; dur; factor; replica })

let of_spec s =
  Spec.fold_items
    ~f:(fun acc item ->
      match String.index_opt item '@' with
      | Some i ->
        let cls_name = String.sub item 0 i in
        let tail = String.sub item (i + 1) (String.length item - i - 1) in
        Result.map
          (fun e -> { acc with events = acc.events @ [ e ] })
          (parse_event cls_name tail)
      | None -> (
        match Spec.kv item with
        | Some ("restart", v) ->
          Result.map
            (fun d -> { acc with restart_delay_ns = Some d })
            (Spec.duration ~what:"chaos: restart" v)
        | Some ("warmup", v) ->
          Result.map
            (fun n -> { acc with warmup_rounds = Some n })
            (Spec.int_in ~what:"chaos: warmup" ~lo:0 ~hi:10_000 v)
        | Some ("auto-restart", v) -> (
          match String.lowercase_ascii v with
          | "on" | "true" -> Ok { acc with auto_restart = true }
          | "off" | "false" -> Ok { acc with auto_restart = false }
          | _ -> Error "chaos: auto-restart expects on or off")
        | Some (key, _) -> Spec.unknown_key ~what:"chaos" ~known:known_items key
        | None ->
          Error
            (Printf.sprintf
               "chaos: expected CLASS@AT[+DUR][xFACTOR][:rN] or key:value, got %S%s"
               item
               (Repro_util.Suggest.hint ~candidates:known_items item))))
    empty s

(* --- Scheduling ---------------------------------------------------------- *)

type firing = {
  f_cls : Fault.service_class;
  f_replica : int;  (* -1 for flash-crowd (arrival-process fault) *)
  f_start : float;  (* absolute fleet ns *)
  f_end : float;
  f_factor : float;
}

type t = { mutable pending : firing list }

let schedule spec ~seed ~replicas ~t0 ~span =
  let prng = Repro_util.Prng.create (seed lxor 0x63686173) in
  let firings =
    List.map
      (fun e ->
        (* One draw per event even when the target is explicit, so
           adding ":rN" to one event does not reshuffle the others. *)
        let drawn = Repro_util.Prng.int prng (max 1 replicas) in
        let f_replica =
          match (e.cls, e.replica) with
          | Fault.Flash_crowd, _ -> -1
          | _, Some i -> i mod max 1 replicas
          | _, None -> drawn
        in
        { f_cls = e.cls;
          f_replica;
          f_start = t0 +. (e.at *. span);
          f_end = t0 +. ((e.at +. e.dur) *. span);
          f_factor = e.factor })
      spec.events
  in
  let firings =
    (* Stable sort keeps the spec order for simultaneous events. *)
    List.stable_sort (fun a b -> Float.compare a.f_start b.f_start) firings
  in
  { pending = firings }

let due t ~until =
  let fired, rest = List.partition (fun f -> f.f_start < until) t.pending in
  t.pending <- rest;
  fired

let flash_windows t =
  List.filter_map
    (fun f ->
      if f.f_cls = Fault.Flash_crowd then Some (f.f_start, f.f_end, f.f_factor)
      else None)
    t.pending

let describe_firing f =
  if f.f_replica < 0 then
    Printf.sprintf "%s x%g over [%.3f, %.3f] sim-ms"
      (Fault.service_class_name f.f_cls)
      f.f_factor (f.f_start /. 1e6) (f.f_end /. 1e6)
  else
    Printf.sprintf "%s replica %d at %.3f sim-ms"
      (Fault.service_class_name f.f_cls)
      f.f_replica (f.f_start /. 1e6)
