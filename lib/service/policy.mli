(** Load-balancing policies for the fleet serving tier.

    The front-end picks a replica for every arriving request using only
    state it legitimately has at the last scheduling checkpoint: each
    replica's virtual clock, how many requests it was handed since the
    checkpoint, and the {!Repro_engine.Api.gc_signal} snapshot. *)

type t =
  | Round_robin  (** blind rotation, the fleet baseline *)
  | Least_outstanding
      (** earliest estimated completion: replica clock at the last
          checkpoint plus nominal service time per request already
          handed to it this round *)
  | Gc_aware
      (** {!Least_outstanding}, plus a penalty for replicas whose GC is
          active: ones inside a concurrent cycle (they serve slower and
          pause next) and ones whose last stop-the-world pause is recent
          (degradation clusters). The paper's Table 1 tails are per-heap
          pauses surfacing as request latency — this is the routing
          policy that hides them behind the fleet. *)

(** Every policy with its canonical name, in comparison order. *)
val all : (string * t) list

(** Canonical names: ["round-robin"], ["least-outstanding"],
    ["gc-aware"]. *)
val to_string : t -> string

val names : string list

(** [of_string name] resolves case-insensitively; unknown names carry a
    {!Repro_util.Suggest} did-you-mean hint, matching collector and
    benchmark lookups. *)
val of_string : string -> (t, string) result

(** Front-end client policy: request deadlines, bounded
    retry-with-backoff, and hedged requests. Orthogonal to the balancing
    policy {!t} — every balancer can run with or without it.

    Spec: [timeout:5ms[,max:3][,backoff:500us][,hedge:2ms]] *)
module Retry : sig
  type t = {
    timeout_ns : float option;
        (** client deadline from the original arrival; completions past
            it count as timed out, and a request still queued past it is
            failed rather than retried again *)
    max_attempts : int;  (** total dispatches, including the first *)
    backoff_ns : float;  (** base of the exponential backoff *)
    hedge_ns : float option;
        (** dispatch a second copy to the next-best replica whenever the
            chosen replica's estimated queueing delay exceeds this; the
            first completion wins *)
  }

  (** No deadline, one attempt, no hedging — the pre-resilience fleet. *)
  val none : t

  (** Parse and range-check; [max > 1] requires a timeout. Unknown keys
      carry did-you-mean hints. *)
  val of_spec : string -> (t, string) result

  (** [delay t ~attempt] — exponential backoff before re-dispatching
      attempt [attempt+1] ([backoff_ns * 2^(attempt-1)]). *)
  val delay : t -> attempt:int -> float
end
