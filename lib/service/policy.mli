(** Load-balancing policies for the fleet serving tier.

    The front-end picks a replica for every arriving request using only
    state it legitimately has at the last scheduling checkpoint: each
    replica's virtual clock, how many requests it was handed since the
    checkpoint, and the {!Repro_engine.Api.gc_signal} snapshot. *)

type t =
  | Round_robin  (** blind rotation, the fleet baseline *)
  | Least_outstanding
      (** earliest estimated completion: replica clock at the last
          checkpoint plus nominal service time per request already
          handed to it this round *)
  | Gc_aware
      (** {!Least_outstanding}, plus a penalty for replicas whose GC is
          active: ones inside a concurrent cycle (they serve slower and
          pause next) and ones whose last stop-the-world pause is recent
          (degradation clusters). The paper's Table 1 tails are per-heap
          pauses surfacing as request latency — this is the routing
          policy that hides them behind the fleet. *)

(** Every policy with its canonical name, in comparison order. *)
val all : (string * t) list

(** Canonical names: ["round-robin"], ["least-outstanding"],
    ["gc-aware"]. *)
val to_string : t -> string

val names : string list

(** [of_string name] resolves case-insensitively; unknown names carry a
    {!Repro_util.Suggest} did-you-mean hint, matching collector and
    benchmark lookups. *)
val of_string : string -> (t, string) result
