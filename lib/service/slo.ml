(* SLO-burn monitoring, brown-out load shedding, and autoscaling for the
   fleet front-end.

   The objective is the classic availability shape: "P% of requests
   complete within B ns". The monitor keeps a sliding window of the last
   W scheduling rounds; each round contributes (violations, total), and
   the burn rate is the window's observed violation fraction over the
   allowed fraction (1 - P/100). Burn 1.0 means the fleet is exactly
   spending its error budget; burn 10 means ten times too fast.

   All decisions happen at scheduling barriers on the single-threaded
   front-end, from checkpoint-frozen state only, so degradation and
   scaling actions are bit-identical across domain counts. *)

type spec = {
  percentile : float;  (* e.g. 99.9 *)
  budget_ns : float;
  window_rounds : int;
  burn_high : float;  (* enter brown-out at/above this burn *)
  burn_low : float;  (* leave brown-out at/below this burn *)
  shed_fraction : float;  (* arrivals shed while browned out *)
}

let default_spec =
  { percentile = 99.9;
    budget_ns = 0.0;  (* required in a spec *)
    window_rounds = 64;
    burn_high = 4.0;
    burn_low = 1.0;
    shed_fraction = 0.5 }

let suggest_keys = [ "p99.9"; "p99"; "window"; "burn-high"; "burn-low"; "shed" ]

let of_spec s =
  let ( let* ) = Result.bind in
  let* parsed =
    Spec.fold_items
      ~f:(fun (spec, seen_p) item ->
        match Spec.kv item with
        | Some (key, v)
          when String.length key > 1
               && key.[0] = 'p'
               && Option.is_some
                    (float_of_string_opt
                       (String.sub key 1 (String.length key - 1))) ->
          let p =
            Option.get
              (float_of_string_opt (String.sub key 1 (String.length key - 1)))
          in
          if seen_p then Error "slo: more than one percentile objective"
          else if p < 50.0 || p > 99.99 then
            Error
              (Printf.sprintf
                 "slo: percentile %g is out of range; expected [50, 99.99]" p)
          else
            let* b = Spec.duration ~what:"slo: budget" v in
            if b <= 0.0 then Error "slo: budget must be > 0"
            else Ok ({ spec with percentile = p; budget_ns = b }, true)
        | Some ("window", v) ->
          let* w = Spec.int_in ~what:"slo: window" ~lo:1 ~hi:100_000 v in
          Ok ({ spec with window_rounds = w }, seen_p)
        | Some ("burn-high", v) ->
          let* x = Spec.float_min ~what:"slo: burn-high" ~lo:0.0 v in
          Ok ({ spec with burn_high = x }, seen_p)
        | Some ("burn-low", v) ->
          let* x = Spec.float_min ~what:"slo: burn-low" ~lo:0.0 v in
          Ok ({ spec with burn_low = x }, seen_p)
        | Some ("shed", v) ->
          let* f = Spec.float_in ~what:"slo: shed" ~lo:0.0 ~hi:1.0 v in
          Ok ({ spec with shed_fraction = f }, seen_p)
        | Some (key, _) -> Spec.unknown_key ~what:"slo" ~known:suggest_keys key
        | None ->
          Error
            (Printf.sprintf
               "slo: expected key:value (e.g. p99.9:2ms), got %S%s" item
               (Repro_util.Suggest.hint ~candidates:suggest_keys item)))
      (default_spec, false) s
  in
  match parsed with
  | spec, true when spec.burn_low > spec.burn_high ->
    Error "slo: burn-low must be <= burn-high"
  | spec, true -> Ok spec
  | _, false -> Error "slo: needs a percentile objective (e.g. p99.9:2ms)"

(* --- The burn monitor ---------------------------------------------------- *)

type sample = { time : float; burn : float; shedding : bool }

type t = {
  spec : spec;
  ring_viol : int array;  (* per-round violations, ring over the window *)
  ring_total : int array;
  mutable cursor : int;
  mutable filled : int;
  mutable round_viol : int;
  mutable round_total : int;
  mutable win_viol : int;  (* running window sums *)
  mutable win_total : int;
  mutable shedding : bool;
  mutable shed_rounds : int;
  mutable burn : float;
  mutable peak_burn : float;
  mutable breach_rounds : int;  (* rounds with burn > 1 *)
  mutable timeline : sample list;  (* newest first *)
}

let create spec =
  { spec;
    ring_viol = Array.make spec.window_rounds 0;
    ring_total = Array.make spec.window_rounds 0;
    cursor = 0;
    filled = 0;
    round_viol = 0;
    round_total = 0;
    win_viol = 0;
    win_total = 0;
    shedding = false;
    shed_rounds = 0;
    burn = 0.0;
    peak_burn = 0.0;
    breach_rounds = 0;
    timeline = [] }

let violates t ~latency_ns = latency_ns > t.spec.budget_ns

let observe t ~latency_ns =
  t.round_total <- t.round_total + 1;
  if violates t ~latency_ns then t.round_viol <- t.round_viol + 1

(* Close the round at a barrier: rotate the ring, recompute burn, run
   the shed hysteresis, and append to the timeline. *)
let tick t ~now =
  let w = t.spec.window_rounds in
  t.win_viol <- t.win_viol - t.ring_viol.(t.cursor) + t.round_viol;
  t.win_total <- t.win_total - t.ring_total.(t.cursor) + t.round_total;
  t.ring_viol.(t.cursor) <- t.round_viol;
  t.ring_total.(t.cursor) <- t.round_total;
  t.cursor <- (t.cursor + 1) mod w;
  t.filled <- min w (t.filled + 1);
  t.round_viol <- 0;
  t.round_total <- 0;
  let allowed = (100.0 -. t.spec.percentile) /. 100.0 in
  t.burn <-
    (if t.win_total = 0 then 0.0
     else
       Float.of_int t.win_viol
       /. Float.of_int t.win_total
       /. Float.max 1e-9 allowed);
  if t.burn > t.peak_burn then t.peak_burn <- t.burn;
  if t.burn > 1.0 then t.breach_rounds <- t.breach_rounds + 1;
  (if t.shedding then begin
     if t.burn <= t.spec.burn_low then t.shedding <- false
   end
   else if t.burn >= t.spec.burn_high then t.shedding <- true);
  if t.shedding then t.shed_rounds <- t.shed_rounds + 1;
  t.timeline <- { time = now; burn = t.burn; shedding = t.shedding } :: t.timeline

let burn t = t.burn
let shedding t = if t.shedding then t.spec.shed_fraction else 0.0
let peak_burn t = t.peak_burn
let breach_rounds t = t.breach_rounds
let shed_rounds t = t.shed_rounds
let timeline t = List.rev t.timeline

(* --- Autoscaler ----------------------------------------------------------- *)

module Autoscale = struct
  type spec = {
    min_replicas : int;
    max_replicas : int;
    up_burn : float;  (* scale up when burn >= this for [patience] ticks *)
    down_burn : float;  (* scale down when burn <= this for [patience] *)
    patience : int;
    cooldown : int;  (* rounds to hold after any action *)
  }

  let keys = [ "min"; "max"; "up"; "down"; "patience"; "cooldown" ]

  let of_spec s =
    let ( let* ) = Result.bind in
    let* parsed =
      Spec.fold_items
        ~f:(fun (spec, seen_max) item ->
          match Spec.kv item with
          | Some ("min", v) ->
            let* n = Spec.int_in ~what:"autoscale: min" ~lo:1 ~hi:1024 v in
            Ok ({ spec with min_replicas = n }, seen_max)
          | Some ("max", v) ->
            let* n = Spec.int_in ~what:"autoscale: max" ~lo:1 ~hi:1024 v in
            Ok ({ spec with max_replicas = n }, true)
          | Some ("up", v) ->
            let* x = Spec.float_min ~what:"autoscale: up" ~lo:0.0 v in
            Ok ({ spec with up_burn = x }, seen_max)
          | Some ("down", v) ->
            let* x = Spec.float_min ~what:"autoscale: down" ~lo:0.0 v in
            Ok ({ spec with down_burn = x }, seen_max)
          | Some ("patience", v) ->
            let* n = Spec.int_in ~what:"autoscale: patience" ~lo:1 ~hi:100_000 v in
            Ok ({ spec with patience = n }, seen_max)
          | Some ("cooldown", v) ->
            let* n = Spec.int_in ~what:"autoscale: cooldown" ~lo:0 ~hi:100_000 v in
            Ok ({ spec with cooldown = n }, seen_max)
          | Some (key, _) -> Spec.unknown_key ~what:"autoscale" ~known:keys key
          | None ->
            Error
              (Printf.sprintf
                 "autoscale: expected key:value (e.g. max:8), got %S%s" item
                 (Repro_util.Suggest.hint ~candidates:keys item)))
        ( { min_replicas = 1; max_replicas = 0; up_burn = 4.0; down_burn = 0.25;
            patience = 8; cooldown = 64 },
          false )
        s
    in
    match parsed with
    | _, false -> Error "autoscale: needs max:N"
    | spec, true when spec.min_replicas > spec.max_replicas ->
      Error "autoscale: min must be <= max"
    | spec, true when spec.down_burn > spec.up_burn ->
      Error "autoscale: down must be <= up"
    | spec, true -> Ok spec

  type t = {
    spec : spec;
    mutable up_streak : int;
    mutable down_streak : int;
    mutable hold : int;  (* cooldown rounds remaining *)
  }

  let create spec = { spec; up_streak = 0; down_streak = 0; hold = 0 }

  let tick t ~burn ~active =
    if burn >= t.spec.up_burn then begin
      t.up_streak <- t.up_streak + 1;
      t.down_streak <- 0
    end
    else if burn <= t.spec.down_burn then begin
      t.down_streak <- t.down_streak + 1;
      t.up_streak <- 0
    end
    else begin
      t.up_streak <- 0;
      t.down_streak <- 0
    end;
    if t.hold > 0 then begin
      t.hold <- t.hold - 1;
      `Hold
    end
    else if t.up_streak >= t.spec.patience && active < t.spec.max_replicas
    then begin
      t.up_streak <- 0;
      t.hold <- t.spec.cooldown;
      `Up
    end
    else if t.down_streak >= t.spec.patience && active > t.spec.min_replicas
    then begin
      t.down_streak <- 0;
      t.hold <- t.spec.cooldown;
      `Down
    end
    else `Hold
end
