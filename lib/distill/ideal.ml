(* The idealised free-reclamation baseline collector.

   Reclamation is semantically a precise mark-sweep(-compact): garbage
   is reclaimed exactly and allocation succeeds for as long as the live
   set fits the heap. But every collector action costs zero virtual
   time: no pauses are recorded, no GC CPU is charged, there are no
   barriers, and the mutator never stalls (collections triggered from
   the allocation slow path are free). What remains on the clock is the
   cost any memory manager would pay — the mutator's own work plus the
   allocator fast/slow paths — which is exactly the baseline the
   distilled-cost methodology (Cai et al.) subtracts from a real
   collector's run. A simulator can construct this baseline exactly;
   real hardware can only bound it.

   Deliberately serial and unmetered: it never touches Trace_cost with
   intent to charge, never calls Sim.pause, and stays off the work-packet
   pool (host time here is not measured by anything). *)

open Repro_heap
open Repro_engine

let null = Obj_model.null

type t = {
  sim : Sim.t;
  heap : Heap.t;
  roots : int array;
  gc_alloc : Bump_allocator.t;
  mutable collections : int;
  mutable freed_bytes : int;
  mutable in_collection : bool;
}

(* Serial BFS mark from the roots. No cost accounting. *)
let mark t =
  let marks = t.heap.Heap.marks in
  let gray = Queue.create () in
  let seed id =
    if id <> null && not (Mark_bitset.marked marks id) then begin
      Mark_bitset.mark marks id;
      Queue.add id gray
    end
  in
  Array.iter seed t.roots;
  while not (Queue.is_empty gray) do
    let id = Queue.take gray in
    match Obj_model.Registry.find t.heap.Heap.registry id with
    | None -> ()
    | Some obj ->
      Obj_model.iter_fields
        (fun r ->
          if r <> null && not (Mark_bitset.marked marks r) then begin
            Mark_bitset.mark marks r;
            Queue.add r gray
          end)
        obj
  done

(* Serial sweep: free every unmarked registered object, then re-derive
   block states from the final RC metadata (same classification as
   Stw_common.sweep_unmarked, minus the packets and the cost charges). *)
let sweep t =
  let heap = t.heap in
  let registry = heap.Heap.registry in
  let dead = ref [] in
  for s = Obj_model.Registry.slot_count registry - 1 downto 0 do
    match Obj_model.Registry.handle_at registry s with
    | Some obj when not (Mark_bitset.marked heap.Heap.marks obj.Obj_model.id) ->
      dead := obj.Obj_model.id :: !dead
    | Some _ | None -> ()
  done;
  List.iter
    (fun id ->
      match Obj_model.Registry.find registry id with
      | Some obj ->
        t.freed_bytes <- t.freed_bytes + obj.Obj_model.size;
        Heap.free_object heap obj
      | None -> ())
    !dead;
  let cfg = heap.Heap.cfg in
  for b = 0 to Heap_config.blocks cfg - 1 do
    match Blocks.state heap.Heap.blocks b with
    | Blocks.In_use | Blocks.Recyclable | Blocks.Owned ->
      Blocks.compact heap.Heap.blocks b ~live:(fun id ->
          Obj_model.Registry.mem registry id);
      Blocks.set_young heap.Heap.blocks b false;
      Blocks.set_state heap.Heap.blocks b
        (if Rc_table.block_is_free heap.Heap.rc cfg b then Blocks.Free
         else if Rc_table.free_lines_in_block heap.Heap.rc cfg b > 0 then
           Blocks.Recyclable
         else Blocks.In_use)
    | Blocks.Free | Blocks.Los_backing -> ()
  done;
  Heap.rebuild_free_lists heap

let collect ?(emergency = false) t =
  if not t.in_collection then begin
    t.in_collection <- true;
    t.collections <- t.collections + 1;
    Heap.retire_all_allocators t.heap;
    if emergency then Heap.release_reserve t.heap;
    mark t;
    Bump_allocator.retire_all t.gc_alloc;
    sweep t;
    if emergency then begin
      (* Free defragmentation: the compaction engine meters its copies
         into a scratch Trace_cost that is simply dropped. *)
      let tc = Trace_cost.create () in
      ignore
        (Compaction.compact t.heap tc ~cost:(Sim.cost t.sim) ~threads:1
           ~gc_alloc:t.gc_alloc)
    end;
    Mark_bitset.clear t.heap.Heap.marks;
    Heap.clear_touched t.heap;
    Heap.ensure_reserve t.heap;
    t.in_collection <- false
  end

let factory : Collector.factory =
 fun sim heap ~roots ->
  let t =
    { sim; heap; roots;
      gc_alloc = Heap.make_allocator heap;
      collections = 0;
      freed_bytes = 0;
      in_collection = false }
  in
  Heap.ensure_reserve heap;
  { Collector.name = "Ideal";
    (* Pin the header RC like every tracing collector, so the integrity
       verifier's pinned-discipline checks hold on ideal heaps too. *)
    on_alloc = (fun obj -> Heap.pin heap obj);
    on_write = (fun _ _ _ -> ());
    write_extra_ns = 0.0;
    read_extra_ns = 0.0;
    (* No trigger-driven collections: reclamation is free, so it runs
       only on demand from the allocation slow path. *)
    poll = (fun () -> ());
    collect_for_alloc =
      (fun pressure ->
        match pressure with
        | Collector.Young | Collector.Full -> collect t
        | Collector.Emergency -> collect ~emergency:true t);
    conc_active = (fun () -> 0);
    conc_run = (fun ~budget_ns:_ -> 0.0);
    conc_backlog = (fun () -> 0);
    on_finish = (fun () -> ());
    stats =
      (fun () ->
        [ ("collections", Float.of_int t.collections);
          ("freed_bytes", Float.of_int t.freed_bytes) ]);
    introspect = Collector.no_introspection }
