(** The idealised free-reclamation baseline collector ("ideal").

    Semantically a precise mark-sweep(-compact) — garbage is reclaimed
    exactly, so allocation succeeds for as long as the live set fits —
    but at zero virtual cost: no pauses, no GC CPU, no barriers, no
    allocation stalls. A run under it prices only the work any memory
    manager would do (mutator compute plus the allocator fast/slow
    paths), which is the baseline the distilled-cost methodology
    subtracts from a real collector's run ({!Distill}).

    Registered in the collector registry as ["ideal"], but excluded from
    differ lockstep: it is a methodological baseline, not a collector
    under test — a lockstep lane with free reclamation and an uncosted
    block supply reports differences of the methodology, not bugs. *)

val factory : Repro_engine.Collector.factory
