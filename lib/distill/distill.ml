type run = {
  collector : string;
  wall_ns : float;
  mutator_cpu_ns : float;
  gc_cpu_ns : float;
  stw_wall_ns : float;
  stw_cpu_ns : float;
  alloc_stall_ns : float;
  barrier_cpu_ns : float;
  pause_count : int;
}

type t = {
  real : run;
  ideal : run;
  distilled_wall_ns : float;
  distilled_cpu_ns : float;
  distilled_stall_ns : float;
  barrier_ns : float;
  stw_wall_ns : float;
  stw_cpu_ns : float;
  concurrent_cpu_ns : float;
}

let total_cpu r = r.mutator_cpu_ns +. r.gc_cpu_ns

let make ~real ~ideal =
  { real;
    ideal;
    distilled_wall_ns = real.wall_ns -. ideal.wall_ns;
    distilled_cpu_ns = total_cpu real -. total_cpu ideal;
    distilled_stall_ns = real.alloc_stall_ns -. ideal.alloc_stall_ns;
    barrier_ns = real.barrier_cpu_ns -. ideal.barrier_cpu_ns;
    stw_wall_ns = real.stw_wall_ns;
    stw_cpu_ns = real.stw_cpu_ns;
    concurrent_cpu_ns =
      (real.gc_cpu_ns -. real.stw_cpu_ns)
      -. (ideal.gc_cpu_ns -. ideal.stw_cpu_ns) }

let wall_overhead_pct t =
  if t.ideal.wall_ns > 0.0 then 100.0 *. t.distilled_wall_ns /. t.ideal.wall_ns
  else 0.0

let cpu_overhead_pct t =
  let base = total_cpu t.ideal in
  if base > 0.0 then 100.0 *. t.distilled_cpu_ns /. base else 0.0
