(** Distilled-cost accounting (Cai et al., "Distilling the Real Cost of
    Production Garbage Collectors").

    A collector's naive overhead conflates its own work with costs any
    memory manager would pay (allocation machinery, cache traffic of the
    mutator itself). The distilled cost subtracts an idealised
    free-reclamation baseline — the same mutator run under {!Ideal} —
    from the real run, leaving only collector-attributable time: STW
    pauses, concurrent GC CPU, barrier cycles, allocation stalls and
    CPU-stealing/interference slowdowns. The paper can only bound the
    baseline on real hardware; the simulator constructs it exactly, so
    the distilled cost here is exact, not a lower bound. *)

(** The per-run accounting inputs, extracted from one simulation run
    (see [Runner.result] in the harness for the usual source). *)
type run = {
  collector : string;
  wall_ns : float;  (** virtual wall-clock time of the measured phase *)
  mutator_cpu_ns : float;  (** mutator CPU, including barrier cycles *)
  gc_cpu_ns : float;  (** all GC CPU: pauses + concurrent work *)
  stw_wall_ns : float;  (** wall time inside stop-the-world pauses *)
  stw_cpu_ns : float;  (** GC CPU spent inside pauses *)
  alloc_stall_ns : float;
      (** wall time the mutator stalled in the allocation slow path *)
  barrier_cpu_ns : float;
      (** mutator CPU attributed to read/write barriers *)
  pause_count : int;
}

(** A distilled comparison of one real run against its ideal baseline.
    All [distilled_*] components are raw differences (real − ideal);
    with the exact simulator baseline they are non-negative whenever the
    two runs executed the same mutator work (the qcheck property in
    [test_harness] checks exactly this on the trace corpus). *)
type t = {
  real : run;
  ideal : run;
  distilled_wall_ns : float;  (** wall-clock cost of choosing this collector *)
  distilled_cpu_ns : float;  (** total-CPU cost (mutator + GC, both runs) *)
  distilled_stall_ns : float;  (** allocation-stall component *)
  barrier_ns : float;  (** barrier component (ideal has no barriers) *)
  stw_wall_ns : float;  (** real run's STW wall time *)
  stw_cpu_ns : float;  (** real run's STW CPU *)
  concurrent_cpu_ns : float;  (** concurrent (non-pause) GC CPU component *)
}

val total_cpu : run -> float

val make : real:run -> ideal:run -> t

(** Distilled wall overhead as a percentage of the ideal baseline's wall
    time ([0.] when the baseline is empty). *)
val wall_overhead_pct : t -> float

val cpu_overhead_pct : t -> float
