(* Work-packet scheduler with deterministic ordered reduction.

   Parallelism lives entirely between [f] calls on distinct packet
   indices; every effect on collector state happens in [merge], applied
   serially in ascending packet order on the submitting domain. The
   packet partition is a pure function of the phase's input size, so
   the observable result of a phase is independent of how many workers
   happened to execute it — including zero (inline). *)

module Vec = Repro_util.Vec

type job = {
  body : int -> unit;  (* run one packet; must trap its own exceptions *)
  packets : int;
  next : int Atomic.t;  (* next unclaimed packet index *)
  unfinished : int Atomic.t;  (* packets not yet completed *)
}

module Pool = struct
  type t = {
    threads : int;
    mutable domains : unit Domain.t array;
    mutex : Mutex.t;
    work : Condition.t;  (* workers wait for a new job generation *)
    idle : Condition.t;  (* submitter waits for unfinished = 0 *)
    mutable job : job option;
    mutable generation : int;
    mutable stop : bool;
    busy : bool Atomic.t;  (* a run is in flight: nested runs go inline *)
  }

  let threads t = t.threads
  let workers t = Array.length t.domains

  let drain (j : job) =
    let rec loop () =
      let i = Atomic.fetch_and_add j.next 1 in
      if i < j.packets then begin
        j.body i;
        Atomic.decr j.unfinished;
        loop ()
      end
    in
    loop ()

  let worker t =
    let seen = ref 0 in
    let rec loop () =
      Mutex.lock t.mutex;
      while (not t.stop) && t.generation = !seen do
        Condition.wait t.work t.mutex
      done;
      if t.stop then Mutex.unlock t.mutex
      else begin
        seen := t.generation;
        let j = t.job in
        Mutex.unlock t.mutex;
        (match j with
        | Some j ->
          drain j;
          (* The submitter participates too and may be the one to finish
             the last packet; it re-checks [unfinished] under the mutex,
             so a signal is only needed when we completed work. *)
          Mutex.lock t.mutex;
          if Atomic.get j.unfinished = 0 then Condition.signal t.idle;
          Mutex.unlock t.mutex
        | None -> ());
        loop ()
      end
    in
    loop ()

  let create ?(force_spawn = false) ~threads () =
    if threads < 1 || threads > 64 then invalid_arg "Par.Pool.create: threads";
    let t =
      { threads;
        domains = [||];
        mutex = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        job = None;
        generation = 0;
        stop = false;
        busy = Atomic.make false }
    in
    let avail = Domain.recommended_domain_count () - 1 in
    let spawn = if force_spawn then threads - 1 else min (threads - 1) (max 0 avail) in
    t.domains <- Array.init spawn (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let shutdown t =
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||]

  let serial = create ~threads:1 ()

  (* Process-wide pool cache: replays and differ lanes reuse domains. *)
  let cache : (int, t) Hashtbl.t = Hashtbl.create 4
  let cache_mutex = Mutex.create ()
  let exit_hooked = ref false

  let get ~threads =
    if threads = 1 then serial
    else begin
      Mutex.lock cache_mutex;
      let t =
        match Hashtbl.find_opt cache threads with
        | Some t -> t
        | None ->
          let t = create ~threads () in
          Hashtbl.add cache threads t;
          if (not !exit_hooked) && workers t > 0 then begin
            exit_hooked := true;
            at_exit (fun () ->
                Mutex.lock cache_mutex;
                let pools = Hashtbl.fold (fun _ p acc -> p :: acc) cache [] in
                Hashtbl.reset cache;
                Mutex.unlock cache_mutex;
                List.iter shutdown pools)
          end;
          t
      in
      Mutex.unlock cache_mutex;
      t
    end

  let run_inline ~packets body =
    for i = 0 to packets - 1 do
      body i
    done

  (* Execute [body 0 .. body (packets-1)] using the pool's workers, the
     submitter included. Completion order is arbitrary; determinism is
     the caller's ordered merge. *)
  let run t ~packets body =
    if packets > 0 then
      if
        Array.length t.domains = 0
        || packets = 1
        || not (Atomic.compare_and_set t.busy false true)
      then run_inline ~packets body
      else begin
        let j =
          { body; packets; next = Atomic.make 0; unfinished = Atomic.make packets }
        in
        Mutex.lock t.mutex;
        t.job <- Some j;
        t.generation <- t.generation + 1;
        Condition.broadcast t.work;
        Mutex.unlock t.mutex;
        drain j;
        Mutex.lock t.mutex;
        while Atomic.get j.unfinished > 0 do
          Condition.wait t.idle t.mutex
        done;
        t.job <- None;
        Mutex.unlock t.mutex;
        Atomic.set t.busy false
      end
end

(* Recycled packet buffers. Packet bodies fill a scratch [Vec] and the
   ordered merge consumes it; once merged, the buffer is dead and can be
   reused by the next packet — in the inline path that means one buffer
   services an entire phase, and across phases the pool keeps collectors'
   steady-state packet allocation at zero. Contents are always fully
   rewritten ([take] clears), so recycling cannot affect results. The
   free list is shared across worker domains; the lock is per
   take/recycle, far off the per-element path. *)
let scratch_lock = Mutex.create ()
let scratch_free : Vec.t list ref = ref []

let take_scratch () =
  Mutex.lock scratch_lock;
  let v =
    match !scratch_free with
    | v :: rest ->
      scratch_free := rest;
      Vec.clear v;
      v
    | [] -> Vec.create ~capacity:256 ()
  in
  Mutex.unlock scratch_lock;
  v

let recycle_scratch v =
  Mutex.lock scratch_lock;
  scratch_free := v :: !scratch_free;
  Mutex.unlock scratch_lock

let packet_count ~total ~packet =
  if packet < 1 then invalid_arg "Par.packet_count: packet";
  if total < 0 then invalid_arg "Par.packet_count: total";
  (total + packet - 1) / packet

let span ~total ~packet i =
  let lo = i * packet in
  if lo < 0 || lo >= total then invalid_arg "Par.span: index";
  (lo, min packet (total - lo))

let map_merge pool ~packets ~f ~merge =
  if packets < 0 then invalid_arg "Par.map_merge: packets";
  if packets > 0 then begin
    if Pool.workers pool = 0 || packets = 1 then
      (* Inline fast path: no result buffering, same order. *)
      for i = 0 to packets - 1 do
        merge i (f i)
      done
    else begin
      let results = Array.make packets None in
      Pool.run pool ~packets (fun i ->
          results.(i) <-
            Some (match f i with v -> Ok v | exception e -> Error e));
      for i = 0 to packets - 1 do
        match results.(i) with
        | Some (Ok v) -> merge i v
        | Some (Error e) -> raise e
        | None -> assert false
      done
    end
  end

let map_spans pool ~total ~packet ~f ~merge =
  let packets = packet_count ~total ~packet in
  map_merge pool ~packets
    ~f:(fun i ->
      let lo, len = span ~total ~packet i in
      f i ~lo ~len)
    ~merge

let drain_rounds ?(on_round = ignore) pool ~packet ~frontier ~scan ~merge =
  let next = take_scratch () in
  while Vec.length frontier > 0 do
    let total = Vec.length frontier in
    on_round total;
    map_spans pool ~total ~packet
      ~f:(fun _ ~lo ~len ->
        let out = take_scratch () in
        for k = lo to lo + len - 1 do
          scan (Vec.get frontier k) out
        done;
        out)
      ~merge:(fun _ out ->
        merge out next;
        recycle_scratch out);
    Vec.clear frontier;
    Vec.append frontier next;
    Vec.clear next
  done;
  recycle_scratch next

let blocks_per_packet = 8
let slots_per_packet = 512
let queue_per_packet = 256
