(** Deterministic work-packet scheduler for collector phases.

    Collector phases are partitioned into fixed-size packets (block
    ranges for mark/sweep, chunks of the decrement/modbuf queues for
    RC, slot ranges for registry sweeps). Workers drain a shared packet
    queue; per-packet results are merged strictly in packet-index order
    on the submitting domain. Because packet boundaries are fixed by the
    phase (never by the worker count), packet bodies are read-only with
    respect to shared collector state, and the merge applies mutations
    serially in index order, a phase produces bit-identical results for
    [--gc-threads=1] and [--gc-threads=N] — the same
    determinism-by-construction precedent as the fleet tier's replica
    rounds.

    On hosts without spare cores ([Domain.recommended_domain_count]),
    the pool spawns no workers and packets run inline on the submitter,
    still through the identical partition/merge order. *)

module Pool : sig
  type t

  (** [create ~threads ()] is a pool with [threads] logical lanes.
      [threads - 1] worker domains are spawned, capped at
      [Domain.recommended_domain_count () - 1] so GC helpers never
      oversubscribe the host; [force_spawn] lifts the cap (used by the
      scheduler's own tests to exercise real cross-domain execution on
      single-core CI hosts). Lane count must be in [1, 64]. *)
  val create : ?force_spawn:bool -> threads:int -> unit -> t

  (** Process-wide cached pool per lane count: repeated replays (bench
      reps, differ lanes) share domains instead of respawning them.
      Workers are joined at process exit. *)
  val get : threads:int -> t

  (** The shared single-lane pool: every packet runs inline. *)
  val serial : t

  (** Requested lane count (the [--gc-threads] value). *)
  val threads : t -> int

  (** Worker domains actually spawned (0 on saturated hosts). *)
  val workers : t -> int

  (** Join the pool's worker domains. The pool runs inline afterwards. *)
  val shutdown : t -> unit
end

(** Recycled packet buffers: [take_scratch ()] returns a cleared [Vec]
    from a process-wide free list (or a fresh one), [recycle_scratch]
    returns it once its consumer — normally the ordered merge — is done
    with it. Packet bodies that fill-and-merge through these allocate
    nothing in steady state. Contents are always rewritten from empty,
    so recycling is invisible to results; the caller must not retain a
    reference after recycling. Safe from worker domains. *)
val take_scratch : unit -> Repro_util.Vec.t

val recycle_scratch : Repro_util.Vec.t -> unit

(** [packet_count ~total ~packet] is the number of packets needed to
    cover [total] items at [packet] items each; [0] when [total = 0]. *)
val packet_count : total:int -> packet:int -> int

(** [span ~total ~packet i] is the [(lo, len)] item range of packet [i];
    the last packet is ragged. Packet boundaries depend only on [total]
    and [packet] — never on the pool — which is what makes the ordered
    merge deterministic across lane counts. *)
val span : total:int -> packet:int -> int -> int * int

(** [map_merge pool ~packets ~f ~merge] runs [f i] for every packet
    index (in parallel, in any order), then applies [merge i (f i)]
    strictly in ascending packet-index order on the calling domain.
    [f] must not mutate state shared between packets; all mutation
    belongs in [merge]. An exception in [f] is re-raised at merge time,
    lowest packet index first. Re-entrant calls (a packet body, or a
    second domain while a run is in flight) execute inline — nesting
    never oversubscribes. *)
val map_merge :
  Pool.t -> packets:int -> f:(int -> 'a) -> merge:(int -> 'a -> unit) -> unit

(** [map_spans pool ~total ~packet ~f ~merge] is [map_merge] over the
    fixed-size partition of [0, total): [f] receives each packet's
    [(index, lo, len)] and [merge] its result, in index order. *)
val map_spans :
  Pool.t ->
  total:int ->
  packet:int ->
  f:(int -> lo:int -> len:int -> 'a) ->
  merge:(int -> 'a -> unit) ->
  unit

(** [drain_rounds pool ~packet ~frontier ~scan ~merge] runs a breadth-
    first transitive closure in deterministic rounds: the frontier is
    partitioned into packets; [scan id out] (read-only) appends an
    encoded result for one frontier entry to its packet's [out] buffer;
    [merge out next] is applied per packet in index order and pushes
    newly discovered ids onto [next], which becomes the next round's
    frontier. Returns when a round discovers nothing. [frontier] is
    consumed (empty on return). [on_round] fires before each round with
    the round's frontier size — phases use it to seed deterministic
    per-entry cost accounting. *)
val drain_rounds :
  ?on_round:(int -> unit) ->
  Pool.t ->
  packet:int ->
  frontier:Repro_util.Vec.t ->
  scan:(int -> Repro_util.Vec.t -> unit) ->
  merge:(Repro_util.Vec.t -> Repro_util.Vec.t -> unit) ->
  unit

(** Default packet sizes (items per packet) used by the ported phases.
    Fixed constants: changing them changes phase traversal order, which
    is observable in trace-cost accounting — bump only deliberately. *)

val blocks_per_packet : int (* sweep / cset scan phases *)
val slots_per_packet : int (* registry (LOS + SATB reclaim) sweeps *)
val queue_per_packet : int (* dec/modbuf queue chunks, gray frontiers *)
