type t = {
  survival_threshold_bytes : int;
  increment_threshold : int option;
  epoch_alloc_cap_bytes : int;
  free_low_watermark_blocks : int;
  clean_blocks_trigger : int;
  wastage_threshold : float;
  satb_backstop_pauses : int;
  evacuate_young : bool;
  max_evac_targets : int;
  evac_occupancy_max : float;
  evac_region_blocks : int;
  evac_regions_per_pause : int option;
  concurrent_satb : bool;
  lazy_decrements : bool;
  field_logging_barrier : bool;
}

let scaled_default ~heap_bytes ~block_bytes =
  let blocks = heap_bytes / block_bytes in
  { (* The paper's 128 MB threshold sits at ~1/16 of its typical 2 GB
       heap budgets; keep the same proportion. *)
    survival_threshold_bytes = max (2 * block_bytes) (heap_bytes / 16);
    increment_threshold = None;
    epoch_alloc_cap_bytes = max (4 * block_bytes) (heap_bytes / 4);
    free_low_watermark_blocks = max 2 (blocks / 24);
    clean_blocks_trigger = max 1 (blocks / 24);
    wastage_threshold = 0.05;
    satb_backstop_pauses = 12;
    evacuate_young = true;
    (* The default configuration uses a single whole-heap evacuation set
       (§4): every sufficiently fragmented block is a candidate. *)
    max_evac_targets = max 2 (blocks / 2);
    evac_occupancy_max = 0.5;
    evac_region_blocks = 16;
    evac_regions_per_pause = None;
    concurrent_satb = true;
    lazy_decrements = true;
    field_logging_barrier = true }

(* --- Knob descriptors ---------------------------------------------------
   One table drives both the CLI (`--lxr-knob=name=value`, with range
   validation and did-you-mean) and the online controllers (which move
   the tunable subset between epochs). Every field is viewed as a float:
   bools as 0/1, the [int option] triggers as 0 = disabled. Setters
   clamp into the knob's sanity range so a controller step can never
   push a configuration out of bounds. *)

type kind = Int | Float | Bool

type knob = {
  k_name : string;
  k_doc : string;
  k_kind : kind;
  k_lo : float;
  k_hi : float;
  k_tunable : bool;  (** controllers may move it between epochs *)
  k_get : t -> float;
  k_set : t -> float -> t;
}

let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v

let knob ?(tunable = false) ~kind ~lo ~hi name doc get set =
  { k_name = name;
    k_doc = doc;
    k_kind = kind;
    k_lo = lo;
    k_hi = hi;
    k_tunable = tunable;
    k_get = get;
    k_set = (fun t v -> set t (clamp ~lo ~hi v)) }

let b v = v >= 0.5
let bf v = if v then 1.0 else 0.0
let opt_of v = if v <= 0.0 then None else Some (int_of_float v)
let of_opt o = Float.of_int (Option.value o ~default:0)

let knobs =
  [ knob "survival_threshold_bytes"
      "RC pause when predicted young survival reaches this many bytes"
      ~kind:Int ~lo:4096.0 ~hi:1e12 ~tunable:true
      (fun t -> Float.of_int t.survival_threshold_bytes)
      (fun t v -> { t with survival_threshold_bytes = int_of_float v });
    knob "increment_threshold"
      "RC pause when the modified-field buffer reaches this size (0 = off)"
      ~kind:Int ~lo:0.0 ~hi:1e9
      (fun t -> of_opt t.increment_threshold)
      (fun t v -> { t with increment_threshold = opt_of v });
    knob "epoch_alloc_cap_bytes"
      "hard cap on allocation between RC pauses"
      ~kind:Int ~lo:4096.0 ~hi:1e12 ~tunable:true
      (fun t -> Float.of_int t.epoch_alloc_cap_bytes)
      (fun t v -> { t with epoch_alloc_cap_bytes = int_of_float v });
    knob "free_low_watermark_blocks"
      "RC pause when fewer free+recyclable blocks remain"
      ~kind:Int ~lo:1.0 ~hi:1e6 ~tunable:true
      (fun t -> Float.of_int t.free_low_watermark_blocks)
      (fun t v -> { t with free_low_watermark_blocks = int_of_float v });
    knob "clean_blocks_trigger"
      "request an SATB when an RC epoch yields fewer clean blocks"
      ~kind:Int ~lo:0.0 ~hi:1e6 ~tunable:true
      (fun t -> Float.of_int t.clean_blocks_trigger)
      (fun t v -> { t with clean_blocks_trigger = int_of_float v });
    knob "wastage_threshold"
      "request an SATB at this predicted heap wastage fraction"
      ~kind:Float ~lo:0.005 ~hi:0.9 ~tunable:true
      (fun t -> t.wastage_threshold)
      (fun t v -> { t with wastage_threshold = v });
    knob "satb_backstop_pauses"
      "force an SATB after this many RC pauses without one"
      ~kind:Int ~lo:1.0 ~hi:1000.0 ~tunable:true
      (fun t -> Float.of_int t.satb_backstop_pauses)
      (fun t v -> { t with satb_backstop_pauses = int_of_float v });
    knob "evacuate_young"
      "evacuate implicitly-dead young blocks (bool)"
      ~kind:Bool ~lo:0.0 ~hi:1.0
      (fun t -> bf t.evacuate_young)
      (fun t v -> { t with evacuate_young = b v });
    knob "max_evac_targets"
      "blocks per evacuation set"
      ~kind:Int ~lo:0.0 ~hi:1e6 ~tunable:true
      (fun t -> Float.of_int t.max_evac_targets)
      (fun t v -> { t with max_evac_targets = int_of_float v });
    knob "evac_occupancy_max"
      "only blocks under this occupancy fraction are evacuation targets"
      ~kind:Float ~lo:0.05 ~hi:0.95 ~tunable:true
      (fun t -> t.evac_occupancy_max)
      (fun t v -> { t with evac_occupancy_max = v });
    knob "evac_region_blocks"
      "contiguous region granularity for evacuation sets, in blocks"
      ~kind:Int ~lo:1.0 ~hi:4096.0
      (fun t -> Float.of_int t.evac_region_blocks)
      (fun t v -> { t with evac_region_blocks = int_of_float v });
    knob "evac_regions_per_pause"
      "regions evacuated per RC pause (0 = whole set at once)"
      ~kind:Int ~lo:0.0 ~hi:10000.0
      (fun t -> of_opt t.evac_regions_per_pause)
      (fun t v -> { t with evac_regions_per_pause = opt_of v });
    knob "concurrent_satb"
      "trace concurrently; false = trace inside the pause (bool)"
      ~kind:Bool ~lo:0.0 ~hi:1.0
      (fun t -> bf t.concurrent_satb)
      (fun t v -> { t with concurrent_satb = b v });
    knob "lazy_decrements"
      "process decrements concurrently (bool)"
      ~kind:Bool ~lo:0.0 ~hi:1.0
      (fun t -> bf t.lazy_decrements)
      (fun t v -> { t with lazy_decrements = b v });
    knob "field_logging_barrier"
      "remember overwritten fields rather than whole objects (bool)"
      ~kind:Bool ~lo:0.0 ~hi:1.0
      (fun t -> bf t.field_logging_barrier)
      (fun t v -> { t with field_logging_barrier = b v }) ]

let knob_names = List.map (fun k -> k.k_name) knobs

let tunable_knobs = List.filter (fun k -> k.k_tunable) knobs

let find_knob name =
  let lname = String.lowercase_ascii name in
  match List.find_opt (fun k -> k.k_name = lname) knobs with
  | Some k -> Ok k
  | None ->
    Error
      (Printf.sprintf "unknown LXR knob %S%s; known: %s" name
         (Repro_util.Suggest.hint ~candidates:knob_names name)
         (String.concat ", " knob_names))

let parse_value k s =
  let range_error _v =
    Error
      (Printf.sprintf "%s=%s out of range; expected %s in [%g, %g]" k.k_name s
         (match k.k_kind with
         | Int -> "an integer"
         | Float -> "a number"
         | Bool -> "a bool")
         k.k_lo k.k_hi)
  in
  match k.k_kind with
  | Bool -> (
    match String.lowercase_ascii s with
    | "true" | "1" | "on" | "yes" -> Ok 1.0
    | "false" | "0" | "off" | "no" -> Ok 0.0
    | _ ->
      Error
        (Printf.sprintf "%s=%s: expected a bool (true/false/1/0)" k.k_name s))
  | Int -> (
    match int_of_string_opt s with
    | Some v ->
      let f = Float.of_int v in
      if f < k.k_lo || f > k.k_hi then range_error f else Ok f
    | None ->
      Error (Printf.sprintf "%s=%s: expected an integer" k.k_name s))
  | Float -> (
    match float_of_string_opt s with
    | Some v -> if v < k.k_lo || v > k.k_hi then range_error v else Ok v
    | None -> Error (Printf.sprintf "%s=%s: expected a number" k.k_name s))

let apply_override t spec =
  match String.index_opt spec '=' with
  | None ->
    Error
      (Printf.sprintf "bad knob override %S; expected name=value" spec)
  | Some i -> (
    let name = String.sub spec 0 i in
    let value = String.sub spec (i + 1) (String.length spec - i - 1) in
    match find_knob name with
    | Error e -> Error e
    | Ok k -> (
      match parse_value k value with
      | Error e -> Error e
      | Ok v -> Ok (k.k_set t v)))

let no_concurrent_satb t = { t with concurrent_satb = false }
let no_lazy_decrements t = { t with lazy_decrements = false }
let stw t = { t with concurrent_satb = false; lazy_decrements = false }
let object_barrier t = { t with field_logging_barrier = false }
let regional_evacuation t = { t with evac_regions_per_pause = Some 1 }
