open Repro_util

type entry = { src : int; field : int; tag : int }

(* Entries are packed as consecutive int triples in a Vec. *)
type t = { cells : Vec.t }

let create () = { cells = Vec.create ~capacity:64 () }

let add t ~src ~field ~tag =
  Vec.push t.cells src;
  Vec.push t.cells field;
  Vec.push t.cells tag

let length t = Vec.length t.cells / 3

let drain t f =
  let n = length t in
  for i = 0 to n - 1 do
    f
      { src = Vec.get t.cells (3 * i);
        field = Vec.get t.cells ((3 * i) + 1);
        tag = Vec.get t.cells ((3 * i) + 2) }
  done;
  Vec.clear t.cells

let clear t = Vec.clear t.cells

let iter t f =
  let n = length t in
  for i = 0 to n - 1 do
    f
      { src = Vec.get t.cells (3 * i);
        field = Vec.get t.cells ((3 * i) + 1);
        tag = Vec.get t.cells ((3 * i) + 2) }
  done
