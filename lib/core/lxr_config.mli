(** LXR tunables (§4 "LXR Configuration" and the Table 7 ablations).

    The paper's default configuration: a two-bit reference count (owned by
    {!Repro_heap.Heap_config}), a 128 MB survival threshold, no increment
    threshold, a 5% mature wastage threshold, and a single evacuation
    set. Thresholds expressed in bytes here scale with the (much smaller)
    simulated heaps via {!scaled_default}. *)

type t = {
  (* RC triggers (§3.2.1). *)
  survival_threshold_bytes : int;
      (** pause when predicted young survival since the last pause reaches
          this many bytes *)
  increment_threshold : int option;
      (** pause when the modified-field buffer reaches this size *)
  epoch_alloc_cap_bytes : int;
      (** hard cap on allocation between pauses (backstop trigger) *)
  free_low_watermark_blocks : int;
      (** pause when fewer free+recyclable blocks remain *)
  (* SATB triggers (§3.2.2). *)
  clean_blocks_trigger : int;
      (** request an SATB when an RC epoch yields fewer clean blocks *)
  wastage_threshold : float;  (** request an SATB at this predicted heap wastage *)
  satb_backstop_pauses : int;
      (** completeness backstop: request an SATB after this many RC pauses
          without one, so cyclic garbage cannot float forever *)
  (* Evacuation (§3.3.2). *)
  evacuate_young : bool;  (** implicitly-dead young evacuation *)
  max_evac_targets : int;  (** blocks per evacuation set *)
  evac_occupancy_max : float;  (** only blocks under this occupancy are targets *)
  evac_region_blocks : int;
      (** contiguous region granularity for evacuation sets (the paper's
          4 MB regions, scaled: 16 blocks = 512 KB) *)
  evac_regions_per_pause : int option;
      (** incremental evacuation: regions evacuated per RC pause ([None] =
          the whole evacuation set at once — the default single-set
          configuration of §4) *)
  (* Concurrency ablations (Table 7: -SATB, -LD, STW). *)
  concurrent_satb : bool;  (** trace concurrently; [false] = trace in the pause *)
  lazy_decrements : bool;  (** process decrements concurrently *)
  (* Barrier granularity (§3.4): the coalescing barrier may remember
     overwritten fields (precise, the evaluated default) or whole objects
     (cheaper mutator fast path, more collector work). *)
  field_logging_barrier : bool;
}

(** [scaled_default ~heap_bytes ~block_bytes] is the paper's default
    configuration with byte thresholds scaled to the simulated heap. *)
val scaled_default : heap_bytes:int -> block_bytes:int -> t

(** {2 Knob descriptors}

    One table drives both the CLI ([--lxr-knob=name=value]) and the
    online controllers ({!Repro_policy.Controller}): every field viewed
    as a float (bools as 0/1, the [int option] triggers as 0 =
    disabled), with a per-knob sanity range. Setters clamp into the
    range, so controller exploration can never leave it. *)

type kind = Int | Float | Bool

type knob = {
  k_name : string;
  k_doc : string;
  k_kind : kind;
  k_lo : float;  (** inclusive sanity range *)
  k_hi : float;
  k_tunable : bool;  (** controllers may move it between epochs *)
  k_get : t -> float;
  k_set : t -> float -> t;  (** clamps into [k_lo, k_hi] *)
}

val knobs : knob list

val knob_names : string list

(** The designated controller-tunable subset (trigger thresholds and
    evacuation sizing; the boolean ablations and structural knobs are
    excluded). *)
val tunable_knobs : knob list

(** [find_knob name] — case-insensitive; the error carries a
    did-you-mean hint over {!knob_names}. *)
val find_knob : string -> (knob, string) result

(** [apply_override t "name=value"] parses, validates the value against
    the knob's kind and range, and returns the updated configuration.
    Errors are human-readable (unknown name with hint, parse failure,
    out-of-range). *)
val apply_override : t -> string -> (t, string) result

(** Ablated variants for Table 7. *)

val no_concurrent_satb : t -> t

val no_lazy_decrements : t -> t

(** Fully stop-the-world: both ablations — approximates RC-Immix. *)
val stw : t -> t

(** Object-remembering barrier variant (§3.4). *)
val object_barrier : t -> t

(** Region-based evacuation: many remembered sets, evacuated
    incrementally over RC pauses (§3.3.2). *)
val regional_evacuation : t -> t
