open Repro_util
open Repro_heap
open Repro_engine
module Par = Repro_par.Par

let null = Obj_model.null

type epoch_feedback = {
  epoch : int;
  now_ns : float;
  pause_wall_ns : float;
  pause_cpu_ns : float;
  epoch_alloc_bytes : int;
  epoch_promoted_bytes : int;
  live_blocks : int;
  total_blocks : int;
}

type t = {
  sim : Sim.t;
  heap : Heap.t;
  roots : int array;
  mutable cfg : Lxr_config.t;
  tune : (epoch_feedback -> Lxr_config.t -> Lxr_config.t) option;
  stats : Lxr_stats.t;
  (* Write barrier buffers (§3.4). *)
  decbuf : Vec.t;  (* overwritten referents awaiting decrements *)
  modbuf : Vec.t;  (* (object id, field) pairs, packed flat *)
  objbuf : Vec.t;  (* object-granularity barrier: logged object ids *)
  obj_snapshots : (int, int array) Hashtbl.t;  (* before-images at logging *)
  prev_roots : Vec.t;  (* root referents incremented at t_n, decremented at t_n+1 *)
  (* Lazy decrement machinery (§3.2.1). *)
  lazy_queue : Vec.t;
  lazy_sweep : Vec.t;  (* blocks touched by decrements, swept after the decs *)
  lazy_sweep_set : (int, unit) Hashtbl.t;
  (* SATB trace state (§3.2.2). *)
  mutable satb_active : bool;
  mutable satb_completed : bool;
  mutable satb_requested : bool;
  mutable satb_start_epoch : int;
  satb_gray : Vec.t;
  (* Mature evacuation (§3.3.2). *)
  remset : Remset.t;
  mutable evac_targets : int list;
  (* Predictors and triggers. *)
  survival_rate : Predictor.t;
  live_blocks_pred : Predictor.t;
  mutable alloc_bytes_epoch : int;
  mutable promoted_bytes_epoch : int;
  mutable pauses_since_satb : int;
  los_young : Vec.t;
  gc_alloc : Bump_allocator.t;
  mutable in_pause : bool;
}

(* Option-free lookup for the inc/dec/trace hot paths: returns the
   registry's canonical none-handle (id = null) when absent. *)
let find_live t id = Obj_model.Registry.find_live t.heap.registry id

(* The host-side work-packet pool ([--gc-threads]). Phase bodies handed
   to it must be read-only with respect to collector state; all mutation
   happens in the ordered merges, so every phase is bit-identical across
   lane counts (see lib/par). *)
let pool t = Sim.pool t.sim

let in_target t (obj : Obj_model.t) =
  (not (Obj_model.is_freed obj))
  && Blocks.target t.heap.blocks (Addr.block_of t.heap.cfg (Obj_model.addr obj))

let line_tag t (obj : Obj_model.t) =
  Reuse_table.get t.heap.reuse (Addr.line_of t.heap.cfg (Obj_model.addr obj))

(* Trace machinery is live (and the remset maintained) from SATB start
   until the evacuation pause clears the targets. *)
let remset_live t = t.evac_targets <> []

let note_remset t ~(src : Obj_model.t) ~field ~(referent : Obj_model.t) =
  if remset_live t && in_target t referent then begin
    let faults = Sim.faults t.sim in
    let field =
      (* Injected corruption: record a nonsense field index. The drain
         must survive it (stale-tolerant bounds check) and the verifier
         must flag it. *)
      if Fault.active faults && faults.corrupt_remset () then field + 10_000
      else field
    in
    Remset.add t.remset ~src:src.id ~field ~tag:(line_tag t src);
    t.stats.remset_entries <- t.stats.remset_entries + 1
  end

(* --- SATB trace (§3.2.2) --------------------------------------------- *)

let satb_tracing t = t.satb_active && not t.satb_completed

let gray_push t id =
  if id <> null && not (Mark_bitset.marked t.heap.marks id) then begin
    Mark_bitset.mark t.heap.marks id;
    Vec.push t.satb_gray id
  end

(* Scan one gray object: the mature-only optimization skips objects with a
   zero reference count (young objects are covered by RC). *)
let satb_scan t id =
  let obj = find_live t id in
  if obj.Obj_model.id <> null && Heap.rc_of t.heap obj > 0 then
    for i = 0 to Obj_model.nfields obj - 1 do
      let r = Obj_model.field obj i in
      if r <> null then begin
        let child = find_live t r in
        if child.Obj_model.id <> null then
          note_remset t ~src:obj ~field:i ~referent:child;
        gray_push t r
      end
    done

(* The interruption invariant: RC may never delete an unmarked object
   while an SATB trace is underway. Mark the dying object and scan it so
   the trace never follows a reference into freed space. *)
let satb_shield t (obj : Obj_model.t) =
  if satb_tracing t
     && Obj_model.birth_epoch obj < t.satb_start_epoch
     && not (Mark_bitset.marked t.heap.marks obj.id) then begin
    Mark_bitset.mark t.heap.marks obj.id;
    Obj_model.iter_fields (fun r -> if r <> null then gray_push t r) obj
  end

(* --- Decrements ------------------------------------------------------- *)

let note_dec_sweep t (obj : Obj_model.t) =
  if not (Heap.is_los t.heap obj) then begin
    let b = Addr.block_of t.heap.cfg (Obj_model.addr obj) in
    if not (Hashtbl.mem t.lazy_sweep_set b) then begin
      Hashtbl.replace t.lazy_sweep_set b ();
      Vec.push t.lazy_sweep b
    end
  end

(* Apply one decrement; recursive decrements for a dying object's
   referents are pushed onto [queue]. *)
let apply_dec t queue id =
  let faults = Sim.faults t.sim in
  if Fault.active faults && faults.skip_decrement () then ()
  else begin
    let obj = find_live t id in
    if obj.Obj_model.id <> null then begin
      t.stats.decrements <- t.stats.decrements + 1;
      match Heap.rc_dec t.heap obj with
      | `Became 0 ->
        satb_shield t obj;
        for j = 0 to Obj_model.nfields obj - 1 do
          let r = Obj_model.field obj j in
          if r <> null then Vec.push queue r
        done;
        note_dec_sweep t obj;
        t.stats.old_reclaimed <- t.stats.old_reclaimed + obj.size;
        Heap.free_object t.heap obj
      | `Became _ | `Stuck | `Underflow -> ()
    end
  end

(* Sweep one block whose lines may have been freed by decrements. Blocks
   currently being allocated into (touched or owned) are skipped: their
   young residents legitimately carry zero counts. *)
let lazy_sweep_block t b =
  if Blocks.state t.heap.blocks b = Blocks.In_use
     && not (Heap.block_touched t.heap b) then
    ignore (Heap.rc_sweep_block t.heap b)

(* --- Increments (§3.2.1) ---------------------------------------------- *)

(* Promotion: a young object just received its first increment. All its
   references are established, so it may be copied (young evacuation) and
   must start logging mutations; its referents receive increments. *)
let promote t tc queue (obj : Obj_model.t) =
  t.promoted_bytes_epoch <- t.promoted_bytes_epoch + obj.size;
  Obj_model.set_all_logged obj false;
  let c = Sim.cost t.sim in
  if t.cfg.evacuate_young
     && (not (Heap.is_los t.heap obj))
     && Blocks.young t.heap.blocks (Addr.block_of t.heap.cfg (Obj_model.addr obj))
     && Heap.evacuate t.heap t.gc_alloc obj
  then begin
    t.stats.young_evacuated <- t.stats.young_evacuated + obj.size;
    Trace_cost.add tc ~threads:c.gc_threads ~frontier:(Vec.length queue + 1)
      ~cost_ns:(c.copy_ns_per_byte *. Float.of_int obj.size)
  end;
  for i = 0 to Obj_model.nfields obj - 1 do
    let r = Obj_model.field obj i in
    if r <> null then begin
      let child = find_live t r in
      if child.Obj_model.id <> null then
        note_remset t ~src:obj ~field:i ~referent:child;
      Vec.push queue r
    end
  done

let apply_incs t tc queue =
  let c = Sim.cost t.sim in
  while not (Vec.is_empty queue) do
    let frontier = Vec.length queue in
    let id = Vec.pop queue in
    Trace_cost.add tc ~threads:c.gc_threads ~frontier ~cost_ns:c.inc_ns;
    let obj = find_live t id in
    if obj.Obj_model.id <> null then begin
      t.stats.increments <- t.stats.increments + 1;
      match Heap.rc_inc t.heap obj with
      | `Became 1 -> promote t tc queue obj
      | `Became _ | `Stuck -> ()
    end
  done

(* --- Young sweep (§3.3.1) --------------------------------------------- *)

let young_sweep t tc =
  let c = Sim.cost t.sim in
  let clean = ref 0 in
  (* Sweep packets over the touched-block list: dead-resident detection
     per block is read-only and cross-block independent (packet bodies);
     frees and classification happen in the ordered merge, in the same
     ascending touched-block order as the old serial loop. Packet
     encoding: [block; ndead; dead ids...] per swept block. *)
  let touched = Array.of_list (Heap.touched_blocks t.heap) in
  Par.map_spans (pool t) ~total:(Array.length touched)
    ~packet:Par.blocks_per_packet
    ~f:(fun _ ~lo ~len ->
      let out = Par.take_scratch () in
      for k = lo to lo + len - 1 do
        let b = touched.(k) in
        if Blocks.state t.heap.blocks b = Blocks.In_use then begin
          Vec.push out b;
          let npos = Vec.length out in
          Vec.push out 0;
          Heap.sweep_scan_block t.heap b out;
          Vec.set out npos (Vec.length out - npos - 1)
        end
      done;
      out)
    ~merge:(fun _ out ->
      let i = ref 0 in
      while !i < Vec.length out do
        let b = Vec.get out !i and n = Vec.get out (!i + 1) in
        let off = !i + 2 in
        i := off + n;
        let was_young = Blocks.young t.heap.blocks b in
        Trace_cost.add_parallel tc ~threads:c.gc_threads ~cost_ns:c.sweep_block_ns;
        let classification, freed =
          Heap.rc_sweep_apply t.heap b ~dead:out ~off ~len:n
        in
        t.stats.young_reclaimed <- t.stats.young_reclaimed + freed;
        match classification with
        | `Freed ->
          incr clean;
          if was_young then
            t.stats.clean_young_blocks <- t.stats.clean_young_blocks + 1
        | `Recyclable _ | `Full -> ()
      done;
      Par.recycle_scratch out);
  (* Dead young large objects: never incremented, reclaimed wholesale. *)
  Vec.iter
    (fun id ->
      let obj = find_live t id in
      if obj.Obj_model.id <> null && Heap.rc_of t.heap obj = 0 then begin
        t.stats.young_reclaimed <- t.stats.young_reclaimed + obj.size;
        Heap.free_object t.heap obj
      end)
    t.los_young;
  Vec.clear t.los_young;
  Heap.clear_touched t.heap;
  !clean

(* --- SATB begin / reclamation / evacuation ---------------------------- *)

let live_blocks t =
  let blocks = t.heap.blocks in
  Blocks.count_state blocks Blocks.In_use
  + Blocks.count_state blocks Blocks.Recyclable
  + Blocks.count_state blocks Blocks.Owned
  + Blocks.count_state blocks Blocks.Los_backing

let select_targets t =
  let cfg = t.heap.cfg in
  let candidates = ref [] in
  (* Block-range packets: the per-block live-byte fold is read-only; the
     ordered merge reproduces the serial accumulation order exactly. *)
  Par.map_spans (pool t) ~total:(Heap_config.blocks cfg)
    ~packet:Par.blocks_per_packet
    ~f:(fun _ ~lo ~len ->
      let out = Par.take_scratch () in
      for b = lo to lo + len - 1 do
        match Blocks.state t.heap.blocks b with
        | Blocks.In_use | Blocks.Recyclable ->
          let live = Heap.live_bytes_in_block t.heap b in
          if Float.of_int live
             < t.cfg.evac_occupancy_max *. Float.of_int cfg.block_bytes
             && live > 0
          then begin
            Vec.push out b;
            Vec.push out live
          end
        | Blocks.Free | Blocks.Owned | Blocks.Los_backing -> ()
      done;
      out)
    ~merge:(fun _ out ->
      let i = ref 0 in
      while !i < Vec.length out do
        candidates := (Vec.get out !i, Vec.get out (!i + 1)) :: !candidates;
        i := !i + 2
      done;
      Par.recycle_scratch out);
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) !candidates in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (b, _) :: rest -> b :: take (n - 1) rest
  in
  let targets = take t.cfg.max_evac_targets sorted in
  List.iter (fun b -> Blocks.set_target t.heap.blocks b true) targets;
  targets

let begin_satb t root_ids =
  t.satb_active <- true;
  t.pauses_since_satb <- 0;
  t.satb_completed <- false;
  t.satb_start_epoch <- t.heap.epoch;
  t.stats.satb_pauses <- t.stats.satb_pauses + 1;
  Mark_bitset.clear t.heap.marks;
  Reuse_table.reset_all t.heap.reuse;
  Remset.clear t.remset;
  t.evac_targets <- select_targets t;
  Vec.iter (gray_push t) root_ids

(* Read-only mirror of [satb_scan] for trace packets: emit
   [id; k; (field, referent) × k] into the packet buffer. Mark-bit
   updates, remset notes (which consult the fault injector's PRNG) and
   cost accounting all happen in the ordered merge. *)
let satb_scan_packet t id out =
  Vec.push out id;
  let kpos = Vec.length out in
  Vec.push out 0;
  let obj = find_live t id in
  if obj.Obj_model.id <> null && Heap.rc_of t.heap obj > 0 then
    for i = 0 to Obj_model.nfields obj - 1 do
      let r = Obj_model.field obj i in
      if r <> null then begin
        Vec.push out i;
        Vec.push out r
      end
    done;
  Vec.set out kpos ((Vec.length out - kpos - 1) / 2)

(* Trace to exhaustion inside a pause (the -SATB ablation, emergency
   collections, and end-of-run draining). Breadth-first rounds over the
   gray frontier: scan packets are read-only; marking and graying happen
   in the merge, so the visit order — and therefore the per-object
   frontier sizes fed to the cost model — is a pure function of the
   heap graph, independent of the lane count. *)
let drain_satb_in_pause t tc =
  let c = Sim.cost t.sim in
  let remaining = ref 0 in
  Par.drain_rounds (pool t) ~packet:Par.queue_per_packet ~frontier:t.satb_gray
    ~on_round:(fun total -> remaining := total)
    ~scan:(fun id out -> satb_scan_packet t id out)
    ~merge:(fun out next ->
      let i = ref 0 in
      while !i < Vec.length out do
        let id = Vec.get out !i and k = Vec.get out (!i + 1) in
        i := !i + 2;
        Trace_cost.add tc ~threads:c.gc_threads ~frontier:!remaining
          ~cost_ns:c.trace_obj_ns;
        decr remaining;
        let src = find_live t id in
        for _ = 1 to k do
          let field = Vec.get out !i and r = Vec.get out (!i + 1) in
          i := !i + 2;
          if src.Obj_model.id <> null then begin
            let child = find_live t r in
            if child.Obj_model.id <> null then
              note_remset t ~src ~field ~referent:child
          end;
          if not (Mark_bitset.marked t.heap.marks r) then begin
            Mark_bitset.mark t.heap.marks r;
            Vec.push next r
          end
        done
      done);
  if t.satb_active && not t.satb_completed then begin
    t.satb_completed <- true;
    t.stats.satb_traces_completed <- t.stats.satb_traces_completed + 1
  end

(* Reclaim objects the completed trace left unmarked. Only objects mature
   at trace start participate; younger objects are covered by RC. *)
let satb_reclaim t tc =
  let c = Sim.cost t.sim in
  let reg = t.heap.registry in
  (* Registry slot-range packets: the mature/marked/dead triage is
     read-only; the ordered merge frees the dead in ascending slot
     order and batches the per-object cost charge. *)
  Par.map_spans (pool t) ~total:(Obj_model.Registry.slot_count reg)
    ~packet:Par.slots_per_packet
    ~f:(fun _ ~lo ~len ->
      let seen = ref 0 and stuck = ref 0 in
      let dead = Par.take_scratch () in
      for slot = lo to lo + len - 1 do
        match Obj_model.Registry.handle_at reg slot with
        | Some obj when Obj_model.birth_epoch obj < t.satb_start_epoch ->
          incr seen;
          if Mark_bitset.marked t.heap.marks obj.id then begin
            if Heap.rc_is_stuck t.heap obj then incr stuck
          end
          else Vec.push dead obj.id
        | Some _ | None -> ()
      done;
      (!seen, !stuck, dead))
    ~merge:(fun _ (seen, stuck, dead) ->
      t.stats.mature_objects_seen <- t.stats.mature_objects_seen + seen;
      t.stats.stuck_objects <- t.stats.stuck_objects + stuck;
      if seen > 0 then
        Trace_cost.add_parallel tc ~threads:c.gc_threads
          ~cost_ns:(c.dec_ns *. Float.of_int seen);
      Vec.iter
        (fun id ->
          let obj = find_live t id in
          if obj.Obj_model.id <> null then begin
            note_dec_sweep t obj;
            t.stats.satb_reclaimed <- t.stats.satb_reclaimed + obj.size;
            Heap.free_object t.heap obj
          end)
        dead;
      Par.recycle_scratch dead);
  Predictor.observe t.live_blocks_pred (Float.of_int (live_blocks t))

(* Evacuate part (or all) of the evacuation set using the current roots
   and the remembered set as roots; the trace never leaves the chosen
   blocks (§3.3.2). With region-based sets, entries whose referent lives
   in a deferred region are kept for a later pause. *)
let mature_evacuate t tc root_ids ~chosen =
  let c = Sim.cost t.sim in
  let chosen_set = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace chosen_set b ()) chosen;
  let in_chosen (obj : Obj_model.t) =
    (not (Obj_model.is_freed obj))
    && Hashtbl.mem chosen_set (Addr.block_of t.heap.cfg (Obj_model.addr obj))
  in
  let queue = Par.take_scratch () in
  let deferred = ref [] in
  let consider id =
    if id <> null then begin
      let obj = find_live t id in
      if obj.Obj_model.id <> null && in_chosen obj then Vec.push queue obj.id
    end
  in
  Vec.iter consider root_ids;
  Remset.drain t.remset (fun ({ src; field; tag } as entry) ->
      Trace_cost.add_parallel tc ~threads:c.gc_threads ~cost_ns:c.remset_entry_ns;
      let src_obj = find_live t src in
      if src_obj.Obj_model.id = null then
        t.stats.remset_stale <- t.stats.remset_stale + 1
      else if line_tag t src_obj > tag then
        (* The source line was reused after this entry was created. *)
        t.stats.remset_stale <- t.stats.remset_stale + 1
      else if field < 0 || field >= Obj_model.nfields src_obj then
        (* A corrupt entry (out-of-range field) is treated like a stale
           one rather than crashing the pause. *)
        t.stats.remset_stale <- t.stats.remset_stale + 1
      else begin
        let r = Obj_model.field src_obj field in
        let referent = find_live t r in
        if referent.Obj_model.id <> null then
          if in_chosen referent then Vec.push queue referent.id
          else if in_target t referent then
            (* A deferred region's entry: keep it for that region's pause. *)
            deferred := entry :: !deferred
      end);
  List.iter
    (fun { Remset.src; field; tag } -> Remset.add t.remset ~src ~field ~tag)
    !deferred;
  while not (Vec.is_empty queue) do
    let frontier = Vec.length queue in
    let id = Vec.pop queue in
    let obj = find_live t id in
    if
      obj.Obj_model.id <> null
      && in_chosen obj
      && Heap.evacuate t.heap t.gc_alloc obj
    then begin
      t.stats.mature_evacuated <- t.stats.mature_evacuated + obj.size;
      Trace_cost.add tc ~threads:c.gc_threads ~frontier
        ~cost_ns:(c.copy_ns_per_byte *. Float.of_int obj.size);
      Obj_model.iter_fields consider obj
    end
  done;
  Par.recycle_scratch queue;
  List.iter
    (fun b ->
      Blocks.set_target t.heap.blocks b false;
      Trace_cost.add_parallel tc ~threads:c.gc_threads ~cost_ns:c.sweep_block_ns;
      ignore (Heap.rc_sweep_block t.heap b))
    chosen;
  t.evac_targets <- List.filter (fun b -> not (Hashtbl.mem chosen_set b)) t.evac_targets

(* Pick the next regions of the evacuation set to empty at this pause. *)
let next_evac_chunk t =
  match t.cfg.evac_regions_per_pause with
  | None -> t.evac_targets
  | Some n ->
    let region b = b / t.cfg.evac_region_blocks in
    let regions =
      List.sort_uniq compare (List.map region t.evac_targets)
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | r :: rest -> r :: take (k - 1) rest
    in
    let now = take (max 1 n) regions in
    List.filter (fun b -> List.mem (region b) now) t.evac_targets

(* --- The RC pause (§3.2.1, Figure 2) ----------------------------------- *)

let rc_pause t =
  if not t.in_pause then begin
    t.in_pause <- true;
    let c = Sim.cost t.sim in
    let tc = Trace_cost.create () in
    t.stats.rc_pauses <- t.stats.rc_pauses + 1;
    Heap.retire_all_allocators t.heap;
    (* Unfinished lazy decrements from the previous epoch come first. *)
    if not (Vec.is_empty t.lazy_queue) then begin
      t.stats.unfinished_lazy_pauses <- t.stats.unfinished_lazy_pauses + 1;
      while not (Vec.is_empty t.lazy_queue) do
        let frontier = Vec.length t.lazy_queue in
        Trace_cost.add tc ~threads:c.gc_threads ~frontier ~cost_ns:c.dec_ns;
        apply_dec t t.lazy_queue (Vec.pop t.lazy_queue)
      done
    end;
    let satb_was_completed = t.satb_active && t.satb_completed in
    (* SATB reclamation happens in the first epoch after the trace ends,
       before increments touch any to-be-reclaimed object. *)
    if satb_was_completed then satb_reclaim t tc;
    (* Root scanning with deferral: increment current root referents,
       remember them, decrement the previous epoch's set later. *)
    let phase_mark = ref (Trace_cost.cpu_ns tc) in
    let phase field =
      let now_cpu = Trace_cost.cpu_ns tc in
      let delta = now_cpu -. !phase_mark in
      phase_mark := now_cpu;
      (match field with
      | `Inc -> t.stats.phase_inc_ns <- t.stats.phase_inc_ns +. delta
      | `Dec -> t.stats.phase_dec_ns <- t.stats.phase_dec_ns +. delta
      | `Sweep -> t.stats.phase_sweep_ns <- t.stats.phase_sweep_ns +. delta
      | `Evac -> t.stats.phase_evac_ns <- t.stats.phase_evac_ns +. delta
      | `Satb -> t.stats.phase_satb_ns <- t.stats.phase_satb_ns +. delta)
    in
    phase `Dec;  (* the unfinished-lazy drain above *)
    (* Root snapshot in a recycled scratch vector — the old per-pause
       cons-list was the last steady-state allocation in this pause. *)
    let root_ids = Par.take_scratch () in
    Array.iter (fun r -> if r <> null then Vec.push root_ids r) t.roots;
    Trace_cost.add_parallel tc ~threads:c.gc_threads
      ~cost_ns:(Float.of_int (Array.length t.roots) *. c.root_scan_ns);
    let inc_queue = Par.take_scratch () in
    Vec.append inc_queue root_ids;
    if satb_tracing t then Vec.iter (gray_push t) root_ids;
    (* Modified fields: the final referent of each logged field receives
       an increment; the field resumes logging. Modbuf chunks are RC work
       packets: the packet body resolves entries against the registry
       (read-only — dead sources drop out here); logged-bit clearing,
       remset notes and increment pushes happen in the ordered merge. *)
    let nmod = Vec.length t.modbuf / 2 in
    Par.map_spans (pool t) ~total:nmod ~packet:Par.queue_per_packet
      ~f:(fun _ ~lo ~len ->
        let out = Par.take_scratch () in
        for k = lo to lo + len - 1 do
          let src = Vec.get t.modbuf (2 * k)
          and field = Vec.get t.modbuf ((2 * k) + 1) in
          if Obj_model.Registry.mem t.heap.registry src then begin
            Vec.push out src;
            Vec.push out field
          end
        done;
        out)
      ~merge:(fun _ out ->
        let i = ref 0 in
        while !i < Vec.length out do
          let src = Vec.get out !i and field = Vec.get out (!i + 1) in
          i := !i + 2;
          let obj = find_live t src in
          if obj.Obj_model.id <> null then begin
            Obj_model.set_field_logged obj field false;
            let r = Obj_model.field obj field in
            if r <> null then begin
              let child = find_live t r in
              if child.Obj_model.id <> null then
                note_remset t ~src:obj ~field ~referent:child;
              Vec.push inc_queue r
            end
          end
        done;
        Par.recycle_scratch out);
    Vec.clear t.modbuf;
    (* Object-granularity entries: diff the before-image against the
       current fields — decrements for the snapshot, increments for the
       final referents. Same packet split as the modbuf: resolve in the
       packet body, mutate in the ordered merge. *)
    Par.map_spans (pool t) ~total:(Vec.length t.objbuf)
      ~packet:Par.queue_per_packet
      ~f:(fun _ ~lo ~len ->
        let out = Par.take_scratch () in
        for k = lo to lo + len - 1 do
          let id = Vec.get t.objbuf k in
          if Obj_model.Registry.mem t.heap.registry id
             && Hashtbl.mem t.obj_snapshots id
          then Vec.push out id
        done;
        out)
      ~merge:(fun _ out ->
        Vec.iter
          (fun id ->
            let obj = find_live t id in
            match Hashtbl.find_opt t.obj_snapshots id with
            | Some snapshot when obj.Obj_model.id <> null ->
              Obj_model.set_all_logged obj false;
              Array.iteri
                (fun i old ->
                  let current = Obj_model.field obj i in
                  if old <> null then Vec.push t.decbuf old;
                  if current <> null then begin
                    let child = find_live t current in
                    if child.Obj_model.id <> null then
                      note_remset t ~src:obj ~field:i ~referent:child;
                    Vec.push inc_queue current
                  end)
                snapshot
            | Some _ | None -> ())
          out;
        Par.recycle_scratch out);
    Vec.clear t.objbuf;
    Hashtbl.reset t.obj_snapshots;
    apply_incs t tc inc_queue;
    Par.recycle_scratch inc_queue;
    phase `Inc;
    (* Evacuate the evacuation set (or its next regions) once its
       bootstrap trace has ended. *)
    if satb_was_completed then begin
      Mark_bitset.clear t.heap.marks;
      t.satb_active <- false;
      t.satb_completed <- false
    end;
    if (not (satb_tracing t)) && t.evac_targets <> [] then
      mature_evacuate t tc root_ids ~chosen:(next_evac_chunk t);
    phase `Evac;
    (* Decrements: previous roots and all overwritten referents. *)
    let dec_pending = Par.take_scratch () in
    Vec.append dec_pending t.prev_roots;
    Vec.append dec_pending t.decbuf;
    Vec.clear t.prev_roots;
    Vec.clear t.decbuf;
    Vec.append t.prev_roots root_ids;
    if t.cfg.lazy_decrements then Vec.append t.lazy_queue dec_pending
    else begin
      while not (Vec.is_empty dec_pending) do
        let frontier = Vec.length dec_pending in
        Trace_cost.add tc ~threads:c.gc_threads ~frontier ~cost_ns:c.dec_ns;
        apply_dec t dec_pending (Vec.pop dec_pending)
      done;
      (* Sweep decrement-touched blocks in the pause too (-LD). *)
      Vec.iter
        (fun b ->
          Trace_cost.add_parallel tc ~threads:c.gc_threads ~cost_ns:c.sweep_block_ns;
          lazy_sweep_block t b)
        t.lazy_sweep;
      Vec.clear t.lazy_sweep;
      Hashtbl.reset t.lazy_sweep_set
    end;
    Par.recycle_scratch dec_pending;
    phase `Dec;
    (* Sweep the blocks allocated into this epoch. *)
    let clean_blocks = young_sweep t tc in
    phase `Sweep;
    (* Start a requested SATB now that block states are settled; a
       previous cycle's pending evacuation must finish first (its
       remembered sets would be invalidated by a reuse-counter reset). *)
    if t.satb_requested && (not t.satb_active) && t.evac_targets = [] then begin
      t.satb_requested <- false;
      begin_satb t root_ids
    end;
    Par.recycle_scratch root_ids;
    if t.satb_active && not t.cfg.concurrent_satb then drain_satb_in_pause t tc;
    phase `Satb;
    (* Predictors and the SATB triggers (§3.2.2). *)
    if t.alloc_bytes_epoch > 0 then
      Predictor.observe t.survival_rate
        (Float.of_int t.promoted_bytes_epoch /. Float.of_int t.alloc_bytes_epoch);
    let total_blocks = Heap_config.blocks t.heap.cfg in
    let wastage =
      (Float.of_int (live_blocks t) -. Predictor.value t.live_blocks_pred)
      /. Float.of_int total_blocks
    in
    t.pauses_since_satb <- t.pauses_since_satb + 1;
    if (not t.satb_active)
       && (clean_blocks < t.cfg.clean_blocks_trigger
          || wastage >= t.cfg.wastage_threshold
          || t.pauses_since_satb >= t.cfg.satb_backstop_pauses)
    then t.satb_requested <- true;
    let epoch_alloc_bytes = t.alloc_bytes_epoch in
    let epoch_promoted_bytes = t.promoted_bytes_epoch in
    t.alloc_bytes_epoch <- 0;
    t.promoted_bytes_epoch <- 0;
    t.heap.epoch <- t.heap.epoch + 1;
    let wall = c.pause_base_ns +. Trace_cost.critical_ns tc in
    let cpu = c.pause_base_ns +. Trace_cost.cpu_ns tc in
    let label = if satb_was_completed then "rc+evac" else "rc" in
    Sim.pause ~label t.sim ~wall_ns:wall ~cpu_ns:cpu;
    (* Epoch boundary: let an attached controller move the tunable knobs
       for the next epoch. The feedback carries only simulated metrics,
       so a deterministic controller keeps the run bit-identical across
       --gc-threads/--domains. *)
    (match t.tune with
    | None -> ()
    | Some f ->
      t.cfg <-
        f
          { epoch = t.heap.epoch;
            now_ns = Sim.now t.sim;
            pause_wall_ns = wall;
            pause_cpu_ns = cpu;
            epoch_alloc_bytes;
            epoch_promoted_bytes;
            live_blocks = live_blocks t;
            total_blocks }
          t.cfg);
    t.in_pause <- false
  end

(* --- Concurrent work (Figure 2's concurrent LXR thread) ---------------- *)

let conc_active t () =
  if Vec.is_empty t.lazy_queue
     && Vec.is_empty t.lazy_sweep
     && not (t.cfg.concurrent_satb && satb_tracing t)
  then 0
  else 1

let conc_run t ~budget_ns =
  let c = Sim.cost t.sim in
  let penalty = 1.0 /. c.conc_efficiency in
  let consumed = ref 0.0 in
  let continue_ = ref true in
  while !continue_ && !consumed < budget_ns do
    if not (Vec.is_empty t.lazy_queue) then begin
      (* Reference counts are local: decrements need no synchronization
         with the mutator, so they escape the concurrency penalty that
         burdens concurrent tracing (§2.1, §3.5). *)
      apply_dec t t.lazy_queue (Vec.pop t.lazy_queue);
      consumed := !consumed +. c.dec_ns
    end
    else if not (Vec.is_empty t.lazy_sweep) then begin
      let b = Vec.pop t.lazy_sweep in
      Hashtbl.remove t.lazy_sweep_set b;
      lazy_sweep_block t b;
      consumed := !consumed +. c.sweep_block_ns
    end
    else if t.cfg.concurrent_satb && satb_tracing t then begin
      if Vec.is_empty t.satb_gray then begin
        t.satb_completed <- true;
        t.stats.satb_traces_completed <- t.stats.satb_traces_completed + 1
      end
      else begin
        satb_scan t (Vec.pop t.satb_gray);
        consumed := !consumed +. (c.trace_obj_ns *. penalty)
      end
    end
    else continue_ := false
  done;
  !consumed

(* --- Triggers (§3.2.1) -------------------------------------------------- *)

let should_pause t =
  (* Progress guard: an epoch must allocate at least a block's worth
     before another pause can fire, or tight heaps thrash. *)
  t.alloc_bytes_epoch >= t.heap.Heap.cfg.block_bytes
  &&
  let predicted_survival =
    Predictor.value t.survival_rate *. Float.of_int t.alloc_bytes_epoch
  in
  let low_space =
    Free_lists.free_count t.heap.free + Free_lists.recyclable_count t.heap.free
    < t.cfg.free_low_watermark_blocks
  in
  low_space
  || t.alloc_bytes_epoch >= t.cfg.epoch_alloc_cap_bytes
  || predicted_survival >= Float.of_int t.cfg.survival_threshold_bytes
  || (match t.cfg.increment_threshold with
     | Some n -> Vec.length t.modbuf / 2 >= n
     | None -> false)

let poll t () = if should_pause t then rc_pause t

(* The allocation-failure degradation ladder. [Young]: one RC pause.
   [Full]: force the SATB cycle through to reclamation and evacuation.
   [Emergency]: if reference counting, the forced trace, and mature
   evacuation still yielded no whole blocks (large-object allocation
   needs them), slide-compact the fragmented remainder in a pause. Each
   rung tops the to-space reserve back up before the allocation retry. *)
let collect_for_alloc t pressure =
  (match pressure with
  | Collector.Young -> rc_pause t
  | Collector.Full ->
    if not t.satb_active then t.satb_requested <- true;
    rc_pause t;
    if t.satb_active && not t.satb_completed then begin
      let tc = Trace_cost.create () in
      drain_satb_in_pause t tc;
      let c = Sim.cost t.sim in
      Sim.pause ~label:"forced-trace" t.sim
        ~wall_ns:(c.pause_base_ns +. Trace_cost.critical_ns tc)
        ~cpu_ns:(c.pause_base_ns +. Trace_cost.cpu_ns tc)
    end;
    rc_pause t
  | Collector.Emergency ->
    let c = Sim.cost t.sim in
    let tc = Trace_cost.create () in
    Heap.retire_all_allocators t.heap;
    (* The reserve is released directly into the compactor's budget so
       opportunistic young evacuation cannot consume it first. *)
    Heap.release_reserve t.heap;
    let copied =
      Compaction.compact t.heap tc ~cost:c ~threads:c.gc_threads
        ~gc_alloc:t.gc_alloc
    in
    t.stats.mature_evacuated <- t.stats.mature_evacuated + copied;
    Sim.pause ~label:"compact" t.sim
      ~wall_ns:(c.pause_base_ns +. Trace_cost.critical_ns tc)
      ~cpu_ns:(c.pause_base_ns +. Trace_cost.cpu_ns tc));
  Heap.ensure_reserve t.heap

(* --- Barrier (§3.4, Figure 3) ------------------------------------------ *)

(* Field-logging barrier (Figure 3): remember the overwritten referent and
   the field's address the first time the field is written each epoch. *)
let on_write_field t (src : Obj_model.t) field =
  if not (Obj_model.field_logged src field) then begin
    let c = Sim.cost t.sim in
    Sim.charge_mutator t.sim c.wb_slow_ns;
    Sim.note_barrier t.sim c.wb_slow_ns;
    t.stats.wb_slow <- t.stats.wb_slow + 1;
    Obj_model.set_field_logged src field true;
    let old = Obj_model.field src field in
    if old <> null then begin
      Vec.push t.decbuf old;
      (* The same logged value seeds the SATB snapshot (§2.3). *)
      if satb_tracing t then begin
        let o = find_live t old in
        if o.Obj_model.id <> null && Heap.rc_of t.heap o > 0 then
          gray_push t old
      end
    end;
    Vec.push t.modbuf src.id;
    Vec.push t.modbuf field
  end

(* Object-remembering barrier (§3.4): on the first write to any field,
   snapshot the whole object's before-image; the pause coalesces
   decrements and increments per field from the snapshot. The fast path
   tests one bit regardless of which field is written. *)
let on_write_object t (src : Obj_model.t) =
  if not (Obj_model.field_logged src 0) then begin
    let c = Sim.cost t.sim in
    let ns = c.wb_slow_ns +. (0.3 *. Float.of_int (Obj_model.nfields src)) in
    Sim.charge_mutator t.sim ns;
    Sim.note_barrier t.sim ns;
    t.stats.wb_slow <- t.stats.wb_slow + 1;
    Obj_model.set_all_logged src true;
    Hashtbl.replace t.obj_snapshots src.id (Obj_model.fields_copy src);
    Vec.push t.objbuf src.id;
    if satb_tracing t then
      (* Which field is about to be overwritten is unknown at object
         granularity; conservatively snapshot every referent. *)
      Obj_model.iter_fields
        (fun r ->
          if r <> null then begin
            let o = find_live t r in
            if o.Obj_model.id <> null && Heap.rc_of t.heap o > 0 then
              gray_push t r
          end)
        src
  end

let on_write t (src : Obj_model.t) field _new_ref =
  t.stats.wb_fast <- t.stats.wb_fast + 1;
  if t.cfg.field_logging_barrier then on_write_field t src field
  else on_write_object t src

let on_alloc t (obj : Obj_model.t) =
  t.alloc_bytes_epoch <- t.alloc_bytes_epoch + obj.size;
  if Heap.is_los t.heap obj then Vec.push t.los_young obj.id

let on_finish t () =
  (* Drain outstanding concurrent work so final statistics are complete. *)
  while not (Vec.is_empty t.lazy_queue) do
    apply_dec t t.lazy_queue (Vec.pop t.lazy_queue)
  done;
  Vec.iter (fun b -> lazy_sweep_block t b) t.lazy_sweep;
  Vec.clear t.lazy_sweep;
  Hashtbl.reset t.lazy_sweep_set

let stats_alist t () =
  ("promoted_pending", Float.of_int t.promoted_bytes_epoch)
  :: Lxr_stats.to_alist t.stats

(* --- Verifier introspection -------------------------------------------- *)

(* Every id with a decrement still queued: its count may legitimately
   exceed the in-heap evidence until the next pause applies it. *)
let pending_ref_ids t () =
  let ids = ref [] in
  let push id = if id <> null then ids := id :: !ids in
  Vec.iter push t.decbuf;
  Vec.iter push t.prev_roots;
  Vec.iter push t.lazy_queue;
  Hashtbl.iter
    (fun _ snapshot -> Array.iter push snapshot)
    t.obj_snapshots;
  !ids

let remset_entries t () =
  let acc = ref [] in
  Remset.iter t.remset (fun { Remset.src; field; tag = _ } ->
      acc := (src, field) :: !acc);
  !acc

let introspect t =
  { Collector.rc_discipline = Collector.Exact_rc;
    counts_exact = (fun () -> t.stats.satb_traces_completed = 0);
    pending_ref_ids = pending_ref_ids t;
    remset_entries = remset_entries t;
    trace_active = (fun () -> satb_tracing t);
    expect_clear_marks = (fun () -> not t.satb_active) }

let create ?tune ~name ~config sim heap ~roots =
  let cfg =
    config
      (Lxr_config.scaled_default ~heap_bytes:heap.Heap.cfg.heap_bytes
         ~block_bytes:heap.Heap.cfg.block_bytes)
  in
  let t =
    { sim;
      heap;
      roots;
      cfg;
      tune;
      stats = Lxr_stats.create ();
      decbuf = Vec.create ~capacity:1024 ();
      modbuf = Vec.create ~capacity:1024 ();
      objbuf = Vec.create ~capacity:256 ();
      obj_snapshots = Hashtbl.create 256;
      prev_roots = Vec.create ~capacity:64 ();
      lazy_queue = Vec.create ~capacity:1024 ();
      lazy_sweep = Vec.create ~capacity:64 ();
      lazy_sweep_set = Hashtbl.create 64;
      satb_active = false;
      satb_completed = false;
      satb_requested = false;
      satb_start_epoch = 0;
      satb_gray = Vec.create ~capacity:1024 ();
      remset = Remset.create ();
      evac_targets = [];
      survival_rate = Predictor.create ~initial:0.2 ();
      live_blocks_pred = Predictor.create ~initial:0.0 ();
      alloc_bytes_epoch = 0;
      promoted_bytes_epoch = 0;
      pauses_since_satb = 0;
      los_young = Vec.create ~capacity:16 ();
      gc_alloc = Heap.make_allocator heap;
      in_pause = false }
  in
  Heap.ensure_reserve heap;
  let c = Sim.cost sim in
  { Collector.name;
    on_alloc = on_alloc t;
    on_write = on_write t;
    write_extra_ns = c.wb_fast_ns;
    read_extra_ns = 0.0;
    poll = (fun () -> poll t ());
    collect_for_alloc = collect_for_alloc t;
    conc_active = conc_active t;
    conc_run = (fun ~budget_ns -> conc_run t ~budget_ns);
    conc_backlog = (fun () -> Vec.length t.lazy_queue + Vec.length t.lazy_sweep);
    on_finish = on_finish t;
    stats = stats_alist t;
    introspect = introspect t }

let factory_with ~name ~config () sim heap ~roots = create ~name ~config sim heap ~roots
let factory = factory_with ~name:"LXR" ~config:Fun.id ()

(* A factory whose collector re-tunes its configuration at every epoch
   boundary. [tune sim] builds the per-instance tuning function — one
   controller per collector instance, so fleet replicas don't share
   state. *)
let factory_tuned ?(config = Fun.id) ~name
    ~tune:(mk : Sim.t -> epoch_feedback -> Lxr_config.t -> Lxr_config.t) () :
    Collector.factory =
 fun sim heap ~roots -> create ~tune:(mk sim) ~name ~config sim heap ~roots

let factory_no_satb_concurrency =
  factory_with ~name:"LXR -SATB" ~config:Lxr_config.no_concurrent_satb ()

let factory_no_lazy_decrements =
  factory_with ~name:"LXR -LD" ~config:Lxr_config.no_lazy_decrements ()

let factory_stw = factory_with ~name:"LXR STW" ~config:Lxr_config.stw ()

let factory_object_barrier =
  factory_with ~name:"LXR objbar" ~config:Lxr_config.object_barrier ()

let factory_regional_evacuation =
  factory_with ~name:"LXR regions" ~config:Lxr_config.regional_evacuation ()
