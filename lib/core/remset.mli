(** RC remembered sets for mature evacuation (§3.3.2).

    A remembered set records the locations (object, field) of references
    into the evacuation set, each tagged with the reuse counter of the
    source object's line at insertion time. The set is bootstrapped by
    the SATB trace (which must traverse every pointer into the evacuation
    set) and kept current by modified-field processing until the set is
    evacuated. Entries whose source line has been reused since insertion
    are stale and discarded at evacuation time. *)

type entry = { src : int;  (** source object id *) field : int; tag : int }

type t

val create : unit -> t

(** [add t ~src ~field ~tag] appends an entry (duplicates allowed). *)
val add : t -> src:int -> field:int -> tag:int -> unit

val length : t -> int

(** [drain t f] applies [f] to every entry and empties the set. *)
val drain : t -> (entry -> unit) -> unit

val clear : t -> unit

(** [iter t f] applies [f] to every entry without draining — audit
    support for the integrity verifier. *)
val iter : t -> (entry -> unit) -> unit
