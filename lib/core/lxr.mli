(** LXR: Latency-critical ImmiX with Reference counting (§3).

    The collector runs regular, brief stop-the-world RC pauses and limits
    concurrency to lazy decrement processing and the backup SATB trace:

    - a field-logging write barrier feeds a decrement buffer (overwritten
      referents) and a modified-fields buffer (§3.4, Figure 3);
    - each pause applies root and modified-field increments first — young
      objects receiving their [0 -> 1] increment are promoted,
      opportunistically evacuated, and cascade increments to their
      children (implicitly dead, §2.1) — then schedules decrements;
    - blocks allocated into since the last pause are swept by inspecting
      the RC table; all-zero blocks are reclaimed without ever touching
      their dead young objects (§3.3.1);
    - decrements run concurrently after the pause (lazy decrements),
      followed by lazy sweeping of the blocks they touched;
    - an occasional SATB trace, spanning multiple RC epochs, reclaims
      cycles and stuck counts, bootstraps RC remembered sets, and selects
      fragmented mature blocks for evacuation at a later pause (§3.2.2,
      §3.3.2);
    - survival-rate and wastage predictors drive the RC and SATB triggers
      (§3.2.1-2). *)

(** The default LXR factory (concurrent SATB + lazy decrements). *)
val factory : Repro_engine.Collector.factory

(** What a tuning controller learns at each epoch boundary (the end of
    every RC pause), before the next epoch begins. All values are
    simulated metrics, so any deterministic function of them keeps the
    run bit-identical across [--gc-threads] and [--domains]. *)
type epoch_feedback = {
  epoch : int;  (** the epoch that just began *)
  now_ns : float;  (** virtual clock after the pause *)
  pause_wall_ns : float;  (** the ending pause's wall time *)
  pause_cpu_ns : float;
  epoch_alloc_bytes : int;  (** allocated during the finished epoch *)
  epoch_promoted_bytes : int;  (** survived its first pause *)
  live_blocks : int;
  total_blocks : int;
}

(** [factory_tuned ~name ~tune ()] builds collectors that re-tune their
    {!Lxr_config} between epochs: [tune sim] runs once per collector
    instance (a fleet replica gets its own controller state) and the
    resulting function maps epoch feedback and the current configuration
    to the next epoch's configuration. [config] transforms the scaled
    default into the starting configuration. *)
val factory_tuned :
  ?config:(Lxr_config.t -> Lxr_config.t) ->
  name:string ->
  tune:
    (Repro_engine.Sim.t -> epoch_feedback -> Lxr_config.t -> Lxr_config.t) ->
  unit ->
  Repro_engine.Collector.factory

(** [factory_with ~name ~config ()] builds a factory with an explicit
    configuration — used for the Table 7 ablations and §5.4 sensitivity
    runs. [config] receives the scaled default for the heap being
    created. *)
val factory_with :
  name:string -> config:(Lxr_config.t -> Lxr_config.t) -> unit ->
  Repro_engine.Collector.factory

(** Named ablations (Table 7). *)

val factory_no_satb_concurrency : Repro_engine.Collector.factory

val factory_no_lazy_decrements : Repro_engine.Collector.factory
val factory_stw : Repro_engine.Collector.factory

(** Object-remembering barrier variant (§3.4). *)
val factory_object_barrier : Repro_engine.Collector.factory

(** Region-based evacuation sets, one region evacuated per pause
    (§3.3.2). *)
val factory_regional_evacuation : Repro_engine.Collector.factory
