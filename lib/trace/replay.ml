open Repro_engine
open Repro_heap

exception Error of string

let null = Obj_model.null

(* The dense dispatch below matches on ring-tag literals so the compiler
   emits one jump table; pin the literals to the format's constants. *)
let () =
  assert (
    Trace_format.tag_alloc = 1
    && Trace_format.tag_alloc_failed = 2
    && Trace_format.tag_write = 3
    && Trace_format.tag_read = 4
    && Trace_format.tag_root = 5
    && Trace_format.tag_work = 6
    && Trace_format.tag_safepoint = 7
    && Trace_format.tag_request_start = 8
    && Trace_format.tag_request_end = 9
    && Trace_format.tag_measurement_start = 10
    && Trace_format.tag_survived = 11
    && Trace_format.tag_finish = 12)

type loop = [ `Auto | `Generic ]

type t = {
  api : Api.t;
  trace : Trace_format.t;
  ring : Trace_format.ring;
  on_measurement_start : unit -> unit;
  (* recorded id -> replay object, and replay id -> recorded id. Both id
     spaces are dense monotonic allocation sequences, so the maps are
     flat arrays indexed by id rather than hashtables — the translation
     sits on the hot path of every replayed write/read/root event. [map]
     is presized from the ring's alloc statistics (so it never grows) and
     holds the registry's none-handle (id = null) where the old
     representation held [None]: lookups test [obj.id] instead of
     matching an option, and a freed object's entry still resolves to its
     stale handle — stale-handle semantics (reads-as-freed, writes
     no-op) are part of replay fidelity. *)
  none : Obj_model.t;
  mutable map : Obj_model.t array;
  mutable rev : int array;
  hist : Repro_util.Histogram.t;
  mutable idx : int;
  mutable arrival : float;
  mutable requests : int;
  mutable saw_request : bool;
  mutable measuring : bool;
  mutable survived_bytes : int;
  mutable large_bytes : int;
  mutable oom : Api.oom_info option;
  mutable halted : bool;
  mutable finished : bool;
  mutable anomalies : string list;
}

let create ?(on_measurement_start = fun () -> ()) api trace =
  let alloc_count, max_id = Trace_format.alloc_stats trace in
  let none = Obj_model.Registry.none_handle (Api.heap api).Heap.registry in
  { api;
    trace;
    ring = Trace_format.ring trace;
    on_measurement_start;
    none;
    map = Array.make (max 16 (max_id + 1)) none;
    rev = Array.make (max 16 (alloc_count + 2)) 0;
    hist = Repro_util.Histogram.create ();
    idx = 0;
    arrival = 0.0;
    requests = 0;
    saw_request = false;
    measuring = false;
    survived_bytes = 0;
    large_bytes = 0;
    oom = None;
    halted = false;
    finished = false;
    anomalies = [] }

let event_index t = t.idx
let halted t = t.halted
let oom t = t.oom
let anomalies t = List.rev t.anomalies

let recorded_id t ~replay_id =
  if replay_id >= 0 && replay_id < Array.length t.rev && t.rev.(replay_id) <> 0
  then Some t.rev.(replay_id)
  else None

let map_get t recorded =
  if recorded >= 0 && recorded < Array.length t.map then t.map.(recorded)
  else t.none

let replay_obj t recorded =
  let obj = map_get t recorded in
  if obj.Obj_model.id <> null && not (Obj_model.is_freed obj) then Some obj
  else None

let unknown : t -> string -> int -> 'a =
 fun t what recorded ->
  raise
    (Error
       (Printf.sprintf "event %d: %s references unknown object %d" t.idx what
          recorded))

let lookup t recorded what =
  let obj = map_get t recorded in
  if obj.Obj_model.id <> null then obj else unknown t what recorded

(* Stored reference values are plain ids; null passes through. *)
let map_ref t v = if v = null then null else (lookup t v "store").Obj_model.id

(* The mutator-level markers are not re-emitted by [Api], so when a
   recorder is attached to the replay run (record-of-replay) the
   replayer mirrors the generative mutator's emissions itself. *)
let tracer t = Sim.tracer (Api.sim t.api)

let finish_engine t =
  Api.finish t.api;
  t.finished <- true

(* Bookkeeping shared by both loops after a successful Alloc replay. *)
let install_alloc t id (obj : Obj_model.t) ~large =
  if id >= Array.length t.map then begin
    let m = Array.make (max (2 * Array.length t.map) (id + 1)) t.none in
    Array.blit t.map 0 m 0 (Array.length t.map);
    t.map <- m
  end;
  t.map.(id) <- obj;
  let rid = obj.Obj_model.id in
  if rid >= Array.length t.rev then begin
    let r = Array.make (max (2 * Array.length t.rev) (rid + 1)) 0 in
    Array.blit t.rev 0 r 0 (Array.length t.rev);
    t.rev <- r
  end;
  t.rev.(rid) <- id;
  if large && t.measuring then t.large_bytes <- t.large_bytes + obj.Obj_model.size

let alloc_failed_anomaly t size =
  t.anomalies <-
    Printf.sprintf
      "event %d: allocation of %d bytes succeeded; it failed during recording"
      t.idx size
    :: t.anomalies

(* The generic dispatch: one match on the ring tag, operands read
   straight from the flat arrays. This is the reference loop — the
   differ steps it in lockstep, fault-injected replays use it, and the
   specialised loop below must match it bit for bit. *)
let apply_tag t i tag =
  let g = t.ring in
  match tag with
  | 1 (* alloc *) -> (
    let size = g.Trace_format.op2.(i) in
    let packed = g.Trace_format.op3.(i) in
    match Api.try_alloc t.api ~size ~nfields:(packed lsr 1) with
    | `Ok obj ->
      install_alloc t g.Trace_format.op1.(i) obj ~large:(packed land 1 <> 0)
    | `Oom info ->
      (* Divergence from the recording: this allocation succeeded live.
         Halt, exactly as the generative mutator unwinds on OOM. *)
      t.oom <- Some info;
      t.halted <- true;
      finish_engine t)
  | 2 (* alloc_failed *) -> (
    let size = g.Trace_format.op1.(i) in
    match Api.try_alloc t.api ~size ~nfields:g.Trace_format.op2.(i) with
    | `Oom info -> t.oom <- Some info
    | `Ok _ -> alloc_failed_anomaly t size)
  | 3 (* write *) ->
    let rvalue = map_ref t g.Trace_format.op3.(i) in
    Api.write t.api
      (lookup t g.Trace_format.op1.(i) "write")
      g.Trace_format.op2.(i) rvalue
  | 4 (* read *) ->
    ignore
      (Api.read t.api (lookup t g.Trace_format.op1.(i) "read") g.Trace_format.op2.(i))
  | 5 (* root *) ->
    let rvalue = map_ref t g.Trace_format.op2.(i) in
    Api.set_root t.api g.Trace_format.op1.(i) rvalue
  | 6 (* work *) -> Api.work t.api ~ns:g.Trace_format.fop.(i)
  | 7 (* safepoint *) -> Api.safepoint t.api
  | 8 (* request_start *) ->
    let gap = g.Trace_format.fop.(i) in
    let tr = tracer t in
    if Tracer.active tr then tr.Tracer.request_start ~gap;
    (* The live engine bases the metered schedule on the simulator clock
       when the request loop starts, then accumulates the recorded gaps —
       so arrivals adapt to how fast *this* collector got through setup,
       exactly as a live run would. *)
    if not t.saw_request then t.arrival <- Sim.now (Api.sim t.api);
    t.arrival <- t.arrival +. gap;
    t.saw_request <- true;
    if Sim.now (Api.sim t.api) < t.arrival then Api.idle_until t.api t.arrival
  | 9 (* request_end *) ->
    let metered = Sim.now (Api.sim t.api) -. t.arrival in
    Repro_util.Histogram.record t.hist (int_of_float (Float.max 1.0 metered));
    t.requests <- t.requests + 1;
    let tr = tracer t in
    if Tracer.active tr then tr.Tracer.request_end ()
  | 10 (* measurement_start *) ->
    let tr = tracer t in
    if Tracer.active tr then tr.Tracer.measurement_start ();
    t.on_measurement_start ();
    t.measuring <- true;
    t.survived_bytes <- 0;
    t.large_bytes <- 0
  | 11 (* survived *) ->
    let bytes = g.Trace_format.op1.(i) in
    t.survived_bytes <- t.survived_bytes + bytes;
    let tr = tracer t in
    if Tracer.active tr then tr.Tracer.survived ~bytes
  | 12 (* finish *) -> finish_engine t
  | _ -> assert false (* decode validated every tag *)

let step t =
  if t.halted || t.finished || t.idx >= t.ring.Trace_format.count then false
  else begin
    apply_tag t t.idx (Char.code (Bytes.unsafe_get t.ring.Trace_format.tags t.idx));
    t.idx <- t.idx + 1;
    not (t.halted || t.finished)
  end

let generic_loop t =
  while step t do
    ()
  done

(* The specialised loop. Everything the per-event path needs is hoisted
   into locals before entering: the live [Sim.hot] record (charges become
   plain unboxed float stores), the precomputed charge sums, the
   collector's write hook and barrier extras, the tracer, the root array
   and the translation map. The body then mirrors [Api.write]/[read]/
   [try_alloc]/[set_root]/[work] *exactly* — same charge order, same
   tracer emission order, same error paths — minus the per-call loads
   and boxing the generic path pays. Fault injection is the one thing it
   does not replicate, so [run] selects it only when no injector is
   installed (faults and tracer are fixed before stepping begins, making
   the up-front selection sound). *)
let fast_loop t =
  let api = t.api in
  let sim = Api.sim api in
  let g = t.ring in
  let tags = g.Trace_format.tags in
  let op1 = g.Trace_format.op1
  and op2 = g.Trace_format.op2
  and op3 = g.Trace_format.op3
  and fop = g.Trace_format.fop in
  let n = g.Trace_format.count in
  let h = Sim.hot sim in
  let collector = Api.collector api in
  let on_write = collector.Collector.on_write in
  let write_extra = collector.Collector.write_extra_ns in
  let read_extra = collector.Collector.read_extra_ns in
  let c = Sim.cost sim in
  let write_charge = c.Cost_model.write_ns +. write_extra in
  let read_charge = c.Cost_model.read_ns +. read_extra in
  let root_charge = c.Cost_model.write_ns in
  let thr = Api.flush_threshold api in
  let tr = Sim.tracer sim in
  let traced = Tracer.active tr in
  let roots = Api.roots api in
  let los_threshold = (Api.heap api).Heap.cfg.Heap_config.los_threshold in
  (* [map] is presized from the ring's alloc stats, so recorded alloc ids
     always fit and the array is never replaced under us. *)
  let map = t.map in
  let mlen = Array.length map in
  let none = t.none in
  while (not (t.halted || t.finished)) && t.idx < n do
    let i = t.idx in
    let tag = Char.code (Bytes.unsafe_get tags i) in
    (match tag with
    | 4 (* read *) ->
      let src = Array.unsafe_get op1 i in
      let obj = if src >= 0 && src < mlen then Array.unsafe_get map src else none in
      if obj.Obj_model.id = null then unknown t "read" src;
      let field = Array.unsafe_get op2 i in
      if traced then tr.Tracer.read ~src:obj.Obj_model.id ~field;
      h.Sim.pending <- h.Sim.pending +. read_charge;
      if read_extra > 0.0 then h.Sim.d_barrier <- h.Sim.d_barrier +. read_extra;
      if h.Sim.pending >= thr then Api.flush api;
      ignore (Obj_model.field obj field)
    | 3 (* write *) ->
      let value = Array.unsafe_get op3 i in
      let rvalue =
        if value = null then null
        else begin
          let vobj =
            if value >= 0 && value < mlen then Array.unsafe_get map value else none
          in
          if vobj.Obj_model.id = null then unknown t "store" value;
          vobj.Obj_model.id
        end
      in
      let src = Array.unsafe_get op1 i in
      let obj = if src >= 0 && src < mlen then Array.unsafe_get map src else none in
      if obj.Obj_model.id = null then unknown t "write" src;
      let field = Array.unsafe_get op2 i in
      if traced then tr.Tracer.write ~src:obj.Obj_model.id ~field ~value:rvalue;
      h.Sim.pending <- h.Sim.pending +. write_charge;
      if write_extra > 0.0 then h.Sim.d_barrier <- h.Sim.d_barrier +. write_extra;
      on_write obj field rvalue;
      Obj_model.set_field obj field rvalue;
      if h.Sim.pending >= thr then Api.flush api
    | 1 (* alloc *) ->
      let size = Array.unsafe_get op2 i in
      let packed = Array.unsafe_get op3 i in
      let nfields = packed lsr 1 in
      let obj = Api.alloc_fast api ~size ~nfields in
      if obj.Obj_model.id <> null then begin
        if traced then
          tr.Tracer.alloc ~id:obj.Obj_model.id ~size ~nfields
            ~large:(size > los_threshold);
        install_alloc t (Array.unsafe_get op1 i) obj ~large:(packed land 1 <> 0)
      end
      else begin
        if traced then tr.Tracer.alloc_failed ~size ~nfields;
        t.oom <- Some (Api.last_oom api);
        t.halted <- true;
        finish_engine t
      end
    | 2 (* alloc_failed *) ->
      let size = Array.unsafe_get op1 i in
      let nfields = Array.unsafe_get op2 i in
      let obj = Api.alloc_fast api ~size ~nfields in
      if obj.Obj_model.id = null then begin
        if traced then tr.Tracer.alloc_failed ~size ~nfields;
        t.oom <- Some (Api.last_oom api)
      end
      else begin
        if traced then
          tr.Tracer.alloc ~id:obj.Obj_model.id ~size ~nfields
            ~large:(size > los_threshold);
        alloc_failed_anomaly t size
      end
    | 5 (* root *) ->
      let value = Array.unsafe_get op2 i in
      let rvalue =
        if value = null then null
        else begin
          let vobj =
            if value >= 0 && value < mlen then Array.unsafe_get map value else none
          in
          if vobj.Obj_model.id = null then unknown t "store" value;
          vobj.Obj_model.id
        end
      in
      let slot = Array.unsafe_get op1 i in
      if traced then tr.Tracer.root ~slot ~value:rvalue;
      h.Sim.pending <- h.Sim.pending +. root_charge;
      roots.(slot) <- rvalue
    | 6 (* work *) ->
      let ns = Array.unsafe_get fop i in
      if traced then tr.Tracer.work ~ns;
      h.Sim.pending <- h.Sim.pending +. ns;
      if h.Sim.pending >= thr then Api.flush api
    | tag -> apply_tag t i tag);
    t.idx <- i + 1
  done

let output t : Repro_mutator.Mut_engine.output =
  let oom = Option.map Api.describe_oom t.oom in
  let latency, requests =
    if t.oom <> None then (None, 0)
    else if t.saw_request then (Some t.hist, t.requests)
    else (None, 0)
  in
  { latency;
    requests;
    survived_bytes = t.survived_bytes;
    large_bytes = t.large_bytes;
    oom }

let run ?on_measurement_start ?(loop = `Auto) api trace =
  let t = create ?on_measurement_start api trace in
  (match loop with
  | `Generic -> generic_loop t
  | `Auto ->
    (* Fault injection hooks into the generic path; everything else can
       take the specialised loop (including record-of-replay — the fast
       loop re-emits tracer events itself). *)
    if Fault.active (Sim.faults (Api.sim api)) then generic_loop t
    else fast_loop t);
  (* A well-formed trace ends in [Finish]; tolerate streams that stop
     short (e.g. assembled by tests) by finishing the collector so the
     accounting is complete either way. *)
  if not t.finished then finish_engine t;
  output t
