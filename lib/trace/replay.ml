open Repro_engine
open Repro_heap

exception Error of string

let null = Obj_model.null

type t = {
  api : Api.t;
  trace : Trace_format.t;
  on_measurement_start : unit -> unit;
  (* recorded id -> replay object, and replay id -> recorded id. Both
     id spaces are dense monotonic allocation sequences, so the maps are
     flat arrays indexed by id (checked, doubling growth) rather than
     hashtables — the translation sits on the hot path of every replayed
     write/read/root event. *)
  mutable map : Obj_model.t option array;
  mutable rev : int array;
  hist : Repro_util.Histogram.t;
  mutable idx : int;
  mutable arrival : float;
  mutable requests : int;
  mutable saw_request : bool;
  mutable measuring : bool;
  mutable survived_bytes : int;
  mutable large_bytes : int;
  mutable oom : Api.oom_info option;
  mutable halted : bool;
  mutable finished : bool;
  mutable anomalies : string list;
}

let create ?(on_measurement_start = fun () -> ()) api trace =
  { api;
    trace;
    on_measurement_start;
    map = Array.make 4096 None;
    rev = Array.make 4096 0;
    hist = Repro_util.Histogram.create ();
    idx = 0;
    arrival = 0.0;
    requests = 0;
    saw_request = false;
    measuring = false;
    survived_bytes = 0;
    large_bytes = 0;
    oom = None;
    halted = false;
    finished = false;
    anomalies = [] }

let event_index t = t.idx
let halted t = t.halted
let oom t = t.oom
let anomalies t = List.rev t.anomalies
let recorded_id t ~replay_id =
  if replay_id >= 0 && replay_id < Array.length t.rev && t.rev.(replay_id) <> 0
  then Some t.rev.(replay_id)
  else None

let map_find t recorded =
  if recorded >= 0 && recorded < Array.length t.map then t.map.(recorded)
  else None

let replay_obj t recorded =
  match map_find t recorded with
  | Some obj when not (Obj_model.is_freed obj) -> Some obj
  | Some _ | None -> None

let lookup t recorded what =
  match map_find t recorded with
  | Some obj -> obj
  | None ->
    raise
      (Error
         (Printf.sprintf "event %d: %s references unknown object %d" t.idx what
            recorded))

(* Stored reference values are plain ids; null passes through. *)
let map_ref t v = if v = null then null else (lookup t v "store").Obj_model.id

(* The mutator-level markers are not re-emitted by [Api], so when a
   recorder is attached to the replay run (record-of-replay) the
   replayer mirrors the generative mutator's emissions itself. *)
let tracer t = Sim.tracer (Api.sim t.api)

let finish_engine t =
  Api.finish t.api;
  t.finished <- true

let apply t ev =
  match (ev : Trace_format.event) with
  | Alloc { id; size; nfields; large } -> (
    match Api.try_alloc t.api ~size ~nfields with
    | `Ok obj ->
      if id >= Array.length t.map then begin
        let m = Array.make (max (2 * Array.length t.map) (id + 1)) None in
        Array.blit t.map 0 m 0 (Array.length t.map);
        t.map <- m
      end;
      t.map.(id) <- Some obj;
      let rid = obj.Obj_model.id in
      if rid >= Array.length t.rev then begin
        let r = Array.make (max (2 * Array.length t.rev) (rid + 1)) 0 in
        Array.blit t.rev 0 r 0 (Array.length t.rev);
        t.rev <- r
      end;
      t.rev.(rid) <- id;
      if large && t.measuring then t.large_bytes <- t.large_bytes + obj.size
    | `Oom info ->
      (* Divergence from the recording: this allocation succeeded live.
         Halt, exactly as the generative mutator unwinds on OOM. *)
      t.oom <- Some info;
      t.halted <- true;
      finish_engine t)
  | Alloc_failed { size; nfields } -> (
    match Api.try_alloc t.api ~size ~nfields with
    | `Oom info -> t.oom <- Some info
    | `Ok _ ->
      t.anomalies <-
        Printf.sprintf
          "event %d: allocation of %d bytes succeeded; it failed during recording"
          t.idx size
        :: t.anomalies)
  | Write { src; field; value } ->
    Api.write t.api (lookup t src "write") field (map_ref t value)
  | Read { src; field } -> ignore (Api.read t.api (lookup t src "read") field)
  | Root { slot; value } -> Api.set_root t.api slot (map_ref t value)
  | Work { ns } -> Api.work t.api ~ns
  | Safepoint -> Api.safepoint t.api
  | Request_start { gap } ->
    let tr = tracer t in
    if Tracer.active tr then tr.Tracer.request_start ~gap;
    (* The live engine bases the metered schedule on the simulator clock
       when the request loop starts, then accumulates the recorded gaps —
       so arrivals adapt to how fast *this* collector got through setup,
       exactly as a live run would. *)
    if not t.saw_request then t.arrival <- Sim.now (Api.sim t.api);
    t.arrival <- t.arrival +. gap;
    t.saw_request <- true;
    if Sim.now (Api.sim t.api) < t.arrival then Api.idle_until t.api t.arrival
  | Request_end ->
    let metered = Sim.now (Api.sim t.api) -. t.arrival in
    Repro_util.Histogram.record t.hist (int_of_float (Float.max 1.0 metered));
    t.requests <- t.requests + 1;
    let tr = tracer t in
    if Tracer.active tr then tr.Tracer.request_end ()
  | Measurement_start ->
    let tr = tracer t in
    if Tracer.active tr then tr.Tracer.measurement_start ();
    t.on_measurement_start ();
    t.measuring <- true;
    t.survived_bytes <- 0;
    t.large_bytes <- 0
  | Survived { bytes } ->
    t.survived_bytes <- t.survived_bytes + bytes;
    let tr = tracer t in
    if Tracer.active tr then tr.Tracer.survived ~bytes
  | Finish -> finish_engine t

let step t =
  if t.halted || t.finished || t.idx >= Array.length t.trace.Trace_format.events
  then false
  else begin
    let ev = t.trace.Trace_format.events.(t.idx) in
    apply t ev;
    t.idx <- t.idx + 1;
    not (t.halted || t.finished)
  end

let output t : Repro_mutator.Mut_engine.output =
  let oom = Option.map Api.describe_oom t.oom in
  let latency, requests =
    if t.oom <> None then (None, 0)
    else if t.saw_request then (Some t.hist, t.requests)
    else (None, 0)
  in
  { latency;
    requests;
    survived_bytes = t.survived_bytes;
    large_bytes = t.large_bytes;
    oom }

let run ?on_measurement_start api trace =
  let t = create ?on_measurement_start api trace in
  while step t do
    ()
  done;
  (* A well-formed trace ends in [Finish]; tolerate streams that stop
     short (e.g. assembled by tests) by finishing the collector so the
     accounting is complete either way. *)
  if not t.finished then finish_engine t;
  output t
