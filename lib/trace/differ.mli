(** Cross-collector differential testing over a recorded trace.

    Replays one trace through N collectors in lockstep — every collector
    applies event [k] before any applies event [k+1] — and cross-checks
    them at every checkpoint: each explicit safepoint marker, the finish
    marker, and (for throughput traces, which carry no explicit
    safepoints) every [every] events. At a checkpoint the driver
    compares, across collectors, the *recorded-id* live set reachable
    from the roots (mutator-determined, so any disagreement means some
    collector freed a reachable object or resurrected a dead one) and
    the replayed survived-byte counters, and optionally runs the
    [lib/verify] heap-integrity oracle against every collector's heap.

    The report localises the first divergence — event index plus the
    smallest disagreeing object id — rather than reducing to pass/fail,
    which is what makes a failing differential run debuggable. *)

type divergence = {
  event_index : int;  (** index of the last applied event *)
  checkpoint : int;  (** ordinal of the checkpoint that caught it *)
  kind : string;  (** ["live-set"], ["survived-bytes"], ["oracle"], ["oom"] *)
  subject : string;  (** e.g. ["object 1042"] — what disagrees *)
  detail : string;  (** per-collector expected/found rendering *)
}

type report = {
  trace_events : int;
  collectors : string list;  (** display names, in replay order *)
  skipped : (string * string) list;
      (** lanes dropped before replay because the collector refused the
          trace's heap geometry (e.g. ZGC's minimum heap), as
          [(label, reason)] — a collector property, not a divergence *)
  checkpoints : int;  (** checkpoints fully evaluated *)
  divergences : divergence list;  (** detection order, bounded *)
  total_divergences : int;
  oracle_checks : int;  (** per-collector oracle runs performed *)
}

val divergence_to_string : divergence -> string

(** One-line summary plus one line per retained divergence. *)
val report_to_string : report -> string

(** [run ~trace ~collectors ()] drives the lockstep replay.

    [verify] enables the per-collector integrity oracle at checkpoints.
    [every] adds a checkpoint after every [every] events (default 4096;
    [0] disables interval checkpoints). [inject] attaches a fault
    injector to the named collector's run — the supported way to
    demonstrate that an induced divergence is caught and localised.
    [max_divergences] bounds retained (not counted) divergences; the
    drive stops early once reached (default 8). Replay under each
    collector uses the trace header's heap geometry and the default cost
    model. [gc_threads] (default 1) sizes each lane's host-side
    work-packet pool ({!Repro_par.Par}); checkpoints — like every other
    observable — are bit-identical for every value. A collector that
    refuses that geometry
    ({!Repro_collectors.Conc_mark_evac.Unsupported}) is reported in
    [skipped] and the remaining lanes are diffed; the exception
    propagates only when every requested collector refuses. *)
val run :
  ?verify:bool ->
  ?every:int ->
  ?max_divergences:int ->
  ?inject:string * Repro_engine.Fault.t ->
  ?gc_threads:int ->
  trace:Trace_format.t ->
  collectors:(string * Repro_engine.Collector.factory) list ->
  unit ->
  report
