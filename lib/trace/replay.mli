(** Trace replayer: drives a collector from a recorded event stream with
    no generative mutator in the loop.

    Recorded object ids are mapped to the replay run's registry ids as
    allocations are re-executed (under the same collector the two id
    spaces coincide, but the map makes replay collector-agnostic), and
    every recorded operation is re-issued through {!Repro_engine.Api} so
    barriers, safepoints, cost charging, and concurrent GC progress all
    happen exactly as they would under the generative mutator. Replaying
    a trace under the collector and seed it was recorded from therefore
    reproduces the live run's metrics bit for bit — and replaying it
    under a different collector shows what that collector would have done
    with the *identical* mutator work, which is the property
    cross-collector comparison needs.

    If an allocation that succeeded during recording exhausts the
    degradation ladder during replay (e.g. a trace recorded at 3x heap
    replayed through a semispace collector), the replayer halts at that
    event, reports the OOM in its output, and finishes the collector —
    mirroring what the generative mutator does. *)

exception Error of string
(** Raised on traces that reference unknown object ids or otherwise
    cannot be applied (should only happen for hand-corrupted streams —
    {!Trace_format.of_string} already rejects damaged files). *)

type t

(** Which inner loop {!run} drives. [`Auto] (the default) selects the
    specialised zero-allocation loop when no fault injector is installed
    and falls back to the generic loop otherwise; [`Generic] forces the
    reference loop (the bit-identity regression lane compares the two).
    Both produce identical metrics and record-of-replay bytes. *)
type loop = [ `Auto | `Generic ]

(** [create ?on_measurement_start api trace] prepares a step-wise replay
    session. [on_measurement_start] fires when the measurement-start
    marker is replayed (the harness resets its accumulators there, as in
    the live run). *)
val create :
  ?on_measurement_start:(unit -> unit) -> Repro_engine.Api.t -> Trace_format.t -> t

(** [step t] applies the next event; [false] when the stream is done
    (or the replay halted on OOM). *)
val step : t -> bool

(** Index of the next event to apply (= number applied so far). *)
val event_index : t -> int

(** The replay halted early because an allocation that succeeded during
    recording exhausted the ladder here. *)
val halted : t -> bool

val oom : t -> Repro_engine.Api.oom_info option

(** Anomalies observed so far (e.g. an [Alloc_failed] event whose
    allocation unexpectedly succeeded under this collector) — empty when
    replaying under the recording conditions. *)
val anomalies : t -> string list

(** [recorded_id t ~replay_id] translates a registry id of this replay
    run back to the recorded id space — how the differential driver
    compares live sets across collectors. [None] for ids the trace never
    allocated. *)
val recorded_id : t -> replay_id:int -> int option

(** The replay-side registry id for a recorded id, if it has been
    allocated (and not freed) in this run. *)
val replay_obj : t -> int -> Repro_heap.Obj_model.t option

(** Output in {!Repro_mutator.Mut_engine.output} form, valid once
    stepping is complete; mirrors the generative mutator's reporting
    (OOM runs report no latency and partial counters). *)
val output : t -> Repro_mutator.Mut_engine.output

(** [run ?on_measurement_start ?loop api trace] steps the whole trace
    and returns the output. *)
val run :
  ?on_measurement_start:(unit -> unit) ->
  ?loop:loop ->
  Repro_engine.Api.t ->
  Trace_format.t ->
  Repro_mutator.Mut_engine.output
