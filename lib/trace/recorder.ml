open Repro_engine

type t = {
  mutable workload : string;
  mutable collector : string;
  seed : int;
  scale : float;
  heap_factor : float;
  cfg : Repro_heap.Heap_config.t;
  events : Buffer.t;
  mutable count : int;
}

let create ?(collector = "?") ~workload ~seed ~scale ~heap_factor ~cfg () =
  { workload;
    collector;
    seed;
    scale;
    heap_factor;
    cfg;
    events = Buffer.create (64 * 1024);
    count = 0 }

let set_collector t name = t.collector <- name
let event_count t = t.count

let emit t ev =
  Trace_format.encode_event t.events ev;
  t.count <- t.count + 1

let tracer t =
  { Tracer.alloc =
      (fun ~id ~size ~nfields ~large ->
        emit t (Trace_format.Alloc { id; size; nfields; large }));
    alloc_failed =
      (fun ~size ~nfields -> emit t (Trace_format.Alloc_failed { size; nfields }));
    write =
      (fun ~src ~field ~value -> emit t (Trace_format.Write { src; field; value }));
    read = (fun ~src ~field -> emit t (Trace_format.Read { src; field }));
    root = (fun ~slot ~value -> emit t (Trace_format.Root { slot; value }));
    work = (fun ~ns -> emit t (Trace_format.Work { ns }));
    safepoint = (fun () -> emit t Trace_format.Safepoint);
    request_start =
      (fun ~gap -> emit t (Trace_format.Request_start { gap }));
    request_end = (fun () -> emit t Trace_format.Request_end);
    measurement_start = (fun () -> emit t Trace_format.Measurement_start);
    survived = (fun ~bytes -> emit t (Trace_format.Survived { bytes }));
    finish = (fun () -> emit t Trace_format.Finish) }

let contents t =
  let header =
    Trace_format.make_header ~workload:t.workload ~collector:t.collector
      ~seed:t.seed ~scale:t.scale ~heap_factor:t.heap_factor ~cfg:t.cfg
  in
  let header_buf = Buffer.create 64 in
  Trace_format.encode_header header_buf header;
  Trace_format.assemble ~header_buf ~events_buf:t.events ~count:t.count

let save t path = Trace_format.write_string_to_file (contents t) path
