type header = {
  version : int;
  workload : string;
  collector : string;
  seed : int;
  scale : float;
  heap_factor : float;
  heap_bytes : int;
  block_bytes : int;
  line_bytes : int;
  granule_bytes : int;
  rc_bits : int;
  los_threshold : int;
  free_buffer_entries : int;
}

type event =
  | Alloc of { id : int; size : int; nfields : int; large : bool }
  | Alloc_failed of { size : int; nfields : int }
  | Write of { src : int; field : int; value : int }
  | Read of { src : int; field : int }
  | Root of { slot : int; value : int }
  | Work of { ns : float }
  | Safepoint
  | Request_start of { gap : float }
  | Request_end
  | Measurement_start
  | Survived of { bytes : int }
  | Finish

(* The in-memory representation is a flat struct-of-arrays ring rather
   than an array of boxed [event]s: one dense tag byte per event plus
   parallel operand arrays, batch-decoded once at load. The replay inner
   loop dispatches on the tag byte and reads operands straight from the
   ring — no per-event pointer chase, no variant allocation. The boxed
   [event] variant survives only as a view ({!event}/{!events}) for the
   differ, [stat] and tests.

   Operand packing (unused slots stay 0 / 0.0):
     tag              op1    op2      op3                        fop
     alloc            id     size     nfields lsl 1 lor large    -
     alloc_failed     size   nfields  -                          -
     write            src    field    value                      -
     read             src    field    -                          -
     root             slot   value    -                          -
     work             -      -        -                          ns
     request_start    -      -        -                          gap
     survived         bytes  -        -                          -
     (safepoint, request_end, measurement_start, finish: no operands) *)
type ring = {
  count : int;
  tags : Bytes.t;
  op1 : int array;
  op2 : int array;
  op3 : int array;
  fop : float array;
}

type t = { header : header; ring : ring }

let magic = "LXRTRACE"
let current_version = 1

(* Event tags. Tag 0 is the end-of-stream marker that introduces the
   trailer, so a zeroed file can never parse as an empty trace. *)
let tag_end = 0
let tag_alloc = 1
let tag_alloc_failed = 2
let tag_write = 3
let tag_read = 4
let tag_root = 5
let tag_work = 6
let tag_safepoint = 7
let tag_request_start = 8
let tag_request_end = 9
let tag_measurement_start = 10
let tag_survived = 11
let tag_finish = 12

let event_name = function
  | Alloc _ -> "alloc"
  | Alloc_failed _ -> "alloc-failed"
  | Write _ -> "write"
  | Read _ -> "read"
  | Root _ -> "root"
  | Work _ -> "work"
  | Safepoint -> "safepoint"
  | Request_start _ -> "request-start"
  | Request_end -> "request-end"
  | Measurement_start -> "measurement-start"
  | Survived _ -> "survived"
  | Finish -> "finish"

(* --- Ring view --------------------------------------------------------- *)

let num_events t = t.ring.count
let ring t = t.ring
let tag_at t i = Char.code (Bytes.unsafe_get t.ring.tags i)

let event t i =
  let g = t.ring in
  if i < 0 || i >= g.count then invalid_arg "Trace_format.event: index out of bounds";
  let tag = Char.code (Bytes.get g.tags i) in
  if tag = tag_alloc then
    Alloc
      { id = g.op1.(i);
        size = g.op2.(i);
        nfields = g.op3.(i) lsr 1;
        large = g.op3.(i) land 1 <> 0 }
  else if tag = tag_alloc_failed then
    Alloc_failed { size = g.op1.(i); nfields = g.op2.(i) }
  else if tag = tag_write then
    Write { src = g.op1.(i); field = g.op2.(i); value = g.op3.(i) }
  else if tag = tag_read then Read { src = g.op1.(i); field = g.op2.(i) }
  else if tag = tag_root then Root { slot = g.op1.(i); value = g.op2.(i) }
  else if tag = tag_work then Work { ns = g.fop.(i) }
  else if tag = tag_safepoint then Safepoint
  else if tag = tag_request_start then Request_start { gap = g.fop.(i) }
  else if tag = tag_request_end then Request_end
  else if tag = tag_measurement_start then Measurement_start
  else if tag = tag_survived then Survived { bytes = g.op1.(i) }
  else if tag = tag_finish then Finish
  else assert false (* decode validated every tag *)

let events t = Array.init t.ring.count (event t)

let ring_of_events evs =
  let count = Array.length evs in
  let tags = Bytes.make count '\000' in
  let op1 = Array.make count 0 in
  let op2 = Array.make count 0 in
  let op3 = Array.make count 0 in
  let fop = Array.make count 0.0 in
  Array.iteri
    (fun i e ->
      let tag =
        match e with
        | Alloc { id; size; nfields; large } ->
          op1.(i) <- id;
          op2.(i) <- size;
          op3.(i) <- (nfields lsl 1) lor (if large then 1 else 0);
          tag_alloc
        | Alloc_failed { size; nfields } ->
          op1.(i) <- size;
          op2.(i) <- nfields;
          tag_alloc_failed
        | Write { src; field; value } ->
          op1.(i) <- src;
          op2.(i) <- field;
          op3.(i) <- value;
          tag_write
        | Read { src; field } ->
          op1.(i) <- src;
          op2.(i) <- field;
          tag_read
        | Root { slot; value } ->
          op1.(i) <- slot;
          op2.(i) <- value;
          tag_root
        | Work { ns } ->
          fop.(i) <- ns;
          tag_work
        | Safepoint -> tag_safepoint
        | Request_start { gap } ->
          fop.(i) <- gap;
          tag_request_start
        | Request_end -> tag_request_end
        | Measurement_start -> tag_measurement_start
        | Survived { bytes } ->
          op1.(i) <- bytes;
          tag_survived
        | Finish -> tag_finish
      in
      Bytes.set tags i (Char.chr tag))
    evs;
  { count; tags; op1; op2; op3; fop }

let of_events header evs = { header; ring = ring_of_events evs }

(* Registry-presizing statistics for the replayer: (number of Alloc
   events, highest recorded allocation id). One cheap linear scan. *)
let alloc_stats t =
  let g = t.ring in
  let n = ref 0 and max_id = ref 0 in
  for i = 0 to g.count - 1 do
    if Char.code (Bytes.unsafe_get g.tags i) = tag_alloc then begin
      incr n;
      if g.op1.(i) > !max_id then max_id := g.op1.(i)
    end
  done;
  (!n, !max_id)

(* --- Primitive encoders ------------------------------------------------ *)

(* Unsigned LEB128. Negative ints round-trip (as 10-byte encodings via
   the logical shift) but every field written here is non-negative. *)
let put_uv buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let put_f64 buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let put_string buf s =
  put_uv buf (String.length s);
  Buffer.add_string buf s

(* FNV-1a over a string region, 64-bit. *)
let fnv1a s ~pos ~len =
  let h = ref 0xcbf29ce484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

let put_fixed64 buf bits =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

(* --- Decoder state ----------------------------------------------------- *)

exception Malformed of string

type reader = { s : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.s then raise (Malformed "truncated trace")

let get_u8 r =
  need r 1;
  let c = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_uv r =
  let shift = ref 0 and acc = ref 0 and continue = ref true in
  while !continue do
    let b = get_u8 r in
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
    else if !shift > 70 then raise (Malformed "varint too long")
  done;
  !acc

let get_fixed64 r =
  need r 8;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits
        (Int64.shift_left (Int64.of_int (Char.code r.s.[r.pos + i])) (8 * i))
  done;
  r.pos <- r.pos + 8;
  !bits

let get_f64 r = Int64.float_of_bits (get_fixed64 r)

let get_string r =
  let len = get_uv r in
  need r len;
  let s = String.sub r.s r.pos len in
  r.pos <- r.pos + len;
  s

(* --- Header ------------------------------------------------------------ *)

let make_header ~workload ~collector ~seed ~scale ~heap_factor
    ~(cfg : Repro_heap.Heap_config.t) =
  { version = current_version;
    workload;
    collector;
    seed;
    scale;
    heap_factor;
    heap_bytes = cfg.heap_bytes;
    block_bytes = cfg.block_bytes;
    line_bytes = cfg.line_bytes;
    granule_bytes = cfg.granule_bytes;
    rc_bits = cfg.rc_bits;
    los_threshold = cfg.los_threshold;
    free_buffer_entries = cfg.free_buffer_entries }

let heap_config h =
  Repro_heap.Heap_config.make ~block_bytes:h.block_bytes ~line_bytes:h.line_bytes
    ~granule_bytes:h.granule_bytes ~rc_bits:h.rc_bits
    ~los_threshold:h.los_threshold ~free_buffer_entries:h.free_buffer_entries
    ~heap_bytes:h.heap_bytes ()

let encode_header buf h =
  put_uv buf h.version;
  put_string buf h.workload;
  put_string buf h.collector;
  put_uv buf h.seed;
  put_f64 buf h.scale;
  put_f64 buf h.heap_factor;
  put_uv buf h.heap_bytes;
  put_uv buf h.block_bytes;
  put_uv buf h.line_bytes;
  put_uv buf h.granule_bytes;
  put_uv buf h.rc_bits;
  put_uv buf h.los_threshold;
  put_uv buf h.free_buffer_entries

let decode_header r =
  let version = get_uv r in
  if version <> current_version then
    raise
      (Malformed
         (Printf.sprintf "unsupported trace version %d (reader supports %d)"
            version current_version));
  let workload = get_string r in
  let collector = get_string r in
  let seed = get_uv r in
  let scale = get_f64 r in
  let heap_factor = get_f64 r in
  let heap_bytes = get_uv r in
  let block_bytes = get_uv r in
  let line_bytes = get_uv r in
  let granule_bytes = get_uv r in
  let rc_bits = get_uv r in
  let los_threshold = get_uv r in
  let free_buffer_entries = get_uv r in
  { version; workload; collector; seed; scale; heap_factor; heap_bytes;
    block_bytes; line_bytes; granule_bytes; rc_bits; los_threshold;
    free_buffer_entries }

(* --- Events ------------------------------------------------------------ *)

let encode_event buf = function
  | Alloc { id; size; nfields; large } ->
    put_uv buf tag_alloc;
    put_uv buf id;
    put_uv buf size;
    put_uv buf nfields;
    Buffer.add_char buf (if large then '\001' else '\000')
  | Alloc_failed { size; nfields } ->
    put_uv buf tag_alloc_failed;
    put_uv buf size;
    put_uv buf nfields
  | Write { src; field; value } ->
    put_uv buf tag_write;
    put_uv buf src;
    put_uv buf field;
    put_uv buf value
  | Read { src; field } ->
    put_uv buf tag_read;
    put_uv buf src;
    put_uv buf field
  | Root { slot; value } ->
    put_uv buf tag_root;
    put_uv buf slot;
    put_uv buf value
  | Work { ns } ->
    put_uv buf tag_work;
    put_f64 buf ns
  | Safepoint -> put_uv buf tag_safepoint
  | Request_start { gap } ->
    put_uv buf tag_request_start;
    put_f64 buf gap
  | Request_end -> put_uv buf tag_request_end
  | Measurement_start -> put_uv buf tag_measurement_start
  | Survived { bytes } ->
    put_uv buf tag_survived;
    put_uv buf bytes
  | Finish -> put_uv buf tag_finish

(* Ring-sourced re-encode: byte-identical to [encode_event] over the
   boxed view, without materializing the view. *)
let encode_ring_event buf g i =
  let tag = Char.code (Bytes.get g.tags i) in
  put_uv buf tag;
  if tag = tag_alloc then begin
    put_uv buf g.op1.(i);
    put_uv buf g.op2.(i);
    put_uv buf (g.op3.(i) lsr 1);
    Buffer.add_char buf (if g.op3.(i) land 1 <> 0 then '\001' else '\000')
  end
  else if tag = tag_alloc_failed || tag = tag_write || tag = tag_read
          || tag = tag_root then begin
    put_uv buf g.op1.(i);
    put_uv buf g.op2.(i);
    if tag = tag_write then put_uv buf g.op3.(i)
  end
  else if tag = tag_work || tag = tag_request_start then put_f64 buf g.fop.(i)
  else if tag = tag_survived then put_uv buf g.op1.(i)

(* --- Whole-trace assembly --------------------------------------------- *)

let assemble ~header_buf ~events_buf ~count =
  let buf = Buffer.create (Buffer.length events_buf + 64) in
  Buffer.add_string buf magic;
  Buffer.add_buffer buf header_buf;
  Buffer.add_buffer buf events_buf;
  put_uv buf tag_end;
  put_uv buf count;
  (* Checksum covers everything written so far (magic included). *)
  let body = Buffer.contents buf in
  let h = fnv1a body ~pos:0 ~len:(String.length body) in
  put_fixed64 buf h;
  Buffer.contents buf

let to_string t =
  let header_buf = Buffer.create 64 in
  encode_header header_buf t.header;
  let events_buf = Buffer.create 4096 in
  for i = 0 to t.ring.count - 1 do
    encode_ring_event events_buf t.ring i
  done;
  assemble ~header_buf ~events_buf ~count:t.ring.count

let of_string s =
  try
    if String.length s < String.length magic + 9 then
      raise (Malformed "too short to be a trace");
    if String.sub s 0 (String.length magic) <> magic then
      raise (Malformed "bad magic (not an lxr_trace file)");
    let r = { s; pos = String.length magic } in
    let header = decode_header r in
    (* One-pass decode straight into the ring's growable flat arrays:
       allocation is O(events) words in a handful of doubling steps, not
       O(events) boxed variants consed onto a list. The densest events
       are ~2 bytes on the wire, so len/2 rarely needs to double. *)
    let cap = ref (max 16 ((String.length s - r.pos) / 2)) in
    let tags = ref (Bytes.make !cap '\000') in
    let op1 = ref (Array.make !cap 0) in
    let op2 = ref (Array.make !cap 0) in
    let op3 = ref (Array.make !cap 0) in
    let fop = ref (Array.make !cap 0.0) in
    let grow () =
      let c = !cap * 2 in
      let nt = Bytes.make c '\000' in
      Bytes.blit !tags 0 nt 0 !cap;
      tags := nt;
      let gi a =
        let na = Array.make c 0 in
        Array.blit !a 0 na 0 !cap;
        a := na
      in
      gi op1;
      gi op2;
      gi op3;
      let nf = Array.make c 0.0 in
      Array.blit !fop 0 nf 0 !cap;
      fop := nf;
      cap := c
    in
    let n = ref 0 in
    let continue = ref true in
    while !continue do
      let tag = get_uv r in
      if tag = tag_end then continue := false
      else begin
        if !n >= !cap then grow ();
        let i = !n in
        if tag = tag_alloc then begin
          let id = get_uv r in
          let size = get_uv r in
          let nfields = get_uv r in
          let large = get_u8 r <> 0 in
          !op1.(i) <- id;
          !op2.(i) <- size;
          !op3.(i) <- (nfields lsl 1) lor (if large then 1 else 0)
        end
        else if tag = tag_alloc_failed then begin
          let size = get_uv r in
          let nfields = get_uv r in
          !op1.(i) <- size;
          !op2.(i) <- nfields
        end
        else if tag = tag_write then begin
          let src = get_uv r in
          let field = get_uv r in
          let value = get_uv r in
          !op1.(i) <- src;
          !op2.(i) <- field;
          !op3.(i) <- value
        end
        else if tag = tag_read then begin
          let src = get_uv r in
          let field = get_uv r in
          !op1.(i) <- src;
          !op2.(i) <- field
        end
        else if tag = tag_root then begin
          let slot = get_uv r in
          let value = get_uv r in
          !op1.(i) <- slot;
          !op2.(i) <- value
        end
        else if tag = tag_work then !fop.(i) <- get_f64 r
        else if tag = tag_safepoint then ()
        else if tag = tag_request_start then !fop.(i) <- get_f64 r
        else if tag = tag_request_end then ()
        else if tag = tag_measurement_start then ()
        else if tag = tag_survived then !op1.(i) <- get_uv r
        else if tag = tag_finish then ()
        else raise (Malformed (Printf.sprintf "unknown event tag %d" tag));
        Bytes.set !tags i (Char.chr tag);
        incr n
      end
    done;
    let declared = get_uv r in
    if declared <> !n then
      raise
        (Malformed
           (Printf.sprintf "event count mismatch: trailer says %d, stream has %d"
              declared !n));
    let body_len = r.pos in
    let declared_sum = get_fixed64 r in
    let actual_sum = fnv1a s ~pos:0 ~len:body_len in
    if declared_sum <> actual_sum then raise (Malformed "checksum mismatch");
    if r.pos <> String.length s then raise (Malformed "trailing garbage");
    let count = !n in
    let trim a = if Array.length a = count then a else Array.sub a 0 count in
    let ring =
      { count;
        tags = (if Bytes.length !tags = count then !tags else Bytes.sub !tags 0 count);
        op1 = trim !op1;
        op2 = trim !op2;
        op3 = trim !op3;
        fop =
          (if Array.length !fop = count then !fop else Array.sub !fop 0 count) }
    in
    Ok { header; ring }
  with Malformed msg -> Error msg

let write_string_to_file data path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let to_file t path = write_string_to_file (to_string t) path

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error "unreadable trace file"
