type header = {
  version : int;
  workload : string;
  collector : string;
  seed : int;
  scale : float;
  heap_factor : float;
  heap_bytes : int;
  block_bytes : int;
  line_bytes : int;
  granule_bytes : int;
  rc_bits : int;
  los_threshold : int;
  free_buffer_entries : int;
}

type event =
  | Alloc of { id : int; size : int; nfields : int; large : bool }
  | Alloc_failed of { size : int; nfields : int }
  | Write of { src : int; field : int; value : int }
  | Read of { src : int; field : int }
  | Root of { slot : int; value : int }
  | Work of { ns : float }
  | Safepoint
  | Request_start of { gap : float }
  | Request_end
  | Measurement_start
  | Survived of { bytes : int }
  | Finish

type t = { header : header; events : event array }

let magic = "LXRTRACE"
let current_version = 1

(* Event tags. Tag 0 is the end-of-stream marker that introduces the
   trailer, so a zeroed file can never parse as an empty trace. *)
let tag_end = 0
let tag_alloc = 1
let tag_alloc_failed = 2
let tag_write = 3
let tag_read = 4
let tag_root = 5
let tag_work = 6
let tag_safepoint = 7
let tag_request_start = 8
let tag_request_end = 9
let tag_measurement_start = 10
let tag_survived = 11
let tag_finish = 12

let event_name = function
  | Alloc _ -> "alloc"
  | Alloc_failed _ -> "alloc-failed"
  | Write _ -> "write"
  | Read _ -> "read"
  | Root _ -> "root"
  | Work _ -> "work"
  | Safepoint -> "safepoint"
  | Request_start _ -> "request-start"
  | Request_end -> "request-end"
  | Measurement_start -> "measurement-start"
  | Survived _ -> "survived"
  | Finish -> "finish"

(* --- Primitive encoders ------------------------------------------------ *)

(* Unsigned LEB128. Negative ints round-trip (as 10-byte encodings via
   the logical shift) but every field written here is non-negative. *)
let put_uv buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let put_f64 buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let put_string buf s =
  put_uv buf (String.length s);
  Buffer.add_string buf s

(* FNV-1a over a string region, 64-bit. *)
let fnv1a s ~pos ~len =
  let h = ref 0xcbf29ce484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

let put_fixed64 buf bits =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

(* --- Decoder state ----------------------------------------------------- *)

exception Malformed of string

type reader = { s : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.s then raise (Malformed "truncated trace")

let get_u8 r =
  need r 1;
  let c = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_uv r =
  let shift = ref 0 and acc = ref 0 and continue = ref true in
  while !continue do
    let b = get_u8 r in
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
    else if !shift > 70 then raise (Malformed "varint too long")
  done;
  !acc

let get_fixed64 r =
  need r 8;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits
        (Int64.shift_left (Int64.of_int (Char.code r.s.[r.pos + i])) (8 * i))
  done;
  r.pos <- r.pos + 8;
  !bits

let get_f64 r = Int64.float_of_bits (get_fixed64 r)

let get_string r =
  let len = get_uv r in
  need r len;
  let s = String.sub r.s r.pos len in
  r.pos <- r.pos + len;
  s

(* --- Header ------------------------------------------------------------ *)

let make_header ~workload ~collector ~seed ~scale ~heap_factor
    ~(cfg : Repro_heap.Heap_config.t) =
  { version = current_version;
    workload;
    collector;
    seed;
    scale;
    heap_factor;
    heap_bytes = cfg.heap_bytes;
    block_bytes = cfg.block_bytes;
    line_bytes = cfg.line_bytes;
    granule_bytes = cfg.granule_bytes;
    rc_bits = cfg.rc_bits;
    los_threshold = cfg.los_threshold;
    free_buffer_entries = cfg.free_buffer_entries }

let heap_config h =
  Repro_heap.Heap_config.make ~block_bytes:h.block_bytes ~line_bytes:h.line_bytes
    ~granule_bytes:h.granule_bytes ~rc_bits:h.rc_bits
    ~los_threshold:h.los_threshold ~free_buffer_entries:h.free_buffer_entries
    ~heap_bytes:h.heap_bytes ()

let encode_header buf h =
  put_uv buf h.version;
  put_string buf h.workload;
  put_string buf h.collector;
  put_uv buf h.seed;
  put_f64 buf h.scale;
  put_f64 buf h.heap_factor;
  put_uv buf h.heap_bytes;
  put_uv buf h.block_bytes;
  put_uv buf h.line_bytes;
  put_uv buf h.granule_bytes;
  put_uv buf h.rc_bits;
  put_uv buf h.los_threshold;
  put_uv buf h.free_buffer_entries

let decode_header r =
  let version = get_uv r in
  if version <> current_version then
    raise
      (Malformed
         (Printf.sprintf "unsupported trace version %d (reader supports %d)"
            version current_version));
  let workload = get_string r in
  let collector = get_string r in
  let seed = get_uv r in
  let scale = get_f64 r in
  let heap_factor = get_f64 r in
  let heap_bytes = get_uv r in
  let block_bytes = get_uv r in
  let line_bytes = get_uv r in
  let granule_bytes = get_uv r in
  let rc_bits = get_uv r in
  let los_threshold = get_uv r in
  let free_buffer_entries = get_uv r in
  { version; workload; collector; seed; scale; heap_factor; heap_bytes;
    block_bytes; line_bytes; granule_bytes; rc_bits; los_threshold;
    free_buffer_entries }

(* --- Events ------------------------------------------------------------ *)

let encode_event buf = function
  | Alloc { id; size; nfields; large } ->
    put_uv buf tag_alloc;
    put_uv buf id;
    put_uv buf size;
    put_uv buf nfields;
    Buffer.add_char buf (if large then '\001' else '\000')
  | Alloc_failed { size; nfields } ->
    put_uv buf tag_alloc_failed;
    put_uv buf size;
    put_uv buf nfields
  | Write { src; field; value } ->
    put_uv buf tag_write;
    put_uv buf src;
    put_uv buf field;
    put_uv buf value
  | Read { src; field } ->
    put_uv buf tag_read;
    put_uv buf src;
    put_uv buf field
  | Root { slot; value } ->
    put_uv buf tag_root;
    put_uv buf slot;
    put_uv buf value
  | Work { ns } ->
    put_uv buf tag_work;
    put_f64 buf ns
  | Safepoint -> put_uv buf tag_safepoint
  | Request_start { gap } ->
    put_uv buf tag_request_start;
    put_f64 buf gap
  | Request_end -> put_uv buf tag_request_end
  | Measurement_start -> put_uv buf tag_measurement_start
  | Survived { bytes } ->
    put_uv buf tag_survived;
    put_uv buf bytes
  | Finish -> put_uv buf tag_finish

let decode_event r tag =
  if tag = tag_alloc then begin
    let id = get_uv r in
    let size = get_uv r in
    let nfields = get_uv r in
    let large = get_u8 r <> 0 in
    Alloc { id; size; nfields; large }
  end
  else if tag = tag_alloc_failed then begin
    let size = get_uv r in
    let nfields = get_uv r in
    Alloc_failed { size; nfields }
  end
  else if tag = tag_write then begin
    let src = get_uv r in
    let field = get_uv r in
    let value = get_uv r in
    Write { src; field; value }
  end
  else if tag = tag_read then begin
    let src = get_uv r in
    let field = get_uv r in
    Read { src; field }
  end
  else if tag = tag_root then begin
    let slot = get_uv r in
    let value = get_uv r in
    Root { slot; value }
  end
  else if tag = tag_work then Work { ns = get_f64 r }
  else if tag = tag_safepoint then Safepoint
  else if tag = tag_request_start then Request_start { gap = get_f64 r }
  else if tag = tag_request_end then Request_end
  else if tag = tag_measurement_start then Measurement_start
  else if tag = tag_survived then Survived { bytes = get_uv r }
  else if tag = tag_finish then Finish
  else raise (Malformed (Printf.sprintf "unknown event tag %d" tag))

(* --- Whole-trace assembly --------------------------------------------- *)

let assemble ~header_buf ~events_buf ~count =
  let buf = Buffer.create (Buffer.length events_buf + 64) in
  Buffer.add_string buf magic;
  Buffer.add_buffer buf header_buf;
  Buffer.add_buffer buf events_buf;
  put_uv buf tag_end;
  put_uv buf count;
  (* Checksum covers everything written so far (magic included). *)
  let body = Buffer.contents buf in
  let h = fnv1a body ~pos:0 ~len:(String.length body) in
  put_fixed64 buf h;
  Buffer.contents buf

let to_string t =
  let header_buf = Buffer.create 64 in
  encode_header header_buf t.header;
  let events_buf = Buffer.create 4096 in
  Array.iter (encode_event events_buf) t.events;
  assemble ~header_buf ~events_buf ~count:(Array.length t.events)

let of_string s =
  try
    if String.length s < String.length magic + 9 then
      raise (Malformed "too short to be a trace");
    if String.sub s 0 (String.length magic) <> magic then
      raise (Malformed "bad magic (not an lxr_trace file)");
    let r = { s; pos = String.length magic } in
    let header = decode_header r in
    let events = ref [] in
    let n = ref 0 in
    let continue = ref true in
    while !continue do
      let tag = get_uv r in
      if tag = tag_end then continue := false
      else begin
        events := decode_event r tag :: !events;
        incr n
      end
    done;
    let declared = get_uv r in
    if declared <> !n then
      raise
        (Malformed
           (Printf.sprintf "event count mismatch: trailer says %d, stream has %d"
              declared !n));
    let body_len = r.pos in
    let declared_sum = get_fixed64 r in
    let actual_sum = fnv1a s ~pos:0 ~len:body_len in
    if declared_sum <> actual_sum then raise (Malformed "checksum mismatch");
    if r.pos <> String.length s then raise (Malformed "trailing garbage");
    let arr = Array.of_list (List.rev !events) in
    Ok { header; events = arr }
  with Malformed msg -> Error msg

let write_string_to_file data path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let to_file t path = write_string_to_file (to_string t) path

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error "unreadable trace file"
