open Repro_engine
open Repro_heap

let null = Obj_model.null

type divergence = {
  event_index : int;
  checkpoint : int;
  kind : string;
  subject : string;
  detail : string;
}

type report = {
  trace_events : int;
  collectors : string list;
  skipped : (string * string) list;
  checkpoints : int;
  divergences : divergence list;
  total_divergences : int;
  oracle_checks : int;
}

let divergence_to_string d =
  Printf.sprintf "event %d (checkpoint %d) [%s] %s: %s" d.event_index
    d.checkpoint d.kind d.subject d.detail

let report_to_string r =
  let head =
    Printf.sprintf
      "diff: %d collectors (%s), %d events, %d checkpoints, %d oracle checks: %s"
      (List.length r.collectors)
      (String.concat ", " r.collectors)
      r.trace_events r.checkpoints r.oracle_checks
      (if r.total_divergences = 0 then "no divergence"
       else Printf.sprintf "%d divergences" r.total_divergences)
  in
  let skips =
    List.map
      (fun (label, reason) ->
        Printf.sprintf "  skipped %s: %s" label reason)
      r.skipped
  in
  String.concat "\n"
    ((head :: skips)
    @ List.map (fun d -> "  " ^ divergence_to_string d) r.divergences)

type lane = { label : string; api : Api.t; rep : Replay.t }

(* The live set in *recorded* id space: reachability over the replay
   registry (mutator-determined, so it must agree across collectors),
   translated back through the replayer's id map. Ids the trace never
   allocated cannot be reachable — every object enters the heap through
   a replayed [Alloc] — so translation is total. *)
let live_set lane =
  let heap = Api.heap lane.api in
  let roots =
    Array.to_list (Api.roots lane.api) |> List.filter (fun id -> id <> null)
  in
  let reach = Obj_model.Registry.reachable_from heap.Heap.registry roots in
  let set = Hashtbl.create 256 in
  Mark_bitset.iter_marked reach (fun id ->
      match Replay.recorded_id lane.rep ~replay_id:id with
      | Some rid -> Hashtbl.replace set rid ()
      | None -> Hashtbl.replace set (-id) ());
  set

(* Ids present in [a] but not [b], ascending. *)
let missing_from a b =
  Hashtbl.fold (fun id () acc -> if Hashtbl.mem b id then acc else id :: acc) a []
  |> List.sort compare

let run ?(verify = false) ?(every = 4096) ?(max_divergences = 8) ?inject
    ?(gc_threads = 1) ~trace ~collectors () =
  let header = trace.Trace_format.header in
  let cfg = Trace_format.heap_config header in
  (* A collector may refuse the trace's heap geometry outright (ZGC has
     a minimum heap). That is a property of the collector, not a
     divergence: drop the lane, note why, and diff the rest. *)
  let skipped = ref [] in
  let lanes =
    List.filter_map
      (fun (label, factory) ->
        let heap = Heap.create cfg in
        let sim = Sim.create Cost_model.default in
        Sim.set_pool sim (Repro_par.Par.Pool.get ~threads:gc_threads);
        (match inject with
        | Some (target, fault) when String.lowercase_ascii target = String.lowercase_ascii label ->
          Sim.set_faults sim fault
        | Some _ | None -> ());
        match Api.create sim heap factory with
        | api -> Some { label; api; rep = Replay.create api trace }
        | exception Repro_collectors.Conc_mark_evac.Unsupported msg ->
          skipped := (label, msg) :: !skipped;
          None)
      collectors
  in
  let skipped = List.rev !skipped in
  if lanes = [] then
    raise
      (Repro_collectors.Conc_mark_evac.Unsupported
         (Printf.sprintf "every collector refused this trace (%s)"
            (String.concat "; "
               (List.map (fun (l, m) -> l ^ ": " ^ m) skipped))));
  let names =
    List.map (fun l -> (Api.collector l.api).Collector.name) lanes
  in
  let divergences = ref [] in
  let total = ref 0 in
  let checkpoints = ref 0 in
  let oracle_checks = ref 0 in
  let stop = ref false in
  let record_divergence d =
    incr total;
    if List.length !divergences < max_divergences then
      divergences := d :: !divergences;
    if !total >= max_divergences then stop := true
  in
  let n = Trace_format.num_events trace in
  let base = List.hd lanes in
  let check_lanes ~event_index =
    incr checkpoints;
    let cp = !checkpoints in
    (* Live-set agreement, every lane against the first. *)
    let base_set = live_set base in
    List.iter
      (fun lane ->
        if lane != base then begin
          let set = live_set lane in
          let only_base = missing_from base_set set in
          let only_lane = missing_from set base_set in
          (match (only_base, only_lane) with
          | [], [] -> ()
          | id :: _, _ ->
            record_divergence
              { event_index; checkpoint = cp; kind = "live-set";
                subject = Printf.sprintf "object %d" id;
                detail =
                  Printf.sprintf
                    "reachable under %s but not under %s (%d object(s) differ)"
                    base.label lane.label
                    (List.length only_base + List.length only_lane) }
          | [], id :: _ ->
            record_divergence
              { event_index; checkpoint = cp; kind = "live-set";
                subject = Printf.sprintf "object %d" id;
                detail =
                  Printf.sprintf
                    "reachable under %s but not under %s (%d object(s) differ)"
                    lane.label base.label (List.length only_lane) });
          let sb = (Replay.output base.rep).survived_bytes in
          let sl = (Replay.output lane.rep).survived_bytes in
          if sb <> sl then
            record_divergence
              { event_index; checkpoint = cp; kind = "survived-bytes";
                subject = "survived-byte counter";
                detail =
                  Printf.sprintf "%s counted %d, %s counted %d" base.label sb
                    lane.label sl }
        end)
      lanes;
    (* Heap-integrity oracle per lane. *)
    if verify then
      List.iter
        (fun lane ->
          incr oracle_checks;
          let viols =
            Repro_verify.Verifier.check_heap ~roots:(Api.roots lane.api)
              ~introspect:(Api.collector lane.api).Collector.introspect
              (Api.heap lane.api)
          in
          match viols with
          | [] -> ()
          | v :: _ ->
            record_divergence
              { event_index; checkpoint = cp; kind = "oracle";
                subject = Printf.sprintf "%s: %s" lane.label v.subject;
                detail =
                  Printf.sprintf "%s (%d violation(s) in total)"
                    (Repro_verify.Verifier.violation_to_string v)
                    (List.length viols) })
        lanes
  in
  let k = ref 0 in
  while (not !stop) && !k < n do
    List.iter (fun lane -> ignore (Replay.step lane.rep)) lanes;
    let event_index = !k in
    incr k;
    (* A lane that halts (ladder exhausted where the recording
       succeeded) cannot stay in lockstep; report and stop. *)
    let halted = List.filter (fun l -> Replay.halted l.rep) lanes in
    if halted <> [] then begin
      if List.length halted < List.length lanes then
        List.iter
          (fun lane ->
            record_divergence
              { event_index; checkpoint = !checkpoints; kind = "oom";
                subject = "allocation";
                detail =
                  Printf.sprintf
                    "%s exhausted the degradation ladder here; others did not"
                    lane.label })
          halted;
      stop := true
    end
    else begin
      let is_checkpoint =
        let tag = Trace_format.tag_at trace event_index in
        tag = Trace_format.tag_safepoint
        || tag = Trace_format.tag_finish
        || (every > 0 && !k mod every = 0)
      in
      if is_checkpoint then check_lanes ~event_index
    end
  done;
  { trace_events = n;
    collectors = names;
    skipped;
    checkpoints = !checkpoints;
    divergences = List.rev !divergences;
    total_divergences = !total;
    oracle_checks = !oracle_checks }
