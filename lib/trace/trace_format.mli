(** The versioned binary trace format (see DESIGN.md "Trace capture &
    replay").

    A trace is the complete mutator-observable event stream of one run:
    every allocation (requested size, field count, large-object flag,
    resulting registry id), pointer store and load, root
    registration/release, explicit safepoint, unit of application
    compute, request boundary, measurement-start marker, survived-byte
    annotation, allocation failure, and the final finish marker — in
    program order. Because objects are named by registry id (assigned in
    allocation order, stable across evacuation), the stream contains no
    collector-dependent state: the same trace replays faithfully under
    any registered collector.

    Layout: an 8-byte magic, a varint format version, a self-describing
    header (workload identity, seed, scale, and the full heap geometry
    needed to reconstruct an identical {!Repro_heap.Heap_config.t}), the
    event stream as tag-prefixed records with LEB128 varints and raw
    IEEE-754 doubles, and a trailer carrying the event count and an
    FNV-1a checksum of everything before it. *)

type header = {
  version : int;
  workload : string;  (** benchmark name the trace was recorded from *)
  collector : string;  (** collector it was recorded under (informational) *)
  seed : int;
  scale : float;
  heap_factor : float;
  (* Heap geometry: enough to rebuild the exact Heap_config. *)
  heap_bytes : int;
  block_bytes : int;
  line_bytes : int;
  granule_bytes : int;
  rc_bits : int;
  los_threshold : int;
  free_buffer_entries : int;
}

type event =
  | Alloc of { id : int; size : int; nfields : int; large : bool }
  | Alloc_failed of { size : int; nfields : int }
  | Write of { src : int; field : int; value : int }
  | Read of { src : int; field : int }
  | Root of { slot : int; value : int }
  | Work of { ns : float }
  | Safepoint
  | Request_start of { gap : float }
      (** exponential inter-arrival gap, ns; replay rebases the schedule
          on its own clock at the first request *)
  | Request_end
  | Measurement_start
  | Survived of { bytes : int }
  | Finish

(* The in-memory representation: a flat struct-of-arrays ring — one
   dense tag byte per event plus parallel operand arrays, batch-decoded
   once at load. The replay inner loop dispatches on [tags] and reads
   operands directly; the boxed {!event} variant is only a view
   ({!event}/{!events}). Operand packing per tag (unused slots are
   0 / 0.0):
     alloc:         op1 = id, op2 = size, op3 = nfields lsl 1 lor large
     alloc_failed:  op1 = size, op2 = nfields
     write:         op1 = src, op2 = field, op3 = value
     read:          op1 = src, op2 = field
     root:          op1 = slot, op2 = value
     work:          fop = ns
     request_start: fop = gap
     survived:      op1 = bytes *)
type ring = private {
  count : int;
  tags : Bytes.t;
  op1 : int array;
  op2 : int array;
  op3 : int array;
  fop : float array;
}

type t = { header : header; ring : ring }

(** [of_events header evs] builds a trace from a boxed event array (the
    constructor tests and tools use; decoding goes straight to the
    ring). *)
val of_events : header -> event array -> t

val num_events : t -> int
val ring : t -> ring

(** [tag_at t i] is the ring tag of event [i] (no bounds check — the
    differ's lockstep checkpoint test). *)
val tag_at : t -> int -> int

(** [event t i] materializes event [i] as the boxed variant view. *)
val event : t -> int -> event

(** [events t] materializes the whole boxed-variant view (differ, [stat],
    tests — not the replay hot path). *)
val events : t -> event array

(** [(alloc_count, max_id)] over the ring — the replayer's registry
    presizing input. *)
val alloc_stats : t -> int * int

(** Ring tag values, [tag_end] (0) excepted all correspond to one
    {!event} constructor. *)
val tag_end : int

val tag_alloc : int
val tag_alloc_failed : int
val tag_write : int
val tag_read : int
val tag_root : int
val tag_work : int
val tag_safepoint : int
val tag_request_start : int
val tag_request_end : int
val tag_measurement_start : int
val tag_survived : int
val tag_finish : int

(** The current writer version. Readers accept only this version. *)
val current_version : int

val event_name : event -> string

(** [make_header] fills [version] with {!current_version} and the heap
    geometry from [cfg]. *)
val make_header :
  workload:string ->
  collector:string ->
  seed:int ->
  scale:float ->
  heap_factor:float ->
  cfg:Repro_heap.Heap_config.t ->
  header

(** [heap_config h] reconstructs the heap configuration the trace was
    recorded under. *)
val heap_config : header -> Repro_heap.Heap_config.t

(* Low-level streaming encoder, used by {!Recorder}: header and events
   are encoded into separate buffers and assembled (with the trailer) by
   [assemble]. *)

val encode_header : Buffer.t -> header -> unit
val encode_event : Buffer.t -> event -> unit

(** [assemble ~header_buf ~events_buf ~count] is the complete serialized
    trace: magic, header, events, trailer. *)
val assemble : header_buf:Buffer.t -> events_buf:Buffer.t -> count:int -> string

val to_string : t -> string

(** [of_string s] decodes and validates (magic, version, checksum, event
    count, truncation). *)
val of_string : string -> (t, string) result

val to_file : t -> string -> unit
val of_file : string -> (t, string) result

(** [write_string_to_file] for pre-assembled bytes (the recorder). *)
val write_string_to_file : string -> string -> unit
