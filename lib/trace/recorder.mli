(** Streaming trace recorder.

    Wraps a {!Trace_format} encoder in a {!Repro_engine.Tracer.t} so the
    engine and mutator can tee their event stream into it. Events are
    encoded directly into a growing buffer as they arrive — nothing is
    retained per event — and {!contents} (or {!save}) appends the trailer
    and yields the finished trace.

    Recording is observationally free: the hooks only append bytes, so a
    recorded run produces bit-identical metrics to an unrecorded one. *)

type t

(** [create ~workload ~seed ~scale ~heap_factor ~cfg ()] starts a
    recording. The collector name is informational and usually not known
    until the engine is built; set it with {!set_collector} any time
    before finishing. *)
val create :
  ?collector:string ->
  workload:string ->
  seed:int ->
  scale:float ->
  heap_factor:float ->
  cfg:Repro_heap.Heap_config.t ->
  unit ->
  t

(** The hook record to install via {!Repro_engine.Sim.set_tracer}. *)
val tracer : t -> Repro_engine.Tracer.t

val set_collector : t -> string -> unit

(** Events recorded so far. *)
val event_count : t -> int

(** [contents t] assembles the complete serialized trace (header, events
    so far, trailer). The recorder may continue to accept events; a later
    [contents] re-assembles with the longer stream. *)
val contents : t -> string

(** [save t path] writes {!contents} to [path]. *)
val save : t -> string -> unit
