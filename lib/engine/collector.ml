type pressure = Young | Full | Emergency

let pressure_name = function
  | Young -> "young"
  | Full -> "full"
  | Emergency -> "emergency"

type rc_discipline = Exact_rc | Pinned_rc

type introspection = {
  rc_discipline : rc_discipline;
  counts_exact : unit -> bool;
  pending_ref_ids : unit -> int list;
  remset_entries : unit -> (int * int) list;
  trace_active : unit -> bool;
  expect_clear_marks : unit -> bool;
}

let no_introspection =
  { rc_discipline = Pinned_rc;
    counts_exact = (fun () -> false);
    pending_ref_ids = (fun () -> []);
    remset_entries = (fun () -> []);
    trace_active = (fun () -> false);
    expect_clear_marks = (fun () -> false) }

type t = {
  name : string;
  on_alloc : Repro_heap.Obj_model.t -> unit;
  on_write : Repro_heap.Obj_model.t -> int -> int -> unit;
  write_extra_ns : float;
  read_extra_ns : float;
  poll : unit -> unit;
  collect_for_alloc : pressure -> unit;
  conc_active : unit -> int;
  conc_run : budget_ns:float -> float;
  conc_backlog : unit -> int;
  on_finish : unit -> unit;
  stats : unit -> (string * float) list;
  introspect : introspection;
}

type factory = Sim.t -> Repro_heap.Heap.t -> roots:int array -> t

let no_concurrency () = ((fun () -> 0), fun ~budget_ns:_ -> 0.0)
