(* The hot accounting state is one all-float record: OCaml gives records
   whose fields are all floats a flat unboxed representation, so the
   per-event charges in Api.write/read/work and the replay inner loop
   mutate in place without boxing a float. (A mutable float field in the
   mixed [t] record below would allocate 16 bytes on every store — at
   ~30M replayed events/s that is the difference between ~0 and ~500MB/s
   of minor-heap traffic.) The distilled-cost accumulators live in the
   same record for the same reason. *)
type hot = {
  mutable now : float;
  mutable pending : float;
  mutable mutator_cpu : float;
  mutable gc_cpu : float;
  mutable stw_wall : float;
  mutable stw_cpu : float;
  mutable interference : float;
  mutable last_pause_start : float;
  mutable last_pause_end : float;
  mutable d_barrier : float;
  mutable d_stall : float;
}

type t = {
  cost : Cost_model.t;
  h : hot;
  mutable pause_count : int;
  pauses : Repro_util.Histogram.t;
  mutable alloc_bytes : int;
  mutable alloc_count : int;
  mutable events : (float * float * string) list;  (* reverse chronological *)
  mutable faults : Fault.t;
  mutable tracer : Tracer.t;
  mutable on_pause_end : string -> unit;  (* pause label; verifier hook *)
  mutable pool : Repro_par.Par.Pool.t;  (* host-side work-packet lanes *)
}

let create cost =
  { cost;
    h =
      { now = 0.0;
        pending = 0.0;
        mutator_cpu = 0.0;
        gc_cpu = 0.0;
        stw_wall = 0.0;
        stw_cpu = 0.0;
        interference = 0.0;
        last_pause_start = neg_infinity;
        last_pause_end = neg_infinity;
        d_barrier = 0.0;
        d_stall = 0.0 };
    pause_count = 0;
    pauses = Repro_util.Histogram.create ();
    alloc_bytes = 0;
    alloc_count = 0;
    events = [];
    faults = Fault.none;
    tracer = Tracer.none;
    on_pause_end = ignore;
    pool = Repro_par.Par.Pool.serial }

let cost t = t.cost
let hot t = t.h
let now t = t.h.now

let reset_measurement t =
  t.h.mutator_cpu <- 0.0;
  t.h.gc_cpu <- 0.0;
  t.h.stw_wall <- 0.0;
  t.h.stw_cpu <- 0.0;
  t.pause_count <- 0;
  Repro_util.Histogram.clear t.pauses;
  t.alloc_bytes <- 0;
  t.alloc_count <- 0;
  t.h.d_barrier <- 0.0;
  t.h.d_stall <- 0.0;
  t.events <- []

let charge_mutator t ns = t.h.pending <- t.h.pending +. ns
let charge_gc_cpu t ns = t.h.gc_cpu <- t.h.gc_cpu +. ns
let pending t = t.h.pending

let offer_concurrent t ~wall ~conc_threads ~conc_run =
  if conc_threads > 0 && wall > 0.0 then begin
    let budget = wall *. Float.of_int conc_threads in
    let consumed = conc_run ~budget_ns:budget in
    t.h.gc_cpu <- t.h.gc_cpu +. consumed;
    if consumed > 0.0 then
      (* Approximate the slice as ending now and spanning the wall time
         its CPU consumption occupied on the concurrent threads. *)
      t.events <-
        (t.h.now -. (consumed /. Float.of_int conc_threads), t.h.now, "concurrent")
        :: t.events
  end

let flush t ~conc_threads ~conc_run =
  if t.h.pending > 0.0 then begin
    let work = t.h.pending in
    t.h.pending <- 0.0;
    t.h.mutator_cpu <- t.h.mutator_cpu +. work;
    let m = t.cost.mutator_threads in
    let available = max 1 (t.cost.cores - conc_threads) in
    let speed = Float.of_int (min m available) in
    let wall = work /. speed *. (1.0 +. t.h.interference) in
    t.h.now <- t.h.now +. wall;
    offer_concurrent t ~wall ~conc_threads ~conc_run
  end

let advance_idle t ~until ~conc_threads ~conc_run =
  if until > t.h.now then begin
    let idle = until -. t.h.now in
    t.h.now <- until;
    offer_concurrent t ~wall:idle ~conc_threads ~conc_run
  end

let pause ?(label = "pause") t ~wall_ns ~cpu_ns =
  t.events <- (t.h.now, t.h.now +. wall_ns, label) :: t.events;
  t.h.last_pause_start <- t.h.now;
  t.h.last_pause_end <- t.h.now +. wall_ns;
  t.h.now <- t.h.now +. wall_ns;
  t.h.stw_wall <- t.h.stw_wall +. wall_ns;
  t.h.stw_cpu <- t.h.stw_cpu +. cpu_ns;
  t.h.gc_cpu <- t.h.gc_cpu +. cpu_ns;
  t.pause_count <- t.pause_count + 1;
  Repro_util.Histogram.record t.pauses (int_of_float wall_ns);
  t.on_pause_end label

let set_interference t f = t.h.interference <- f
let interference t = t.h.interference
let mutator_cpu t = t.h.mutator_cpu
let gc_cpu t = t.h.gc_cpu
let stw_wall t = t.h.stw_wall
let stw_cpu t = t.h.stw_cpu
let pause_count t = t.pause_count
let last_pause t = (t.h.last_pause_start, t.h.last_pause_end)
let pauses t = t.pauses

let note_alloc t ~bytes =
  t.alloc_bytes <- t.alloc_bytes + bytes;
  t.alloc_count <- t.alloc_count + 1

let note_barrier t ns = t.h.d_barrier <- t.h.d_barrier +. ns
let barrier_cpu t = t.h.d_barrier
let note_alloc_stall t ns = t.h.d_stall <- t.h.d_stall +. ns
let alloc_stall_ns t = t.h.d_stall

let faults t = t.faults
let set_faults t f = t.faults <- f
let tracer t = t.tracer
let set_tracer t tr = t.tracer <- tr
let set_on_pause_end t f = t.on_pause_end <- f

let pool t = t.pool
let set_pool t p = t.pool <- p

let events t = List.rev t.events
let alloc_bytes t = t.alloc_bytes
let alloc_count t = t.alloc_count
