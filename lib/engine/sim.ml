(* All-float record: flat unboxed representation, so the per-event
   barrier accumulation in Api.write/read mutates in place without
   boxing a float (a mutable float field in the mixed [t] record below
   would allocate on every store). *)
type distill_acc = { mutable d_barrier : float; mutable d_stall : float }

type t = {
  cost : Cost_model.t;
  mutable now : float;
  mutable pending : float;
  mutable mutator_cpu : float;
  mutable gc_cpu : float;
  mutable stw_wall : float;
  mutable stw_cpu : float;
  mutable interference : float;
  mutable pause_count : int;
  mutable last_pause_start : float;
  mutable last_pause_end : float;
  pauses : Repro_util.Histogram.t;
  mutable alloc_bytes : int;
  mutable alloc_count : int;
  acc : distill_acc;
  mutable events : (float * float * string) list;  (* reverse chronological *)
  mutable faults : Fault.t;
  mutable tracer : Tracer.t;
  mutable on_pause_end : string -> unit;  (* pause label; verifier hook *)
  mutable pool : Repro_par.Par.Pool.t;  (* host-side work-packet lanes *)
}

let create cost =
  { cost;
    now = 0.0;
    pending = 0.0;
    mutator_cpu = 0.0;
    gc_cpu = 0.0;
    stw_wall = 0.0;
    stw_cpu = 0.0;
    interference = 0.0;
    pause_count = 0;
    last_pause_start = neg_infinity;
    last_pause_end = neg_infinity;
    pauses = Repro_util.Histogram.create ();
    alloc_bytes = 0;
    alloc_count = 0;
    acc = { d_barrier = 0.0; d_stall = 0.0 };
    events = [];
    faults = Fault.none;
    tracer = Tracer.none;
    on_pause_end = ignore;
    pool = Repro_par.Par.Pool.serial }

let cost t = t.cost
let now t = t.now

let reset_measurement t =
  t.mutator_cpu <- 0.0;
  t.gc_cpu <- 0.0;
  t.stw_wall <- 0.0;
  t.stw_cpu <- 0.0;
  t.pause_count <- 0;
  Repro_util.Histogram.clear t.pauses;
  t.alloc_bytes <- 0;
  t.alloc_count <- 0;
  t.acc.d_barrier <- 0.0;
  t.acc.d_stall <- 0.0;
  t.events <- []
let charge_mutator t ns = t.pending <- t.pending +. ns
let charge_gc_cpu t ns = t.gc_cpu <- t.gc_cpu +. ns
let pending t = t.pending

let offer_concurrent t ~wall ~conc_threads ~conc_run =
  if conc_threads > 0 && wall > 0.0 then begin
    let budget = wall *. Float.of_int conc_threads in
    let consumed = conc_run ~budget_ns:budget in
    t.gc_cpu <- t.gc_cpu +. consumed;
    if consumed > 0.0 then
      (* Approximate the slice as ending now and spanning the wall time
         its CPU consumption occupied on the concurrent threads. *)
      t.events <-
        (t.now -. (consumed /. Float.of_int conc_threads), t.now, "concurrent")
        :: t.events
  end

let flush t ~conc_threads ~conc_run =
  if t.pending > 0.0 then begin
    let work = t.pending in
    t.pending <- 0.0;
    t.mutator_cpu <- t.mutator_cpu +. work;
    let m = t.cost.mutator_threads in
    let available = max 1 (t.cost.cores - conc_threads) in
    let speed = Float.of_int (min m available) in
    let wall = work /. speed *. (1.0 +. t.interference) in
    t.now <- t.now +. wall;
    offer_concurrent t ~wall ~conc_threads ~conc_run
  end

let advance_idle t ~until ~conc_threads ~conc_run =
  if until > t.now then begin
    let idle = until -. t.now in
    t.now <- until;
    offer_concurrent t ~wall:idle ~conc_threads ~conc_run
  end

let pause ?(label = "pause") t ~wall_ns ~cpu_ns =
  t.events <- (t.now, t.now +. wall_ns, label) :: t.events;
  t.last_pause_start <- t.now;
  t.last_pause_end <- t.now +. wall_ns;
  t.now <- t.now +. wall_ns;
  t.stw_wall <- t.stw_wall +. wall_ns;
  t.stw_cpu <- t.stw_cpu +. cpu_ns;
  t.gc_cpu <- t.gc_cpu +. cpu_ns;
  t.pause_count <- t.pause_count + 1;
  Repro_util.Histogram.record t.pauses (int_of_float wall_ns);
  t.on_pause_end label

let set_interference t f = t.interference <- f
let interference t = t.interference
let mutator_cpu t = t.mutator_cpu
let gc_cpu t = t.gc_cpu
let stw_wall t = t.stw_wall
let stw_cpu t = t.stw_cpu
let pause_count t = t.pause_count
let last_pause t = (t.last_pause_start, t.last_pause_end)
let pauses t = t.pauses

let note_alloc t ~bytes =
  t.alloc_bytes <- t.alloc_bytes + bytes;
  t.alloc_count <- t.alloc_count + 1

let note_barrier t ns = t.acc.d_barrier <- t.acc.d_barrier +. ns
let barrier_cpu t = t.acc.d_barrier
let note_alloc_stall t ns = t.acc.d_stall <- t.acc.d_stall +. ns
let alloc_stall_ns t = t.acc.d_stall

let faults t = t.faults
let set_faults t f = t.faults <- f
let tracer t = t.tracer
let set_tracer t tr = t.tracer <- tr
let set_on_pause_end t f = t.on_pause_end <- f

let pool t = t.pool
let set_pool t p = t.pool <- p

let events t = List.rev t.events
let alloc_bytes t = t.alloc_bytes
let alloc_count t = t.alloc_count
