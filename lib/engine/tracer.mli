(** Trace-capture hooks: the tee between the engine and [lib/trace].

    A tracer is a record of closures invoked at every mutator-observable
    event — the same zero-cost-when-off pattern as {!Fault}: hook sites
    test {!active} (one physical-equality compare against {!none}) before
    touching any closure, so an untraced run pays a pointer compare per
    operation and nothing else.

    The engine ({!Api}) emits the heap-level events (allocation, pointer
    store/load, root writes, compute, safepoints, finish); the generative
    mutator emits the workload-level markers (request boundaries,
    measurement start, survival accounting) that a replayer needs to
    reconstruct {!Repro_mutator.Mut_engine.output} without the generative
    logic in the loop. Objects are identified by registry id — ids are
    assigned in allocation order and survive evacuation, which is what
    makes a recorded stream collector-independent. *)

type t = {
  alloc : id:int -> size:int -> nfields:int -> large:bool -> unit;
      (** a successful allocation; [size] is the requested (pre-alignment)
          size and [large] its large-object classification *)
  alloc_failed : size:int -> nfields:int -> unit;
      (** {!Api.try_alloc} exhausted the degradation ladder *)
  write : src:int -> field:int -> value:int -> unit;
      (** pointer store, before the barrier and the store itself *)
  read : src:int -> field:int -> unit;  (** pointer load *)
  root : slot:int -> value:int -> unit;
      (** root registration ([value <> null]) or release ([value = null]) *)
  work : ns:float -> unit;  (** pure application compute *)
  safepoint : unit -> unit;  (** an explicit mutator safepoint poll *)
  request_start : gap:float -> unit;
      (** request boundary: the exponential inter-arrival gap, ns. The
          gap — not the absolute arrival time — is recorded because the
          metered schedule is rebased on the simulator clock at
          measurement start, which depends on how long the collector took
          during setup; the gap sequence is the collector-independent
          content. *)
  request_end : unit -> unit;
  measurement_start : unit -> unit;
      (** warmup/setup ended; accumulators reset beyond this point *)
  survived : bytes:int -> unit;
      (** the mutator counted [bytes] into its survived-bytes total *)
  finish : unit -> unit;  (** end of run *)
}

(** The inert tracer: every hook is a no-op. *)
val none : t

(** [active t] is true iff [t] is not {!none} (physical equality). *)
val active : t -> bool
