type t = {
  alloc : id:int -> size:int -> nfields:int -> large:bool -> unit;
  alloc_failed : size:int -> nfields:int -> unit;
  write : src:int -> field:int -> value:int -> unit;
  read : src:int -> field:int -> unit;
  root : slot:int -> value:int -> unit;
  work : ns:float -> unit;
  safepoint : unit -> unit;
  request_start : gap:float -> unit;
  request_end : unit -> unit;
  measurement_start : unit -> unit;
  survived : bytes:int -> unit;
  finish : unit -> unit;
}

let none =
  { alloc = (fun ~id:_ ~size:_ ~nfields:_ ~large:_ -> ());
    alloc_failed = (fun ~size:_ ~nfields:_ -> ());
    write = (fun ~src:_ ~field:_ ~value:_ -> ());
    read = (fun ~src:_ ~field:_ -> ());
    root = (fun ~slot:_ ~value:_ -> ());
    work = (fun ~ns:_ -> ());
    safepoint = ignore;
    request_start = (fun ~gap:_ -> ());
    request_end = ignore;
    measurement_start = ignore;
    survived = (fun ~bytes:_ -> ());
    finish = ignore }

(* Physical equality, same trick as [Fault.active]: hook sites test this
   before touching any closure. *)
let active t = t != none
