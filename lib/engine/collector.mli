(** The interface every garbage collector implements.

    A collector is a record of closures over its own state, created from
    a {!Sim.t} and a heap by a {!factory}. The engine calls [on_write]
    before each reference store (the write barrier observes the
    to-be-overwritten value), charges [read_extra_ns]/[write_extra_ns] on
    each load/store (barrier fast paths), polls at safepoints, and drives
    concurrent work through [conc_active]/[conc_run]. *)

(** Rungs of the allocation-failure degradation ladder, in escalation
    order. {!Api.try_alloc} climbs them one at a time, retrying the
    allocation after each:

    - [Young]: the collector's cheapest space-recovering collection
      (an RC pause, a young evacuation, a routine STW collection — or,
      for fully concurrent collectors, stalling on cycle progress).
    - [Full]: a complete collection — force the backup trace / marking
      cycle through reclamation so all garbage, cyclic included, goes.
    - [Emergency]: last-ditch defragmentation — release the to-space
      reserve and slide-compact so even whole-block (large-object)
      requests can be satisfied. *)
type pressure = Young | Full | Emergency

val pressure_name : pressure -> string

(** How the collector uses the shared RC table: [Exact_rc] maintains true
    deferred reference counts (LXR); [Pinned_rc] pins every live object's
    header at the stuck count and uses the table only for line liveness
    (all tracing collectors). The verifier selects its count checks
    accordingly. *)
type rc_discipline = Exact_rc | Pinned_rc

(** Read-only introspection the integrity verifier needs from a
    collector. All closures must be side-effect free. *)
type introspection = {
  rc_discipline : rc_discipline;
  counts_exact : unit -> bool;
      (** [Exact_rc] only: true while every header count is bounded by
          the incoming references recomputable from the heap plus the
          pending work in [pending_ref_ids]. Trace-based reclamation
          (which frees parents without decrementing their children)
          breaks the bound permanently, so LXR reports [true] only until
          the first completed SATB trace; the verifier's overcount check
          is gated on it. *)
  pending_ref_ids : unit -> int list;
      (** ids with queued RC work (decrement buffers, previous-epoch
          roots, snapshot before-images): their reference counts may
          legitimately exceed the in-heap evidence until the next pause *)
  remset_entries : unit -> (int * int) list;
      (** live remembered-set entries as [(src id, field index)] pairs *)
  trace_active : unit -> bool;  (** a marking cycle is underway *)
  expect_clear_marks : unit -> bool;
      (** the shared mark bitset must be empty right now (e.g. LXR
          between SATB cycles); [false] when no such guarantee holds *)
}

(** Safe defaults: pinned discipline, no pending work, no remsets, no
    mark guarantee. *)
val no_introspection : introspection

type t = {
  name : string;
  on_alloc : Repro_heap.Obj_model.t -> unit;
      (** post-allocation hook (e.g. SATB allocation colouring) *)
  on_write : Repro_heap.Obj_model.t -> int -> int -> unit;
      (** [on_write src field new_ref] runs before the store; the old
          value is still in [src.fields.(field)] *)
  write_extra_ns : float;  (** barrier fast-path cost per reference store *)
  read_extra_ns : float;  (** read barrier cost per reference load *)
  poll : unit -> unit;  (** safepoint: check triggers, maybe pause *)
  collect_for_alloc : pressure -> unit;
      (** allocation failed; run the collection for this ladder rung.
          {!Api.try_alloc} retries the allocation afterwards and
          escalates to the next rung if it still fails *)
  conc_active : unit -> int;  (** concurrent GC threads currently wanting CPU *)
  conc_run : budget_ns:float -> float;  (** run concurrent work, return consumed *)
  conc_backlog : unit -> int;
      (** outstanding deferred-reclamation work items (journal records,
          queued decrements, dirty buffers) awaiting the concurrent
          drain; [0] for collectors with no such queue. Surfaced through
          {!Api.gc_signal} so a serving tier can route around replicas
          whose drain has fallen behind the mutator. *)
  on_finish : unit -> unit;  (** end of run: final bookkeeping *)
  stats : unit -> (string * float) list;  (** collector-specific counters *)
  introspect : introspection;  (** verifier hooks *)
}

type factory = Sim.t -> Repro_heap.Heap.t -> roots:int array -> t

(** A collector with no concurrency — helper for building records. *)
val no_concurrency : unit -> (unit -> int) * (budget_ns:float -> float)
