(** The mutator-facing API.

    Workloads interact with the heap exclusively through this module so
    that every allocation, reference load, reference store and unit of
    application compute is charged to the virtual clock, routed through
    the collector's barriers, and interleaved with safepoints and
    concurrent GC progress.

    Every call is also teed to the {!Sim.tracer} hooks when a trace
    recorder is attached (allocation outcomes, stores, loads, root
    writes, compute, safepoints, finish), so [lib/trace] can capture the
    exact mutator-observable event stream. [get_root] and [idle_until]
    are not captured: the replayer re-derives idling from recorded
    request arrival times, and root reads have no heap-visible effect.

    Allocation failure is handled by a structured degradation ladder
    (see {!try_alloc}) rather than ad-hoc retries: the engine escalates
    through {!Collector.pressure} rungs, counts each escalation in
    {!ladder_counts}, and reports exhaustion as a value, not an
    exception. *)

exception Out_of_memory of string

(** Everything known at the moment an allocation was declared
    unsatisfiable, for diagnostics. *)
type oom_info = {
  collector : string;
  requested_bytes : int;
  live_bytes : int;
  heap_bytes : int;
}

(** Per-run counters for the allocation-failure degradation ladder: how
    many times each rung was climbed, how often the to-space reserve was
    released to the mutator, and how many requests were ultimately
    declared unsatisfiable. *)
type ladder_counts = {
  mutable young_collections : int;
  mutable full_collections : int;
  mutable emergency_compactions : int;
  mutable reserve_releases : int;
  mutable exhaustions : int;
}

(** The ladder counters as metric pairs ([ladder_young], [ladder_full],
    [ladder_emergency], [ladder_reserve_release], [ladder_oom]). *)
val ladder_alist : ladder_counts -> (string * float) list

type t

(** [create sim heap factory] instantiates the collector and a mutator
    allocator. The root array has {!root_slots} entries. *)
val create : Sim.t -> Repro_heap.Heap.t -> Collector.factory -> t

val root_slots : int

val sim : t -> Sim.t
val heap : t -> Repro_heap.Heap.t
val collector : t -> Collector.t
val roots : t -> int array
val ladder : t -> ladder_counts

(** What a load balancer is allowed to see of one replica's GC state — a
    cheap, read-only snapshot taken between scheduling checkpoints by the
    fleet serving tier ([lib/service]). [busy_until] is the replica's
    virtual clock (it subsumes every *past* pause: a clock deep in the
    future means the replica is still paying one off);
    [pause_start]/[pause_end] delimit the most recent stop-the-world
    pause ([neg_infinity] before the first); [concurrent_active] is true
    while the collector's concurrent threads want CPU (a replica inside
    a concurrent cycle serves upcoming requests slower — CPU stealing,
    §5.2); [occupancy] is live bytes over heap bytes — the predictive
    part of the signal, since the replica closest to filling its heap is
    the one that will trigger a collection next, and routing traffic
    away from it both delays that trigger and shrinks the queue standing
    behind the eventual pause. *)
type gc_signal = {
  busy_until : float;
  pause_start : float;
  pause_end : float;
  concurrent_active : bool;
  drain_backlog : int;
      (** outstanding deferred-reclamation items (journal records, queued
          decrements) awaiting the collector's concurrent drain; [0] for
          collectors with no such queue *)
  occupancy : float;
}

(** [gc_signal t] — side-effect free; safe to call at any safepoint
    boundary. *)
val gc_signal : t -> gc_signal

(** [try_alloc t ~size ~nfields] allocates an object, escalating through
    the degradation ladder when the heap is full: after a failed
    allocation it runs the collector at [Young], then [Full], then
    [Emergency] pressure — retrying after each — and finally releases
    the to-space reserve to the mutator. Returns [`Oom info] only when
    all of that fails; the allocator and heap remain in a consistent
    state and further calls are permitted (e.g. after the workload drops
    roots). On success the new object is held in the reserved scratch
    root (slot [root_slots - 1]) across the allocation safepoint;
    install it somewhere reachable before the next allocation or it may
    be reclaimed. *)
val try_alloc :
  t -> size:int -> nfields:int -> [ `Ok of Repro_heap.Obj_model.t | `Oom of oom_info ]

(** [alloc_fast t ~size ~nfields] is {!try_alloc} without the result box:
    the same degradation-ladder semantics, returning the new object's
    canonical handle, or the registry's none-handle
    ([obj.id = Obj_model.null]) on exhaustion — in which case {!last_oom}
    describes the failure. Does {e not} tee to the tracer (the replay
    fast loop's traced variant re-emits the event itself); use
    {!try_alloc} when a recorder may be attached. *)
val alloc_fast : t -> size:int -> nfields:int -> Repro_heap.Obj_model.t

(** The most recent exhaustion recorded by {!alloc_fast}. *)
val last_oom : t -> oom_info

(** [alloc t ~size ~nfields] is {!try_alloc} for workloads that treat
    exhaustion as fatal: raises {!Out_of_memory} with {!describe_oom} on
    [`Oom]. *)
val alloc : t -> size:int -> nfields:int -> Repro_heap.Obj_model.t

val describe_oom : oom_info -> string

(** [write t obj field ref_id] stores a reference through the write
    barrier. Fault injection ({!Sim.faults}) is consulted here: a
    [drop_barrier] hit skips the collector's barrier (the store still
    happens), a [flip_rc] hit perturbs the object's RC-table entry. *)
val write : t -> Repro_heap.Obj_model.t -> int -> int -> unit

(** [read t obj field] loads a reference through the read barrier. *)
val read : t -> Repro_heap.Obj_model.t -> int -> int

(** [work t ~ns] charges pure application compute. *)
val work : t -> ns:float -> unit

(** [set_root t slot ref_id] / [get_root t slot]: mutator root table. *)
val set_root : t -> int -> int -> unit

val get_root : t -> int -> int

(** [safepoint t] flushes pending work and polls the collector. Called
    automatically by [alloc]; workloads may also call it on loop
    back-edges. *)
val safepoint : t -> unit

(** [flush t] pushes pending mutator work onto the wall clock (see
    {!Sim.flush}); [flush_threshold t] is the pending-ns level at which
    the per-event fast paths do it implicitly. The replay fast loop
    inlines the [pending >= flush_threshold] test and calls [flush]
    itself — {!maybe_flush} is that pair as one call. *)
val flush : t -> unit

val flush_threshold : t -> float
val maybe_flush : t -> unit

(** [idle_until t ns] advances the clock to [ns] (e.g. waiting for the
    next request arrival), letting concurrent GC use the idle cores. *)
val idle_until : t -> float -> unit

(** [finish t] flushes everything and runs the collector's final hook. *)
val finish : t -> unit
