(* Deterministic fault injection (see DESIGN.md "Verification & fault
   injection"). All probability draws flow through one seeded SplitMix64
   stream, so a given (spec, seed) pair corrupts the same operations on
   every run. *)

type counts = {
  mutable dropped_barriers : int;
  mutable skipped_decrements : int;
  mutable flipped_rc : int;
  mutable corrupted_remsets : int;
  mutable forced_alloc_failures : int;
}

type t = {
  drop_barrier : unit -> bool;
  skip_decrement : unit -> bool;
  flip_rc : unit -> bool;
  corrupt_remset : unit -> bool;
  fail_alloc : unit -> bool;
  counts : counts;
}

let fresh_counts () =
  { dropped_barriers = 0;
    skipped_decrements = 0;
    flipped_rc = 0;
    corrupted_remsets = 0;
    forced_alloc_failures = 0 }

let no = fun () -> false

let none =
  { drop_barrier = no;
    skip_decrement = no;
    flip_rc = no;
    corrupt_remset = no;
    fail_alloc = no;
    counts = fresh_counts () }

(* Physical equality: hook sites test [active] before touching any
   closure, so a run without injection pays one pointer compare. *)
let active t = t != none

let create ?(drop_barrier = 0.0) ?(skip_decrement = 0.0) ?(flip_rc = 0.0)
    ?(corrupt_remset = 0.0) ?(fail_alloc = 0.0) ~seed () =
  let prng = Repro_util.Prng.create (seed lxor 0x6661756c74) in
  let counts = fresh_counts () in
  let draw rate bump =
    if rate <= 0.0 then no
    else
      fun () ->
        let hit = Repro_util.Prng.bool prng rate in
        if hit then bump ();
        hit
  in
  { drop_barrier =
      draw drop_barrier (fun () ->
          counts.dropped_barriers <- counts.dropped_barriers + 1);
    skip_decrement =
      draw skip_decrement (fun () ->
          counts.skipped_decrements <- counts.skipped_decrements + 1);
    flip_rc = draw flip_rc (fun () -> counts.flipped_rc <- counts.flipped_rc + 1);
    corrupt_remset =
      draw corrupt_remset (fun () ->
          counts.corrupted_remsets <- counts.corrupted_remsets + 1);
    fail_alloc =
      draw fail_alloc (fun () ->
          counts.forced_alloc_failures <- counts.forced_alloc_failures + 1);
    counts }

let counts_alist t =
  [ ("fault_dropped_barriers", Float.of_int t.counts.dropped_barriers);
    ("fault_skipped_decrements", Float.of_int t.counts.skipped_decrements);
    ("fault_flipped_rc", Float.of_int t.counts.flipped_rc);
    ("fault_corrupted_remsets", Float.of_int t.counts.corrupted_remsets);
    ("fault_forced_alloc_failures", Float.of_int t.counts.forced_alloc_failures) ]

(* Spec syntax: "class:rate[,class:rate...]", e.g.
   "drop-barrier:1e-4,rc-flip:0.01". *)
let class_names =
  [ "drop-barrier"; "skip-dec"; "rc-flip"; "remset"; "alloc-fail" ]

(* --- Service-tier fault classes ---------------------------------------- *)

(* The fleet serving tier ([lib/service]) injects whole-replica and
   arrival-process faults rather than per-operation heap corruption, so
   its fault classes are declarative events scheduled against the fleet
   timeline (see [Repro_service.Chaos]) instead of probability draws.
   They live here so the engine owns the complete fault taxonomy. *)
type service_class =
  | Replica_crash  (** the replica process dies; in-flight work is lost *)
  | Replica_stall
      (** the replica keeps serving but every request runs slower by a
          factor for a window (CPU antagonist / noisy neighbour) *)
  | Heap_shrink
      (** operational heap resize under load: the replica is restarted
          into a heap scaled by a factor < 1 *)
  | Flash_crowd
      (** the arrival process spikes by a factor for a window *)

let service_classes =
  [ ("crash", Replica_crash);
    ("stall", Replica_stall);
    ("heap-shrink", Heap_shrink);
    ("flash-crowd", Flash_crowd) ]

let service_class_names = List.map fst service_classes

let service_class_name c =
  fst (List.find (fun (_, c') -> c' = c) service_classes)

let service_class_of_string name =
  List.assoc_opt (String.lowercase_ascii name) service_classes

let of_spec ~seed spec =
  let parse_item acc item =
    match acc with
    | Error _ -> acc
    | Ok rates -> (
      match String.index_opt item ':' with
      | None -> Error (Printf.sprintf "fault spec %S: expected class:rate" item)
      | Some i ->
        let cls = String.sub item 0 i in
        let rate_s = String.sub item (i + 1) (String.length item - i - 1) in
        (match float_of_string_opt rate_s with
        | None -> Error (Printf.sprintf "fault spec %S: bad rate %S" item rate_s)
        | Some r when r < 0.0 || r > 1.0 ->
          Error (Printf.sprintf "fault spec %S: rate must be in [0, 1]" item)
        | Some r ->
          if List.mem cls class_names then Ok ((cls, r) :: rates)
          else
            Error
              (Printf.sprintf "fault spec %S: unknown class %S (known: %s)" item
                 cls
                 (String.concat ", " class_names))))
  in
  let items =
    List.filter (fun s -> s <> "") (String.split_on_char ',' (String.trim spec))
  in
  match List.fold_left parse_item (Ok []) items with
  | Error _ as e -> e
  | Ok rates ->
    let rate cls = try List.assoc cls rates with Not_found -> 0.0 in
    Ok
      (create ~drop_barrier:(rate "drop-barrier") ~skip_decrement:(rate "skip-dec")
         ~flip_rc:(rate "rc-flip") ~corrupt_remset:(rate "remset")
         ~fail_alloc:(rate "alloc-fail") ~seed ())
