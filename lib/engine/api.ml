open Repro_heap

exception Out_of_memory of string

let root_slots = 256

type oom_info = {
  collector : string;
  requested_bytes : int;
  live_bytes : int;
  heap_bytes : int;
}

type ladder_counts = {
  mutable young_collections : int;
  mutable full_collections : int;
  mutable emergency_compactions : int;
  mutable reserve_releases : int;
  mutable exhaustions : int;
}

let ladder_alist l =
  [ ("ladder_young", Float.of_int l.young_collections);
    ("ladder_full", Float.of_int l.full_collections);
    ("ladder_emergency", Float.of_int l.emergency_compactions);
    ("ladder_reserve_release", Float.of_int l.reserve_releases);
    ("ladder_oom", Float.of_int l.exhaustions) ]

type t = {
  sim : Sim.t;
  heap : Heap.t;
  collector : Collector.t;
  allocator : Bump_allocator.t;
  roots : int array;
  flush_threshold : float;
  ladder : ladder_counts;
  (* Hot-path caches, all derivable from the fields above: the live
     [Sim.hot] record (so per-event charges are plain unboxed float
     stores, no function-call boxing) and the per-event charge sums
     [cost + collector barrier extra], precomputed because the collector's
     extras are fixed at creation. *)
  h : Sim.hot;
  write_charge : float;  (* write_ns + write_extra_ns *)
  read_charge : float;  (* read_ns + read_extra_ns *)
  write_extra : float;
  read_extra : float;
  mutable last_oom : oom_info option;  (* set by the option-free alloc path *)
}

let create sim heap factory =
  let roots = Array.make root_slots Obj_model.null in
  let collector = factory sim heap ~roots in
  let c = Sim.cost sim in
  { sim;
    heap;
    collector;
    allocator = Heap.make_allocator heap;
    roots;
    flush_threshold = 5_000.0;
    ladder =
      { young_collections = 0;
        full_collections = 0;
        emergency_compactions = 0;
        reserve_releases = 0;
        exhaustions = 0 };
    h = Sim.hot sim;
    write_charge = c.write_ns +. collector.Collector.write_extra_ns;
    read_charge = c.read_ns +. collector.Collector.read_extra_ns;
    write_extra = collector.Collector.write_extra_ns;
    read_extra = collector.Collector.read_extra_ns;
    last_oom = None }

let sim t = t.sim
let heap t = t.heap
let collector t = t.collector
let roots t = t.roots
let ladder t = t.ladder

type gc_signal = {
  busy_until : float;
  pause_start : float;
  pause_end : float;
  concurrent_active : bool;
  drain_backlog : int;
  occupancy : float;
}

let gc_signal t =
  let pause_start, pause_end = Sim.last_pause t.sim in
  let total = Repro_heap.Heap.total_bytes t.heap in
  { busy_until = Sim.now t.sim;
    pause_start;
    pause_end;
    concurrent_active = t.collector.Collector.conc_active () > 0;
    drain_backlog = t.collector.Collector.conc_backlog ();
    occupancy =
      (if total > 0 then
         Float.of_int (Repro_heap.Heap.live_bytes t.heap)
         /. Float.of_int total
       else 0.0) }

let flush t =
  Sim.flush t.sim ~conc_threads:(t.collector.conc_active ())
    ~conc_run:t.collector.conc_run

let maybe_flush t = if t.h.Sim.pending >= t.flush_threshold then flush t
let flush_threshold t = t.flush_threshold

let safepoint t =
  let tr = Sim.tracer t.sim in
  if Tracer.active tr then tr.Tracer.safepoint ();
  flush t;
  t.collector.poll ()

let charge_alloc_receipt t =
  let r = Bump_allocator.receipt t.allocator in
  let c = Sim.cost t.sim in
  let contention =
    c.buffer_contention_ns *. Float.of_int t.heap.cfg.free_buffer_entries
  in
  let ns =
    (Float.of_int r.slow_allocs *. c.alloc_slow_ns)
    +. (Float.of_int r.blocks_acquired *. (c.block_acquire_ns +. contention))
    +. (Float.of_int r.bytes_zeroed *. c.zero_ns_per_byte)
  in
  if ns > 0.0 then Sim.charge_mutator t.sim ns;
  Bump_allocator.reset_receipt t.allocator

let describe_oom (o : oom_info) =
  Printf.sprintf "%s: cannot allocate %d bytes (live %d / heap %d)" o.collector
    o.requested_bytes o.live_bytes o.heap_bytes

(* Successful allocation epilogue: charge, account, run the collector's
   hook, park the object in the scratch root, let the collector poll. *)
let alloc_done t (obj : Obj_model.t) =
  charge_alloc_receipt t;
  Sim.note_alloc t.sim ~bytes:obj.size;
  t.collector.on_alloc obj;
  (* Hold the new object in the scratch root across the safepoint —
     the register/stack reference a real mutator would have. *)
  t.roots.(root_slots - 1) <- obj.id;
  maybe_flush t;
  t.collector.poll ();
  obj

(* The option-free allocation path: returns the new object's canonical
   handle, or the registry's none-handle (id = null) on heap exhaustion,
   in which case [t.last_oom] describes the failure. The `Ok/`Oom and
   tracer-emitting forms below are thin wrappers; the replay fast loop
   calls this directly so a successful allocation never boxes an option
   or a polymorphic-variant result. *)
let alloc_fast t ~size ~nfields =
  let c = Sim.cost t.sim in
  t.h.Sim.pending <- t.h.Sim.pending +. c.alloc_fast_ns;
  let faults = Sim.faults t.sim in
  let first =
    if Fault.active faults && faults.fail_alloc () then
      Obj_model.Registry.none_handle t.heap.Heap.registry
    else Heap.alloc_fast t.heap t.allocator ~size ~nfields
  in
  if first.Obj_model.id <> Obj_model.null then alloc_done t first
  else begin
    charge_alloc_receipt t;
    flush t;
    let l = t.ladder in
    (* Everything from here until the allocation succeeds (or the heap is
       exhausted) is wall-clock time the mutator spends stalled in the
       allocation slow path — a distilled-cost component. *)
    let stall_start = Sim.now t.sim in
    let note_stall () =
      Sim.note_alloc_stall t.sim (Sim.now t.sim -. stall_start)
    in
    (* The degradation ladder: escalate one rung at a time, retrying the
       allocation after each collection. *)
    let rec escalate = function
      | rung :: rest ->
        t.collector.collect_for_alloc rung;
        (match rung with
        | Collector.Young -> l.young_collections <- l.young_collections + 1
        | Collector.Full -> l.full_collections <- l.full_collections + 1
        | Collector.Emergency ->
          l.emergency_compactions <- l.emergency_compactions + 1);
        let obj = Heap.alloc_fast t.heap t.allocator ~size ~nfields in
        if obj.Obj_model.id <> Obj_model.null then begin
          note_stall ();
          alloc_done t obj
        end
        else begin
          charge_alloc_receipt t;
          escalate rest
        end
      | [] ->
        (* Past the last rung: hand the to-space reserve to the mutator. *)
        Heap.release_reserve t.heap;
        l.reserve_releases <- l.reserve_releases + 1;
        let obj = Heap.alloc_fast t.heap t.allocator ~size ~nfields in
        if obj.Obj_model.id <> Obj_model.null then begin
          note_stall ();
          (* No poll: the collector just proved it cannot make space. *)
          charge_alloc_receipt t;
          Sim.note_alloc t.sim ~bytes:obj.Obj_model.size;
          t.collector.on_alloc obj;
          t.roots.(root_slots - 1) <- obj.Obj_model.id;
          obj
        end
        else begin
          note_stall ();
          charge_alloc_receipt t;
          l.exhaustions <- l.exhaustions + 1;
          t.last_oom <-
            Some
              { collector = t.collector.name;
                requested_bytes = size;
                live_bytes = Heap.live_bytes t.heap;
                heap_bytes = Heap.total_bytes t.heap };
          obj
        end
    in
    escalate [ Collector.Young; Collector.Full; Collector.Emergency ]
  end

let last_oom t =
  match t.last_oom with
  | Some info -> info
  | None ->
    { collector = t.collector.name;
      requested_bytes = 0;
      live_bytes = Heap.live_bytes t.heap;
      heap_bytes = Heap.total_bytes t.heap }

let try_alloc t ~size ~nfields =
  let obj = alloc_fast t ~size ~nfields in
  let r = if obj.Obj_model.id <> Obj_model.null then `Ok obj else `Oom (last_oom t) in
  let tr = Sim.tracer t.sim in
  if Tracer.active tr then
    (match r with
    | `Ok (obj : Obj_model.t) ->
      tr.Tracer.alloc ~id:obj.id ~size ~nfields
        ~large:(size > t.heap.Heap.cfg.los_threshold)
    | `Oom _ -> tr.Tracer.alloc_failed ~size ~nfields);
  r

let alloc t ~size ~nfields =
  match try_alloc t ~size ~nfields with
  | `Ok obj -> obj
  | `Oom info -> raise (Out_of_memory (describe_oom info))

(* Injected RC corruption targets a body granule when the object has one
   (an orphan count or a punched straddle marker — both off-header
   corruptions the verifier must catch), else the header itself. *)
let apply_rc_flip t (obj : Obj_model.t) =
  if not (Obj_model.is_freed obj) then begin
    let cfg = t.heap.Heap.cfg in
    let stuck = Heap_config.stuck_count cfg in
    let addr =
      if obj.size > cfg.granule_bytes then Obj_model.addr obj + cfg.granule_bytes
      else Obj_model.addr obj
    in
    let v = Rc_table.get t.heap.rc cfg addr in
    Rc_table.set t.heap.rc cfg addr (if v >= stuck then 0 else v + 1)
  end

let write t obj field ref_id =
  let tr = Sim.tracer t.sim in
  if Tracer.active tr then
    tr.Tracer.write ~src:obj.Obj_model.id ~field ~value:ref_id;
  t.h.Sim.pending <- t.h.Sim.pending +. t.write_charge;
  (* The [write_extra] component is the collector's inline barrier
     fast path — barrier-attributed for distilled-cost accounting. Slow
     paths add their own {!Sim.note_barrier} charges. *)
  if t.write_extra > 0.0 then
    t.h.Sim.d_barrier <- t.h.Sim.d_barrier +. t.write_extra;
  let faults = Sim.faults t.sim in
  if Fault.active faults then begin
    if not (faults.drop_barrier ()) then t.collector.on_write obj field ref_id;
    if faults.flip_rc () then apply_rc_flip t obj
  end
  else t.collector.on_write obj field ref_id;
  Obj_model.set_field obj field ref_id;
  maybe_flush t

let read t obj field =
  let tr = Sim.tracer t.sim in
  if Tracer.active tr then tr.Tracer.read ~src:obj.Obj_model.id ~field;
  t.h.Sim.pending <- t.h.Sim.pending +. t.read_charge;
  if t.read_extra > 0.0 then
    t.h.Sim.d_barrier <- t.h.Sim.d_barrier +. t.read_extra;
  maybe_flush t;
  Obj_model.field obj field

let work t ~ns =
  let tr = Sim.tracer t.sim in
  if Tracer.active tr then tr.Tracer.work ~ns;
  Sim.charge_mutator t.sim ns;
  maybe_flush t

let set_root t slot ref_id =
  let tr = Sim.tracer t.sim in
  if Tracer.active tr then tr.Tracer.root ~slot ~value:ref_id;
  let c = Sim.cost t.sim in
  Sim.charge_mutator t.sim c.write_ns;
  t.roots.(slot) <- ref_id

let get_root t slot =
  let c = Sim.cost t.sim in
  Sim.charge_mutator t.sim c.read_ns;
  t.roots.(slot)

let idle_until t until =
  flush t;
  Sim.advance_idle t.sim ~until ~conc_threads:(t.collector.conc_active ())
    ~conc_run:t.collector.conc_run

let finish t =
  let tr = Sim.tracer t.sim in
  if Tracer.active tr then tr.Tracer.finish ();
  flush t;
  t.collector.on_finish ();
  flush t
