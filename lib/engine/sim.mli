(** The virtual clock and global accounting for one simulation run.

    Mutator work accumulates in a pending buffer and is flushed to the
    wall clock at safepoints; flushing also hands the elapsed wall time to
    the collector's concurrent threads as a CPU budget, scaled by core
    availability: when [mutator_threads + concurrent GC threads] exceeds
    [cores], the mutator runs proportionally slower (§5.2's CPU-stealing
    effect), and while concurrent *copying* is active an additional
    interference fraction models cache and DRAM bandwidth pollution (§1).

    Two cost totals are maintained: wall-clock time (Figure 7a) and total
    CPU cycles integrated over all cores (Figure 7b), which includes all
    concurrent collector work. *)

type t

(** The hot accounting state, an all-float record (flat unboxed
    representation): the per-event fast paths in {!Api} and the replay
    inner loop read and mutate these fields directly so a charge is a
    plain unboxed load/add/store, never a float allocation. Everything
    here is also reachable through the accessor functions below; the
    record exists purely so the hot paths can skip the function-call
    boundary (which would box its float argument). Invariants: [pending]
    is un-flushed mutator CPU, [d_barrier]/[d_stall] are the
    distilled-cost sub-accounts behind {!note_barrier} and
    {!note_alloc_stall}. *)
type hot = {
  mutable now : float;
  mutable pending : float;
  mutable mutator_cpu : float;
  mutable gc_cpu : float;
  mutable stw_wall : float;
  mutable stw_cpu : float;
  mutable interference : float;
  mutable last_pause_start : float;
  mutable last_pause_end : float;
  mutable d_barrier : float;
  mutable d_stall : float;
}

val create : Cost_model.t -> t

(** The live hot-state record of this simulation (see {!hot}). *)
val hot : t -> hot

val cost : t -> Cost_model.t

(** Current virtual time in ns. *)
val now : t -> float

(** [reset_measurement t] zeroes every accumulator except the clock —
    called when the workload's warmup/setup phase ends, mirroring the
    paper's fifth-iteration methodology (§4). *)
val reset_measurement : t -> unit

(** [charge_mutator t ns] adds mutator CPU work (not yet on the wall
    clock). *)
val charge_mutator : t -> float -> unit

(** [charge_gc_cpu t ns] adds GC CPU work that is already accounted on
    the wall clock elsewhere (e.g. inside a pause). *)
val charge_gc_cpu : t -> float -> unit

(** Pending un-flushed mutator work. *)
val pending : t -> float

(** [flush t ~conc_threads ~conc_run] pushes pending mutator work onto
    the wall clock and offers the elapsed wall time times [conc_threads]
    as CPU budget to [conc_run], which returns the amount consumed. *)
val flush : t -> conc_threads:int -> conc_run:(budget_ns:float -> float) -> unit

(** [advance_idle t ~until ~conc_threads ~conc_run] moves the clock
    forward to [until] (a request-arrival gap), offering the idle time to
    concurrent GC. No-op when [until <= now]. *)
val advance_idle :
  t -> until:float -> conc_threads:int -> conc_run:(budget_ns:float -> float) -> unit

(** [pause t ~wall_ns ~cpu_ns] records a stop-the-world pause: the clock
    advances by [wall_ns], the pause histogram records it, and [cpu_ns]
    CPU cycles are attributed to GC. Pending mutator work must have been
    flushed by the caller ({!Api} guarantees this). [label] tags the
    pause in the event log (Figure 2 timelines). *)
val pause : ?label:string -> t -> wall_ns:float -> cpu_ns:float -> unit

(** The event log: [(start_ns, end_ns, label)] per stop-the-world pause
    and per concurrent-GC activity slice, in chronological order. Labels:
    collector pause labels (default ["pause"]) and ["concurrent"]. *)
val events : t -> (float * float * string) list

(** While [interference t > 0.], mutator wall time is inflated by that
    fraction (set during concurrent evacuation). *)
val set_interference : t -> float -> unit

val interference : t -> float

(* Accounting snapshots. *)

val mutator_cpu : t -> float
val gc_cpu : t -> float
val stw_wall : t -> float

(** GC CPU cycles spent inside stop-the-world pauses (the easy-to-measure
    component the LBO methodology subtracts, §5.5). *)
val stw_cpu : t -> float
val pause_count : t -> int

(** [last_pause t] is the [(start, end)] interval of the most recent
    stop-the-world pause, [(neg_infinity, neg_infinity)] before the
    first. A front-end scheduling over many simulations reads this to
    tell whether a replica's clock most recently jumped over a pause —
    the raw ingredient of {!Api.gc_signal}. Not cleared by
    {!reset_measurement}: the clock is not reset either. *)
val last_pause : t -> float * float

val pauses : t -> Repro_util.Histogram.t

(** The fault-injection record consulted by {!Api} and the collectors;
    {!Fault.none} unless a harness installed an injector. The simulation
    clock is the natural distribution point: both the API and every
    collector already hold the [Sim.t]. *)
val faults : t -> Fault.t

val set_faults : t -> Fault.t -> unit

(** The trace-capture hooks consulted by {!Api} and the generative
    mutator; {!Tracer.none} unless a recorder is attached. Distributed
    through the clock for the same reason as {!faults}: everything that
    must emit events already holds the [Sim.t]. *)
val tracer : t -> Tracer.t

val set_tracer : t -> Tracer.t -> unit

(** The host-side work-packet pool collector phases partition onto —
    {!Repro_par.Par.Pool.serial} (inline execution) unless a harness
    installed one via [--gc-threads]. Distributed through the clock for
    the same reason as {!faults}: every collector already holds the
    [Sim.t]. The pool affects host execution only; simulated pause
    costs still come from {!Cost_model.gc_threads}. *)
val pool : t -> Repro_par.Par.Pool.t

val set_pool : t -> Repro_par.Par.Pool.t -> unit

(** [set_on_pause_end t f]: [f label] runs at the end of every {!pause}
    (after accounting) — the verifier's post-pause safepoint hook. *)
val set_on_pause_end : t -> (string -> unit) -> unit

(** Allocation counters, maintained by {!Api}. *)
val note_alloc : t -> bytes:int -> unit

val alloc_bytes : t -> int
val alloc_count : t -> int

(** Barrier-attributed mutator CPU, maintained by {!Api} (fast paths) and
    the collectors (slow paths). A sub-account of {!mutator_cpu}: the
    cycles the distilled-cost methodology charges to the collector's
    barrier rather than to useful application work. Zeroed by
    {!reset_measurement}. *)
val note_barrier : t -> float -> unit

val barrier_cpu : t -> float

(** Wall-clock ns the mutator spent stalled inside the allocation slow
    path ({!Api.try_alloc}'s collect/escalate ladder), maintained by
    {!Api}. Zeroed by {!reset_measurement}. *)
val note_alloc_stall : t -> float -> unit

val alloc_stall_ns : t -> float
