open Repro_heap

(* Reclassify every non-reserve data block from the RC table, rebuilding
   the free lists, so partially filled compaction destinations become
   recyclable. *)
let reclassify heap =
  let cfg = heap.Heap.cfg in
  let in_reserve = Hashtbl.create 8 in
  Repro_util.Vec.iter (fun b -> Hashtbl.replace in_reserve b ()) heap.Heap.reserve;
  for b = 0 to Heap_config.blocks cfg - 1 do
    if not (Hashtbl.mem in_reserve b) then begin
      match Blocks.state heap.Heap.blocks b with
      | Blocks.In_use | Blocks.Recyclable ->
        if Rc_table.block_is_free heap.Heap.rc cfg b then
          Blocks.set_state heap.Heap.blocks b Blocks.Free
        else if Rc_table.free_lines_in_block heap.Heap.rc cfg b > 0 then
          Blocks.set_state heap.Heap.blocks b Blocks.Recyclable
        else Blocks.set_state heap.Heap.blocks b Blocks.In_use
      | Blocks.Free | Blocks.Owned | Blocks.Los_backing -> ()
    end
  done;
  Heap.rebuild_free_lists heap

let compact heap tc ~cost ~threads ~gc_alloc =
  let cfg = heap.Heap.cfg in
  let copied = ref 0 in
  let progress = ref true in
  let rounds = ref 0 in
  let enough () =
    (* Stop once a comfortable fraction of the heap is completely free. *)
    Heap.available_blocks heap >= Heap_config.blocks cfg / 4
  in
  while !progress && (not (enough ())) && !rounds < 8 do
    incr rounds;
    progress := false;
    reclassify heap;
    let budget = ref (Heap.available_blocks heap * cfg.block_bytes * 9 / 10) in
    if !budget > 0 then begin
      (* Sparsest-first selection, cumulative live within the free-block
         budget so every selected block empties completely. *)
      let candidates = ref [] in
      for b = 0 to Heap_config.blocks cfg - 1 do
        match Blocks.state heap.Heap.blocks b with
        | Blocks.In_use | Blocks.Recyclable ->
          let live = Heap.live_bytes_in_block heap b in
          (* Dense blocks are not worth copying. *)
          if live > 0 && live * 100 < cfg.block_bytes * 85 then
            candidates := (b, live) :: !candidates
        | Blocks.Free | Blocks.Owned | Blocks.Los_backing -> ()
      done;
      let sorted = List.sort (fun (_, a) (_, b) -> compare a b) !candidates in
      let targets =
        List.filter
          (fun (_, live) ->
            if !budget >= live then begin
              budget := !budget - live;
              true
            end
            else false)
          sorted
      in
      List.iter (fun (b, _) -> Blocks.set_target heap.Heap.blocks b true) targets;
      List.iter
        (fun (b, _) ->
          let residents = Blocks.residents heap.Heap.blocks b in
          (* [residents] mutates under evacuation pushes; the snapshot
             length bounds the scan to the pre-evacuation entries. *)
          let n0 = Repro_util.Vec.length residents in
          for r = 0 to n0 - 1 do
            let id = Repro_util.Vec.get residents r in
            let obj = Obj_model.Registry.find_live heap.Heap.registry id in
            if
              obj.Obj_model.id <> Obj_model.null
              && Addr.block_of cfg (Obj_model.addr obj) = b
            then
              if Heap.evacuate heap gc_alloc obj then begin
                copied := !copied + obj.size;
                progress := true;
                Trace_cost.add_parallel tc ~threads
                  ~cost_ns:(cost.Cost_model.copy_ns_per_byte *. Float.of_int obj.size)
              end
          done;
          Trace_cost.add_parallel tc ~threads ~cost_ns:cost.Cost_model.sweep_block_ns;
          Blocks.compact heap.Heap.blocks b ~live:(fun id ->
              let obj = Obj_model.Registry.find_live heap.Heap.registry id in
              obj.Obj_model.id <> Obj_model.null
              && Addr.block_of cfg (Obj_model.addr obj) = b))
        targets;
      List.iter (fun (b, _) -> Blocks.set_target heap.Heap.blocks b false) targets;
      Repro_heap.Bump_allocator.retire_all gc_alloc
    end
  done;
  reclassify heap;
  !copied
