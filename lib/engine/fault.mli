(** Deterministic, seeded fault injection.

    A fault record is a set of decision closures consulted at the
    corruption sites wired through {!Api}, {!Sim} and the collectors:

    - [drop_barrier]: {!Api.write} skips the collector's write barrier
      (the store still happens) — models a lost coalescing-log entry.
    - [skip_decrement]: LXR discards a queued reference-count decrement.
    - [flip_rc]: {!Api.write} perturbs one RC-table entry of the written
      object (a body granule when it has one, else the header).
    - [corrupt_remset]: LXR records a remembered-set entry with an
      out-of-range field index.
    - [fail_alloc]: {!Api.try_alloc} treats a first allocation attempt as
      heap-full, forcing the degradation ladder to run.

    Each closure returns [true] when the fault fires (already counted in
    [counts]). Sites guard every consultation with {!active}, so the
    default {!none} record costs one physical-equality test per site. *)

type counts = {
  mutable dropped_barriers : int;
  mutable skipped_decrements : int;
  mutable flipped_rc : int;
  mutable corrupted_remsets : int;
  mutable forced_alloc_failures : int;
}

type t = {
  drop_barrier : unit -> bool;
  skip_decrement : unit -> bool;
  flip_rc : unit -> bool;
  corrupt_remset : unit -> bool;
  fail_alloc : unit -> bool;
  counts : counts;
}

(** The no-faults record; every draw is [false] with no PRNG work. *)
val none : t

(** [active t] is [t != none] — the zero-cost-when-off guard. *)
val active : t -> bool

(** [create ~seed ()] builds an injector with the given per-site
    probabilities (all default 0). Equal seeds and rates give identical
    fault streams. *)
val create :
  ?drop_barrier:float ->
  ?skip_decrement:float ->
  ?flip_rc:float ->
  ?corrupt_remset:float ->
  ?fail_alloc:float ->
  seed:int ->
  unit ->
  t

(** Fired-fault counters as stats-style pairs. *)
val counts_alist : t -> (string * float) list

(** Recognized spec classes: drop-barrier, skip-dec, rc-flip, remset,
    alloc-fail. *)
val class_names : string list

(** [of_spec ~seed "drop-barrier:1e-4,rc-flip:0.01"] parses a CLI spec. *)
val of_spec : seed:int -> string -> (t, string) result

(** {2 Service-tier fault classes}

    Whole-replica and arrival-process faults for the fleet serving tier
    ([lib/service]): declarative events scheduled against the fleet
    timeline by [Repro_service.Chaos] (checkpoint-quantized, so firings
    are bit-identical across domain counts), not per-operation
    probability draws. They live here so the engine owns the complete
    fault taxonomy. *)

type service_class =
  | Replica_crash  (** the replica process dies; in-flight work is lost *)
  | Replica_stall
      (** the replica keeps serving but every request runs slower by a
          factor for a window (CPU antagonist / noisy neighbour) *)
  | Heap_shrink
      (** operational heap resize under load: the replica is restarted
          into a heap scaled by a factor < 1 *)
  | Flash_crowd
      (** the arrival process spikes by a factor for a window *)

(** Every service class with its canonical spec name: ["crash"],
    ["stall"], ["heap-shrink"], ["flash-crowd"]. *)
val service_classes : (string * service_class) list

val service_class_names : string list
val service_class_name : service_class -> string

(** Case-insensitive lookup; [None] for unknown names (the caller adds
    its own did-you-mean hint). *)
val service_class_of_string : string -> service_class option
