let mb = 1024 * 1024

let make ~name ~min_heap_mb ~alloc_mb ~rate ~obj ~large_pct ~survival_pct
    ?(reads = 8) ?(mutations = 0.4) ?(churn = 1) ?(cyclic = 0.05)
    ?(chain = 0.3) ?(list_len = 200) ?(frag_classes = []) ?(phase_allocs = 0)
    ?(phase_churn = 16) ?request ~paper_min ~paper_rate () =
  { Workload.name;
    min_heap_bytes = int_of_float (min_heap_mb *. Float.of_int mb);
    total_alloc_bytes = int_of_float (alloc_mb *. Float.of_int mb);
    alloc_rate_mb_s = rate;
    mean_object_bytes = obj;
    large_fraction = Float.of_int large_pct /. 100.0;
    survival_rate = Float.of_int survival_pct /. 100.0;
    reads_per_alloc = reads;
    extra_mutations = mutations;
    churn;
    cyclic_fraction = cyclic;
    chain_fraction = chain;
    linked_list_len = list_len;
    frag_classes;
    phase_allocs;
    phase_churn;
    request;
    paper_min_heap_mb = paper_min;
    paper_alloc_mb_s = paper_rate;
    paper_survival_pct = survival_pct }

let request ~count ~allocs ~work ~util =
  { Workload.count;
    allocs_per_request = allocs;
    work_ns_per_request = work;
    target_utilization = util }

(* Minimum heaps are ~1/32 of the paper's (clamped to 1-4 MB) and
   allocation volumes are chosen to keep the published allocation-to-heap
   pressure ordering while one run stays around 10^5..10^6 objects. *)

let all =
  [ make ~name:"cassandra" ~min_heap_mb:4.0 ~alloc_mb:20.0 ~rate:596.0 ~obj:50
      ~large_pct:0 ~survival_pct:4
      ~request:(request ~count:8000 ~allocs:48 ~work:60_000.0 ~util:0.7)
      ~paper_min:263 ~paper_rate:596 ();
    make ~name:"h2" ~min_heap_mb:4.0 ~alloc_mb:20.0 ~rate:1534.0 ~obj:64
      ~large_pct:0 ~survival_pct:17 ~mutations:0.8
      ~request:(request ~count:8000 ~allocs:38 ~work:15_000.0 ~util:0.85)
      ~paper_min:1191 ~paper_rate:1534 ();
    make ~name:"lusearch" ~min_heap_mb:1.7 ~alloc_mb:20.0 ~rate:9520.0 ~obj:97
      ~large_pct:1 ~survival_pct:1
      ~request:(request ~count:12000 ~allocs:17 ~work:1_500.0 ~util:0.95)
      ~paper_min:53 ~paper_rate:9520 ();
    make ~name:"tomcat" ~min_heap_mb:2.2 ~alloc_mb:20.0 ~rate:1440.0 ~obj:95
      ~large_pct:21 ~survival_pct:1
      ~request:(request ~count:6000 ~allocs:35 ~work:40_000.0 ~util:0.7)
      ~paper_min:71 ~paper_rate:1440 ();
    make ~name:"avrora" ~min_heap_mb:1.0 ~alloc_mb:16.0 ~rate:46.0 ~obj:45
      ~large_pct:0 ~survival_pct:5 ~mutations:1.0 ~chain:0.5 ~list_len:6000
      ~paper_min:7 ~paper_rate:46 ();
    make ~name:"batik" ~min_heap_mb:4.0 ~alloc_mb:8.0 ~rate:257.0 ~obj:71
      ~large_pct:10 ~survival_pct:51 ~cyclic:0.20 ~paper_min:1076
      ~paper_rate:257 ();
    make ~name:"biojava" ~min_heap_mb:4.0 ~alloc_mb:20.0 ~rate:800.0 ~obj:37
      ~large_pct:3 ~survival_pct:2 ~paper_min:191 ~paper_rate:800 ();
    make ~name:"eclipse" ~min_heap_mb:4.0 ~alloc_mb:20.0 ~rate:595.0 ~obj:100
      ~large_pct:29 ~survival_pct:17 ~paper_min:534 ~paper_rate:595 ();
    make ~name:"fop" ~min_heap_mb:2.3 ~alloc_mb:16.0 ~rate:557.0 ~obj:58
      ~large_pct:3 ~survival_pct:10 ~paper_min:73 ~paper_rate:557 ();
    make ~name:"graphchi" ~min_heap_mb:4.0 ~alloc_mb:20.0 ~rate:1117.0 ~obj:134
      ~large_pct:3 ~survival_pct:4 ~paper_min:255 ~paper_rate:1117 ();
    make ~name:"h2o" ~min_heap_mb:4.0 ~alloc_mb:12.0 ~rate:3065.0 ~obj:168
      ~large_pct:23 ~survival_pct:14 ~mutations:0.1 ~paper_min:3689
      ~paper_rate:3065 ();
    make ~name:"jython" ~min_heap_mb:4.0 ~alloc_mb:20.0 ~rate:1038.0 ~obj:60
      ~large_pct:4 ~survival_pct:1 ~cyclic:0.02 ~paper_min:325 ~paper_rate:1038
      ();
    make ~name:"luindex" ~min_heap_mb:1.3 ~alloc_mb:18.0 ~rate:335.0 ~obj:288
      ~large_pct:75 ~survival_pct:3 ~paper_min:41 ~paper_rate:335 ();
    make ~name:"pmd" ~min_heap_mb:4.0 ~alloc_mb:20.0 ~rate:3952.0 ~obj:46
      ~large_pct:2 ~survival_pct:14 ~paper_min:637 ~paper_rate:3952 ();
    make ~name:"sunflow" ~min_heap_mb:2.7 ~alloc_mb:20.0 ~rate:6267.0 ~obj:45
      ~large_pct:0 ~survival_pct:3 ~paper_min:87 ~paper_rate:6267 ();
    make ~name:"xalan" ~min_heap_mb:1.3 ~alloc_mb:18.0 ~rate:4265.0 ~obj:122
      ~large_pct:41 ~survival_pct:17 ~mutations:2.0 ~cyclic:0.10 ~paper_min:43
      ~paper_rate:4265 ();
    make ~name:"zxing" ~min_heap_mb:4.0 ~alloc_mb:16.0 ~rate:1750.0 ~obj:183
      ~large_pct:50 ~survival_pct:23 ~paper_min:153 ~paper_rate:1750 ();
    (* Synthetic (not DaCapo): the journal-flood adversary. Every
       allocation fires a 24-store pointer-churn burst against the
       mature structure, so a journalling barrier (one record per store)
       emits ~24x the records of a coalescing field-logging barrier (at
       most one log per field per epoch) and the concurrent drain falls
       behind the mutator. The metered request model makes the resulting
       drain-lag pause inflation visible as tail latency. *)
    make ~name:"jflood" ~min_heap_mb:1.7 ~alloc_mb:20.0 ~rate:6000.0 ~obj:72
      ~large_pct:0 ~survival_pct:4 ~mutations:1.0 ~churn:24 ~cyclic:0.08
      ~request:(request ~count:12000 ~allocs:17 ~work:1_500.0 ~util:0.95)
      ~paper_min:0 ~paper_rate:0 ();
    (* Synthetic: the fragmentation adversary. Allocation sizes cycle
       through interleaved size classes with opposed lifetimes — tiny
       near-immortal cells land between short-lived medium objects, so
       almost every block keeps a few live lines and block-granularity
       reclamation starves. Line-accurate recycling, evacuation and
       wastage-driven defrag triggers are what the controllers must
       learn to lean on here. *)
    make ~name:"fragger" ~min_heap_mb:2.5 ~alloc_mb:18.0 ~rate:2400.0 ~obj:120
      ~large_pct:0 ~survival_pct:8 ~mutations:0.6 ~cyclic:0.02 ~chain:0.1
      ~frag_classes:
        [ (48, 0.45); (512, 0.01); (48, 0.45); (2048, 0.0); (256, 0.02) ]
      ~request:(request ~count:8000 ~allocs:24 ~work:8_000.0 ~util:0.85)
      ~paper_min:0 ~paper_rate:0 ();
    (* Synthetic: the phase shifter. Alternates a lusearch-like regime
       (high allocation rate, ~1% survival, no churn) with jflood-like
       pointer-churn bursts every [phase_allocs] allocations. Statically
       tuned triggers fit at most one regime; an online controller must
       re-tune across the shift. *)
    make ~name:"phaser" ~min_heap_mb:2.0 ~alloc_mb:20.0 ~rate:7000.0 ~obj:90
      ~large_pct:1 ~survival_pct:2 ~mutations:0.3 ~cyclic:0.04
      ~phase_allocs:4096 ~phase_churn:24
      ~request:(request ~count:10000 ~allocs:20 ~work:2_500.0 ~util:0.9)
      ~paper_min:0 ~paper_rate:0 () ]

(* The controller adversaries carry request models too (so lxr_fleet can
   drive them), but they are not part of the paper's latency set. *)
let latency_sensitive =
  List.filter
    (fun w ->
      w.Workload.request <> None
      && not (List.mem w.Workload.name [ "fragger"; "phaser" ]))
    all

let find name = List.find (fun w -> w.Workload.name = name) all
let names = List.map (fun w -> w.Workload.name) all
