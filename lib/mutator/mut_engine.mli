(** The generative mutator.

    Drives an {!Repro_engine.Api.t} with an allocation, mutation, and read
    stream matching a {!Workload.t}: a nursery ring keeps the most recent
    allocations stack-reachable (most die when their slot is overwritten);
    survivors are installed into a two-level long-lived structure whose
    slots churn (mature garbage); a fraction of survivors form unreachable
    cycle pairs (SATB-only garbage) or chain to the previous survivor
    (deep mature paths); an optional long singly-linked list exercises the
    tracing pathology; and the four latency workloads run a metered
    request loop with Poisson arrivals and unbounded queueing, recording
    per-request metered latency (arrival to completion). *)

type output = {
  latency : Repro_util.Histogram.t option;
      (** metered request latencies in ns, for latency workloads *)
  requests : int;
  survived_bytes : int;  (** bytes inserted into the long-lived structure *)
  large_bytes : int;  (** bytes allocated as large objects *)
  oom : string option;
      (** [Some description] when the degradation ladder was exhausted and
          the run was cut short; partial counters above remain valid *)
}

(** [run api prng workload ~scale] performs the whole benchmark (setup
    phase plus measured phase, scaled by [scale]) and finishes the
    collector. [on_measurement_start] fires between the two phases so the
    harness can reset its accumulators (warmed-up measurement, as in the
    paper's fifth-iteration methodology). Allocation failure does not
    raise: when {!Repro_engine.Api.try_alloc} exhausts the degradation
    ladder the run stops early and the exhaustion is reported in
    [oom]. *)
val run :
  ?on_measurement_start:(unit -> unit) ->
  Repro_engine.Api.t ->
  Repro_util.Prng.t ->
  Workload.t ->
  scale:float ->
  output

(** {2 Request server}

    The open-loop request serving interface used by the fleet tier
    ([lib/service]): the same setup phase and the same per-request
    behaviour as {!run}'s metered loop, but with arrival times decided by
    an external front-end instead of a per-heap Poisson clock, so one
    mutator can act as a replica behind a load balancer. *)

type server

(** [make_server api prng w] runs the setup phase (long-lived structure,
    linked list, mature population) and returns the server, or [Error
    description] if the workload carries no request model or setup
    exhausted the degradation ladder. *)
val make_server :
  Repro_engine.Api.t -> Repro_util.Prng.t -> Workload.t -> (server, string) result

(** [server_measurement_start srv] zeroes the replica's accumulators
    (simulator measurement counters and survived/large-byte counts) —
    the fleet-tier equivalent of {!run}'s [on_measurement_start]. *)
val server_measurement_start : server -> unit

(** [serve srv ~arrival] serves one metered request that arrived at
    virtual time [arrival]: idles to the arrival if the replica's clock
    is behind it (donating the gap to concurrent GC), then performs the
    request's allocations and compute. Returns the completion time
    ([Sim.now] afterwards), or [Error description] when the degradation
    ladder was exhausted mid-request — the replica is then dead and must
    not be served again. *)
val serve : server -> arrival:float -> (float, string) result

(** [server_finish srv] flushes and runs the collector's final hook
    ({!Repro_engine.Api.finish}). *)
val server_finish : server -> unit
