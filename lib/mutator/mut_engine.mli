(** The generative mutator.

    Drives an {!Repro_engine.Api.t} with an allocation, mutation, and read
    stream matching a {!Workload.t}: a nursery ring keeps the most recent
    allocations stack-reachable (most die when their slot is overwritten);
    survivors are installed into a two-level long-lived structure whose
    slots churn (mature garbage); a fraction of survivors form unreachable
    cycle pairs (SATB-only garbage) or chain to the previous survivor
    (deep mature paths); an optional long singly-linked list exercises the
    tracing pathology; and the four latency workloads run a metered
    request loop with Poisson arrivals and unbounded queueing, recording
    per-request metered latency (arrival to completion). *)

type output = {
  latency : Repro_util.Histogram.t option;
      (** metered request latencies in ns, for latency workloads *)
  requests : int;
  survived_bytes : int;  (** bytes inserted into the long-lived structure *)
  large_bytes : int;  (** bytes allocated as large objects *)
  oom : string option;
      (** [Some description] when the degradation ladder was exhausted and
          the run was cut short; partial counters above remain valid *)
}

(** [run api prng workload ~scale] performs the whole benchmark (setup
    phase plus measured phase, scaled by [scale]) and finishes the
    collector. [on_measurement_start] fires between the two phases so the
    harness can reset its accumulators (warmed-up measurement, as in the
    paper's fifth-iteration methodology). Allocation failure does not
    raise: when {!Repro_engine.Api.try_alloc} exhausts the degradation
    ladder the run stops early and the exhaustion is reported in
    [oom]. *)
val run :
  ?on_measurement_start:(unit -> unit) ->
  Repro_engine.Api.t ->
  Repro_util.Prng.t ->
  Workload.t ->
  scale:float ->
  output
