(** Workload descriptors.

    Each synthetic benchmark reproduces the published characteristics of
    its DaCapo Chopin counterpart (Table 3): minimum heap, allocation
    volume relative to heap, allocation rate, mean object size,
    large-object byte fraction, and nursery survival rate — plus
    structural features the collector observes (cycles, long chains,
    avrora's long live linked list) and, for the four latency-sensitive
    workloads, a metered request model (§4 "Latency Measures"). *)

type request = {
  count : int;  (** requests per run *)
  allocs_per_request : int;
  work_ns_per_request : float;  (** intrinsic compute per request *)
  target_utilization : float;
      (** metered arrival rate = utilization / nominal service time *)
}

type t = {
  name : string;
  min_heap_bytes : int;  (** simulated minimum heap *)
  total_alloc_bytes : int;  (** allocation budget for one run *)
  alloc_rate_mb_s : float;  (** drives compute charged per allocated byte *)
  mean_object_bytes : int;
  large_fraction : float;  (** fraction of bytes in > 16 KB objects *)
  survival_rate : float;  (** fraction of young bytes surviving the nursery *)
  reads_per_alloc : int;  (** field loads per allocation (read/write ratio) *)
  extra_mutations : float;  (** additional mature pointer stores per allocation *)
  churn : int;
      (** pointer stores per mutation burst: when the [extra_mutations]
          coin fires, the mutator rewires this many mature pointers
          back-to-back (default 1). High values model pointer-churn
          bursts that flood logging/journalling write barriers. *)
  cyclic_fraction : float;  (** survivors that form an unreachable-cycle pair *)
  chain_fraction : float;  (** survivors linked to the previous survivor *)
  linked_list_len : int;  (** live singly-linked list built at startup *)
  frag_classes : (int * float) list;
      (** fragmentation adversary: when non-empty, allocation sizes cycle
          through these [(exact_bytes, survival_rate)] classes instead of
          the geometric draw, interleaving lifetimes across size classes
          so short-lived objects pepper every block that also holds a
          long-lived one (line-level fragmentation that defeats
          block-granularity reclamation). Empty for normal workloads —
          the guard keeps their PRNG streams bit-identical. *)
  phase_allocs : int;
      (** phase-shifting adversary: when positive, the mutator flips
          regime every [phase_allocs] allocations — phase A runs the
          base (lusearch-like) parameters, phase B forces a
          jflood-like pointer-churn burst on every allocation. 0
          disables phasing. *)
  phase_churn : int;  (** stores per burst during phase B *)
  request : request option;
  (* Published values, kept for Table 3's paper-vs-measured report. *)
  paper_min_heap_mb : int;
  paper_alloc_mb_s : int;
  paper_survival_pct : int;
}

(** [nursery_ring_slots] — how many recent allocations stay
    stack-reachable; bounds incidental promotion. *)
val nursery_ring_slots : int

(** [mature_fill_fraction] — the long-lived structure occupies this
    fraction of [min_heap_bytes]. *)
val mature_fill_fraction : float

(** [extra_work_ns t ~size] is the compute charged for allocating [size]
    bytes so the workload's allocation rate matches [alloc_rate_mb_s]
    (intrinsic operation costs are netted out). *)
val extra_work_ns : t -> size:int -> float

(** [nominal_service_ns t r] is the collector-independent estimate of one
    request's service time used to fix the metered arrival rate. *)
val nominal_service_ns : t -> request -> float
