type request = {
  count : int;
  allocs_per_request : int;
  work_ns_per_request : float;
  target_utilization : float;
}

type t = {
  name : string;
  min_heap_bytes : int;
  total_alloc_bytes : int;
  alloc_rate_mb_s : float;
  mean_object_bytes : int;
  large_fraction : float;
  survival_rate : float;
  reads_per_alloc : int;
  extra_mutations : float;
  churn : int;
  cyclic_fraction : float;
  chain_fraction : float;
  linked_list_len : int;
  frag_classes : (int * float) list;
  phase_allocs : int;
  phase_churn : int;
  request : request option;
  paper_min_heap_mb : int;
  paper_alloc_mb_s : int;
  paper_survival_pct : int;
}

let nursery_ring_slots = 16
let mature_fill_fraction = 0.55

(* Rough intrinsic cost of one allocation step (allocation, initializing
   stores, reads) that already counts toward mutator time. *)
let intrinsic_ns_per_alloc = 25.0

let extra_work_ns t ~size =
  let ns_per_byte = 1000.0 /. t.alloc_rate_mb_s in
  Float.max 0.0 ((Float.of_int size *. ns_per_byte) -. intrinsic_ns_per_alloc)

let nominal_service_ns t r =
  let per_alloc =
    intrinsic_ns_per_alloc +. extra_work_ns t ~size:t.mean_object_bytes
  in
  r.work_ns_per_request +. (Float.of_int r.allocs_per_request *. per_alloc)
