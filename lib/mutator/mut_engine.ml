open Repro_util
open Repro_engine

let null = Repro_heap.Obj_model.null

(* Root slot assignments (slot [Api.root_slots - 1] is the engine's
   allocation scratch root). *)
let root_mature = 0
let root_list = 1
let root_ring = 2
let root_chain = 3

let mean_large_bytes = 24 * 1024

type output = {
  latency : Histogram.t option;
  requests : int;
  survived_bytes : int;
  large_bytes : int;
  oom : string option;
}

(* Internal control flow for a heap the degradation ladder could not
   save: unwind to [run], which reports the exhaustion as data. *)
exception Oom_stop of Api.oom_info

let alloc_checked api ~size ~nfields =
  match Api.try_alloc api ~size ~nfields with
  | `Ok obj -> obj
  | `Oom info -> raise (Oom_stop info)

let tracer api = Sim.tracer (Api.sim api)

type state = {
  api : Api.t;
  prng : Prng.t;
  w : Workload.t;
  ring : Repro_heap.Obj_model.t;
  mutable ring_cursor : int;
  table : Repro_heap.Obj_model.t;
  chunk_count : int;
  chunk_slots : int;
  p_large : float;
  mean_small : int;
  frag : (int * float) array;
  mutable frag_cursor : int;
  mutable alloc_count : int;
  mutable last_survivor : int;
  mutable survived_bytes : int;
  mutable large_bytes : int;
}

let sample_size st =
  if Prng.bool st.prng st.p_large then begin
    let cfg = (Api.heap st.api).Repro_heap.Heap.cfg in
    let lo = cfg.los_threshold + 1 in
    lo + Prng.int st.prng mean_large_bytes
  end
  else Prng.geometric_size st.prng ~mean:st.mean_small ~min:16 ~max:8192

(* Fragmentation adversary: allocation sizes cycle through the
   interleaved size-class table, each class carrying its own survival
   rate. The cursor is deterministic (no PRNG draw), so the class
   sequence is identical under every collector. *)
let frag_next st =
  let c = st.frag_cursor in
  st.frag_cursor <- (c + 1) mod Array.length st.frag;
  st.frag.(c)

(* Phase shifter: regime B (jflood-like churn bursts) holds for every
   odd window of [phase_allocs] allocations. *)
let in_phase_b st =
  st.w.phase_allocs > 0 && (st.alloc_count / st.w.phase_allocs) land 1 = 1

(* Survived-byte accounting is a mutator decision the replayer cannot
   re-derive, so it is teed to the trace as an annotation event. *)
let note_survived st bytes =
  st.survived_bytes <- st.survived_bytes + bytes;
  let tr = tracer st.api in
  if Tracer.active tr then tr.Tracer.survived ~bytes

let read_chunk st idx =
  let chunk_id = Api.read st.api st.table idx in
  if chunk_id = null then None
  else Repro_heap.Obj_model.Registry.find (Api.heap st.api).registry chunk_id

let random_chunk st = read_chunk st (Prng.int st.prng st.chunk_count)

(* Install a survivor into a random long-lived slot, dropping the previous
   occupant (mature garbage / churn). *)
let insert_mature st id =
  match random_chunk st with
  | None -> ()
  | Some chunk -> Api.write st.api chunk (Prng.int st.prng st.chunk_slots) id

let do_reads st =
  for _ = 1 to st.w.reads_per_alloc do
    match random_chunk st with
    | None -> ()
    | Some chunk -> ignore (Api.read st.api chunk (Prng.int st.prng st.chunk_slots))
  done

(* Rewire a mature pointer: generates coalescing-barrier and decrement
   traffic without allocating. *)
let do_mutation st =
  match (random_chunk st, random_chunk st) with
  | Some a, Some b ->
    let v = Api.read st.api a (Prng.int st.prng st.chunk_slots) in
    Api.write st.api b (Prng.int st.prng st.chunk_slots) v
  | (None | Some _), (None | Some _) -> ()

(* One allocation plus its surrounding activity. *)
let alloc_step st =
  st.alloc_count <- st.alloc_count + 1;
  let size, survival_p =
    if Array.length st.frag = 0 then (sample_size st, st.w.survival_rate)
    else frag_next st
  in
  let nfields = 3 + Prng.int st.prng 4 in
  let obj = alloc_checked st.api ~size ~nfields in
  if size > (Api.heap st.api).Repro_heap.Heap.cfg.los_threshold then
    st.large_bytes <- st.large_bytes + obj.size;
  (* Keep it stack-reachable through the nursery ring; the overwritten
     slot's previous occupant dies unless it was promoted. *)
  Api.write st.api st.ring st.ring_cursor obj.id;
  st.ring_cursor <- (st.ring_cursor + 1) mod Workload.nursery_ring_slots;
  if Prng.bool st.prng survival_p then begin
    note_survived st obj.size;
    insert_mature st obj.id;
    if Prng.bool st.prng st.w.cyclic_fraction then begin
      (* An unreachable-cycle pair: RC alone can never reclaim it. *)
      let partner = alloc_checked st.api ~size:32 ~nfields:2 in
      note_survived st partner.size;
      Api.write st.api obj 1 partner.id;
      Api.write st.api partner 1 obj.id
    end;
    if st.last_survivor <> null && Prng.bool st.prng st.w.chain_fraction then
      Api.write st.api obj 2 st.last_survivor;
    st.last_survivor <- obj.id;
    (* The chain head is a local in a real mutator — expose it as a root
       so it stays live until the next survivor replaces it (and so the
       heap verifier's reachability oracle sees every mutator-held
       reference). *)
    Api.set_root st.api root_chain obj.id
  end;
  do_reads st;
  let mutation_p, churn =
    if in_phase_b st then (1.0, st.w.phase_churn)
    else (st.w.extra_mutations, st.w.churn)
  in
  if Prng.bool st.prng mutation_p then
    for _ = 1 to churn do
      do_mutation st
    done;
  let extra = Workload.extra_work_ns st.w ~size in
  if extra > 0.0 then Api.work st.api ~ns:extra

(* --- Setup: long-lived structure, linked list ------------------------- *)

let build_setup api prng (w : Workload.t) =
  let mature_bytes =
    int_of_float (Workload.mature_fill_fraction *. Float.of_int w.min_heap_bytes)
  in
  let per_survivor =
    Float.of_int w.mean_object_bytes *. (1.0 +. w.cyclic_fraction)
  in
  let capacity = max 64 (int_of_float (Float.of_int mature_bytes /. per_survivor)) in
  let chunk_slots = 32 in
  let chunk_count = max 4 ((capacity + chunk_slots - 1) / chunk_slots) in
  let ring =
    alloc_checked api ~size:(16 + (8 * Workload.nursery_ring_slots))
      ~nfields:Workload.nursery_ring_slots
  in
  Api.set_root api root_ring ring.id;
  let table =
    alloc_checked api ~size:(16 + (8 * chunk_count)) ~nfields:chunk_count
  in
  Api.set_root api root_mature table.id;
  for i = 0 to chunk_count - 1 do
    let chunk =
      alloc_checked api ~size:(16 + (8 * chunk_slots)) ~nfields:chunk_slots
    in
    Api.write api table i chunk.id
  done;
  (* The long live singly-linked list (frontier width 1: the tracing
     pathology of §5.2). *)
  if w.linked_list_len > 0 then begin
    let head = ref (alloc_checked api ~size:32 ~nfields:1) in
    Api.set_root api root_list !head.id;
    for _ = 2 to w.linked_list_len do
      let node = alloc_checked api ~size:32 ~nfields:1 in
      Api.write api node 0 !head.id;
      Api.set_root api root_list node.id;
      head := node
    done
  end;
  let mean_small =
    max 24
      (int_of_float
         (Float.of_int w.mean_object_bytes *. (1.0 -. w.large_fraction)))
  in
  let p_large =
    Float.of_int w.mean_object_bytes *. w.large_fraction
    /. Float.of_int mean_large_bytes
  in
  let st =
    { api; prng; w; ring; ring_cursor = 0; table; chunk_count; chunk_slots;
      p_large; mean_small; frag = Array.of_list w.frag_classes;
      frag_cursor = 0; alloc_count = 0; last_survivor = null;
      survived_bytes = 0; large_bytes = 0 }
  in
  (* Populate the long-lived structure to the target occupancy. *)
  for _ = 1 to capacity do
    let size = Prng.geometric_size prng ~mean:mean_small ~min:16 ~max:8192 in
    let obj = alloc_checked api ~size ~nfields:(3 + Prng.int prng 4) in
    insert_mature st obj.id
  done;
  st

(* --- Measured phases --------------------------------------------------- *)

let run_throughput st ~budget =
  let sim = Api.sim st.api in
  let start = Sim.alloc_bytes sim in
  while Sim.alloc_bytes sim - start < budget do
    alloc_step st
  done

(* One metered request: idle to the arrival (handing the gap to
   concurrent GC), then the request's allocations and compute. Shared by
   the closed single-heap loop below and the fleet serving tier's
   replicas, so both observe the identical mutator behaviour. *)
let serve_one st (r : Workload.request) ~arrival =
  let sim = Api.sim st.api in
  if Sim.now sim < arrival then Api.idle_until st.api arrival;
  for _ = 1 to r.allocs_per_request do
    alloc_step st
  done;
  if r.work_ns_per_request > 0.0 then begin
    (* Spread the compute over several safepoints so collections are not
       artificially deferred to request boundaries. *)
    let chunk = r.work_ns_per_request /. 8.0 in
    for _ = 1 to 8 do
      Api.work st.api ~ns:chunk;
      Api.safepoint st.api
    done
  end

let run_requests st (r : Workload.request) ~count =
  let sim = Api.sim st.api in
  let hist = Histogram.create () in
  let service = Workload.nominal_service_ns st.w r in
  let mean_gap = service /. r.target_utilization in
  let tr = tracer st.api in
  let arrival = ref (Sim.now sim) in
  for _ = 1 to count do
    let gap = Prng.exponential st.prng ~mean:mean_gap in
    arrival := !arrival +. gap;
    if Tracer.active tr then tr.Tracer.request_start ~gap;
    serve_one st r ~arrival:!arrival;
    let metered = Sim.now sim -. !arrival in
    Histogram.record hist (int_of_float (Float.max 1.0 metered));
    if Tracer.active tr then tr.Tracer.request_end ()
  done;
  hist

(* --- Request server (fleet serving tier) ------------------------------- *)

type server = { st : state; request : Workload.request }

let make_server api prng (w : Workload.t) =
  match w.request with
  | None -> Error (w.name ^ " carries no metered request model")
  | Some r -> (
    match build_setup api prng w with
    | st -> Ok { st; request = r }
    | exception Oom_stop info -> Error (Api.describe_oom info))

let server_measurement_start srv =
  Sim.reset_measurement (Api.sim srv.st.api);
  srv.st.survived_bytes <- 0;
  srv.st.large_bytes <- 0

let serve srv ~arrival =
  match serve_one srv.st srv.request ~arrival with
  | () -> Ok (Sim.now (Api.sim srv.st.api))
  | exception Oom_stop info -> Error (Api.describe_oom info)

let server_finish srv = Api.finish srv.st.api

let run ?(on_measurement_start = fun () -> ()) api prng (w : Workload.t) ~scale =
  let oom = ref None in
  let st_opt =
    try Some (build_setup api prng w)
    with Oom_stop info ->
      oom := Some info;
      None
  in
  match st_opt with
  | None ->
    Api.finish api;
    { latency = None;
      requests = 0;
      survived_bytes = 0;
      large_bytes = 0;
      oom = Option.map Api.describe_oom !oom }
  | Some st ->
    let tr = tracer api in
    if Tracer.active tr then tr.Tracer.measurement_start ();
    on_measurement_start ();
    st.survived_bytes <- 0;
    st.large_bytes <- 0;
    let latency, requests =
      try
        match w.request with
        | Some r ->
          let count = max 50 (int_of_float (Float.of_int r.count *. scale)) in
          (Some (run_requests st r ~count), count)
        | None ->
          let budget =
            max (256 * 1024)
              (int_of_float (Float.of_int w.total_alloc_bytes *. scale))
          in
          run_throughput st ~budget;
          (None, 0)
      with Oom_stop info ->
        oom := Some info;
        (None, 0)
    in
    Api.finish api;
    { latency;
      requests;
      survived_bytes = st.survived_bytes;
      large_bytes = st.large_bytes;
      oom = Option.map Api.describe_oom !oom }
