(** Drives one (workload, collector, heap size) simulation to completion
    and gathers every metric the experiments need. *)

type result = {
  workload : string;
  collector : string;
  heap_factor : float;
  heap_bytes : int;
  ok : bool;
      (** false: the collector refused the heap, the degradation ladder
          was exhausted, or the integrity verifier found violations *)
  error : string option;
  wall_ns : float;  (** total virtual run time *)
  mutator_cpu_ns : float;
  gc_cpu_ns : float;
  stw_wall_ns : float;
  stw_cpu_ns : float;
  alloc_stall_ns : float;
      (** mutator wall time lost waiting on allocation slow paths *)
  barrier_cpu_ns : float;  (** read/write-barrier overhead within mutator CPU *)
  pause_count : int;
  pauses : Repro_util.Histogram.t;  (** pause durations, ns *)
  latency : Repro_util.Histogram.t option;  (** metered request latency, ns *)
  requests : int;
  alloc_bytes : int;
  alloc_count : int;
  survived_bytes : int;
  large_bytes : int;
  collector_stats : (string * float) list;
  ladder : (string * float) list;
      (** degradation-ladder rung counts ({!Repro_engine.Api.ladder_alist}) *)
  violations :
    (Repro_verify.Verifier.safepoint * string * Repro_verify.Verifier.violation)
    list;  (** integrity violations, when [verify] was requested *)
  verifier_checks : int;  (** safepoint checks executed *)
}

(** [stat r key] looks up a collector counter, defaulting to [0.]. *)
val stat : result -> string -> float

(** Queries per second for latency workloads (0 otherwise). *)
val qps : result -> float

(** [run ~workload ~factory ~heap_factor ()] builds the heap at
    [heap_factor x] the workload's minimum, instantiates the collector,
    and runs the benchmark. [scale] scales allocation volume and request
    count (default 1.0); [seed] fixes the PRNG; [heap_config] customizes
    block size, RC bits etc. for the sensitivity experiments. [verify]
    attaches the heap-integrity verifier at the given safepoints;
    [inject] installs a deterministic fault injector
    ({!Repro_engine.Fault.of_spec}) on the simulator. Allocation
    exhaustion no longer raises — it is reported via [ok]/[error] with
    the partial metrics intact.

    [record_to] tees the run's mutator-observable event stream into a
    trace recorder and writes the finished trace to the given path;
    recording is observationally free (a recorded run's metrics are
    bit-identical to an unrecorded one's).

    [gc_threads] (default 1) sizes the host-side work-packet pool the
    collector phases run on ({!Repro_par.Par}). It affects host
    execution only: results are bit-identical for every value, and the
    {b simulated} pause costs still come from
    [Cost_model.gc_threads]. *)
val run :
  ?seed:int ->
  ?scale:float ->
  ?cost:Repro_engine.Cost_model.t ->
  ?gc_threads:int ->
  ?heap_config:(heap_bytes:int -> Repro_heap.Heap_config.t) ->
  ?verify:Repro_verify.Verifier.safepoint list ->
  ?inject:Repro_engine.Fault.t ->
  ?record_to:string ->
  workload:Repro_mutator.Workload.t ->
  factory:Repro_engine.Collector.factory ->
  heap_factor:float ->
  unit ->
  result

(** [replay ~trace ~factory ()] is {!run} with the recorded trace in the
    generative mutator's place: the heap is rebuilt from the trace
    header's geometry and the event stream drives the collector through
    {!Repro_trace.Replay}. Replaying under the recording's collector
    reproduces the live run's metrics exactly; replaying under a
    different collector measures that collector on the identical mutator
    work. [verify], [inject], and [record_to] behave as in {!run}
    (recording a replay of an untampered trace reproduces the trace byte
    for byte). The cost model is not captured in traces; pass [cost] if
    the recording used a non-default one.

    [loop] selects the replay inner loop ({!Repro_trace.Replay.loop}):
    [`Auto] (default) uses the specialised zero-allocation loop when no
    fault injector is active, [`Generic] forces the reference
    interpreter. Both produce bit-identical results; the knob exists for
    the CI cross-check. *)
val replay :
  ?cost:Repro_engine.Cost_model.t ->
  ?gc_threads:int ->
  ?verify:Repro_verify.Verifier.safepoint list ->
  ?inject:Repro_engine.Fault.t ->
  ?record_to:string ->
  ?loop:Repro_trace.Replay.loop ->
  trace:Repro_trace.Trace_format.t ->
  factory:Repro_engine.Collector.factory ->
  unit ->
  result
