(** One generator per table and figure of the paper's evaluation (§5).

    Each function runs the required (workload x collector x heap) matrix
    and renders a paper-style text table, annotated with the published
    values where the paper reports them, so shape can be compared
    directly. All randomness is seeded; [iterations] controls how many
    seeds feed the confidence intervals. *)

type opts = {
  scale : float;  (** workload scale factor (allocation volume / requests) *)
  iterations : int;  (** independent seeded repetitions *)
  seed : int;
}

val default_opts : opts

(** Table 1: lusearch at 1.3x — throughput, query latency and GC pauses
    for G1, Shenandoah, LXR, and Shenandoah at a 10x heap. *)
val table1 : opts -> string

(** Table 3: measured benchmark characteristics vs published ones. *)
val table3 : opts -> string

(** Table 4: request latency percentiles, 4 workloads x 4 collectors at
    1.3x. *)
val table4 : opts -> string

(** Figure 5: latency response curves (percentile series per
    collector). *)
val figure5 : opts -> string

(** Table 5: geomean 99.99% latency and time relative to G1 at 1.3x, 2x
    and 6x heaps. *)
val table5 : opts -> string

(** Table 6: throughput at 2x heap for all benchmarks. *)
val table6 : opts -> string

(** Table 7: LXR breakdown — concurrency ablations, pause statistics,
    barrier and reclamation counters. *)
val table7 : opts -> string

(** Figure 7a/7b: LBO wall-clock and total-cycle overhead curves across
    heap sizes. *)
val figure7 : opts -> string

(** §5.4: block size, RC bit width, free-block buffer sensitivity, plus
    the survival-trigger ablation. *)
val sensitivity : opts -> string

(** Fleet serving tier: lusearch at 1.3x behind 4 replicas, every
    production collector crossed with every load-balancing policy.
    Shows gc-aware routing hiding per-replica pauses from the
    fleet-level tail. *)
val fleet : opts -> string

(** Fleet resilience: the same serving tier under a seeded chaos
    schedule (replica crash, heap-shrink restart, flash crowd), with and
    without gc-aware routing + client retries. Shows the resilient
    configuration winning both the p99.9 tail and availability. *)
val chaos : opts -> string

(** Journal flood: the synthetic jflood workload's pointer-churn bursts
    (24 mature stores per allocation) against lusearch as control, for
    G1/LXR/Shenandoah/Journal-RC at 2x heap. Documents the drain-lag
    pathology: journal records outrun the concurrent fold, snapshot
    pauses inherit the backlog, and LXR's coalescing barrier wins. *)
val journal_flood : opts -> string

(** Distilled cost: every registered collector (plus LXR) against the
    exact free-reclamation baseline on lusearch, jflood and the two
    adversarial workloads, with the cost decomposed into STW,
    concurrent-CPU, barrier and allocation-stall components. *)
val distill : opts -> string

(** Online controllers: static scaled-default LXR vs the hill-climb and
    PID controllers on the fragmentation-adversarial and phase-shifting
    workloads, compared on distilled cost. *)
val controller : opts -> string

(** [by_name s] looks an experiment up ("table1" .. "sensitivity"). *)
val by_name : string -> (opts -> string) option

val names : string list
