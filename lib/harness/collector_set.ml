let all =
  ("lxr", Repro_lxr.Lxr.factory)
  :: ("lxr-nosatb", Repro_lxr.Lxr.factory_no_satb_concurrency)
  :: ("lxr-nold", Repro_lxr.Lxr.factory_no_lazy_decrements)
  :: ("lxr-stw", Repro_lxr.Lxr.factory_stw)
  :: ("lxr-objbar", Repro_lxr.Lxr.factory_object_barrier)
  :: ("lxr-regions", Repro_lxr.Lxr.factory_regional_evacuation)
  :: Repro_collectors.Registry.all

let names = List.map fst all

let lxr_variants =
  List.filter (fun (n, _) -> not (List.mem_assoc n Repro_collectors.Registry.all)) all

let find name = Repro_collectors.Registry.lookup ~extra:lxr_variants name

let find_workload name =
  let candidates = Repro_mutator.Benchmarks.names in
  match
    List.find_opt
      (fun w -> w.Repro_mutator.Workload.name = String.lowercase_ascii name)
      Repro_mutator.Benchmarks.all
  with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown benchmark %S%s; known: %s" name
         (Repro_util.Suggest.hint ~candidates name)
         (String.concat ", " candidates))
