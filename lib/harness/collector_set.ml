let all =
  ("lxr", Repro_lxr.Lxr.factory)
  :: ("lxr-nosatb", Repro_lxr.Lxr.factory_no_satb_concurrency)
  :: ("lxr-nold", Repro_lxr.Lxr.factory_no_lazy_decrements)
  :: ("lxr-stw", Repro_lxr.Lxr.factory_stw)
  :: ("lxr-objbar", Repro_lxr.Lxr.factory_object_barrier)
  :: ("lxr-regions", Repro_lxr.Lxr.factory_regional_evacuation)
  :: Repro_collectors.Registry.registered

let names = List.map fst all

let lxr_variants =
  List.filter
    (fun (n, _) -> not (List.mem_assoc n Repro_collectors.Registry.registered))
    all

let find name = Repro_collectors.Registry.lookup ~extra:lxr_variants name

(* --- CLI composition: --lxr-knob / --controller ------------------------- *)

module Config = Repro_lxr.Lxr_config
module Controller = Repro_policy.Controller

(* Validate every override eagerly against a probe configuration, so a
   typo or out-of-range value fails at the command line instead of
   mid-run (range checks depend only on the knob table, not on the
   probe's heap size). *)
let check_knobs specs =
  let probe =
    Config.scaled_default ~heap_bytes:(32 * 1024 * 1024) ~block_bytes:32768
  in
  List.fold_left
    (fun acc spec ->
      Result.bind acc (fun () ->
          match Config.apply_override probe spec with
          | Ok _ -> Ok ()
          | Error e -> Error ("--lxr-knob: " ^ e)))
    (Ok ()) specs

let apply_knobs specs cfg =
  List.fold_left
    (fun cfg spec ->
      match Config.apply_override cfg spec with
      | Ok c -> c
      | Error e -> invalid_arg e (* unreachable: checked at parse time *))
    cfg specs

let resolve ?controller ?(knobs = []) name =
  let ( let* ) = Result.bind in
  let* () = check_knobs knobs in
  let config = apply_knobs knobs in
  let is_lxr = String.lowercase_ascii name = "lxr" in
  match controller with
  | Some spec ->
    let* spec =
      Result.map_error (fun e -> "--controller: " ^ e) (Controller.parse spec)
    in
    if not is_lxr then
      Error
        (Printf.sprintf
           "--controller drives LXR's knob table and cannot tune %S; use -c \
            lxr"
           name)
    else
      let algo =
        match spec.Controller.algo with
        | Controller.Hill -> "hill"
        | Controller.Pid -> "pid"
      in
      Ok (Controller.lxr_factory ~name:("LXR+" ^ algo) ~config spec)
  | None ->
    if knobs = [] then find name
    else if not is_lxr then
      Error
        (Printf.sprintf
           "--lxr-knob overrides LXR's configuration and does not apply to \
            %S; use -c lxr"
           name)
    else Ok (Repro_lxr.Lxr.factory_with ~name:"LXR" ~config ())

let find_workload name =
  let candidates = Repro_mutator.Benchmarks.names in
  match
    List.find_opt
      (fun w -> w.Repro_mutator.Workload.name = String.lowercase_ascii name)
      Repro_mutator.Benchmarks.all
  with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown benchmark %S%s; known: %s" name
         (Repro_util.Suggest.hint ~candidates name)
         (String.concat ", " candidates))
