(** Human-readable rendering of a {!Runner.result} — shared by the
    [lxr_sim] and [lxr_trace] executables. All output goes to stdout. *)

(** [print_result r] — the standard run summary: timing, pauses,
    allocation, latency percentiles, collector counters, ladder and
    verifier extras. *)
val print_result : Runner.result -> unit

(** The ladder/verifier/violation tail of {!print_result} alone. *)
val print_extras : Runner.result -> unit

(** [print_fleet r] — one fleet run: admission counters, end-to-end
    latency and queueing percentiles (microseconds), diversions, and a
    per-replica utilization/pause breakdown. *)
val print_fleet : Repro_service.Fleet.result -> unit

(** [fleet_table ~title results] renders a fixed-width comparison table
    (one row per collector x policy cell; failed cells carry their
    error). *)
val fleet_table : title:string -> Repro_service.Fleet.result list -> string

(** The same comparison as a GitHub-flavoured markdown table. *)
val fleet_markdown : Repro_service.Fleet.result list -> string

(** The full result list as a JSON array (hand-rolled — the harness has
    no serialization dependency), including per-replica stats and raw
    nanosecond percentiles. *)
val fleet_json : Repro_service.Fleet.result list -> string
