(** Human-readable rendering of a {!Runner.result} — shared by the
    [lxr_sim] and [lxr_trace] executables. All output goes to stdout. *)

(** [print_result r] — the standard run summary: timing, pauses,
    allocation, latency percentiles, collector counters, ladder and
    verifier extras. *)
val print_result : Runner.result -> unit

(** The ladder/verifier/violation tail of {!print_result} alone. *)
val print_extras : Runner.result -> unit

(** [print_fleet r] — one fleet run: admission counters, end-to-end
    latency and queueing percentiles (microseconds), diversions, and a
    per-replica utilization/pause breakdown. *)
val print_fleet : Repro_service.Fleet.result -> unit

(** [fleet_table ~title results] renders a fixed-width comparison table
    (one row per collector x policy cell; failed cells carry their
    error). *)
val fleet_table : title:string -> Repro_service.Fleet.result list -> string

(** The same comparison as a GitHub-flavoured markdown table. *)
val fleet_markdown : Repro_service.Fleet.result list -> string

(** The full result list as a JSON array (hand-rolled — the harness has
    no serialization dependency), including per-replica stats and raw
    nanosecond percentiles. *)
val fleet_json : Repro_service.Fleet.result list -> string

(** {2 Distilled cost} *)

(** Projects a harness result onto the distilled-cost accounting inputs
    ({!Repro_distill.Distill.run}). *)
val to_distill_run : Runner.result -> Repro_distill.Distill.run

(** One (workload, collector) cell of a distilled-cost comparison. [d]
    is [None] when the real or baseline run failed ([d_error] carries
    the real run's error). *)
type distill_row = {
  d_workload : string;
  d_heap_factor : float;
  d_error : string option;
  d_collector : string;
  d : Repro_distill.Distill.t option;
}

(** [distill_of ~workload ~heap_factor real ideal] pairs a real run with
    its ideal-baseline run (same mutator work). *)
val distill_of :
  workload:string ->
  heap_factor:float ->
  Runner.result ->
  Runner.result ->
  distill_row

val distill_table : title:string -> distill_row list -> string
val distill_markdown : distill_row list -> string
val distill_json : distill_row list -> string
