(** Human-readable rendering of a {!Runner.result} — shared by the
    [lxr_sim] and [lxr_trace] executables. All output goes to stdout. *)

(** [print_result r] — the standard run summary: timing, pauses,
    allocation, latency percentiles, collector counters, ladder and
    verifier extras. *)
val print_result : Runner.result -> unit

(** The ladder/verifier/violation tail of {!print_result} alone. *)
val print_extras : Runner.result -> unit
