(** The full collector registry available to command-line tools: every
    {!Repro_collectors.Registry} collector plus the LXR variants, under
    one name space — shared by [lxr_sim] and [lxr_trace] so lookups (and
    their "did you mean" errors) behave identically everywhere. *)

val all : (string * Repro_engine.Collector.factory) list

val names : string list

(** [find name] resolves case-insensitively; the error message carries a
    typo suggestion when one is close. *)
val find : string -> (Repro_engine.Collector.factory, string) result

(** [find_workload name] — same contract for benchmark names. *)
val find_workload : string -> (Repro_mutator.Workload.t, string) result

(** [resolve ?controller ?knobs name] is {!find} extended with the CLI's
    LXR-specific options: [knobs] is a list of [--lxr-knob] overrides
    ("name=value", validated eagerly against {!Repro_lxr.Lxr_config}'s
    knob table with did-you-mean hints), and [controller] an optional
    [--controller] spec ({!Repro_policy.Controller.parse}) that wraps
    LXR in an online knob controller. Both require the collector to be
    "lxr"; the error explains otherwise. *)
val resolve :
  ?controller:string ->
  ?knobs:string list ->
  string ->
  (Repro_engine.Collector.factory, string) result
