(** The full collector registry available to command-line tools: every
    {!Repro_collectors.Registry} collector plus the LXR variants, under
    one name space — shared by [lxr_sim] and [lxr_trace] so lookups (and
    their "did you mean" errors) behave identically everywhere. *)

val all : (string * Repro_engine.Collector.factory) list

val names : string list

(** [find name] resolves case-insensitively; the error message carries a
    typo suggestion when one is close. *)
val find : string -> (Repro_engine.Collector.factory, string) result

(** [find_workload name] — same contract for benchmark names. *)
val find_workload : string -> (Repro_mutator.Workload.t, string) result
