open Repro_util
open Repro_heap
open Repro_engine
module Verifier = Repro_verify.Verifier

type result = {
  workload : string;
  collector : string;
  heap_factor : float;
  heap_bytes : int;
  ok : bool;
  error : string option;
  wall_ns : float;
  mutator_cpu_ns : float;
  gc_cpu_ns : float;
  stw_wall_ns : float;
  stw_cpu_ns : float;
  alloc_stall_ns : float;
  barrier_cpu_ns : float;
  pause_count : int;
  pauses : Histogram.t;
  latency : Histogram.t option;
  requests : int;
  alloc_bytes : int;
  alloc_count : int;
  survived_bytes : int;
  large_bytes : int;
  collector_stats : (string * float) list;
  ladder : (string * float) list;
  violations : (Verifier.safepoint * string * Verifier.violation) list;
  verifier_checks : int;
}

let stat r key = match List.assoc_opt key r.collector_stats with Some v -> v | None -> 0.0

let qps r =
  if r.requests = 0 || r.wall_ns <= 0.0 then 0.0
  else Float.of_int r.requests /. (r.wall_ns /. 1e9)

let failed ~workload ~collector ~heap_factor ~heap_bytes msg =
  { workload;
    collector;
    heap_factor;
    heap_bytes;
    ok = false;
    error = Some msg;
    wall_ns = 0.0;
    mutator_cpu_ns = 0.0;
    gc_cpu_ns = 0.0;
    stw_wall_ns = 0.0;
    stw_cpu_ns = 0.0;
    alloc_stall_ns = 0.0;
    barrier_cpu_ns = 0.0;
    pause_count = 0;
    pauses = Histogram.create ();
    latency = None;
    requests = 0;
    alloc_bytes = 0;
    alloc_count = 0;
    survived_bytes = 0;
    large_bytes = 0;
    collector_stats = [];
    ladder = [];
    violations = [];
    verifier_checks = 0 }

(* Shared engine lifecycle: build heap/sim/api, attach the verifier and
   any fault injector or trace recorder, let [driver] produce the
   mutator-side output (generatively or by replay), then assemble the
   result. [driver] receives the engine and the measurement-start
   callback that zeroes the accumulators. *)
let execute ?slots_hint ?ids_hint ~workload_name ~heap_factor ~cfg ~cost
    ~gc_threads ~verify ~inject ~recorder ~factory ~driver () =
  let heap = Heap.create ?slots_hint ?ids_hint cfg in
  let sim = Sim.create cost in
  Sim.set_pool sim (Repro_par.Par.Pool.get ~threads:gc_threads);
  (match inject with Some f -> Sim.set_faults sim f | None -> ());
  (match recorder with
  | Some r -> Sim.set_tracer sim (Repro_trace.Recorder.tracer r)
  | None -> ());
  match
    let api = Api.create sim heap factory in
    (match recorder with
    | Some r ->
      Repro_trace.Recorder.set_collector r (Api.collector api).Collector.name
    | None -> ());
    let verifier =
      if verify = [] then None
      else Some (Verifier.attach ~points:verify api)
    in
    let measure_start = ref 0.0 in
    let stats_base = ref [] in
    let on_measurement_start () =
      Sim.reset_measurement sim;
      measure_start := Sim.now sim;
      stats_base := (Api.collector api).Collector.stats ()
    in
    let out : Repro_mutator.Mut_engine.output = driver api ~on_measurement_start in
    (match verifier with Some v -> Verifier.finish v | None -> ());
    (api, verifier, out, !measure_start, !stats_base)
  with
  | api, verifier, out, measure_start, stats_base ->
    let net_stats =
      List.map
        (fun (k, v) ->
          match List.assoc_opt k stats_base with
          | Some v0 -> (k, v -. v0)
          | None -> (k, v))
        ((Api.collector api).Collector.stats ())
    in
    let violations, verifier_checks =
      match verifier with
      | Some v -> (Verifier.violations v, Verifier.checks_run v)
      | None -> ([], 0)
    in
    let error =
      match out.oom with
      | Some msg -> Some ("out of memory: " ^ msg)
      | None ->
        if violations = [] then None
        else
          Some
            (Printf.sprintf "%d integrity violations (first: %s)"
               (List.length violations)
               (match violations with
               | (_, _, viol) :: _ -> Verifier.violation_to_string viol
               | [] -> ""))
    in
    { workload = workload_name;
      collector = (Api.collector api).Collector.name;
      heap_factor;
      heap_bytes = cfg.Heap_config.heap_bytes;
      ok = error = None;
      error;
      wall_ns = Sim.now sim -. measure_start;
      mutator_cpu_ns = Sim.mutator_cpu sim;
      gc_cpu_ns = Sim.gc_cpu sim;
      stw_wall_ns = Sim.stw_wall sim;
      stw_cpu_ns = Sim.stw_cpu sim;
      alloc_stall_ns = Sim.alloc_stall_ns sim;
      barrier_cpu_ns = Sim.barrier_cpu sim;
      pause_count = Sim.pause_count sim;
      pauses = Sim.pauses sim;
      latency = out.latency;
      requests = out.requests;
      alloc_bytes = Sim.alloc_bytes sim;
      alloc_count = Sim.alloc_count sim;
      survived_bytes = out.survived_bytes;
      large_bytes = out.large_bytes;
      collector_stats = net_stats;
      ladder = Api.ladder_alist (Api.ladder api);
      violations;
      verifier_checks }
  | exception Repro_collectors.Conc_mark_evac.Unsupported msg ->
    failed ~workload:workload_name ~collector:"?" ~heap_factor
      ~heap_bytes:cfg.Heap_config.heap_bytes ("unsupported: " ^ msg)

let run ?(seed = 42) ?(scale = 1.0) ?cost ?(gc_threads = 1) ?heap_config
    ?(verify = []) ?inject ?record_to ~workload ~factory ~heap_factor () =
  let w = (workload : Repro_mutator.Workload.t) in
  let cost = match cost with Some c -> c | None -> Cost_model.default in
  let heap_bytes = int_of_float (heap_factor *. Float.of_int w.min_heap_bytes) in
  let cfg =
    match heap_config with
    | Some f -> f ~heap_bytes
    | None -> Heap_config.make ~heap_bytes ()
  in
  let recorder =
    match record_to with
    | None -> None
    | Some _ ->
      Some
        (Repro_trace.Recorder.create ~workload:w.name ~seed ~scale ~heap_factor
           ~cfg ())
  in
  let prng = Prng.create seed in
  let r =
    execute ~workload_name:w.name ~heap_factor ~cfg ~cost ~gc_threads ~verify
      ~inject ~recorder ~factory
      ~driver:(fun api ~on_measurement_start ->
        Repro_mutator.Mut_engine.run ~on_measurement_start api prng w ~scale)
      ()
  in
  (match (recorder, record_to) with
  | Some rec_, Some path -> Repro_trace.Recorder.save rec_ path
  | _ -> ());
  r

let replay ?cost ?(gc_threads = 1) ?(verify = []) ?inject ?record_to
    ?(loop = `Auto) ~trace ~factory () =
  let t = (trace : Repro_trace.Trace_format.t) in
  let h = t.header in
  (* The trace tells us the highest id it will mention; presize the
     id-indexed map so replay never pays doubling-growth churn there.
     Slot arrays are left at their default: they track peak-live objects
     (slots are reused after frees), so sizing them by total allocations
     would overshoot by orders of magnitude. *)
  let _, max_id = Repro_trace.Trace_format.alloc_stats t in
  let ids_hint = max 16 (max_id + 2) in
  let cost = match cost with Some c -> c | None -> Cost_model.default in
  let cfg = Repro_trace.Trace_format.heap_config h in
  let recorder =
    match record_to with
    | None -> None
    | Some _ ->
      Some
        (Repro_trace.Recorder.create ~workload:h.workload ~seed:h.seed
           ~scale:h.scale ~heap_factor:h.heap_factor ~cfg ())
  in
  let r =
    execute ~ids_hint ~workload_name:h.workload
      ~heap_factor:h.heap_factor ~cfg ~cost ~gc_threads ~verify ~inject
      ~recorder ~factory
      ~driver:(fun api ~on_measurement_start ->
        Repro_trace.Replay.run ~loop ~on_measurement_start api t)
      ()
  in
  (match (recorder, record_to) with
  | Some rec_, Some path -> Repro_trace.Recorder.save rec_ path
  | _ -> ());
  r
