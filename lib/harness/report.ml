let pct h p =
  match Repro_util.Histogram.percentile_opt h p with
  | Some v -> Float.of_int v /. 1e6
  | None -> 0.0

let print_extras (r : Runner.result) =
  let exercised = List.filter (fun (_, v) -> v > 0.0) r.ladder in
  if exercised <> [] then begin
    Printf.printf "  ladder     ";
    List.iter (fun (k, v) -> Printf.printf " %s=%.0f" k v) exercised;
    print_newline ()
  end;
  if r.verifier_checks > 0 then
    Printf.printf "  verifier    %d checks, %d violations\n" r.verifier_checks
      (List.length r.violations);
  List.iter
    (fun (point, label, viol) ->
      Printf.printf "  VIOLATION [%s:%s] %s\n"
        (Repro_verify.Verifier.safepoint_name point)
        label
        (Repro_verify.Verifier.violation_to_string viol))
    r.violations

(* --- Fleet results ------------------------------------------------------ *)

module Fleet = Repro_service.Fleet
module Policy = Repro_service.Policy

let fleet_pct h p =
  match Repro_util.Histogram.percentile_opt h p with
  | Some v -> Float.of_int v /. 1e3
  | None -> 0.0

let mean_utilization (r : Fleet.result) =
  match r.per_replica with
  | [] -> 0.0
  | reps ->
    List.fold_left (fun acc (s : Fleet.replica_stats) -> acc +. s.r_utilization)
      0.0 reps
    /. Float.of_int (List.length reps)

let print_fleet (r : Fleet.result) =
  let label =
    Printf.sprintf "%s/%s fleet k=%d %s @%.1fx" r.workload r.collector
      r.replicas (Policy.to_string r.policy) r.heap_factor
  in
  if not r.ok then
    Printf.printf "%s: FAILED (%s)\n" label
      (Option.value r.error ~default:"unknown")
  else begin
    Printf.printf "%s (domains=%d)\n" label r.domains;
    Printf.printf "  requests    %d completed=%d rejected=%d dropped=%d shed=%d\n"
      r.requests r.completed r.rejected r.dropped r.shed;
    Printf.printf "  wall        %.3f sim-ms (%s QPS)\n" (r.wall_ns /. 1e6)
      (match Fleet.qps_opt r with
      | Some q -> Printf.sprintf "%.0f" q
      | None -> "-");
    Printf.printf "  availability %.4f%%\n" (100.0 *. r.availability);
    if r.retries + r.hedges + r.timeouts > 0 then
      Printf.printf "  client      retries=%d hedges=%d (won %d) timeouts=%d\n"
        r.retries r.hedges r.hedge_wins r.timeouts;
    if r.chaos_events > 0 then
      Printf.printf "  chaos       %d firings\n" r.chaos_events;
    if r.scale_ups + r.scale_downs > 0 then
      Printf.printf "  autoscale   +%d / -%d replicas\n" r.scale_ups
        r.scale_downs;
    if r.slo_timeline <> [] then
      Printf.printf
        "  slo         peak-burn %.2f breach-rounds=%d shed-rounds=%d\n"
        r.slo_peak_burn r.slo_breach_rounds r.slo_shed_rounds;
    Printf.printf
      "  latency     p50 %.1f / p99 %.1f / p99.9 %.1f / p99.99 %.1f us\n"
      (fleet_pct r.latency 50.0) (fleet_pct r.latency 99.0)
      (fleet_pct r.latency 99.9) (fleet_pct r.latency 99.99);
    Printf.printf "  queueing    p50 %.1f / p99 %.1f / p99.9 %.1f us\n"
      (fleet_pct r.queueing 50.0) (fleet_pct r.queueing 99.0)
      (fleet_pct r.queueing 99.9);
    Printf.printf "  routing     %d gc-aware diversions\n" r.diversions;
    if r.wb_fast +. r.wb_slow > 0.0 then
      Printf.printf "  barrier     wb_fast=%.0f wb_slow=%.0f\n" r.wb_fast
        r.wb_slow;
    if r.verifier_checks > 0 then
      Printf.printf "  verifier    %d checks, %d violations\n"
        r.verifier_checks r.violations;
    List.iter
      (fun (s : Fleet.replica_stats) ->
        Printf.printf
          "  replica %-2d  served=%-5d util=%4.1f%% pauses=%d gc=%.2fms %s%s%s\n"
          s.r_index s.r_served
          (100.0 *. s.r_utilization)
          s.r_pause_count
          (s.r_gc_cpu_ns /. 1e6)
          s.r_state
          (if s.r_restarts > 0 then
             Printf.sprintf " restarts=%d" s.r_restarts
           else "")
          (match s.r_oom with None -> "" | Some m -> " died: " ^ m))
      r.per_replica
  end

let fleet_row (r : Fleet.result) =
  if not r.ok then
    [ r.collector; Policy.to_string r.policy;
      "FAILED: " ^ Option.value r.error ~default:"unknown";
      "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
  else
    [ r.collector;
      Policy.to_string r.policy;
      (match Fleet.qps_opt r with
      | Some q -> Printf.sprintf "%.0f" (q /. 1e3)
      | None -> "-");
      Printf.sprintf "%.1f" (fleet_pct r.latency 50.0);
      Printf.sprintf "%.1f" (fleet_pct r.latency 99.0);
      Printf.sprintf "%.1f" (fleet_pct r.latency 99.9);
      Printf.sprintf "%.1f" (fleet_pct r.latency 99.99);
      Printf.sprintf "%.3f" (100.0 *. r.availability);
      string_of_int r.diversions;
      Printf.sprintf "%.1f" (100.0 *. mean_utilization r);
      (if r.wb_fast +. r.wb_slow > 0.0 then
         Printf.sprintf "%.0f" r.wb_slow
       else "-") ]

let fleet_header =
  [ "Collector"; "Policy"; "kQPS"; "p50us"; "p99"; "p99.9"; "p99.99";
    "Avail%"; "Divert"; "Util%"; "WBslow" ]

let fleet_table ~title results =
  Repro_util.Table.render ~title ~header:fleet_header
    ~rows:(List.map fleet_row results) ()

let fleet_markdown results =
  let line cells = "| " ^ String.concat " | " cells ^ " |" in
  let sep = line (List.map (fun _ -> "---") fleet_header) in
  String.concat "\n"
    ((line fleet_header :: sep :: List.map (fun r -> line (fleet_row r)) results)
    @ [ "" ])

(* Hand-rolled JSON: the harness has no serialization dependency, and
   the fleet schema is flat enough that escaping strings is the only
   subtlety. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fleet_json results =
  let field (k, v) = Printf.sprintf "%S: %s" k v in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let num f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  in
  let pctls h =
    Printf.sprintf "{%s}"
      (String.concat ", "
         (List.map
            (fun p ->
              field
                ( Printf.sprintf "p%g" p,
                  match Repro_util.Histogram.percentile_opt h p with
                  | Some v -> string_of_int v
                  | None -> "null" ))
            [ 50.0; 90.0; 99.0; 99.9; 99.99 ]))
  in
  let alist kvs =
    Printf.sprintf "{%s}"
      (String.concat ", " (List.map (fun (k, v) -> field (k, num v)) kvs))
  in
  let replica (s : Fleet.replica_stats) =
    Printf.sprintf "{%s}"
      (String.concat ", "
         (List.map field
            [ ("index", string_of_int s.r_index);
              ("served", string_of_int s.r_served);
              ("dropped", string_of_int s.r_dropped);
              ("utilization", num s.r_utilization);
              ("pause_count", string_of_int s.r_pause_count);
              ("gc_cpu_ns", num s.r_gc_cpu_ns);
              ("mutator_cpu_ns", num s.r_mutator_cpu_ns);
              ( "oom",
                match s.r_oom with None -> "null" | Some m -> str m );
              ("state", str s.r_state);
              ("restarts", string_of_int s.r_restarts);
              ("time_in_ns", alist s.r_time_in);
              ("ladder", alist s.r_ladder);
              ("wb_fast", num s.r_wb_fast);
              ("wb_slow", num s.r_wb_slow) ]))
  in
  let one (r : Fleet.result) =
    Printf.sprintf "  {%s}"
      (String.concat ", "
         (List.map field
            [ ("workload", str r.workload);
              ("collector", str r.collector);
              ("policy", str (Policy.to_string r.policy));
              ("replicas", string_of_int r.replicas);
              ("domains", string_of_int r.domains);
              ("heap_factor", num r.heap_factor);
              ("ok", if r.ok then "true" else "false");
              ( "error",
                match r.error with None -> "null" | Some m -> str m );
              ("requests", string_of_int r.requests);
              ("completed", string_of_int r.completed);
              ("rejected", string_of_int r.rejected);
              ("dropped", string_of_int r.dropped);
              ("shed", string_of_int r.shed);
              ("timeouts", string_of_int r.timeouts);
              ("retries", string_of_int r.retries);
              ("hedges", string_of_int r.hedges);
              ("hedge_wins", string_of_int r.hedge_wins);
              ("availability", num r.availability);
              ("chaos_events", string_of_int r.chaos_events);
              ("scale_ups", string_of_int r.scale_ups);
              ("scale_downs", string_of_int r.scale_downs);
              ("slo_peak_burn", num r.slo_peak_burn);
              ("slo_breach_rounds", string_of_int r.slo_breach_rounds);
              ("slo_shed_rounds", string_of_int r.slo_shed_rounds);
              ("ladder", alist r.ladder);
              ("wb_fast", num r.wb_fast);
              ("wb_slow", num r.wb_slow);
              ("wall_ns", num r.wall_ns);
              ( "qps",
                match Fleet.qps_opt r with
                | Some q -> num q
                | None -> "null" );
              ("diversions", string_of_int r.diversions);
              ("verifier_checks", string_of_int r.verifier_checks);
              ("violations", string_of_int r.violations);
              ("latency_ns", pctls r.latency);
              ("queueing_ns", pctls r.queueing);
              ( "per_replica",
                Printf.sprintf "[%s]"
                  (String.concat ", " (List.map replica r.per_replica)) ) ]))
  in
  Printf.sprintf "[\n%s\n]\n" (String.concat ",\n" (List.map one results))

(* --- Distilled cost ----------------------------------------------------- *)

module Distill = Repro_distill.Distill

let to_distill_run (r : Runner.result) : Distill.run =
  { collector = r.collector;
    wall_ns = r.wall_ns;
    mutator_cpu_ns = r.mutator_cpu_ns;
    gc_cpu_ns = r.gc_cpu_ns;
    stw_wall_ns = r.stw_wall_ns;
    stw_cpu_ns = r.stw_cpu_ns;
    alloc_stall_ns = r.alloc_stall_ns;
    barrier_cpu_ns = r.barrier_cpu_ns;
    pause_count = r.pause_count }

type distill_row = {
  d_workload : string;
  d_heap_factor : float;
  d_error : string option;  (** the real run failed; components absent *)
  d_collector : string;
  d : Distill.t option;
}

let distill_of ~workload ~heap_factor (real : Runner.result)
    (ideal : Runner.result) =
  { d_workload = workload;
    d_heap_factor = heap_factor;
    d_error = (if real.ok then None else real.error);
    d_collector = real.collector;
    d =
      (if real.ok && ideal.ok then
         Some
           (Distill.make ~real:(to_distill_run real)
              ~ideal:(to_distill_run ideal))
       else None) }

let distill_header =
  [ "Workload"; "Collector"; "Real ms"; "Ideal ms"; "Dist ms"; "o/h%";
    "CPU ms"; "STW ms"; "Conc ms"; "Barrier ms"; "Stall ms"; "Pauses" ]

let distill_cells row =
  match row.d with
  | None ->
    [ row.d_workload; row.d_collector;
      "FAILED: " ^ Option.value row.d_error ~default:"unknown";
      "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
  | Some d ->
    let ms v = Printf.sprintf "%.2f" (v /. 1e6) in
    [ row.d_workload; row.d_collector;
      ms d.Distill.real.wall_ns;
      ms d.ideal.wall_ns;
      ms d.distilled_wall_ns;
      Printf.sprintf "%.1f" (Distill.wall_overhead_pct d);
      ms d.distilled_cpu_ns;
      ms d.stw_wall_ns;
      ms d.concurrent_cpu_ns;
      ms d.barrier_ns;
      ms d.distilled_stall_ns;
      string_of_int d.real.pause_count ]

let distill_table ~title rows =
  Repro_util.Table.render ~title ~header:distill_header
    ~rows:(List.map distill_cells rows) ()

let distill_markdown rows =
  let line cells = "| " ^ String.concat " | " cells ^ " |" in
  let sep = line (List.map (fun _ -> "---") distill_header) in
  String.concat "\n"
    ((line distill_header :: sep
      :: List.map (fun r -> line (distill_cells r)) rows)
    @ [ "" ])

let distill_json rows =
  let field (k, v) = Printf.sprintf "%S: %s" k v in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let num f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  in
  let run_json (r : Distill.run) =
    Printf.sprintf "{%s}"
      (String.concat ", "
         (List.map field
            [ ("collector", str r.collector);
              ("wall_ns", num r.wall_ns);
              ("mutator_cpu_ns", num r.mutator_cpu_ns);
              ("gc_cpu_ns", num r.gc_cpu_ns);
              ("stw_wall_ns", num r.stw_wall_ns);
              ("stw_cpu_ns", num r.stw_cpu_ns);
              ("alloc_stall_ns", num r.alloc_stall_ns);
              ("barrier_cpu_ns", num r.barrier_cpu_ns);
              ("pause_count", string_of_int r.pause_count) ]))
  in
  let one row =
    let base =
      [ ("workload", str row.d_workload);
        ("collector", str row.d_collector);
        ("heap_factor", num row.d_heap_factor);
        ("ok", if row.d = None then "false" else "true");
        ( "error",
          match row.d_error with None -> "null" | Some m -> str m ) ]
    in
    let components =
      match row.d with
      | None -> []
      | Some d ->
        [ ("real", run_json d.Distill.real);
          ("ideal", run_json d.ideal);
          ("distilled_wall_ns", num d.distilled_wall_ns);
          ("distilled_cpu_ns", num d.distilled_cpu_ns);
          ("distilled_stall_ns", num d.distilled_stall_ns);
          ("barrier_ns", num d.barrier_ns);
          ("stw_wall_ns", num d.stw_wall_ns);
          ("stw_cpu_ns", num d.stw_cpu_ns);
          ("concurrent_cpu_ns", num d.concurrent_cpu_ns);
          ("wall_overhead_pct", num (Distill.wall_overhead_pct d));
          ("cpu_overhead_pct", num (Distill.cpu_overhead_pct d)) ]
    in
    Printf.sprintf "  {%s}"
      (String.concat ", " (List.map field (base @ components)))
  in
  Printf.sprintf "[\n%s\n]\n" (String.concat ",\n" (List.map one rows))

let print_result (r : Runner.result) =
  if not r.ok then begin
    Printf.printf "%s/%s @%.1fx: FAILED (%s)\n" r.workload r.collector r.heap_factor
      (Option.value r.error ~default:"unknown");
    print_extras r
  end
  else begin
    Printf.printf "%s/%s @%.1fx (heap %d KB)\n" r.workload r.collector r.heap_factor
      (r.heap_bytes / 1024);
    Printf.printf "  time        %.2f ms (mutator %.2f ms cpu, GC %.2f ms cpu)\n"
      (r.wall_ns /. 1e6) (r.mutator_cpu_ns /. 1e6) (r.gc_cpu_ns /. 1e6);
    Printf.printf "  pauses      %d totalling %.2f ms" r.pause_count
      (r.stw_wall_ns /. 1e6);
    if Repro_util.Histogram.count r.pauses > 0 then
      Printf.printf " (p50 %.2f / p99 %.2f ms)" (pct r.pauses 50.0) (pct r.pauses 99.0);
    print_newline ();
    Printf.printf "  allocated   %d KB in %d objects\n" (r.alloc_bytes / 1024)
      r.alloc_count;
    (match r.latency with
    | Some h when Repro_util.Histogram.count h > 0 ->
      Printf.printf
        "  latency     p50 %.3f / p99 %.3f / p99.9 %.3f / p99.99 %.3f ms (%.0f QPS)\n"
        (pct h 50.0) (pct h 99.0) (pct h 99.9) (pct h 99.99)
        (Runner.qps r)
    | Some _ | None -> ());
    List.iter (fun (k, v) -> Printf.printf "  %-24s %.0f\n" k v) r.collector_stats;
    print_extras r
  end
