let pct h p =
  match Repro_util.Histogram.percentile_opt h p with
  | Some v -> Float.of_int v /. 1e6
  | None -> 0.0

let print_extras (r : Runner.result) =
  let exercised = List.filter (fun (_, v) -> v > 0.0) r.ladder in
  if exercised <> [] then begin
    Printf.printf "  ladder     ";
    List.iter (fun (k, v) -> Printf.printf " %s=%.0f" k v) exercised;
    print_newline ()
  end;
  if r.verifier_checks > 0 then
    Printf.printf "  verifier    %d checks, %d violations\n" r.verifier_checks
      (List.length r.violations);
  List.iter
    (fun (point, label, viol) ->
      Printf.printf "  VIOLATION [%s:%s] %s\n"
        (Repro_verify.Verifier.safepoint_name point)
        label
        (Repro_verify.Verifier.violation_to_string viol))
    r.violations

let print_result (r : Runner.result) =
  if not r.ok then begin
    Printf.printf "%s/%s @%.1fx: FAILED (%s)\n" r.workload r.collector r.heap_factor
      (Option.value r.error ~default:"unknown");
    print_extras r
  end
  else begin
    Printf.printf "%s/%s @%.1fx (heap %d KB)\n" r.workload r.collector r.heap_factor
      (r.heap_bytes / 1024);
    Printf.printf "  time        %.2f ms (mutator %.2f ms cpu, GC %.2f ms cpu)\n"
      (r.wall_ns /. 1e6) (r.mutator_cpu_ns /. 1e6) (r.gc_cpu_ns /. 1e6);
    Printf.printf "  pauses      %d totalling %.2f ms" r.pause_count
      (r.stw_wall_ns /. 1e6);
    if Repro_util.Histogram.count r.pauses > 0 then
      Printf.printf " (p50 %.2f / p99 %.2f ms)" (pct r.pauses 50.0) (pct r.pauses 99.0);
    print_newline ();
    Printf.printf "  allocated   %d KB in %d objects\n" (r.alloc_bytes / 1024)
      r.alloc_count;
    (match r.latency with
    | Some h when Repro_util.Histogram.count h > 0 ->
      Printf.printf
        "  latency     p50 %.3f / p99 %.3f / p99.9 %.3f / p99.99 %.3f ms (%.0f QPS)\n"
        (pct h 50.0) (pct h 99.0) (pct h 99.9) (pct h 99.99)
        (Runner.qps r)
    | Some _ | None -> ());
    List.iter (fun (k, v) -> Printf.printf "  %-24s %.0f\n" k v) r.collector_stats;
    print_extras r
  end
