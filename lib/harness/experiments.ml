open Repro_util
open Repro_mutator

type opts = { scale : float; iterations : int; seed : int }

let default_opts = { scale = 1.0; iterations = 3; seed = 42 }

(* --- Shared machinery --------------------------------------------------- *)

let lxr = ("LXR", Repro_lxr.Lxr.factory)
let g1 = ("G1", Repro_collectors.Registry.find "g1")
let shenandoah = ("Shenandoah", Repro_collectors.Registry.find "shenandoah")
let zgc = ("ZGC", Repro_collectors.Registry.find "zgc")

(* The paper's four-way comparison, in its column order. *)
let production = [ g1; lxr; shenandoah; zgc ]

let runs opts ?cost ?heap_config ~workload ~factory ~heap_factor () =
  List.init opts.iterations (fun i ->
      Runner.run ~seed:(opts.seed + (31 * i)) ~scale:opts.scale ?cost ?heap_config
        ~workload ~factory ~heap_factor ())

let ok_runs rs = List.filter (fun (r : Runner.result) -> r.ok) rs

(* The paper's "total time" measurements run every workload — including
   the request-based ones — to completion as fast as possible; strip the
   metered request model for throughput experiments. *)
let throughput_mode (w : Workload.t) = { w with request = None }

(* Mean of [f] over successful runs; [None] when none succeeded. *)
let mean_of rs f =
  match ok_runs rs with
  | [] -> None
  | ok -> Some (Stats.mean (List.map f ok))

let ci_of rs f =
  match ok_runs rs with
  | [] | [ _ ] -> 0.0
  | ok -> Stats.confidence95_fraction (List.map f ok)

let latency_pctl_ms (r : Runner.result) p =
  match r.latency with
  | Some h -> (
    match Histogram.percentile_opt h p with
    | Some v -> Float.of_int v /. 1e6
    | None -> 0.0)
  | None -> 0.0

let pause_pctl_ms (r : Runner.result) p =
  match Histogram.percentile_opt r.pauses p with
  | Some v -> Float.of_int v /. 1e6
  | None -> 0.0

let fmt_opt fmt = function None -> "-" | Some v -> Printf.sprintf fmt v

(* --- Table 1 ------------------------------------------------------------ *)

let table1 opts =
  let w = Benchmarks.find "lusearch" in
  let configs =
    [ ("G1", snd g1, 1.3);
      ("Shenandoah", snd shenandoah, 1.3);
      ("LXR", snd lxr, 1.3);
      ("Shenandoah 10x", snd shenandoah, 10.0) ]
  in
  let rows =
    List.map
      (fun (name, factory, factor) ->
        let rs = runs opts ~workload:w ~factory ~heap_factor:factor () in
        let m f = mean_of rs f in
        name
        :: fmt_opt "%.0f" (m (fun r -> Runner.qps r /. 1e3))
        :: fmt_opt "%.1f" (m (fun r -> r.wall_ns /. 1e9 *. 1e3))
        :: List.map
             (fun p -> fmt_opt "%.2f" (m (fun r -> latency_pctl_ms r p)))
             [ 50.0; 99.0; 99.9; 99.99 ]
        @ List.map
            (fun p -> fmt_opt "%.2f" (m (fun r -> pause_pctl_ms r p)))
            [ 50.0; 99.0; 99.9; 99.99 ])
      configs
  in
  Table.render
    ~title:
      "Table 1: lusearch at 1.3x heap (time in sim-milliseconds).\n\
       Paper shape: Shenandoah collapses on throughput and tail latency at 1.3x;\n\
       LXR beats G1 on tail latency; Shenandoah recovers given a 10x heap."
    ~header:
      [ "Collector"; "kQPS"; "Time(ms)"; "Lat p50"; "p99"; "p99.9"; "p99.99";
        "Pause p50"; "p99"; "p99.9"; "p99.99" ]
    ~rows ()

(* --- Table 3 ------------------------------------------------------------ *)

let table3 opts =
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let rs =
          runs { opts with iterations = 1 } ~workload:w ~factory:(snd lxr)
            ~heap_factor:2.0 ()
        in
        match ok_runs rs with
        | [] -> [ w.name; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
        | r :: _ ->
          let heap_mb = Float.of_int w.min_heap_bytes /. 1e6 in
          let alloc_mb = Float.of_int r.alloc_bytes /. 1e6 in
          let rate =
            if r.mutator_cpu_ns > 0.0 then
              Float.of_int r.alloc_bytes /. (r.mutator_cpu_ns /. 1e9) /. 1e6
            else 0.0
          in
          [ w.name;
            Printf.sprintf "%.1f" heap_mb;
            Printf.sprintf "%.1f" alloc_mb;
            Printf.sprintf "%.0f" (alloc_mb /. heap_mb);
            Printf.sprintf "%.0f (%d)" rate w.paper_alloc_mb_s;
            Printf.sprintf "%d (%d)" (r.alloc_bytes / max 1 r.alloc_count)
              w.mean_object_bytes;
            Printf.sprintf "%.0f" (100.0 *. Float.of_int r.large_bytes
                                   /. Float.of_int (max 1 r.alloc_bytes));
            Printf.sprintf "%.1f (%d)"
              (100.0 *. Float.of_int r.survived_bytes
               /. Float.of_int (max 1 r.alloc_bytes))
              w.paper_survival_pct;
            string_of_int r.alloc_count ])
      Benchmarks.all
  in
  Table.render
    ~title:
      "Table 3: benchmark characteristics, measured on the simulator\n\
       (values in parentheses are the paper's; heaps are scaled ~1/32)."
    ~header:
      [ "Benchmark"; "Heap MB"; "Alloc MB"; "/heap"; "MB/s (paper)";
        "Obj B (paper)"; "%Lrg"; "%Srv (paper)"; "#Objects" ]
    ~rows ()

(* --- Table 4 / Figure 5 ------------------------------------------------- *)

let latency_matrix opts ~heap_factor =
  List.map
    (fun (w : Workload.t) ->
      ( w,
        List.map
          (fun (name, factory) ->
            (name, runs opts ~workload:w ~factory ~heap_factor ()))
          production ))
    Benchmarks.latency_sensitive

let table4 opts =
  let matrix = latency_matrix opts ~heap_factor:1.3 in
  let sections =
    List.map
      (fun ((w : Workload.t), per_collector) ->
        let rows =
          List.map
            (fun (name, rs) ->
              name
              :: List.concat_map
                   (fun p ->
                     match mean_of rs (fun r -> latency_pctl_ms r p) with
                     | None -> [ "-"; "" ]
                     | Some v ->
                       [ Printf.sprintf "%.2f" v;
                         Printf.sprintf "±%.3f"
                           (ci_of rs (fun r -> latency_pctl_ms r p)) ])
                   [ 50.0; 99.0; 99.9; 99.99 ])
            per_collector
        in
        Table.render
          ~title:(Printf.sprintf "Table 4 (%s): metered latency (ms) at 1.3x heap" w.name)
          ~header:[ "Collector"; "p50"; ""; "p99"; ""; "p99.9"; ""; "p99.99"; "" ]
          ~rows ())
      matrix
  in
  String.concat "\n" sections

let figure5 opts =
  let matrix = latency_matrix opts ~heap_factor:1.3 in
  let points = [ 50.0; 75.0; 90.0; 95.0; 99.0; 99.5; 99.9; 99.99 ] in
  let sections =
    List.map
      (fun ((w : Workload.t), per_collector) ->
        let rows =
          List.map
            (fun (name, rs) ->
              name
              :: List.map
                   (fun p ->
                     fmt_opt "%.2f" (mean_of rs (fun r -> latency_pctl_ms r p)))
                   points)
            per_collector
        in
        let table =
          Table.render
            ~title:
              (Printf.sprintf
                 "Figure 5 (%s): latency response curve (ms per percentile), 1.3x heap"
                 w.name)
            ~header:("Collector" :: List.map (Printf.sprintf "p%.2f") points)
            ~rows ()
        in
        (* The paper plots latency against -log10(1 - percentile); do the
           same so the tail spreads out. *)
        let series =
          List.filter_map
            (fun (name, rs) ->
              let pts =
                List.filter_map
                  (fun p ->
                    match mean_of rs (fun r -> latency_pctl_ms r p) with
                    | Some v when v > 0.0 ->
                      Some (-.log10 (1.0 -. (p /. 100.0)), v)
                    | Some _ | None -> None)
                  points
              in
              if pts = [] then None else Some (name, pts))
            per_collector
        in
        if series = [] then table
        else
          table ^ "\n"
          ^ Ascii_chart.render ~log_y:true
              ~title:(Printf.sprintf "  %s latency curve" w.name)
              ~x_label:"-log10(1 - percentile)" ~y_label:"latency ms" ~series ())
      matrix
  in
  String.concat "\n" sections

(* --- Table 5 ------------------------------------------------------------ *)

let table5 opts =
  let factors = [ 1.3; 2.0; 6.0 ] in
  let geo_ratio per_bench =
    (* Geometric mean of collector/G1 ratios over benchmarks where both
       succeeded. *)
    match List.filter_map (fun x -> x) per_bench with
    | [] -> None
    | ratios -> Some (Stats.geomean ratios)
  in
  let rows =
    List.concat_map
      (fun factor ->
        let latency_runs =
          List.map
            (fun (w : Workload.t) ->
              List.map
                (fun (name, factory) ->
                  (name, runs opts ~workload:w ~factory ~heap_factor:factor ()))
                production)
            Benchmarks.latency_sensitive
        in
        let time_runs =
          List.map
            (fun (w : Workload.t) ->
              List.map
                (fun (name, factory) ->
                  ( name,
                    runs { opts with iterations = 1 }
                      ~workload:(throughput_mode w) ~factory ~heap_factor:factor () ))
                production)
            Benchmarks.all
        in
        let ratio_for metric per_bench name =
          geo_ratio
            (List.map
               (fun per_collector ->
                 let value n =
                   mean_of (List.assoc n per_collector) metric
                 in
                 match (value "G1", value name) with
                 | Some base, Some v when base > 0.0 && v > 0.0 -> Some (v /. base)
                 | _ -> None)
               per_bench)
        in
        let lat name =
          ratio_for (fun r -> Float.max 0.001 (latency_pctl_ms r 99.99)) latency_runs name
        in
        let time name = ratio_for (fun r -> r.wall_ns) time_runs name in
        [ [ Printf.sprintf "%.1fx" factor;
            "1.00"; fmt_opt "%.2f" (lat "LXR"); fmt_opt "%.2f" (lat "Shenandoah");
            fmt_opt "%.2f" (lat "ZGC");
            "1.00"; fmt_opt "%.2f" (time "LXR"); fmt_opt "%.2f" (time "Shenandoah");
            fmt_opt "%.2f" (time "ZGC") ] ])
      factors
  in
  Table.render
    ~title:
      "Table 5: geomean 99.99% latency (4 latency workloads) and time (all\n\
       benchmarks) relative to G1. Paper: LXR 0.72/0.92/0.85 latency and\n\
       0.97/0.96/1.01 time at 1.3x/2x/6x; Shenandoah well above 1 throughout."
    ~header:
      [ "Heap"; "G1 lat"; "LXR lat"; "Shen lat"; "ZGC lat"; "G1 time";
        "LXR time"; "Shen time"; "ZGC time" ]
    ~rows ()

(* --- Table 6 ------------------------------------------------------------ *)

let table6 opts =
  let results =
    List.map
      (fun (w : Workload.t) ->
        ( w,
          List.map
            (fun (name, factory) ->
              (name, runs opts ~workload:(throughput_mode w) ~factory ~heap_factor:2.0 ()))
            production ))
      Benchmarks.all
  in
  let ratios = Hashtbl.create 8 in
  let note name v = Hashtbl.replace ratios name (v :: (try Hashtbl.find ratios name with Not_found -> [])) in
  let rows =
    List.map
      (fun ((w : Workload.t), per_collector) ->
        let time name = mean_of (List.assoc name per_collector) (fun r -> r.wall_ns) in
        let base = time "G1" in
        let rel name =
          match (base, time name) with
          | Some b, Some v when b > 0.0 ->
            let ratio = v /. b in
            note name ratio;
            Printf.sprintf "%.3f" ratio
          | _ -> "-"
        in
        [ w.name;
          fmt_opt "%.1f" (Option.map (fun v -> v /. 1e6) base);
          rel "LXR"; rel "Shenandoah"; rel "ZGC" ])
      results
  in
  let geo name =
    match Hashtbl.find_opt ratios name with
    | Some (_ :: _ as l) -> Printf.sprintf "%.3f" (Stats.geomean l)
    | Some [] | None -> "-"
  in
  let rows = rows @ [ [ "geomean"; ""; geo "LXR"; geo "Shenandoah"; geo "ZGC" ] ] in
  Table.render
    ~title:
      "Table 6: throughput at 2x heap — G1 time (sim ms) and relative time\n\
       (lower is better). Paper geomeans: LXR 0.958, Shenandoah 1.373."
    ~header:[ "Benchmark"; "G1 ms"; "LXR"; "Shen."; "ZGC" ]
    ~rows ()

(* --- Table 7 ------------------------------------------------------------ *)

let table7 opts =
  let variants =
    [ ("-SATB", Repro_lxr.Lxr.factory_no_satb_concurrency);
      ("-LD", Repro_lxr.Lxr.factory_no_lazy_decrements);
      ("STW", Repro_lxr.Lxr.factory_stw) ]
  in
  let one = { opts with iterations = 1 } in
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let w = throughput_mode w in
        let base_rs = runs one ~workload:w ~factory:(snd lxr) ~heap_factor:2.0 () in
        match ok_runs base_rs with
        | [] -> [ w.name; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
        | r :: _ ->
          let time_ms = r.wall_ns /. 1e6 in
          let variant_ratio (_, factory) =
            let rs = runs one ~workload:w ~factory ~heap_factor:2.0 () in
            match mean_of rs (fun r' -> r'.wall_ns) with
            | Some v when r.wall_ns > 0.0 -> Printf.sprintf "%.2f" (v /. r.wall_ns)
            | Some _ | None -> "-"
          in
          let s k = Runner.stat r k in
          let pauses_per_s =
            Float.of_int r.pause_count /. Float.max 1e-9 (r.wall_ns /. 1e9)
          in
          let satb_pct = 100.0 *. s "satb_pauses" /. Float.max 1.0 (s "rc_pauses") in
          let lazy_pct =
            100.0 *. s "unfinished_lazy_pauses" /. Float.max 1.0 (s "rc_pauses")
          in
          let inc_per_ms = s "increments" /. Float.max 1e-9 (r.mutator_cpu_ns /. 1e6) in
          let c = Repro_engine.Cost_model.default in
          let barrier_ns =
            (s "wb_fast" *. c.wb_fast_ns) +. (s "wb_slow" *. c.wb_slow_ns)
          in
          let overhead = 1.0 +. (barrier_ns /. Float.max 1.0 (r.mutator_cpu_ns -. barrier_ns)) in
          let total_reclaimed =
            Float.max 1.0 (s "young_reclaimed" +. s "old_reclaimed" +. s "satb_reclaimed")
          in
          let pct v = Printf.sprintf "%.1f" (100.0 *. v /. total_reclaimed) in
          let stuck =
            100.0 *. s "stuck_objects" /. Float.max 1.0 (s "mature_objects_seen")
          in
          let yc =
            let clean_bytes = s "clean_young_blocks" *. 32768.0 in
            if clean_bytes <= 0.0 then 0.0 else 100.0 *. s "young_evacuated" /. clean_bytes
          in
          [ w.name;
            Printf.sprintf "%.1f" time_ms ]
          @ List.map variant_ratio variants
          @ [ Printf.sprintf "%.1f" pauses_per_s;
              Printf.sprintf "%.2f" (pause_pctl_ms r 50.0);
              Printf.sprintf "%.2f" (pause_pctl_ms r 95.0);
              Printf.sprintf "%.0f" satb_pct;
              Printf.sprintf "%.0f" lazy_pct;
              Printf.sprintf "%.0f" inc_per_ms;
              Printf.sprintf "%.3f" overhead;
              pct (s "young_reclaimed");
              pct (s "old_reclaimed");
              pct (s "satb_reclaimed");
              Printf.sprintf "%.1f" stuck;
              Printf.sprintf "%.1f" yc ])
      Benchmarks.all
  in
  Table.render
    ~title:
      "Table 7: LXR breakdown at 2x heap. Concurrency columns are run-time\n\
       ratios of the ablated variant to default LXR (paper means: -SATB 1.00,\n\
       -LD 1.03, STW 1.03); reclamation splits are percentages of bytes."
    ~header:
      [ "Benchmark"; "ms"; "-SATB"; "-LD"; "STW"; "GC/s"; "p50ms"; "p95ms";
        "SATB%"; "!Lazy%"; "Inc/ms"; "o/h"; "Young"; "Old"; "SATB"; "Stuck"; "YC" ]
    ~rows ()

(* --- Figure 7 ------------------------------------------------------------ *)

let figure7 opts =
  let factors = [ 1.3; 1.5; 2.0; 3.0; 4.0; 6.0 ] in
  let collectors =
    [ ("Serial", Repro_collectors.Registry.find "serial");
      ("Parallel", Repro_collectors.Registry.find "parallel");
      g1; shenandoah; zgc; lxr;
      ("Semispace", Repro_collectors.Registry.find "semispace") ]
  in
  let shown = [ "Serial"; "Parallel"; "G1"; "Shenandoah"; "ZGC"; "LXR" ] in
  let one = { opts with iterations = 1 } in
  let table metric label =
    let chart_series = Hashtbl.create 8 in
    let rows =
      List.map
        (fun factor ->
          let per_bench =
            List.map
              (fun (w : Workload.t) ->
                List.map
                  (fun (name, factory) ->
                    match
                      runs one ~workload:(throughput_mode w) ~factory
                        ~heap_factor:factor ()
                    with
                    | [ r ] -> (name, r)
                    | _ -> assert false)
                  collectors)
              Benchmarks.all
          in
          Printf.sprintf "%.1fx" factor
          :: List.map
               (fun name ->
                 let overheads =
                   List.filter_map
                     (fun bench_runs ->
                       match Lbo.baseline metric (List.map snd bench_runs) with
                       | None -> None
                       | Some base ->
                         Lbo.overhead metric ~baseline:base (List.assoc name bench_runs))
                     per_bench
                 in
                 match overheads with
                 | [] -> "-"
                 | l ->
                   let m = Stats.mean l in
                   Hashtbl.replace chart_series name
                     ((factor, m)
                     :: (try Hashtbl.find chart_series name with Not_found -> []));
                   Printf.sprintf "%.2f" m)
               shown)
        factors
    in
    let series =
      List.filter_map
        (fun name ->
          match Hashtbl.find_opt chart_series name with
          | Some (_ :: _ as pts) -> Some (name, List.rev pts)
          | Some [] | None -> None)
        shown
    in
    let chart =
      if series = [] then ""
      else
        "\n"
        ^ Ascii_chart.render
            ~title:(Printf.sprintf "  LBO overhead%s" label)
            ~x_label:"heap size (x minimum)" ~y_label:"overhead vs ideal" ~series ()
    in
    Table.render
      ~title:
        (Printf.sprintf
           "Figure 7%s: mean LBO overhead over all benchmarks (1.0 = ideal).\n\
            Paper shape: LXR lowest in all but the largest heaps (wall clock)\n\
            and lowest at every heap size for total cycles." label)
      ~header:("Heap" :: shown) ~rows ()
    ^ chart
  in
  table Lbo.Wall "a (wall-clock)" ^ "\n" ^ table Lbo.Cycles "b (total CPU cycles)"

(* --- §5.4 sensitivity ----------------------------------------------------- *)

let sensitivity opts =
  let one = { opts with iterations = 1 } in
  let heap_cfg ?block_bytes ?rc_bits ?free_buffer_entries () ~heap_bytes =
    Repro_heap.Heap_config.make ?block_bytes ?rc_bits ?free_buffer_entries
      ~heap_bytes ()
  in
  let geomean_time ?heap_config ?(factory = snd lxr) () =
    let ratios =
      List.filter_map
        (fun (w : Workload.t) ->
          let w = throughput_mode w in
          let base =
            runs one ~workload:w ~factory:(snd lxr) ~heap_factor:2.0 ()
          in
          let v = runs one ?heap_config ~workload:w ~factory ~heap_factor:2.0 () in
          match (mean_of base (fun r -> r.wall_ns), mean_of v (fun r -> r.wall_ns)) with
          | Some b, Some x when b > 0.0 && x > 0.0 -> Some (x /. b)
          | _ -> None)
        Benchmarks.all
    in
    match ratios with [] -> None | l -> Some (Stats.geomean l)
  in
  let fixed_trigger =
    Repro_lxr.Lxr.factory_with ~name:"LXR fixed-trigger"
      ~config:(fun c ->
        { c with
          Repro_lxr.Lxr_config.survival_threshold_bytes = max_int;
          epoch_alloc_cap_bytes = c.Repro_lxr.Lxr_config.epoch_alloc_cap_bytes / 4 })
      ()
  in
  let no_young_evac =
    Repro_lxr.Lxr.factory_with ~name:"LXR -youngevac"
      ~config:(fun c -> { c with Repro_lxr.Lxr_config.evacuate_young = false })
      ()
  in
  let rows =
    [ ("16 KB blocks", geomean_time ~heap_config:(heap_cfg ~block_bytes:(16 * 1024) ()) ());
      ("32 KB blocks (default)", Some 1.0);
      ("64 KB blocks", geomean_time ~heap_config:(heap_cfg ~block_bytes:(64 * 1024) ()) ());
      ("2 RC bits (default)", Some 1.0);
      ("4 RC bits", geomean_time ~heap_config:(heap_cfg ~rc_bits:4 ()) ());
      ("8 RC bits", geomean_time ~heap_config:(heap_cfg ~rc_bits:8 ()) ());
      ("32-entry buffer (default)", Some 1.0);
      ("64-entry buffer", geomean_time ~heap_config:(heap_cfg ~free_buffer_entries:64 ()) ());
      ("128-entry buffer", geomean_time ~heap_config:(heap_cfg ~free_buffer_entries:128 ()) ());
      ("fixed allocation trigger (ablation)", geomean_time ~factory:fixed_trigger ());
      ("no young evacuation (ablation)", geomean_time ~factory:no_young_evac ());
      ("object-remembering barrier (§3.4)",
       geomean_time ~factory:Repro_lxr.Lxr.factory_object_barrier ());
      ("region-based evacuation sets (§3.3.2)",
       geomean_time ~factory:Repro_lxr.Lxr.factory_regional_evacuation ()) ]
  in
  Table.render
    ~title:
      "Sensitivity (§5.4) and design ablations: geomean time at 2x heap\n\
       relative to default LXR. Paper: halving blocks -0.6%, doubling +3.9%;\n\
       4 RC bits +2.9%, 8 bits +3.4%; 64/128-entry buffers +1.1%/+1.3%."
    ~header:[ "Configuration"; "Time ratio" ]
    ~rows:(List.map (fun (n, v) -> [ n; fmt_opt "%.3f" v ]) rows)
    ()

(* --- Fleet serving tier --------------------------------------------------- *)

let fleet opts =
  let w = Benchmarks.find "lusearch" in
  (* The serving regime: GC overhead at a 1.3x heap eats most of the
     nominal capacity, so the interesting operating point — short queues
     except where a collection intervenes — sits well below the
     workload's published target utilization. *)
  let load = 0.15 in
  let results =
    List.concat_map
      (fun (_, factory) ->
        List.map
          (fun (_, policy) ->
            Repro_service.Fleet.run
              (Repro_service.Fleet.config ~policy ~seed:opts.seed ~load
                 ~workload:w ~factory ()))
          Repro_service.Policy.all)
      production
  in
  Report.fleet_table
    ~title:
      "Fleet: lusearch at 1.3x heap, 4 replicas, open-loop Poisson arrivals\n\
       at 0.15x published utilization (latency in microseconds of sim time).\n\
       Expected shape: gc-aware routing collapses the p99/p99.9 tail that\n\
       round-robin eats by queueing arrivals behind per-replica pauses;\n\
       ZGC refuses the small heap and reports the refusal as data."
    results

(* --- Fleet resilience under chaos ------------------------------------------ *)

let chaos opts =
  let w = Benchmarks.find "lusearch" in
  let load = 0.15 in
  let parse what = function Ok v -> v | Error m -> invalid_arg (what ^ ": " ^ m) in
  (* One mid-run crash, a rolling restart into a 0.7x heap, and a 3x
     flash crowd — the three service-tier fault classes that stress a
     router differently: capacity loss, capacity degradation, and
     demand surge. *)
  let schedule =
    parse "chaos"
      (Repro_service.Chaos.of_spec
         "crash@0.3,heap-shrink@0.55x0.7,flash-crowd@0.6+0.1x3")
  in
  let retry =
    parse "retry"
      (Repro_service.Policy.Retry.of_spec "timeout:80ms,max:3,backoff:200us")
  in
  let slo = parse "slo" (Repro_service.Slo.of_spec "p99.9:10ms") in
  let run ~factory ~policy ~client =
    Repro_service.Fleet.run
      (Repro_service.Fleet.config ~policy ~seed:opts.seed ~load
         ~chaos:schedule ~retry:client ~slo ~workload:w ~factory ())
  in
  let results =
    List.concat_map
      (fun (_, factory) ->
        [ run ~factory ~policy:Repro_service.Policy.Round_robin
            ~client:Repro_service.Policy.Retry.none;
          run ~factory ~policy:Repro_service.Policy.Gc_aware ~client:retry ])
      [ g1; lxr; shenandoah ]
  in
  Report.fleet_table
    ~title:
      "Fleet resilience: lusearch at 1.3x heap, 4 replicas, seeded chaos\n\
       (replica crash at 30%, rolling restart into a 0.7x heap at 55%,\n\
       3x flash crowd over [60%, 70%)). Round-robin with a bare client\n\
       vs gc-aware routing with deadline/retry (80ms, 3 attempts).\n\
       Expected shape: gc-aware + retry wins p99.9 and availability —\n\
       it routes around the dead and warming replicas that round-robin\n\
       keeps feeding, and retries recover the crash-dumped requests."
    results

(* --- Journal flood: the drain-lag pathology -------------------------------- *)

let journal_rc = ("Journal-RC", Repro_collectors.Registry.find "journal_rc")

let journal_flood opts =
  (* lusearch is the low-churn control; jflood fires a 24-store pointer
     burst per allocation. The journal barrier emits one record per
     store, so burst churn outruns the concurrent drain: the snapshot
     pause inherits the unfolded journal (in-pause %), pause count and
     total STW inflate, and GC CPU balloons. LXR's coalescing barrier
     logs a field at most once per epoch, so the same churn costs it a
     bounded number of slow paths — the regime where LXR wins. *)
  let stat (r : Runner.result) k =
    Option.value (List.assoc_opt k r.collector_stats) ~default:0.0
  in
  let rows =
    List.concat_map
      (fun wname ->
        let w = throughput_mode (Benchmarks.find wname) in
        List.map
          (fun (cname, factory) ->
            let rs = runs opts ~workload:w ~factory ~heap_factor:2.0 () in
            let m f = mean_of rs f in
            let journal r = stat r "journal_records" in
            [ wname;
              cname;
              fmt_opt "%.1f" (m (fun r -> r.Runner.wall_ns /. 1e6));
              fmt_opt "%.1f" (m (fun r -> r.Runner.gc_cpu_ns /. 1e6));
              fmt_opt "%.0f" (m (fun r -> Float.of_int r.Runner.pause_count));
              fmt_opt "%.2f" (m (fun r -> r.Runner.stw_wall_ns /. 1e6));
              fmt_opt "%.0f" (m (fun r -> stat r "wb_slow"));
              (match m journal with
              | Some j when j > 0.0 ->
                fmt_opt "%.1f"
                  (m (fun r -> 100.0 *. stat r "pause_records" /. journal r))
              | Some _ | None -> "-");
              (match m journal with
              | Some j when j > 0.0 ->
                fmt_opt "%.0f" (m (fun r -> stat r "backlog_peak"))
              | Some _ | None -> "-") ])
          [ g1; lxr; shenandoah; journal_rc ])
      [ "lusearch"; "jflood" ]
  in
  Table.render
    ~title:
      "Journal flood: pointer-churn bursts vs the journal-RC drain\n\
       (2x heap; jflood = 24 mature pointer stores per allocation).\n\
       Expected shape: on lusearch record volume is small (few slow\n\
       paths, modest backlog) and Journal-RC is competitive; on jflood\n\
       the journal outruns the drain -- the snapshot pauses inherit\n\
       all records, pause count and GC CPU inflate, and LXR's\n\
       coalescing barrier (bounded slow paths per epoch) wins."
    ~header:
      [ "Workload"; "Collector"; "Time ms"; "GC cpu ms"; "Pauses"; "STW ms";
        "WB slow"; "In-pause %"; "Backlog pk" ]
    ~rows ()

(* --- Distilled cost (Cai et al. methodology, exact) ------------------------ *)

let ideal = ("Ideal", Repro_collectors.Registry.find "ideal")

(* Every costed collector in the registry, plus LXR (which registers
   through the front ends' extra table, not the registry). *)
let distill_collectors = lxr :: Repro_collectors.Registry.all

let distill opts =
  let one = { opts with iterations = 1 } in
  let heap_factor = 2.0 in
  let rows =
    List.concat_map
      (fun wname ->
        let w = throughput_mode (Benchmarks.find wname) in
        let base =
          List.hd (runs one ~workload:w ~factory:(snd ideal) ~heap_factor ())
        in
        List.map
          (fun (name, factory) ->
            let r = List.hd (runs one ~workload:w ~factory ~heap_factor ()) in
            let row = Report.distill_of ~workload:wname ~heap_factor r base in
            (* A refused heap reports "?" as its collector; keep the
               contender's name on failed rows. *)
            if row.Report.d_error = None then row
            else { row with Report.d_collector = name })
          distill_collectors)
      [ "lusearch"; "jflood"; "fragger"; "phaser" ]
  in
  Report.distill_table
    ~title:
      "Distilled cost at 2x heap: each collector against the exact\n\
       free-reclamation baseline (same mutator work, zero reclamation\n\
       cost). Dist = real - ideal wall time; its components are STW\n\
       pauses, concurrent GC CPU, barrier cycles and allocation stalls.\n\
       The paper's methodology can only bound the baseline on hardware;\n\
       the simulator constructs it, so these overheads are exact."
    rows

(* --- Online controllers vs static configuration ----------------------------- *)

let controller opts =
  let module C = Repro_policy.Controller in
  let one = { opts with iterations = 1 } in
  let heap_factor = 1.5 in
  let parse spec =
    match C.parse spec with Ok s -> s | Error m -> invalid_arg m
  in
  let contenders =
    [ ("LXR static", snd lxr);
      ("LXR hill", C.lxr_factory ~name:"LXR hill" (parse "hill"));
      ("LXR pid", C.lxr_factory ~name:"LXR pid" (parse "pid")) ]
  in
  let rows =
    List.concat_map
      (fun wname ->
        let w = throughput_mode (Benchmarks.find wname) in
        let base =
          List.hd (runs one ~workload:w ~factory:(snd ideal) ~heap_factor ())
        in
        List.map
          (fun (name, factory) ->
            let r = List.hd (runs one ~workload:w ~factory ~heap_factor ()) in
            let row = Report.distill_of ~workload:wname ~heap_factor r base in
            if row.Report.d_error = None then row
            else { row with Report.d_collector = name })
          contenders)
      [ "fragger"; "phaser" ]
  in
  Report.distill_table
    ~title:
      "Online controllers on the adversarial workloads at 1.5x heap:\n\
       static scaled-default LXR vs the hill-climb and PID controllers\n\
       re-tuning the trigger knobs between epochs against the epoch-cost\n\
       objective. Expected shape: on at least one adversary a controller\n\
       beats the static configuration on distilled cost; trajectories\n\
       are bit-identical across --gc-threads and --domains."
    rows

let names =
  [ "table1"; "table3"; "table4"; "figure5"; "table5"; "table6"; "table7";
    "figure7"; "sensitivity"; "fleet"; "chaos"; "journal_flood"; "distill";
    "controller" ]

let by_name = function
  | "table1" -> Some table1
  | "table3" -> Some table3
  | "table4" -> Some table4
  | "figure5" -> Some figure5
  | "table5" -> Some table5
  | "table6" -> Some table6
  | "table7" -> Some table7
  | "figure7" -> Some figure7
  | "sensitivity" -> Some sensitivity
  | "fleet" -> Some fleet
  | "chaos" -> Some chaos
  | "journal_flood" -> Some journal_flood
  | "distill" -> Some distill
  | "controller" -> Some controller
  | _ -> None
