open Repro_util

type t = { free : Vec.t; recyclable : Vec.t }

let create () = { free = Vec.create (); recyclable = Vec.create () }
let release_free t b = Vec.push t.free b
let release_recyclable t b = Vec.push t.recyclable b

let acquire_recyclable t =
  if Vec.is_empty t.recyclable then None else Some (Vec.pop t.recyclable)

let acquire_free t = if Vec.is_empty t.free then None else Some (Vec.pop t.free)
let free_count t = Vec.length t.free
let recyclable_count t = Vec.length t.recyclable

let clear t =
  Vec.clear t.free;
  Vec.clear t.recyclable

let iter_free t f = Vec.iter f t.free
let iter_recyclable t f = Vec.iter f t.recyclable
