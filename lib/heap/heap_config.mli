(** Static configuration of the simulated Immix heap (§2.6, §3.1).

    The defaults mirror the paper: 32 KB blocks composed of 256 B lines, a
    16 B allocation granule, a 2-bit reference count per granule, and a
    large-object threshold of half a block. All sizes are powers of two so
    that the side-metadata tables are reachable by address arithmetic. *)

type t = private {
  heap_bytes : int;  (** total block-structured heap size *)
  block_bytes : int;  (** Immix block size (default 32 KB) *)
  line_bytes : int;  (** Immix line size (default 256 B) *)
  granule_bytes : int;  (** minimum object size / RC granularity (16 B) *)
  rc_bits : int;  (** reference count width; counts stick at 2^bits - 1 *)
  los_threshold : int;  (** objects larger than this go to the LOS *)
  free_buffer_entries : int;  (** lock-free block buffer size (§3.5) *)
  block_shift : int;  (** log2 block_bytes — address arithmetic constant *)
  line_shift : int;  (** log2 line_bytes *)
  granule_shift : int;  (** log2 granule_bytes *)
  block_mask : int;  (** block_bytes - 1 *)
  granule_mask : int;  (** granule_bytes - 1 *)
}

(** [make ~heap_bytes ()] validates and builds a configuration. [heap_bytes]
    is rounded up to a whole number of blocks. Raises [Invalid_argument] if
    any size is not a power of two, sizes do not nest
    (granule | line | block), or [rc_bits] is not one of 1, 2, 4, 8. *)
val make :
  ?block_bytes:int ->
  ?line_bytes:int ->
  ?granule_bytes:int ->
  ?rc_bits:int ->
  ?los_threshold:int ->
  ?free_buffer_entries:int ->
  heap_bytes:int ->
  unit ->
  t

(* Derived quantities. *)

val blocks : t -> int
val lines_per_block : t -> int
val granules_per_line : t -> int
val total_lines : t -> int
val total_granules : t -> int

(** Maximum representable (stuck) reference count: [2^rc_bits - 1]. *)
val stuck_count : t -> int
