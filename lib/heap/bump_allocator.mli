(** Thread-local bump-pointer allocation into Immix blocks (§3.1).

    The allocator holds one current block and one overflow block. The fast
    path bumps a cursor; when an object does not fit and is larger than a
    line, the dynamic-overflow optimization places it in a dedicated
    initially-free block rather than wasting the remaining lines. Holes in
    recyclable blocks are found by scanning the reference count table,
    with the Immix conservative rule that the first free line after a used
    line is unavailable (straddling objects). Freshly claimed memory is
    zeroed in bulk and accounted in the work {!receipt}, which the engine
    converts to virtual time. *)

type receipt = {
  mutable fast_allocs : int;
  mutable slow_allocs : int;  (** hole searches and block acquisitions *)
  mutable blocks_acquired : int;
  mutable bytes_zeroed : int;
  mutable lines_scanned : int;
}

type t

val create :
  Heap_config.t -> rc:Rc_table.t -> blocks:Blocks.t -> free:Free_lists.t ->
  reuse:Reuse_table.t -> t

(** [alloc t ~size] returns the address of a fresh, zeroed, granule-aligned
    region of [size] bytes (which must be [<= los_threshold] and granule
    aligned), or [None] when no block can satisfy it — the caller's cue to
    collect. Newly handed-out completely-free blocks are flagged young. *)
val alloc : t -> size:int -> int option

(** [alloc_addr t ~size] is {!alloc} without the option box: the fresh
    address, or [-1] when no block can satisfy the request. The per-event
    allocation fast path in {!Heap}/[Api] uses this form. *)
val alloc_addr : t -> size:int -> int

(** [retire_all t] returns the allocator's owned blocks to the [In_use]
    state and forgets its cursors. Called at every stop-the-world pause so
    sweeps observe a consistent heap. *)
val retire_all : t -> unit

(** The accumulated work receipt. The engine reads and then {!reset}s
    it. *)
val receipt : t -> receipt

val reset_receipt : t -> unit
