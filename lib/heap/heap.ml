open Repro_util

type t = {
  cfg : Heap_config.t;
  rc : Rc_table.t;
  marks : Mark_bitset.t;
  reuse : Reuse_table.t;
  blocks : Blocks.t;
  free : Free_lists.t;
  registry : Obj_model.Registry.t;
  (* LOS backing-block extents, keyed by registry slot: (offset, length)
     into [los_pool]. Slot-keyed data is cleared in [free_object] before
     the slot is recycled, so a reused slot never inherits LOS state. *)
  mutable los_off : int array;
  mutable los_len : int array;
  los_pool : Vec.t;
  touched : Bytes.t;  (* one bit per block *)
  mutable allocators : Bump_allocator.t list;
  reserve : Vec.t;  (* stack: newest reserve block at the end *)
  sweep_scratch : Vec.t;  (* per-heap: fleet replicas sweep concurrently *)
  mutable epoch : int;
  mutable on_pre_pause : unit -> unit;
}

let create ?slots_hint ?ids_hint cfg =
  let nblocks = Heap_config.blocks cfg in
  let t =
    { cfg;
      rc = Rc_table.create cfg;
      marks = Mark_bitset.create ();
      reuse = Reuse_table.create cfg;
      blocks = Blocks.create cfg;
      free = Free_lists.create ();
      registry = Obj_model.Registry.create ?slots_hint ?ids_hint ();
      los_off = Array.make 1024 0;
      los_len = Array.make 1024 0;
      los_pool = Vec.create ~capacity:16 ();
      touched = Bytes.make ((nblocks + 7) / 8) '\000';
      allocators = [];
      reserve = Vec.create ~capacity:8 ();
      sweep_scratch = Vec.create ~capacity:64 ();
      epoch = 0;
      on_pre_pause = ignore }
  in
  for b = nblocks - 1 downto 0 do
    Free_lists.release_free t.free b
  done;
  t

let make_allocator t =
  let a =
    Bump_allocator.create t.cfg ~rc:t.rc ~blocks:t.blocks ~free:t.free ~reuse:t.reuse
  in
  t.allocators <- a :: t.allocators;
  a

let retire_all_allocators t =
  t.on_pre_pause ();
  List.iter Bump_allocator.retire_all t.allocators

(* --- touched blocks (bitset; ascending iteration order) ---------------- *)

let touch t b =
  let byte = b lsr 3 in
  Bytes.set t.touched byte
    (Char.chr (Char.code (Bytes.get t.touched byte) lor (1 lsl (b land 7))))

let block_touched t b =
  Char.code (Bytes.get t.touched (b lsr 3)) land (1 lsl (b land 7)) <> 0

(* Ascending block order by construction — consumers must not depend on
   the old hashtable iteration order (see test_heap "touched ascending"). *)
let touched_blocks t =
  let acc = ref [] in
  for b = Heap_config.blocks t.cfg - 1 downto 0 do
    if block_touched t b then acc := b :: !acc
  done;
  !acc

let clear_touched t = Bytes.fill t.touched 0 (Bytes.length t.touched) '\000'

(* --- LOS ---------------------------------------------------------------- *)

let ensure_los_slot t slot =
  if slot >= Array.length t.los_len then begin
    let cap = ref (Array.length t.los_len) in
    while !cap <= slot do
      cap := !cap * 2
    done;
    let off = Array.make !cap 0 and len = Array.make !cap 0 in
    Array.blit t.los_off 0 off 0 (Array.length t.los_off);
    Array.blit t.los_len 0 len 0 (Array.length t.los_len);
    t.los_off <- off;
    t.los_len <- len
  end

let is_los t (obj : Obj_model.t) =
  (not (Obj_model.is_freed obj))
  && obj.slot < Array.length t.los_len
  && t.los_len.(obj.slot) > 0

let los_extent t (obj : Obj_model.t) =
  if is_los t obj then
    List.init t.los_len.(obj.slot) (fun i -> Vec.get t.los_pool (t.los_off.(obj.slot) + i))
  else []

let align_size t size =
  let size = if size < t.cfg.granule_bytes then t.cfg.granule_bytes else size in
  Bits.round_up size t.cfg.granule_bytes

let alloc_los t ~size ~nfields =
  let nblocks = (size + t.cfg.block_bytes - 1) / t.cfg.block_bytes in
  if Free_lists.free_count t.free < nblocks then None
  else begin
    let off = Vec.length t.los_pool in
    (* Free-list entries may be stale (collectors that re-sweep a block
       push its classification again without deduplication), so validate
       the state on every pop, exactly as the bump allocator does.
       Consuming a stale entry here would stamp a block another owner —
       e.g. the reserve — already holds. *)
    let acquired = ref 0 in
    let exhausted = ref false in
    while (not !exhausted) && !acquired < nblocks do
      match Free_lists.acquire_free t.free with
      | Some b when Blocks.state t.blocks b = Blocks.Free ->
        Blocks.set_state t.blocks b Blocks.Los_backing;
        Vec.push t.los_pool b;
        incr acquired
      | Some _ -> ()
      | None -> exhausted := true
    done;
    if !acquired < nblocks then begin
      (* Stale entries inflated [free_count]; undo and decline. *)
      for _ = 1 to !acquired do
        let b = Vec.pop t.los_pool in
        Blocks.set_state t.blocks b Blocks.Free;
        Free_lists.release_free t.free b
      done;
      None
    end
    else begin
    let first = Vec.get t.los_pool off in
    let addr = Addr.block_start t.cfg first in
    let obj =
      Obj_model.Registry.register t.registry ~size ~nfields ~addr ~birth_epoch:t.epoch
    in
    ensure_los_slot t obj.slot;
    t.los_off.(obj.slot) <- off;
    t.los_len.(obj.slot) <- nblocks;
    Blocks.add_resident t.blocks first obj.id;
    Some obj
    end
  end

(* Option-free variant for the per-event fast path: the store's
   none-handle (id = null) stands in for [None], so a successful small
   allocation's only box is the handle record itself. *)
let alloc_fast t allocator ~size ~nfields =
  let size = align_size t size in
  if size > t.cfg.los_threshold then begin
    match alloc_los t ~size ~nfields with
    | Some obj -> obj
    | None -> Obj_model.Registry.none_handle t.registry
  end
  else begin
    let addr = Bump_allocator.alloc_addr allocator ~size in
    if addr < 0 then Obj_model.Registry.none_handle t.registry
    else begin
      let obj =
        Obj_model.Registry.register t.registry ~size ~nfields ~addr ~birth_epoch:t.epoch
      in
      let b = Addr.block_of t.cfg addr in
      Blocks.add_resident t.blocks b obj.id;
      touch t b;
      obj
    end
  end

let alloc t allocator ~size ~nfields =
  let obj = alloc_fast t allocator ~size ~nfields in
  if obj.Obj_model.id = Obj_model.null then None else Some obj

let rc_of t obj = Rc_table.get t.rc t.cfg (Obj_model.addr obj)

let rc_inc t obj =
  let addr = Obj_model.addr obj in
  let result = Rc_table.inc t.rc t.cfg addr in
  (match result with
  | `Became 1 when not (is_los t obj) && obj.Obj_model.size > t.cfg.line_bytes ->
    Rc_table.mark_straddle t.rc t.cfg ~addr ~size:obj.Obj_model.size
  | `Became _ | `Stuck -> ());
  result

let rc_dec t obj = Rc_table.dec t.rc t.cfg (Obj_model.addr obj)

let rc_is_stuck t obj = rc_of t obj = Heap_config.stuck_count t.cfg

let pin t (obj : Obj_model.t) =
  let addr = Obj_model.addr obj in
  Rc_table.set t.rc t.cfg addr (Heap_config.stuck_count t.cfg);
  if (not (is_los t obj)) && obj.size > t.cfg.line_bytes then
    Rc_table.mark_straddle t.rc t.cfg ~addr ~size:obj.size

let free_object t obj =
  if not (Obj_model.is_freed obj) then begin
    let addr = Obj_model.addr obj in
    let slot = obj.Obj_model.slot in
    if slot < Array.length t.los_len && t.los_len.(slot) > 0 then begin
      Rc_table.set t.rc t.cfg addr 0;
      let off = t.los_off.(slot) and n = t.los_len.(slot) in
      for i = 0 to n - 1 do
        let b = Vec.get t.los_pool (off + i) in
        Blocks.set_state t.blocks b Blocks.Free;
        Vec.clear (Blocks.residents t.blocks b);
        Free_lists.release_free t.free b
      done;
      t.los_len.(slot) <- 0
    end
    else Rc_table.clear_range t.rc t.cfg ~addr ~size:obj.Obj_model.size;
    Obj_model.Registry.free t.registry obj
  end

let evacuate t gc_alloc obj =
  if is_los t obj || Obj_model.is_freed obj then false
  else begin
    match Bump_allocator.alloc gc_alloc ~size:obj.Obj_model.size with
    | None -> false
    | Some new_addr ->
      let old_addr = Obj_model.addr obj in
      let count = Rc_table.get t.rc t.cfg old_addr in
      Rc_table.clear_range t.rc t.cfg ~addr:old_addr ~size:obj.size;
      Obj_model.set_addr obj new_addr;
      Rc_table.set t.rc t.cfg new_addr count;
      if count > 0 && obj.size > t.cfg.line_bytes then
        Rc_table.mark_straddle t.rc t.cfg ~addr:new_addr ~size:obj.size;
      let b = Addr.block_of t.cfg new_addr in
      Blocks.add_resident t.blocks b obj.id;
      touch t b;
      true
  end

let resident_live t b id =
  let obj = Obj_model.Registry.find_live t.registry id in
  obj.Obj_model.id <> Obj_model.null && Addr.block_of t.cfg (Obj_model.addr obj) = b

(* Read-only half of the per-block sweep: is [id] a resident of [b]
   that died with a zero count (young objects that never received an
   increment and were never individually freed)? Dead-ness in one block
   is unaffected by frees in any other block — objects never straddle
   blocks — so many blocks may be scanned concurrently by sweep work
   packets before any of them is applied. *)
let dead_resident t b id =
  let obj = Obj_model.Registry.find_live t.registry id in
  obj.Obj_model.id <> Obj_model.null
  && Addr.block_of t.cfg (Obj_model.addr obj) = b
  && Rc_table.get t.rc t.cfg (Obj_model.addr obj) = 0

let sweep_scan_block t b out =
  Vec.iter
    (fun id -> if dead_resident t b id then Vec.push out id)
    (Blocks.residents t.blocks b)

(* Mutating half: free a pre-scanned dead list ([len] ids of [dead]
   starting at [off]), then compact and classify the block. Equivalent
   to [rc_sweep_block] when the list came from [sweep_scan_block] with
   no intervening mutation of block [b]. *)
let rc_sweep_apply t b ~dead ~off ~len =
  let freed_bytes = ref 0 in
  for k = off to off + len - 1 do
    let obj = Obj_model.Registry.find_live t.registry (Vec.get dead k) in
    if obj.Obj_model.id <> Obj_model.null then begin
      freed_bytes := !freed_bytes + obj.size;
      free_object t obj
    end
  done;
  Blocks.compact t.blocks b ~live:(resident_live t b);
  Blocks.set_young t.blocks b false;
  let classification =
    if Rc_table.block_is_free t.rc t.cfg b then begin
      Blocks.set_state t.blocks b Blocks.Free;
      Free_lists.release_free t.free b;
      `Freed
    end
    else begin
      let free_lines = Rc_table.free_lines_in_block t.rc t.cfg b in
      if free_lines > 0 then begin
        Blocks.set_state t.blocks b Blocks.Recyclable;
        Free_lists.release_recyclable t.free b;
        `Recyclable free_lines
      end
      else begin
        Blocks.set_state t.blocks b Blocks.In_use;
        `Full
      end
    end
  in
  (classification, !freed_bytes)

let rc_sweep_block t b =
  Vec.clear t.sweep_scratch;
  sweep_scan_block t b t.sweep_scratch;
  rc_sweep_apply t b ~dead:t.sweep_scratch ~off:0 ~len:(Vec.length t.sweep_scratch)

let available_blocks t = Free_lists.free_count t.free

(* ~1/16 of the heap, but never more than 1/8 — degenerate few-block
   heaps get little or no reserve rather than losing half their space. *)
let reserve_target t =
  let blocks = Heap_config.blocks t.cfg in
  min (blocks / 8) (max 1 (blocks / 16))

(* Newest-first release, matching the stack discipline of [ensure_reserve]. *)
let release_reserve t =
  for i = Vec.length t.reserve - 1 downto 0 do
    let b = Vec.get t.reserve i in
    Blocks.set_state t.blocks b Blocks.Free;
    Free_lists.release_free t.free b
  done;
  Vec.clear t.reserve

let ensure_reserve t =
  (* Drop blocks a sweep may have dissolved back into circulation,
     preserving the stack order of the survivors. *)
  let keep = ref 0 in
  for i = 0 to Vec.length t.reserve - 1 do
    let b = Vec.get t.reserve i in
    if Blocks.state t.blocks b = Blocks.In_use then begin
      Vec.set t.reserve !keep b;
      incr keep
    end
  done;
  while Vec.length t.reserve > !keep do
    ignore (Vec.pop t.reserve)
  done;
  let missing = ref (reserve_target t - Vec.length t.reserve) in
  let exhausted = ref false in
  while !missing > 0 && not !exhausted do
    match Free_lists.acquire_free t.free with
    | Some b when Blocks.state t.blocks b = Blocks.Free ->
      Blocks.set_state t.blocks b Blocks.In_use;
      Vec.push t.reserve b;
      decr missing
    | Some _ -> ()
    | None -> exhausted := true
  done

let rebuild_free_lists t =
  Free_lists.clear t.free;
  for b = Heap_config.blocks t.cfg - 1 downto 0 do
    match Blocks.state t.blocks b with
    | Blocks.Free -> Free_lists.release_free t.free b
    | Blocks.Recyclable -> Free_lists.release_recyclable t.free b
    | Blocks.Owned | Blocks.In_use | Blocks.Los_backing -> ()
  done

let live_bytes_in_block t b =
  Vec.fold
    (fun acc id ->
      let obj = Obj_model.Registry.find_live t.registry id in
      if
        obj.Obj_model.id <> Obj_model.null
        && Addr.block_of t.cfg (Obj_model.addr obj) = b
      then acc + obj.size
      else acc)
    0
    (Blocks.residents t.blocks b)

let reachable t ~roots = Obj_model.Registry.reachable_from t.registry roots
let live_bytes t = Obj_model.Registry.live_bytes t.registry
let total_bytes t = t.cfg.heap_bytes
