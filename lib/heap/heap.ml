open Repro_util

type t = {
  cfg : Heap_config.t;
  rc : Rc_table.t;
  marks : Mark_bitset.t;
  reuse : Reuse_table.t;
  blocks : Blocks.t;
  free : Free_lists.t;
  registry : Obj_model.Registry.t;
  los_backing : (int, int list) Hashtbl.t;
  touched : (int, unit) Hashtbl.t;
  mutable allocators : Bump_allocator.t list;
  mutable reserve : int list;
  mutable epoch : int;
  mutable on_pre_pause : unit -> unit;
}

let create cfg =
  let t =
    { cfg;
      rc = Rc_table.create cfg;
      marks = Mark_bitset.create ();
      reuse = Reuse_table.create cfg;
      blocks = Blocks.create cfg;
      free = Free_lists.create ();
      registry = Obj_model.Registry.create ();
      los_backing = Hashtbl.create 64;
      touched = Hashtbl.create 64;
      allocators = [];
      reserve = [];
      epoch = 0;
      on_pre_pause = ignore }
  in
  for b = Heap_config.blocks cfg - 1 downto 0 do
    Free_lists.release_free t.free b
  done;
  t

let make_allocator t =
  let a =
    Bump_allocator.create t.cfg ~rc:t.rc ~blocks:t.blocks ~free:t.free ~reuse:t.reuse
  in
  t.allocators <- a :: t.allocators;
  a

let retire_all_allocators t =
  t.on_pre_pause ();
  List.iter Bump_allocator.retire_all t.allocators
let touched_blocks t = Hashtbl.fold (fun b () acc -> b :: acc) t.touched []
let clear_touched t = Hashtbl.reset t.touched

let is_los t obj = Hashtbl.mem t.los_backing obj.Obj_model.id

let align_size t size =
  let size = if size < t.cfg.granule_bytes then t.cfg.granule_bytes else size in
  Bits.round_up size t.cfg.granule_bytes

let alloc_los t ~size ~nfields =
  let nblocks = (size + t.cfg.block_bytes - 1) / t.cfg.block_bytes in
  if Free_lists.free_count t.free < nblocks then None
  else begin
    let backing = List.init nblocks (fun _ ->
        match Free_lists.acquire_free t.free with
        | Some b -> b
        | None ->
          invalid_arg
            (Printf.sprintf
               "Heap.alloc_los: free list ran dry acquiring %d backing blocks \
                despite free_count >= %d — free-list/state corruption"
               nblocks nblocks))
    in
    List.iter (fun b -> Blocks.set_state t.blocks b Blocks.Los_backing) backing;
    let first = List.hd backing in
    let addr = Addr.block_start t.cfg first in
    let obj =
      Obj_model.Registry.register t.registry ~size ~nfields ~addr ~birth_epoch:t.epoch
    in
    Hashtbl.replace t.los_backing obj.id backing;
    Blocks.add_resident t.blocks first obj.id;
    Some obj
  end

let alloc t allocator ~size ~nfields =
  let size = align_size t size in
  if size > t.cfg.los_threshold then alloc_los t ~size ~nfields
  else begin
    match Bump_allocator.alloc allocator ~size with
    | None -> None
    | Some addr ->
      let obj =
        Obj_model.Registry.register t.registry ~size ~nfields ~addr ~birth_epoch:t.epoch
      in
      let b = Addr.block_of t.cfg addr in
      Blocks.add_resident t.blocks b obj.id;
      Hashtbl.replace t.touched b ();
      Some obj
  end

let rc_of t obj = Rc_table.get t.rc t.cfg obj.Obj_model.addr

let rc_inc t obj =
  let result = Rc_table.inc t.rc t.cfg obj.Obj_model.addr in
  (match result with
  | `Became 1 when not (is_los t obj) && obj.size > t.cfg.line_bytes ->
    Rc_table.mark_straddle t.rc t.cfg ~addr:obj.addr ~size:obj.size
  | `Became _ | `Stuck -> ());
  result

let rc_dec t obj = Rc_table.dec t.rc t.cfg obj.Obj_model.addr

let rc_is_stuck t obj = rc_of t obj = Heap_config.stuck_count t.cfg

let pin t (obj : Obj_model.t) =
  Rc_table.set t.rc t.cfg obj.addr (Heap_config.stuck_count t.cfg);
  if (not (is_los t obj)) && obj.size > t.cfg.line_bytes then
    Rc_table.mark_straddle t.rc t.cfg ~addr:obj.addr ~size:obj.size

let free_object t obj =
  if not (Obj_model.is_freed obj) then begin
    (match Hashtbl.find_opt t.los_backing obj.Obj_model.id with
    | Some backing ->
      Rc_table.set t.rc t.cfg obj.addr 0;
      List.iter
        (fun b ->
          Blocks.set_state t.blocks b Blocks.Free;
          Repro_util.Vec.clear (Blocks.residents t.blocks b);
          Free_lists.release_free t.free b)
        backing;
      Hashtbl.remove t.los_backing obj.id
    | None -> Rc_table.clear_range t.rc t.cfg ~addr:obj.addr ~size:obj.size);
    Obj_model.Registry.free t.registry obj
  end

let evacuate t gc_alloc obj =
  if is_los t obj || Obj_model.is_freed obj then false
  else begin
    match Bump_allocator.alloc gc_alloc ~size:obj.Obj_model.size with
    | None -> false
    | Some new_addr ->
      let count = Rc_table.get t.rc t.cfg obj.addr in
      Rc_table.clear_range t.rc t.cfg ~addr:obj.addr ~size:obj.size;
      obj.addr <- new_addr;
      Rc_table.set t.rc t.cfg new_addr count;
      if count > 0 && obj.size > t.cfg.line_bytes then
        Rc_table.mark_straddle t.rc t.cfg ~addr:new_addr ~size:obj.size;
      let b = Addr.block_of t.cfg new_addr in
      Blocks.add_resident t.blocks b obj.id;
      Hashtbl.replace t.touched b ();
      true
  end

let resident_live t b id =
  match Obj_model.Registry.find t.registry id with
  | None -> false
  | Some obj -> not (Obj_model.is_freed obj) && Addr.block_of t.cfg obj.addr = b

let rc_sweep_block t b =
  (* Free dead residents first (young objects that never received an
     increment have rc = 0 and were never individually freed). *)
  let freed_bytes = ref 0 in
  Vec.iter
    (fun id ->
      match Obj_model.Registry.find t.registry id with
      | Some obj
        when (not (Obj_model.is_freed obj))
             && Addr.block_of t.cfg obj.addr = b
             && Rc_table.get t.rc t.cfg obj.addr = 0 ->
        freed_bytes := !freed_bytes + obj.size;
        free_object t obj
      | Some _ | None -> ())
    (Blocks.residents t.blocks b);
  Blocks.compact t.blocks b ~live:(resident_live t b);
  Blocks.set_young t.blocks b false;
  let classification =
    if Rc_table.block_is_free t.rc t.cfg b then begin
      Blocks.set_state t.blocks b Blocks.Free;
      Free_lists.release_free t.free b;
      `Freed
    end
    else begin
      let free_lines = Rc_table.free_lines_in_block t.rc t.cfg b in
      if free_lines > 0 then begin
        Blocks.set_state t.blocks b Blocks.Recyclable;
        Free_lists.release_recyclable t.free b;
        `Recyclable free_lines
      end
      else begin
        Blocks.set_state t.blocks b Blocks.In_use;
        `Full
      end
    end
  in
  (classification, !freed_bytes)

let available_blocks t = Free_lists.free_count t.free

(* ~1/16 of the heap, but never more than 1/8 — degenerate few-block
   heaps get little or no reserve rather than losing half their space. *)
let reserve_target t =
  let blocks = Heap_config.blocks t.cfg in
  min (blocks / 8) (max 1 (blocks / 16))

let release_reserve t =
  List.iter
    (fun b ->
      Blocks.set_state t.blocks b Blocks.Free;
      Free_lists.release_free t.free b)
    t.reserve;
  t.reserve <- []

let ensure_reserve t =
  (* Drop blocks a sweep may have dissolved back into circulation. *)
  t.reserve <- List.filter (fun b -> Blocks.state t.blocks b = Blocks.In_use) t.reserve;
  let missing = ref (reserve_target t - List.length t.reserve) in
  let exhausted = ref false in
  while !missing > 0 && not !exhausted do
    match Free_lists.acquire_free t.free with
    | Some b when Blocks.state t.blocks b = Blocks.Free ->
      Blocks.set_state t.blocks b Blocks.In_use;
      t.reserve <- b :: t.reserve;
      decr missing
    | Some _ -> ()
    | None -> exhausted := true
  done

let rebuild_free_lists t =
  Free_lists.clear t.free;
  for b = Heap_config.blocks t.cfg - 1 downto 0 do
    match Blocks.state t.blocks b with
    | Blocks.Free -> Free_lists.release_free t.free b
    | Blocks.Recyclable -> Free_lists.release_recyclable t.free b
    | Blocks.Owned | Blocks.In_use | Blocks.Los_backing -> ()
  done

let live_bytes_in_block t b =
  Vec.fold
    (fun acc id ->
      match Obj_model.Registry.find t.registry id with
      | Some obj when (not (Obj_model.is_freed obj)) && Addr.block_of t.cfg obj.addr = b ->
        acc + obj.size
      | Some _ | None -> acc)
    0
    (Blocks.residents t.blocks b)

let reachable t ~roots = Obj_model.Registry.reachable_from t.registry roots
let live_bytes t = Obj_model.Registry.live_bytes t.registry
let total_bytes t = t.cfg.heap_bytes
