type t = { mutable bits : Bytes.t }

let create () = { bits = Bytes.make 1024 '\000' }

let ensure t id =
  let needed = (id lsr 3) + 1 in
  if needed > Bytes.length t.bits then begin
    let size = ref (Bytes.length t.bits) in
    while !size < needed do
      size := !size * 2
    done;
    let bits = Bytes.make !size '\000' in
    Bytes.blit t.bits 0 bits 0 (Bytes.length t.bits);
    t.bits <- bits
  end

let mark t id =
  ensure t id;
  let byte = id lsr 3 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl (id land 7))))

let marked t id =
  let byte = id lsr 3 in
  byte < Bytes.length t.bits
  && Char.code (Bytes.get t.bits byte) land (1 lsl (id land 7)) <> 0

let unmark t id =
  let byte = id lsr 3 in
  if byte < Bytes.length t.bits then
    Bytes.set t.bits byte
      (Char.chr (Char.code (Bytes.get t.bits byte) land lnot (1 lsl (id land 7))))

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let iter_marked t f =
  for byte = 0 to Bytes.length t.bits - 1 do
    let v = Char.code (Bytes.get t.bits byte) in
    if v <> 0 then
      for bit = 0 to 7 do
        if v land (1 lsl bit) <> 0 then f ((byte lsl 3) lor bit)
      done
  done
