(** Simulated objects and the object store.

    References between objects are integer ids ([0] is null) rather than
    OCaml pointers, so an independent reachability oracle can audit the
    collectors (see {!Registry.reachable_from}). Each object records its
    current simulated address; evacuation reassigns the address while the
    id — and therefore every "pointer" — stays valid, which plays the role
    of the forwarding pointer in the real system.

    The store is a dense struct-of-arrays: object metadata lives in
    growable flat arrays indexed by an internal {e slot}, object fields
    live as (offset, length) extents in one shared pooled [int] buffer,
    and the logged bits live in a single inline word for objects with
    <= 63 fields. External ids are monotonic allocation-sequence numbers
    (never reused, so recorded traces replay with identical ids); slots
    are recycled through a free-slot stack, guarded against aliasing by
    an owner check — a stale handle to a freed object reads as freed
    forever, even after its slot has been reused by a new object.

    Per-field logged bits implement the coalescing write barrier's
    unlogged-bit side metadata (§3.4): a set bit means the field has
    already been logged this epoch (or the object is new) and the barrier
    fast path applies. *)

(** The null reference. *)
val null : int

(** The backing struct-of-arrays store ({!Registry.t}). *)
type store

(** An object handle: the external id, the object's (immutable) size, and
    the slot it occupies in the store. Handles are canonical — {!Registry.get}
    and {!Registry.find} return the one handle allocated at registration,
    so holding or re-looking-up objects never allocates. *)
type t = private {
  id : int;  (** monotonic allocation-sequence number; never reused *)
  size : int;  (** bytes, granule aligned, including header *)
  slot : int;  (** dense store index; recycled after free *)
  store : store;
}

(** [is_freed obj] — true once the object is freed, forever (the owner
    check makes stale handles inert even after slot reuse). *)
val is_freed : t -> bool

(** [addr obj] is the current simulated address, or [-1] once freed. *)
val addr : t -> int

(** [set_addr obj a] reassigns the address (evacuation). No-op if freed. *)
val set_addr : t -> int -> unit

(** RC epoch in which the object was allocated (see {!set_birth_epoch}). *)
val birth_epoch : t -> int

val set_birth_epoch : t -> int -> unit

(** Number of reference fields. *)
val nfields : t -> int

(** [field obj i] is the referent id in field [i] ({!null} if empty or
    the object is freed). Raises [Invalid_argument] when [i] is out of
    bounds for a live object. *)
val field : t -> int -> int

val set_field : t -> int -> int -> unit

(** [iter_fields f obj] applies [f] to each referent id in field order
    (no-op on freed objects). *)
val iter_fields : (int -> unit) -> t -> unit

val iteri_fields : (int -> int -> unit) -> t -> unit

(** Snapshot of the fields as a fresh array ([[||]] if freed). *)
val fields_copy : t -> int array

(** [field_logged obj i] / [set_field_logged obj i v]: the unlogged-bit
    protocol. New objects are created all-logged. *)
val field_logged : t -> int -> bool

val set_field_logged : t -> int -> bool -> unit

(** [set_all_logged obj v] bulk-sets every field's bit — used when a young
    object survives its first collection and must start logging. *)
val set_all_logged : t -> bool -> unit

module Registry : sig
  (** The id -> object map over the struct-of-arrays store. Freeing an
      object recycles its slot and field extent; its id is never reused. *)

  type obj := t
  type t = store

  (** [create ?slots_hint ?ids_hint ()] — the hints presize the backing
      slot- and id-indexed arrays (a replayer knows both exactly from the
      trace header/ring, turning doubling-growth churn into one
      right-sized allocation each). *)
  val create : ?slots_hint:int -> ?ids_hint:int -> unit -> t

  (** [register reg ~size ~nfields ~addr ~birth_epoch] creates a fresh
      object with all-null fields and all-logged bits, installs it, and
      returns its canonical handle. *)
  val register : t -> size:int -> nfields:int -> addr:int -> birth_epoch:int -> obj

  (** [get reg id] raises [Not_found] if [id] is null or freed. *)
  val get : t -> int -> obj

  val find : t -> int -> obj option

  (** The store's shared "no object" sentinel: a handle with [id = null]
      that the owner check reads as freed forever. {!find_live} returns
      it in place of [None] so lookups on hot paths never box an option. *)
  val none_handle : t -> obj

  (** [find_live reg id] is the canonical handle when [id] is live, and
      [none_handle reg] otherwise (test [(find_live reg id).id = null]).
      Allocation-free, unlike {!find} which boxes a [Some] per hit. *)
  val find_live : t -> int -> obj

  val mem : t -> int -> bool

  (** [free reg obj] removes the object, recycles its slot and field
      extent, and marks it freed. *)
  val free : t -> obj -> unit

  (** Number of live (registered) objects. *)
  val count : t -> int

  (** Total bytes of live objects. *)
  val live_bytes : t -> int

  (** Iterates live objects in ascending slot order. *)
  val iter : (obj -> unit) -> t -> unit

  (** One past the highest slot ever occupied — the range registry work
      packets partition over ([iter] ≡ visiting [handle_at] for slots
      [0 .. slot_count - 1]). *)
  val slot_count : t -> int

  (** The live object occupying [slot], if any. *)
  val handle_at : t -> int -> obj option

  (** [handle_at_live reg slot] is {!handle_at} without the option box:
      the occupying handle, or {!none_handle} when the slot is empty —
      the form slot-partitioned scan packets use. *)
  val handle_at_live : t -> int -> obj

  (** [reachable_from reg roots] is the id set reachable from [roots] by
      following fields — the oracle used by correctness tests. Returned
      as an id-indexed bitset. *)
  val reachable_from : t -> int list -> Mark_bitset.t
end
