(** The reference count table (§3.2.1).

    One [rc_bits]-wide saturating counter per 16-byte granule of the heap,
    reachable from an object address by simple address arithmetic. A count
    of [stuck_count] is stuck: further increments and decrements are
    ignored and the object must be reclaimed by the SATB trace. Free lines
    and blocks have all-zero counts, which is also how the allocator finds
    holes and how the sweep identifies reclaimable lines and blocks.

    Counters exist only at object-start granules — with one exception:
    when an object straddles lines, LXR writes a non-zero marker into the
    entry of each trailing line except the last so the allocator never
    reuses those lines ([mark_straddle]). *)

type t

val create : Heap_config.t -> t

(** [get t cfg addr] is the count stored for the granule at [addr]. [addr]
    must be granule aligned. *)
val get : t -> Heap_config.t -> int -> int

(** [set t cfg addr v] stores [v] (clamped to the representable range). *)
val set : t -> Heap_config.t -> int -> int -> unit

(** [inc t cfg addr] applies a saturating increment. Returns the
    transition that occurred: [`Became n] for an ordinary [n-1 -> n]
    increment (so [`Became 1] identifies a surviving young object), or
    [`Stuck] when the count was, or just became, stuck. *)
val inc : t -> Heap_config.t -> int -> [ `Became of int | `Stuck ]

(** [dec t cfg addr] applies a decrement. Returns [`Became n] (so
    [`Became 0] means the object died), or [`Stuck] when the count is
    stuck and therefore not decremented, or [`Underflow] when the count
    was already zero (a bug in the caller; exposed for tests). *)
val dec : t -> Heap_config.t -> int -> [ `Became of int | `Stuck | `Underflow ]

(** [clear_range t cfg ~addr ~size] zeroes every granule entry covered by
    an object of [size] bytes at [addr] — its header count and any
    straddle markers. *)
val clear_range : t -> Heap_config.t -> addr:int -> size:int -> unit

(** [mark_straddle t cfg ~addr ~size] writes the straddle marker into the
    first granule of each trailing line except the last, for an object
    larger than a line (§3.1). No-op for objects within a line. *)
val mark_straddle : t -> Heap_config.t -> addr:int -> size:int -> unit

(** [line_is_free t cfg gline] is true when every granule entry in global
    line [gline] is zero. *)
val line_is_free : t -> Heap_config.t -> int -> bool

(** [block_is_free t cfg b] is true when every line of block [b] is
    free. *)
val block_is_free : t -> Heap_config.t -> int -> bool

(** [free_lines_in_block t cfg b] counts free lines in block [b]. *)
val free_lines_in_block : t -> Heap_config.t -> int -> int

(** [live_granules_in_block t cfg b] counts non-zero entries, the paper's
    upper bound on live data used for evacuation target selection
    (§3.3.2). *)
val live_granules_in_block : t -> Heap_config.t -> int -> int

(** [iter_nonzero t cfg f] calls [f ~granule ~count] for every granule
    with a non-zero entry, in address order. Skips packed all-zero bytes
    wholesale, so a mostly-empty table scans in O(heap / 64) — cheap
    enough for the integrity verifier to run at every safepoint. *)
val iter_nonzero : t -> Heap_config.t -> (granule:int -> count:int -> unit) -> unit
