(** The simulated Immix heap: blocks, lines, side metadata, objects.

    This facade owns every table and provides the operations collectors
    and mutators need: allocation (block-structured or large-object),
    reference count manipulation with straddle-line maintenance, object
    reclamation, evacuation, RC-based sweeping, and a reachability oracle
    for correctness audits.

    Large objects (> [los_threshold]) are backed by whole blocks carved
    out of the free list ([Los_backing] state); their address is the first
    backing block's start, so the RC table covers them by the same address
    arithmetic, but only their header granule carries a count and they are
    never evacuated. *)

type t = {
  cfg : Heap_config.t;
  rc : Rc_table.t;
  marks : Mark_bitset.t;
  reuse : Reuse_table.t;
  blocks : Blocks.t;
  free : Free_lists.t;
  registry : Obj_model.Registry.t;
  mutable los_off : int array;
      (** LOS backing extent offset into [los_pool], keyed by registry slot *)
  mutable los_len : int array;  (** LOS backing block count, keyed by slot *)
  los_pool : Repro_util.Vec.t;  (** shared pool of LOS backing-block ids *)
  touched : Bytes.t;
      (** bitset of blocks allocated into since the last pause — the
          young-sweep set *)
  mutable allocators : Bump_allocator.t list;
  reserve : Repro_util.Vec.t;
      (** to-space reserve: blocks withheld from allocation so emergency
          compaction always has copy destinations (stack; newest last) *)
  sweep_scratch : Repro_util.Vec.t;
      (** scratch dead-list for [rc_sweep_block]; per-heap because fleet
          replicas sweep their heaps concurrently *)
  mutable epoch : int;  (** current RC epoch number *)
  mutable on_pre_pause : unit -> unit;
      (** invoked at the start of {!retire_all_allocators} — i.e. before
          every stop-the-world pause. Default [ignore]; the verifier
          installs its pre-pause safepoint check here. Must not allocate
          from or mutate the heap. *)
}

(** [create cfg] builds an empty heap with every block on the free
    list. The hints presize the object registry (see
    {!Obj_model.Registry.create}). *)
val create : ?slots_hint:int -> ?ids_hint:int -> Heap_config.t -> t

(** [make_allocator t] is a fresh thread-local bump allocator over this
    heap, tracked so pauses can retire it. *)
val make_allocator : t -> Bump_allocator.t

(** [retire_all_allocators t] runs the [on_pre_pause] hook and retires
    every allocator created by {!make_allocator} — the first step of
    every stop-the-world pause. *)
val retire_all_allocators : t -> unit

(** [touched_blocks t] lists blocks allocated into since the last
    {!clear_touched} — the sweep set for young reclamation. Always in
    ascending block order. *)
val touched_blocks : t -> int list

(** [block_touched t b] is the membership test behind {!touched_blocks}. *)
val block_touched : t -> int -> bool

val clear_touched : t -> unit

(** [is_los t obj] is true for large-object-space residents. *)
val is_los : t -> Obj_model.t -> bool

(** [los_extent t obj] is the list of backing blocks of a LOS object in
    acquisition order ([[]] for non-LOS objects). *)
val los_extent : t -> Obj_model.t -> int list

(** [alloc t alloc_ ~size ~nfields] allocates and registers an object.
    [size] is rounded up to the granule; sizes above [los_threshold] go to
    the large object space. Returns [None] when the heap cannot satisfy
    the request (caller should collect and retry). *)
val alloc : t -> Bump_allocator.t -> size:int -> nfields:int -> Obj_model.t option

(** [alloc_fast] is {!alloc} without the option box: on failure it
    returns the registry's none-handle (test [obj.id = Obj_model.null]).
    A successful small allocation's only box is the handle record. *)
val alloc_fast : t -> Bump_allocator.t -> size:int -> nfields:int -> Obj_model.t

(** [rc_of t obj] is the object's current reference count. *)
val rc_of : t -> Obj_model.t -> int

(** [rc_inc t obj] increments, maintaining straddle markers on the
    [0 -> 1] transition (§3.1). Result as {!Rc_table.inc}. *)
val rc_inc : t -> Obj_model.t -> [ `Became of int | `Stuck ]

(** [rc_dec t obj]. The caller decides what to do on [`Became 0]; the
    count itself is already zero. *)
val rc_dec : t -> Obj_model.t -> [ `Became of int | `Stuck | `Underflow ]

(** [rc_is_stuck t obj]. *)
val rc_is_stuck : t -> Obj_model.t -> bool

(** [pin t obj] sets the object's header count to the stuck value and
    writes its straddle markers. Tracing (non-RC) collectors pin every
    object at allocation so the shared line-liveness metadata — and hence
    the bump allocator's hole search — remains meaningful; reclamation
    then goes through {!free_object}, which clears the entries. *)
val pin : t -> Obj_model.t -> unit

(** [free_object t obj] clears the object's RC entries (header and
    straddle markers), releases LOS backing blocks, and removes it from
    the registry. Idempotent on already-freed objects. *)
val free_object : t -> Obj_model.t -> unit

(** [evacuate t gc_alloc obj] copies [obj] to a fresh location obtained
    from [gc_alloc], moving its reference count and straddle markers, and
    updates block residency. Returns [false] (object left in place) if no
    space is available or the object is a large object. *)
val evacuate : t -> Bump_allocator.t -> Obj_model.t -> bool

(** [rc_sweep_block t b] inspects block [b]'s RC table after an RC epoch:
    frees it entirely (returning it to the free list) when all counts are
    zero, lists it as recyclable when it has free lines, and leaves it in
    use otherwise. Dead residents (rc = 0) are freed from the registry.
    Returns the classification and the number of freed object bytes. *)
val rc_sweep_block :
  t -> int -> [ `Freed | `Recyclable of int | `Full ] * int

(** Work-packet split of [rc_sweep_block]. [sweep_scan_block t b out]
    is the read-only half: it appends the ids of block [b]'s dead
    residents (rc = 0) to [out]. It mutates nothing, and dead-ness in
    one block is unaffected by frees in another (objects never straddle
    blocks), so sweep packets may scan many blocks concurrently before
    any block is applied. *)
val sweep_scan_block : t -> int -> Repro_util.Vec.t -> unit

(** [rc_sweep_apply t b ~dead ~off ~len] is the mutating half: frees
    the [len] pre-scanned dead ids of [dead] starting at [off], then
    compacts and classifies block [b] exactly as [rc_sweep_block]. *)
val rc_sweep_apply :
  t ->
  int ->
  dead:Repro_util.Vec.t ->
  off:int ->
  len:int ->
  [ `Freed | `Recyclable of int | `Full ] * int

(** [available_blocks t] is the number of blocks on the free list. *)
val available_blocks : t -> int

(** [release_reserve t] returns the to-space reserve to the free list —
    called at the start of an emergency (compacting) collection so the
    evacuation has guaranteed destinations. *)
val release_reserve : t -> unit

(** [ensure_reserve t] tops the reserve back up (to ~1/16 of the heap)
    from the free list, with priority over the mutator: starving the
    allocator slightly early forces a collection that is then guaranteed
    to make progress. Collectors call this after each major collection. *)
val ensure_reserve : t -> unit

(** [rebuild_free_lists t] drops both lists and re-releases every [Free]
    and [Recyclable] block — used by collectors that reclassify blocks
    wholesale. *)
val rebuild_free_lists : t -> unit

(** [live_bytes_in_block t b] sums the sizes of live residents (exact,
    used for evacuation-target selection alongside the RC upper bound). *)
val live_bytes_in_block : t -> int -> int

(** [reachable t ~roots] is the oracle id set reachable from [roots],
    as an id-indexed bitset. *)
val reachable : t -> roots:int list -> Mark_bitset.t

(** [live_bytes t] is total registered object bytes. *)
val live_bytes : t -> int

(** [total_bytes t] is the configured heap size. *)
val total_bytes : t -> int
