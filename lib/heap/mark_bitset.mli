(** SATB mark bits (§3.2.2).

    Indexed by object id rather than by address: the simulator's ids are
    stable across evacuation, so an id-indexed bit is equivalent to the
    paper's address-indexed side metadata plus the bit-forwarding that
    evacuation would otherwise require (deviation documented in
    DESIGN.md §4). The set grows automatically with the id space. *)

type t

val create : unit -> t

val mark : t -> int -> unit

(** [marked t id]; ids never marked are unmarked. *)
val marked : t -> int -> bool

val unmark : t -> int -> unit

(** [clear t] unmarks everything (end of an SATB epoch). *)
val clear : t -> unit

(** [iter_marked t f] calls [f] on every marked id in increasing order
    (audit support; skips zero bytes, so sparse sets iterate quickly). *)
val iter_marked : t -> (int -> unit) -> unit
