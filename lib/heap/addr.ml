(* Simulated addresses are non-negative, so the power-of-two geometry
   turns every division/modulus into a shift/mask (the precomputed
   constants live in {!Heap_config.t}) — these sit under every barrier,
   RC operation and sweep query. *)

let block_of (cfg : Heap_config.t) addr = addr lsr cfg.block_shift
let block_start (cfg : Heap_config.t) b = b lsl cfg.block_shift
let line_of (cfg : Heap_config.t) addr = addr lsr cfg.line_shift

let line_in_block (cfg : Heap_config.t) addr =
  (addr land cfg.block_mask) lsr cfg.line_shift

let line_start (cfg : Heap_config.t) l = l lsl cfg.line_shift
let granule_of (cfg : Heap_config.t) addr = addr lsr cfg.granule_shift
let granule_start (cfg : Heap_config.t) g = g lsl cfg.granule_shift
let is_granule_aligned (cfg : Heap_config.t) addr = addr land cfg.granule_mask = 0

let lines_covered cfg ~addr ~size =
  (line_of cfg addr, line_of cfg (addr + size - 1))

let valid (cfg : Heap_config.t) addr = addr >= 0 && addr < cfg.heap_bytes
