type receipt = {
  mutable fast_allocs : int;
  mutable slow_allocs : int;
  mutable blocks_acquired : int;
  mutable bytes_zeroed : int;
  mutable lines_scanned : int;
}

type t = {
  cfg : Heap_config.t;
  rc : Rc_table.t;
  blocks : Blocks.t;
  free : Free_lists.t;
  reuse : Reuse_table.t;
  mutable block : int;  (* current block index, -1 if none *)
  mutable cursor : int;
  mutable limit : int;
  mutable ovf_block : int;
  mutable ovf_cursor : int;
  mutable ovf_limit : int;
  r : receipt;
}

let create cfg ~rc ~blocks ~free ~reuse =
  { cfg; rc; blocks; free; reuse;
    block = -1; cursor = 0; limit = 0;
    ovf_block = -1; ovf_cursor = 0; ovf_limit = 0;
    r = { fast_allocs = 0; slow_allocs = 0; blocks_acquired = 0;
          bytes_zeroed = 0; lines_scanned = 0 } }

let receipt t = t.r

let reset_receipt t =
  t.r.fast_allocs <- 0;
  t.r.slow_allocs <- 0;
  t.r.blocks_acquired <- 0;
  t.r.bytes_zeroed <- 0;
  t.r.lines_scanned <- 0

(* A line is allocatable when it is free and is not the first free line
   after a used line (straddling conservatism), except at block start. *)
let line_allocatable t ~block_first_line l =
  Rc_table.line_is_free t.rc t.cfg l
  && (l = block_first_line || Rc_table.line_is_free t.rc t.cfg (l - 1))

(* Find the next hole (maximal allocatable line run) in block [b] starting
   at or after global line [from_line]. *)
let next_hole t b ~from_line =
  let first = Addr.block_start t.cfg b / t.cfg.line_bytes in
  let last = first + Heap_config.lines_per_block t.cfg - 1 in
  let from_line = if from_line < first then first else from_line in
  let rec find l =
    if l > last then None
    else begin
      t.r.lines_scanned <- t.r.lines_scanned + 1;
      if line_allocatable t ~block_first_line:first l then begin
        let rec extend e =
          if e + 1 > last || not (Rc_table.line_is_free t.rc t.cfg (e + 1)) then e
          else extend (e + 1)
        in
        Some (l, extend l)
      end
      else find (l + 1)
    end
  in
  find from_line

let claim_hole t (lo, hi) =
  let start = Addr.line_start t.cfg lo in
  let stop = Addr.line_start t.cfg hi + t.cfg.line_bytes in
  t.r.bytes_zeroed <- t.r.bytes_zeroed + (stop - start);
  Reuse_table.bump_range t.reuse ~first:lo ~last:hi;
  (start, stop)

let retire_current t =
  if t.block >= 0 then begin
    Blocks.set_state t.blocks t.block Blocks.In_use;
    t.block <- -1;
    t.cursor <- 0;
    t.limit <- 0
  end

let retire_overflow t =
  if t.ovf_block >= 0 then begin
    Blocks.set_state t.blocks t.ovf_block Blocks.In_use;
    t.ovf_block <- -1;
    t.ovf_cursor <- 0;
    t.ovf_limit <- 0
  end

let retire_all t =
  retire_current t;
  retire_overflow t

(* List entries can be stale (a block may be re-listed after lazy sweeps,
   repurposed as LOS backing, or selected as an evacuation target), so
   every acquisition validates the block's current state and skips
   entries that no longer qualify. *)
let acquire_free_block t =
  let rec try_next () =
    match Free_lists.acquire_free t.free with
    | None -> None
    | Some b when Blocks.state t.blocks b <> Blocks.Free -> try_next ()
    | Some b ->
      t.r.blocks_acquired <- t.r.blocks_acquired + 1;
      Blocks.set_state t.blocks b Blocks.Owned;
      Blocks.set_young t.blocks b true;
      let lo = Addr.block_start t.cfg b / t.cfg.line_bytes in
      let hi = lo + Heap_config.lines_per_block t.cfg - 1 in
      let start, stop = claim_hole t (lo, hi) in
      Some (b, start, stop)
  in
  try_next ()

let acquire_recyclable_block t =
  let rec try_next () =
    match Free_lists.acquire_recyclable t.free with
    | None -> None
    | Some b when Blocks.state t.blocks b <> Blocks.Recyclable || Blocks.target t.blocks b ->
      try_next ()
    | Some b ->
      t.r.blocks_acquired <- t.r.blocks_acquired + 1;
      (match next_hole t b ~from_line:0 with
      | Some hole ->
        Blocks.set_state t.blocks b Blocks.Owned;
        Blocks.set_young t.blocks b false;
        let start, stop = claim_hole t hole in
        Some (b, start, stop)
      | None ->
        (* The block filled up since it was listed; retire and retry. *)
        Blocks.set_state t.blocks b Blocks.In_use;
        try_next ())
  in
  try_next ()

let install_current t (b, start, stop) =
  t.block <- b;
  t.cursor <- start;
  t.limit <- stop

let advance_to_next_hole t =
  if t.block < 0 then false
  else begin
    let from_line = Addr.line_of t.cfg (t.limit - 1) + 1 in
    match next_hole t t.block ~from_line with
    | Some hole ->
      let start, stop = claim_hole t hole in
      t.cursor <- start;
      t.limit <- stop;
      true
    | None ->
      retire_current t;
      false
  end

(* The address-returning paths use [-1] as the "no memory" sentinel so
   the per-allocation fast path never boxes a [Some addr]; [alloc] wraps
   the result for option-typed callers. *)
let overflow_alloc t ~size =
  if t.ovf_cursor + size <= t.ovf_limit then begin
    let addr = t.ovf_cursor in
    t.ovf_cursor <- addr + size;
    addr
  end
  else begin
    retire_overflow t;
    match acquire_free_block t with
    | None -> -1
    | Some (b, start, stop) ->
      t.ovf_block <- b;
      t.ovf_cursor <- start + size;
      t.ovf_limit <- stop;
      start
  end

let rec alloc_slow t ~size =
  t.r.slow_allocs <- t.r.slow_allocs + 1;
  (* Dynamic overflow: the current hole has room left but this object is
     bigger than a line — don't waste the lines, divert to overflow. When
     no completely free block is available for overflow, fall back to the
     regular hole search: a multi-line hole can still hold the object. *)
  let ovf =
    if size > t.cfg.line_bytes && t.limit > t.cursor then overflow_alloc t ~size
    else -1
  in
  if ovf >= 0 then ovf
  else if advance_to_next_hole t then alloc_addr t ~size
  else begin
    match acquire_recyclable_block t with
    | Some placement ->
      install_current t placement;
      alloc_addr t ~size
    | None ->
      (match acquire_free_block t with
      | Some placement ->
        install_current t placement;
        alloc_addr t ~size
      | None -> -1)
  end

and alloc_addr t ~size =
  if size <= 0 || size > t.cfg.los_threshold then
    invalid_arg
      (Printf.sprintf
         "Bump_allocator.alloc: size %d outside (0, %d] — large objects \
          must go through Heap.alloc's LOS path"
         size t.cfg.los_threshold);
  if not (Addr.is_granule_aligned t.cfg size) then
    invalid_arg
      (Printf.sprintf
         "Bump_allocator.alloc: size %d is not a multiple of the %d-byte \
          granule (caller must align with Heap.align_size)"
         size t.cfg.granule_bytes);
  if t.cursor + size <= t.limit then begin
    let addr = t.cursor in
    t.cursor <- addr + size;
    t.r.fast_allocs <- t.r.fast_allocs + 1;
    addr
  end
  else alloc_slow t ~size

let alloc t ~size =
  let addr = alloc_addr t ~size in
  if addr < 0 then None else Some addr
