type state = Free | Recyclable | Owned | In_use | Los_backing

type t = {
  states : state array;
  young_flags : Bytes.t;
  target_flags : Bytes.t;
  resident_lists : Repro_util.Vec.t array;
}

let create cfg =
  let n = Heap_config.blocks cfg in
  { states = Array.make n Free;
    young_flags = Bytes.make n '\000';
    target_flags = Bytes.make n '\000';
    resident_lists = Array.init n (fun _ -> Repro_util.Vec.create ~capacity:8 ()) }

let state t b = t.states.(b)
let set_state t b st = t.states.(b) <- st
let young t b = Bytes.get t.young_flags b <> '\000'
let set_young t b v = Bytes.set t.young_flags b (if v then '\001' else '\000')
let target t b = Bytes.get t.target_flags b <> '\000'
let set_target t b v = Bytes.set t.target_flags b (if v then '\001' else '\000')
let residents t b = t.resident_lists.(b)
let add_resident t b id = Repro_util.Vec.push t.resident_lists.(b) id

(* In-place stable filter: no per-sweep list allocation, and residents
   keep their insertion order (the pre-PR 5 version reversed the order
   on every compact, which was an accident of its list accumulator). *)
let compact t b ~live = Repro_util.Vec.retain live t.resident_lists.(b)

let iter_state t st f =
  Array.iteri (fun b s -> if s = st then f b) t.states

let count_state t st =
  Array.fold_left (fun acc s -> if s = st then acc + 1 else acc) 0 t.states

let total t = Array.length t.states
