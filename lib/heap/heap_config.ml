type t = {
  heap_bytes : int;
  block_bytes : int;
  line_bytes : int;
  granule_bytes : int;
  rc_bits : int;
  los_threshold : int;
  free_buffer_entries : int;
  (* Precomputed address-arithmetic constants: the geometry is enforced
     power-of-two, and these turn the per-barrier/per-RC-op divisions in
     {!Addr} into shifts and masks. *)
  block_shift : int;
  line_shift : int;
  granule_shift : int;
  block_mask : int;  (* block_bytes - 1 *)
  granule_mask : int;  (* granule_bytes - 1 *)
}

let make ?(block_bytes = 32 * 1024) ?(line_bytes = 256) ?(granule_bytes = 16)
    ?(rc_bits = 2) ?los_threshold ?(free_buffer_entries = 32) ~heap_bytes () =
  let check_pow2 name v =
    if not (Repro_util.Bits.is_power_of_two v) then
      invalid_arg (Printf.sprintf "Heap_config: %s (%d) must be a power of two" name v)
  in
  check_pow2 "block_bytes" block_bytes;
  check_pow2 "line_bytes" line_bytes;
  check_pow2 "granule_bytes" granule_bytes;
  if granule_bytes > line_bytes || line_bytes > block_bytes then
    invalid_arg "Heap_config: sizes must nest (granule <= line <= block)";
  (match rc_bits with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg "Heap_config: rc_bits must be 1, 2, 4, or 8");
  if heap_bytes < block_bytes then invalid_arg "Heap_config: heap smaller than one block";
  let heap_bytes = Repro_util.Bits.round_up heap_bytes block_bytes in
  let los_threshold = match los_threshold with Some v -> v | None -> block_bytes / 2 in
  if los_threshold < line_bytes then invalid_arg "Heap_config: los_threshold too small";
  if free_buffer_entries < 1 then invalid_arg "Heap_config: free_buffer_entries";
  { heap_bytes; block_bytes; line_bytes; granule_bytes; rc_bits; los_threshold;
    free_buffer_entries;
    block_shift = Repro_util.Bits.log2 block_bytes;
    line_shift = Repro_util.Bits.log2 line_bytes;
    granule_shift = Repro_util.Bits.log2 granule_bytes;
    block_mask = block_bytes - 1;
    granule_mask = granule_bytes - 1 }

let blocks t = t.heap_bytes / t.block_bytes
let lines_per_block t = t.block_bytes / t.line_bytes
let granules_per_line t = t.line_bytes / t.granule_bytes
let total_lines t = t.heap_bytes / t.line_bytes
let total_granules t = t.heap_bytes / t.granule_bytes
let stuck_count t = (1 lsl t.rc_bits) - 1
