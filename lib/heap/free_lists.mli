(** Global free and recyclable block lists (§3.1, §3.5).

    The real system uses lock-free bounded buffers to hand blocks to
    thread-local allocators with minimal contention; here the lists are
    plain stacks and the buffer size only influences the cost model (the
    §5.4 sensitivity experiment). Following Immix, allocators take
    recyclable (partially free) blocks first, preserving completely free
    blocks for large allocations. *)

type t

val create : unit -> t

(** [release_free t b] / [release_recyclable t b] push block [b]. *)
val release_free : t -> int -> unit

val release_recyclable : t -> int -> unit

(** [acquire_recyclable t] / [acquire_free t] pop a block if any. *)
val acquire_recyclable : t -> int option

val acquire_free : t -> int option

val free_count : t -> int
val recyclable_count : t -> int

(** [clear t] empties both lists (used when rebuilding after a sweep). *)
val clear : t -> unit

(** [iter_free t f] / [iter_recyclable t f]: non-destructive iteration in
    stack order. Entries may be stale (the block's state has since
    changed) — consumers revalidate against {!Blocks.state}, and so must
    auditors. *)
val iter_free : t -> (int -> unit) -> unit

val iter_recyclable : t -> (int -> unit) -> unit
