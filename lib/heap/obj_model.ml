open Repro_util

let null = 0

(* The object store is a dense struct-of-arrays keyed by *slot*:
   growable flat arrays for owner/addr/size/birth-epoch/field-extent.
   Object fields live in one shared pooled [int] buffer addressed by
   (offset, length) — no per-object [int array] — and the coalescing
   barrier's logged bits live in a single inline word per object when it
   has <= 63 fields (the overwhelmingly common case), falling back to a
   pooled extent only for wide objects.

   External ids stay monotonic allocation-sequence numbers (so recorded
   traces replay with identical ids); *slots* are recycled through a
   free-slot stack. The aliasing guard is the [owner] array: a handle or
   id resolves only while [owner.(slot)] still equals its id, so a stale
   handle to a freed object reads as freed forever even after its slot
   has been reused. *)

type store = {
  (* slot-indexed (dense, O(live objects + free slots)) *)
  mutable owner : int array;  (* owning id, or -1 when the slot is free *)
  mutable addrs : int array;
  mutable sizes : int array;
  mutable births : int array;
  mutable foff : int array;  (* field extent offset into [pool] *)
  mutable flen : int array;  (* field count *)
  mutable logged : int array;  (* inline logged word, or offset into [wide] *)
  mutable handles : t array;  (* canonical handle, shared by get/find *)
  mutable slots : int;  (* high-water slot count *)
  free_slots : Vec.t;
  (* shared field pool: one flat buffer + per-length free lists *)
  mutable pool : int array;
  mutable pool_top : int;
  mutable pool_free : Vec.t option array;  (* index = extent length *)
  (* logged-word pool for objects with > 63 fields *)
  mutable wide : int array;
  mutable wide_top : int;
  mutable wide_free : Vec.t option array;
  (* id-indexed: id -> slot, valid only while [owner.(slot)] = id *)
  mutable id_to_slot : int array;
  mutable next_id : int;
  mutable bytes : int;
  mutable count : int;
  (* The shared "no object" sentinel: id 0 (= null, never assigned to a
     real object, so the owner check reads it as freed forever). Filling
     [handles] with it instead of [None] means registration stores the
     canonical handle without boxing an option — the handle record is
     then the only allocation left on the per-object path. *)
  none : t;
}

and t = { id : int; size : int; slot : int; store : store }

let inline_logged_max = 63

(* Store invariant: every handle's [slot] is below the length of all
   slot-indexed arrays ([ensure_slot] grows them before a slot is handed
   out, and they never shrink), and a live object's field extent
   [foff, foff + flen) sits inside [pool] — so the accessors below can
   use unchecked array reads once the owner test has resolved liveness.
   The explicit [check_field] bound on the caller-supplied index is the
   one check that must stay. *)

let is_freed obj = Array.unsafe_get obj.store.owner obj.slot <> obj.id

let addr obj =
  if is_freed obj then -1 else Array.unsafe_get obj.store.addrs obj.slot

let set_addr obj a =
  if not (is_freed obj) then Array.unsafe_set obj.store.addrs obj.slot a

let birth_epoch obj = obj.store.births.(obj.slot)
let set_birth_epoch obj e = if not (is_freed obj) then obj.store.births.(obj.slot) <- e

let nfields obj = Array.unsafe_get obj.store.flen obj.slot

let check_field obj i =
  if i < 0 || i >= Array.unsafe_get obj.store.flen obj.slot then
    invalid_arg "Obj_model: field index out of bounds"

let field obj i =
  let s = obj.store in
  let slot = obj.slot in
  if Array.unsafe_get s.owner slot = obj.id then begin
    check_field obj i;
    Array.unsafe_get s.pool (Array.unsafe_get s.foff slot + i)
  end
  else null

let set_field obj i v =
  let s = obj.store in
  let slot = obj.slot in
  if Array.unsafe_get s.owner slot = obj.id then begin
    check_field obj i;
    Array.unsafe_set s.pool (Array.unsafe_get s.foff slot + i) v
  end

let iter_fields f obj =
  let s = obj.store in
  let slot = obj.slot in
  if Array.unsafe_get s.owner slot = obj.id then begin
    let off = Array.unsafe_get s.foff slot
    and n = Array.unsafe_get s.flen slot in
    for i = 0 to n - 1 do
      f (Array.unsafe_get s.pool (off + i))
    done
  end

let iteri_fields f obj =
  let s = obj.store in
  let slot = obj.slot in
  if Array.unsafe_get s.owner slot = obj.id then begin
    let off = Array.unsafe_get s.foff slot
    and n = Array.unsafe_get s.flen slot in
    for i = 0 to n - 1 do
      f i (Array.unsafe_get s.pool (off + i))
    done
  end

let fields_copy obj =
  let s = obj.store in
  if s.owner.(obj.slot) = obj.id then
    Array.sub s.pool s.foff.(obj.slot) s.flen.(obj.slot)
  else [||]

(* --- logged bits ------------------------------------------------------- *)

let ones n = if n >= inline_logged_max then -1 else (1 lsl n) - 1
let wide_words n = (n + inline_logged_max - 1) / inline_logged_max

let field_logged obj i =
  let s = obj.store in
  let slot = obj.slot in
  check_field obj i;
  let n = s.flen.(slot) in
  if n <= inline_logged_max then (s.logged.(slot) lsr i) land 1 <> 0
  else begin
    let w = s.wide.(s.logged.(slot) + (i / inline_logged_max)) in
    (w lsr (i mod inline_logged_max)) land 1 <> 0
  end

let set_field_logged obj i v =
  let s = obj.store in
  let slot = obj.slot in
  check_field obj i;
  let n = s.flen.(slot) in
  if n <= inline_logged_max then begin
    let bit = 1 lsl i in
    s.logged.(slot) <- (if v then s.logged.(slot) lor bit else s.logged.(slot) land lnot bit)
  end
  else begin
    let idx = s.logged.(slot) + (i / inline_logged_max) in
    let bit = 1 lsl (i mod inline_logged_max) in
    s.wide.(idx) <- (if v then s.wide.(idx) lor bit else s.wide.(idx) land lnot bit)
  end

let set_all_logged obj v =
  let s = obj.store in
  let slot = obj.slot in
  let n = s.flen.(slot) in
  if n <= inline_logged_max then s.logged.(slot) <- (if v then ones n else 0)
  else Array.fill s.wide s.logged.(slot) (wide_words n) (if v then -1 else 0)

module Registry = struct
  type t = store

  (* [slots_hint]/[ids_hint]: expected live-slot and external-id counts,
     used to presize the backing arrays. A replayer knows both exactly
     from the trace, turning doubling-growth churn (which allocates ~2x
     the high-water mark in copies) into one right-sized allocation. *)
  let create ?(slots_hint = 1024) ?(ids_hint = 4096) () =
    let slots_hint = max 16 slots_hint and ids_hint = max 16 ids_hint in
    let rec reg =
      { owner = [||];
        addrs = [||];
        sizes = [||];
        births = [||];
        foff = [||];
        flen = [||];
        logged = [||];
        handles = [||];
        slots = 0;
        free_slots = Vec.create ~capacity:256 ();
        pool = [||];
        pool_top = 0;
        pool_free = Array.make 64 None;
        wide = Array.make 64 0;
        wide_top = 0;
        wide_free = Array.make 8 None;
        id_to_slot = [||];
        next_id = 1;
        bytes = 0;
        count = 0;
        none = none_handle }
    and none_handle = { id = null; size = 0; slot = 0; store = reg } in
    reg.owner <- Array.make slots_hint (-1);
    reg.addrs <- Array.make slots_hint 0;
    reg.sizes <- Array.make slots_hint 0;
    reg.births <- Array.make slots_hint 0;
    reg.foff <- Array.make slots_hint 0;
    reg.flen <- Array.make slots_hint 0;
    reg.logged <- Array.make slots_hint 0;
    reg.handles <- Array.make slots_hint none_handle;
    reg.pool <- Array.make (8 * slots_hint) null;
    reg.id_to_slot <- Array.make ids_hint (-1);
    reg

  let grow_int_array arr needed fill =
    let cap = ref (Array.length arr) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let a = Array.make !cap fill in
    Array.blit arr 0 a 0 (Array.length arr);
    a

  let ensure_slot reg slot =
    if slot >= Array.length reg.owner then begin
      let needed = slot + 1 in
      reg.owner <- grow_int_array reg.owner needed (-1);
      reg.addrs <- grow_int_array reg.addrs needed 0;
      reg.sizes <- grow_int_array reg.sizes needed 0;
      reg.births <- grow_int_array reg.births needed 0;
      reg.foff <- grow_int_array reg.foff needed 0;
      reg.flen <- grow_int_array reg.flen needed 0;
      reg.logged <- grow_int_array reg.logged needed 0;
      let h = Array.make (Array.length reg.owner) reg.none in
      Array.blit reg.handles 0 h 0 (Array.length reg.handles);
      reg.handles <- h
    end

  let ensure_id reg id =
    if id >= Array.length reg.id_to_slot then
      reg.id_to_slot <- grow_int_array reg.id_to_slot (id + 1) (-1)

  (* Shared-pool extents: pop a recycled extent of exactly this length if
     one exists, otherwise bump-allocate. Recycled extents are re-nulled
     so registration semantics match a fresh all-null field array. *)

  let free_list_for lists len =
    if len < Array.length !lists then !lists.(len)
    else None

  let push_free lists len off =
    if len >= Array.length !lists then begin
      let cap = ref (Array.length !lists) in
      while !cap <= len do
        cap := !cap * 2
      done;
      let a = Array.make !cap None in
      Array.blit !lists 0 a 0 (Array.length !lists);
      lists := a
    end;
    (match !lists.(len) with
    | Some v -> Vec.push v off
    | None ->
      let v = Vec.create ~capacity:4 () in
      Vec.push v off;
      !lists.(len) <- Some v)

  let pool_alloc reg len =
    if len = 0 then 0
    else begin
      let lists = ref reg.pool_free in
      let recycled =
        match free_list_for lists len with
        | Some v when not (Vec.is_empty v) -> Some (Vec.pop v)
        | Some _ | None -> None
      in
      reg.pool_free <- !lists;
      match recycled with
      | Some off ->
        Array.fill reg.pool off len null;
        off
      | None ->
        if reg.pool_top + len > Array.length reg.pool then
          reg.pool <- grow_int_array reg.pool (reg.pool_top + len) null;
        let off = reg.pool_top in
        reg.pool_top <- off + len;
        off
    end

  let pool_release reg off len =
    if len > 0 then begin
      let lists = ref reg.pool_free in
      push_free lists len off;
      reg.pool_free <- !lists
    end

  let wide_alloc reg words =
    let lists = ref reg.wide_free in
    let recycled =
      match free_list_for lists words with
      | Some v when not (Vec.is_empty v) -> Some (Vec.pop v)
      | Some _ | None -> None
    in
    reg.wide_free <- !lists;
    match recycled with
    | Some off ->
      Array.fill reg.wide off words (-1);
      off
    | None ->
      if reg.wide_top + words > Array.length reg.wide then
        reg.wide <- grow_int_array reg.wide (reg.wide_top + words) 0;
      let off = reg.wide_top in
      reg.wide_top <- off + words;
      Array.fill reg.wide off words (-1);
      off

  let wide_release reg off words =
    let lists = ref reg.wide_free in
    push_free lists words off;
    reg.wide_free <- !lists

  let register reg ~size ~nfields ~addr ~birth_epoch =
    let id = reg.next_id in
    reg.next_id <- id + 1;
    let slot =
      if Vec.is_empty reg.free_slots then begin
        let s = reg.slots in
        reg.slots <- s + 1;
        ensure_slot reg s;
        s
      end
      else Vec.pop reg.free_slots
    in
    reg.owner.(slot) <- id;
    reg.addrs.(slot) <- addr;
    reg.sizes.(slot) <- size;
    reg.births.(slot) <- birth_epoch;
    reg.foff.(slot) <- pool_alloc reg nfields;
    reg.flen.(slot) <- nfields;
    (* New objects are born all-logged: the barrier ignores mutations to
       them, implementing the implicitly-dead optimization. *)
    reg.logged.(slot) <-
      (if nfields <= inline_logged_max then ones nfields
       else wide_alloc reg (wide_words nfields));
    ensure_id reg id;
    reg.id_to_slot.(id) <- slot;
    let obj = { id; size; slot; store = reg } in
    reg.handles.(slot) <- obj;
    reg.bytes <- reg.bytes + size;
    reg.count <- reg.count + 1;
    obj

  let none_handle reg = reg.none

  (* Sentinel-returning lookup: the zero-allocation form of [find]. The
     result is live unless it is the store's [none] sentinel (id 0) —
     callers test [is_none] / compare ids, never destructure an option. *)
  let find_live reg id =
    if id <= 0 || id >= Array.length reg.id_to_slot then reg.none
    else begin
      (* A non-negative [id_to_slot] entry is always a valid slot index
         (set at registration after [ensure_slot]), so the owner/handle
         reads are unchecked. *)
      let slot = Array.unsafe_get reg.id_to_slot id in
      if slot >= 0 && Array.unsafe_get reg.owner slot = id then
        Array.unsafe_get reg.handles slot
      else reg.none
    end

  let find reg id =
    let obj = find_live reg id in
    if obj.id = null then None else Some obj

  let mem reg id =
    id > 0
    && id < Array.length reg.id_to_slot
    &&
    let slot = reg.id_to_slot.(id) in
    slot >= 0 && reg.owner.(slot) = id

  let get reg id =
    let obj = find_live reg id in
    if obj.id = null then raise Not_found else obj

  let free reg obj =
    if not (is_freed obj) then begin
      let slot = obj.slot in
      let n = reg.flen.(slot) in
      pool_release reg reg.foff.(slot) n;
      if n > inline_logged_max then wide_release reg reg.logged.(slot) (wide_words n);
      reg.owner.(slot) <- -1;
      reg.handles.(slot) <- reg.none;
      Vec.push reg.free_slots slot;
      reg.bytes <- reg.bytes - obj.size;
      reg.count <- reg.count - 1
    end

  let count reg = reg.count
  let live_bytes reg = reg.bytes
  let slot_count reg = reg.slots

  let handle_at reg slot =
    if slot < 0 || slot >= reg.slots then None
    else if reg.owner.(slot) >= 0 then Some reg.handles.(slot)
    else None

  (* Sentinel-returning form of [handle_at] for slot-partitioned scan
     packets (no [Some] per live slot). *)
  let handle_at_live reg slot =
    if slot < 0 || slot >= reg.slots then reg.none
    else if Array.unsafe_get reg.owner slot >= 0 then
      Array.unsafe_get reg.handles slot
    else reg.none

  let iter f reg =
    for slot = 0 to reg.slots - 1 do
      if reg.owner.(slot) >= 0 then f reg.handles.(slot)
    done

  let reachable_from reg roots =
    let seen = Mark_bitset.create () in
    let stack = Vec.create ~capacity:256 () in
    let visit id =
      if id <> null && (not (Mark_bitset.marked seen id)) && mem reg id then begin
        Mark_bitset.mark seen id;
        Vec.push stack id
      end
    in
    List.iter visit roots;
    while not (Vec.is_empty stack) do
      let id = Vec.pop stack in
      match find reg id with
      | None -> ()
      | Some obj -> iter_fields visit obj
    done;
    seen
end
