(* Counts are packed [8 / rc_bits] per byte in a [Bytes.t].

   Alongside the packed counters the table maintains two derived
   occupancy arrays, updated incrementally at the single mutation point
   ([set]): live (non-zero) granules per line, and free lines per block.
   They turn the sweep's hot classification queries — [line_is_free],
   [block_is_free], [free_lines_in_block], [live_granules_in_block] —
   from per-granule scans into O(1) reads, which is where most of the
   young-sweep and allocator hole-search time went before PR 5. *)

type t = {
  data : Bytes.t;
  per_byte : int;
  mask : int;
  granule_shift : int;  (* addr -> granule index *)
  pb_shift : int;  (* granule -> byte index *)
  rcb_shift : int;  (* slot-in-byte -> bit shift *)
  line_shift : int;  (* addr -> global line index *)
  block_shift : int;  (* addr -> block index *)
  line_live : int array;  (* non-zero granule entries per global line *)
  block_free : int array;  (* all-zero lines per block *)
  block_live : int array;  (* non-zero granule entries per block *)
  lines_per_block : int;
}

let create (cfg : Heap_config.t) =
  let granules = Heap_config.total_granules cfg in
  let per_byte = 8 / cfg.rc_bits in
  let lpb = Heap_config.lines_per_block cfg in
  { data = Bytes.make ((granules + per_byte - 1) / per_byte) '\000';
    per_byte;
    mask = (1 lsl cfg.rc_bits) - 1;
    granule_shift = Repro_util.Bits.log2 cfg.granule_bytes;
    pb_shift = Repro_util.Bits.log2 per_byte;
    rcb_shift = Repro_util.Bits.log2 cfg.rc_bits;
    line_shift = Repro_util.Bits.log2 cfg.line_bytes;
    block_shift = Repro_util.Bits.log2 cfg.block_bytes;
    line_live = Array.make (Heap_config.total_lines cfg) 0;
    block_free = Array.make (Heap_config.blocks cfg) lpb;
    block_live = Array.make (Heap_config.blocks cfg) 0;
    lines_per_block = lpb }

let get t (_ : Heap_config.t) addr =
  let g = addr lsr t.granule_shift in
  let shift = (g land (t.per_byte - 1)) lsl t.rcb_shift in
  (Char.code (Bytes.unsafe_get t.data (g lsr t.pb_shift)) lsr shift) land t.mask

let set t (_ : Heap_config.t) addr v =
  let v = if v < 0 then 0 else if v > t.mask then t.mask else v in
  let g = addr lsr t.granule_shift in
  let byte = g lsr t.pb_shift in
  let shift = (g land (t.per_byte - 1)) lsl t.rcb_shift in
  let old = Char.code (Bytes.unsafe_get t.data byte) in
  let prev = (old lsr shift) land t.mask in
  if prev <> v then begin
    let cleared = old land lnot (t.mask lsl shift) in
    Bytes.unsafe_set t.data byte (Char.unsafe_chr (cleared lor (v lsl shift)));
    let line = addr lsr t.line_shift in
    let block = addr lsr t.block_shift in
    if prev = 0 then begin
      (* zero -> non-zero: the line may stop being free. *)
      let ll = Array.unsafe_get t.line_live line in
      if ll = 0 then
        Array.unsafe_set t.block_free block (Array.unsafe_get t.block_free block - 1);
      Array.unsafe_set t.line_live line (ll + 1);
      Array.unsafe_set t.block_live block (Array.unsafe_get t.block_live block + 1)
    end
    else if v = 0 then begin
      let ll = Array.unsafe_get t.line_live line - 1 in
      Array.unsafe_set t.line_live line ll;
      if ll = 0 then
        Array.unsafe_set t.block_free block (Array.unsafe_get t.block_free block + 1);
      Array.unsafe_set t.block_live block (Array.unsafe_get t.block_live block - 1)
    end
  end

let inc t cfg addr =
  let c = get t cfg addr in
  if c >= t.mask then `Stuck
  else begin
    let c' = c + 1 in
    set t cfg addr c';
    if c' = t.mask then `Stuck else `Became c'
  end

let dec t cfg addr =
  let c = get t cfg addr in
  if c = t.mask then `Stuck
  else if c = 0 then `Underflow
  else begin
    set t cfg addr (c - 1);
    `Became (c - 1)
  end

let clear_range t cfg ~addr ~size =
  let granule = (cfg : Heap_config.t).granule_bytes in
  let last = addr + size - 1 in
  let g0 = addr and gn = Addr.granule_start cfg (Addr.granule_of cfg last) in
  let a = ref g0 in
  while !a <= gn do
    set t cfg !a 0;
    a := !a + granule
  done

let mark_straddle t cfg ~addr ~size =
  let first_line, last_line = Addr.lines_covered cfg ~addr ~size in
  (* Trailing lines except the last: the conservative treatment of
     straddling objects already accounts for the final line (§3.1). *)
  for l = first_line + 1 to last_line - 1 do
    set t cfg (Addr.line_start cfg l) t.mask
  done

let line_is_free t (_ : Heap_config.t) gline = Array.unsafe_get t.line_live gline = 0
let block_is_free t (_ : Heap_config.t) b = Array.unsafe_get t.block_free b = t.lines_per_block
let free_lines_in_block t (_ : Heap_config.t) b = Array.unsafe_get t.block_free b
let live_granules_in_block t (_ : Heap_config.t) b = Array.unsafe_get t.block_live b

let iter_nonzero t cfg f =
  let granules = Heap_config.total_granules cfg in
  let nbytes = Bytes.length t.data in
  (* Word-wide skip: read 8 metadata bytes at a time and fall into the
     per-byte loop only for words that hold at least one non-zero
     entry. A mostly-empty table scans in O(heap / 512). *)
  let words = nbytes / 8 in
  let visit_byte byte =
    let v = Char.code (Bytes.unsafe_get t.data byte) in
    if v <> 0 then
      for slot = 0 to t.per_byte - 1 do
        let count = (v lsr (slot lsl t.rcb_shift)) land t.mask in
        let granule = (byte lsl t.pb_shift) + slot in
        if count <> 0 && granule < granules then f ~granule ~count
      done
  in
  for w = 0 to words - 1 do
    if Bytes.get_int64_le t.data (w * 8) <> 0L then
      for byte = w * 8 to (w * 8) + 7 do
        visit_byte byte
      done
  done;
  for byte = words * 8 to nbytes - 1 do
    visit_byte byte
  done
