(* Counts are packed [8 / rc_bits] per byte in a [Bytes.t]. *)

type t = { data : Bytes.t; per_byte : int; mask : int }

let create (cfg : Heap_config.t) =
  let granules = Heap_config.total_granules cfg in
  let per_byte = 8 / cfg.rc_bits in
  { data = Bytes.make ((granules + per_byte - 1) / per_byte) '\000';
    per_byte;
    mask = (1 lsl cfg.rc_bits) - 1 }

let slot t cfg addr =
  assert (Addr.is_granule_aligned cfg addr);
  let g = Addr.granule_of cfg addr in
  let byte = g / t.per_byte in
  let shift = g mod t.per_byte * (cfg : Heap_config.t).rc_bits in
  (byte, shift)

let get t cfg addr =
  let byte, shift = slot t cfg addr in
  (Char.code (Bytes.get t.data byte) lsr shift) land t.mask

let set t cfg addr v =
  let v = if v < 0 then 0 else if v > t.mask then t.mask else v in
  let byte, shift = slot t cfg addr in
  let old = Char.code (Bytes.get t.data byte) in
  let cleared = old land lnot (t.mask lsl shift) in
  Bytes.set t.data byte (Char.chr (cleared lor (v lsl shift)))

let inc t cfg addr =
  let c = get t cfg addr in
  if c >= t.mask then `Stuck
  else begin
    let c' = c + 1 in
    set t cfg addr c';
    if c' = t.mask then `Stuck else `Became c'
  end

let dec t cfg addr =
  let c = get t cfg addr in
  if c = t.mask then `Stuck
  else if c = 0 then `Underflow
  else begin
    set t cfg addr (c - 1);
    `Became (c - 1)
  end

let clear_range t cfg ~addr ~size =
  let granule = (cfg : Heap_config.t).granule_bytes in
  let last = addr + size - 1 in
  let g0 = addr and gn = Addr.granule_start cfg (Addr.granule_of cfg last) in
  let a = ref g0 in
  while !a <= gn do
    set t cfg !a 0;
    a := !a + granule
  done

let mark_straddle t cfg ~addr ~size =
  let first_line, last_line = Addr.lines_covered cfg ~addr ~size in
  (* Trailing lines except the last: the conservative treatment of
     straddling objects already accounts for the final line (§3.1). *)
  for l = first_line + 1 to last_line - 1 do
    set t cfg (Addr.line_start cfg l) t.mask
  done

let line_is_free t cfg gline =
  let granule = (cfg : Heap_config.t).granule_bytes in
  let start = Addr.line_start cfg gline in
  let rec scan a =
    if a >= start + cfg.line_bytes then true
    else if get t cfg a <> 0 then false
    else scan (a + granule)
  in
  scan start

let block_is_free t cfg b =
  let lpb = Heap_config.lines_per_block cfg in
  let first = Addr.block_start cfg b / (cfg : Heap_config.t).line_bytes in
  let rec scan l = l >= first + lpb || (line_is_free t cfg l && scan (l + 1)) in
  scan first

let free_lines_in_block t cfg b =
  let lpb = Heap_config.lines_per_block cfg in
  let first = Addr.block_start cfg b / (cfg : Heap_config.t).line_bytes in
  let n = ref 0 in
  for l = first to first + lpb - 1 do
    if line_is_free t cfg l then incr n
  done;
  !n

let live_granules_in_block t cfg b =
  let granule = (cfg : Heap_config.t).granule_bytes in
  let start = Addr.block_start cfg b in
  let n = ref 0 in
  let a = ref start in
  while !a < start + cfg.block_bytes do
    if get t cfg !a <> 0 then incr n;
    a := !a + granule
  done;
  !n

let iter_nonzero t cfg f =
  let granules = Heap_config.total_granules cfg in
  let nbytes = Bytes.length t.data in
  for byte = 0 to nbytes - 1 do
    let v = Char.code (Bytes.get t.data byte) in
    if v <> 0 then
      for slot = 0 to t.per_byte - 1 do
        let count = (v lsr (slot * (cfg : Heap_config.t).rc_bits)) land t.mask in
        let granule = (byte * t.per_byte) + slot in
        if count <> 0 && granule < granules then f ~granule ~count
      done
  done
