(** Online policy controllers over the {!Repro_lxr.Lxr_config} knob
    table.

    Two algorithms tune the designated tunable-knob subset between RC
    epochs:

    - [hill]: coordinate-descent hill climbing with multiplicative
      steps — probe one knob per measurement window, keep the move if
      the objective improved, revert and switch coordinate (seeded
      exploration) if it regressed;
    - [pid]: a PID loop on the objective's error against a setpoint,
      driving a single aggressiveness scalar that scales every
      controlled trigger threshold from its default.

    Objectives: [cost] — the per-epoch collector-attributable time
    (pause wall + barrier CPU + allocation stalls + concurrent GC CPU)
    per wall ns, an online proxy of the distilled cost ({!Repro_distill});
    [burn] — an externally supplied SLO burn rate (fleet wiring).

    Every controller input is a simulated metric and all exploration
    randomness is a seeded SplitMix64 stream, so controlled runs stay
    bit-identical across [--gc-threads] and [--domains]. *)

type algo = Hill | Pid
type objective = Cost | Burn

type spec = {
  algo : algo;
  objective : objective;
  seed : int;
  window : int;  (** epochs per objective measurement *)
  step : float;  (** hill-climb multiplicative step, in (1, 8] *)
  kp : float;
  ki : float;
  kd : float;
  target : float;  (** PID setpoint *)
  knobs : Repro_lxr.Lxr_config.knob list;  (** the controlled subset *)
}

(** [default algo] — seed 42, window 3, the full tunable subset. *)
val default : algo -> spec

(** [parse "hill:seed=7,window=4,knobs=wastage_threshold+max_evac_targets"].
    Grammar: [ALGO[:key=value,...]] with ALGO in hill|pid and keys obj
    (cost|burn), seed, window, step, kp, ki, kd, target, knobs
    (['+']-separated knob names). Unknown algorithms, keys, objectives
    and knob names all carry did-you-mean hints. *)
val parse : string -> (spec, string) result

val to_string : spec -> string

(** Controller instances consume one sample per epoch via {!observe}. *)
type t

val create : spec -> t

(** [observe t ~epoch ~cost_ns ~span_ns ~burn cfg] feeds one epoch's
    measurements and returns the (possibly unchanged) configuration for
    the next epoch. Knob moves happen only at measurement-window
    boundaries (every [spec.window] epochs). *)
val observe :
  t ->
  epoch:int ->
  cost_ns:float ->
  span_ns:float ->
  burn:float ->
  Repro_lxr.Lxr_config.t ->
  Repro_lxr.Lxr_config.t

(** Every knob assignment the controller made, as
    [(epoch, knob_name, new_value)] in application order — the
    determinism tests compare these across [--gc-threads] values. *)
val trajectory : t -> (int * string * float) list

(** [lxr_factory spec] builds a collector factory whose LXR instances
    re-tune between epochs. Each instantiation creates a fresh
    controller from the same spec and seed (fleet setup is
    replica-parallel; sharing state would race), reported to [handle]
    for post-run trajectory inspection. [burn] supplies the [Burn]
    objective's sample (e.g. the fleet's {!Repro_service.Slo} monitor);
    it defaults to constantly [0.]. [config] transforms the scaled
    default into the starting configuration. *)
val lxr_factory :
  ?name:string ->
  ?burn:(unit -> float) ->
  ?config:(Repro_lxr.Lxr_config.t -> Repro_lxr.Lxr_config.t) ->
  ?handle:(t -> unit) ->
  spec ->
  Repro_engine.Collector.factory
