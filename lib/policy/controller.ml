(* Online controllers over the LXR knob table.

   Both controllers consume one objective sample per RC epoch — the
   epoch's collector-attributable cost (pause wall + barrier CPU +
   allocation stalls + concurrent GC CPU) normalised by the epoch's wall
   span, or a fleet SLO burn rate — and move knobs from
   Lxr_config.tunable_knobs between epochs. Every input is a simulated
   metric and all exploration randomness comes from a seeded SplitMix64
   stream, so a controlled run is bit-identical across --gc-threads and
   --domains by construction. *)

open Repro_util
module Config = Repro_lxr.Lxr_config
module Lxr = Repro_lxr.Lxr

type algo = Hill | Pid
type objective = Cost | Burn

let algo_name = function Hill -> "hill" | Pid -> "pid"
let objective_name = function Cost -> "cost" | Burn -> "burn"

type spec = {
  algo : algo;
  objective : objective;
  seed : int;
  window : int;  (* epochs per objective measurement *)
  step : float;  (* hill-climb multiplicative step *)
  kp : float;
  ki : float;
  kd : float;
  target : float;  (* PID setpoint for the objective *)
  knobs : Config.knob list;
}

let default algo =
  { algo;
    objective = Cost;
    seed = 42;
    window = 3;
    step = 1.5;
    kp = 0.4;
    ki = 0.05;
    kd = 0.1;
    target = 0.05;
    knobs = Config.tunable_knobs }

let to_string s =
  Printf.sprintf "%s(obj=%s seed=%d window=%d)" (algo_name s.algo)
    (objective_name s.objective) s.seed s.window

let spec_keys =
  [ "obj"; "seed"; "window"; "step"; "kp"; "ki"; "kd"; "target"; "knobs" ]

let parse_knobs s =
  let names = String.split_on_char '+' s in
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
      match Config.find_knob n with
      | Ok k -> resolve (k :: acc) rest
      | Error e -> Error (Printf.sprintf "--controller: %s" e))
  in
  match resolve [] (List.filter (fun n -> n <> "") names) with
  | Ok [] -> Error "--controller: knobs= needs at least one knob name"
  | r -> r

let parse s =
  let s = String.trim s in
  let head, args =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let algo =
    match String.lowercase_ascii head with
    | "hill" | "hill-climb" | "hillclimb" -> Ok Hill
    | "pid" -> Ok Pid
    | other ->
      Error
        (Printf.sprintf "unknown controller %S%s; known: hill, pid" other
           (Suggest.hint ~candidates:[ "hill"; "pid" ] other))
  in
  match algo with
  | Error e -> Error e
  | Ok algo ->
    let base = default algo in
    let apply acc kv =
      match acc with
      | Error e -> Error e
      | Ok spec -> (
        match String.index_opt kv '=' with
        | None ->
          Error
            (Printf.sprintf
               "--controller: bad argument %S; expected key=value" kv)
        | Some i -> (
          let key = String.lowercase_ascii (String.sub kv 0 i) in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          let int_v () =
            match int_of_string_opt v with
            | Some n -> Ok n
            | None ->
              Error (Printf.sprintf "--controller: %s=%s: expected an integer" key v)
          in
          let float_v () =
            match float_of_string_opt v with
            | Some f -> Ok f
            | None ->
              Error (Printf.sprintf "--controller: %s=%s: expected a number" key v)
          in
          match key with
          | "obj" -> (
            match String.lowercase_ascii v with
            | "cost" -> Ok { spec with objective = Cost }
            | "burn" -> Ok { spec with objective = Burn }
            | other ->
              Error
                (Printf.sprintf
                   "--controller: unknown objective %S%s; known: cost, burn"
                   other
                   (Suggest.hint ~candidates:[ "cost"; "burn" ] other)))
          | "seed" -> Result.map (fun n -> { spec with seed = n }) (int_v ())
          | "window" ->
            Result.bind (int_v ()) (fun n ->
                if n < 1 || n > 1000 then
                  Error "--controller: window must be in [1, 1000]"
                else Ok { spec with window = n })
          | "step" ->
            Result.bind (float_v ()) (fun f ->
                if f <= 1.0 || f > 8.0 then
                  Error "--controller: step must be in (1, 8]"
                else Ok { spec with step = f })
          | "kp" -> Result.map (fun f -> { spec with kp = f }) (float_v ())
          | "ki" -> Result.map (fun f -> { spec with ki = f }) (float_v ())
          | "kd" -> Result.map (fun f -> { spec with kd = f }) (float_v ())
          | "target" ->
            Result.bind (float_v ()) (fun f ->
                if f < 0.0 then Error "--controller: target must be >= 0"
                else Ok { spec with target = f })
          | "knobs" ->
            Result.map (fun ks -> { spec with knobs = ks }) (parse_knobs v)
          | other ->
            Error
              (Printf.sprintf "--controller: unknown key %S%s; known: %s" other
                 (Suggest.hint ~candidates:spec_keys other)
                 (String.concat ", " spec_keys))))
    in
    List.fold_left apply (Ok base)
      (String.split_on_char ',' args
      |> List.map String.trim
      |> List.filter (fun x -> x <> ""))

(* --- Controller state --------------------------------------------------- *)

type t = {
  spec : spec;
  prng : Prng.t;
  mutable w_cost : float;  (* accumulating measurement window *)
  mutable w_span : float;
  mutable w_burn : float;
  mutable w_epochs : int;
  mutable best : float;  (* best accepted objective (hill) *)
  mutable started : bool;
  mutable knob_idx : int;  (* hill: coordinate currently probed *)
  mutable up : bool;  (* hill: current direction *)
  mutable pending : (Config.knob * float) option;
      (* hill: move applied last window, with the pre-move value *)
  mutable integral : float;  (* pid *)
  mutable prev_error : float;
  mutable gain : float;  (* pid: threshold aggressiveness scalar *)
  mutable base : (Config.knob * float) list;  (* pid: values under control *)
  mutable trajectory : (int * string * float) list;  (* reversed *)
}

let create spec =
  { spec;
    prng = Prng.create spec.seed;
    w_cost = 0.0;
    w_span = 0.0;
    w_burn = 0.0;
    w_epochs = 0;
    best = Float.infinity;
    started = false;
    knob_idx = 0;
    up = true;
    pending = None;
    integral = 0.0;
    prev_error = 0.0;
    gain = 1.0;
    base = [];
    trajectory = [] }

let trajectory t = List.rev t.trajectory

let record t ~epoch (k : Config.knob) v =
  t.trajectory <- (epoch, k.Config.k_name, v) :: t.trajectory

let nudge_int (k : Config.knob) ~old ~proposed ~up =
  (* Multiplicative steps on small integer knobs can round back to the
     old value; force at least one unit of movement. *)
  match k.Config.k_kind with
  | Config.Int when Float.of_int (int_of_float proposed) = old ->
    if up then old +. 1.0 else old -. 1.0
  | _ -> proposed

let hill_move t ~epoch cfg =
  let knobs = Array.of_list t.spec.knobs in
  let k = knobs.(t.knob_idx mod Array.length knobs) in
  let old = k.Config.k_get cfg in
  let factor = if t.up then t.spec.step else 1.0 /. t.spec.step in
  let proposed = nudge_int k ~old ~proposed:(old *. factor) ~up:t.up in
  let cfg' = k.Config.k_set cfg proposed in
  let applied = k.Config.k_get cfg' in
  if applied = old then begin
    (* Clamped against the wall: flip direction for the next probe of
       this knob and move on. *)
    t.up <- not t.up;
    t.knob_idx <- t.knob_idx + 1;
    t.pending <- None;
    cfg
  end
  else begin
    t.pending <- Some (k, old);
    record t ~epoch k applied;
    cfg'
  end

let hill_window t ~epoch ~objective cfg =
  match t.pending with
  | None ->
    if not t.started then begin
      t.started <- true;
      t.best <- objective
    end
    else t.best <- Float.min t.best objective;
    hill_move t ~epoch cfg
  | Some (k, old) ->
    let cfg =
      if objective < t.best then begin
        (* Improved: keep the move and keep pushing the same knob in the
           same direction. *)
        t.best <- objective;
        cfg
      end
      else begin
        (* Regressed: revert, then move to another coordinate with a
           seeded direction for the next probe. *)
        let cfg = k.Config.k_set cfg old in
        record t ~epoch k old;
        t.up <- Prng.bool t.prng 0.5;
        t.knob_idx <- t.knob_idx + 1 + Prng.int t.prng 2;
        cfg
      end
    in
    hill_move t ~epoch cfg

let pid_window t ~epoch ~objective cfg =
  if not t.started then begin
    t.started <- true;
    t.base <- List.map (fun k -> (k, k.Config.k_get cfg)) t.spec.knobs
  end;
  let error = objective -. t.spec.target in
  t.integral <- Float.max (-10.0) (Float.min 10.0 (t.integral +. error));
  let derivative = error -. t.prev_error in
  t.prev_error <- error;
  let u =
    (t.spec.kp *. error) +. (t.spec.ki *. t.integral) +. (t.spec.kd *. derivative)
  in
  (* Objective above target means the collector is working too hard:
     raise the trigger thresholds (collect less eagerly); below target,
     tighten them back toward (and past) the defaults. *)
  let gain = t.gain *. Float.exp (Float.max (-0.5) (Float.min 0.5 u)) in
  let gain = Float.max 0.25 (Float.min 4.0 gain) in
  if gain <> t.gain then begin
    t.gain <- gain;
    List.fold_left
      (fun cfg (k, base) ->
        let cfg' = k.Config.k_set cfg (base *. gain) in
        let v = k.Config.k_get cfg' in
        if v <> k.Config.k_get cfg then record t ~epoch k v;
        cfg')
      cfg t.base
  end
  else cfg

let observe t ~epoch ~cost_ns ~span_ns ~burn cfg =
  t.w_cost <- t.w_cost +. Float.max 0.0 cost_ns;
  t.w_span <- t.w_span +. Float.max 0.0 span_ns;
  t.w_burn <- t.w_burn +. burn;
  t.w_epochs <- t.w_epochs + 1;
  if t.w_epochs < t.spec.window then cfg
  else begin
    let objective =
      match t.spec.objective with
      | Cost -> if t.w_span > 0.0 then t.w_cost /. t.w_span else 0.0
      | Burn -> t.w_burn /. Float.of_int t.w_epochs
    in
    t.w_cost <- 0.0;
    t.w_span <- 0.0;
    t.w_burn <- 0.0;
    t.w_epochs <- 0;
    match t.spec.algo with
    | Hill -> hill_window t ~epoch ~objective cfg
    | Pid -> pid_window t ~epoch ~objective cfg
  end

(* --- LXR glue ----------------------------------------------------------- *)

open Repro_engine

let lxr_tune ?(burn = fun () -> 0.0) ctl sim =
  let prev_now = ref Float.nan in
  let prev_gc = ref 0.0 in
  let prev_barrier = ref 0.0 in
  let prev_stall = ref 0.0 in
  fun (fb : Lxr.epoch_feedback) cfg ->
    let gc = Sim.gc_cpu sim in
    let barrier = Sim.barrier_cpu sim in
    let stall = Sim.alloc_stall_ns sim in
    let span =
      if Float.is_nan !prev_now then fb.Lxr.now_ns else fb.Lxr.now_ns -. !prev_now
    in
    (* Collector-attributable cost of the finished epoch. Deltas are
       clamped at zero: Sim.reset_measurement (end of warmup) can zero
       the accumulators mid-window. *)
    let d acc prev = Float.max 0.0 (acc -. !prev) in
    let conc_cpu = Float.max 0.0 (d gc prev_gc -. fb.Lxr.pause_cpu_ns) in
    let cost =
      fb.Lxr.pause_wall_ns +. d barrier prev_barrier +. d stall prev_stall
      +. conc_cpu
    in
    prev_now := fb.Lxr.now_ns;
    prev_gc := gc;
    prev_barrier := barrier;
    prev_stall := stall;
    observe ctl ~epoch:fb.Lxr.epoch ~cost_ns:cost ~span_ns:span ~burn:(burn ())
      cfg

(* Shared-controller variant for introspection: the caller keeps the
   handle to read the trajectory after the run. Each factory
   instantiation gets a fresh controller with the same spec and seed, so
   instantiation order (fleet setup is replica-parallel) cannot leak
   into the results; [handle] receives every controller created. *)
let lxr_factory ?name ?burn ?(config = Fun.id) ?(handle = fun _ -> ()) spec :
    Collector.factory =
  let name =
    Option.value name
      ~default:(Printf.sprintf "LXR+%s" (algo_name spec.algo))
  in
  Lxr.factory_tuned ~config ~name
    ~tune:(fun sim ->
      let ctl = create spec in
      handle ctl;
      lxr_tune ?burn ctl sim)
    ()
