(** "Did you mean" suggestions for CLI name lookups. *)

(** Levenshtein distance (case-sensitive). *)
val edit_distance : string -> string -> int

(** [closest ~candidates name] is the candidate with the smallest edit
    distance to [name] (case-insensitive), if any is close enough to be
    a plausible typo (distance at most [max 2 (len/3)]). *)
val closest : candidates:string list -> string -> string option

(** [hint ~candidates name] renders [closest] as [" (did you mean
    \"x\"?)"], or [""] when nothing is close. *)
val hint : candidates:string list -> string -> string
