(** Log-scale histogram for latency and pause-time distributions.

    Recording a value is O(1) and the structure is bounded, so the
    simulator can record every request latency and every GC pause without
    holding per-sample storage — the same role HdrHistogram plays in the
    paper's harness. Values are bucketed with ~1% relative precision. *)

type t

(** [create ()] is an empty histogram accepting values in
    [\[1, 2^62\]] (values below 1 are clamped to 1). *)
val create : unit -> t

(** [record t v] adds one sample of magnitude [v] (e.g. nanoseconds). *)
val record : t -> int -> unit

(** [record_n t v n] adds [n] samples of magnitude [v]. *)
val record_n : t -> int -> int -> unit

(** Number of recorded samples. *)
val count : t -> int

(** Sum of all recorded values (using bucket representative values). *)
val total : t -> int

(** [percentile t p] is the value at percentile [p] (0–100). Raises
    [Invalid_argument] if the histogram is empty or [p] out of range. *)
val percentile : t -> float -> int

(** Maximum recorded value (bucket representative); raises on empty. *)
val max_value : t -> int

(** Arithmetic mean of samples; raises on empty. *)
val mean : t -> float

(** Total variants of the raising accessors: [None] on an empty histogram
    (e.g. a zero-pause run) instead of [Invalid_argument].
    [percentile_opt] also returns [None] if [p] is outside [0, 100]. *)
val percentile_opt : t -> float -> int option

val max_value_opt : t -> int option
val mean_opt : t -> float option

(** [equal a b] — same samples, bucket for bucket. Because bucketing is
    deterministic per value, recording one sample stream into a single
    histogram and recording a partition of it into several histograms
    then {!merge}-ing them yield [equal] results; the fleet harness's
    determinism tests rely on this. *)
val equal : t -> t -> bool

(** [merge ~into src] adds all of [src]'s samples into [into]. *)
val merge : into:t -> t -> unit

(** [clear t] removes all samples. *)
val clear : t -> unit

(** [percentile_curve t points] evaluates percentiles at each requested
    point, for latency response curves (Figure 5). *)
val percentile_curve : t -> float list -> (float * int) list
