(** Growable arrays of immediate integers.

    The simulator's hot paths (decrement buffers, mark stacks, remembered
    sets, per-block object lists) append and drain millions of [int]
    entries; [Vec.t] provides an unboxed growable array for them. OCaml
    5.1's standard library has no [Dynarray] yet, hence this module. *)

type t

(** [create ?capacity ()] is an empty vector. *)
val create : ?capacity:int -> unit -> t

(** Number of elements currently stored. *)
val length : t -> int

val is_empty : t -> bool

(** [push v x] appends [x], growing the backing store as needed. *)
val push : t -> int -> unit

(** [pop v] removes and returns the last element. Raises [Invalid_argument]
    if empty. *)
val pop : t -> int

(** [get v i] / [set v i x] with bounds checking against [length]. *)
val get : t -> int -> int

val set : t -> int -> int -> unit

(** [clear v] resets the length to zero without shrinking storage. *)
val clear : t -> unit

(** [truncate v n] drops all elements past the first [n]. *)
val truncate : t -> int -> unit

(** [retain p v] keeps only the elements satisfying [p], in place and
    preserving order — the allocation-free filter the sweep uses to
    compact per-block resident lists. *)
val retain : (int -> bool) -> t -> unit

(** [iter f v] applies [f] to each element in insertion order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f init v] folds left over the elements. *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** [exists p v] is true if any element satisfies [p]. *)
val exists : (int -> bool) -> t -> bool

(** [to_list v] / [to_array v] copy the contents out. *)
val to_list : t -> int list

val to_array : t -> int array

(** [of_list xs] builds a vector from a list. *)
val of_list : int list -> t

(** [append dst src] pushes all of [src] onto [dst]. *)
val append : t -> t -> unit

(** [swap_remove v i] removes index [i] in O(1) by moving the last element
    into its place; returns the removed value. *)
val swap_remove : t -> int -> int

(** [sort cmp v] sorts in place. *)
val sort : (int -> int -> int) -> t -> unit
