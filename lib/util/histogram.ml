(* Buckets: for each power of two we keep [sub] linear sub-buckets, giving
   a relative error of 1/sub. 64 exponents x 64 sub-buckets = 4096 ints. *)

let sub_bits = 6
let sub = 1 lsl sub_bits

type t = { buckets : int array; mutable count : int; mutable total : int }

let create () = { buckets = Array.make (64 * sub) 0; count = 0; total = 0 }

let index_of v =
  let v = if v < 1 then 1 else v in
  let msb = 62 - Bits.clz63 v in
  if msb < sub_bits then v
  else begin
    let shift = msb - sub_bits in
    let mantissa = (v lsr shift) land (sub - 1) in
    ((msb - sub_bits + 1) * sub) + mantissa
  end

let value_of idx =
  if idx < sub then idx
  else begin
    let exp = (idx / sub) + sub_bits - 1 in
    let mantissa = idx land (sub - 1) in
    (1 lsl exp) lor (mantissa lsl (exp - sub_bits))
  end

let record_n t v n =
  let idx = index_of v in
  t.buckets.(idx) <- t.buckets.(idx) + n;
  t.count <- t.count + n;
  t.total <- t.total + (v * n)

let record t v = record_n t v 1
let count t = t.count
let total t = t.total

let percentile t p =
  if t.count = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: out of range";
  let target =
    let f = p /. 100.0 *. Float.of_int t.count in
    let c = int_of_float (Float.ceil f) in
    if c < 1 then 1 else if c > t.count then t.count else c
  in
  let rec scan idx acc =
    let acc = acc + t.buckets.(idx) in
    if acc >= target then value_of idx else scan (idx + 1) acc
  in
  scan 0 0

let max_value t =
  if t.count = 0 then invalid_arg "Histogram.max_value: empty";
  let rec scan idx =
    if t.buckets.(idx) > 0 then value_of idx else scan (idx - 1)
  in
  scan (Array.length t.buckets - 1)

let mean t =
  if t.count = 0 then invalid_arg "Histogram.mean: empty";
  Float.of_int t.total /. Float.of_int t.count

let percentile_opt t p =
  if t.count = 0 || p < 0.0 || p > 100.0 then None else Some (percentile t p)
let max_value_opt t = if t.count = 0 then None else Some (max_value t)
let mean_opt t = if t.count = 0 then None else Some (mean t)

let equal a b =
  a.count = b.count && a.total = b.total && a.buckets = b.buckets

let merge ~into src =
  Array.iteri
    (fun i n -> if n > 0 then into.buckets.(i) <- into.buckets.(i) + n)
    src.buckets;
  into.count <- into.count + src.count;
  into.total <- into.total + src.total

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.count <- 0;
  t.total <- 0

let percentile_curve t points = List.map (fun p -> (p, percentile t p)) points
