let log2 v =
  if v < 1 then invalid_arg "Bits.log2";
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let clz63 v =
  if v < 1 then invalid_arg "Bits.clz63";
  62 - log2 v

let is_power_of_two v = v >= 1 && v land (v - 1) = 0

let round_up v align =
  if not (is_power_of_two align) then invalid_arg "Bits.round_up: align";
  (v + align - 1) land lnot (align - 1)

(* SWAR popcount over the 63 usable bits of an [int]. The classic 64-bit
   constants are truncated by OCaml's tagging, which is harmless: the
   missing top bit can never be set in a non-negative [int]. *)
let popcount v =
  let v = v - ((v lsr 1) land 0x5555555555555555) in
  let v = (v land 0x3333333333333333) + ((v lsr 2) land 0x3333333333333333) in
  let v = (v + (v lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (v * 0x0101010101010101) lsr 56

let ctz v =
  if v = 0 then invalid_arg "Bits.ctz";
  (* Isolate the lowest set bit, then count the zeros below it. *)
  popcount ((v land -v) - 1)

let iter_set_bits v f =
  let w = ref v in
  while !w <> 0 do
    let bit = !w land - !w in
    f (popcount (bit - 1));
    w := !w lxor bit
  done
