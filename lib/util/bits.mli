(** Small bit-twiddling helpers shared by side-metadata tables. *)

(** [clz63 v] counts leading zeros of [v] viewed as a 63-bit value.
    [clz63 1 = 62]; requires [v >= 1]. *)
val clz63 : int -> int

(** [is_power_of_two v] for [v >= 1]. *)
val is_power_of_two : int -> bool

(** [log2 v] is the floor of log2 for [v >= 1]. *)
val log2 : int -> int

(** [round_up v align] rounds [v] up to a multiple of power-of-two
    [align]. *)
val round_up : int -> int -> int

(** [popcount v] is the number of set bits in [v], which must be
    non-negative (i.e. at most 63 significant bits). Branch-free SWAR. *)
val popcount : int -> int

(** [ctz v] is the index of the lowest set bit (find-first-set minus
    one); requires [v <> 0]. [ctz 1 = 0], [ctz 8 = 3]. *)
val ctz : int -> int

(** [iter_set_bits v f] calls [f] with the index of every set bit of
    [v], lowest first — the word-wide scan primitive the sweep and mark
    phases use to visit only occupied slots. *)
val iter_set_bits : int -> (int -> unit) -> unit
