type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  let capacity = if capacity < 1 then 1 else capacity in
  { data = Array.make capacity 0; len = 0 }

let length v = v.len
let is_empty v = v.len = 0

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (cap * 2) 0 in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

(* [len <= Array.length data] is the structural invariant, so indices
   that pass the explicit range checks can use unchecked array access —
   these sit on every collector work-packet inner loop. *)

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let check v i = if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let clear v = v.len <- 0

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate";
  v.len <- n

let retain p v =
  let w = ref 0 in
  for i = 0 to v.len - 1 do
    let x = v.data.(i) in
    if p x then begin
      v.data.(!w) <- x;
      incr w
    end
  done;
  v.len <- !w

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_list v = List.init v.len (fun i -> v.data.(i))
let to_array v = Array.sub v.data 0 v.len

let of_list xs =
  let v = create ~capacity:(List.length xs + 1) () in
  List.iter (push v) xs;
  v

let append dst src =
  let n = src.len in
  if n > 0 then begin
    while dst.len + n > Array.length dst.data do
      grow dst
    done;
    Array.blit src.data 0 dst.data dst.len n;
    dst.len <- dst.len + n
  end

let swap_remove v i =
  check v i;
  let x = v.data.(i) in
  v.len <- v.len - 1;
  v.data.(i) <- v.data.(v.len);
  x

let sort cmp v =
  let arr = to_array v in
  Array.sort cmp arr;
  Array.blit arr 0 v.data 0 v.len
