open Repro_util
open Repro_heap
open Repro_engine
module Par = Repro_par.Par

let null = Obj_model.null

(* Packetized breadth-first transitive mark. Each frontier entry's packet
   record is [id; k; referent x k] (k = -1 when the id is no longer
   registered); the packet body only reads the registry and object
   fields, while visiting ([on_visit]), marking and frontier pushes all
   happen in the ordered merge. Visit order is round-by-round rather
   than the old LIFO stack, but is identical for every lane count. *)
let mark_from heap tc ~pool ~cost ~threads ~seeds ~on_visit =
  let gray = Par.take_scratch () in
  let visited = ref 0 in
  let seed id =
    if id <> null && not (Mark_bitset.marked heap.Heap.marks id) then begin
      Mark_bitset.mark heap.Heap.marks id;
      Vec.push gray id
    end
  in
  seeds seed;
  let remaining = ref 0 in
  Par.drain_rounds pool ~packet:Par.queue_per_packet ~frontier:gray
    ~on_round:(fun total -> remaining := total)
    ~scan:(fun id out ->
      Vec.push out id;
      let obj = Obj_model.Registry.find_live heap.Heap.registry id in
      if obj.Obj_model.id = null then Vec.push out (-1)
      else begin
        let kpos = Vec.length out in
        Vec.push out 0;
        for j = 0 to Obj_model.nfields obj - 1 do
          let r = Obj_model.field obj j in
          if r <> null then Vec.push out r
        done;
        Vec.set out kpos (Vec.length out - kpos - 1)
      end)
    ~merge:(fun out next ->
      let i = ref 0 in
      while !i < Vec.length out do
        let id = Vec.get out !i and k = Vec.get out (!i + 1) in
        i := !i + 2;
        Trace_cost.add tc ~threads ~frontier:!remaining
          ~cost_ns:cost.Cost_model.trace_obj_ns;
        decr remaining;
        if k >= 0 then begin
          let obj = Obj_model.Registry.find_live heap.Heap.registry id in
          if obj.Obj_model.id <> null then begin
            incr visited;
            on_visit obj
          end;
          for j = 0 to k - 1 do
            let r = Vec.get out (!i + j) in
            if not (Mark_bitset.marked heap.Heap.marks r) then begin
              Mark_bitset.mark heap.Heap.marks r;
              Vec.push next r
            end
          done;
          i := !i + k
        end
      done);
  Par.recycle_scratch gray;
  !visited

let sweep_unmarked heap tc ~pool ~cost ~threads =
  let freed = ref 0 in
  (* Registry slot packets list the unmarked dead (read-only); frees are
     applied in slot order by the merge. *)
  Par.map_spans pool
    ~total:(Obj_model.Registry.slot_count heap.Heap.registry)
    ~packet:Par.slots_per_packet
    ~f:(fun _ ~lo ~len ->
      let out = Par.take_scratch () in
      for s = lo to lo + len - 1 do
        let obj = Obj_model.Registry.handle_at_live heap.Heap.registry s in
        if
          obj.Obj_model.id <> null
          && not (Mark_bitset.marked heap.Heap.marks obj.Obj_model.id)
        then Vec.push out obj.Obj_model.id
      done;
      out)
    ~merge:(fun _ out ->
      Vec.iter
        (fun id ->
          let obj = Obj_model.Registry.find_live heap.Heap.registry id in
          if obj.Obj_model.id <> null then begin
            freed := !freed + obj.Obj_model.size;
            Heap.free_object heap obj
          end)
        out;
      Par.recycle_scratch out);
  (* Block packets compact their own resident list (cross-block
     independent: residency and registry membership of one block's
     objects are unaffected by other blocks) and classify from the
     now-final RC metadata; state flips land in the ordered merge. *)
  let cfg = heap.Heap.cfg in
  Par.map_spans pool ~total:(Heap_config.blocks cfg)
    ~packet:Par.blocks_per_packet
    ~f:(fun _ ~lo ~len ->
      let out = Par.take_scratch () in
      let live id = Obj_model.Registry.mem heap.Heap.registry id in
      for b = lo to lo + len - 1 do
        match Blocks.state heap.Heap.blocks b with
        | Blocks.In_use | Blocks.Recyclable | Blocks.Owned ->
          Blocks.compact heap.Heap.blocks b ~live;
          let cls =
            if Rc_table.block_is_free heap.Heap.rc cfg b then 0
            else if Rc_table.free_lines_in_block heap.Heap.rc cfg b > 0 then 1
            else 2
          in
          Vec.push out b;
          Vec.push out cls
        | Blocks.Free | Blocks.Los_backing -> ()
      done;
      out)
    ~merge:(fun _ out ->
      let i = ref 0 in
      while !i < Vec.length out do
        let b = Vec.get out !i and cls = Vec.get out (!i + 1) in
        i := !i + 2;
        Trace_cost.add_parallel tc ~threads
          ~cost_ns:cost.Cost_model.sweep_block_ns;
        Blocks.set_young heap.Heap.blocks b false;
        Blocks.set_state heap.Heap.blocks b
          (match cls with
          | 0 -> Blocks.Free
          | 1 -> Blocks.Recyclable
          | _ -> Blocks.In_use)
      done;
      Par.recycle_scratch out);
  Heap.rebuild_free_lists heap;
  !freed

let select_fragmented heap ~pool ~max_blocks ~occupancy_max =
  let cfg = heap.Heap.cfg in
  let candidates = ref [] in
  (* Packet bodies compute exact per-block liveness (read-only); the
     merge push-fronts in ascending block order, reproducing the serial
     descending candidate list bit-for-bit. *)
  Par.map_spans pool ~total:(Heap_config.blocks cfg)
    ~packet:Par.blocks_per_packet
    ~f:(fun _ ~lo ~len ->
      let out = ref [] in
      for b = lo to lo + len - 1 do
        match Blocks.state heap.Heap.blocks b with
        | Blocks.In_use | Blocks.Recyclable ->
          let live = Heap.live_bytes_in_block heap b in
          if live > 0
             && Float.of_int live < occupancy_max *. Float.of_int cfg.block_bytes
          then out := (b, live) :: !out
        | Blocks.Free | Blocks.Owned | Blocks.Los_backing -> ()
      done;
      List.rev !out)
    ~merge:(fun _ pairs ->
      List.iter (fun c -> candidates := c :: !candidates) pairs);
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) !candidates in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | (b, _) :: rest -> b :: take (n - 1) rest
  in
  let targets = take max_blocks sorted in
  List.iter (fun b -> Blocks.set_target heap.Heap.blocks b true) targets;
  targets

let clear_targets heap targets =
  List.iter (fun b -> Blocks.set_target heap.Heap.blocks b false) targets

let compact heap tc ~cost ~threads ~gc_alloc =
  Compaction.compact heap tc ~cost ~threads ~gc_alloc

let pause_of sim tc =
  let c = Sim.cost sim in
  Sim.pause sim
    ~wall_ns:(c.pause_base_ns +. Trace_cost.critical_ns tc)
    ~cpu_ns:(c.pause_base_ns +. Trace_cost.cpu_ns tc)
