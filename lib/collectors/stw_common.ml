open Repro_util
open Repro_heap
open Repro_engine

let null = Obj_model.null

let mark_from heap tc ~cost ~threads ~seeds ~on_visit =
  let gray = Vec.create ~capacity:256 () in
  let visited = ref 0 in
  let push id =
    if id <> null && not (Mark_bitset.marked heap.Heap.marks id) then begin
      Mark_bitset.mark heap.Heap.marks id;
      Vec.push gray id
    end
  in
  List.iter push seeds;
  while not (Vec.is_empty gray) do
    let frontier = Vec.length gray in
    let id = Vec.pop gray in
    Trace_cost.add tc ~threads ~frontier ~cost_ns:cost.Cost_model.trace_obj_ns;
    match Obj_model.Registry.find heap.Heap.registry id with
    | None -> ()
    | Some obj ->
      incr visited;
      on_visit obj;
      Obj_model.iter_fields push obj
  done;
  !visited

let sweep_unmarked heap tc ~cost ~threads =
  let dead = ref [] in
  let freed = ref 0 in
  Obj_model.Registry.iter
    (fun obj ->
      if not (Mark_bitset.marked heap.Heap.marks obj.id) then dead := obj :: !dead)
    heap.Heap.registry;
  List.iter
    (fun (obj : Obj_model.t) ->
      freed := !freed + obj.size;
      Heap.free_object heap obj)
    !dead;
  let cfg = heap.Heap.cfg in
  for b = 0 to Heap_config.blocks cfg - 1 do
    match Blocks.state heap.Heap.blocks b with
    | Blocks.In_use | Blocks.Recyclable | Blocks.Owned ->
      Trace_cost.add_parallel tc ~threads ~cost_ns:cost.Cost_model.sweep_block_ns;
      Blocks.compact heap.Heap.blocks b ~live:(fun id ->
          Obj_model.Registry.mem heap.Heap.registry id);
      Blocks.set_young heap.Heap.blocks b false;
      if Rc_table.block_is_free heap.Heap.rc cfg b then
        Blocks.set_state heap.Heap.blocks b Blocks.Free
      else if Rc_table.free_lines_in_block heap.Heap.rc cfg b > 0 then
        Blocks.set_state heap.Heap.blocks b Blocks.Recyclable
      else Blocks.set_state heap.Heap.blocks b Blocks.In_use
    | Blocks.Free | Blocks.Los_backing -> ()
  done;
  Heap.rebuild_free_lists heap;
  !freed

let select_fragmented heap ~max_blocks ~occupancy_max =
  let cfg = heap.Heap.cfg in
  let candidates = ref [] in
  for b = 0 to Heap_config.blocks cfg - 1 do
    match Blocks.state heap.Heap.blocks b with
    | Blocks.In_use | Blocks.Recyclable ->
      let live = Heap.live_bytes_in_block heap b in
      if live > 0 && Float.of_int live < occupancy_max *. Float.of_int cfg.block_bytes
      then candidates := (b, live) :: !candidates
    | Blocks.Free | Blocks.Owned | Blocks.Los_backing -> ()
  done;
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) !candidates in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | (b, _) :: rest -> b :: take (n - 1) rest
  in
  let targets = take max_blocks sorted in
  List.iter (fun b -> Blocks.set_target heap.Heap.blocks b true) targets;
  targets

let clear_targets heap targets =
  List.iter (fun b -> Blocks.set_target heap.Heap.blocks b false) targets

let compact heap tc ~cost ~threads ~gc_alloc =
  Compaction.compact heap tc ~cost ~threads ~gc_alloc

let pause_of sim tc =
  let c = Sim.cost sim in
  Sim.pause sim
    ~wall_ns:(c.pause_base_ns +. Trace_cost.critical_ns tc)
    ~cpu_ns:(c.pause_base_ns +. Trace_cost.cpu_ns tc)
