let all =
  [ ("serial", Mark_sweep.serial);
    ("parallel", Mark_sweep.parallel);
    ("immix", Mark_sweep.immix);
    ("semispace", Semispace.factory);
    ("g1", G1.factory);
    ("shenandoah", Conc_mark_evac.shenandoah);
    ("zgc", Conc_mark_evac.zgc);
    ("journal_rc", Journal_rc.factory) ]

(* The free-reclamation baseline is looked up like any collector but is
   not part of [all]: evaluation matrices iterate [all], and comparing
   the methodology's baseline against itself is meaningless. *)
let baseline = ("ideal", Repro_distill.Ideal.factory)

let registered = all @ [ baseline ]

let names = List.map fst registered

let lockstep_ok name = String.lowercase_ascii name <> fst baseline

let find_opt name = List.assoc_opt (String.lowercase_ascii name) registered

let find name =
  match find_opt name with Some f -> f | None -> raise Not_found

(* The one lookup every front end funnels through, so unknown-name
   errors (and their "did you mean" hints) read identically in
   [lxr_sim], [lxr_trace] and [lxr_fleet]. [extra] prepends a front
   end's additional factories (e.g. the LXR variants). *)
let lookup ?(extra = []) name =
  let table = extra @ registered in
  match List.assoc_opt (String.lowercase_ascii name) table with
  | Some f -> Ok f
  | None ->
    let candidates = List.map fst table in
    Error
      (Printf.sprintf "unknown collector %S%s; known: %s" name
         (Repro_util.Suggest.hint ~candidates name)
         (String.concat ", " candidates))
