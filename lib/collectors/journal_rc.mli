(** Journal-RC: a pause-free mutator lane over snapshot journals and an
    absolute reference-count map (after mo-gc's journal model).

    Every reference store appends a [(src, field, old, new)] quad to a
    per-mutator journal; full chunks publish to a FIFO the concurrent
    drain folds into the shared RC table — increments immediately,
    decrements deferred past the next root snapshot, so a reachable
    object's count never drops below one. A short snapshot pause per
    epoch catches up the journal on work packets, re-snapshots the
    roots, and sweeps the young region with cascading decrements (the
    divergence from LXR that keeps the counts exact forever). Cyclic
    garbage falls to a periodic in-pause parallel mark/sweep backstop.
    Per-arena sequential-store buffers re-sweep blocks whose
    classification went stale under concurrent decrement frees. *)

type config = {
  chunk_records : int;  (** records per journal chunk before publication *)
  arena_count : int;  (** fixed block-index partitions of the heap *)
  trace_backstop_pauses : int;  (** force a mature trace every N pauses *)
  epoch_alloc_cap_bytes : int;
  free_low_watermark_blocks : int;
  journal_trigger_records : int;  (** pause when the backlog exceeds this *)
}

val scaled_default : heap_bytes:int -> block_bytes:int -> config

val factory : Repro_engine.Collector.factory

(** [factory_with ~name ~config ()] builds a variant factory; [config]
    maps the scaled default to the variant's configuration. *)
val factory_with :
  name:string ->
  config:(config -> config) ->
  unit ->
  Repro_engine.Collector.factory
