open Repro_util
open Repro_heap
open Repro_engine
module Par = Repro_par.Par

let null = Obj_model.null

(* A Journal-RC collector in the mo-gc mold: the mutator never pauses for
   bookkeeping beyond publishing journal chunks. Every reference store is
   appended to a per-mutator journal as a (src, field, old, new) quad; a
   concurrent drain folds published chunks into the shared RC table as an
   absolute reference-count map (increments applied immediately,
   decrements deferred to the epoch boundary), and a short snapshot pause
   per epoch catches up the journal, re-snapshots the roots and sweeps
   the young allocation region. Cycles fall to a periodic in-pause
   backstop trace of the mature space.

   Soundness of the deferral discipline: a decrement journaled in epoch
   [k] becomes applicable only after pause [k] has (1) applied every
   journaled increment and (2) incremented the current root referents.
   Any object reachable at that point holds at least one direct
   reference whose increment has been applied, so its count is >= 1 and
   an applicable decrement can never free a reachable object. Records
   carry explicit referent ids (not field re-reads), so applying every
   record exactly once telescopes to the true absolute counts even when
   a field is written many times per epoch or its source dies first;
   frees cascade decrements for the dead object's current fields, which
   keeps [counts_exact] true forever — stronger than LXR, whose SATB
   reclamation abandons exactness at the first completed trace. *)

type config = {
  chunk_records : int;  (** records per journal chunk before publication *)
  arena_count : int;  (** fixed block-index partitions of the heap *)
  trace_backstop_pauses : int;  (** force a mature trace every N pauses *)
  epoch_alloc_cap_bytes : int;
  free_low_watermark_blocks : int;
  journal_trigger_records : int;  (** pause when the backlog exceeds this *)
}

let scaled_default ~heap_bytes ~block_bytes =
  let blocks = heap_bytes / block_bytes in
  { chunk_records = 256;
    arena_count = 8;
    trace_backstop_pauses = 8;
    epoch_alloc_cap_bytes = max (4 * block_bytes) (heap_bytes / 4);
    free_low_watermark_blocks = max 2 (blocks / 24);
    journal_trigger_records = 32_768 }

type stats = {
  mutable pauses : int;
  mutable trace_pauses : int;
  mutable wb_fast : int;
  mutable wb_slow : int;  (** chunk publications (the barrier slow path) *)
  mutable journal_records : int;
  mutable journal_chunks : int;
  mutable conc_records : int;  (** records folded by the concurrent drain *)
  mutable pause_records : int;  (** records caught up inside pauses *)
  mutable increments : int;
  mutable decrements : int;
  mutable young_reclaimed : int;
  mutable rc_reclaimed : int;  (** bytes freed by decrement cascades *)
  mutable trace_reclaimed : int;
  mutable unfinished_drain_pauses : int;
  mutable remset_entries : int;
  mutable arena_sweeps : int;
  mutable backlog_peak : int;
}

let stats_create () =
  { pauses = 0;
    trace_pauses = 0;
    wb_fast = 0;
    wb_slow = 0;
    journal_records = 0;
    journal_chunks = 0;
    conc_records = 0;
    pause_records = 0;
    increments = 0;
    decrements = 0;
    young_reclaimed = 0;
    rc_reclaimed = 0;
    trace_reclaimed = 0;
    unfinished_drain_pauses = 0;
    remset_entries = 0;
    arena_sweeps = 0;
    backlog_peak = 0 }

let stats_alist s =
  [ ("pauses", Float.of_int s.pauses);
    ("trace_pauses", Float.of_int s.trace_pauses);
    ("wb_fast", Float.of_int s.wb_fast);
    ("wb_slow", Float.of_int s.wb_slow);
    ("journal_records", Float.of_int s.journal_records);
    ("journal_chunks", Float.of_int s.journal_chunks);
    ("conc_records", Float.of_int s.conc_records);
    ("pause_records", Float.of_int s.pause_records);
    ("increments", Float.of_int s.increments);
    ("decrements", Float.of_int s.decrements);
    ("young_reclaimed", Float.of_int s.young_reclaimed);
    ("rc_reclaimed", Float.of_int s.rc_reclaimed);
    ("trace_reclaimed", Float.of_int s.trace_reclaimed);
    ("unfinished_drain_pauses", Float.of_int s.unfinished_drain_pauses);
    ("remset_entries", Float.of_int s.remset_entries);
    ("arena_sweeps", Float.of_int s.arena_sweeps);
    ("backlog_peak", Float.of_int s.backlog_peak) ]

(* Per-arena drain state: a sequential-store buffer of blocks whose
   classification went stale under decrement frees, a phase tag, and an
   epoch-scoped remembered set of cross-arena references discovered by
   the journal fold (diagnostic: the collector is non-moving, so the
   remsets guide nothing, but they are verifier-checked like LXR's). *)
type arena_phase = Idle | Dirty | Sweeping

type arena = {
  mutable phase : arena_phase;
  ssb : Vec.t;  (* block ids awaiting a guarded re-sweep *)
  ssb_set : Bytes.t;  (* block-indexed membership byte for [ssb] *)
  remset : Vec.t;  (* (src id, field) pairs, packed flat *)
}

type t = {
  sim : Sim.t;
  heap : Heap.t;
  roots : int array;
  cfg : config;
  stats : stats;
  (* The mutator journal: an open chunk of (src, field, old, new) quads
     plus the flat FIFO of published records awaiting the concurrent
     fold. Publication appends the open chunk onto [published_v];
     [drain_pos] is the element index of the first unfolded quad, so the
     drain consumes chunk-sized spans in publication order without ever
     allocating per-chunk vectors. *)
  open_chunk : Vec.t;
  published_v : Vec.t;
  mutable drain_pos : int;
  mutable published_records : int;
  (* Decrement queues: [dec_deferred] holds this epoch's journaled
     decrements (unsafe until the next root snapshot); [dec_applicable]
     holds balanced decrements any drain may apply. *)
  dec_deferred : Vec.t;
  dec_applicable : Vec.t;
  prev_roots : Vec.t;  (* root referents incremented at the last pause *)
  arenas : arena array;
  arena_blocks : int;
  los_young : Vec.t;
  mutable alloc_bytes_epoch : int;
  mutable pauses_since_trace : int;
  gc_alloc : Bump_allocator.t;
  mutable in_pause : bool;
}

let pool t = Sim.pool t.sim

let arena_of t block = min (t.cfg.arena_count - 1) (block / t.arena_blocks)

let open_records t = Vec.length t.open_chunk / 4

let journal_backlog t = open_records t + t.published_records

let conc_backlog t =
  let ssb = Array.fold_left (fun a ar -> a + Vec.length ar.ssb) 0 t.arenas in
  journal_backlog t + Vec.length t.dec_applicable + ssb

let note_backlog t =
  let b = conc_backlog t + Vec.length t.dec_deferred in
  if b > t.stats.backlog_peak then t.stats.backlog_peak <- b

(* --- Decrements -------------------------------------------------------- *)

let note_dec_sweep t (obj : Obj_model.t) =
  if not (Heap.is_los t.heap obj) then begin
    let b = Addr.block_of t.heap.cfg (Obj_model.addr obj) in
    let ar = t.arenas.(arena_of t b) in
    if Bytes.unsafe_get ar.ssb_set b = '\000' then begin
      Bytes.unsafe_set ar.ssb_set b '\001';
      Vec.push ar.ssb b;
      if ar.phase = Idle then ar.phase <- Dirty
    end
  end

(* Apply one decrement; cascades for a dying object's current fields are
   pushed onto [queue]. Decrements whose target is already freed (the
   referent died first — young sweep, trace, or an earlier cascade) are
   skipped: their balancing increments died with the object's header. *)
let apply_dec t queue id =
  let faults = Sim.faults t.sim in
  if Fault.active faults && faults.skip_decrement () then ()
  else begin
    let obj = Obj_model.Registry.find_live t.heap.registry id in
    if obj.Obj_model.id <> null then begin
      t.stats.decrements <- t.stats.decrements + 1;
      match Heap.rc_dec t.heap obj with
      | `Became 0 ->
        for j = 0 to Obj_model.nfields obj - 1 do
          let r = Obj_model.field obj j in
          if r <> null then Vec.push queue r
        done;
        note_dec_sweep t obj;
        t.stats.rc_reclaimed <- t.stats.rc_reclaimed + obj.size;
        Heap.free_object t.heap obj
      | `Became _ | `Stuck | `Underflow -> ()
    end
  end

(* Reserve blocks are [In_use] with all-zero counts; a stale buffer
   entry must never dissolve one back into circulation. *)
let in_reserve t b = Vec.exists (fun x -> x = b) t.heap.reserve

let sweep_stale_block t b =
  if Blocks.state t.heap.blocks b = Blocks.In_use
     && (not (Heap.block_touched t.heap b))
     && not (in_reserve t b) then
    ignore (Heap.rc_sweep_block t.heap b)

(* --- Journal fold ------------------------------------------------------ *)

let note_remset t ~(src : Obj_model.t) ~field ~(referent : Obj_model.t) =
  let sb = Addr.block_of t.heap.cfg (Obj_model.addr src) in
  let rb = Addr.block_of t.heap.cfg (Obj_model.addr referent) in
  let sa = arena_of t sb and ra = arena_of t rb in
  if sa <> ra then begin
    let faults = Sim.faults t.sim in
    let field =
      (* Injected corruption: a nonsense field index the drain must
         tolerate and the verifier must flag. *)
      if Fault.active faults && faults.corrupt_remset () then field + 10_000
      else field
    in
    let ar = t.arenas.(ra) in
    Vec.push ar.remset src.id;
    Vec.push ar.remset field;
    t.stats.remset_entries <- t.stats.remset_entries + 1
  end

(* Fold one journal record into the absolute-RC map: the increment for
   the written referent applies immediately; the decrement for the
   overwritten referent is deferred to the next root snapshot. Records
   apply even when their source object has since died — the explicit
   referent ids make record application order-free (each field's history
   telescopes), and the source's free cascaded decrements for its
   *current* fields only. *)
let fold_record t ~src ~field ~old_r ~new_r =
  (if new_r <> null then begin
     let referent = Obj_model.Registry.find_live t.heap.registry new_r in
     if referent.Obj_model.id <> null then begin
       t.stats.increments <- t.stats.increments + 1;
       (match Heap.rc_inc t.heap referent with
       | `Became _ | `Stuck -> ());
       let src_obj = Obj_model.Registry.find_live t.heap.registry src in
       if src_obj.Obj_model.id <> null then
         note_remset t ~src:src_obj ~field ~referent
     end
   end);
  if old_r <> null then Vec.push t.dec_deferred old_r;
  let src_obj = Obj_model.Registry.find_live t.heap.registry src in
  if src_obj.Obj_model.id <> null then begin
    let b = Addr.block_of t.heap.cfg (Obj_model.addr src_obj) in
    let ar = t.arenas.(arena_of t b) in
    if ar.phase = Idle then ar.phase <- Dirty
  end

(* --- The write barrier ------------------------------------------------- *)

(* Runs before the store, so the overwritten referent is still in the
   field. The fast path appends one quad to the open chunk; the slow
   path (chunk full) publishes it to the drain FIFO. *)
let on_write t (src : Obj_model.t) field new_ref =
  t.stats.wb_fast <- t.stats.wb_fast + 1;
  let old_r = Obj_model.field src field in
  if old_r <> new_ref then begin
    Vec.push t.open_chunk src.id;
    Vec.push t.open_chunk field;
    Vec.push t.open_chunk old_r;
    Vec.push t.open_chunk new_ref;
    t.stats.journal_records <- t.stats.journal_records + 1;
    if Vec.length t.open_chunk >= 4 * t.cfg.chunk_records then begin
      let c = Sim.cost t.sim in
      Sim.charge_mutator t.sim c.wb_slow_ns;
      Sim.note_barrier t.sim c.wb_slow_ns;
      t.stats.wb_slow <- t.stats.wb_slow + 1;
      t.stats.journal_chunks <- t.stats.journal_chunks + 1;
      t.published_records <- t.published_records + (Vec.length t.open_chunk / 4);
      Vec.append t.published_v t.open_chunk;
      Vec.clear t.open_chunk
    end
  end

(* --- Young sweep ------------------------------------------------------- *)

(* Sweep the blocks allocated into this epoch, freeing count-zero
   residents. Unlike LXR — whose young objects carry no increments until
   promotion — every reference out of a dead young object was journaled
   and applied, so the sweep must cascade decrements for the dead
   objects' current fields (collected in the ordered merge, applied
   serially after the packets so dead-ness stays cross-block
   independent). *)
let young_sweep t tc =
  let c = Sim.cost t.sim in
  let cascade = Par.take_scratch () in
  let push_cascade r = if r <> null then Vec.push cascade r in
  let touched = Array.of_list (Heap.touched_blocks t.heap) in
  Par.map_spans (pool t) ~total:(Array.length touched)
    ~packet:Par.blocks_per_packet
    ~f:(fun _ ~lo ~len ->
      let out = Par.take_scratch () in
      for k = lo to lo + len - 1 do
        let b = touched.(k) in
        (* A ladder rung's [ensure_reserve] can adopt a block that was
           allocated into (touched) earlier in the same epoch; reserve
           blocks are In_use-empty and must not be reclassified here. *)
        if Blocks.state t.heap.blocks b = Blocks.In_use && not (in_reserve t b)
        then begin
          Vec.push out b;
          let npos = Vec.length out in
          Vec.push out 0;
          Heap.sweep_scan_block t.heap b out;
          Vec.set out npos (Vec.length out - npos - 1)
        end
      done;
      out)
    ~merge:(fun _ out ->
      let i = ref 0 in
      while !i < Vec.length out do
        let b = Vec.get out !i and n = Vec.get out (!i + 1) in
        let off = !i + 2 in
        i := off + n;
        Trace_cost.add_parallel tc ~threads:c.gc_threads ~cost_ns:c.sweep_block_ns;
        for k = off to off + n - 1 do
          let obj =
            Obj_model.Registry.find_live t.heap.registry (Vec.get out k)
          in
          if obj.Obj_model.id <> null then
            Obj_model.iter_fields push_cascade obj
        done;
        let _, freed = Heap.rc_sweep_apply t.heap b ~dead:out ~off ~len:n in
        t.stats.young_reclaimed <- t.stats.young_reclaimed + freed
      done;
      Par.recycle_scratch out);
  (* Dead young large objects: never incremented, reclaimed wholesale —
     with the same cascade for their journaled out-references. *)
  Vec.iter
    (fun id ->
      let obj = Obj_model.Registry.find_live t.heap.registry id in
      if obj.Obj_model.id <> null && Heap.rc_of t.heap obj = 0 then begin
        Obj_model.iter_fields push_cascade obj;
        t.stats.young_reclaimed <- t.stats.young_reclaimed + obj.size;
        Heap.free_object t.heap obj
      end)
    t.los_young;
  Vec.clear t.los_young;
  while not (Vec.is_empty cascade) do
    let frontier = Vec.length cascade in
    Trace_cost.add tc ~threads:c.gc_threads ~frontier ~cost_ns:c.dec_ns;
    apply_dec t cascade (Vec.pop cascade)
  done;
  Par.recycle_scratch cascade;
  Heap.clear_touched t.heap

(* --- Mature trace (the cycle backstop) --------------------------------- *)

(* An in-pause mark/sweep of the whole heap on work packets. Before the
   sweep frees the unmarked, a registry pre-scan queues decrements for
   every unmarked object's fields, so surviving referents' counts stay
   exact — decrements whose targets the sweep also frees skip at
   application time. *)
let mature_trace t tc root_ids =
  let c = Sim.cost t.sim in
  t.stats.trace_pauses <- t.stats.trace_pauses + 1;
  let marked =
    Stw_common.mark_from t.heap tc ~pool:(pool t) ~cost:c ~threads:c.gc_threads
      ~seeds:(fun f -> Vec.iter f root_ids) ~on_visit:(fun _ -> ())
  in
  ignore marked;
  let reg = t.heap.registry in
  Par.map_spans (pool t) ~total:(Obj_model.Registry.slot_count reg)
    ~packet:Par.slots_per_packet
    ~f:(fun _ ~lo ~len ->
      let out = Par.take_scratch () in
      let push r = if r <> null then Vec.push out r in
      for slot = lo to lo + len - 1 do
        let obj = Obj_model.Registry.handle_at_live reg slot in
        if obj.Obj_model.id <> null && not (Mark_bitset.marked t.heap.marks obj.id)
        then Obj_model.iter_fields push obj
      done;
      out)
    ~merge:(fun _ out ->
      Vec.append t.dec_applicable out;
      Par.recycle_scratch out);
  let freed =
    Stw_common.sweep_unmarked t.heap tc ~pool:(pool t) ~cost:c
      ~threads:c.gc_threads
  in
  t.stats.trace_reclaimed <- t.stats.trace_reclaimed + freed;
  Mark_bitset.clear t.heap.marks;
  Heap.clear_touched t.heap;
  Vec.clear t.los_young;
  (* The sweep's free-list rebuild dissolves empty reserve blocks back
     into circulation; restock before the mutator can claim them. It
     also reclassified every block, so the pending stale-block buffers
     are superseded — and would otherwise carry block ids the restocked
     reserve may now own. *)
  Heap.ensure_reserve t.heap;
  Array.iter
    (fun ar ->
      Vec.clear ar.ssb;
      Bytes.fill ar.ssb_set 0 (Bytes.length ar.ssb_set) '\000';
      if ar.phase = Sweeping || ar.phase = Dirty then ar.phase <- Idle)
    t.arenas;
  t.pauses_since_trace <- 0

(* --- The snapshot pause ------------------------------------------------ *)

(* Flatten = append the open chunk onto the published FIFO and hand back
   the (vector, first-unfolded-quad) pair — no copy of already-published
   records. The caller resets the vector once every record is folded. *)
let flatten_journal t =
  t.published_records <- 0;
  Vec.append t.published_v t.open_chunk;
  Vec.clear t.open_chunk;
  (t.published_v, t.drain_pos)

(* Journal catchup as RC work packets: the packet body is a read-only
   pass over a chunk of the flat record array; increments, deferral and
   remset notes all happen in the ordered merge, so the fold order — and
   the counts — are identical for every lane count. *)
let catchup_journal t tc (records, start) =
  let c = Sim.cost t.sim in
  let nrecords = (Vec.length records - start) / 4 in
  t.stats.pause_records <- t.stats.pause_records + nrecords;
  let remaining = ref nrecords in
  (* The packet body is a no-op: records are read-only during the phase,
     so the ordered merge folds each span straight out of the flat
     journal — same fold order as the old per-packet copies, none of the
     allocation. *)
  Par.map_spans (pool t) ~total:nrecords ~packet:Par.queue_per_packet
    ~f:(fun _ ~lo:_ ~len:_ -> ())
    ~merge:(fun i () ->
      let lo, len = Par.span ~total:nrecords ~packet:Par.queue_per_packet i in
      for k = lo to lo + len - 1 do
        let q = start + (4 * k) in
        let src = Vec.get records q
        and field = Vec.get records (q + 1)
        and old_r = Vec.get records (q + 2)
        and new_r = Vec.get records (q + 3) in
        Trace_cost.add tc ~threads:c.gc_threads ~frontier:!remaining
          ~cost_ns:c.inc_ns;
        decr remaining;
        fold_record t ~src ~field ~old_r ~new_r
      done);
  Vec.clear t.published_v;
  t.drain_pos <- 0

let should_trace t =
  t.pauses_since_trace >= t.cfg.trace_backstop_pauses
  || Free_lists.free_count t.heap.free + Free_lists.recyclable_count t.heap.free
     < t.cfg.free_low_watermark_blocks

let journal_pause t ~force_trace =
  if not t.in_pause then begin
    t.in_pause <- true;
    let c = Sim.cost t.sim in
    let tc = Trace_cost.create () in
    t.stats.pauses <- t.stats.pauses + 1;
    Heap.retire_all_allocators t.heap;
    (* Applicable decrements the concurrent drain did not finish. *)
    if not (Vec.is_empty t.dec_applicable) then begin
      t.stats.unfinished_drain_pauses <- t.stats.unfinished_drain_pauses + 1;
      while not (Vec.is_empty t.dec_applicable) do
        let frontier = Vec.length t.dec_applicable in
        Trace_cost.add tc ~threads:c.gc_threads ~frontier ~cost_ns:c.dec_ns;
        apply_dec t t.dec_applicable (Vec.pop t.dec_applicable)
      done
    end;
    (* Epoch-scoped remsets restart with the new epoch's fold. *)
    Array.iter (fun ar -> Vec.clear ar.remset) t.arenas;
    (* Journal catchup: every record folded before anything is freed. *)
    let records = flatten_journal t in
    catchup_journal t tc records;
    (* Root snapshot: increment current root referents before this
       epoch's deferred decrements become applicable — the step the
       deferral discipline's soundness rests on. *)
    let root_ids = Par.take_scratch () in
    Array.iter (fun r -> if r <> null then Vec.push root_ids r) t.roots;
    Trace_cost.add_parallel tc ~threads:c.gc_threads
      ~cost_ns:(Float.of_int (Array.length t.roots) *. c.root_scan_ns);
    Vec.iter
      (fun id ->
        let obj = Obj_model.Registry.find_live t.heap.registry id in
        if obj.Obj_model.id <> null then begin
          t.stats.increments <- t.stats.increments + 1;
          Trace_cost.add tc ~threads:c.gc_threads ~frontier:1 ~cost_ns:c.inc_ns;
          match Heap.rc_inc t.heap obj with `Became _ | `Stuck -> ()
        end)
      root_ids;
    (* The previous snapshot's root counts come off; this epoch's
       journaled decrements become applicable. Both drain lazily. *)
    Vec.append t.dec_applicable t.prev_roots;
    Vec.clear t.prev_roots;
    Vec.append t.prev_roots root_ids;
    Vec.append t.dec_applicable t.dec_deferred;
    Vec.clear t.dec_deferred;
    (* Reclaim: the young region every pause; the whole heap (cycles
       included) on the trace backstop. *)
    let traced = force_trace || should_trace t in
    if traced then mature_trace t tc root_ids else young_sweep t tc;
    Par.recycle_scratch root_ids;
    t.alloc_bytes_epoch <- 0;
    t.pauses_since_trace <- t.pauses_since_trace + 1;
    t.heap.epoch <- t.heap.epoch + 1;
    note_backlog t;
    let wall = c.pause_base_ns +. Trace_cost.critical_ns tc in
    let cpu = c.pause_base_ns +. Trace_cost.cpu_ns tc in
    let label = if traced then "journal+trace" else "journal" in
    Sim.pause ~label t.sim ~wall_ns:wall ~cpu_ns:cpu;
    t.in_pause <- false
  end

(* --- Concurrent drain --------------------------------------------------- *)

let conc_active t () = if conc_backlog t - open_records t > 0 then 1 else 0

(* Priority order: applicable decrements (local RC work — no concurrency
   penalty, like LXR's lazy decrements), then published journal chunks
   (penalized: the fold contends with the mutator for the journal's
   cache lines), then stale-block re-sweeps in arena-index order. *)
let conc_run t ~budget_ns =
  let c = Sim.cost t.sim in
  let penalty = 1.0 /. c.conc_efficiency in
  let consumed = ref 0.0 in
  let continue_ = ref true in
  while !continue_ && !consumed < budget_ns do
    if not (Vec.is_empty t.dec_applicable) then begin
      apply_dec t t.dec_applicable (Vec.pop t.dec_applicable);
      consumed := !consumed +. c.dec_ns
    end
    else if t.published_records > 0 then begin
      (* One published chunk's worth of records, in publication order. *)
      let n = min t.cfg.chunk_records t.published_records in
      t.published_records <- t.published_records - n;
      t.stats.conc_records <- t.stats.conc_records + n;
      for k = 0 to n - 1 do
        let q = t.drain_pos + (4 * k) in
        fold_record t ~src:(Vec.get t.published_v q)
          ~field:(Vec.get t.published_v (q + 1))
          ~old_r:(Vec.get t.published_v (q + 2))
          ~new_r:(Vec.get t.published_v (q + 3))
      done;
      t.drain_pos <- t.drain_pos + (4 * n);
      if t.published_records = 0 then begin
        Vec.clear t.published_v;
        t.drain_pos <- 0
      end;
      consumed := !consumed +. (Float.of_int n *. c.inc_ns *. penalty)
    end
    else begin
      let rec sweep_next a =
        if a >= t.cfg.arena_count then continue_ := false
        else begin
          let ar = t.arenas.(a) in
          if Vec.is_empty ar.ssb then begin
            if ar.phase = Sweeping then ar.phase <- Idle;
            sweep_next (a + 1)
          end
          else begin
            ar.phase <- Sweeping;
            let b = Vec.pop ar.ssb in
            Bytes.unsafe_set ar.ssb_set b '\000';
            sweep_stale_block t b;
            t.stats.arena_sweeps <- t.stats.arena_sweeps + 1;
            if Vec.is_empty ar.ssb then ar.phase <- Idle;
            consumed := !consumed +. c.sweep_block_ns
          end
        end
      in
      sweep_next 0
    end
  done;
  !consumed

(* --- Triggers ----------------------------------------------------------- *)

let should_pause t =
  t.alloc_bytes_epoch >= t.heap.Heap.cfg.block_bytes
  && (t.alloc_bytes_epoch >= t.cfg.epoch_alloc_cap_bytes
     || Free_lists.free_count t.heap.free
        + Free_lists.recyclable_count t.heap.free
        < t.cfg.free_low_watermark_blocks
     || journal_backlog t + Vec.length t.dec_deferred
        >= t.cfg.journal_trigger_records)

let poll t () =
  note_backlog t;
  if should_pause t then journal_pause t ~force_trace:false

(* Degradation ladder. [Young]: one snapshot pause. [Full]: a snapshot
   pause with the mature trace forced, so cyclic garbage goes too.
   [Emergency]: slide-compact the swept remainder in a pause. *)
let collect_for_alloc t pressure =
  (match pressure with
  | Collector.Young -> journal_pause t ~force_trace:false
  | Collector.Full -> journal_pause t ~force_trace:true
  | Collector.Emergency ->
    let c = Sim.cost t.sim in
    let tc = Trace_cost.create () in
    Heap.retire_all_allocators t.heap;
    Heap.release_reserve t.heap;
    let copied =
      Stw_common.compact t.heap tc ~cost:c ~threads:c.gc_threads
        ~gc_alloc:t.gc_alloc
    in
    ignore copied;
    Sim.pause ~label:"compact" t.sim
      ~wall_ns:(c.pause_base_ns +. Trace_cost.critical_ns tc)
      ~cpu_ns:(c.pause_base_ns +. Trace_cost.cpu_ns tc));
  Heap.ensure_reserve t.heap

let on_alloc t (obj : Obj_model.t) =
  t.alloc_bytes_epoch <- t.alloc_bytes_epoch + obj.size;
  if Heap.is_los t.heap obj then Vec.push t.los_young obj.id

(* End of run: one final snapshot pause leaves the counts absolute (the
   current roots are the last snapshot), then the concurrent queues are
   drained so final statistics are complete. *)
let on_finish t () =
  journal_pause t ~force_trace:false;
  while not (Vec.is_empty t.dec_applicable) do
    apply_dec t t.dec_applicable (Vec.pop t.dec_applicable)
  done;
  Array.iter
    (fun ar ->
      while not (Vec.is_empty ar.ssb) do
        let b = Vec.pop ar.ssb in
        Bytes.unsafe_set ar.ssb_set b '\000';
        sweep_stale_block t b
      done;
      ar.phase <- Idle)
    t.arenas

(* --- Verifier introspection --------------------------------------------- *)

(* Every id with RC work still queued: overwritten referents in
   unapplied journal records, both decrement queues, and the previous
   root snapshot. Their counts legitimately exceed the in-heap evidence
   until the drain applies them. *)
let pending_ref_ids t () =
  let ids = ref [] in
  let push id = if id <> null then ids := id :: !ids in
  let push_chunk chunk =
    for k = 0 to (Vec.length chunk / 4) - 1 do
      push (Vec.get chunk ((4 * k) + 2))
    done
  in
  push_chunk t.open_chunk;
  (* Published-but-unfolded records live in [drain_pos ..) of the flat
     journal. *)
  for k = t.drain_pos / 4 to (Vec.length t.published_v / 4) - 1 do
    push (Vec.get t.published_v ((4 * k) + 2))
  done;
  Vec.iter push t.dec_deferred;
  Vec.iter push t.dec_applicable;
  Vec.iter push t.prev_roots;
  !ids

let remset_entries t () =
  let acc = ref [] in
  Array.iter
    (fun ar ->
      let i = ref 0 in
      while !i < Vec.length ar.remset do
        acc := (Vec.get ar.remset !i, Vec.get ar.remset (!i + 1)) :: !acc;
        i := !i + 2
      done)
    t.arenas;
  !acc

let introspect t =
  { Collector.rc_discipline = Collector.Exact_rc;
    counts_exact = (fun () -> true);
    pending_ref_ids = pending_ref_ids t;
    remset_entries = remset_entries t;
    trace_active = (fun () -> false);
    expect_clear_marks = (fun () -> true) }

let create ~name ~config sim heap ~roots =
  let cfg =
    config
      (scaled_default ~heap_bytes:heap.Heap.cfg.heap_bytes
         ~block_bytes:heap.Heap.cfg.block_bytes)
  in
  let blocks = Heap_config.blocks heap.Heap.cfg in
  let arena_blocks = max 1 ((blocks + cfg.arena_count - 1) / cfg.arena_count) in
  let t =
    { sim;
      heap;
      roots;
      cfg;
      stats = stats_create ();
      open_chunk = Vec.create ~capacity:(4 * cfg.chunk_records) ();
      published_v = Vec.create ~capacity:(8 * cfg.chunk_records) ();
      drain_pos = 0;
      published_records = 0;
      dec_deferred = Vec.create ~capacity:1024 ();
      dec_applicable = Vec.create ~capacity:1024 ();
      prev_roots = Vec.create ~capacity:64 ();
      arenas =
        Array.init cfg.arena_count (fun _ ->
            { phase = Idle;
              ssb = Vec.create ~capacity:16 ();
              ssb_set = Bytes.make blocks '\000';
              remset = Vec.create ~capacity:64 () });
      arena_blocks;
      los_young = Vec.create ~capacity:16 ();
      alloc_bytes_epoch = 0;
      pauses_since_trace = 0;
      gc_alloc = Heap.make_allocator heap;
      in_pause = false }
  in
  Heap.ensure_reserve heap;
  let c = Sim.cost sim in
  { Collector.name;
    on_alloc = on_alloc t;
    on_write = on_write t;
    write_extra_ns = c.wb_fast_ns;
    read_extra_ns = 0.0;
    poll = (fun () -> poll t ());
    collect_for_alloc = collect_for_alloc t;
    conc_active = conc_active t;
    conc_run = (fun ~budget_ns -> conc_run t ~budget_ns);
    conc_backlog = (fun () -> conc_backlog t);
    on_finish = on_finish t;
    stats = (fun () -> stats_alist t.stats);
    introspect = introspect t }

let factory_with ~name ~config () sim heap ~roots =
  create ~name ~config sim heap ~roots

let factory = factory_with ~name:"Journal-RC" ~config:Fun.id ()
