open Repro_heap
open Repro_engine

let null = Obj_model.null

type t = {
  sim : Sim.t;
  heap : Heap.t;
  roots : int array;
  gc_alloc : Bump_allocator.t;
  mutable bytes_since_gc : int;
  mutable collections : int;
  mutable copied_bytes : int;
  mutable in_collection : bool;
}

let collect t =
  if not t.in_collection then begin
    t.in_collection <- true;
    let c = Sim.cost t.sim in
    let threads = c.gc_threads in
    let tc = Trace_cost.create () in
    t.collections <- t.collections + 1;
    Heap.retire_all_allocators t.heap;
    Trace_cost.add_parallel tc ~threads
      ~cost_ns:(Float.of_int (Array.length t.roots) *. c.root_scan_ns);
    let seeds =
      Array.fold_left (fun acc r -> if r = null then acc else r :: acc) [] t.roots
    in
    let on_visit (obj : Obj_model.t) =
      if Heap.evacuate t.heap t.gc_alloc obj then begin
        t.copied_bytes <- t.copied_bytes + obj.size;
        Trace_cost.add_parallel tc ~threads
          ~cost_ns:(c.copy_ns_per_byte *. Float.of_int obj.size)
      end
    in
    let pool = Sim.pool t.sim in
    ignore (Stw_common.mark_from t.heap tc ~pool ~cost:c ~threads
              ~seeds:(fun f -> List.iter f seeds) ~on_visit);
    Bump_allocator.retire_all t.gc_alloc;
    ignore (Stw_common.sweep_unmarked t.heap tc ~pool ~cost:c ~threads);
    Mark_bitset.clear t.heap.marks;
    Heap.clear_touched t.heap;
    t.bytes_since_gc <- 0;
    Stw_common.pause_of t.sim tc;
    t.in_collection <- false
  end

(* Collect when the used half is exhausted: the other half must remain
   free so every survivor can be copied. *)
let used_blocks heap =
  Heap_config.blocks heap.Heap.cfg - Blocks.count_state heap.Heap.blocks Blocks.Free

let poll t () =
  if used_blocks t.heap >= Heap_config.blocks t.heap.cfg / 2
     && t.bytes_since_gc >= t.heap.Heap.cfg.heap_bytes / 16
  then collect t

(* Semispace has only one collection to offer; every ladder rung runs
   it (a retry after [Young] already reflects the best it can do). *)
let collect_for_alloc t (_ : Collector.pressure) = collect t

let factory : Collector.factory =
 fun sim heap ~roots ->
  let t =
    { sim; heap; roots;
      gc_alloc = Heap.make_allocator heap;
      bytes_since_gc = 0;
      collections = 0; copied_bytes = 0; in_collection = false }
  in
  { Collector.name = "Semispace";
    on_alloc =
      (fun obj ->
        Heap.pin heap obj;
        t.bytes_since_gc <- t.bytes_since_gc + obj.Obj_model.size);
    on_write = (fun _ _ _ -> ());
    write_extra_ns = 0.0;
    read_extra_ns = 0.0;
    poll = poll t;
    collect_for_alloc = collect_for_alloc t;
    conc_active = (fun () -> 0);
    conc_run = (fun ~budget_ns:_ -> 0.0);
    conc_backlog = (fun () -> 0);
    on_finish = (fun () -> ());
    stats =
      (fun () ->
        [ ("collections", Float.of_int t.collections);
          ("copied_bytes", Float.of_int t.copied_bytes) ]);
    introspect = Collector.no_introspection }
