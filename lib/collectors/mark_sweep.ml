open Repro_heap
open Repro_engine

let null = Obj_model.null

type t = {
  sim : Sim.t;
  heap : Heap.t;
  roots : int array;
  threads : int;
  defrag : bool;
  gc_alloc : Bump_allocator.t;
  mutable bytes_since_gc : int;
  mutable collections : int;
  mutable freed_bytes : int;
  mutable evacuated_bytes : int;
  mutable in_collection : bool;
}

let root_seeds t =
  Array.fold_left (fun acc r -> if r = null then acc else r :: acc) [] t.roots


let collect ?(force_defrag = false) t =
  if not t.in_collection then begin
    t.in_collection <- true;
    let c = Sim.cost t.sim in
    let pool = Sim.pool t.sim in
    let tc = Trace_cost.create () in
    t.collections <- t.collections + 1;
    Heap.retire_all_allocators t.heap;
    if force_defrag then Heap.release_reserve t.heap;
    Trace_cost.add_parallel tc ~threads:t.threads
      ~cost_ns:(Float.of_int (Array.length t.roots) *. c.root_scan_ns);
    let targets =
      (* Routine Immix defrag is bounded by the available headroom;
         emergency compaction happens after the sweep (see below). *)
      if t.defrag && Heap.available_blocks t.heap > 0 then
        Stw_common.select_fragmented t.heap ~pool
          ~max_blocks:(Heap.available_blocks t.heap) ~occupancy_max:0.5
      else []
    in
    let on_visit (obj : Obj_model.t) =
      if targets <> []
         && (not (Heap.is_los t.heap obj))
         && Blocks.target t.heap.blocks (Addr.block_of t.heap.cfg (Obj_model.addr obj))
         && Heap.evacuate t.heap t.gc_alloc obj
      then begin
        t.evacuated_bytes <- t.evacuated_bytes + obj.size;
        Trace_cost.add_parallel tc ~threads:t.threads
          ~cost_ns:(c.copy_ns_per_byte *. Float.of_int obj.size)
      end
    in
    ignore (Stw_common.mark_from t.heap tc ~pool ~cost:c ~threads:t.threads
              ~seeds:(fun f -> List.iter f (root_seeds t)) ~on_visit);
    Bump_allocator.retire_all t.gc_alloc;
    let freed =
      Stw_common.sweep_unmarked t.heap tc ~pool ~cost:c ~threads:t.threads
    in
    t.freed_bytes <- t.freed_bytes + freed;
    Stw_common.clear_targets t.heap targets;
    (* Emergency collections compact (Serial and Parallel full GCs are
       mark-sweep-compact). *)
    if force_defrag then
      t.evacuated_bytes <-
        t.evacuated_bytes
        + Stw_common.compact t.heap tc ~cost:c ~threads:t.threads
            ~gc_alloc:t.gc_alloc;
    Mark_bitset.clear t.heap.marks;
    Heap.clear_touched t.heap;
    Heap.ensure_reserve t.heap;
    t.bytes_since_gc <- 0;
    Stw_common.pause_of t.sim tc;
    t.in_collection <- false
  end

let low_watermark heap = max 3 (Heap_config.blocks heap.Heap.cfg / 16)

(* Trigger on completely-free blocks, not free lines: holes fragment into
   unallocatable singletons, and defragmentation needs whole-block
   headroom to copy into. The progress guard prevents back-to-back
   collections when the heap is persistently tight. *)
let poll t () =
  if Free_lists.free_count t.heap.free < low_watermark t.heap
     && t.bytes_since_gc >= t.heap.Heap.cfg.heap_bytes / 8
  then collect t

(* The degradation ladder for a monolithic STW collector: [Young] is an
   ordinary collection; [Full] and [Emergency] both force the
   reserve-releasing mark-sweep-compact. *)
let collect_for_alloc t = function
  | Collector.Young -> collect t
  | Collector.Full | Collector.Emergency -> collect ~force_defrag:true t

let make ~name ~threads ~defrag sim heap ~roots =
  let threads = max 1 threads in
  let t =
    { sim; heap; roots; threads; defrag;
      gc_alloc = Heap.make_allocator heap;
      bytes_since_gc = 0;
      collections = 0; freed_bytes = 0; evacuated_bytes = 0;
      in_collection = false }
  in
  Heap.ensure_reserve t.heap;
  { Collector.name;
    on_alloc =
      (fun obj ->
        Heap.pin heap obj;
        t.bytes_since_gc <- t.bytes_since_gc + obj.Obj_model.size);
    on_write = (fun _ _ _ -> ());
    write_extra_ns = 0.0;
    read_extra_ns = 0.0;
    poll = poll t;
    collect_for_alloc = collect_for_alloc t;
    conc_active = (fun () -> 0);
    conc_run = (fun ~budget_ns:_ -> 0.0);
    conc_backlog = (fun () -> 0);
    on_finish = (fun () -> ());
    stats =
      (fun () ->
        [ ("collections", Float.of_int t.collections);
          ("freed_bytes", Float.of_int t.freed_bytes);
          ("evacuated_bytes", Float.of_int t.evacuated_bytes) ]);
    introspect = Collector.no_introspection }

let serial : Collector.factory =
 fun sim heap ~roots -> make ~name:"Serial" ~threads:1 ~defrag:false sim heap ~roots

let parallel : Collector.factory =
 fun sim heap ~roots ->
  make ~name:"Parallel" ~threads:(Sim.cost sim).gc_threads ~defrag:false sim heap ~roots

let immix : Collector.factory =
 fun sim heap ~roots ->
  make ~name:"Immix" ~threads:(Sim.cost sim).gc_threads ~defrag:true sim heap ~roots
