open Repro_util
open Repro_heap
open Repro_engine
module Par = Repro_par.Par

let null = Obj_model.null

(* Per-block remembered sets are coarsened (abandoned) beyond this size,
   mirroring G1's treatment of "popular" regions. *)
let rs_cap = 8192

type t = {
  sim : Sim.t;
  heap : Heap.t;
  roots : int array;
  gc_alloc : Bump_allocator.t;
  young_marks : Mark_bitset.t;  (* young-trace marks, distinct from cycle marks *)
  young_rs : Vec.t;  (* old->young references, packed (src, field) *)
  block_rs : Vec.t array;  (* cross-block old->old references per block *)
  young_los : (int, unit) Hashtbl.t;  (* large objects allocated since last young GC *)
  gray : Vec.t;  (* concurrent marking stack *)
  mutable marking : bool;
  mutable remark_ready : bool;
  mutable mixed_pending : bool;
  mutable mixed_candidates : int list;
  nursery_bytes : int;
  mutable bytes_since_young_gc : int;
  (* Statistics. *)
  mutable young_gcs : int;
  mutable mixed_gcs : int;
  mutable full_gcs : int;
  mutable marking_cycles : int;
  mutable copied_bytes : int;
  mutable in_collection : bool;
}

let is_young t (obj : Obj_model.t) =
  if Heap.is_los t.heap obj then Hashtbl.mem t.young_los obj.id
  else Blocks.young t.heap.blocks (Addr.block_of t.heap.cfg (Obj_model.addr obj))

let block_of t (obj : Obj_model.t) = Addr.block_of t.heap.cfg (Obj_model.addr obj)

let rs_push t b src field =
  let rs = t.block_rs.(b) in
  if Vec.length rs < 2 * rs_cap then begin
    Vec.push rs src;
    Vec.push rs field
  end

(* Record [src]'s outgoing cross-block references in the destination
   blocks' remembered sets — done by the barrier for mutator stores and
   during evacuation for survivors (remset maintenance). *)
let record_outgoing t (src : Obj_model.t) =
  if not (Heap.is_los t.heap src) then begin
    let reg = t.heap.registry in
    for field = 0 to Obj_model.nfields src - 1 do
      let r = Obj_model.field src field in
      if r <> null then begin
        let referent = Obj_model.Registry.find_live reg r in
        if
          referent.Obj_model.id <> null
          && (not (is_young t referent))
          && not (Heap.is_los t.heap referent)
        then begin
          let b = block_of t referent in
          if b <> block_of t src then rs_push t b src.id field
        end
      end
    done
  end

let gray_push t id =
  if id <> null && not (Mark_bitset.marked t.heap.marks id) then begin
    Mark_bitset.mark t.heap.marks id;
    Vec.push t.gray id
  end

let root_ids t =
  Array.fold_left (fun acc r -> if r = null then acc else r :: acc) [] t.roots

(* --- Young (and mixed) collections ------------------------------------ *)

let evacuate_young t tc =
  let c = Sim.cost t.sim in
  let threads = c.gc_threads in
  let queue = Par.take_scratch () in
  let push id =
    if id <> null && not (Mark_bitset.marked t.young_marks id) then begin
      Mark_bitset.mark t.young_marks id;
      Vec.push queue id
    end
  in
  List.iter push (root_ids t);
  (* Seed from the old->young remembered set. *)
  let n = Vec.length t.young_rs / 2 in
  for i = 0 to n - 1 do
    let src = Vec.get t.young_rs (2 * i) and field = Vec.get t.young_rs ((2 * i) + 1) in
    Trace_cost.add_parallel tc ~threads ~cost_ns:c.remset_entry_ns;
    let src_obj = Obj_model.Registry.find_live t.heap.registry src in
    if src_obj.Obj_model.id <> null && not (is_young t src_obj) then begin
      let r = Obj_model.field src_obj field in
      if r <> null then push r
    end
  done;
  Vec.clear t.young_rs;
  while not (Vec.is_empty queue) do
    let frontier = Vec.length queue in
    let id = Vec.pop queue in
    Trace_cost.add tc ~threads ~frontier ~cost_ns:c.trace_obj_ns;
    let obj = Obj_model.Registry.find_live t.heap.registry id in
    if obj.Obj_model.id <> null then begin
      (* The trace stops at the young/old boundary: old objects are not
         part of the collection set. *)
      if is_young t obj then begin
        if Heap.evacuate t.heap t.gc_alloc obj then begin
          t.copied_bytes <- t.copied_bytes + obj.size;
          Trace_cost.add tc ~threads ~frontier
            ~cost_ns:(c.copy_ns_per_byte *. Float.of_int obj.size)
        end;
        (* Promotion: keep marking-cycle and remembered sets coherent. *)
        if t.marking then gray_push t obj.id;
        record_outgoing t obj;
        Hashtbl.remove t.young_los obj.id;
        Obj_model.iter_fields push obj
      end
    end
  done;
  Par.recycle_scratch queue

let sweep_young_blocks t tc =
  let c = Sim.cost t.sim in
  let cfg = t.heap.cfg in
  (* Young-block packets: the body lists each young block's dead
     (young-unmarked) residents as [b; n; id x n] — dead-ness in one
     block is unaffected by frees in another — while frees, compaction
     and reclassification happen in the ordered merge. *)
  Par.map_spans (Sim.pool t.sim) ~total:(Heap_config.blocks cfg)
    ~packet:Par.blocks_per_packet
    ~f:(fun _ ~lo ~len ->
      let out = Par.take_scratch () in
      for b = lo to lo + len - 1 do
        if Blocks.young t.heap.blocks b then begin
          Vec.push out b;
          let npos = Vec.length out in
          Vec.push out 0;
          let residents = Blocks.residents t.heap.blocks b in
          for k = 0 to Vec.length residents - 1 do
            let id = Vec.get residents k in
            let obj = Obj_model.Registry.find_live t.heap.registry id in
            if
              obj.Obj_model.id <> null
              && Addr.block_of cfg (Obj_model.addr obj) = b
              && not (Mark_bitset.marked t.young_marks id)
            then Vec.push out id
          done;
          Vec.set out npos (Vec.length out - npos - 1)
        end
      done;
      out)
    ~merge:(fun _ out ->
      let i = ref 0 in
      while !i < Vec.length out do
        let b = Vec.get out !i and n = Vec.get out (!i + 1) in
        i := !i + 2;
        Trace_cost.add_parallel tc ~threads:c.gc_threads
          ~cost_ns:c.sweep_block_ns;
        for j = 0 to n - 1 do
          let obj =
            Obj_model.Registry.find_live t.heap.registry (Vec.get out (!i + j))
          in
          if obj.Obj_model.id <> null then Heap.free_object t.heap obj
        done;
        i := !i + n;
        Blocks.compact t.heap.blocks b ~live:(fun id ->
            let obj = Obj_model.Registry.find_live t.heap.registry id in
            obj.Obj_model.id <> null
            && Addr.block_of cfg (Obj_model.addr obj) = b);
        Blocks.set_young t.heap.blocks b false;
        if Rc_table.block_is_free t.heap.rc cfg b then
          Blocks.set_state t.heap.blocks b Blocks.Free
        else if Rc_table.free_lines_in_block t.heap.rc cfg b > 0 then
          Blocks.set_state t.heap.blocks b Blocks.Recyclable
        else Blocks.set_state t.heap.blocks b Blocks.In_use
      done;
      Par.recycle_scratch out);
  (* Unreached young large objects die with the nursery. *)
  let dead_los =
    Hashtbl.fold
      (fun id () acc ->
        if Mark_bitset.marked t.young_marks id then acc else id :: acc)
      t.young_los []
  in
  List.iter
    (fun id ->
      let obj = Obj_model.Registry.find_live t.heap.registry id in
      if obj.Obj_model.id <> null then Heap.free_object t.heap obj)
    dead_los;
  Hashtbl.reset t.young_los;
  Heap.rebuild_free_lists t.heap

(* Evacuate one old candidate block using its remembered set and roots. *)
let evacuate_old_block t tc b =
  let c = Sim.cost t.sim in
  let threads = c.gc_threads in
  let cfg = t.heap.cfg in
  let move (obj : Obj_model.t) =
    if (not (Obj_model.is_freed obj)) && Addr.block_of cfg (Obj_model.addr obj) = b then begin
      if Heap.evacuate t.heap t.gc_alloc obj then begin
        t.copied_bytes <- t.copied_bytes + obj.size;
        Trace_cost.add_parallel tc ~threads
          ~cost_ns:(c.copy_ns_per_byte *. Float.of_int obj.size);
        record_outgoing t obj
      end
    end
  in
  (* Dead residents (unmarked by the completed cycle) are freed here. *)
  Vec.iter
    (fun id ->
      let obj = Obj_model.Registry.find_live t.heap.registry id in
      if
        obj.Obj_model.id <> null
        && Addr.block_of cfg (Obj_model.addr obj) = b
        && not (Mark_bitset.marked t.heap.marks id)
      then Heap.free_object t.heap obj)
    (Blocks.residents t.heap.blocks b);
  List.iter
    (fun id ->
      let obj = Obj_model.Registry.find_live t.heap.registry id in
      if obj.Obj_model.id <> null then move obj)
    (root_ids t);
  let rs = t.block_rs.(b) in
  let n = Vec.length rs / 2 in
  for i = 0 to n - 1 do
    let src = Vec.get rs (2 * i) and field = Vec.get rs ((2 * i) + 1) in
    Trace_cost.add_parallel tc ~threads ~cost_ns:c.remset_entry_ns;
    let src_obj = Obj_model.Registry.find_live t.heap.registry src in
    if src_obj.Obj_model.id <> null then begin
      let r = Obj_model.field src_obj field in
      if r <> null then begin
        let referent = Obj_model.Registry.find_live t.heap.registry r in
        if referent.Obj_model.id <> null then move referent
      end
    end
  done;
  Vec.clear rs;
  Blocks.compact t.heap.blocks b ~live:(fun id ->
      let obj = Obj_model.Registry.find_live t.heap.registry id in
      obj.Obj_model.id <> null && Addr.block_of cfg (Obj_model.addr obj) = b);
  Trace_cost.add_parallel tc ~threads ~cost_ns:c.sweep_block_ns;
  if Rc_table.block_is_free t.heap.rc cfg b then begin
    Blocks.set_state t.heap.blocks b Blocks.Free;
    true
  end
  else false

let mixed_quota t = max 2 (Heap_config.blocks t.heap.cfg / 16)

let young_gc t =
  if not t.in_collection then begin
    t.in_collection <- true;
    let c = Sim.cost t.sim in
    let tc = Trace_cost.create () in
    t.young_gcs <- t.young_gcs + 1;
    Heap.retire_all_allocators t.heap;
    Trace_cost.add_parallel tc ~threads:c.gc_threads
      ~cost_ns:(Float.of_int (Array.length t.roots) *. c.root_scan_ns);
    evacuate_young t tc;
    Bump_allocator.retire_all t.gc_alloc;
    sweep_young_blocks t tc;
    Mark_bitset.clear t.young_marks;
    (* Mixed phase: also evacuate a few old candidates in this pause. *)
    if t.mixed_pending then begin
      t.mixed_gcs <- t.mixed_gcs + 1;
      let rec go quota = function
        | [] ->
          t.mixed_pending <- false;
          Mark_bitset.clear t.heap.marks;
          []
        | rest when quota = 0 -> rest
        | b :: rest ->
          ignore (evacuate_old_block t tc b);
          go (quota - 1) rest
      in
      t.mixed_candidates <- go (mixed_quota t) t.mixed_candidates;
      Bump_allocator.retire_all t.gc_alloc;
      Heap.rebuild_free_lists t.heap
    end;
    Heap.clear_touched t.heap;
    Heap.ensure_reserve t.heap;
    t.bytes_since_young_gc <- 0;
    t.heap.epoch <- t.heap.epoch + 1;
    (* Start a marking cycle when old occupancy crosses the threshold. *)
    let total = Heap_config.blocks t.heap.cfg in
    let free = Blocks.count_state t.heap.blocks Blocks.Free in
    if (not t.marking) && (not t.mixed_pending)
       && Float.of_int (total - free) > 0.45 *. Float.of_int total
    then begin
      t.marking <- true;
      t.marking_cycles <- t.marking_cycles + 1;
      t.remark_ready <- false;
      Mark_bitset.clear t.heap.marks;
      List.iter (gray_push t) (root_ids t)
    end;
    Stw_common.pause_of t.sim tc;
    t.in_collection <- false
  end

(* Remark pause: finish marking, free wholly dead blocks, pick mixed
   candidates. *)
let remark t =
  if not t.in_collection then begin
    t.in_collection <- true;
    let c = Sim.cost t.sim in
    let tc = Trace_cost.create () in
    Heap.retire_all_allocators t.heap;
    (* Packetized BFS finish of the concurrent mark: gray entries are
       already marked, so the scan just emits [k; referent x k] records
       (k = -1 for vanished ids) and the merge marks and pushes. *)
    let pool = Sim.pool t.sim in
    let remaining = ref 0 in
    Par.drain_rounds pool ~packet:Par.queue_per_packet ~frontier:t.gray
      ~on_round:(fun total -> remaining := total)
      ~scan:(fun id out ->
        let obj = Obj_model.Registry.find_live t.heap.registry id in
        if obj.Obj_model.id = null then Vec.push out (-1)
        else begin
          let kpos = Vec.length out in
          Vec.push out 0;
          for j = 0 to Obj_model.nfields obj - 1 do
            let r = Obj_model.field obj j in
            if r <> null then Vec.push out r
          done;
          Vec.set out kpos (Vec.length out - kpos - 1)
        end)
      ~merge:(fun out next ->
        let i = ref 0 in
        while !i < Vec.length out do
          let k = Vec.get out !i in
          incr i;
          Trace_cost.add tc ~threads:c.gc_threads ~frontier:!remaining
            ~cost_ns:c.trace_obj_ns;
          decr remaining;
          for j = 0 to k - 1 do
            let r = Vec.get out (!i + j) in
            if not (Mark_bitset.marked t.heap.marks r) then begin
              Mark_bitset.mark t.heap.marks r;
              Vec.push next r
            end
          done;
          if k > 0 then i := !i + k
        done);
    t.marking <- false;
    t.remark_ready <- false;
    (* Cleanup: reclaim blocks with no marked residents at all, free dead
       large objects, and select mixed candidates by live occupancy. *)
    let cfg = t.heap.cfg in
    (* Reserve membership as a bitset: the per-block scan below runs in
       packets and must not pay an O(|reserve|) [Vec.exists] per block.
       Reserve blocks are In_use and empty by construction; dissolving
       one here would let the mutator refill it while it still sits on
       [heap.reserve], and a later [release_reserve] would clobber the
       live data. *)
    let reserve_bits = Bytes.make (Heap_config.blocks cfg) '\000' in
    Vec.iter (fun b -> Bytes.set reserve_bits b '\001') t.heap.reserve;
    let candidates = ref [] in
    Par.map_spans pool ~total:(Heap_config.blocks cfg)
      ~packet:Par.blocks_per_packet
      ~f:(fun _ ~lo ~len ->
        let out = ref [] in
        for b = lo to lo + len - 1 do
          match Blocks.state t.heap.blocks b with
          | (Blocks.In_use | Blocks.Recyclable)
            when Bytes.get reserve_bits b = '\001' -> ()
          | Blocks.In_use | Blocks.Recyclable ->
            let live = ref 0 in
            let residents = Blocks.residents t.heap.blocks b in
            for k = 0 to Vec.length residents - 1 do
              let id = Vec.get residents k in
              let obj = Obj_model.Registry.find_live t.heap.registry id in
              if
                obj.Obj_model.id <> null
                && Addr.block_of cfg (Obj_model.addr obj) = b
                && Mark_bitset.marked t.heap.marks id
              then live := !live + obj.size
            done;
            out := (b, !live) :: !out
          | Blocks.Free | Blocks.Owned | Blocks.Los_backing -> ()
        done;
        List.rev !out)
      ~merge:(fun _ pairs ->
        List.iter
          (fun (b, live) ->
            Trace_cost.add_parallel tc ~threads:c.gc_threads
              ~cost_ns:c.sweep_block_ns;
            if live = 0 then begin
              Vec.iter
                (fun id ->
                  let obj = Obj_model.Registry.find_live t.heap.registry id in
                  if
                    obj.Obj_model.id <> null
                    && Addr.block_of cfg (Obj_model.addr obj) = b
                  then Heap.free_object t.heap obj)
                (Blocks.residents t.heap.blocks b);
              Blocks.compact t.heap.blocks b ~live:(fun _ -> false);
              Blocks.set_state t.heap.blocks b Blocks.Free;
              Vec.clear t.block_rs.(b)
            end
            else if Float.of_int live < 0.5 *. Float.of_int cfg.block_bytes then
              candidates := (b, live) :: !candidates)
          pairs);
    Obj_model.Registry.iter
      (fun obj ->
        if Heap.is_los t.heap obj
           && (not (Hashtbl.mem t.young_los obj.id))
           && not (Mark_bitset.marked t.heap.marks obj.id)
        then Heap.free_object t.heap obj)
      t.heap.registry;
    Heap.rebuild_free_lists t.heap;
    t.mixed_candidates <-
      List.map fst (List.sort (fun (_, a) (_, b) -> compare a b) !candidates);
    t.mixed_pending <- true;
    Stw_common.pause_of t.sim tc;
    t.in_collection <- false
  end

(* Fallback full STW collection (G1's serial full GC). *)
let full_gc t =
  if not t.in_collection then begin
    t.in_collection <- true;
    let c = Sim.cost t.sim in
    let tc = Trace_cost.create () in
    t.full_gcs <- t.full_gcs + 1;
    Heap.release_reserve t.heap;
    (* Abandon any in-flight cycle. *)
    t.marking <- false;
    t.remark_ready <- false;
    t.mixed_pending <- false;
    t.mixed_candidates <- [];
    Vec.clear t.gray;
    Mark_bitset.clear t.heap.marks;
    Heap.retire_all_allocators t.heap;
    (* G1's fallback full collection is mark-sweep-compact. *)
    let pool = Sim.pool t.sim in
    ignore (Stw_common.mark_from t.heap tc ~pool ~cost:c ~threads:c.gc_threads
              ~seeds:(fun f -> List.iter f (root_ids t)) ~on_visit:(fun _ -> ()));
    ignore (Stw_common.sweep_unmarked t.heap tc ~pool ~cost:c ~threads:c.gc_threads);
    t.copied_bytes <-
      t.copied_bytes
      + Stw_common.compact t.heap tc ~cost:c ~threads:c.gc_threads
          ~gc_alloc:t.gc_alloc;
    Mark_bitset.clear t.heap.marks;
    Mark_bitset.clear t.young_marks;
    Hashtbl.reset t.young_los;
    Vec.clear t.young_rs;
    Array.iter Vec.clear t.block_rs;
    Heap.clear_touched t.heap;
    Heap.ensure_reserve t.heap;
    t.bytes_since_young_gc <- 0;
    Stw_common.pause_of t.sim tc;
    t.in_collection <- false
  end

(* --- Collector hooks --------------------------------------------------- *)

let on_write t (src : Obj_model.t) field new_ref =
  let c = Sim.cost t.sim in
  (* SATB barrier while marking: the overwritten value joins the trace. *)
  if t.marking then begin
    let old = Obj_model.field src field in
    if old <> null then begin
      Sim.charge_mutator t.sim c.satb_wb_ns;
      gray_push t old
    end
  end;
  (* Post-write barrier: remember cross-generation / cross-block refs. *)
  if new_ref <> null && not (is_young t src) then begin
    let referent = Obj_model.Registry.find_live t.heap.registry new_ref in
    if referent.Obj_model.id <> null then begin
      if is_young t referent then begin
        Sim.charge_mutator t.sim c.card_wb_ns;
        Vec.push t.young_rs src.id;
        Vec.push t.young_rs field
      end
      else if (not (Heap.is_los t.heap referent))
              && (not (Heap.is_los t.heap src))
              && block_of t referent <> block_of t src
      then begin
        Sim.charge_mutator t.sim c.card_wb_ns;
        rs_push t (block_of t referent) src.id field
      end
    end
  end

let on_alloc t (obj : Obj_model.t) =
  Heap.pin t.heap obj;
  t.bytes_since_young_gc <- t.bytes_since_young_gc + obj.size;
  if Heap.is_los t.heap obj then Hashtbl.replace t.young_los obj.id ();
  if t.marking then Mark_bitset.mark t.heap.marks obj.id

let poll t () =
  if t.remark_ready then remark t;
  let low =
    Free_lists.free_count t.heap.free < max 3 (Heap_config.blocks t.heap.cfg / 16)
  in
  if t.bytes_since_young_gc >= t.nursery_bytes then young_gc t
  else if low then begin
    (* Space pressure: finish the cycle and evacuate old regions rather
       than thrashing on empty nurseries. *)
    if t.marking then remark t;
    if t.mixed_pending || t.bytes_since_young_gc >= t.nursery_bytes / 8 then
      young_gc t
  end

(* The degradation ladder. [Young]: one young (possibly mixed) pause.
   [Full]: finish the marking cycle and drain the mixed candidates so
   old-region garbage goes too. [Emergency]: the serial full
   mark-sweep-compact fallback. *)
let collect_for_alloc t pressure =
  match pressure with
  | Collector.Young -> young_gc t
  | Collector.Full ->
    if t.marking then remark t;
    while t.mixed_pending && Heap.available_blocks t.heap < 4 do
      young_gc t
    done
  | Collector.Emergency -> full_gc t

let remset_entries t () =
  let acc = ref [] in
  let pairs rs =
    let n = Vec.length rs / 2 in
    for i = 0 to n - 1 do
      acc := (Vec.get rs (2 * i), Vec.get rs ((2 * i) + 1)) :: !acc
    done
  in
  pairs t.young_rs;
  Array.iter pairs t.block_rs;
  !acc

let introspect t =
  { Collector.no_introspection with
    remset_entries = remset_entries t;
    trace_active = (fun () -> t.marking) }

let conc_active t () = if t.marking && not (Vec.is_empty t.gray) then 2 else 0

let conc_run t ~budget_ns =
  let c = Sim.cost t.sim in
  let penalty = 1.0 /. c.conc_efficiency in
  let consumed = ref 0.0 in
  let push r = if r <> null then gray_push t r in
  while t.marking && (not (Vec.is_empty t.gray)) && !consumed < budget_ns do
    let id = Vec.pop t.gray in
    consumed := !consumed +. (c.trace_obj_ns *. penalty);
    let obj = Obj_model.Registry.find_live t.heap.registry id in
    if obj.Obj_model.id <> null then Obj_model.iter_fields push obj
  done;
  if t.marking && Vec.is_empty t.gray then t.remark_ready <- true;
  !consumed

let factory : Collector.factory =
 fun sim heap ~roots ->
  let cfg = heap.Heap.cfg in
  let nblocks = Heap_config.blocks cfg in
  let t =
    { sim;
      heap;
      roots;
      gc_alloc = Heap.make_allocator heap;
      young_marks = Mark_bitset.create ();
      young_rs = Vec.create ~capacity:256 ();
      block_rs = Array.init nblocks (fun _ -> Vec.create ~capacity:4 ());
      young_los = Hashtbl.create 16;
      gray = Vec.create ~capacity:256 ();
      marking = false;
      remark_ready = false;
      mixed_pending = false;
      mixed_candidates = [];
      nursery_bytes = max (4 * cfg.block_bytes) (cfg.heap_bytes / 5);
      bytes_since_young_gc = 0;
      young_gcs = 0;
      mixed_gcs = 0;
      full_gcs = 0;
      marking_cycles = 0;
      copied_bytes = 0;
      in_collection = false }
  in
  Heap.ensure_reserve heap;
  let c = Sim.cost sim in
  { Collector.name = "G1";
    on_alloc = on_alloc t;
    on_write = on_write t;
    write_extra_ns = c.card_wb_ns;
    read_extra_ns = 0.0;
    poll = poll t;
    collect_for_alloc = collect_for_alloc t;
    conc_active = conc_active t;
    conc_run = (fun ~budget_ns -> conc_run t ~budget_ns);
    conc_backlog = (fun () -> 0);
    on_finish = (fun () -> ());
    stats =
      (fun () ->
        [ ("young_gcs", Float.of_int t.young_gcs);
          ("mixed_gcs", Float.of_int t.mixed_gcs);
          ("full_gcs", Float.of_int t.full_gcs);
          ("marking_cycles", Float.of_int t.marking_cycles);
          ("copied_bytes", Float.of_int t.copied_bytes) ]);
    introspect = introspect t }
