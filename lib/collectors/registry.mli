(** Name-indexed access to every baseline collector factory. *)

(** The costed collectors evaluation matrices iterate over. Known names:
    serial, parallel, immix, semispace, g1, shenandoah, zgc,
    journal_rc. *)
val all : (string * Repro_engine.Collector.factory) list

(** The idealised free-reclamation baseline ({!Repro_distill.Ideal}),
    as [("ideal", factory)] — resolvable by name but deliberately not in
    {!all}. *)
val baseline : string * Repro_engine.Collector.factory

(** [all] plus {!baseline}: the full name space {!find_opt}, {!find} and
    {!lookup} resolve against. *)
val registered : (string * Repro_engine.Collector.factory) list

val names : string list

(** [lockstep_ok name] is false for names excluded from differ lockstep
    replay (currently just the ideal baseline: it is the methodology's
    yardstick, not a collector under test). *)
val lockstep_ok : string -> bool

(** [find_opt name] — case-insensitive. *)
val find_opt : string -> Repro_engine.Collector.factory option

(** [find name] — case-insensitive; raises [Not_found] for unknown
    names. Prefer {!find_opt} or {!lookup}. *)
val find : string -> Repro_engine.Collector.factory

(** [lookup ?extra name] resolves against [extra @ all]; the error
    carries a "did you mean" typo hint over the combined name space.
    Every command-line front end routes collector lookups through here
    so unknown-name diagnostics are identical everywhere. *)
val lookup :
  ?extra:(string * Repro_engine.Collector.factory) list ->
  string ->
  (Repro_engine.Collector.factory, string) result
