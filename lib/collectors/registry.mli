(** Name-indexed access to every baseline collector factory. *)

(** All (name, factory) pairs. Known names: serial, parallel, immix,
    semispace, g1, shenandoah, zgc, journal_rc. *)
val all : (string * Repro_engine.Collector.factory) list

val names : string list

(** [find_opt name] — case-insensitive. *)
val find_opt : string -> Repro_engine.Collector.factory option

(** [find name] — case-insensitive; raises [Not_found] for unknown
    names. Prefer {!find_opt} or {!lookup}. *)
val find : string -> Repro_engine.Collector.factory

(** [lookup ?extra name] resolves against [extra @ all]; the error
    carries a "did you mean" typo hint over the combined name space.
    Every command-line front end routes collector lookups through here
    so unknown-name diagnostics are identical everywhere. *)
val lookup :
  ?extra:(string * Repro_engine.Collector.factory) list ->
  string ->
  (Repro_engine.Collector.factory, string) result
