open Repro_util
open Repro_heap
open Repro_engine
module Par = Repro_par.Par

exception Unsupported of string

let null = Obj_model.null

type params = {
  name : string;
  lvb_ns : float -> float;
  satb_write_barrier : bool;
  conc_threads : int;
  trigger_free_fraction : float;
  cset_occupancy_max : float;
  min_heap_bytes : int option;
}

let shenandoah_params =
  { name = "Shenandoah";
    lvb_ns = (fun base -> base);
    satb_write_barrier = true;
    conc_threads = 4;
    (* Cycles start early (Shenandoah's adaptive heuristic paces by
       allocation rate): at 2x heaps there is runway; at 1.3x there
       is not, and allocation stalls dominate (Table 1). *)
    trigger_free_fraction = 0.30;
    cset_occupancy_max = 0.6;
    min_heap_bytes = None }

let zgc_params =
  { name = "ZGC";
    (* Coloured pointers make the ZGC load barrier slightly cheaper. *)
    lvb_ns = (fun base -> base *. 0.85);
    (* Non-generational with no SATB assist: this version of ZGC lags
       further behind high allocation rates (§5.1, h2's tail). *)
    satb_write_barrier = false;
    conc_threads = 2;
    trigger_free_fraction = 0.35;
    cset_occupancy_max = 0.6;
    (* This version of ZGC requires a substantial minimum heap (§4) —
       scaled like the benchmark heaps (~1/32 of real sizes). *)
    min_heap_bytes = Some (4 * 1024 * 1024 + 512 * 1024) }

type phase = Idle | Mark | Evac | Update

type t = {
  sim : Sim.t;
  heap : Heap.t;
  roots : int array;
  p : params;
  gc_alloc : Bump_allocator.t;
  gray : Vec.t;
  mutable phase : phase;
  mutable final_mark_ready : bool;
  mutable cleanup_ready : bool;
  mutable cset : int list;
  evac_queue : Vec.t;
  mutable update_work : float;
  (* Statistics. *)
  mutable cycles : int;
  mutable degenerated : int;
  mutable copied_bytes : int;
  mutable stall_ns : float;
  mutable in_collection : bool;
}

let root_ids t =
  Array.fold_left (fun acc r -> if r = null then acc else r :: acc) [] t.roots

let gray_push t id =
  if id <> null && not (Mark_bitset.marked t.heap.marks id) then begin
    Mark_bitset.mark t.heap.marks id;
    Vec.push t.gray id
  end

let scan t id =
  let obj = Obj_model.Registry.find_live t.heap.registry id in
  if obj.Obj_model.id <> null then
    for j = 0 to Obj_model.nfields obj - 1 do
      let r = Obj_model.field obj j in
      if r <> null then gray_push t r
    done

(* --- Pauses ------------------------------------------------------------ *)

let init_mark t =
  if t.phase = Idle && not t.in_collection then begin
    t.in_collection <- true;
    let c = Sim.cost t.sim in
    let tc = Trace_cost.create () in
    t.cycles <- t.cycles + 1;
    Heap.retire_all_allocators t.heap;
    Trace_cost.add_parallel tc ~threads:c.gc_threads
      ~cost_ns:(Float.of_int (Array.length t.roots) *. c.root_scan_ns);
    Mark_bitset.clear t.heap.marks;
    List.iter (gray_push t) (root_ids t);
    t.phase <- Mark;
    t.final_mark_ready <- false;
    Stw_common.pause_of t.sim tc;
    t.in_collection <- false
  end

let final_mark t =
  if t.phase = Mark && not t.in_collection then begin
    t.in_collection <- true;
    let c = Sim.cost t.sim in
    let tc = Trace_cost.create () in
    Heap.retire_all_allocators t.heap;
    (* Packetized BFS finish of the concurrent mark (gray entries are
       already marked): scans emit [k; referent x k] records, the merge
       marks and pushes the next frontier. *)
    let pool = Sim.pool t.sim in
    let remaining = ref 0 in
    Par.drain_rounds pool ~packet:Par.queue_per_packet ~frontier:t.gray
      ~on_round:(fun total -> remaining := total)
      ~scan:(fun id out ->
        let obj = Obj_model.Registry.find_live t.heap.registry id in
        if obj.Obj_model.id = null then Vec.push out (-1)
        else begin
          let kpos = Vec.length out in
          Vec.push out 0;
          for j = 0 to Obj_model.nfields obj - 1 do
            let r = Obj_model.field obj j in
            if r <> null then Vec.push out r
          done;
          Vec.set out kpos (Vec.length out - kpos - 1)
        end)
      ~merge:(fun out next ->
        let i = ref 0 in
        while !i < Vec.length out do
          let k = Vec.get out !i in
          incr i;
          Trace_cost.add tc ~threads:c.gc_threads ~frontier:!remaining
            ~cost_ns:c.trace_obj_ns;
          decr remaining;
          for j = 0 to k - 1 do
            let r = Vec.get out (!i + j) in
            if not (Mark_bitset.marked t.heap.marks r) then begin
              Mark_bitset.mark t.heap.marks r;
              Vec.push next r
            end
          done;
          if k > 0 then i := !i + k
        done);
    t.final_mark_ready <- false;
    (* Select the collection set: sparsest blocks by marked live bytes.
       Liveness sums run in block packets (read-only); target flags and
       cset membership are decided in the ordered merge, which push-
       fronts ascending blocks to reproduce the serial descending cset.
       Reserve membership is a bitset so packets don't pay a per-block
       [Vec.exists]. Reserve blocks are In_use and empty, which makes
       them look like ideal cset picks — but [release_reserve] below
       hands them to the free list, so the mutator would refill them
       mid-cycle and [cleanup] would then clobber their state. *)
    let cfg = t.heap.cfg in
    let reserve_bits = Bytes.make (Heap_config.blocks cfg) '\000' in
    Vec.iter (fun b -> Bytes.set reserve_bits b '\001') t.heap.reserve;
    let cset = ref [] in
    Par.map_spans pool ~total:(Heap_config.blocks cfg)
      ~packet:Par.blocks_per_packet
      ~f:(fun _ ~lo ~len ->
        let out = ref [] in
        for b = lo to lo + len - 1 do
          match Blocks.state t.heap.blocks b with
          | (Blocks.In_use | Blocks.Recyclable)
            when Bytes.get reserve_bits b = '\001' -> ()
          | Blocks.In_use | Blocks.Recyclable ->
            let live = ref 0 in
            let residents = Blocks.residents t.heap.blocks b in
            for k = 0 to Vec.length residents - 1 do
              let id = Vec.get residents k in
              let obj = Obj_model.Registry.find_live t.heap.registry id in
              if
                obj.Obj_model.id <> null
                && Addr.block_of cfg (Obj_model.addr obj) = b
                && Mark_bitset.marked t.heap.marks id
              then live := !live + obj.size
            done;
            out := (b, !live) :: !out
          | Blocks.Free | Blocks.Owned | Blocks.Los_backing -> ()
        done;
        List.rev !out)
      ~merge:(fun _ pairs ->
        List.iter
          (fun (b, live) ->
            Trace_cost.add_parallel tc ~threads:c.gc_threads
              ~cost_ns:c.sweep_line_ns;
            if Float.of_int live
               < t.p.cset_occupancy_max *. Float.of_int cfg.block_bytes
            then begin
              Blocks.set_target t.heap.blocks b true;
              cset := b :: !cset
            end)
          pairs);
    t.cset <- !cset;
    (* Queue every marked resident of the cset for concurrent copying. *)
    Vec.clear t.evac_queue;
    List.iter
      (fun b ->
        Vec.iter
          (fun id -> if Mark_bitset.marked t.heap.marks id then Vec.push t.evac_queue id)
          (Blocks.residents t.heap.blocks b))
      !cset;
    (* Dead large objects are reclaimed at final mark. *)
    Obj_model.Registry.iter
      (fun obj ->
        if Heap.is_los t.heap obj && not (Mark_bitset.marked t.heap.marks obj.id)
        then Heap.free_object t.heap obj)
      t.heap.registry;
    Heap.release_reserve t.heap;
    t.phase <- Evac;
    Sim.set_interference t.sim c.conc_copy_interference;
    Stw_common.pause_of t.sim tc;
    t.in_collection <- false
  end

let cleanup t =
  if t.phase = Update && t.update_work <= 0.0 && not t.in_collection then begin
    t.in_collection <- true;
    let c = Sim.cost t.sim in
    let tc = Trace_cost.create () in
    let cfg = t.heap.cfg in
    Heap.retire_all_allocators t.heap;
    Bump_allocator.retire_all t.gc_alloc;
    (* Cset packets list each block's dead residents as [b; n; id x n]
       (anything still resident is either unmarked — dead — or an
       evacuation failure; only the dead are freed); frees, compaction
       and reclassification happen in the ordered merge. *)
    let cset = Array.of_list t.cset in
    Par.map_spans (Sim.pool t.sim) ~total:(Array.length cset)
      ~packet:Par.blocks_per_packet
      ~f:(fun _ ~lo ~len ->
        let out = Par.take_scratch () in
        for k = lo to lo + len - 1 do
          let b = cset.(k) in
          Vec.push out b;
          let npos = Vec.length out in
          Vec.push out 0;
          let residents = Blocks.residents t.heap.blocks b in
          for r = 0 to Vec.length residents - 1 do
            let id = Vec.get residents r in
            let obj = Obj_model.Registry.find_live t.heap.registry id in
            if
              obj.Obj_model.id <> null
              && Addr.block_of cfg (Obj_model.addr obj) = b
              && not (Mark_bitset.marked t.heap.marks id)
            then Vec.push out id
          done;
          Vec.set out npos (Vec.length out - npos - 1)
        done;
        out)
      ~merge:(fun _ out ->
        let i = ref 0 in
        while !i < Vec.length out do
          let b = Vec.get out !i and n = Vec.get out (!i + 1) in
          i := !i + 2;
          Trace_cost.add_parallel tc ~threads:c.gc_threads
            ~cost_ns:c.sweep_block_ns;
          Blocks.set_target t.heap.blocks b false;
          for j = 0 to n - 1 do
            let obj =
              Obj_model.Registry.find_live t.heap.registry (Vec.get out (!i + j))
            in
            if obj.Obj_model.id <> null then Heap.free_object t.heap obj
          done;
          i := !i + n;
          Blocks.compact t.heap.blocks b ~live:(fun id ->
              let obj = Obj_model.Registry.find_live t.heap.registry id in
              obj.Obj_model.id <> null
              && Addr.block_of cfg (Obj_model.addr obj) = b);
          Blocks.set_young t.heap.blocks b false;
          if Rc_table.block_is_free t.heap.rc cfg b then
            Blocks.set_state t.heap.blocks b Blocks.Free
          else if Rc_table.free_lines_in_block t.heap.rc cfg b > 0 then
            Blocks.set_state t.heap.blocks b Blocks.Recyclable
          else Blocks.set_state t.heap.blocks b Blocks.In_use
        done;
        Par.recycle_scratch out);
    t.cset <- [];
    Heap.rebuild_free_lists t.heap;
    Heap.ensure_reserve t.heap;
    Mark_bitset.clear t.heap.marks;
    Heap.clear_touched t.heap;
    Sim.set_interference t.sim 0.0;
    t.phase <- Idle;
    t.cleanup_ready <- false;
    Stw_common.pause_of t.sim tc;
    t.in_collection <- false
  end

(* --- Concurrent work ---------------------------------------------------- *)

let conc_active t () =
  match t.phase with
  | Mark -> if Vec.is_empty t.gray then 0 else t.p.conc_threads
  | Evac | Update -> t.p.conc_threads
  | Idle -> 0

let conc_run t ~budget_ns =
  let c = Sim.cost t.sim in
  let penalty = 1.0 /. c.conc_efficiency in
  let consumed = ref 0.0 in
  let continue_ = ref true in
  while !continue_ && !consumed < budget_ns do
    match t.phase with
    | Mark ->
      if Vec.is_empty t.gray then begin
        t.final_mark_ready <- true;
        continue_ := false
      end
      else begin
        scan t (Vec.pop t.gray);
        consumed := !consumed +. (c.trace_obj_ns *. penalty)
      end
    | Evac ->
      if Vec.is_empty t.evac_queue then begin
        (* Reference updating visits every live object's fields. *)
        t.update_work <-
          Float.of_int (Obj_model.Registry.count t.heap.registry)
          *. c.trace_obj_ns *. 0.15;
        t.phase <- Update
      end
      else begin
        let id = Vec.pop t.evac_queue in
        let obj = Obj_model.Registry.find_live t.heap.registry id in
        if
          obj.Obj_model.id <> null
          && (not (Heap.is_los t.heap obj))
          && Blocks.target t.heap.blocks
               (Addr.block_of t.heap.cfg (Obj_model.addr obj))
        then begin
          if Heap.evacuate t.heap t.gc_alloc obj then begin
            t.copied_bytes <- t.copied_bytes + obj.size;
            consumed :=
              !consumed +. (c.copy_ns_per_byte *. Float.of_int obj.size *. penalty)
          end
          else consumed := !consumed +. (c.trace_obj_ns *. penalty)
        end;
        consumed := !consumed +. (c.trace_obj_ns *. penalty)
      end
    | Update ->
      if t.update_work <= 0.0 then begin
        t.cleanup_ready <- true;
        continue_ := false
      end
      else begin
        let slice = Float.min t.update_work (budget_ns -. !consumed) in
        let slice = Float.max slice 1.0 in
        t.update_work <- t.update_work -. slice;
        consumed := !consumed +. slice
      end
    | Idle -> continue_ := false
  done;
  !consumed

(* --- Degenerated / full collection -------------------------------------- *)

let full_gc t =
  if not t.in_collection then begin
    t.in_collection <- true;
    let c = Sim.cost t.sim in
    let tc = Trace_cost.create () in
    t.degenerated <- t.degenerated + 1;
    Heap.release_reserve t.heap;
    t.phase <- Idle;
    t.final_mark_ready <- false;
    t.cleanup_ready <- false;
    Stw_common.clear_targets t.heap t.cset;
    t.cset <- [];
    Vec.clear t.gray;
    Vec.clear t.evac_queue;
    Sim.set_interference t.sim 0.0;
    Mark_bitset.clear t.heap.marks;
    Heap.retire_all_allocators t.heap;
    (* Degenerated collections mark, sweep, then slide-compact. *)
    let pool = Sim.pool t.sim in
    ignore (Stw_common.mark_from t.heap tc ~pool ~cost:c ~threads:c.gc_threads
              ~seeds:(fun f -> List.iter f (root_ids t)) ~on_visit:(fun _ -> ()));
    ignore (Stw_common.sweep_unmarked t.heap tc ~pool ~cost:c ~threads:c.gc_threads);
    t.copied_bytes <-
      t.copied_bytes
      + Stw_common.compact t.heap tc ~cost:c ~threads:c.gc_threads
          ~gc_alloc:t.gc_alloc;
    Mark_bitset.clear t.heap.marks;
    Heap.clear_touched t.heap;
    Heap.ensure_reserve t.heap;
    Stw_common.pause_of t.sim tc;
    t.in_collection <- false
  end

let run_transitions t =
  (* Phase-completion conditions are re-derived here: when a phase's work
     ran dry, [conc_active] drops to zero and [conc_run] stops being
     called, so the ready flags cannot be the only path forward. *)
  if t.phase = Mark && Vec.is_empty t.gray then t.final_mark_ready <- true;
  if t.phase = Update && t.update_work <= 0.0 then t.cleanup_ready <- true;
  if t.final_mark_ready then final_mark t;
  if t.cleanup_ready then cleanup t

(* Allocation stall: the mutator waits while the concurrent cycle frees
   space — this, not pause time, is where the cost of outrunning a
   concurrent evacuating collector lands. *)
let alloc_stall t =
  if t.phase = Idle then init_mark t;
  let slice = 200_000.0 in
  let tries = ref 0 in
  while Heap.available_blocks t.heap = 0 && t.phase <> Idle && !tries < 5_000 do
    incr tries;
    let target = Sim.now t.sim +. slice in
    t.stall_ns <- t.stall_ns +. slice;
    Sim.advance_idle t.sim ~until:target ~conc_threads:(conc_active t ())
      ~conc_run:(fun ~budget_ns -> conc_run t ~budget_ns);
    run_transitions t
  done

(* The degradation ladder. [Young]: stall on concurrent-cycle progress
   (the collector's routine response to allocation failure). [Full] and
   [Emergency]: the degenerated STW full collection — large objects need
   whole free blocks, so it also compacts. *)
let collect_for_alloc t = function
  | Collector.Young -> alloc_stall t
  | Collector.Full | Collector.Emergency -> full_gc t

(* --- Mutator hooks ------------------------------------------------------- *)

let on_write t (src : Obj_model.t) field _new_ref =
  if t.phase = Mark then begin
    let old = Obj_model.field src field in
    if old <> null then begin
      if t.p.satb_write_barrier then
        Sim.charge_mutator t.sim (Sim.cost t.sim).satb_wb_ns;
      gray_push t old
    end
  end

let on_alloc t (obj : Obj_model.t) =
  Heap.pin t.heap obj;
  (* Allocate black during a cycle: new objects are implicitly live. *)
  if t.phase <> Idle then Mark_bitset.mark t.heap.marks obj.id

let free_fraction t =
  Float.of_int (Blocks.count_state t.heap.blocks Blocks.Free)
  /. Float.of_int (Heap_config.blocks t.heap.cfg)

let poll t () =
  run_transitions t;
  if t.phase = Idle && free_fraction t < t.p.trigger_free_fraction then init_mark t

let factory p : Collector.factory =
 fun sim heap ~roots ->
  (match p.min_heap_bytes with
  | Some min when heap.Heap.cfg.heap_bytes < min ->
    raise
      (Unsupported
         (Printf.sprintf "%s requires at least %d MB of heap" p.name
            (min / 1024 / 1024)))
  | Some _ | None -> ());
  let t =
    { sim;
      heap;
      roots;
      p;
      gc_alloc = Heap.make_allocator heap;
      gray = Vec.create ~capacity:256 ();
      phase = Idle;
      final_mark_ready = false;
      cleanup_ready = false;
      cset = [];
      evac_queue = Vec.create ~capacity:256 ();
      update_work = 0.0;
      cycles = 0;
      degenerated = 0;
      copied_bytes = 0;
      stall_ns = 0.0;
      in_collection = false }
  in
  Heap.ensure_reserve heap;
  let c = Sim.cost sim in
  { Collector.name = p.name;
    on_alloc = on_alloc t;
    on_write = on_write t;
    write_extra_ns = (if p.satb_write_barrier then c.wb_fast_ns else 0.0);
    read_extra_ns = p.lvb_ns c.lvb_ns;
    poll = poll t;
    collect_for_alloc = collect_for_alloc t;
    conc_active = conc_active t;
    conc_run = (fun ~budget_ns -> conc_run t ~budget_ns);
    conc_backlog = (fun () -> 0);
    on_finish = (fun () -> Sim.set_interference t.sim 0.0);
    stats =
      (fun () ->
        [ ("cycles", Float.of_int t.cycles);
          ("degenerated", Float.of_int t.degenerated);
          ("copied_bytes", Float.of_int t.copied_bytes);
          ("stall_ns", t.stall_ns) ]);
    introspect =
      { Collector.no_introspection with
        trace_active = (fun () -> t.phase <> Idle) } }

let shenandoah = factory shenandoah_params
let zgc = factory zgc_params
