(** Shared machinery for the tracing baseline collectors (§2.5).

    All tracing collectors pin new objects in the RC table (so the Immix
    line metadata stays meaningful for allocation), mark with the heap's
    shared bitset, and reclaim by sweeping or evacuating. Trace costs are
    frontier-limited ({!Repro_engine.Trace_cost}), which is what makes a
    long singly-linked list a pathology for this whole collector family
    but not for reference counting. *)

(** [mark_from heap tc ~pool ~threads ~seeds ~on_visit] marks everything
    reachable from the root set, calling [on_visit] exactly once per
    object when it is first reached (before its children are pushed —
    evacuation hooks run here). [seeds] is an iterator over the root ids
    (e.g. [fun f -> Vec.iter f roots]) so per-pause callers need not
    materialise a root list. The trace runs breadth-first in work packets
    on [pool]; [on_visit], marking and frontier pushes happen in the
    ordered merge, so the visit order is identical for every lane count.
    Returns the number of objects marked. Marks are {b not} cleared. *)
val mark_from :
  Repro_heap.Heap.t ->
  Repro_engine.Trace_cost.t ->
  pool:Repro_par.Par.Pool.t ->
  cost:Repro_engine.Cost_model.t ->
  threads:int ->
  seeds:((int -> unit) -> unit) ->
  on_visit:(Repro_heap.Obj_model.t -> unit) ->
  int

(** [sweep_unmarked heap tc ~pool ~threads] frees every unmarked object
    (large objects included), reclassifies every data block from the RC
    table, rebuilds the free lists, and returns the freed byte count.
    Registry-slot packets find the dead; block packets compact and
    classify. Allocators must have been retired. *)
val sweep_unmarked :
  Repro_heap.Heap.t ->
  Repro_engine.Trace_cost.t ->
  pool:Repro_par.Par.Pool.t ->
  cost:Repro_engine.Cost_model.t ->
  threads:int ->
  int

(** [select_fragmented heap ~pool ~max_blocks ~occupancy_max] lists the
    lowest-occupancy data blocks (under [occupancy_max] of a block, live
    bytes ascending) and flags them as evacuation targets. *)
val select_fragmented :
  Repro_heap.Heap.t ->
  pool:Repro_par.Par.Pool.t ->
  max_blocks:int ->
  occupancy_max:float ->
  int list

(** [clear_targets heap targets] unflags an evacuation set. *)
val clear_targets : Repro_heap.Heap.t -> int list -> unit

(** [compact heap tc ~cost ~threads ~gc_alloc] is the guaranteed-progress
    compaction behind every degenerate/full collection: repeatedly select
    the sparsest data blocks whose live bytes fit in the currently free
    block capacity, evacuate them completely, and sweep them back to the
    free list — each round's emptied blocks fund the next. Dead objects
    must already have been swept ({!sweep_unmarked}). Returns the bytes
    copied. *)
val compact :
  Repro_heap.Heap.t ->
  Repro_engine.Trace_cost.t ->
  cost:Repro_engine.Cost_model.t ->
  threads:int ->
  gc_alloc:Repro_heap.Bump_allocator.t ->
  int

(** [pause_of heap sim tc] converts accumulated trace cost into a
    recorded stop-the-world pause. *)
val pause_of : Repro_engine.Sim.t -> Repro_engine.Trace_cost.t -> unit
