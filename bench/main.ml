(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5) and times the core mechanisms with Bechamel.

   Usage:
     dune exec bench/main.exe              -- all experiments + microbenches
     dune exec bench/main.exe table6       -- one experiment
     dune exec bench/main.exe micro        -- only the Bechamel microbenches
     dune exec bench/main.exe --scale 0.5  -- scale workloads down/up

   One Bechamel [Test.make] exists per paper table/figure (timing the
   generator end to end on a reduced scale) plus microbenchmarks of the
   hot mechanisms (allocation, write barrier, RC table, histogram). The
   full paper-style tables are printed by the experiment generators
   themselves. *)

open Bechamel
open Toolkit

let experiment_scales =
  (* Heavy sweeps run at reduced scale by default so the whole bench
     finishes in minutes; single-table runs use the full scale. *)
  [ ("table1", 1.0); ("table3", 1.0); ("table4", 1.0); ("figure5", 1.0);
    ("table5", 0.5); ("table6", 1.0); ("table7", 0.5); ("figure7", 0.3);
    ("sensitivity", 0.3) ]

let iterations_of = function
  | "table1" | "table4" | "figure5" -> 3
  | _ -> 1

(* --- Bechamel microbenches of core mechanisms --------------------------- *)

let micro_tests () =
  let open Repro_heap in
  let cfg = Heap_config.make ~heap_bytes:(1024 * 1024) () in
  let rc = Rc_table.create cfg in
  let hist = Repro_util.Histogram.create () in
  let prng = Repro_util.Prng.create 1 in
  let alloc_heap = Heap.create cfg in
  let allocator = Heap.make_allocator alloc_heap in
  let alloc_count = ref 0 in
  (* Registry churn: register/free over a recycled slot (the steady-state
     allocation path), plus lookup and field metadata on a resident set. *)
  let reg = Obj_model.Registry.create () in
  let resident =
    Array.init 256 (fun i ->
        Obj_model.Registry.register reg ~size:64 ~nfields:4 ~addr:(i * 64)
          ~birth_epoch:0)
  in
  (* Chain the residents so reachable_from has a 256-deep walk. *)
  Array.iteri
    (fun i o ->
      if i + 1 < Array.length resident then
        Obj_model.set_field o 0 resident.(i + 1).Obj_model.id)
    resident;
  let reach_root = resident.(0).Obj_model.id in
  let wide =
    Obj_model.Registry.register reg ~size:1024 ~nfields:100 ~addr:(257 * 64)
      ~birth_epoch:0
  in
  let lookup_idx = ref 0 in
  [ Test.make ~name:"registry register+free (recycled slot)"
      (Staged.stage (fun () ->
           let o =
             Obj_model.Registry.register reg ~size:64 ~nfields:4
               ~addr:(260 * 64) ~birth_epoch:0
           in
           Obj_model.Registry.free reg o));
    Test.make ~name:"registry get (live id)"
      (Staged.stage (fun () ->
           lookup_idx := (!lookup_idx + 1) land 255;
           ignore
             (Obj_model.Registry.get reg resident.(!lookup_idx).Obj_model.id)));
    Test.make ~name:"field_logged/set_field_logged (inline word)"
      (Staged.stage (fun () ->
           Obj_model.set_field_logged resident.(7) 2 false;
           ignore (Obj_model.field_logged resident.(7) 2);
           Obj_model.set_field_logged resident.(7) 2 true));
    Test.make ~name:"field_logged/set_field_logged (wide, 100 fields)"
      (Staged.stage (fun () ->
           Obj_model.set_field_logged wide 97 false;
           ignore (Obj_model.field_logged wide 97);
           Obj_model.set_field_logged wide 97 true));
    Test.make ~name:"reachable_from (256-deep chain)"
      (Staged.stage (fun () ->
           ignore (Obj_model.Registry.reachable_from reg [ reach_root ])));
    Test.make ~name:"rc_table inc/dec"
      (Staged.stage (fun () ->
           ignore (Rc_table.inc rc cfg 64);
           ignore (Rc_table.dec rc cfg 64)));
    Test.make ~name:"rc_table line_is_free"
      (Staged.stage (fun () -> ignore (Rc_table.line_is_free rc cfg 3)));
    Test.make ~name:"histogram record"
      (Staged.stage (fun () -> Repro_util.Histogram.record hist 123_456));
    Test.make ~name:"prng next"
      (Staged.stage (fun () -> ignore (Repro_util.Prng.next prng)));
    Test.make ~name:"bump alloc 64B (amortized)"
      (Staged.stage (fun () ->
           match Bump_allocator.alloc allocator ~size:64 with
           | Some _ ->
             incr alloc_count;
             if !alloc_count mod 8192 = 0 then begin
               (* Recycle the heap so the loop can run indefinitely. *)
               Bump_allocator.retire_all allocator;
               Repro_heap.Heap.rebuild_free_lists alloc_heap;
               for b = 0 to Heap_config.blocks cfg - 1 do
                 Rc_table.clear_range rc cfg
                   ~addr:(Addr.block_start cfg b) ~size:cfg.block_bytes
               done;
               let fresh = Heap.create cfg in
               ignore fresh
             end
           | None ->
             Bump_allocator.retire_all allocator;
             Heap.rebuild_free_lists alloc_heap)) ]

(* One Bechamel test per table/figure: time the generator itself at a
   small scale (the printed numbers come from the full-scale run below). *)
let experiment_tests () =
  List.map
    (fun name ->
      Test.make ~name:("experiment:" ^ name)
        (Staged.stage (fun () ->
             match Repro_harness.Experiments.by_name name with
             | Some f ->
               ignore (f { Repro_harness.Experiments.scale = 0.02; iterations = 1; seed = 7 })
             | None -> assert false)))
    Repro_harness.Experiments.names

let run_bechamel tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"lxr" tests) in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun _ tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
        tbl)
    results

let () =
  let args = Array.to_list Sys.argv in
  let scale_override =
    let rec find = function
      | "--scale" :: v :: _ -> Some (float_of_string v)
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let wanted =
    List.filter
      (fun a -> a <> "--scale" && (not (String.length a > 0 && a.[0] = '-'))
                && a <> Sys.argv.(0))
      (List.tl args)
    |> function
    | [] -> "all" :: []
    | l -> List.filter (fun a -> (try ignore (float_of_string a); false with _ -> true)) l
  in
  let run_experiment name =
    match Repro_harness.Experiments.by_name name with
    | None -> Printf.eprintf "unknown experiment %s\n" name
    | Some f ->
      let scale =
        match scale_override with
        | Some s -> s
        | None -> ( try List.assoc name experiment_scales with Not_found -> 1.0)
      in
      let t0 = Sys.time () in
      let out =
        f { Repro_harness.Experiments.scale; iterations = iterations_of name; seed = 42 }
      in
      Printf.printf "%s\n(generated in %.1fs host time at scale %.2f)\n\n%!" out
        (Sys.time () -. t0) scale
  in
  List.iter
    (fun sel ->
      match sel with
      | "all" ->
        List.iter run_experiment Repro_harness.Experiments.names;
        print_endline "== Bechamel microbenchmarks ==";
        run_bechamel (micro_tests ());
        print_endline "== Bechamel per-experiment timings (scale 0.02) ==";
        run_bechamel (experiment_tests ())
      | "micro" -> run_bechamel (micro_tests ())
      | name -> run_experiment name)
    wanted
