#!/bin/sh
# Wall-clock benchmark gate: fixed-seed end-to-end workloads, JSON output.
#
#   scripts/bench.sh [--smoke] [--out FILE] [--reps N] [--lanes PAT[,PAT...]]
#
# Runs the CI trace corpus through the replay loop (the hot simulator
# path: every alloc / write / read / work event re-executed against a
# fresh heap per rep) for each of lxr/g1/shenandoah/journal_rc at
# --gc-threads=1 and =4, plus one fleet smoke and wall-clock lanes for
# the two controller adversaries (fragger/phaser, static LXR vs the PID
# controller), and emits BENCH_PR8.json. Per lane we
# report the min and median of the per-rep CPU times (the min is the
# headline: identical deterministic work per rep, so the fastest rep is
# the least-noise estimate on a shared host). The gc-threads dimension
# is the scaling axis for EXPERIMENTS.md; results are bit-identical
# across it by construction, only host CPU may differ.
#
# --lanes filters to lanes whose "trace:collector" id contains one of
# the comma-separated patterns (e.g. --lanes=lusearch:lxr or
# --lanes=lxr).
#
# --smoke: tiny rep count; asserts the JSON is well-formed and the
# measured rates are sane and non-zero (wired into scripts/ci.sh).
set -eu
cd "$(dirname "$0")/.."

MODE=full
OUT=BENCH_PR8.json
REPS=30
LANE_FILTER=
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) MODE=smoke; REPS=2 ;;
    --out) shift; OUT="$1" ;;
    --reps) shift; REPS="$1" ;;
    --lanes) shift; LANE_FILTER="$1" ;;
    --lanes=*) LANE_FILTER="${1#--lanes=}" ;;
    *) echo "usage: scripts/bench.sh [--smoke] [--out FILE] [--reps N] [--lanes PAT[,PAT...]]" >&2; exit 2 ;;
  esac
  shift
done

COLLECTORS="lxr g1 shenandoah journal_rc"
TRACES="test/corpus/luindex.lxrtrace test/corpus/lusearch.lxrtrace test/corpus/xalan.lxrtrace"
GC_THREADS="1 4"

# lane_wanted "lusearch:lxr" -> 0 (run) / 1 (skip)
lane_wanted() {
  [ -z "$LANE_FILTER" ] && return 0
  _id="$1"
  _rest="$LANE_FILTER"
  while [ -n "$_rest" ]; do
    case "$_rest" in
      *,*) _pat="${_rest%%,*}"; _rest="${_rest#*,}" ;;
      *) _pat="$_rest"; _rest= ;;
    esac
    case "$_id" in *"$_pat"*) return 0 ;; esac
  done
  return 1
}

echo "== bench: release build =="
dune build --profile release bin/lxr_trace.exe bin/lxr_fleet.exe \
  bin/lxr_sim.exe
TRACE_EXE=_build/default/bin/lxr_trace.exe
FLEET_EXE=_build/default/bin/lxr_fleet.exe
SIM_EXE=_build/default/bin/lxr_sim.exe

echo "== bench: corpus replay loop (reps=$REPS, gc-threads: $GC_THREADS) =="
LANES=/tmp/bench_lanes.$$
: > "$LANES"
for t in $TRACES; do
  tname=$(basename "$t" .lxrtrace)
  for c in $COLLECTORS; do
    lane_wanted "$tname:$c" || continue
    for g in $GC_THREADS; do
      "$TRACE_EXE" replay "$t" -c "$c" --bench-reps "$REPS" \
        --gc-threads="$g" | tee -a "$LANES"
    done
  done
done

echo "== bench: fleet smoke (shared pool, gc-threads=2) =="
FLEET_N=2000
[ "$MODE" = smoke ] && FLEET_N=300
T0=$(date +%s.%N)
"$FLEET_EXE" run -b lusearch -c lxr -p gc-aware -k 2 -n "$FLEET_N" \
  --domains=1 --gc-threads=2 > /dev/null
T1=$(date +%s.%N)
FLEET_WALL=$(awk "BEGIN { printf \"%.3f\", $T1 - $T0 }")

echo "== bench: adversary workloads (static vs pid controller) =="
ADV_SCALE=1.0
[ "$MODE" = smoke ] && ADV_SCALE=0.2
ADV_JSON=
for w in fragger phaser; do
  for ctl in static pid; do
    lane_wanted "$w:$ctl" || continue
    set -- run -b "$w" -c lxr -s "$ADV_SCALE"
    [ "$ctl" = pid ] && set -- "$@" --controller=pid
    T0=$(date +%s.%N)
    "$SIM_EXE" "$@" > /dev/null
    T1=$(date +%s.%N)
    W=$(awk "BEGIN { printf \"%.3f\", $T1 - $T0 }")
    ADV_JSON="$ADV_JSON${ADV_JSON:+,\n}    { \"workload\": \"$w\", \"controller\": \"$ctl\", \"scale\": $ADV_SCALE, \"host_wall_s\": $W }"
    echo "bench: adversary $w/$ctl: $W s host wall"
  done
done

GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

awk -v mode="$MODE" -v reps="$REPS" -v rev="$GIT_REV" \
    -v fleet_wall="$FLEET_WALL" -v fleet_n="$FLEET_N" -v out="$OUT" \
    -v adv="$ADV_JSON" '
  /^BENCH / {
    delete v
    for (i = 2; i <= NF; i++) {
      split($i, kv, "=")
      v[kv[1]] = kv[2]
    }
    # Per-lane min / median over the per-rep CPU times.
    n = split(v["rep_cpu_s"], r, ",")
    for (i = 2; i <= n; i++) {          # insertion sort, n is tiny
      x = r[i] + 0
      for (j = i - 1; j >= 1 && r[j] + 0 > x; j--) r[j + 1] = r[j]
      r[j + 1] = x
    }
    mn = r[1] + 0
    md = (n % 2) ? r[(n + 1) / 2] + 0 : (r[n / 2] + r[n / 2 + 1]) / 2
    g = v["gc_threads"]
    ev = v["events"] + 0
    ape = v["alloc_bytes"] / (ev * v["reps"])
    events[g] += ev
    mincpu[g] += mn
    medcpu[g] += md
    bytes[g] += v["alloc_bytes"]
    totev[g] += ev * v["reps"]
    if (!(g in seen_g)) { seen_g[g] = 1; gs[++ng] = g + 0 }
    lanes = lanes sprintf("%s    { \"trace\": \"%s\", \"collector\": \"%s\", \"gc_threads\": %d, \"events\": %d, \"reps\": %d, \"cpu_s_min\": %.6f, \"cpu_s_median\": %.6f, \"events_per_sec\": %.0f, \"host_alloc_bytes_per_event\": %.1f }",
                          (lanes == "" ? "" : ",\n"), v["trace"], v["collector"],
                          g, ev, v["reps"], mn, md, ev / mn, ape)
  }
  function agg(g, label) {
    printf "  \"%s\": {\n", label > out
    printf "    \"gc_threads\": %d,\n", g > out
    printf "    \"events_replayed\": %d,\n", events[g] > out
    printf "    \"cpu_s_min\": %.3f,\n", mincpu[g] > out
    printf "    \"cpu_s_median\": %.3f,\n", medcpu[g] > out
    printf "    \"events_per_sec\": %.0f,\n", events[g] / mincpu[g] > out
    printf "    \"host_alloc_bytes_per_event\": %.1f\n", bytes[g] / totev[g] > out
    printf "  },\n" > out
  }
  END {
    if (ng == 0) { print "bench: no lanes measured" > "/dev/stderr"; exit 1 }
    for (i = 1; i <= ng; i++)          # ascending gc_threads
      for (j = i + 1; j <= ng; j++)
        if (gs[j] < gs[i]) { t = gs[i]; gs[i] = gs[j]; gs[j] = t }
    glo = gs[1]; ghi = gs[ng]
    printf "{\n" > out
    printf "  \"bench\": \"distilled-cost accounting + policy controllers (PR 8)\",\n" > out
    printf "  \"mode\": \"%s\",\n", mode > out
    printf "  \"git_rev\": \"%s\",\n", rev > out
    printf "  \"reps_per_lane\": %d,\n", reps > out
    agg(ghi, "corpus_replay")
    if (glo != ghi) agg(glo, "corpus_replay_1thread")
    printf "  \"lanes\": [\n%s\n  ],\n", lanes > out
    if (adv != "") {
      gsub(/\\n/, "\n", adv)
      printf "  \"adversaries\": [\n%s\n  ],\n", adv > out
    }
    printf "  \"fleet_smoke\": { \"requests\": %d, \"gc_threads\": 2, \"wall_s\": %s }\n", fleet_n, fleet_wall > out
    printf "}\n" > out
    for (i = 1; i <= ng; i++)
      printf "bench: gc-threads=%d: %d events, min-cpu %.3f s -> %.0f events/sec, %.1f alloc B/event\n",
             gs[i], events[gs[i]], mincpu[gs[i]],
             events[gs[i]] / mincpu[gs[i]], bytes[gs[i]] / totev[gs[i]]
  }
' "$LANES"
rm -f "$LANES"

echo "== bench: validating $OUT =="
# Well-formedness + sanity without a JSON tool dependency: the rates
# must parse as positive numbers and the file must close its braces.
EPS=$(awk -F'[:,]' '/"events_per_sec"/ { print $2 + 0; exit }' "$OUT")
APE=$(awk -F'[:,]' '/"host_alloc_bytes_per_event"/ { print $2 + 0; exit }' "$OUT")
BRACES=$(awk 'BEGIN { d = 0 } { for (i = 1; i <= length($0); i++) { ch = substr($0, i, 1); if (ch == "{") d++; if (ch == "}") d-- } } END { print d }' "$OUT")
if [ "$BRACES" != 0 ]; then
  echo "bench: $OUT braces unbalanced" >&2; exit 1
fi
if ! awk "BEGIN { exit !($EPS > 0) }"; then
  echo "bench: events_per_sec not positive: $EPS" >&2; exit 1
fi
if ! awk "BEGIN { exit !($APE >= 0) }"; then
  echo "bench: host_alloc_bytes_per_event bogus: $APE" >&2; exit 1
fi
echo "bench ok: $OUT (events/sec=$EPS, alloc B/event=$APE)"
