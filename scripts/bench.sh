#!/bin/sh
# Wall-clock benchmark gate: fixed-seed end-to-end workloads, JSON output.
#
#   scripts/bench.sh [--smoke] [--out FILE] [--reps N]
#
# Runs the CI trace corpus through the replay loop (the hot simulator
# path: every alloc / write / read / work event re-executed against a
# fresh heap per rep) for each of lxr/g1/shenandoah, plus one fleet
# smoke, and emits BENCH_PR4.json with simulated-events/sec and host
# allocation bytes per simulated event. The same script measured the
# pre-refactor baseline, so the numbers are directly comparable across
# PRs (see EXPERIMENTS.md "Flat metadata speedup").
#
# --smoke: tiny rep count; asserts the JSON is well-formed and the
# measured rates are sane and non-zero (wired into scripts/ci.sh).
set -eu
cd "$(dirname "$0")/.."

MODE=full
OUT=BENCH_PR4.json
REPS=30
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) MODE=smoke; REPS=2 ;;
    --out) shift; OUT="$1" ;;
    --reps) shift; REPS="$1" ;;
    *) echo "usage: scripts/bench.sh [--smoke] [--out FILE] [--reps N]" >&2; exit 2 ;;
  esac
  shift
done

COLLECTORS="lxr g1 shenandoah"
TRACES="test/corpus/luindex.lxrtrace test/corpus/lusearch.lxrtrace test/corpus/xalan.lxrtrace"

echo "== bench: release build =="
dune build --profile release bin/lxr_trace.exe bin/lxr_fleet.exe
TRACE_EXE=_build/default/bin/lxr_trace.exe
FLEET_EXE=_build/default/bin/lxr_fleet.exe

echo "== bench: corpus replay loop (reps=$REPS) =="
LANES=/tmp/bench_lanes.$$
: > "$LANES"
for t in $TRACES; do
  for c in $COLLECTORS; do
    "$TRACE_EXE" replay "$t" -c "$c" --bench-reps "$REPS" | tee -a "$LANES"
  done
done

echo "== bench: fleet smoke =="
FLEET_N=2000
[ "$MODE" = smoke ] && FLEET_N=300
T0=$(date +%s.%N)
"$FLEET_EXE" run -b lusearch -c lxr -p gc-aware -k 2 -n "$FLEET_N" \
  --domains=1 > /dev/null
T1=$(date +%s.%N)
FLEET_WALL=$(awk "BEGIN { printf \"%.3f\", $T1 - $T0 }")

GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

awk -v mode="$MODE" -v reps="$REPS" -v rev="$GIT_REV" \
    -v fleet_wall="$FLEET_WALL" -v fleet_n="$FLEET_N" -v out="$OUT" '
  /^BENCH / {
    for (i = 2; i <= NF; i++) {
      split($i, kv, "=")
      v[kv[1]] = kv[2]
    }
    ev = v["events"] * v["reps"]
    events += ev
    cpu += v["cpu_s"]
    bytes += v["alloc_bytes"]
    lanes = lanes sprintf("%s    { \"trace\": \"%s\", \"collector\": \"%s\", \"events\": %d, \"cpu_s\": %s, \"events_per_sec\": %.0f }",
                          (lanes == "" ? "" : ",\n"), v["trace"], v["collector"],
                          v["events"], v["cpu_s"], ev / v["cpu_s"])
  }
  END {
    if (events == 0 || cpu <= 0) { print "bench: no lanes measured" > "/dev/stderr"; exit 1 }
    printf "{\n" > out
    printf "  \"bench\": \"flat heap metadata (PR 4)\",\n" > out
    printf "  \"mode\": \"%s\",\n", mode > out
    printf "  \"git_rev\": \"%s\",\n", rev > out
    printf "  \"reps_per_lane\": %d,\n", reps > out
    printf "  \"corpus_replay\": {\n" > out
    printf "    \"events_replayed\": %d,\n", events > out
    printf "    \"cpu_s\": %.3f,\n", cpu > out
    printf "    \"events_per_sec\": %.0f,\n", events / cpu > out
    printf "    \"host_alloc_bytes_per_event\": %.1f\n", bytes / events > out
    printf "  },\n" > out
    printf "  \"lanes\": [\n%s\n  ],\n", lanes > out
    printf "  \"fleet_smoke\": { \"requests\": %d, \"wall_s\": %s }\n", fleet_n, fleet_wall > out
    printf "}\n" > out
    printf "bench: %d events in %.3f cpu-s -> %.0f events/sec, %.1f alloc B/event\n",
           events, cpu, events / cpu, bytes / events
  }
' "$LANES"
rm -f "$LANES"

echo "== bench: validating $OUT =="
# Well-formedness + sanity without a JSON tool dependency: the rates
# must parse as positive numbers and the file must close its braces.
EPS=$(awk -F'[:,]' '/"events_per_sec"/ { print $2 + 0; exit }' "$OUT")
APE=$(awk -F'[:,]' '/"host_alloc_bytes_per_event"/ { print $2 + 0; exit }' "$OUT")
BRACES=$(awk 'BEGIN { d = 0 } { for (i = 1; i <= length($0); i++) { ch = substr($0, i, 1); if (ch == "{") d++; if (ch == "}") d-- } } END { print d }' "$OUT")
if [ "$BRACES" != 0 ]; then
  echo "bench: $OUT braces unbalanced" >&2; exit 1
fi
if ! awk "BEGIN { exit !($EPS > 0) }"; then
  echo "bench: events_per_sec not positive: $EPS" >&2; exit 1
fi
if ! awk "BEGIN { exit !($APE >= 0) }"; then
  echo "bench: host_alloc_bytes_per_event bogus: $APE" >&2; exit 1
fi
echo "bench ok: $OUT (events/sec=$EPS, alloc B/event=$APE)"
