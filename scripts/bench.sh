#!/bin/sh
# Wall-clock benchmark gate: fixed-seed end-to-end workloads, JSON output.
#
#   scripts/bench.sh [--smoke] [--out FILE] [--reps N] [--lanes PAT[,PAT...]]
#
# Runs the CI trace corpus through the replay loop (the hot simulator
# path: every alloc / write / read / work event re-executed against a
# fresh heap per rep) for each of lxr/g1/shenandoah/journal_rc at
# --gc-threads=1 and =4, a decode-only lane per trace (byte parsing
# into the preparsed event ring, no heap), plus one fleet smoke and
# wall-clock lanes for the two controller adversaries (fragger/phaser,
# static LXR vs the PID controller), and emits BENCH_PR10.json.
#
# Each replay lane reports two measurements:
#   cpu_s_* / host_alloc_bytes_per_event — full Runner.replay per rep
#     (engine construction included; comparable with BENCH_PR8.json);
#   run_* — the replay loop alone on a pre-built engine (steady state;
#     this is what the zero-alloc hot-path work targets and what the
#     alloc gate below is checked against).
# Per lane we take the min and median of the per-rep CPU times (the min
# is the headline: identical deterministic work per rep, so the fastest
# rep is the least-noise estimate on a shared host). The gc-threads
# dimension is the scaling axis for EXPERIMENTS.md; results are
# bit-identical across it by construction, only host CPU may differ.
#
# Alloc gate: the run fails if the steady-state corpus aggregate
# exceeds ALLOC_GATE_B_PER_EVENT host-allocated bytes per replayed
# event. The issue's target was 8 B/event; the measured floor is the
# per-allocation registry cost (one handle record + one field array per
# Alloc event — semantic state, not loop churn), which puts the corpus
# aggregate just above that target, so the gate is set where it guards
# the achieved steady state against regressions (the pre-PR10 boxed
# decode path measured 83.6 B/event). See DESIGN.md "Replay hot path".
#
# --lanes filters to lanes whose "trace:collector" id contains one of
# the comma-separated patterns (e.g. --lanes=lusearch:lxr or
# --lanes=lxr).
#
# --smoke: tiny rep count; asserts the JSON is well-formed and the
# measured rates are sane and non-zero (wired into scripts/ci.sh).
set -eu
cd "$(dirname "$0")/.."

MODE=full
OUT=BENCH_PR10.json
REPS=30
LANE_FILTER=
ALLOC_GATE_B_PER_EVENT=24
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) MODE=smoke; REPS=2 ;;
    --out) shift; OUT="$1" ;;
    --reps) shift; REPS="$1" ;;
    --lanes) shift; LANE_FILTER="$1" ;;
    --lanes=*) LANE_FILTER="${1#--lanes=}" ;;
    *) echo "usage: scripts/bench.sh [--smoke] [--out FILE] [--reps N] [--lanes PAT[,PAT...]]" >&2; exit 2 ;;
  esac
  shift
done

COLLECTORS="lxr g1 shenandoah journal_rc"
TRACES="test/corpus/luindex.lxrtrace test/corpus/lusearch.lxrtrace test/corpus/xalan.lxrtrace"
GC_THREADS="1 4"

# lane_wanted "lusearch:lxr" -> 0 (run) / 1 (skip)
lane_wanted() {
  [ -z "$LANE_FILTER" ] && return 0
  _id="$1"
  _rest="$LANE_FILTER"
  while [ -n "$_rest" ]; do
    case "$_rest" in
      *,*) _pat="${_rest%%,*}"; _rest="${_rest#*,}" ;;
      *) _pat="$_rest"; _rest= ;;
    esac
    case "$_id" in *"$_pat"*) return 0 ;; esac
  done
  return 1
}

echo "== bench: release build =="
dune build --profile release bin/lxr_trace.exe bin/lxr_fleet.exe \
  bin/lxr_sim.exe
TRACE_EXE=_build/default/bin/lxr_trace.exe
FLEET_EXE=_build/default/bin/lxr_fleet.exe
SIM_EXE=_build/default/bin/lxr_sim.exe

echo "== bench: corpus replay loop (reps=$REPS, gc-threads: $GC_THREADS) =="
LANES=/tmp/bench_lanes.$$
: > "$LANES"
for t in $TRACES; do
  tname=$(basename "$t" .lxrtrace)
  for c in $COLLECTORS; do
    lane_wanted "$tname:$c" || continue
    for g in $GC_THREADS; do
      "$TRACE_EXE" replay "$t" -c "$c" --bench-reps "$REPS" \
        --gc-threads="$g" | tee -a "$LANES"
    done
  done
done

echo "== bench: decode-only lane (byte stream -> event ring, reps=$REPS) =="
for t in $TRACES; do
  tname=$(basename "$t" .lxrtrace)
  lane_wanted "$tname:decode" || continue
  "$TRACE_EXE" stat "$t" --bench-decode "$REPS" | tee -a "$LANES"
done

echo "== bench: fleet smoke (shared pool, gc-threads=2) =="
FLEET_N=2000
[ "$MODE" = smoke ] && FLEET_N=300
T0=$(date +%s.%N)
"$FLEET_EXE" run -b lusearch -c lxr -p gc-aware -k 2 -n "$FLEET_N" \
  --domains=1 --gc-threads=2 > /dev/null
T1=$(date +%s.%N)
FLEET_WALL=$(awk "BEGIN { printf \"%.3f\", $T1 - $T0 }")

echo "== bench: adversary workloads (static vs pid controller) =="
ADV_SCALE=1.0
[ "$MODE" = smoke ] && ADV_SCALE=0.2
ADV_JSON=
for w in fragger phaser; do
  for ctl in static pid; do
    lane_wanted "$w:$ctl" || continue
    set -- run -b "$w" -c lxr -s "$ADV_SCALE"
    [ "$ctl" = pid ] && set -- "$@" --controller=pid
    T0=$(date +%s.%N)
    "$SIM_EXE" "$@" > /dev/null
    T1=$(date +%s.%N)
    W=$(awk "BEGIN { printf \"%.3f\", $T1 - $T0 }")
    ADV_JSON="$ADV_JSON${ADV_JSON:+,\n}    { \"workload\": \"$w\", \"controller\": \"$ctl\", \"scale\": $ADV_SCALE, \"host_wall_s\": $W }"
    echo "bench: adversary $w/$ctl: $W s host wall"
  done
done

GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
# Prior-PR headline for the speedup field (0 when the file is absent).
PR8_EPS=$(awk -F'[:,]' '/"events_per_sec"/ { print $2 + 0; exit }' \
  BENCH_PR8.json 2>/dev/null || echo 0)

awk -v mode="$MODE" -v reps="$REPS" -v rev="$GIT_REV" \
    -v fleet_wall="$FLEET_WALL" -v fleet_n="$FLEET_N" -v out="$OUT" \
    -v adv="$ADV_JSON" -v pr8_eps="$PR8_EPS" \
    -v gate="$ALLOC_GATE_B_PER_EVENT" '
  # Min / median of a comma-separated rep-time list (insertion sort,
  # n is tiny); results in MN / MD.
  function minmed(s,  rr, n, i, j, x) {
    n = split(s, rr, ",")
    for (i = 2; i <= n; i++) {
      x = rr[i] + 0
      for (j = i - 1; j >= 1 && rr[j] + 0 > x; j--) rr[j + 1] = rr[j]
      rr[j + 1] = x
    }
    MN = rr[1] + 0
    MD = (n % 2) ? rr[(n + 1) / 2] + 0 : (rr[n / 2] + rr[n / 2 + 1]) / 2
  }
  /^BENCH / {
    delete v
    for (i = 2; i <= NF; i++) {
      split($i, kv, "=")
      v[kv[1]] = kv[2]
    }
    minmed(v["rep_cpu_s"]);     mn = MN; md = MD
    minmed(v["run_rep_cpu_s"]); rmn = MN
    g = v["gc_threads"]
    ev = v["events"] + 0
    ape = v["alloc_bytes"] / (ev * v["reps"])
    rape = v["run_alloc_bytes"] / (ev * v["reps"])
    events[g] += ev
    mincpu[g] += mn
    medcpu[g] += md
    runcpu[g] += rmn
    bytes[g] += v["alloc_bytes"]
    runbytes[g] += v["run_alloc_bytes"]
    totev[g] += ev * v["reps"]
    if (!(g in seen_g)) { seen_g[g] = 1; gs[++ng] = g + 0 }
    lanes = lanes sprintf("%s    { \"trace\": \"%s\", \"collector\": \"%s\", \"gc_threads\": %d, \"events\": %d, \"reps\": %d, \"cpu_s_min\": %.6f, \"cpu_s_median\": %.6f, \"events_per_sec\": %.0f, \"host_alloc_bytes_per_event\": %.1f, \"run_cpu_s_min\": %.6f, \"run_events_per_sec\": %.0f, \"run_host_alloc_bytes_per_event\": %.1f }",
                          (lanes == "" ? "" : ",\n"), v["trace"], v["collector"],
                          g, ev, v["reps"], mn, md, ev / mn, ape,
                          rmn, ev / rmn, rape)
  }
  /^DECODE / {
    delete v
    for (i = 2; i <= NF; i++) {
      split($i, kv, "=")
      v[kv[1]] = kv[2]
    }
    ev = v["events"] + 0
    per_rep = v["cpu_s"] / v["reps"]
    dec = dec sprintf("%s    { \"trace\": \"%s\", \"reps\": %d, \"bytes\": %d, \"events\": %d, \"cpu_s_per_rep\": %.6f, \"mb_per_sec\": %.1f, \"events_per_sec\": %.0f, \"host_alloc_bytes_per_event\": %.1f }",
                      (dec == "" ? "" : ",\n"), v["trace"], v["reps"],
                      v["bytes"], ev, per_rep,
                      v["bytes"] / per_rep / 1e6, ev / per_rep,
                      v["alloc_bytes"] / (ev * v["reps"]))
  }
  function agg(g, label) {
    printf "  \"%s\": {\n", label > out
    printf "    \"gc_threads\": %d,\n", g > out
    printf "    \"events_replayed\": %d,\n", events[g] > out
    printf "    \"cpu_s_min\": %.3f,\n", mincpu[g] > out
    printf "    \"cpu_s_median\": %.3f,\n", medcpu[g] > out
    printf "    \"events_per_sec\": %.0f,\n", events[g] / mincpu[g] > out
    printf "    \"host_alloc_bytes_per_event\": %.1f,\n", bytes[g] / totev[g] > out
    printf "    \"run_cpu_s_min\": %.3f,\n", runcpu[g] > out
    printf "    \"run_events_per_sec\": %.0f,\n", events[g] / runcpu[g] > out
    printf "    \"run_host_alloc_bytes_per_event\": %.1f\n", runbytes[g] / totev[g] > out
    printf "  },\n" > out
  }
  END {
    if (ng == 0) { print "bench: no lanes measured" > "/dev/stderr"; exit 1 }
    for (i = 1; i <= ng; i++)          # ascending gc_threads
      for (j = i + 1; j <= ng; j++)
        if (gs[j] < gs[i]) { t = gs[i]; gs[i] = gs[j]; gs[j] = t }
    glo = gs[1]; ghi = gs[ng]
    printf "{\n" > out
    printf "  \"bench\": \"zero-alloc replay hot path: preparsed event ring + specialised loops (PR 10)\",\n" > out
    printf "  \"mode\": \"%s\",\n", mode > out
    printf "  \"git_rev\": \"%s\",\n", rev > out
    printf "  \"reps_per_lane\": %d,\n", reps > out
    agg(ghi, "corpus_replay")
    if (glo != ghi) agg(glo, "corpus_replay_1thread")
    if (pr8_eps > 0)
      printf "  \"speedup_vs_pr8\": %.2f,\n", (events[ghi] / mincpu[ghi]) / pr8_eps > out
    printf "  \"alloc_gate\": { \"issue_target_b_per_event\": 8.0, \"gate_b_per_event\": %.1f, \"measured_steady_state_b_per_event\": %.1f, \"scope\": \"replay loop on a pre-built engine; full-replay figure incl. engine setup is host_alloc_bytes_per_event\" },\n",
           gate, runbytes[ghi] / totev[ghi] > out
    printf "  \"lanes\": [\n%s\n  ],\n", lanes > out
    if (dec != "")
      printf "  \"decode\": [\n%s\n  ],\n", dec > out
    if (adv != "") {
      gsub(/\\n/, "\n", adv)
      printf "  \"adversaries\": [\n%s\n  ],\n", adv > out
    }
    printf "  \"fleet_smoke\": { \"requests\": %d, \"gc_threads\": 2, \"wall_s\": %s }\n", fleet_n, fleet_wall > out
    printf "}\n" > out
    for (i = 1; i <= ng; i++)
      printf "bench: gc-threads=%d: %d events, min-cpu %.3f s -> %.0f events/sec (steady-state %.0f), %.1f alloc B/event (steady-state %.1f)\n",
             gs[i], events[gs[i]], mincpu[gs[i]],
             events[gs[i]] / mincpu[gs[i]], events[gs[i]] / runcpu[gs[i]],
             bytes[gs[i]] / totev[gs[i]], runbytes[gs[i]] / totev[gs[i]]
  }
' "$LANES"
rm -f "$LANES"

echo "== bench: validating $OUT =="
# Well-formedness + sanity without a JSON tool dependency: the rates
# must parse as positive numbers and the file must close its braces.
EPS=$(awk -F'[:,]' '/"events_per_sec"/ { print $2 + 0; exit }' "$OUT")
APE=$(awk -F'[:,]' '/"host_alloc_bytes_per_event"/ { print $2 + 0; exit }' "$OUT")
RAPE=$(awk -F'[:,]' '/"run_host_alloc_bytes_per_event"/ { print $2 + 0; exit }' "$OUT")
BRACES=$(awk 'BEGIN { d = 0 } { for (i = 1; i <= length($0); i++) { ch = substr($0, i, 1); if (ch == "{") d++; if (ch == "}") d-- } } END { print d }' "$OUT")
if [ "$BRACES" != 0 ]; then
  echo "bench: $OUT braces unbalanced" >&2; exit 1
fi
if ! awk "BEGIN { exit !($EPS > 0) }"; then
  echo "bench: events_per_sec not positive: $EPS" >&2; exit 1
fi
if ! awk "BEGIN { exit !($APE >= 0) }"; then
  echo "bench: host_alloc_bytes_per_event bogus: $APE" >&2; exit 1
fi
# Alloc gate: the steady-state replay loop must stay lean. See the
# header comment for how the bound relates to the issue's 8 B/event
# target.
if ! awk "BEGIN { exit !($RAPE > 0 && $RAPE <= $ALLOC_GATE_B_PER_EVENT) }"; then
  echo "bench: steady-state alloc gate failed: $RAPE B/event (gate $ALLOC_GATE_B_PER_EVENT)" >&2
  exit 1
fi
echo "bench ok: $OUT (events/sec=$EPS, alloc B/event=$APE, steady-state B/event=$RAPE <= $ALLOC_GATE_B_PER_EVENT)"
