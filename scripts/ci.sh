#!/bin/sh
# CI entry point: build everything, run the full test suite, then a
# verifier-enabled smoke run of the quickstart and one injected-fault
# run that must be caught. Mirrors the `dune build @ci` alias.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest

echo "== verifier smoke (clean run must report zero violations) =="
dune exec examples/quickstart.exe

echo "== verifier smoke (injected fault must be caught) =="
if dune exec bin/lxr_sim.exe -- run -b lusearch -c lxr -s 0.25 \
    --verify=all --inject=drop-barrier:2e-3; then
  echo "ERROR: injected corruption was not detected" >&2
  exit 1
fi

echo "== trace corpus: cross-collector differential replay (gc-threads=2) =="
# zgc refuses the corpus's small heaps (minimum heap size); the differ
# reports the refusal as a skipped lane and diffs the rest. gc-threads=2
# routes every lane through the work-packet scheduler: checkpoints are
# bit-identical to --gc-threads=1 by construction, so a clean diff here
# exercises the parallel kernels against the same oracle.
for t in test/corpus/*.lxrtrace; do
  dune exec bin/lxr_trace.exe -- diff "$t" -c lxr,g1,shenandoah,zgc,journal_rc \
    --gc-threads=2
done

echo "== replay loops: specialised vs generic must be bit-identical =="
# The specialised per-collector inner loop and the generic reference
# loop must produce identical run metrics and byte-identical
# record-of-replay output on every corpus trace (extends the corpus
# ROR-fixpoint test to the loop-selection axis).
loop_a=$(mktemp) loop_b=$(mktemp)
for t in test/corpus/*.lxrtrace; do
  for c in lxr journal_rc; do
    dune exec bin/lxr_trace.exe -- replay "$t" -c "$c" \
      --loop=specialised -o "$loop_a.ror" > "$loop_a"
    dune exec bin/lxr_trace.exe -- replay "$t" -c "$c" \
      --loop=generic -o "$loop_b.ror" > "$loop_b"
    cmp "$loop_a" "$loop_b" || {
      echo "ERROR: replay metrics diverged between loops ($t, $c)" >&2
      exit 1
    }
    cmp "$loop_a.ror" "$loop_b.ror" || {
      echo "ERROR: record-of-replay diverged between loops ($t, $c)" >&2
      exit 1
    }
  done
done
rm -f "$loop_a" "$loop_b" "$loop_a.ror" "$loop_b.ror"

echo "== fleet smoke (verifier on, both policies, 2 domains) =="
dune exec bin/lxr_fleet.exe -- compare -b lusearch -c lxr,shenandoah \
  -p round-robin,gc-aware -k 2 -n 400 --domains=2 --verify=all

echo "== fleet chaos smoke (seeded crash + restart; bit-identical across domains) =="
# A fixed-seed chaos schedule kills replica 0 mid-run and relaunches it;
# the run must complete (exit 0, ok:true), the dead replica must come
# back (restarts:1), and the full metric set must be bit-identical at
# --domains=1 vs =2. The JSON embeds the domain count itself, which is
# the one field allowed to differ.
chaos_a=$(mktemp) chaos_b=$(mktemp)
chaos_fleet() {
  dune exec bin/lxr_fleet.exe -- compare -b lusearch -c "$2" -p gc-aware \
    -k 3 -n 1500 --seed 42 --domains="$1" \
    --chaos 'crash@0.3:r0,heap-shrink@0.6x0.7,restart:5us' \
    --retry 'timeout:80ms,max:3,backoff:200us' --slo 'p99.9:10ms' \
    --format json | sed 's/"domains": [0-9]*/"domains": _/'
}
for c in lxr journal_rc; do
  chaos_fleet 1 "$c" > "$chaos_a"
  chaos_fleet 2 "$c" > "$chaos_b"
  grep -q '"ok": true' "$chaos_a" || {
    echo "ERROR: chaos fleet run failed ($c)" >&2
    exit 1
  }
  grep -q '"restarts": [1-9]' "$chaos_a" || {
    echo "ERROR: crashed replica did not restart ($c)" >&2
    exit 1
  }
  cmp "$chaos_a" "$chaos_b" || {
    echo "ERROR: chaos fleet metrics diverged across --domains ($c)" >&2
    exit 1
  }
done
rm -f "$chaos_a" "$chaos_b"

echo "== distilled-cost smoke (corpus replay under real + ideal lanes) =="
# Every lane must produce exact distilled accounting (or a reported heap
# refusal); a failed ideal baseline or malformed row exits non-zero.
dune exec bin/lxr_trace.exe -- distill test/corpus/luindex.lxrtrace \
  -c lxr,g1,shenandoah,journal_rc --format json > /dev/null

echo "== controller smoke (hill + pid on the adversaries; deterministic) =="
# Same seed + controller must give bit-identical output at gc-threads 1
# vs 4 — the seeded exploration is scheduled at RC pause boundaries, not
# on worker threads.
ctl_a=$(mktemp) ctl_b=$(mktemp)
for spec in hill pid; do
  dune exec bin/lxr_sim.exe -- run -b fragger -c lxr -s 0.3 \
    --controller="$spec" --gc-threads=1 > "$ctl_a"
  dune exec bin/lxr_sim.exe -- run -b fragger -c lxr -s 0.3 \
    --controller="$spec" --gc-threads=4 > "$ctl_b"
  cmp "$ctl_a" "$ctl_b" || {
    echo "ERROR: controller $spec diverged across --gc-threads" >&2
    exit 1
  }
done
rm -f "$ctl_a" "$ctl_b"
dune exec bin/lxr_sim.exe -- run -b phaser -c lxr -s 0.3 \
  --controller=pid:obj=cost --lxr-knob=wastage_threshold=0.12 > /dev/null

echo "== wall-clock bench smoke (JSON well-formed, rates sane) =="
scripts/bench.sh --smoke --out /tmp/bench_smoke.$$.json
rm -f /tmp/bench_smoke.$$.json

echo "== trace corpus: injected fault must diverge =="
if dune exec bin/lxr_trace.exe -- diff test/corpus/luindex.lxrtrace \
    -c lxr,g1 --inject=drop-barrier:2e-3 --inject-into=lxr > /dev/null; then
  echo "ERROR: injected fault produced no divergence" >&2
  exit 1
fi

echo "== ci ok =="
