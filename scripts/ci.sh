#!/bin/sh
# CI entry point: build everything, run the full test suite, then a
# verifier-enabled smoke run of the quickstart and one injected-fault
# run that must be caught. Mirrors the `dune build @ci` alias.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest

echo "== verifier smoke (clean run must report zero violations) =="
dune exec examples/quickstart.exe

echo "== verifier smoke (injected fault must be caught) =="
if dune exec bin/lxr_sim.exe -- run -b lusearch -c lxr -s 0.25 \
    --verify=all --inject=drop-barrier:2e-3; then
  echo "ERROR: injected corruption was not detected" >&2
  exit 1
fi

echo "== trace corpus: cross-collector differential replay (gc-threads=2) =="
# zgc refuses the corpus's small heaps (minimum heap size); the differ
# reports the refusal as a skipped lane and diffs the rest. gc-threads=2
# routes every lane through the work-packet scheduler: checkpoints are
# bit-identical to --gc-threads=1 by construction, so a clean diff here
# exercises the parallel kernels against the same oracle.
for t in test/corpus/*.lxrtrace; do
  dune exec bin/lxr_trace.exe -- diff "$t" -c lxr,g1,shenandoah,zgc \
    --gc-threads=2
done

echo "== fleet smoke (verifier on, both policies, 2 domains) =="
dune exec bin/lxr_fleet.exe -- compare -b lusearch -c lxr,shenandoah \
  -p round-robin,gc-aware -k 2 -n 400 --domains=2 --verify=all

echo "== wall-clock bench smoke (JSON well-formed, rates sane) =="
scripts/bench.sh --smoke --out /tmp/bench_smoke.$$.json
rm -f /tmp/bench_smoke.$$.json

echo "== trace corpus: injected fault must diverge =="
if dune exec bin/lxr_trace.exe -- diff test/corpus/luindex.lxrtrace \
    -c lxr,g1 --inject=drop-barrier:2e-3 --inject-into=lxr > /dev/null; then
  echo "ERROR: injected fault produced no divergence" >&2
  exit 1
fi

echo "== ci ok =="
