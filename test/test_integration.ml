(* End-to-end integration tests: whole benchmarks under every collector,
   cross-collector agreement, determinism, and heap-consistency audits. *)

open Repro_heap
open Repro_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- A deterministic mini-benchmark usable under any collector --------- *)

(* Returns the sorted list of reachable object SIZES at the end (ids
   differ across collectors only if allocation orders diverge — they must
   not, so sizes+graph shape are a strong fingerprint). *)
let run_mini factory seed =
  let heap = Heap.create (Heap_config.make ~heap_bytes:(512 * 1024) ()) in
  let sim = Sim.create Cost_model.default in
  let api = Api.create sim heap factory in
  let prng = Repro_util.Prng.create seed in
  let table = Api.alloc api ~size:(16 + (8 * 32)) ~nfields:32 in
  Api.set_root api 0 table.id;
  for i = 1 to 6000 do
    let size = 16 + (16 * Repro_util.Prng.int prng 20) in
    let obj = Api.alloc api ~size ~nfields:3 in
    if Repro_util.Prng.bool prng 0.08 then
      Api.write api table (Repro_util.Prng.int prng 32) obj.id;
    if i mod 500 = 0 then Api.safepoint api
  done;
  Api.finish api;
  let reach = Heap.reachable heap ~roots:(Array.to_list (Api.roots api)) in
  let sizes = ref [] in
  Mark_bitset.iter_marked reach (fun id ->
      match Obj_model.Registry.find heap.registry id with
      | Some o -> sizes := o.size :: !sizes
      | None -> ());
  (List.sort compare !sizes, heap, api)

let all_factories =
  [ ("lxr", Repro_lxr.Lxr.factory);
    ("lxr-stw", Repro_lxr.Lxr.factory_stw);
    ("lxr-objbar", Repro_lxr.Lxr.factory_object_barrier);
    ("lxr-regions", Repro_lxr.Lxr.factory_regional_evacuation);
    ("serial", Repro_collectors.Registry.find "serial");
    ("parallel", Repro_collectors.Registry.find "parallel");
    ("immix", Repro_collectors.Registry.find "immix");
    ("semispace", Repro_collectors.Registry.find "semispace");
    ("g1", Repro_collectors.Registry.find "g1");
    ("shenandoah", Repro_collectors.Registry.find "shenandoah") ]

(* Every collector must end the identical mutation sequence with the
   identical reachable graph: garbage collection must never change
   program semantics. *)
let test_cross_collector_agreement () =
  let reference, _, _ = run_mini Repro_lxr.Lxr.factory 7 in
  check "reference nonempty" true (List.length reference > 10);
  List.iter
    (fun (name, f) ->
      let sizes, _, _ = run_mini f 7 in
      Alcotest.(check (list int)) (name ^ " reachable graph agrees") reference sizes)
    all_factories

(* --- Heap consistency audits ------------------------------------------- *)

(* Structural invariants that must hold at rest after any collector ran:
   - every registered object's address lies in-heap and is granule aligned;
   - non-LOS objects never cross a block boundary;
   - no two live objects overlap;
   - every [Free]-state block has an all-zero RC table;
   - free-list entries refer to blocks in the matching state. *)
let audit_heap name heap =
  let cfg = heap.Heap.cfg in
  let spans = ref [] in
  Obj_model.Registry.iter
    (fun obj ->
      check (name ^ ": in heap") true (Addr.valid cfg (Obj_model.addr obj));
      check (name ^ ": aligned") true (Addr.is_granule_aligned cfg (Obj_model.addr obj));
      if not (Heap.is_los heap obj) then
        check_int (name ^ ": within one block")
          (Addr.block_of cfg (Obj_model.addr obj))
          (Addr.block_of cfg ((Obj_model.addr obj) + obj.size - 1));
      spans := ((Obj_model.addr obj), obj.size) :: !spans)
    heap.registry;
  let sorted = List.sort compare !spans in
  let rec no_overlap = function
    | (a1, s1) :: ((a2, _) :: _ as rest) ->
      check (name ^ ": no overlap") true (a1 + s1 <= a2);
      no_overlap rest
    | [ _ ] | [] -> ()
  in
  no_overlap sorted;
  for b = 0 to Heap_config.blocks cfg - 1 do
    if Blocks.state heap.blocks b = Blocks.Free then
      check (name ^ ": free block zeroed rc") true
        (Rc_table.block_is_free heap.rc cfg b)
  done

let test_heap_audits () =
  List.iter
    (fun (name, f) ->
      let _, heap, _ = run_mini f 11 in
      audit_heap name heap)
    all_factories

(* LXR-specific: at rest, live mature objects carry non-zero counts and
   the free lists contain no live data. *)
let test_lxr_rc_consistency () =
  let _, heap, api = run_mini Repro_lxr.Lxr.factory 13 in
  let reach = Heap.reachable heap ~roots:(Array.to_list (Api.roots api)) in
  (* Force a final pause so promotions of the last epoch settle. *)
  Mark_bitset.iter_marked reach (fun id ->
      match Obj_model.Registry.find heap.registry id with
      | Some obj when Obj_model.birth_epoch obj < heap.epoch ->
        check "mature reachable has a count" true (Heap.rc_of heap obj > 0)
      | Some _ | None -> ())

(* --- Full benchmark runs under each production collector ---------------- *)

let test_full_benchmarks_all_production () =
  let factories =
    [ ("lxr", Repro_lxr.Lxr.factory);
      ("g1", Repro_collectors.Registry.find "g1");
      ("shenandoah", Repro_collectors.Registry.find "shenandoah");
      ("serial", Repro_collectors.Registry.find "serial") ]
  in
  List.iter
    (fun bench ->
      List.iter
        (fun (name, factory) ->
          let r =
            Repro_harness.Runner.run ~seed:21 ~scale:0.1
              ~workload:(Repro_mutator.Benchmarks.find bench) ~factory
              ~heap_factor:1.5 ()
          in
          check
            (Printf.sprintf "%s under %s at 1.5x" bench name)
            true r.ok)
        factories)
    [ "lusearch"; "xalan"; "batik"; "h2o"; "luindex" ]

(* Determinism across the whole runner stack. *)
let test_runner_determinism_all_collectors () =
  List.iter
    (fun (name, factory) ->
      let go () =
        Repro_harness.Runner.run ~seed:33 ~scale:0.05
          ~workload:(Repro_mutator.Benchmarks.find "fop") ~factory
          ~heap_factor:2.0 ()
      in
      let a = go () and b = go () in
      check (name ^ " deterministic wall") true (a.wall_ns = b.wall_ns);
      check_int (name ^ " deterministic pauses") a.pause_count b.pause_count)
    all_factories

(* Barrier-granularity ablation: both barriers must agree on the final
   graph, and the object barrier must take at most as many slow paths. *)
let test_barrier_granularity_agreement () =
  let field_sizes, _, _ = run_mini Repro_lxr.Lxr.factory 17 in
  let obj_sizes, _, _ = run_mini Repro_lxr.Lxr.factory_object_barrier 17 in
  Alcotest.(check (list int)) "graphs agree" field_sizes obj_sizes

let suite =
  [ ( "integration:agreement",
      [ Alcotest.test_case "cross-collector reachable graph" `Slow
          test_cross_collector_agreement;
        Alcotest.test_case "barrier granularity" `Quick
          test_barrier_granularity_agreement ] );
    ( "integration:audits",
      [ Alcotest.test_case "heap structural invariants" `Slow test_heap_audits;
        Alcotest.test_case "lxr rc consistency" `Quick test_lxr_rc_consistency ] );
    ( "integration:benchmarks",
      [ Alcotest.test_case "five benchmarks x four collectors" `Slow
          test_full_benchmarks_all_production;
        Alcotest.test_case "determinism everywhere" `Quick
          test_runner_determinism_all_collectors ] ) ]
