(* Correctness tests for the LXR collector.

   The central safety oracle keeps its own table of every object ever
   allocated (object records outlive their registry entries), recomputes
   reachability from the root array over that shadow graph, and asserts
   that no reachable object has been freed — catching wrongful
   reclamation that the registry's own traversal could never see. *)

open Repro_heap
open Repro_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let null = Obj_model.null

type env = {
  api : Api.t;
  heap : Heap.t;
  shadow : (int, Obj_model.t) Hashtbl.t;  (* every object ever allocated *)
  prng : Repro_util.Prng.t;
}

let make_env ?(heap_kb = 256) ?(factory = Repro_lxr.Lxr.factory) ?(seed = 1) () =
  let heap = Heap.create (Heap_config.make ~heap_bytes:(heap_kb * 1024) ()) in
  let sim = Sim.create Cost_model.default in
  let api = Api.create sim heap factory in
  { api; heap; shadow = Hashtbl.create 256; prng = Repro_util.Prng.create seed }

let alloc env ?(size = 64) ?(nfields = 4) () =
  let obj = Api.alloc env.api ~size ~nfields in
  Hashtbl.replace env.shadow obj.id obj;
  obj

(* Allocate-and-drop until roughly [bytes] have been allocated, driving RC
   epochs (and concurrent work) forward. *)
let spin env ~bytes =
  let n = max 1 (bytes / 64) in
  for _ = 1 to n do
    ignore (alloc env ~size:64 ~nfields:2 ())
  done;
  Api.safepoint env.api

(* Drive epochs until the whole current heap has turned over several
   times — enough for lazy decrements and at least one full SATB cycle. *)
let quiesce env = spin env ~bytes:(4 * Heap.total_bytes env.heap)

let registered env id = Obj_model.Registry.mem env.heap.registry id

(* The safety oracle: everything reachable from the roots through the
   shadow graph must still be registered (never wrongly freed). *)
let assert_safety env =
  let seen = Hashtbl.create 256 in
  let rec visit id =
    if id <> null && not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match Hashtbl.find_opt env.shadow id with
      | None -> ()  (* allocated outside the shadow (none in these tests) *)
      | Some obj ->
        if not (registered env id) then
          Alcotest.failf "reachable object %d was freed" id;
        Obj_model.iter_fields visit obj
    end
  in
  Array.iter visit (Api.roots env.api)

(* --- Basic lifecycle ----------------------------------------------------- *)

let test_young_garbage_dies () =
  let env = make_env () in
  let before = Obj_model.Registry.count env.heap.registry in
  spin env ~bytes:(2 * Heap.total_bytes env.heap);
  (* Unreferenced allocations must not accumulate. *)
  let after = Obj_model.Registry.count env.heap.registry in
  check "registry bounded" true (after < before + 2000);
  assert_safety env

let test_rooted_object_survives () =
  let env = make_env () in
  let obj = alloc env () in
  Api.set_root env.api 0 obj.id;
  quiesce env;
  check "still registered" true (registered env obj.id);
  check "promoted" true (Heap.rc_of env.heap obj > 0);
  assert_safety env

let test_transitive_survival () =
  let env = make_env () in
  let parent = alloc env () in
  Api.set_root env.api 0 parent.id;
  let child = alloc env () in
  Api.write env.api parent 0 child.id;
  let grandchild = alloc env () in
  (match Hashtbl.find_opt env.shadow child.id with
  | Some c -> Api.write env.api c 0 grandchild.id
  | None -> Alcotest.fail "child vanished");
  quiesce env;
  check "parent" true (registered env parent.id);
  check "child" true (registered env child.id);
  check "grandchild" true (registered env grandchild.id);
  assert_safety env

let test_dropped_reference_reclaimed () =
  let env = make_env () in
  let parent = alloc env () in
  Api.set_root env.api 0 parent.id;
  let child = alloc env () in
  Api.write env.api parent 0 child.id;
  spin env ~bytes:(Heap.total_bytes env.heap);
  check "child promoted" true (registered env child.id);
  Api.write env.api parent 0 null;
  quiesce env;
  check "child reclaimed after drop" false (registered env child.id);
  assert_safety env

let test_coalescing_intermediate_referent () =
  let env = make_env () in
  let parent = alloc env () in
  Api.set_root env.api 0 parent.id;
  spin env ~bytes:(Heap.total_bytes env.heap / 2);
  (* Within one epoch, the field passes through [a] and settles on [b]:
     only the final referent gets an increment (§2.1). *)
  let a = alloc env () in
  Api.write env.api parent 0 a.id;
  let b = alloc env () in
  Api.write env.api parent 0 b.id;
  quiesce env;
  check "intermediate dead" false (registered env a.id);
  check "final alive" true (registered env b.id);
  assert_safety env

let test_root_deferral_drop () =
  let env = make_env () in
  let obj = alloc env () in
  Api.set_root env.api 0 obj.id;
  spin env ~bytes:(Heap.total_bytes env.heap);
  check "rooted alive" true (registered env obj.id);
  Api.set_root env.api 0 null;
  quiesce env;
  check "dropped root reclaimed" false (registered env obj.id)

(* --- Cycles and stuck counts (SATB's job) --------------------------------- *)

let test_cycle_reclaimed_by_satb () =
  let env = make_env () in
  let holder = alloc env () in
  Api.set_root env.api 0 holder.id;
  let a = alloc env () in
  Api.write env.api holder 0 a.id;
  let b = alloc env () in
  Api.write env.api a 0 b.id;
  Api.write env.api b 0 a.id;
  spin env ~bytes:(Heap.total_bytes env.heap);
  check "cycle alive while referenced" true (registered env a.id && registered env b.id);
  (* Drop the external reference: RC alone cannot reclaim the pair. *)
  Api.write env.api holder 0 null;
  quiesce env;
  quiesce env;
  check "cycle collected" false (registered env a.id || registered env b.id);
  assert_safety env

let test_self_cycle_reclaimed () =
  let env = make_env () in
  let holder = alloc env () in
  Api.set_root env.api 0 holder.id;
  let a = alloc env () in
  Api.write env.api holder 0 a.id;
  Api.write env.api a 0 a.id;
  spin env ~bytes:(Heap.total_bytes env.heap);
  Api.write env.api holder 0 null;
  quiesce env;
  quiesce env;
  check "self cycle collected" false (registered env a.id)

let test_stuck_count_reclaimed_by_satb () =
  let env = make_env () in
  let obj = alloc env () in
  (* Five incoming references stick the 2-bit count at 3. *)
  for slot = 0 to 4 do
    Api.set_root env.api slot obj.id
  done;
  spin env ~bytes:(Heap.total_bytes env.heap);
  check "stuck" true (Heap.rc_is_stuck env.heap obj);
  for slot = 0 to 4 do
    Api.set_root env.api slot null
  done;
  quiesce env;
  quiesce env;
  check "stuck object reclaimed by trace" false (registered env obj.id)

let test_live_object_survives_satb_cycles () =
  let env = make_env () in
  let obj = alloc env () in
  Api.set_root env.api 0 obj.id;
  quiesce env;
  quiesce env;
  quiesce env;
  check "live across SATB cycles" true (registered env obj.id)

(* --- Write barrier (§3.4) --------------------------------------------------- *)

let stat env key =
  match List.assoc_opt key ((Api.collector env.api).Collector.stats ()) with
  | Some v -> int_of_float v
  | None -> 0

let test_barrier_coalesces () =
  let env = make_env () in
  let parent = alloc env () in
  Api.set_root env.api 0 parent.id;
  spin env ~bytes:(Heap.total_bytes env.heap);
  (* Promoted object: the first store this epoch logs, the rest do not. *)
  let before = stat env "wb_slow" in
  let x = alloc env () in
  Api.write env.api parent 1 x.id;
  let y = alloc env () in
  Api.write env.api parent 1 y.id;
  let z = alloc env () in
  Api.write env.api parent 1 z.id;
  check_int "one slow path for three stores" (before + 1) (stat env "wb_slow")

let test_barrier_ignores_new_objects () =
  let env = make_env () in
  let before = stat env "wb_slow" in
  let a = alloc env () in
  let b = alloc env () in
  (* Stores into a brand-new object are never logged (implicitly dead). *)
  Api.write env.api a 0 b.id;
  Api.write env.api a 1 b.id;
  check_int "no slow paths" before (stat env "wb_slow")

(* --- Evacuation -------------------------------------------------------------- *)

let test_young_evacuation_moves_objects () =
  let env = make_env () in
  let table = alloc env ~nfields:32 () in
  Api.set_root env.api 0 table.id;
  spin env ~bytes:(Heap.total_bytes env.heap / 2);
  (* Allocate survivors into fresh young blocks; they should be copied at
     their first increment. *)
  for i = 0 to 31 do
    let o = alloc env () in
    Api.write env.api table i o.id
  done;
  spin env ~bytes:(Heap.total_bytes env.heap);
  check "some young evacuation happened" true (stat env "young_evacuated" > 0);
  for i = 0 to 31 do
    check "survivor alive" true (registered env (Obj_model.field table i))
  done;
  assert_safety env

let test_mature_evacuation_preserves_graph () =
  let env = make_env ~heap_kb:512 () in
  let table = alloc env ~nfields:64 () in
  Api.set_root env.api 0 table.id;
  (* Create fragmentation: many mature objects, then drop most. *)
  for round = 1 to 8 do
    for i = 0 to 63 do
      let o = alloc env ~size:128 () in
      if (i + round) mod 7 = 0 then Api.write env.api table i o.id
    done;
    spin env ~bytes:(Heap.total_bytes env.heap / 3)
  done;
  quiesce env;
  quiesce env;
  check "mature evacuation ran" true (stat env "mature_evacuated" >= 0);
  assert_safety env

(* --- Ablations run the same scenarios ----------------------------------------- *)

let ablation_scenario factory () =
  let env = make_env ~factory () in
  let holder = alloc env () in
  Api.set_root env.api 0 holder.id;
  let a = alloc env () in
  Api.write env.api holder 0 a.id;
  let b = alloc env () in
  Api.write env.api a 0 b.id;
  Api.write env.api b 0 a.id;
  spin env ~bytes:(Heap.total_bytes env.heap);
  Api.write env.api holder 0 null;
  quiesce env;
  quiesce env;
  check "cycle collected" false (registered env a.id || registered env b.id);
  assert_safety env

(* --- Object-granularity barrier (§3.4) --------------------------------------- *)

let obj_env () = make_env ~factory:Repro_lxr.Lxr.factory_object_barrier ()

let test_object_barrier_lifecycle () =
  let env = obj_env () in
  let parent = alloc env () in
  Api.set_root env.api 0 parent.id;
  let child = alloc env () in
  Api.write env.api parent 0 child.id;
  quiesce env;
  check "child alive" true (registered env child.id);
  Api.write env.api parent 0 null;
  quiesce env;
  check "child reclaimed" false (registered env child.id);
  assert_safety env

let test_object_barrier_one_log_per_object () =
  let env = obj_env () in
  let parent = alloc env ~nfields:8 () in
  Api.set_root env.api 0 parent.id;
  spin env ~bytes:(Heap.total_bytes env.heap);
  let before = stat env "wb_slow" in
  (* Writes to several DIFFERENT fields of one object log once. *)
  let a = alloc env () in
  Api.write env.api parent 0 a.id;
  let b = alloc env () in
  Api.write env.api parent 3 b.id;
  let c = alloc env () in
  Api.write env.api parent 7 c.id;
  check_int "single log for three fields" (before + 1) (stat env "wb_slow")

(* --- Regional evacuation (§3.3.2) ---------------------------------------------- *)

let test_regional_evacuation_lifecycle () =
  let env = make_env ~factory:Repro_lxr.Lxr.factory_regional_evacuation () in
  let table = alloc env ~nfields:48 () in
  Api.set_root env.api 0 table.id;
  (* Fragment the mature space so evacuation sets span several regions. *)
  for round = 1 to 10 do
    for i = 0 to 47 do
      let o = alloc env ~size:160 () in
      if (i + round) mod 9 = 0 then Api.write env.api table i o.id
    done;
    spin env ~bytes:(Heap.total_bytes env.heap / 4)
  done;
  quiesce env;
  quiesce env;
  for i = 0 to 47 do
    let r = (Obj_model.field table i) in
    if r <> null then check "survivor alive" true (registered env r)
  done;
  assert_safety env

let test_satb_backstop_fires () =
  (* A workload that never crosses the clean-block or wastage thresholds
     must still trace periodically (completeness). *)
  let env = make_env () in
  let obj = alloc env () in
  Api.set_root env.api 0 obj.id;
  quiesce env;
  quiesce env;
  quiesce env;
  check "multiple traces over a long clean run" true
    (stat env "satb_traces_completed" >= 2)

(* --- Emergency behaviour --------------------------------------------------------- *)

let test_no_oom_under_pressure () =
  (* A very tight heap with heavy churn must still complete. *)
  let env = make_env ~heap_kb:128 () in
  let table = alloc env ~nfields:16 () in
  Api.set_root env.api 0 table.id;
  for i = 0 to 4000 do
    let o = alloc env ~size:96 () in
    if i mod 3 = 0 then Api.write env.api table (i mod 16) o.id
  done;
  assert_safety env

let test_large_objects_lifecycle () =
  let env = make_env ~heap_kb:512 () in
  let holder = alloc env () in
  Api.set_root env.api 0 holder.id;
  let big = alloc env ~size:40_000 ~nfields:2 () in
  Api.write env.api holder 0 big.id;
  spin env ~bytes:(Heap.total_bytes env.heap / 2);
  check "large object promoted" true (registered env big.id);
  Api.write env.api holder 0 null;
  quiesce env;
  check "large object reclaimed" false (registered env big.id);
  assert_safety env

(* --- Random operations property ---------------------------------------------------- *)

let random_ops_safety factory seed =
  let env = make_env ~factory ~seed () in
  let prng = env.prng in
  let objects = ref [] in
  for _ = 1 to 3000 do
    match Repro_util.Prng.int prng 10 with
    | 0 | 1 | 2 | 3 ->
      let o = alloc env ~size:(16 + (16 * Repro_util.Prng.int prng 16)) () in
      objects := o.id :: !objects;
      if List.length !objects > 400 then
        objects := List.filteri (fun i _ -> i < 200) !objects
    | 4 | 5 ->
      (* Root a random known object (freed ids are fine: we only write
         live ones). *)
      (match !objects with
      | [] -> ()
      | l ->
        let id = List.nth l (Repro_util.Prng.int prng (List.length l)) in
        if registered env id then
          Api.set_root env.api (Repro_util.Prng.int prng 8) id)
    | 6 -> Api.set_root env.api (Repro_util.Prng.int prng 8) null
    | 7 | 8 ->
      (* Random field store between live objects. *)
      (match !objects with
      | [] -> ()
      | l ->
        let pick () = List.nth l (Repro_util.Prng.int prng (List.length l)) in
        let src = pick () and dst = pick () in
        (match (Hashtbl.find_opt env.shadow src, registered env src, registered env dst) with
        | Some s, true, true when Obj_model.nfields s > 0 ->
          Api.write env.api s (Repro_util.Prng.int prng (Obj_model.nfields s)) dst
        | _ -> ()))
    | _ -> Api.work env.api ~ns:200.0
  done;
  assert_safety env;
  quiesce env;
  assert_safety env;
  true

let random_safety_prop =
  QCheck.Test.make ~name:"random mutation safety (LXR)" ~count:12
    QCheck.(int_range 1 10_000)
    (fun seed -> random_ops_safety Repro_lxr.Lxr.factory seed)

let random_safety_stw_prop =
  QCheck.Test.make ~name:"random mutation safety (LXR STW)" ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed -> random_ops_safety Repro_lxr.Lxr.factory_stw seed)

let random_safety_objbar_prop =
  QCheck.Test.make ~name:"random mutation safety (LXR object barrier)" ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed -> random_ops_safety Repro_lxr.Lxr.factory_object_barrier seed)

let random_safety_regions_prop =
  QCheck.Test.make ~name:"random mutation safety (LXR regional evac)" ~count:6
    QCheck.(int_range 1 10_000)
    (fun seed -> random_ops_safety Repro_lxr.Lxr.factory_regional_evacuation seed)

(* --- Predictor (§3.2.1) -------------------------------------------------------------- *)

let test_predictor_bias () =
  let p = Repro_lxr.Predictor.create ~initial:0.0 () in
  Repro_lxr.Predictor.observe p 1.0;
  (* Upward observations weigh 3/4. *)
  Alcotest.(check (float 1e-9)) "up fast" 0.75 (Repro_lxr.Predictor.value p);
  Repro_lxr.Predictor.observe p 0.0;
  (* Downward observations weigh only 1/4. *)
  Alcotest.(check (float 1e-9)) "down slow" 0.5625 (Repro_lxr.Predictor.value p)

let test_predictor_converges () =
  let p = Repro_lxr.Predictor.create ~initial:0.9 () in
  for _ = 1 to 50 do
    Repro_lxr.Predictor.observe p 0.1
  done;
  check "converges down" true (Float.abs (Repro_lxr.Predictor.value p -. 0.1) < 0.01)

let test_predictor_validation () =
  Alcotest.check_raises "bad weight" (Invalid_argument "Predictor.create") (fun () ->
      ignore (Repro_lxr.Predictor.create ~up_weight:1.5 ~initial:0.0 ()))

(* --- Config / stats --------------------------------------------------------------------- *)

let test_config_scaling () =
  let c = Repro_lxr.Lxr_config.scaled_default ~heap_bytes:(32 * 1024 * 1024)
      ~block_bytes:32768
  in
  check "survival threshold positive" true (c.survival_threshold_bytes > 0);
  check "wastage sane" true (c.wastage_threshold > 0.0 && c.wastage_threshold < 1.0);
  let stw = Repro_lxr.Lxr_config.stw c in
  check "stw disables satb conc" false stw.concurrent_satb;
  check "stw disables lazy" false stw.lazy_decrements;
  let nosatb = Repro_lxr.Lxr_config.no_concurrent_satb c in
  check "nosatb keeps lazy" true nosatb.lazy_decrements;
  let nold = Repro_lxr.Lxr_config.no_lazy_decrements c in
  check "nold keeps satb" true nold.concurrent_satb

let test_stats_percentages () =
  let s = Repro_lxr.Lxr_stats.create () in
  s.young_reclaimed <- 60;
  s.old_reclaimed <- 30;
  s.satb_reclaimed <- 10;
  Alcotest.(check (float 1e-9)) "young" 60.0 (Repro_lxr.Lxr_stats.young_pct s);
  Alcotest.(check (float 1e-9)) "old" 30.0 (Repro_lxr.Lxr_stats.old_pct s);
  Alcotest.(check (float 1e-9)) "satb" 10.0 (Repro_lxr.Lxr_stats.satb_pct s);
  s.clean_young_blocks <- 2;
  s.young_evacuated <- 32768;
  Alcotest.(check (float 1e-9)) "yc" 50.0
    (Repro_lxr.Lxr_stats.yc_pct s ~block_bytes:32768);
  check_int "alist size" 23 (List.length (Repro_lxr.Lxr_stats.to_alist s))

let test_phase_breakdown () =
  let env = make_env () in
  let obj = alloc env () in
  Api.set_root env.api 0 obj.id;
  quiesce env;
  let v k =
    match List.assoc_opt k ((Api.collector env.api).Collector.stats ()) with
    | Some x -> x
    | None -> 0.0
  in
  check "increments dominate a young-heavy run" true (v "phase_inc_ns" > 0.0);
  check "sweeping accounted" true (v "phase_sweep_ns" > 0.0);
  (* Lazy decrements run concurrently: in-pause decrement time should be
     small relative to increments in this clean workload. *)
  check "lazy keeps decs out of pauses" true
    (v "phase_dec_ns" <= v "phase_inc_ns")

let test_remset_staleness_tag () =
  (* An entry whose source line is reused after insertion must be
     discarded at evacuation time (§3.3.2's correctness concern). *)
  let heap = Heap.create (Heap_config.make ~heap_bytes:(256 * 1024) ()) in
  let r = Repro_lxr.Remset.create () in
  let line = 5 in
  Repro_lxr.Remset.add r ~src:1 ~field:0 ~tag:(Reuse_table.get heap.reuse line);
  Reuse_table.bump heap.reuse line;
  Repro_lxr.Remset.drain r (fun { Repro_lxr.Remset.tag; _ } ->
      check "entry is stale" true (Reuse_table.get heap.reuse line > tag));
  (* Fresh entries carry the current counter and pass the check. *)
  Repro_lxr.Remset.add r ~src:1 ~field:0 ~tag:(Reuse_table.get heap.reuse line);
  Repro_lxr.Remset.drain r (fun { Repro_lxr.Remset.tag; _ } ->
      check "entry is fresh" false (Reuse_table.get heap.reuse line > tag))

let test_remset_module () =
  let r = Repro_lxr.Remset.create () in
  check_int "empty" 0 (Repro_lxr.Remset.length r);
  Repro_lxr.Remset.add r ~src:1 ~field:2 ~tag:3;
  Repro_lxr.Remset.add r ~src:4 ~field:5 ~tag:6;
  check_int "two entries" 2 (Repro_lxr.Remset.length r);
  let seen = ref [] in
  Repro_lxr.Remset.drain r (fun e -> seen := (e.src, e.field, e.tag) :: !seen);
  Alcotest.(check (list (triple int int int)))
    "drained" [ (4, 5, 6); (1, 2, 3) ] !seen;
  check_int "drained empty" 0 (Repro_lxr.Remset.length r)

let suite =
  let qc = List.map QCheck_alcotest.to_alcotest in
  [ ( "lxr:lifecycle",
      [ Alcotest.test_case "young garbage dies" `Quick test_young_garbage_dies;
        Alcotest.test_case "rooted survives" `Quick test_rooted_object_survives;
        Alcotest.test_case "transitive survival" `Quick test_transitive_survival;
        Alcotest.test_case "drop reclaims" `Quick test_dropped_reference_reclaimed;
        Alcotest.test_case "coalescing intermediates" `Quick test_coalescing_intermediate_referent;
        Alcotest.test_case "root deferral" `Quick test_root_deferral_drop ] );
    ( "lxr:satb",
      [ Alcotest.test_case "cycle reclaimed" `Quick test_cycle_reclaimed_by_satb;
        Alcotest.test_case "self cycle" `Quick test_self_cycle_reclaimed;
        Alcotest.test_case "stuck count reclaimed" `Quick test_stuck_count_reclaimed_by_satb;
        Alcotest.test_case "live survives traces" `Quick test_live_object_survives_satb_cycles ] );
    ( "lxr:barrier",
      [ Alcotest.test_case "coalesces" `Quick test_barrier_coalesces;
        Alcotest.test_case "ignores new objects" `Quick test_barrier_ignores_new_objects ] );
    ( "lxr:evacuation",
      [ Alcotest.test_case "young evacuation" `Quick test_young_evacuation_moves_objects;
        Alcotest.test_case "mature evacuation" `Quick test_mature_evacuation_preserves_graph ] );
    ( "lxr:ablations",
      [ Alcotest.test_case "-SATB cycle collection" `Quick
          (ablation_scenario Repro_lxr.Lxr.factory_no_satb_concurrency);
        Alcotest.test_case "-LD cycle collection" `Quick
          (ablation_scenario Repro_lxr.Lxr.factory_no_lazy_decrements);
        Alcotest.test_case "STW cycle collection" `Quick
          (ablation_scenario Repro_lxr.Lxr.factory_stw);
        Alcotest.test_case "object barrier cycle collection" `Quick
          (ablation_scenario Repro_lxr.Lxr.factory_object_barrier);
        Alcotest.test_case "regional evacuation cycle collection" `Quick
          (ablation_scenario Repro_lxr.Lxr.factory_regional_evacuation) ] );
    ( "lxr:object-barrier",
      [ Alcotest.test_case "lifecycle" `Quick test_object_barrier_lifecycle;
        Alcotest.test_case "one log per object" `Quick
          test_object_barrier_one_log_per_object ] );
    ( "lxr:regional",
      [ Alcotest.test_case "lifecycle across regions" `Quick
          test_regional_evacuation_lifecycle;
        Alcotest.test_case "backstop trace fires" `Quick test_satb_backstop_fires ] );
    ( "lxr:pressure",
      [ Alcotest.test_case "no OOM under churn" `Quick test_no_oom_under_pressure;
        Alcotest.test_case "large objects" `Quick test_large_objects_lifecycle ] );
    ( "lxr:random",
      qc
        [ random_safety_prop; random_safety_stw_prop; random_safety_objbar_prop;
          random_safety_regions_prop ] );
    ( "lxr:predictor",
      [ Alcotest.test_case "asymmetric bias" `Quick test_predictor_bias;
        Alcotest.test_case "convergence" `Quick test_predictor_converges;
        Alcotest.test_case "validation" `Quick test_predictor_validation ] );
    ( "lxr:components",
      [ Alcotest.test_case "config" `Quick test_config_scaling;
        Alcotest.test_case "stats" `Quick test_stats_percentages;
        Alcotest.test_case "phase breakdown" `Quick test_phase_breakdown;
        Alcotest.test_case "remset staleness" `Quick test_remset_staleness_tag;
        Alcotest.test_case "remset" `Quick test_remset_module ] ) ]
