(* Tests for the fleet serving tier: policy parsing, admission
   accounting, histogram merge semantics, domain-count determinism, the
   gc-aware-beats-round-robin property the fleet experiment reports, and
   the resilience layer — lifecycle machine, chaos schedules, client
   retry policy, SLO burn monitoring and the autoscaler. *)

open Repro_service
module Histogram = Repro_util.Histogram

let check = Alcotest.(check bool)

let lusearch = Repro_mutator.Benchmarks.find "lusearch"
let shen = Repro_collectors.Registry.find "shenandoah"

let spec_ok what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s spec rejected: %s" what m

let chaos_spec s = spec_ok "chaos" (Chaos.of_spec s)
let retry_spec s = spec_ok "retry" (Policy.Retry.of_spec s)
let slo_spec s = spec_ok "slo" (Slo.of_spec s)
let autoscale_spec s = spec_ok "autoscale" (Slo.Autoscale.of_spec s)

let fleet ?(policy = Policy.Gc_aware) ?(replicas = 2) ?(requests = 400)
    ?(domains = 1) ?(seed = 42) ?(load = 0.15) ?(verify = [])
    ?heap_factor ?queue_limit ?chaos ?retry ?slo ?autoscale
    ?(factory = shen) () =
  Fleet.run
    (Fleet.config ~policy ~replicas ~requests ~domains ~seed ~load ~verify
       ?heap_factor ?queue_limit ?chaos ?retry ?slo ?autoscale
       ~workload:lusearch ~factory ())

let accounted (r : Fleet.result) =
  r.completed + r.rejected + r.dropped + r.shed = r.requests

(* --- Policies ----------------------------------------------------------- *)

let test_policy_names () =
  check "three policies" true (List.length Policy.all = 3);
  List.iter
    (fun (name, p) ->
      check (name ^ " round-trips") true (Policy.of_string name = Ok p);
      check (name ^ " case-insensitive") true
        (Policy.of_string (String.uppercase_ascii name) = Ok p))
    Policy.all

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_policy_suggestion () =
  match Policy.of_string "gc-awre" with
  | Ok _ -> Alcotest.fail "typo resolved"
  | Error msg ->
    check "mentions the typo" true (contains msg "gc-awre");
    check "suggests the fix" true (contains msg "did you mean \"gc-aware\"")

(* --- Basic runs --------------------------------------------------------- *)

let test_fleet_smoke () =
  let r = fleet () in
  check "ok" true r.ok;
  check "collector name" true (r.collector = "Shenandoah");
  check "workload name" true (r.workload = "lusearch");
  check "everything accounted" true (accounted r);
  check "served all" true (r.completed > 0);
  check "wall advanced" true (r.wall_ns > 0.0);
  check "qps positive" true (Fleet.qps r > 0.0);
  check "qps_opt agrees" true (Fleet.qps_opt r = Some (Fleet.qps r));
  check "latency recorded" true (Histogram.count r.latency = r.completed);
  check "per-replica stats" true (List.length r.per_replica = r.replicas);
  check "replicas end serving" true
    (List.for_all (fun (s : Fleet.replica_stats) -> s.r_state = "serving")
       r.per_replica);
  check "no restarts without chaos" true
    (List.for_all (fun (s : Fleet.replica_stats) -> s.r_restarts = 0)
       r.per_replica);
  check "replica indices ascend" true
    (List.mapi (fun i (s : Fleet.replica_stats) -> s.r_index = i) r.per_replica
    |> List.for_all (fun b -> b))

let test_fleet_no_request_model () =
  let w = { lusearch with Repro_mutator.Workload.request = None } in
  let r = Fleet.run (Fleet.config ~workload:w ~factory:shen ()) in
  check "not ok" true (not r.ok);
  check "error explains" true
    (match r.error with Some m -> contains m "request model" | None -> false)

let test_fleet_unsupported_collector () =
  let r = fleet ~factory:(Repro_collectors.Registry.find "zgc") () in
  check "not ok" true (not r.ok);
  check "error mentions heap" true
    (match r.error with Some m -> contains m "heap" | None -> false);
  check "qps_opt is None on failure" true (Fleet.qps_opt r = None);
  check "qps raises on failure" true
    (match Fleet.qps r with
    | _ -> false
    | exception Invalid_argument m ->
      (* the message must identify the run *)
      contains m "lusearch")

let test_fleet_verified () =
  let r = fleet ~verify:Repro_verify.Verifier.[ Pre_pause; Post_pause; End_of_run ] () in
  check "ok" true r.ok;
  check "verifier ran" true (r.verifier_checks > 0);
  check "no violations" true (r.violations = 0)

(* --- Histogram merge vs pooled samples ---------------------------------- *)

let test_merge_equals_pooled () =
  (* Bucket-wise merge of per-shard histograms must equal one histogram
     fed every sample — the property the fleet's metric merging step
     relies on. *)
  let prng = Repro_util.Prng.create 7 in
  let shards = Array.init 4 (fun _ -> Histogram.create ()) in
  let pooled = Histogram.create () in
  for _ = 1 to 10_000 do
    let v = 1 + Repro_util.Prng.int prng 1_000_000 in
    Histogram.record shards.(Repro_util.Prng.int prng 4) v;
    Histogram.record pooled v
  done;
  let merged = Histogram.create () in
  Array.iter (fun h -> Histogram.merge ~into:merged h) shards;
  check "merged = pooled" true (Histogram.equal merged pooled)

let test_fleet_merge_is_per_replica_merge () =
  let r = fleet ~replicas:3 () in
  let relatency = Histogram.create () in
  let requeueing = Histogram.create () in
  List.iter
    (fun (s : Fleet.replica_stats) ->
      Histogram.merge ~into:relatency s.r_latency;
      Histogram.merge ~into:requeueing s.r_queueing)
    r.per_replica;
  check "latency merged from replicas" true
    (Histogram.equal relatency r.latency);
  check "queueing merged from replicas" true
    (Histogram.equal requeueing r.queueing)

(* --- Lifecycle state machine --------------------------------------------- *)

let test_lifecycle_machine () =
  let open Lifecycle in
  let lc = create ~now:0.0 in
  check "starts warming" true (state lc = Warming);
  check "warming is routable" true (routable lc);
  (* slow-start: limit 8 over 4 rounds ramps 2, 4, 6, 8 *)
  check "ramp round 1" true (admission lc ~queue_limit:8 ~ramp_rounds:4 = 2);
  tick_round lc;
  check "ramp round 2" true (admission lc ~queue_limit:8 ~ramp_rounds:4 = 4);
  tick_round lc;
  tick_round lc;
  check "ramp saturates" true (admission lc ~queue_limit:8 ~ramp_rounds:4 = 8);
  check "no ramp = full admission" true
    (admission lc ~queue_limit:8 ~ramp_rounds:0 = 8);
  check "ramp floor is 1" true (admission lc ~queue_limit:1 ~ramp_rounds:64 = 1);
  transition lc ~now:10.0 Serving;
  check "serving full admission" true
    (admission lc ~queue_limit:8 ~ramp_rounds:4 = 8);
  check "serving -> restarting is illegal" true
    (match transition lc ~now:20.0 Restarting with
    | () -> false
    | exception Illegal m -> contains m "serving -> restarting");
  transition lc ~now:30.0 Down;
  check "down not routable" true (not (routable lc));
  check "down admits nothing" true (admission lc ~queue_limit:8 ~ramp_rounds:4 = 0);
  check "down -> serving is illegal" true
    (match transition lc ~now:30.0 Serving with
    | () -> false
    | exception Illegal _ -> true);
  transition lc ~now:40.0 Restarting;
  check "relaunch counted" true (lc.restarts = 1);
  check "restarting admits nothing" true
    (admission lc ~queue_limit:8 ~ramp_rounds:4 = 0);
  transition lc ~now:50.0 Warming;
  finish lc ~now:60.0;
  let t = time_in_alist lc in
  check "one entry per state" true (List.length t = List.length states);
  check "warming time" true (List.assoc "warming" t = 20.0);
  check "serving time" true (List.assoc "serving" t = 20.0);
  check "down time" true (List.assoc "down" t = 10.0);
  check "restarting time" true (List.assoc "restarting" t = 10.0);
  check "stretches cover the run" true
    (List.fold_left (fun a (_, v) -> a +. v) 0.0 t = 60.0)

(* --- Chaos spec parsing and scheduling ----------------------------------- *)

let test_chaos_spec () =
  let s =
    chaos_spec
      "crash@0.3:r1,stall@0.45+0.1x4,heap-shrink@0.6x0.7,\
       flash-crowd@0.5+0.15x3,restart:2ms,warmup:6,auto-restart:off"
  in
  check "four events" true (List.length s.Chaos.events = 4);
  check "restart delay" true (s.Chaos.restart_delay_ns = Some 2e6);
  check "warmup rounds" true (s.Chaos.warmup_rounds = Some 6);
  check "auto-restart off" true (not s.Chaos.auto_restart);
  let crash = List.hd s.Chaos.events in
  check "explicit target" true (crash.Chaos.replica = Some 1);
  check "crash is instantaneous" true (crash.Chaos.dur = 0.0);
  (match Chaos.of_spec "crsh@0.3" with
  | Ok _ -> Alcotest.fail "typo parsed"
  | Error m ->
    check "mentions the typo" true (contains m "crsh");
    check "suggests crash" true (contains m "crash"));
  (match Chaos.of_spec "crash@1.5" with
  | Ok _ -> Alcotest.fail "out-of-range time parsed"
  | Error _ -> ());
  (match Chaos.of_spec "heap-shrink@0.5x0.01" with
  | Ok _ -> Alcotest.fail "out-of-range factor parsed"
  | Error m -> check "factor range named" true (contains m "[0.05, 1]"));
  (match Chaos.of_spec "crash@0.5:r-1" with
  | Ok _ -> Alcotest.fail "negative target parsed"
  | Error _ -> ())

let test_chaos_schedule_deterministic () =
  let spec = chaos_spec "crash@0.3,stall@0.5+0.1x2,flash-crowd@0.2+0.2x4" in
  let mk () = Chaos.schedule spec ~seed:7 ~replicas:4 ~t0:0.0 ~span:1000.0 in
  let a = Chaos.due (mk ()) ~until:infinity in
  let b = Chaos.due (mk ()) ~until:infinity in
  check "three firings" true (List.length a = 3);
  check "same seed, same timeline" true (a = b);
  check "time-ordered" true
    (let rec sorted = function
       | (x : Chaos.firing) :: (y :: _ as rest) ->
         x.f_start <= y.f_start && sorted rest
       | _ -> true
     in
     sorted a);
  check "targets drawn in range" true
    (List.for_all
       (fun (f : Chaos.firing) ->
         f.f_replica = -1 || (f.f_replica >= 0 && f.f_replica < 4))
       a);
  check "flash windows exposed" true
    (List.length (Chaos.flash_windows (mk ())) = 1)

(* --- Client retry policy -------------------------------------------------- *)

let test_retry_spec () =
  check "none is a single attempt" true (Policy.Retry.none.max_attempts = 1);
  check "none has no deadline" true (Policy.Retry.none.timeout_ns = None);
  let t = retry_spec "timeout:5ms,max:3,backoff:500us,hedge:2ms" in
  check "timeout" true (t.Policy.Retry.timeout_ns = Some 5e6);
  check "attempts" true (t.Policy.Retry.max_attempts = 3);
  check "hedge" true (t.Policy.Retry.hedge_ns = Some 2e6);
  check "backoff base" true (Policy.Retry.delay t ~attempt:1 = 5e5);
  check "backoff doubles" true (Policy.Retry.delay t ~attempt:3 = 2e6);
  (match Policy.Retry.of_spec "max:3" with
  | Ok _ -> Alcotest.fail "retries without a deadline parsed"
  | Error m -> check "needs timeout" true (contains m "timeout"));
  (match Policy.Retry.of_spec "timeout:5ms,mx:3" with
  | Ok _ -> Alcotest.fail "typo parsed"
  | Error m -> check "suggests max" true (contains m "max"))

(* --- SLO monitor and autoscaler ------------------------------------------ *)

let test_slo_spec_and_burn () =
  (match Slo.of_spec "window:8" with
  | Ok _ -> Alcotest.fail "objective-free spec parsed"
  | Error m -> check "demands an objective" true (contains m "percentile"));
  (match Slo.of_spec "p99.9:2ms,windw:8" with
  | Ok _ -> Alcotest.fail "typo parsed"
  | Error m -> check "suggests window" true (contains m "window"));
  (match Slo.of_spec "p99.9:2ms,shed:1.5" with
  | Ok _ -> Alcotest.fail "out-of-range shed parsed"
  | Error _ -> ());
  let spec = slo_spec "p99:10ms,window:4,burn-high:4,burn-low:1,shed:0.25" in
  check "percentile" true (spec.Slo.percentile = 99.0);
  check "budget" true (spec.Slo.budget_ns = 1e7);
  let m = Slo.create spec in
  check "starts quiet" true (Slo.burn m = 0.0 && Slo.shedding m = 0.0);
  (* 10% violations against a 1% allowance: burn 10 -> brown-out *)
  for _ = 1 to 90 do
    Slo.observe m ~latency_ns:1e6
  done;
  for _ = 1 to 10 do
    Slo.observe m ~latency_ns:1e8
  done;
  Slo.tick m ~now:1.0;
  check "burn is 10x" true (Float.abs (Slo.burn m -. 10.0) < 1e-9);
  check "sheds the spec fraction" true (Slo.shedding m = 0.25);
  check "breach counted" true (Slo.breach_rounds m = 1);
  (* clean rounds flush the window; hysteresis releases at burn-low *)
  for i = 2 to 5 do
    for _ = 1 to 100 do
      Slo.observe m ~latency_ns:1e6
    done;
    Slo.tick m ~now:(Float.of_int i)
  done;
  check "burn decays to zero" true (Slo.burn m = 0.0);
  check "shedding released" true (Slo.shedding m = 0.0);
  check "peak survives" true (Slo.peak_burn m >= 10.0);
  check "one timeline point per tick" true (List.length (Slo.timeline m) = 5);
  check "timeline oldest first" true
    ((List.hd (Slo.timeline m)).Slo.time = 1.0)

let test_autoscale_controller () =
  (match Slo.Autoscale.of_spec "min:4,max:2" with
  | Ok _ -> Alcotest.fail "min > max parsed"
  | Error m -> check "orders min/max" true (contains m "min"));
  (match Slo.Autoscale.of_spec "up:4" with
  | Ok _ -> Alcotest.fail "max-free spec parsed"
  | Error m -> check "demands max" true (contains m "max"));
  let spec =
    autoscale_spec "min:1,max:4,up:4,down:0.25,patience:2,cooldown:3"
  in
  let t = Slo.Autoscale.create spec in
  check "patience holds the first hot tick" true
    (Slo.Autoscale.tick t ~burn:5.0 ~active:2 = `Hold);
  check "sustained burn scales up" true
    (Slo.Autoscale.tick t ~burn:5.0 ~active:2 = `Up);
  check "cooldown holds" true
    (Slo.Autoscale.tick t ~burn:5.0 ~active:3 = `Hold);
  let d = Slo.Autoscale.create spec in
  check "cold tick holds" true (Slo.Autoscale.tick d ~burn:0.0 ~active:3 = `Hold);
  check "sustained quiet scales down" true
    (Slo.Autoscale.tick d ~burn:0.0 ~active:3 = `Down);
  let f = Slo.Autoscale.create spec in
  ignore (Slo.Autoscale.tick f ~burn:0.0 ~active:1);
  check "floor respected" true (Slo.Autoscale.tick f ~burn:0.0 ~active:1 = `Hold);
  let c = Slo.Autoscale.create spec in
  ignore (Slo.Autoscale.tick c ~burn:5.0 ~active:4);
  check "ceiling respected" true (Slo.Autoscale.tick c ~burn:5.0 ~active:4 = `Hold)

(* --- Admission bound and setup failure (all collectors) ------------------- *)

let test_fleet_rejected_path () =
  (* queue limit 1 under heavy load: the admission bound must bounce
     arrivals, and every bounce must land in a terminal bucket. *)
  let r = fleet ~queue_limit:1 ~load:2.0 ~requests:800 () in
  check "ok" true r.ok;
  check "admission bound bites" true (r.rejected > 0);
  check "everything accounted" true (accounted r);
  (* a retry budget turns rejections into backoff re-dispatches *)
  let rr =
    fleet ~queue_limit:1 ~load:2.0 ~requests:800
      ~retry:(retry_spec "timeout:400ms,max:4,backoff:100us") ()
  in
  check "retry ok" true rr.ok;
  check "rejections retried" true (rr.retries > 0);
  check "retry accounting holds" true (accounted rr);
  check "retries recover rejections" true (rr.rejected < r.rejected)

let test_setup_failure_every_collector () =
  (* A 0.05x heap cannot hold any workload's live set: setup must fail
     on some replica for every collector, as a reported error naming
     the replica (or the collector's own unsupported-heap message), and
     identically under domain parallelism. *)
  List.iter
    (fun (name, factory) ->
      let results =
        List.map
          (fun domains ->
            fleet ~factory ~heap_factor:0.05 ~replicas:3 ~domains ())
          [ 1; 4 ]
      in
      List.iter
        (fun (r : Fleet.result) ->
          check (name ^ " fails setup") true (not r.ok);
          check (name ^ " reports the failure") true
            (match r.error with
            | Some m ->
              contains m "unsupported:" || contains m "setup failed on replica"
            | None -> false);
          check (name ^ " qps_opt is None") true (Fleet.qps_opt r = None))
        results;
      match results with
      | [ a; b ] -> check (name ^ " same error at domains=4") true (a.error = b.error)
      | _ -> assert false)
    Repro_collectors.Registry.all

(* --- Ladder propagation (per-replica and fleet-summed) -------------------- *)

let test_fleet_ladder_propagation () =
  (* A tight heap forces allocation-failure collections, so the
     degradation ladder's rung counters must surface per replica and
     sum to the fleet total. *)
  let r = fleet ~heap_factor:1.1 ~requests:1200 () in
  check "ok" true r.ok;
  check "fleet ladder has the rungs" true (List.mem_assoc "ladder_young" r.ladder);
  check "rungs exercised" true (List.exists (fun (_, v) -> v > 0.0) r.ladder);
  check "replicas carry ladders" true
    (List.for_all
       (fun (s : Fleet.replica_stats) -> List.mem_assoc "ladder_young" s.r_ladder)
       r.per_replica);
  List.iter
    (fun (k, v) ->
      let sum =
        List.fold_left
          (fun a (s : Fleet.replica_stats) ->
            a +. Option.value (List.assoc_opt k s.r_ladder) ~default:0.0)
          0.0 r.per_replica
      in
      check (k ^ " sums across replicas") true (sum = v))
    r.ladder

(* --- Write-barrier counter propagation ------------------------------------ *)

let test_fleet_wb_propagation () =
  (* Journal-RC publishes wb_fast/wb_slow through its stats; the fleet
     must fold them per replica at engine retirement and sum them to the
     fleet totals, exactly like the ladder counters. *)
  let r =
    fleet ~factory:Repro_collectors.Journal_rc.factory ~requests:1200 ()
  in
  check "ok" true r.ok;
  check "fleet saw barrier fast paths" true (r.wb_fast > 0.0);
  check "fleet saw chunk publications" true (r.wb_slow > 0.0);
  check "wb_fast sums across replicas" true
    (List.fold_left
       (fun a (s : Fleet.replica_stats) -> a +. s.r_wb_fast)
       0.0 r.per_replica
    = r.wb_fast);
  check "wb_slow sums across replicas" true
    (List.fold_left
       (fun a (s : Fleet.replica_stats) -> a +. s.r_wb_slow)
       0.0 r.per_replica
    = r.wb_slow);
  (* Collectors without barrier counters report zeros, not noise. *)
  let r0 = fleet ~factory:Repro_collectors.Registry.(find "g1") () in
  check "g1 fleet ok" true r0.ok;
  check "no wb counters without a logging barrier" true
    (r0.wb_fast = 0.0 && r0.wb_slow = 0.0)

(* --- Chaos integration ---------------------------------------------------- *)

let test_chaos_crash_and_restart () =
  let r =
    fleet ~replicas:3 ~requests:2000 ~load:0.3
      ~chaos:(chaos_spec "crash@0.3:r0,crash@0.6:r1") ()
  in
  check "ok" true r.ok;
  check "both crashes fired" true (r.chaos_events = 2);
  check "everything accounted" true (accounted r);
  check "work still completes" true (r.completed > 0);
  check "availability in range" true
    (r.availability > 0.0 && r.availability <= 1.0);
  let stats i = List.nth r.per_replica i in
  check "replica 0 restarted" true ((stats 0).Fleet.r_restarts >= 1);
  check "replica 1 restarted" true ((stats 1).Fleet.r_restarts >= 1);
  check "replica 2 untouched" true ((stats 2).Fleet.r_restarts = 0);
  check "death reason cleared after recovery" true
    ((stats 0).Fleet.r_oom = None);
  check "down time recorded" true
    (List.assoc "down" (stats 0).Fleet.r_time_in > 0.0);
  check "replicas end serving" true
    (List.for_all (fun (s : Fleet.replica_stats) -> s.r_state = "serving")
       r.per_replica)

let test_chaos_without_auto_restart () =
  let r =
    fleet ~replicas:2 ~requests:1000 ~load:0.3
      ~chaos:(chaos_spec "crash@0.3:r0,auto-restart:off") ()
  in
  check "ok" true r.ok;
  check "everything accounted" true (accounted r);
  let s0 = List.hd r.per_replica in
  check "replica 0 stays down" true (s0.Fleet.r_state = "down");
  check "no relaunch" true (s0.Fleet.r_restarts = 0);
  check "death reason kept" true (s0.Fleet.r_oom <> None);
  check "survivor carried the load" true
    ((List.nth r.per_replica 1).Fleet.r_served > 0)

let test_hedged_requests () =
  let r =
    fleet ~replicas:4 ~requests:4000 ~load:0.9
      ~retry:(retry_spec "timeout:400ms,hedge:50us") ()
  in
  check "ok" true r.ok;
  check "hedges dispatched" true (r.hedges > 0);
  check "some hedges win" true (r.hedge_wins > 0);
  check "wins bounded by hedges" true (r.hedge_wins <= r.hedges);
  check "everything accounted" true (accounted r)

let test_chaos_domains_deterministic () =
  (* The tentpole's contract: the full resilience stack — chaos firings,
     restarts, retries, hedging, SLO decisions — is bit-identical across
     domain counts. *)
  let mk domains =
    fleet ~replicas:4 ~requests:2000 ~domains ~load:0.3
      ~chaos:(chaos_spec "crash@0.3,heap-shrink@0.55x0.7,flash-crowd@0.6+0.1x3")
      ~retry:(retry_spec "timeout:80ms,max:3,backoff:200us")
      ~slo:(slo_spec "p99.9:10ms") ()
  in
  let a = mk 1 and b = mk 4 in
  check "both ok" true (a.ok && b.ok);
  check "chaos fired" true (a.chaos_events > 0);
  check "latency identical" true (Histogram.equal a.latency b.latency);
  check "queueing identical" true (Histogram.equal a.queueing b.queueing);
  check "wall identical" true (a.wall_ns = b.wall_ns);
  check "completed identical" true (a.completed = b.completed);
  check "rejected identical" true (a.rejected = b.rejected);
  check "dropped identical" true (a.dropped = b.dropped);
  check "shed identical" true (a.shed = b.shed);
  check "timeouts identical" true (a.timeouts = b.timeouts);
  check "retries identical" true (a.retries = b.retries);
  check "hedges identical" true (a.hedges = b.hedges);
  check "chaos events identical" true (a.chaos_events = b.chaos_events);
  check "availability identical" true (a.availability = b.availability);
  check "slo peak burn identical" true (a.slo_peak_burn = b.slo_peak_burn);
  check "slo timeline identical" true (a.slo_timeline = b.slo_timeline);
  List.iter2
    (fun (x : Fleet.replica_stats) (y : Fleet.replica_stats) ->
      check "replica served identical" true (x.r_served = y.r_served);
      check "replica restarts identical" true (x.r_restarts = y.r_restarts);
      check "replica state identical" true (x.r_state = y.r_state);
      check "replica time-in-state identical" true (x.r_time_in = y.r_time_in);
      check "replica latency identical" true
        (Histogram.equal x.r_latency y.r_latency))
    a.per_replica b.per_replica

let test_autoscale_integration () =
  (* Overload a two-replica fleet that is allowed to grow: the burn
     monitor must trip the autoscaler into activating spare slots. *)
  let r =
    fleet ~replicas:2 ~requests:3000 ~load:1.4
      ~slo:(slo_spec "p99.9:2ms,window:16")
      ~autoscale:(autoscale_spec "min:1,max:4,up:1,down:0.1,patience:4,cooldown:16")
      ()
  in
  check "ok" true r.ok;
  check "scaled up" true (r.scale_ups > 0);
  check "spare slots activated" true (List.length r.per_replica > 2);
  check "everything accounted" true (accounted r)

let test_autoscale_requires_slo () =
  let r = fleet ~autoscale:(autoscale_spec "max:4") () in
  check "not ok" true (not r.ok);
  check "explains the dependency" true
    (match r.error with Some m -> contains m "SLO" | None -> false)

(* --- Domain-count determinism (no chaos) --------------------------------- *)

let test_domains_deterministic () =
  let a = fleet ~replicas:4 ~requests:800 ~domains:1 () in
  let b = fleet ~replicas:4 ~requests:800 ~domains:4 () in
  check "both ok" true (a.ok && b.ok);
  check "latency identical" true (Histogram.equal a.latency b.latency);
  check "queueing identical" true (Histogram.equal a.queueing b.queueing);
  check "wall identical" true (a.wall_ns = b.wall_ns);
  check "completed identical" true (a.completed = b.completed);
  check "rejected identical" true (a.rejected = b.rejected);
  check "diversions identical" true (a.diversions = b.diversions);
  List.iter2
    (fun (x : Fleet.replica_stats) (y : Fleet.replica_stats) ->
      check "replica served identical" true (x.r_served = y.r_served);
      check "replica latency identical" true
        (Histogram.equal x.r_latency y.r_latency);
      check "replica wall identical" true (x.r_wall_ns = y.r_wall_ns))
    a.per_replica b.per_replica

(* --- The experiment's headline property ---------------------------------- *)

let pctl h p = Option.value (Histogram.percentile_opt h p) ~default:0

let test_gc_aware_beats_round_robin () =
  (* The fleet experiment's acceptance shape: on lusearch at a 1.3x heap,
     gc-aware routing hides Shenandoah's per-replica pauses from the
     fleet p99.9 where round-robin queues arrivals straight into them. *)
  let rr =
    fleet ~policy:Policy.Round_robin ~replicas:4 ~requests:12_000 ()
  in
  let ga = fleet ~policy:Policy.Gc_aware ~replicas:4 ~requests:12_000 () in
  check "both ok" true (rr.ok && ga.ok);
  check "round-robin never diverts" true (rr.diversions = 0);
  check "gc-aware diverts" true (ga.diversions > 0);
  let rr999 = pctl rr.latency 99.9 and ga999 = pctl ga.latency 99.9 in
  check
    (Printf.sprintf "gc-aware p99.9 (%dns) < round-robin p99.9 (%dns)" ga999
       rr999)
    true
    (ga999 < rr999)

let suite =
  [ ( "service",
      [ Alcotest.test_case "policy names" `Quick test_policy_names;
        Alcotest.test_case "policy suggestion" `Quick test_policy_suggestion;
        Alcotest.test_case "fleet smoke" `Quick test_fleet_smoke;
        Alcotest.test_case "no request model" `Quick test_fleet_no_request_model;
        Alcotest.test_case "unsupported collector" `Quick
          test_fleet_unsupported_collector;
        Alcotest.test_case "verified fleet" `Quick test_fleet_verified;
        Alcotest.test_case "merge = pooled" `Quick test_merge_equals_pooled;
        Alcotest.test_case "fleet merge from replicas" `Quick
          test_fleet_merge_is_per_replica_merge;
        Alcotest.test_case "lifecycle machine" `Quick test_lifecycle_machine;
        Alcotest.test_case "chaos spec" `Quick test_chaos_spec;
        Alcotest.test_case "chaos schedule deterministic" `Quick
          test_chaos_schedule_deterministic;
        Alcotest.test_case "retry spec" `Quick test_retry_spec;
        Alcotest.test_case "slo spec and burn" `Quick test_slo_spec_and_burn;
        Alcotest.test_case "autoscale controller" `Quick
          test_autoscale_controller;
        Alcotest.test_case "rejected path" `Quick test_fleet_rejected_path;
        Alcotest.test_case "setup failure every collector" `Quick
          test_setup_failure_every_collector;
        Alcotest.test_case "ladder propagation" `Quick
          test_fleet_ladder_propagation;
        Alcotest.test_case "wb counter propagation" `Quick
          test_fleet_wb_propagation;
        Alcotest.test_case "autoscale requires slo" `Quick
          test_autoscale_requires_slo;
        Alcotest.test_case "chaos crash and restart" `Slow
          test_chaos_crash_and_restart;
        Alcotest.test_case "chaos without auto-restart" `Slow
          test_chaos_without_auto_restart;
        Alcotest.test_case "hedged requests" `Slow test_hedged_requests;
        Alcotest.test_case "chaos domains deterministic" `Slow
          test_chaos_domains_deterministic;
        Alcotest.test_case "autoscale integration" `Slow
          test_autoscale_integration;
        Alcotest.test_case "domains deterministic" `Slow
          test_domains_deterministic;
        Alcotest.test_case "gc-aware beats round-robin" `Slow
          test_gc_aware_beats_round_robin ] ) ]
