(* Tests for the fleet serving tier: policy parsing, admission
   accounting, histogram merge semantics, domain-count determinism, and
   the gc-aware-beats-round-robin property the fleet experiment reports. *)

open Repro_service
module Histogram = Repro_util.Histogram

let check = Alcotest.(check bool)

let lusearch = Repro_mutator.Benchmarks.find "lusearch"
let shen = Repro_collectors.Registry.find "shenandoah"

let fleet ?(policy = Policy.Gc_aware) ?(replicas = 2) ?(requests = 400)
    ?(domains = 1) ?(seed = 42) ?(load = 0.15) ?(verify = [])
    ?(factory = shen) () =
  Fleet.run
    (Fleet.config ~policy ~replicas ~requests ~domains ~seed ~load ~verify
       ~workload:lusearch ~factory ())

(* --- Policies ----------------------------------------------------------- *)

let test_policy_names () =
  check "three policies" true (List.length Policy.all = 3);
  List.iter
    (fun (name, p) ->
      check (name ^ " round-trips") true (Policy.of_string name = Ok p);
      check (name ^ " case-insensitive") true
        (Policy.of_string (String.uppercase_ascii name) = Ok p))
    Policy.all

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_policy_suggestion () =
  match Policy.of_string "gc-awre" with
  | Ok _ -> Alcotest.fail "typo resolved"
  | Error msg ->
    check "mentions the typo" true (contains msg "gc-awre");
    check "suggests the fix" true (contains msg "did you mean \"gc-aware\"")

(* --- Basic runs --------------------------------------------------------- *)

let test_fleet_smoke () =
  let r = fleet () in
  check "ok" true r.ok;
  check "collector name" true (r.collector = "Shenandoah");
  check "workload name" true (r.workload = "lusearch");
  check "everything accounted" true
    (r.completed + r.rejected + r.dropped = r.requests);
  check "served all" true (r.completed > 0);
  check "wall advanced" true (r.wall_ns > 0.0);
  check "qps positive" true (Fleet.qps r > 0.0);
  check "latency recorded" true (Histogram.count r.latency = r.completed);
  check "per-replica stats" true (List.length r.per_replica = r.replicas);
  check "replica indices ascend" true
    (List.mapi (fun i (s : Fleet.replica_stats) -> s.r_index = i) r.per_replica
    |> List.for_all (fun b -> b))

let test_fleet_no_request_model () =
  let w = { lusearch with Repro_mutator.Workload.request = None } in
  let r = Fleet.run (Fleet.config ~workload:w ~factory:shen ()) in
  check "not ok" true (not r.ok);
  check "error explains" true
    (match r.error with Some m -> contains m "request model" | None -> false)

let test_fleet_unsupported_collector () =
  let r = fleet ~factory:(Repro_collectors.Registry.find "zgc") () in
  check "not ok" true (not r.ok);
  check "error mentions heap" true
    (match r.error with Some m -> contains m "heap" | None -> false);
  check "qps zero on failure" true (Fleet.qps r = 0.0)

let test_fleet_verified () =
  let r = fleet ~verify:Repro_verify.Verifier.[ Pre_pause; Post_pause; End_of_run ] () in
  check "ok" true r.ok;
  check "verifier ran" true (r.verifier_checks > 0);
  check "no violations" true (r.violations = 0)

(* --- Histogram merge vs pooled samples ---------------------------------- *)

let test_merge_equals_pooled () =
  (* Bucket-wise merge of per-shard histograms must equal one histogram
     fed every sample — the property the fleet's metric merging step
     relies on. *)
  let prng = Repro_util.Prng.create 7 in
  let shards = Array.init 4 (fun _ -> Histogram.create ()) in
  let pooled = Histogram.create () in
  for _ = 1 to 10_000 do
    let v = 1 + Repro_util.Prng.int prng 1_000_000 in
    Histogram.record shards.(Repro_util.Prng.int prng 4) v;
    Histogram.record pooled v
  done;
  let merged = Histogram.create () in
  Array.iter (fun h -> Histogram.merge ~into:merged h) shards;
  check "merged = pooled" true (Histogram.equal merged pooled)

let test_fleet_merge_is_per_replica_merge () =
  let r = fleet ~replicas:3 () in
  let relatency = Histogram.create () in
  let requeueing = Histogram.create () in
  List.iter
    (fun (s : Fleet.replica_stats) ->
      Histogram.merge ~into:relatency s.r_latency;
      Histogram.merge ~into:requeueing s.r_queueing)
    r.per_replica;
  check "latency merged from replicas" true
    (Histogram.equal relatency r.latency);
  check "queueing merged from replicas" true
    (Histogram.equal requeueing r.queueing)

(* --- Domain-count determinism ------------------------------------------- *)

let test_domains_deterministic () =
  let a = fleet ~replicas:4 ~requests:800 ~domains:1 () in
  let b = fleet ~replicas:4 ~requests:800 ~domains:4 () in
  check "both ok" true (a.ok && b.ok);
  check "latency identical" true (Histogram.equal a.latency b.latency);
  check "queueing identical" true (Histogram.equal a.queueing b.queueing);
  check "wall identical" true (a.wall_ns = b.wall_ns);
  check "completed identical" true (a.completed = b.completed);
  check "rejected identical" true (a.rejected = b.rejected);
  check "diversions identical" true (a.diversions = b.diversions);
  List.iter2
    (fun (x : Fleet.replica_stats) (y : Fleet.replica_stats) ->
      check "replica served identical" true (x.r_served = y.r_served);
      check "replica latency identical" true
        (Histogram.equal x.r_latency y.r_latency);
      check "replica wall identical" true (x.r_wall_ns = y.r_wall_ns))
    a.per_replica b.per_replica

(* --- The experiment's headline property ---------------------------------- *)

let pctl h p = Option.value (Histogram.percentile_opt h p) ~default:0

let test_gc_aware_beats_round_robin () =
  (* The fleet experiment's acceptance shape: on lusearch at a 1.3x heap,
     gc-aware routing hides Shenandoah's per-replica pauses from the
     fleet p99.9 where round-robin queues arrivals straight into them. *)
  let rr =
    fleet ~policy:Policy.Round_robin ~replicas:4 ~requests:12_000 ()
  in
  let ga = fleet ~policy:Policy.Gc_aware ~replicas:4 ~requests:12_000 () in
  check "both ok" true (rr.ok && ga.ok);
  check "round-robin never diverts" true (rr.diversions = 0);
  check "gc-aware diverts" true (ga.diversions > 0);
  let rr999 = pctl rr.latency 99.9 and ga999 = pctl ga.latency 99.9 in
  check
    (Printf.sprintf "gc-aware p99.9 (%dns) < round-robin p99.9 (%dns)" ga999
       rr999)
    true
    (ga999 < rr999)

let suite =
  [ ( "service",
      [ Alcotest.test_case "policy names" `Quick test_policy_names;
        Alcotest.test_case "policy suggestion" `Quick test_policy_suggestion;
        Alcotest.test_case "fleet smoke" `Quick test_fleet_smoke;
        Alcotest.test_case "no request model" `Quick test_fleet_no_request_model;
        Alcotest.test_case "unsupported collector" `Quick
          test_fleet_unsupported_collector;
        Alcotest.test_case "verified fleet" `Quick test_fleet_verified;
        Alcotest.test_case "merge = pooled" `Quick test_merge_equals_pooled;
        Alcotest.test_case "fleet merge from replicas" `Quick
          test_fleet_merge_is_per_replica_merge;
        Alcotest.test_case "domains deterministic" `Slow
          test_domains_deterministic;
        Alcotest.test_case "gc-aware beats round-robin" `Slow
          test_gc_aware_beats_round_robin ] ) ]
