(* Unit and property tests for the Immix heap substrate. *)

open Repro_heap

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(heap_kb = 512) ?(rc_bits = 2) () =
  Heap_config.make ~heap_bytes:(heap_kb * 1024) ~rc_bits ()

(* --- Heap_config ---------------------------------------------------------- *)

let test_config_defaults () =
  let c = cfg () in
  check_int "block" 32768 c.block_bytes;
  check_int "line" 256 c.line_bytes;
  check_int "granule" 16 c.granule_bytes;
  check_int "rc bits" 2 c.rc_bits;
  check_int "los threshold" 16384 c.los_threshold;
  check_int "blocks" 16 (Heap_config.blocks c);
  check_int "lines/block" 128 (Heap_config.lines_per_block c);
  check_int "granules/line" 16 (Heap_config.granules_per_line c);
  check_int "stuck" 3 (Heap_config.stuck_count c)

let test_config_rounds_heap () =
  let c = Heap_config.make ~heap_bytes:(33 * 1024) () in
  check_int "rounded to block" 65536 c.heap_bytes

let test_config_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "non-pow2 block" true
    (raises (fun () -> Heap_config.make ~heap_bytes:65536 ~block_bytes:33000 ()));
  check "bad rc bits" true
    (raises (fun () -> Heap_config.make ~heap_bytes:65536 ~rc_bits:3 ()));
  check "line > block" true
    (raises (fun () ->
         Heap_config.make ~heap_bytes:65536 ~block_bytes:1024 ~line_bytes:2048 ()));
  check "tiny heap" true (raises (fun () -> Heap_config.make ~heap_bytes:1024 ()))

(* --- Addr ------------------------------------------------------------------ *)

let test_addr_arithmetic () =
  let c = cfg () in
  check_int "block of 0" 0 (Addr.block_of c 0);
  check_int "block of 32768" 1 (Addr.block_of c 32768);
  check_int "block start" 65536 (Addr.block_start c 2);
  check_int "line of 256" 1 (Addr.line_of c 256);
  check_int "line in block wraps" 0 (Addr.line_in_block c 32768);
  check_int "granule of 31" 1 (Addr.granule_of c 31);
  check "granule aligned" true (Addr.is_granule_aligned c 32);
  check "granule unaligned" false (Addr.is_granule_aligned c 33);
  check "valid" true (Addr.valid c 0);
  check "invalid" false (Addr.valid c (512 * 1024))

let test_addr_lines_covered () =
  let c = cfg () in
  let lo, hi = Addr.lines_covered c ~addr:0 ~size:256 in
  check_int "single line lo" 0 lo;
  check_int "single line hi" 0 hi;
  let lo, hi = Addr.lines_covered c ~addr:128 ~size:256 in
  check_int "straddle lo" 0 lo;
  check_int "straddle hi" 1 hi

(* --- Rc_table --------------------------------------------------------------- *)

let test_rc_inc_dec () =
  let c = cfg () in
  let t = Rc_table.create c in
  check_int "initial zero" 0 (Rc_table.get t c 0);
  (match Rc_table.inc t c 0 with
  | `Became 1 -> ()
  | _ -> Alcotest.fail "expected Became 1");
  (match Rc_table.inc t c 0 with
  | `Became 2 -> ()
  | _ -> Alcotest.fail "expected Became 2");
  (match Rc_table.dec t c 0 with
  | `Became 1 -> ()
  | _ -> Alcotest.fail "expected Became 1");
  (match Rc_table.dec t c 0 with
  | `Became 0 -> ()
  | _ -> Alcotest.fail "expected Became 0");
  (match Rc_table.dec t c 0 with
  | `Underflow -> ()
  | _ -> Alcotest.fail "expected Underflow")

let test_rc_stick () =
  let c = cfg () in
  let t = Rc_table.create c in
  ignore (Rc_table.inc t c 16);
  ignore (Rc_table.inc t c 16);
  (* Third increment reaches 3 = stuck. *)
  (match Rc_table.inc t c 16 with
  | `Stuck -> ()
  | `Became n -> Alcotest.failf "expected Stuck, got Became %d" n);
  check_int "stuck value" 3 (Rc_table.get t c 16);
  (match Rc_table.dec t c 16 with
  | `Stuck -> ()
  | _ -> Alcotest.fail "stuck counts never decremented");
  (match Rc_table.inc t c 16 with
  | `Stuck -> ()
  | _ -> Alcotest.fail "stuck counts never incremented")

let test_rc_neighbours_independent () =
  let c = cfg () in
  let t = Rc_table.create c in
  (* Counts pack 4-per-byte at 2 bits: neighbours must not interfere. *)
  ignore (Rc_table.inc t c 0);
  ignore (Rc_table.inc t c 16);
  ignore (Rc_table.inc t c 16);
  ignore (Rc_table.inc t c 32);
  check_int "g0" 1 (Rc_table.get t c 0);
  check_int "g1" 2 (Rc_table.get t c 16);
  check_int "g2" 1 (Rc_table.get t c 32);
  check_int "g3" 0 (Rc_table.get t c 48)

let test_rc_wider_bits () =
  let c = cfg ~rc_bits:8 () in
  let t = Rc_table.create c in
  for _ = 1 to 254 do
    ignore (Rc_table.inc t c 0)
  done;
  check_int "count 254" 254 (Rc_table.get t c 0);
  (match Rc_table.inc t c 0 with
  | `Stuck -> ()
  | _ -> Alcotest.fail "sticks at 255")

let test_rc_clear_range () =
  let c = cfg () in
  let t = Rc_table.create c in
  ignore (Rc_table.inc t c 0);
  Rc_table.set t c 256 3;
  Rc_table.clear_range t c ~addr:0 ~size:512;
  check_int "cleared header" 0 (Rc_table.get t c 0);
  check_int "cleared marker" 0 (Rc_table.get t c 256);
  check_int "beyond untouched" 0 (Rc_table.get t c 512)

let test_rc_straddle () =
  let c = cfg () in
  let t = Rc_table.create c in
  (* A 700-byte object at line 0 covers lines 0..2: marker on line 1 only
     (trailing lines except the last, §3.1). *)
  Rc_table.mark_straddle t c ~addr:0 ~size:700;
  check_int "line 1 marked" 3 (Rc_table.get t c 256);
  check_int "line 2 (last) unmarked" 0 (Rc_table.get t c 512);
  check "line 1 not free" false (Rc_table.line_is_free t c 1);
  check "line 2 free" true (Rc_table.line_is_free t c 2)

let test_rc_line_block_free () =
  let c = cfg () in
  let t = Rc_table.create c in
  check "line free" true (Rc_table.line_is_free t c 0);
  check "block free" true (Rc_table.block_is_free t c 0);
  ignore (Rc_table.inc t c 304);
  check "line 1 used" false (Rc_table.line_is_free t c 1);
  check "block not free" false (Rc_table.block_is_free t c 0);
  check_int "127 free lines" 127 (Rc_table.free_lines_in_block t c 0);
  check_int "1 live granule" 1 (Rc_table.live_granules_in_block t c 0)

let rc_inc_dec_roundtrip_prop =
  QCheck.Test.make ~name:"rc inc^n dec^n returns to zero (below stuck)" ~count:200
    QCheck.(int_range 0 2)
    (fun n ->
      let c = cfg () in
      let t = Rc_table.create c in
      for _ = 1 to n do
        ignore (Rc_table.inc t c 64)
      done;
      for _ = 1 to n do
        ignore (Rc_table.dec t c 64)
      done;
      Rc_table.get t c 64 = 0)

(* --- Mark_bitset ------------------------------------------------------------ *)

let test_marks () =
  let m = Mark_bitset.create () in
  check "initially unmarked" false (Mark_bitset.marked m 5);
  Mark_bitset.mark m 5;
  check "marked" true (Mark_bitset.marked m 5);
  check "neighbour unmarked" false (Mark_bitset.marked m 6);
  Mark_bitset.unmark m 5;
  check "unmarked" false (Mark_bitset.marked m 5)

let test_marks_growth () =
  let m = Mark_bitset.create () in
  Mark_bitset.mark m 1_000_000;
  check "grown" true (Mark_bitset.marked m 1_000_000);
  check "others clear" false (Mark_bitset.marked m 999_999)

let test_marks_clear () =
  let m = Mark_bitset.create () in
  Mark_bitset.mark m 1;
  Mark_bitset.mark m 100_000;
  Mark_bitset.clear m;
  check "cleared small" false (Mark_bitset.marked m 1);
  check "cleared large" false (Mark_bitset.marked m 100_000)

(* --- Reuse_table ------------------------------------------------------------ *)

let test_reuse () =
  let c = cfg () in
  let t = Reuse_table.create c in
  check_int "initial" 0 (Reuse_table.get t 3);
  Reuse_table.bump t 3;
  Reuse_table.bump t 3;
  check_int "bumped" 2 (Reuse_table.get t 3);
  Reuse_table.bump_range t ~first:5 ~last:7;
  check_int "range" 1 (Reuse_table.get t 6);
  Reuse_table.reset_all t;
  check_int "reset" 0 (Reuse_table.get t 3)

(* --- Obj_model -------------------------------------------------------------- *)

let test_registry_basics () =
  let reg = Obj_model.Registry.create () in
  let o = Obj_model.Registry.register reg ~size:64 ~nfields:4 ~addr:0 ~birth_epoch:1 in
  check_int "id starts at 1" 1 o.id;
  check_int "fields null" Obj_model.null (Obj_model.field o 0);
  check "mem" true (Obj_model.Registry.mem reg o.id);
  check_int "live bytes" 64 (Obj_model.Registry.live_bytes reg);
  Obj_model.Registry.free reg o;
  check "freed" false (Obj_model.Registry.mem reg o.id);
  check "is_freed" true (Obj_model.is_freed o);
  check_int "bytes back" 0 (Obj_model.Registry.live_bytes reg);
  (* Double free is idempotent. *)
  Obj_model.Registry.free reg o;
  check_int "still zero" 0 (Obj_model.Registry.live_bytes reg)

let test_logged_bits () =
  let reg = Obj_model.Registry.create () in
  let o = Obj_model.Registry.register reg ~size:64 ~nfields:10 ~addr:0 ~birth_epoch:0 in
  (* New objects are born all-logged (barrier fast path). *)
  check "born logged" true (Obj_model.field_logged o 0);
  check "born logged last" true (Obj_model.field_logged o 9);
  Obj_model.set_field_logged o 3 false;
  check "cleared" false (Obj_model.field_logged o 3);
  check "neighbour intact" true (Obj_model.field_logged o 2);
  Obj_model.set_all_logged o false;
  check "all cleared" false (Obj_model.field_logged o 9);
  Obj_model.set_all_logged o true;
  check "all set" true (Obj_model.field_logged o 0)

let test_reachability_oracle () =
  let reg = Obj_model.Registry.create () in
  let mk () = Obj_model.Registry.register reg ~size:32 ~nfields:2 ~addr:0 ~birth_epoch:0 in
  let a = mk () and b = mk () and c = mk () and d = mk () in
  Obj_model.set_field a 0 b.id;
  Obj_model.set_field b 0 c.id;
  Obj_model.set_field c 0 a.id;
  (* d is unreachable; a->b->c->a is a cycle from the root. *)
  let reach = Obj_model.Registry.reachable_from reg [ a.id ] in
  check "a" true (Mark_bitset.marked reach a.id);
  check "b" true (Mark_bitset.marked reach b.id);
  check "c (cycle closed)" true (Mark_bitset.marked reach c.id);
  check "d unreachable" false (Mark_bitset.marked reach d.id);
  let n = ref 0 in
  Mark_bitset.iter_marked reach (fun _ -> incr n);
  check_int "count" 3 !n

(* --- Blocks / Free_lists ------------------------------------------------------ *)

let test_blocks_state () =
  let c = cfg () in
  let b = Blocks.create c in
  check "initial free" true (Blocks.state b 0 = Blocks.Free);
  Blocks.set_state b 0 Blocks.In_use;
  check "set" true (Blocks.state b 0 = Blocks.In_use);
  check_int "count free" 15 (Blocks.count_state b Blocks.Free);
  Blocks.set_young b 1 true;
  check "young" true (Blocks.young b 1);
  Blocks.set_target b 2 true;
  check "target" true (Blocks.target b 2);
  check_int "total" 16 (Blocks.total b)

let test_blocks_residents () =
  let c = cfg () in
  let b = Blocks.create c in
  Blocks.add_resident b 0 10;
  Blocks.add_resident b 0 11;
  Blocks.add_resident b 0 12;
  Blocks.compact b 0 ~live:(fun id -> id <> 11);
  let ids = Repro_util.Vec.to_list (Blocks.residents b 0) in
  check_int "compact kept 2" 2 (List.length ids);
  check "10 kept" true (List.mem 10 ids);
  check "11 dropped" false (List.mem 11 ids)

let test_free_lists () =
  let f = Free_lists.create () in
  Free_lists.release_free f 1;
  Free_lists.release_recyclable f 2;
  check_int "free count" 1 (Free_lists.free_count f);
  check_int "recyc count" 1 (Free_lists.recyclable_count f);
  check_int "acquire recyc" 2 (Option.get (Free_lists.acquire_recyclable f));
  check_int "acquire free" 1 (Option.get (Free_lists.acquire_free f));
  check "exhausted" true (Free_lists.acquire_free f = None)

(* --- Bump_allocator ------------------------------------------------------------ *)

let fresh_heap ?(heap_kb = 512) () = Heap.create (cfg ~heap_kb ())

let test_alloc_basic () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  match Bump_allocator.alloc a ~size:64 with
  | None -> Alcotest.fail "allocation failed on fresh heap"
  | Some addr ->
    check "granule aligned" true (Addr.is_granule_aligned heap.cfg addr);
    (match Bump_allocator.alloc a ~size:64 with
    | Some addr2 -> check_int "bump" (addr + 64) addr2
    | None -> Alcotest.fail "second allocation failed")

let test_alloc_receipt () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  ignore (Bump_allocator.alloc a ~size:64);
  let r = Bump_allocator.receipt a in
  check "zeroed a block" true (r.bytes_zeroed >= 32768);
  check_int "acquired one block" 1 r.blocks_acquired;
  Bump_allocator.reset_receipt a;
  check_int "reset" 0 (Bump_allocator.receipt a).blocks_acquired

let test_alloc_no_overlap () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  let prng = Repro_util.Prng.create 3 in
  let spans = ref [] in
  (try
     while true do
       let size = 16 * (1 + Repro_util.Prng.int prng 64) in
       match Bump_allocator.alloc a ~size with
       | Some addr -> spans := (addr, size) :: !spans
       | None -> raise Exit
     done
   with Exit -> ());
  check "allocated plenty" true (List.length !spans > 500);
  let sorted = List.sort compare !spans in
  let rec no_overlap = function
    | (a1, s1) :: ((a2, _) :: _ as rest) -> a1 + s1 <= a2 && no_overlap rest
    | [ _ ] | [] -> true
  in
  check "no overlaps" true (no_overlap sorted)

let test_alloc_young_flag () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  (match Bump_allocator.alloc a ~size:64 with
  | Some addr -> check "fresh block young" true (Blocks.young heap.blocks (Addr.block_of heap.cfg addr))
  | None -> Alcotest.fail "alloc");
  Bump_allocator.retire_all a

let test_alloc_skips_used_lines () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  (* Occupy line 2 of block 0 directly in the RC table, then release the
     block as recyclable: the allocator must skip it and — conservatively
     — line 3 as well. *)
  Rc_table.set heap.rc heap.cfg (2 * 256) 3;
  Blocks.set_state heap.blocks 0 Blocks.Recyclable;
  (* Drain the free list so only the recyclable block is available. *)
  while Free_lists.acquire_free heap.free <> None do
    ()
  done;
  Free_lists.release_recyclable heap.free 0;
  (match Bump_allocator.alloc a ~size:64 with
  | Some addr -> check_int "starts at line 0" 0 addr
  | None -> Alcotest.fail "alloc");
  (* Fill lines 0-1 (512 bytes total). *)
  (match Bump_allocator.alloc a ~size:448 with
  | Some addr -> check_int "fills to line 2" 64 addr
  | None -> Alcotest.fail "alloc2");
  (* Next allocation cannot use line 2 (occupied) nor line 3
     (conservative skip): it must land on line 4. *)
  (match Bump_allocator.alloc a ~size:64 with
  | Some addr -> check_int "skips to line 4" (4 * 256) addr
  | None -> Alcotest.fail "alloc3")

let test_alloc_exhaustion () =
  let heap = Heap.create (Heap_config.make ~heap_bytes:(64 * 1024) ()) in
  let a = Heap.make_allocator heap in
  let count = ref 0 in
  (try
     while true do
       match Bump_allocator.alloc a ~size:1024 with
       | Some _ -> incr count
       | None -> raise Exit
     done
   with Exit -> ());
  check_int "filled two blocks" 64 !count

(* --- Heap facade ----------------------------------------------------------------- *)

let test_heap_alloc_registers () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  match Heap.alloc heap a ~size:60 ~nfields:2 with
  | None -> Alcotest.fail "alloc"
  | Some obj ->
    check_int "size aligned" 64 obj.size;
    check "registered" true (Obj_model.Registry.mem heap.registry obj.id);
    check "touched" true (List.mem (Addr.block_of heap.cfg (Obj_model.addr obj)) (Heap.touched_blocks heap));
    check_int "rc starts zero" 0 (Heap.rc_of heap obj)

let test_heap_rc_roundtrip () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  let obj = Option.get (Heap.alloc heap a ~size:64 ~nfields:2) in
  (match Heap.rc_inc heap obj with
  | `Became 1 -> ()
  | _ -> Alcotest.fail "inc");
  check_int "rc 1" 1 (Heap.rc_of heap obj);
  (match Heap.rc_dec heap obj with
  | `Became 0 -> ()
  | _ -> Alcotest.fail "dec");
  Heap.free_object heap obj;
  check "gone" false (Obj_model.Registry.mem heap.registry obj.id)

let test_heap_straddle_on_first_inc () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  let obj = Option.get (Heap.alloc heap a ~size:700 ~nfields:1) in
  ignore (Heap.rc_inc heap obj);
  let mid_line = Addr.line_of heap.cfg (Obj_model.addr obj) + 1 in
  check "trailing line pinned" false (Rc_table.line_is_free heap.rc heap.cfg mid_line);
  Heap.free_object heap obj;
  check "trailing line released" true (Rc_table.line_is_free heap.rc heap.cfg mid_line)

let test_heap_los () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  let big = Option.get (Heap.alloc heap a ~size:40_000 ~nfields:2) in
  check "is los" true (Heap.is_los heap big);
  check "block aligned" true ((Obj_model.addr big) mod heap.cfg.block_bytes = 0);
  let backing = Addr.block_of heap.cfg (Obj_model.addr big) in
  check "backing state" true (Blocks.state heap.blocks backing = Blocks.Los_backing);
  let free_before = Heap.available_blocks heap in
  Heap.free_object heap big;
  check "blocks returned" true (Heap.available_blocks heap = free_before + 2);
  check "backing freed" true (Blocks.state heap.blocks backing = Blocks.Free)

let test_heap_los_exhaustion () =
  let heap = Heap.create (Heap_config.make ~heap_bytes:(64 * 1024) ()) in
  let a = Heap.make_allocator heap in
  (* Two blocks total: a 3-block large object cannot fit. *)
  check "too big" true (Heap.alloc heap a ~size:70_000 ~nfields:0 = None)

let test_heap_evacuate () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  let gc = Heap.make_allocator heap in
  let obj = Option.get (Heap.alloc heap a ~size:64 ~nfields:1) in
  ignore (Heap.rc_inc heap obj);
  ignore (Heap.rc_inc heap obj);
  let old_addr = (Obj_model.addr obj) in
  check "evacuated" true (Heap.evacuate heap gc obj);
  check "moved" true ((Obj_model.addr obj) <> old_addr);
  check_int "rc preserved" 2 (Heap.rc_of heap obj);
  check_int "old slot cleared" 0 (Rc_table.get heap.rc heap.cfg old_addr)

let test_heap_evacuate_los_refused () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  let gc = Heap.make_allocator heap in
  let big = Option.get (Heap.alloc heap a ~size:40_000 ~nfields:0) in
  check "los not moved" false (Heap.evacuate heap gc big)

let test_heap_rc_sweep_block () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  let dead = Option.get (Heap.alloc heap a ~size:64 ~nfields:0) in
  let live = Option.get (Heap.alloc heap a ~size:64 ~nfields:0) in
  ignore (Heap.rc_inc heap live);
  let b = Addr.block_of heap.cfg (Obj_model.addr dead) in
  Heap.retire_all_allocators heap;
  (match Heap.rc_sweep_block heap b with
  | `Recyclable n, freed ->
    check "dead freed" true (freed = 64);
    check "free lines" true (n > 0)
  | (`Freed | `Full), _ -> Alcotest.fail "expected recyclable");
  check "dead unregistered" false (Obj_model.Registry.mem heap.registry dead.id);
  check "live kept" true (Obj_model.Registry.mem heap.registry live.id)

let test_heap_rc_sweep_block_all_dead () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  let o1 = Option.get (Heap.alloc heap a ~size:64 ~nfields:0) in
  let _o2 = Option.get (Heap.alloc heap a ~size:64 ~nfields:0) in
  let b = Addr.block_of heap.cfg (Obj_model.addr o1) in
  Heap.retire_all_allocators heap;
  (match Heap.rc_sweep_block heap b with
  | `Freed, freed -> check_int "all freed" 128 freed
  | (`Recyclable _ | `Full), _ -> Alcotest.fail "expected freed");
  check "state free" true (Blocks.state heap.blocks b = Blocks.Free)

let test_heap_pin () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  let obj = Option.get (Heap.alloc heap a ~size:700 ~nfields:0) in
  Heap.pin heap obj;
  check "stuck" true (Heap.rc_is_stuck heap obj);
  let l0 = Addr.line_of heap.cfg (Obj_model.addr obj) in
  check "straddle pinned" false (Rc_table.line_is_free heap.rc heap.cfg (l0 + 1))

let test_heap_rebuild_free_lists () =
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  ignore (Heap.alloc heap a ~size:64 ~nfields:0);
  Heap.retire_all_allocators heap;
  Heap.rebuild_free_lists heap;
  (* One block In_use (retired), the rest free. *)
  check_int "free blocks" 15 (Free_lists.free_count heap.free)

let test_alloc_overflow_block () =
  (* A medium object that does not fit the current hole goes to a
     dedicated overflow block instead of wasting the remaining lines. *)
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  (* Occupy the current block so only a 2-line hole remains ahead. *)
  let first = Option.get (Bump_allocator.alloc a ~size:64) in
  let b0 = Addr.block_of heap.cfg first in
  (* Fill all but the last two lines. *)
  let fill = (Heap_config.lines_per_block heap.cfg - 2) * 256 - 64 in
  let filler = Option.get (Bump_allocator.alloc a ~size:heap.cfg.granule_bytes) in
  ignore filler;
  let rec gobble remaining =
    if remaining >= 8192 then begin
      ignore (Option.get (Bump_allocator.alloc a ~size:8192));
      gobble (remaining - 8192)
    end
    else if remaining >= 16 then begin
      ignore (Option.get (Bump_allocator.alloc a ~size:(remaining - (remaining mod 16))));
      gobble (remaining mod 16)
    end
  in
  gobble (fill - 16);
  (* Now a 1 KB object cannot fit the 2-line remainder: dynamic
     overflow must place it in a different (fresh) block. *)
  let medium = Option.get (Bump_allocator.alloc a ~size:1024) in
  check "overflow block used" true (Addr.block_of heap.cfg medium <> b0);
  (* A small object still lands in the original hole. *)
  let small = Option.get (Bump_allocator.alloc a ~size:64) in
  check_int "small continues in block" b0 (Addr.block_of heap.cfg small)

let rc_packed_independence_prop =
  QCheck.Test.make ~name:"rc entries are independent across random granules" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 0 200))
    (fun granules ->
      let c = cfg () in
      let t = Rc_table.create c in
      let distinct = List.sort_uniq compare granules in
      List.iter (fun g -> ignore (Rc_table.inc t c (16 * g))) distinct;
      List.for_all (fun g -> Rc_table.get t c (16 * g) = 1) distinct
      &&
      (* Neighbours of every touched granule stay zero. *)
      List.for_all
        (fun g ->
          List.mem (g + 1) distinct || Rc_table.get t c (16 * (g + 1)) = 0)
        distinct)

let test_touched_blocks_ascending () =
  (* touched_blocks is a bitset scan, so the list is ascending with no
     duplicates by construction — the young sweep and clear loops rely on
     a canonical order. Regression-guard the contract. *)
  let heap = fresh_heap () in
  let a = Heap.make_allocator heap in
  for _ = 1 to 200 do
    ignore (Heap.alloc heap a ~size:512 ~nfields:0)
  done;
  let tb = Heap.touched_blocks heap in
  check "several blocks touched" true (List.length tb > 2);
  check "ascending, no duplicates" true (List.sort_uniq compare tb = tb);
  List.iter
    (fun b -> check "block_touched agrees" true (Heap.block_touched heap b))
    tb;
  Heap.clear_touched heap;
  check "cleared" true (Heap.touched_blocks heap = [])

let recycled_slots_never_alias_prop =
  QCheck.Test.make
    ~name:"recycled slots never alias live objects; stale handles stay freed"
    ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let reg = Obj_model.Registry.create () in
      let prng = Repro_util.Prng.create seed in
      let live = ref [] in
      let stale = ref [] in
      let max_id = ref 0 in
      let ok = ref true in
      for _ = 1 to 400 do
        if Repro_util.Prng.bool prng 0.55 || !live = [] then begin
          let nfields = Repro_util.Prng.int prng 70 in
          let o =
            Obj_model.Registry.register reg ~size:64 ~nfields ~addr:128
              ~birth_epoch:0
          in
          (* External ids are strictly monotonic even while slots recycle. *)
          if o.Obj_model.id <= !max_id then ok := false;
          max_id := o.Obj_model.id;
          (match !live with
          | (tid, _) :: _ when nfields > 0 -> Obj_model.set_field o 0 tid
          | _ -> ());
          live := (o.Obj_model.id, o) :: !live
        end
        else begin
          let k = Repro_util.Prng.int prng (List.length !live) in
          let id, o = List.nth !live k in
          Obj_model.Registry.free reg o;
          live := List.filter (fun (i, _) -> i <> id) !live;
          stale := o :: !stale
        end
      done;
      (* Stale handles read as freed forever, even after slot reuse. *)
      List.iter
        (fun (o : Obj_model.t) ->
          if not (Obj_model.is_freed o) then ok := false;
          if Obj_model.addr o <> -1 then ok := false;
          if Obj_model.nfields o > 0 && Obj_model.field o 0 <> Obj_model.null
          then ok := false;
          if Obj_model.Registry.mem reg o.Obj_model.id then ok := false)
        !stale;
      (* Live handles stay canonical: lookup returns the same handle. *)
      List.iter
        (fun (id, (o : Obj_model.t)) ->
          if Obj_model.is_freed o then ok := false;
          if not (Obj_model.Registry.get reg id == o) then ok := false)
        !live;
      (* Oracle cross-check: no freed id is ever reachable. *)
      (match !live with
      | (rid, _) :: _ ->
        let reach = Obj_model.Registry.reachable_from reg [ rid ] in
        List.iter
          (fun (o : Obj_model.t) ->
            if Mark_bitset.marked reach o.Obj_model.id then ok := false)
          !stale
      | [] -> ());
      !ok)

let alloc_alignment_prop =
  QCheck.Test.make ~name:"heap alloc always granule aligned and in-heap" ~count:300
    QCheck.(int_range 1 16000)
    (fun size ->
      let heap = fresh_heap () in
      let a = Heap.make_allocator heap in
      match Heap.alloc heap a ~size ~nfields:1 with
      | None -> false
      | Some obj ->
        Addr.is_granule_aligned heap.cfg (Obj_model.addr obj)
        && obj.size >= size
        && obj.size mod heap.cfg.granule_bytes = 0
        && Addr.valid heap.cfg (Obj_model.addr obj)
        && Addr.valid heap.cfg ((Obj_model.addr obj) + obj.size - 1))

let suite =
  let qc = List.map QCheck_alcotest.to_alcotest in
  [ ( "heap:config",
      [ Alcotest.test_case "defaults" `Quick test_config_defaults;
        Alcotest.test_case "rounding" `Quick test_config_rounds_heap;
        Alcotest.test_case "validation" `Quick test_config_validation ] );
    ( "heap:addr",
      [ Alcotest.test_case "arithmetic" `Quick test_addr_arithmetic;
        Alcotest.test_case "lines covered" `Quick test_addr_lines_covered ] );
    ( "heap:rc_table",
      [ Alcotest.test_case "inc/dec" `Quick test_rc_inc_dec;
        Alcotest.test_case "stick" `Quick test_rc_stick;
        Alcotest.test_case "neighbours" `Quick test_rc_neighbours_independent;
        Alcotest.test_case "8-bit" `Quick test_rc_wider_bits;
        Alcotest.test_case "clear range" `Quick test_rc_clear_range;
        Alcotest.test_case "straddle" `Quick test_rc_straddle;
        Alcotest.test_case "line/block free" `Quick test_rc_line_block_free ]
      @ qc [ rc_inc_dec_roundtrip_prop; rc_packed_independence_prop ] );
    ( "heap:marks",
      [ Alcotest.test_case "basic" `Quick test_marks;
        Alcotest.test_case "growth" `Quick test_marks_growth;
        Alcotest.test_case "clear" `Quick test_marks_clear ] );
    ("heap:reuse", [ Alcotest.test_case "counters" `Quick test_reuse ]);
    ( "heap:objects",
      [ Alcotest.test_case "registry" `Quick test_registry_basics;
        Alcotest.test_case "logged bits" `Quick test_logged_bits;
        Alcotest.test_case "oracle" `Quick test_reachability_oracle ]
      @ qc [ recycled_slots_never_alias_prop ] );
    ( "heap:blocks",
      [ Alcotest.test_case "state" `Quick test_blocks_state;
        Alcotest.test_case "residents" `Quick test_blocks_residents;
        Alcotest.test_case "free lists" `Quick test_free_lists ] );
    ( "heap:allocator",
      [ Alcotest.test_case "basic bump" `Quick test_alloc_basic;
        Alcotest.test_case "receipt" `Quick test_alloc_receipt;
        Alcotest.test_case "no overlap" `Quick test_alloc_no_overlap;
        Alcotest.test_case "young flag" `Quick test_alloc_young_flag;
        Alcotest.test_case "skips used lines" `Quick test_alloc_skips_used_lines;
        Alcotest.test_case "overflow block" `Quick test_alloc_overflow_block;
        Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion ] );
    ( "heap:facade",
      [ Alcotest.test_case "alloc registers" `Quick test_heap_alloc_registers;
        Alcotest.test_case "rc roundtrip" `Quick test_heap_rc_roundtrip;
        Alcotest.test_case "straddle on first inc" `Quick test_heap_straddle_on_first_inc;
        Alcotest.test_case "los" `Quick test_heap_los;
        Alcotest.test_case "los exhaustion" `Quick test_heap_los_exhaustion;
        Alcotest.test_case "evacuate" `Quick test_heap_evacuate;
        Alcotest.test_case "los not evacuated" `Quick test_heap_evacuate_los_refused;
        Alcotest.test_case "rc sweep" `Quick test_heap_rc_sweep_block;
        Alcotest.test_case "rc sweep all dead" `Quick test_heap_rc_sweep_block_all_dead;
        Alcotest.test_case "pin" `Quick test_heap_pin;
        Alcotest.test_case "rebuild lists" `Quick test_heap_rebuild_free_lists;
        Alcotest.test_case "touched blocks ascending" `Quick
          test_touched_blocks_ascending ]
      @ qc [ alloc_alignment_prop ] ) ]
