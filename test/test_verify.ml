(* The heap-integrity verifier and fault-injection harness:
   - a clean run of every workload x production collector has zero
     violations (no false positives);
   - every injected corruption class is detected;
   - recoverable faults (forced allocation failures) exercise the
     degradation ladder and still complete cleanly;
   - the ladder escalates in order and leaves no stale allocator state
     behind an `Oom. *)

open Repro_heap
open Repro_engine
module Verifier = Repro_verify.Verifier
module Runner = Repro_harness.Runner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let null = Obj_model.null

(* --- Helpers ----------------------------------------------------------- *)

let mini_heap_bytes = 512 * 1024

(* A small deterministic LXR session: rooted table, churn, some garbage. *)
let run_mini ?(factory = Repro_lxr.Lxr.factory) seed =
  let heap = Heap.create (Heap_config.make ~heap_bytes:mini_heap_bytes ()) in
  let sim = Sim.create Cost_model.default in
  let api = Api.create sim heap factory in
  let prng = Repro_util.Prng.create seed in
  let table = Api.alloc api ~size:(16 + (8 * 32)) ~nfields:32 in
  Api.set_root api 0 table.id;
  for i = 1 to 4000 do
    let size = 16 + (16 * Repro_util.Prng.int prng 24) in
    let obj = Api.alloc api ~size ~nfields:3 in
    if Repro_util.Prng.bool prng 0.08 then
      Api.write api table (Repro_util.Prng.int prng 32) obj.id;
    if i mod 500 = 0 then Api.safepoint api
  done;
  Api.finish api;
  (heap, api)

let check_api api =
  Verifier.check_heap ~roots:(Api.roots api)
    ~introspect:(Api.collector api).Collector.introspect (Api.heap api)

let has_invariant inv vs =
  List.exists (fun (viol : Verifier.violation) -> viol.Verifier.invariant = inv) vs

let all_points = [ Verifier.Pre_pause; Verifier.Post_pause; Verifier.End_of_run ]

let run_injected ?(factory = Repro_lxr.Lxr.factory) ?(bench = "lusearch")
    ?(seed = 42) spec =
  let fault =
    match Fault.of_spec ~seed spec with
    | Ok f -> f
    | Error msg -> Alcotest.fail ("bad fault spec: " ^ msg)
  in
  let r =
    Runner.run ~seed ~scale:0.25 ~verify:all_points ~inject:fault
      ~workload:(Repro_mutator.Benchmarks.find bench) ~factory ~heap_factor:2.0
      ()
  in
  (r, fault)

let result_has_invariant inv (r : Runner.result) =
  List.exists
    (fun (_, _, (viol : Verifier.violation)) -> viol.Verifier.invariant = inv)
    r.violations

(* LXR with every SATB trigger disabled: reference counts stay exact for
   the whole run ([counts_exact] never flips), so the overcount check is
   live at every safepoint. *)
let lxr_no_satb =
  Repro_lxr.Lxr.factory_with ~name:"lxr-nosatbtrig"
    ~config:(fun c ->
      { c with
        Repro_lxr.Lxr_config.clean_blocks_trigger = -1;
        wastage_threshold = 10.0;
        satb_backstop_pauses = max_int })
    ()

(* --- Safepoint parsing -------------------------------------------------- *)

let test_points_of_string () =
  (match Verifier.points_of_string "pre,post,end" with
  | Ok [ Verifier.Pre_pause; Verifier.Post_pause; Verifier.End_of_run ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "pre,post,end");
  (match Verifier.points_of_string "all" with
  | Ok points ->
    check_int "all = three points" 3 (List.length points)
  | Error _ -> Alcotest.fail "all");
  (match Verifier.points_of_string " post " with
  | Ok [ Verifier.Post_pause ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "whitespace tolerated");
  (match Verifier.points_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus accepted");
  match Verifier.points_of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted"

(* --- Direct corruption: the verifier sees what we break ----------------- *)

let test_clean_mini_has_no_violations () =
  let _, api = run_mini 3 in
  check "clean heap passes" true (check_api api = [])

let test_detects_orphan_rc_entry () =
  let heap, api = run_mini 5 in
  let cfg = heap.Heap.cfg in
  (* A count in a Free block is both an orphan and a dirty free block. *)
  let free_block = ref (-1) in
  for b = Heap_config.blocks cfg - 1 downto 0 do
    if Blocks.state heap.blocks b = Blocks.Free then free_block := b
  done;
  check "found a free block" true (!free_block >= 0);
  Rc_table.set heap.rc cfg (Addr.block_start cfg !free_block) 1;
  let vs = check_api api in
  check "orphan count detected" true (has_invariant "orphan-count" vs);
  check "dirty free block detected" true (has_invariant "free-block-rc-zero" vs)

let test_detects_dangling_root () =
  let heap, api = run_mini 7 in
  (* Free a rooted object behind the collector's back. *)
  let table = Obj_model.Registry.get heap.registry (Api.roots api).(0) in
  Heap.free_object heap table;
  let vs = check_api api in
  check "dangling root detected" true (has_invariant "root-live" vs)

let test_detects_punched_straddle_marker () =
  let heap, api = run_mini 9 in
  let cfg = heap.Heap.cfg in
  let victim = ref None in
  (* The victim needs an interior line (first+1 <= last-1): only interior
     lines carry straddle markers, so a 2-line object has nothing to punch. *)
  Obj_model.Registry.iter
    (fun o ->
      if
        !victim = None
        && (not (Heap.is_los heap o))
        && o.size > cfg.line_bytes
        && Rc_table.get heap.rc cfg (Obj_model.addr o) > 0
        && (let first, last =
              Addr.lines_covered cfg ~addr:(Obj_model.addr o) ~size:o.size
            in
            last > first + 1)
      then victim := Some o)
    heap.registry;
  match !victim with
  | None -> Alcotest.fail "no live straddling object in mini run"
  | Some o ->
    let first, last =
      Addr.lines_covered cfg ~addr:(Obj_model.addr o) ~size:o.size
    in
    check "object straddles" true (last > first + 1);
    Rc_table.set heap.rc cfg (Addr.line_start cfg (first + 1)) 0;
    let vs = check_api api in
    check "punched straddle detected" true
      (has_invariant "straddle-marker-missing" vs)

(* --- Injected corruption matrix ----------------------------------------- *)

let test_inject_drop_barrier_detected () =
  let r, fault = run_injected "drop-barrier:0.002" in
  check "barriers were dropped" true (fault.Fault.counts.dropped_barriers > 0);
  check "run flagged" true (not r.ok);
  check "detected as overcount or dangling ref" true
    (result_has_invariant "overcount" r
    || result_has_invariant "no-dangling-ref" r)

let test_inject_skip_decrement_detected () =
  let r, fault = run_injected ~factory:lxr_no_satb "skip-dec:0.05" in
  check "decrements were skipped" true (fault.Fault.counts.skipped_decrements > 0);
  check "run flagged" true (not r.ok);
  check "detected as overcount" true (result_has_invariant "overcount" r)

let test_inject_rc_flip_detected () =
  let r, fault = run_injected "rc-flip:0.002" in
  check "rc entries were flipped" true (fault.Fault.counts.flipped_rc > 0);
  check "run flagged" true (not r.ok);
  check "detected in the rc cross-check" true
    (result_has_invariant "orphan-count" r
    || result_has_invariant "straddle-marker-value" r
    || result_has_invariant "straddle-marker-missing" r)

let test_inject_remset_corruption_detected () =
  let r, fault = run_injected "remset:1.0" in
  check "remset entries were corrupted" true
    (fault.Fault.counts.corrupted_remsets > 0);
  check "run flagged" true (not r.ok);
  check "detected as out-of-range field" true
    (result_has_invariant "field-in-range" r)

let test_inject_alloc_fail_recovers () =
  let r, fault = run_injected "alloc-fail:0.002" in
  check "allocation failures were forced" true
    (fault.Fault.counts.forced_alloc_failures > 0);
  check "run still ok" true r.ok;
  check "no violations" true (r.violations = []);
  check "ladder exercised" true
    (match List.assoc_opt "ladder_young" r.ladder with
    | Some v -> v > 0.0
    | None -> false);
  check "no exhaustion" true
    (match List.assoc_opt "ladder_oom" r.ladder with
    | Some v -> v = 0.0
    | None -> false)

(* A fault stream is deterministic in its seed. *)
let test_injection_deterministic () =
  let a, _ = run_injected ~seed:11 "drop-barrier:0.002" in
  let b, _ = run_injected ~seed:11 "drop-barrier:0.002" in
  check_int "same violations" (List.length a.violations)
    (List.length b.violations);
  check "same wall" true (a.wall_ns = b.wall_ns)

(* --- Clean verification matrix: no false positives ---------------------- *)

let test_clean_matrix_no_false_positives () =
  let collectors =
    [ ("lxr", Repro_lxr.Lxr.factory);
      ("g1", Repro_collectors.Registry.find "g1");
      ("shenandoah", Repro_collectors.Registry.find "shenandoah") ]
  in
  List.iter
    (fun bench ->
      List.iter
        (fun (name, factory) ->
          let r =
            Runner.run ~seed:42 ~scale:0.1 ~verify:all_points
              ~workload:(Repro_mutator.Benchmarks.find bench) ~factory
              ~heap_factor:2.0 ()
          in
          let label = Printf.sprintf "%s under %s at 2x" bench name in
          check (label ^ ": ok") true r.ok;
          check (label ^ ": checked") true (r.verifier_checks > 0);
          check_int (label ^ ": zero violations") 0 (List.length r.violations))
        collectors)
    Repro_mutator.Benchmarks.names

(* --- Degradation ladder -------------------------------------------------- *)

(* A collector that never frees anything records the escalation order. *)
let test_ladder_escalation_order () =
  let pressures = ref [] in
  let factory _sim _heap ~roots:_ =
    let conc_active, conc_run = Collector.no_concurrency () in
    { Collector.name = "never-collects";
      on_alloc = (fun _ -> ());
      on_write = (fun _ _ _ -> ());
      write_extra_ns = 0.0;
      read_extra_ns = 0.0;
      poll = (fun () -> ());
      collect_for_alloc = (fun p -> pressures := p :: !pressures);
      conc_active;
      conc_run;
      conc_backlog = (fun () -> 0);
      on_finish = (fun () -> ());
      stats = (fun () -> []);
      introspect = Collector.no_introspection }
  in
  let heap = Heap.create (Heap_config.make ~heap_bytes:(128 * 1024) ()) in
  let sim = Sim.create Cost_model.default in
  let api = Api.create sim heap factory in
  let rec fill n =
    if n > 1000 then Alcotest.fail "heap never filled"
    else
      match Api.try_alloc api ~size:8192 ~nfields:0 with
      | `Ok obj ->
        Api.set_root api (n mod 200) obj.Obj_model.id;
        fill (n + 1)
      | `Oom info -> info
  in
  let info = fill 0 in
  check "requested size reported" true (info.Api.requested_bytes = 8192);
  (match List.rev !pressures with
  | [ Collector.Young; Collector.Full; Collector.Emergency ] -> ()
  | other ->
    Alcotest.fail
      (Printf.sprintf "unexpected escalation: [%s]"
         (String.concat "; " (List.map Collector.pressure_name other))));
  let l = Api.ladder api in
  check_int "young rung count" 1 l.Api.young_collections;
  check_int "full rung count" 1 l.Api.full_collections;
  check_int "emergency rung count" 1 l.Api.emergency_compactions;
  check_int "reserve released" 1 l.Api.reserve_releases;
  check_int "exhaustion recorded" 1 l.Api.exhaustions

(* Exhaust each real collector against live data; the `Oom must be clean:
   dropping the roots must make allocation succeed again (no stale
   allocator or ladder state). *)
let oom_and_recover name factory =
  let heap = Heap.create (Heap_config.make ~heap_bytes:(256 * 1024) ()) in
  let sim = Sim.create Cost_model.default in
  let api = Api.create sim heap factory in
  let rec fill n =
    if n > 1000 then Alcotest.fail (name ^ ": heap never filled")
    else
      match Api.try_alloc api ~size:2048 ~nfields:0 with
      | `Ok obj ->
        Api.set_root api (n mod 200) obj.Obj_model.id;
        fill (n + 1)
      | `Oom _ -> n
  in
  let n = fill 0 in
  check (name ^ ": allocated before exhaustion") true (n > 0);
  check (name ^ ": every rung tried") true
    ((Api.ladder api).Api.emergency_compactions >= 1);
  check (name ^ ": exhaustion counted") true
    ((Api.ladder api).Api.exhaustions >= 1);
  (* Drop every root (including the engine's scratch slot) and retry. *)
  for slot = 0 to Api.root_slots - 1 do
    Api.set_root api slot null
  done;
  match Api.try_alloc api ~size:2048 ~nfields:0 with
  | `Ok _ -> ()
  | `Oom _ -> Alcotest.fail (name ^ ": no recovery after dropping roots")

let test_oom_ladder_all_collectors () =
  List.iter
    (fun (name, factory) -> oom_and_recover name factory)
    [ ("lxr", Repro_lxr.Lxr.factory);
      ("serial", Repro_collectors.Registry.find "serial");
      ("g1", Repro_collectors.Registry.find "g1");
      ("shenandoah", Repro_collectors.Registry.find "shenandoah");
      ("semispace", Repro_collectors.Registry.find "semispace") ]

(* A workload pushed far past its heap reports the exhaustion as data —
   no exception escapes the runner. *)
let test_runner_reports_oom () =
  let r =
    Runner.run ~seed:42 ~scale:0.3
      ~workload:(Repro_mutator.Benchmarks.find "lusearch")
      ~factory:(Repro_collectors.Registry.find "serial") ~heap_factor:0.3 ()
  in
  check "not ok" true (not r.ok);
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check "error mentions memory" true
    (match r.error with
    | Some msg -> contains ~sub:"memory" (String.lowercase_ascii msg)
    | None -> false)

(* --- Session plumbing ---------------------------------------------------- *)

let test_end_of_run_only_session () =
  let heap = Heap.create (Heap_config.make ~heap_bytes:mini_heap_bytes ()) in
  let sim = Sim.create Cost_model.default in
  let api = Api.create sim heap Repro_lxr.Lxr.factory in
  let v = Verifier.attach ~points:[ Verifier.End_of_run ] api in
  let table = Api.alloc api ~size:128 ~nfields:8 in
  Api.set_root api 0 table.id;
  for _ = 1 to 2000 do
    ignore (Api.alloc api ~size:64 ~nfields:2)
  done;
  Api.finish api;
  check_int "no checks before finish" 0 (Verifier.checks_run v);
  Verifier.finish v;
  check_int "one end-of-run check" 1 (Verifier.checks_run v);
  check "clean" true (Verifier.ok v);
  check "report mentions totals" true
    (String.length (Verifier.report v) > 0)

let test_max_violations_cap () =
  let heap, api = run_mini 15 in
  let cfg = heap.Heap.cfg in
  (* Plant orphan counts across many free granules of a Free block. *)
  let free_block = ref (-1) in
  for b = Heap_config.blocks cfg - 1 downto 0 do
    if Blocks.state heap.blocks b = Blocks.Free then free_block := b
  done;
  check "found a free block" true (!free_block >= 0);
  let start = Addr.block_start cfg !free_block in
  for g = 0 to 9 do
    Rc_table.set heap.rc cfg (start + (g * cfg.granule_bytes)) 1
  done;
  let v = Verifier.attach ~max_violations:3 ~points:[ Verifier.End_of_run ] api in
  Verifier.finish v;
  check "all violations counted" true (Verifier.total_violations v > 3);
  check_int "retention capped" 3 (List.length (Verifier.violations v))

let suite =
  [ ( "verify:unit",
      [ Alcotest.test_case "safepoint parsing" `Quick test_points_of_string;
        Alcotest.test_case "clean mini run" `Quick
          test_clean_mini_has_no_violations;
        Alcotest.test_case "orphan rc entry" `Quick test_detects_orphan_rc_entry;
        Alcotest.test_case "dangling root" `Quick test_detects_dangling_root;
        Alcotest.test_case "punched straddle marker" `Quick
          test_detects_punched_straddle_marker;
        Alcotest.test_case "end-of-run session" `Quick
          test_end_of_run_only_session;
        Alcotest.test_case "violation cap" `Quick test_max_violations_cap ] );
    ( "verify:injection",
      [ Alcotest.test_case "drop-barrier detected" `Quick
          test_inject_drop_barrier_detected;
        Alcotest.test_case "skip-dec detected" `Quick
          test_inject_skip_decrement_detected;
        Alcotest.test_case "rc-flip detected" `Quick test_inject_rc_flip_detected;
        Alcotest.test_case "remset corruption detected" `Quick
          test_inject_remset_corruption_detected;
        Alcotest.test_case "alloc-fail recovers" `Quick
          test_inject_alloc_fail_recovers;
        Alcotest.test_case "deterministic fault stream" `Quick
          test_injection_deterministic ] );
    ( "verify:clean-matrix",
      [ Alcotest.test_case "all workloads x production collectors" `Slow
          test_clean_matrix_no_false_positives ] );
    ( "verify:ladder",
      [ Alcotest.test_case "escalation order" `Quick test_ladder_escalation_order;
        Alcotest.test_case "oom and recovery per collector" `Quick
          test_oom_ladder_all_collectors;
        Alcotest.test_case "runner reports oom" `Quick test_runner_reports_oom ] )
  ]
